(* Campaign-service protocol and engine: wire round-trips, cache
   semantics, retry/circuit/budget robustness, and crash-resume
   bit-identity under injected dispatch and store faults. *)

module P = Tp_serve.Protocol
module E = Tp_serve.Engine
module Store = Tp_store.Store

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tp-test-serve-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_store dir f =
  let s = Store.open_ ~dir in
  Fun.protect ~finally:(fun () -> Store.close s) (fun () -> f s)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A deterministic stand-in for the measurement: blob content is a
   pure function of the cell, so digests are comparable across runs
   without paying for real trials. *)
let stub_trial (c : E.cell) =
  {
    P.t_platform = c.E.cl_platform;
    t_config = c.E.cl_config;
    t_channel = c.E.cl_channel;
    t_trial = c.E.cl_trial;
    t_key = "";
    t_status = P.Complete;
    t_mi_bits = float_of_int c.E.cl_trial *. 0.125;
    t_m0_bits = 0.25;
    t_verdict = "no-evidence";
    t_n = 100;
    t_cert_bits = 0;
    t_kcert_bits = 0;
    t_kcert_digest = "stub-kcert-digest";
    t_kcert_clone_digest = "stub-kcert-clone-digest";
    t_kcert_destroy_digest = "stub-kcert-destroy-digest";
    t_code_rev = "test-rev";
    t_degraded_reason = None;
    t_recovered_faults = 0;
    t_checkpoints = 3;
    t_retries = 0;
    t_cached = false;
  }

let stub_compute _job c = Ok (P.stored_of_trial (stub_trial c))

let job ?(channels = [ "l1d"; "kernel" ]) ?(trials = 2) ?max_retries
    ?wall_budget_s ?retry_backoff_s () =
  P.job ~id:"test" ~platforms:[ "haswell" ] ~configs:[ "protected" ]
    ~channels ~trials ~seed:7 ~samples:100 ?max_retries ?wall_budget_s
    ?retry_backoff_s ()

let run_stub ?compute store j =
  match
    E.run_job ~store ~code_rev:"test-rev" ~jobs:1
      ~compute:(Option.value compute ~default:stub_compute)
      j
  with
  | Ok r -> r
  | Error e -> Alcotest.fail ("run_job rejected: " ^ e)

(* ---- protocol ---------------------------------------------------- *)

let test_job_roundtrip () =
  let j =
    P.job ~id:"rt" ~platforms:[ "haswell"; "sabre" ] ~configs:[ "raw" ]
      ~channels:[ "l1d" ] ~trials:3 ~seed:9 ~samples:42 ~trial_cycle_budget:5000
      ~trial_timeout_s:1.5 ~wall_budget_s:30.0 ~max_retries:4
      ~retry_backoff_s:0.25 ()
  in
  match P.job_of_json (P.job_to_json j) with
  | Ok j' -> Alcotest.(check bool) "job round-trips" true (j = j')
  | Error e -> Alcotest.fail e

let test_job_validation () =
  let bad = P.job_to_json (P.job ~trials:0 ()) in
  (match P.job_of_json bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trials=0 accepted");
  match P.job_of_json (Tp_util.Json.Obj [ ("id", Tp_util.Json.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "field-less job accepted"

let test_stored_blob_roundtrip () =
  let t =
    { (stub_trial { E.cl_platform = "haswell"; cl_plat = Tp_hw.Platform.haswell;
                    cl_config = "protected"; cl_kind = Tp_core.Scenario.Protected;
                    cl_channel = "l1d"; cl_trial = 1 })
      with P.t_status = P.Degraded;
           t_degraded_reason = Some "cycle budget exhausted";
           t_recovered_faults = 2;
           t_retries = 5;
           t_cached = false }
  in
  let blob = P.stored_of_trial t in
  Alcotest.(check bool)
    "blob carries the v4 schema tag" true
    (contains_sub blob "tpsim-trial/4");
  Alcotest.(check bool)
    "blob records the kernel cert digest" true
    (contains_sub blob "stub-kcert-digest");
  Alcotest.(check bool)
    "blob records the clone and destroy cert digests" true
    (contains_sub blob "stub-kcert-clone-digest"
    && contains_sub blob "stub-kcert-destroy-digest");
  match P.trial_of_stored ~key:"k" blob with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      (* Deterministic fields survive; execution metadata does not. *)
      Alcotest.(check bool)
        "deterministic fields equal" true
        ({ t with P.t_key = "k"; t_retries = 0; t_cached = true } = t');
      Alcotest.(check int) "retries not stored" 0 t'.P.t_retries;
      Alcotest.(check bool) "reads as cached" true t'.P.t_cached;
      Alcotest.(check string)
        "blob is canonical" blob
        (P.stored_of_trial { t' with P.t_key = ""; t_cached = false })

let test_result_roundtrip () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let r = run_stub store (job ()) in
          match P.result_of_json (P.result_to_json r) with
          | Ok r' -> Alcotest.(check bool) "result round-trips" true (r = r')
          | Error e -> Alcotest.fail e))

(* ---- engine ------------------------------------------------------ *)

let test_bad_job_rejected () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          match
            E.run_job ~store ~code_rev:"r" ~jobs:1 ~compute:stub_compute
              (P.job ~platforms:[ "pdp11" ] ())
          with
          | Error e ->
              Alcotest.(check bool)
                "names the bad platform" true
                (contains_sub e "pdp11")
          | Ok _ -> Alcotest.fail "unknown platform accepted"))

let test_complete_then_cached () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let j = job () in
          let progress = ref [] in
          let r =
            match
              E.run_job ~store ~code_rev:"test-rev" ~jobs:1
                ~compute:stub_compute
                ~progress:(fun p -> progress := p :: !progress)
                j
            with
            | Ok r -> r
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check bool) "complete" true (r.P.r_status = P.Complete);
          Alcotest.(check int) "total" 4 r.P.r_total;
          Alcotest.(check int) "computed" 4 r.P.r_computed;
          Alcotest.(check int) "cached" 0 r.P.r_cached;
          Alcotest.(check int) "failed" 0 r.P.r_failed;
          Alcotest.(check int) "trials listed" 4 (List.length r.P.r_trials);
          Alcotest.(check bool) "progress streamed" true (!progress <> []);
          Alcotest.(check bool)
            "final progress is total" true
            ((List.hd !progress).P.p_done = 4);
          Alcotest.(check int) "store holds the trials" 4 (Store.count store);
          (* Resubmission: answered entirely from the store, same
             digest, trials flagged cached. *)
          let r2 = run_stub store j in
          Alcotest.(check int) "all cached" 4 r2.P.r_cached;
          Alcotest.(check int) "nothing recomputed" 0 r2.P.r_computed;
          Alcotest.(check string) "digest stable" r.P.r_digest r2.P.r_digest;
          Alcotest.(check bool)
            "every trial flagged cached" true
            (List.for_all (fun t -> t.P.t_cached) r2.P.r_trials)))

let test_cell_key_independent_of_job_shape () =
  let j1 = job ~channels:[ "l1d" ] ~trials:1 () in
  let j4 = job ~channels:[ "kernel"; "l1d" ] ~trials:2 () in
  let cell c = List.nth (Result.get_ok (E.cells_of_job c)) 0 in
  let c1 = cell j1 in
  let c4 =
    List.find
      (fun c -> c.E.cl_channel = "l1d" && c.E.cl_trial = 0)
      (Result.get_ok (E.cells_of_job j4))
  in
  Alcotest.(check string)
    "same cell, same key, any job shape"
    (E.cell_key ~code_rev:"r" j1 c1)
    (E.cell_key ~code_rev:"r" j4 c4)

let test_retry_recovers_transient () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          (* Every cell fails once, then succeeds: with one retry the
             job completes and reports the attempts. *)
          let attempts = Hashtbl.create 8 in
          let flaky j (c : E.cell) =
            let key = (c.E.cl_channel, c.E.cl_trial) in
            let n = Option.value ~default:0 (Hashtbl.find_opt attempts key) in
            Hashtbl.replace attempts key (n + 1);
            if n = 0 then Error "transient worker fault"
            else stub_compute j c
          in
          let r =
            run_stub ~compute:flaky store
              (job ~max_retries:2 ~retry_backoff_s:0.0 ())
          in
          Alcotest.(check bool) "complete" true (r.P.r_status = P.Complete);
          Alcotest.(check int) "failed" 0 r.P.r_failed;
          Alcotest.(check int) "one retry per cell" 4 r.P.r_retried;
          Alcotest.(check bool)
            "trials carry their retry count" true
            (List.for_all (fun t -> t.P.t_retries = 1) r.P.r_trials)))

let test_retries_exhausted_fails_trial () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let always_fail _ _ = Error "permanent fault" in
          let r =
            run_stub ~compute:always_fail store
              (job ~channels:[ "l1d" ] ~trials:1 ~max_retries:2
                 ~retry_backoff_s:0.0 ())
          in
          Alcotest.(check bool) "failed" true (r.P.r_status = P.Failed);
          Alcotest.(check int) "retries burned" 2 r.P.r_retried;
          Alcotest.(check int) "nothing stored" 0 (Store.count store)))

let test_circuit_breaker () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let calls = ref 0 in
          let always_fail _ _ =
            incr calls;
            Error "sick worker"
          in
          let r =
            run_stub ~compute:always_fail store
              (job ~channels:[ "l1d" ] ~trials:16 ~max_retries:0 ())
          in
          Alcotest.(check bool) "failed" true (r.P.r_status = P.Failed);
          Alcotest.(check bool)
            "reason names the circuit" true
            (match r.P.r_reason with
            | Some why -> contains_sub why "circuit open"
            | None -> false);
          Alcotest.(check int) "every trial reported" 16 r.P.r_total;
          Alcotest.(check bool)
            (Printf.sprintf "breaker saved work (%d calls)" !calls)
            true (!calls < 16)))

let test_wall_budget_degrades () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let r = run_stub store (job ~wall_budget_s:0.0 ()) in
          Alcotest.(check bool)
            "reason is the wall budget" true
            (r.P.r_reason = Some "job wall budget exhausted");
          Alcotest.(check int) "all trials reported" 4 r.P.r_total;
          Alcotest.(check int) "all failed" 4 r.P.r_failed;
          (* Failed-by-budget trials are recomputable: nothing was
             poisoned in the store, and a resubmission with budget
             completes. *)
          Alcotest.(check int) "store untouched" 0 (Store.count store);
          let r2 = run_stub store (job ()) in
          Alcotest.(check bool) "resubmission completes" true
            (r2.P.r_status = P.Complete)))

(* Crash the dispatch loop at every job_dispatch crossing (simulated
   process death), resume into the same store, and require the final
   digest to match an uninterrupted run into a fresh store. *)
let test_crash_resume_dispatch () =
  with_dir (fun dir ->
      let j = job () in
      let reference =
        with_store (Filename.concat dir "ref") (fun s -> (run_stub s j).P.r_digest)
      in
      let crash_dir = Filename.concat dir "crash" in
      let fired = ref 0 in
      for hit = 0 to 3 do
        let st = Store.open_ ~dir:crash_dir in
        Tp_fault.Fault.arm ~point:E.point_dispatch ~hit
          (Failure "injected dispatch crash");
        (match
           E.run_job ~store:st ~code_rev:"test-rev" ~jobs:1
             ~compute:stub_compute j
         with
        | Ok _ | Error _ -> ()
        | exception Failure _ -> incr fired);
        Tp_fault.Fault.disarm ();
        Store.close st
      done;
      Alcotest.(check bool) "some crossings crashed" true (!fired > 0);
      let resumed =
        with_store crash_dir (fun s -> (run_stub s j).P.r_digest)
      in
      Alcotest.(check string) "digest bit-identical" reference resumed)

(* Same property under persistence-path faults: crash inside the store
   commit protocol at every write/fsync/rename crossing of the sweep's
   first commits, resume, compare digests. *)
let test_crash_resume_store_faults () =
  with_dir (fun dir ->
      let j = job () in
      let reference =
        with_store (Filename.concat dir "ref") (fun s -> (run_stub s j).P.r_digest)
      in
      let crash_dir = Filename.concat dir "crash" in
      let fired = ref 0 in
      List.iter
        (fun point ->
          for hit = 0 to 4 do
            let st = Store.open_ ~dir:crash_dir in
            Tp_fault.Fault.arm ~point ~hit (Failure "injected store crash");
            (match
               E.run_job ~store:st ~code_rev:"test-rev" ~jobs:1
                 ~compute:stub_compute j
             with
            | Ok _ | Error _ -> ()
            | exception Failure _ -> incr fired);
            Tp_fault.Fault.disarm ();
            (try Store.close st with Unix.Unix_error _ -> ())
          done)
        [ Store.point_write; Store.point_fsync; Store.point_rename ];
      Alcotest.(check bool) "some store steps crashed" true (!fired > 0);
      let resumed =
        with_store crash_dir (fun s -> (run_stub s j).P.r_digest)
      in
      Alcotest.(check string) "digest bit-identical" reference resumed)

(* Real measurement semantics of the two budget kinds: a simulated-
   cycle budget degrades deterministically and is cached; a wall-clock
   timeout fails the trial and stores nothing. *)
let test_cycle_budget_cached_wall_timeout_not () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          let base =
            P.job ~id:"real" ~platforms:[ "haswell" ] ~configs:[ "protected" ]
              ~channels:[ "l1d" ] ~trials:1 ~seed:3 ~samples:60
          in
          let budgeted = base ~trial_cycle_budget:2_000_000 () in
          let r =
            match E.run_job ~store ~jobs:1 budgeted with
            | Ok r -> r
            | Error e -> Alcotest.fail e
          in
          let t = List.hd r.P.r_trials in
          Alcotest.(check bool) "trial degraded" true (t.P.t_status = P.Degraded);
          Alcotest.(check bool)
            "reason is the cycle budget" true
            (t.P.t_degraded_reason = Some "cycle budget exhausted");
          Alcotest.(check int) "degraded result cached" 1 (Store.count store);
          let r2 =
            match E.run_job ~store ~jobs:1 budgeted with
            | Ok r -> r
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check int) "cache hit" 1 r2.P.r_cached;
          Alcotest.(check string) "digest stable" r.P.r_digest r2.P.r_digest;
          (* Wall timeout: host-dependent, so failed and never stored. *)
          let timed_out = base ~trial_timeout_s:0.0 ~max_retries:0 () in
          let r3 =
            match E.run_job ~store ~jobs:1 timed_out with
            | Ok r -> r
            | Error e -> Alcotest.fail e
          in
          Alcotest.(check bool) "trial failed" true (r3.P.r_status = P.Failed);
          Alcotest.(check bool)
            "reason names the timeout" true
            (match (List.hd r3.P.r_trials).P.t_degraded_reason with
            | Some why -> contains_sub why "wall timeout"
            | None -> false);
          Alcotest.(check int)
            "wall-degraded data never stored" 1 (Store.count store)))

(* ---- telemetry --------------------------------------------------- *)

(* The zero-perturbation gate for the metrics layer: the same sweep
   (raw + protected, real compute) run with metrics recording on and
   off must produce bit-identical campaign digests. *)
let test_metrics_digest_identical () =
  with_dir (fun dir ->
      let j =
        P.job ~id:"mt" ~platforms:[ "haswell" ]
          ~configs:[ "raw"; "protected" ] ~channels:[ "l1d" ] ~trials:1
          ~seed:11 ~samples:60 ()
      in
      let digest sub =
        with_store (Filename.concat dir sub) (fun store ->
            match E.run_job ~store ~jobs:1 j with
            | Ok r -> r.P.r_digest
            | Error e -> Alcotest.fail e)
      in
      Tp_obs.Metrics.set_enabled false;
      let off = digest "off" in
      let on =
        Fun.protect
          ~finally:(fun () ->
            Tp_obs.Metrics.set_enabled false;
            Tp_obs.Metrics.reset ())
          (fun () ->
            Tp_obs.Metrics.set_enabled true;
            digest "on")
      in
      Alcotest.(check string)
        "digests bit-identical with metrics on/off" off on)

(* The leakage-drift predicate: fires only on a non-failed leak verdict
   whose measured MI exceeds the recorded certified bound. *)
let test_drift_predicate () =
  let base =
    stub_trial
      {
        E.cl_platform = "haswell";
        cl_plat = Tp_hw.Platform.haswell;
        cl_config = "protected";
        cl_kind = Tp_core.Scenario.Protected;
        cl_channel = "l1d";
        cl_trial = 0;
      }
  in
  let t = { base with P.t_verdict = "leak"; t_mi_bits = 3.5; t_cert_bits = 2 } in
  Alcotest.(check bool) "leak over bound drifts" true (E.drifting t);
  Alcotest.(check bool)
    "leak within bound ok" false
    (E.drifting { t with P.t_cert_bits = 4 });
  Alcotest.(check bool)
    "no-evidence verdict never drifts" false
    (E.drifting { t with P.t_verdict = "no-evidence" });
  Alcotest.(check bool)
    "failed trials never drift" false
    (E.drifting { t with P.t_status = P.Failed });
  (* Switch-path channels are judged against the recorded kernel
     switch-path certificate bound, not the guest-level one. *)
  let k =
    { t with P.t_channel = "kernel"; t_cert_bits = 0; t_kcert_bits = 4 }
  in
  Alcotest.(check bool)
    "kernel channel within kcert bound ok" false (E.drifting k);
  Alcotest.(check bool)
    "kernel channel over kcert bound drifts" true
    (E.drifting { k with P.t_kcert_bits = 2 });
  Alcotest.(check bool)
    "flush channel judged by kcert bound too" true
    (E.drifting { k with P.t_channel = "flush"; t_kcert_bits = 2 })

(* An engine run with metrics on populates the drift counter for
   trials whose stored cert bound is below the measured MI. *)
let test_drift_counter_increments () =
  with_dir (fun dir ->
      with_store dir (fun store ->
          Fun.protect
            ~finally:(fun () ->
              Tp_obs.Metrics.set_enabled false;
              Tp_obs.Metrics.reset ())
            (fun () ->
              Tp_obs.Metrics.set_enabled true;
              Tp_obs.Metrics.reset ();
              let leaky j c =
                Result.map
                  (fun blob ->
                    match P.trial_of_stored ~key:"" blob with
                    | Ok t ->
                        P.stored_of_trial
                          {
                            t with
                            P.t_verdict = "leak";
                            t_mi_bits = 9.0;
                            t_cert_bits = 1;
                          }
                    | Error _ -> blob)
                  (stub_compute j c)
              in
              let r =
                run_stub ~compute:leaky store
                  (job ~channels:[ "l1d" ] ~trials:2 ())
              in
              Alcotest.(check bool)
                "trials drifted" true
                (List.for_all E.drifting r.P.r_trials);
              let fam = Tp_obs.Metrics.counter "tpsim_engine_mi_over_cert_total" in
              Alcotest.(check (option (float 0.0)))
                "drift counter counted both trials" (Some 2.0)
                (Tp_obs.Metrics.value ~labels:[ ("channel", "l1d") ] fam))))

(* ---- top: exposition parsing and quantiles ----------------------- *)

module Top = Tp_serve.Top

let synthetic_exposition =
  String.concat "\n"
    [
      "# HELP tpsim_engine_trials_total Trials.";
      "# TYPE tpsim_engine_trials_total counter";
      "tpsim_engine_trials_total{outcome=\"complete\"} 7";
      "tpsim_engine_trials_total{outcome=\"failed\"} 1";
      "# TYPE tpsim_engine_trial_us histogram";
      "tpsim_engine_trial_us_bucket{le=\"100\"} 2";
      "tpsim_engine_trial_us_bucket{le=\"1000\"} 7";
      "tpsim_engine_trial_us_bucket{le=\"+Inf\"} 8";
      "tpsim_engine_trial_us_sum 4242";
      "tpsim_engine_trial_us_count 8";
      "# TYPE tpsim_store_entries gauge";
      "tpsim_store_entries 42";
      "this line is garbage and must be skipped";
      "# EOF";
    ]

let test_top_parse () =
  let e = Top.parse synthetic_exposition in
  Alcotest.(check (option string))
    "type recorded" (Some "histogram")
    (List.assoc_opt "tpsim_engine_trial_us" e.Top.e_types);
  Alcotest.(check (option (float 0.0)))
    "labelled lookup" (Some 7.0)
    (Top.value ~labels:[ ("outcome", "complete") ] e
       "tpsim_engine_trials_total");
  Alcotest.(check (float 0.0))
    "total sums label sets" 8.0
    (Top.total e "tpsim_engine_trials_total");
  Alcotest.(check (option (float 0.0)))
    "gauge" (Some 42.0)
    (Top.value e "tpsim_store_entries");
  Alcotest.(check
              (list (pair string (float 0.0))))
    "by_label in exposition order"
    [ ("complete", 7.0); ("failed", 1.0) ]
    (Top.by_label e "tpsim_engine_trials_total" "outcome")

let test_top_quantile () =
  let e = Top.parse synthetic_exposition in
  (* count=8: ranks 1..2 -> le 100, 3..7 -> le 1000, 8 -> +Inf (last
     finite bucket answers). *)
  Alcotest.(check (option (float 0.0)))
    "p25 in first bucket" (Some 100.0)
    (Top.quantile e "tpsim_engine_trial_us" 25.0);
  Alcotest.(check (option (float 0.0)))
    "p50 in second bucket" (Some 1000.0)
    (Top.quantile e "tpsim_engine_trial_us" 50.0);
  Alcotest.(check (option (float 0.0)))
    "p100 clamps to last finite bucket" (Some 1000.0)
    (Top.quantile e "tpsim_engine_trial_us" 100.0);
  Alcotest.(check (option (float 0.0)))
    "empty family has no quantile" None
    (Top.quantile e "tpsim_engine_wave_us" 50.0)

let test_top_render () =
  let e = Top.parse synthetic_exposition in
  let frame = Top.render ~now:0.0 e in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "frame mentions %s" sub)
        true (contains_sub frame sub))
    [ "throughput"; "latency"; "store"; "pool"; "leakage"; "p99" ];
  (* Second frame with a prev scrape turns counters into a rate. *)
  let frame2 = Top.render ~prev:(Top.empty, 2.0) ~now:2.0 e in
  Alcotest.(check bool)
    "rate appears with a previous scrape" true
    (contains_sub frame2 "trials/s")

let suite =
  [
    Alcotest.test_case "job wire round-trip" `Quick test_job_roundtrip;
    Alcotest.test_case "job validation" `Quick test_job_validation;
    Alcotest.test_case "stored blob round-trip" `Quick
      test_stored_blob_roundtrip;
    Alcotest.test_case "result wire round-trip" `Quick test_result_roundtrip;
    Alcotest.test_case "bad job rejected" `Quick test_bad_job_rejected;
    Alcotest.test_case "complete then cached" `Quick test_complete_then_cached;
    Alcotest.test_case "cell key independent of job shape" `Quick
      test_cell_key_independent_of_job_shape;
    Alcotest.test_case "retry recovers transient faults" `Quick
      test_retry_recovers_transient;
    Alcotest.test_case "retries exhausted fails the trial" `Quick
      test_retries_exhausted_fails_trial;
    Alcotest.test_case "circuit breaker opens" `Quick test_circuit_breaker;
    Alcotest.test_case "wall budget degrades gracefully" `Quick
      test_wall_budget_degrades;
    Alcotest.test_case "crash-resume: dispatch faults" `Quick
      test_crash_resume_dispatch;
    Alcotest.test_case "crash-resume: store faults" `Quick
      test_crash_resume_store_faults;
    Alcotest.test_case "cycle budget cached, wall timeout not" `Slow
      test_cycle_budget_cached_wall_timeout_not;
    Alcotest.test_case "metrics on/off digests bit-identical" `Slow
      test_metrics_digest_identical;
    Alcotest.test_case "leakage-drift predicate" `Quick test_drift_predicate;
    Alcotest.test_case "drift counter increments" `Quick
      test_drift_counter_increments;
    Alcotest.test_case "top: exposition parse" `Quick test_top_parse;
    Alcotest.test_case "top: histogram quantiles" `Quick test_top_quantile;
    Alcotest.test_case "top: dashboard render" `Quick test_top_render;
  ]
