(* Tests for the hardware simulator: cache geometry/behaviour, TLB,
   predictors, prefetcher, DRAM, interconnect, machine composition. *)

open Tp_hw

let g32k8 = { Cache.size = 32768; ways = 8; line = 64; indexing = Cache.Virtual }

let mk () = Cache.create g32k8

let is_hit = function Cache.Hit -> true | Cache.Miss _ -> false

let test_cache_geometry () =
  Alcotest.(check int) "sets" 64 (Cache.sets g32k8);
  Alcotest.(check int) "colours of L1" 1 (Cache.colours g32k8);
  let llc = { Cache.size = 8 * 1024 * 1024; ways = 16; line = 64; indexing = Cache.Physical } in
  Alcotest.(check int) "LLC sets" 8192 (Cache.sets llc);
  Alcotest.(check int) "LLC colours" 128 (Cache.colours llc);
  let l2 = { Cache.size = 256 * 1024; ways = 8; line = 64; indexing = Cache.Physical } in
  Alcotest.(check int) "x86 L2 colours" 8 (Cache.colours l2)

let test_cache_miss_then_hit () =
  let c = mk () in
  Alcotest.(check bool) "first access misses" false
    (is_hit (Cache.access c ~vaddr:0x1000 ~paddr:0x1000 ~write:false));
  Alcotest.(check bool) "second access hits" true
    (is_hit (Cache.access c ~vaddr:0x1000 ~paddr:0x1000 ~write:false))

let test_cache_same_line_hits () =
  let c = mk () in
  ignore (Cache.access c ~vaddr:0x1000 ~paddr:0x1000 ~write:false);
  Alcotest.(check bool) "same line other byte hits" true
    (is_hit (Cache.access c ~vaddr:0x103F ~paddr:0x103F ~write:false))

let test_cache_conflict_eviction () =
  let c = mk () in
  (* 64 sets * 64B line: addresses 4096 apart map to the same set. *)
  let stride = 64 * 64 in
  for w = 0 to 8 do
    ignore (Cache.access c ~vaddr:(w * stride) ~paddr:(w * stride) ~write:false)
  done;
  (* 9 lines into an 8-way set: the first (LRU) must be gone. *)
  Alcotest.(check bool) "way 0 evicted" false
    (Cache.probe c ~vaddr:0 ~paddr:0);
  Alcotest.(check bool) "way 1 still present" true
    (Cache.probe c ~vaddr:stride ~paddr:stride)

let test_cache_lru_order () =
  let c = mk () in
  let stride = 64 * 64 in
  for w = 0 to 7 do
    ignore (Cache.access c ~vaddr:(w * stride) ~paddr:(w * stride) ~write:false)
  done;
  (* Touch way 0 so way 1 becomes LRU; a new line must evict way 1. *)
  ignore (Cache.access c ~vaddr:0 ~paddr:0 ~write:false);
  ignore (Cache.access c ~vaddr:(8 * stride) ~paddr:(8 * stride) ~write:false);
  Alcotest.(check bool) "way 0 survives (recently used)" true
    (Cache.probe c ~vaddr:0 ~paddr:0);
  Alcotest.(check bool) "way 1 evicted (LRU)" false
    (Cache.probe c ~vaddr:stride ~paddr:stride)

let test_cache_dirty_flush () =
  let c = mk () in
  ignore (Cache.access c ~vaddr:0 ~paddr:0 ~write:true);
  ignore (Cache.access c ~vaddr:64 ~paddr:64 ~write:true);
  ignore (Cache.access c ~vaddr:128 ~paddr:128 ~write:false);
  Alcotest.(check int) "dirty count" 2 (Cache.dirty_lines c);
  let wb = Cache.flush c in
  Alcotest.(check int) "flush writes back dirty lines" 2 wb;
  Alcotest.(check int) "empty after flush" 0 (Cache.valid_lines c);
  Alcotest.(check bool) "probe misses after flush" false
    (Cache.probe c ~vaddr:0 ~paddr:0)

let test_cache_write_hit_dirties () =
  let c = mk () in
  ignore (Cache.access c ~vaddr:0 ~paddr:0 ~write:false);
  Alcotest.(check int) "clean" 0 (Cache.dirty_lines c);
  ignore (Cache.access c ~vaddr:0 ~paddr:0 ~write:true);
  Alcotest.(check int) "dirtied by write hit" 1 (Cache.dirty_lines c)

let test_cache_eviction_reports_address () =
  let c = Cache.create { Cache.size = 128; ways = 1; line = 64; indexing = Cache.Physical } in
  ignore (Cache.access c ~vaddr:0 ~paddr:0 ~write:true);
  (match Cache.access c ~vaddr:128 ~paddr:128 ~write:false with
  | Cache.Miss { evicted_dirty; evicted } ->
      Alcotest.(check bool) "evicted dirty" true evicted_dirty;
      Alcotest.(check int) "evicted line addr" 0 evicted
  | Cache.Hit -> Alcotest.fail "expected miss");
  (* Fill of an invalid way reports no eviction. *)
  match Cache.access c ~vaddr:64 ~paddr:64 ~write:false with
  | Cache.Miss { evicted; _ } -> Alcotest.(check int) "no victim" (-1) evicted
  | Cache.Hit -> Alcotest.fail "expected miss"

let test_cache_virtual_vs_physical_indexing () =
  let v = Cache.create { g32k8 with Cache.indexing = Cache.Virtual } in
  let p = Cache.create { g32k8 with Cache.indexing = Cache.Physical } in
  Alcotest.(check int) "virtual uses vaddr" 1 (Cache.set_of v ~vaddr:64 ~paddr:0);
  Alcotest.(check int) "physical uses paddr" 0 (Cache.set_of p ~vaddr:64 ~paddr:0)

let test_cache_insert_clean () =
  let c = mk () in
  ignore (Cache.insert_clean c ~vaddr:0 ~paddr:0);
  Alcotest.(check bool) "present" true (Cache.probe c ~vaddr:0 ~paddr:0);
  Alcotest.(check int) "not dirty" 0 (Cache.dirty_lines c)

let test_tlb_hit_miss_and_asid () =
  let t = Tlb.create { Tlb.entries = 64; ways = 4 } in
  Alcotest.(check bool) "miss" true
    (Tlb.access t ~asid:1 ~vpn:5 ~global:false = Tlb.Miss);
  Alcotest.(check bool) "hit" true
    (Tlb.access t ~asid:1 ~vpn:5 ~global:false = Tlb.Hit);
  Alcotest.(check bool) "other asid misses" true
    (Tlb.access t ~asid:2 ~vpn:5 ~global:false = Tlb.Miss)

let test_tlb_global_crosses_asids () =
  let t = Tlb.create { Tlb.entries = 64; ways = 4 } in
  ignore (Tlb.access t ~asid:1 ~vpn:9 ~global:true);
  Alcotest.(check bool) "global hits under other asid" true
    (Tlb.access t ~asid:2 ~vpn:9 ~global:true = Tlb.Hit)

let test_tlb_flush_asid_spares_global () =
  let t = Tlb.create { Tlb.entries = 64; ways = 4 } in
  ignore (Tlb.access t ~asid:1 ~vpn:1 ~global:false);
  ignore (Tlb.access t ~asid:1 ~vpn:2 ~global:true);
  ignore (Tlb.access t ~asid:2 ~vpn:3 ~global:false);
  Tlb.flush_asid t 1;
  Alcotest.(check bool) "asid1 entry gone" false (Tlb.probe t ~asid:1 ~vpn:1);
  Alcotest.(check bool) "global survives" true (Tlb.probe t ~asid:1 ~vpn:2);
  Alcotest.(check bool) "asid2 survives" true (Tlb.probe t ~asid:2 ~vpn:3)

let test_tlb_conflict_one_way () =
  (* 1-way 32-entry TLB: vpns 32 apart conflict (the Sabre L1 TLBs). *)
  let t = Tlb.create { Tlb.entries = 32; ways = 1 } in
  ignore (Tlb.access t ~asid:1 ~vpn:0 ~global:false);
  ignore (Tlb.access t ~asid:1 ~vpn:32 ~global:false);
  Alcotest.(check bool) "original evicted" false (Tlb.probe t ~asid:1 ~vpn:0)

let test_tlb_flush_all () =
  let t = Tlb.create { Tlb.entries = 64; ways = 4 } in
  ignore (Tlb.access t ~asid:1 ~vpn:1 ~global:true);
  Tlb.flush_all t;
  Alcotest.(check int) "empty" 0 (Tlb.valid_entries t)

let test_btb_predicts_after_training () =
  let b = Btb.create { Btb.entries = 512; ways = 4 } in
  Alcotest.(check bool) "cold mispredicts" true
    (Btb.branch b ~addr:0x400 ~target:0x800 = Btb.Mispredicted);
  Alcotest.(check bool) "trained predicts" true
    (Btb.branch b ~addr:0x400 ~target:0x800 = Btb.Predicted);
  Alcotest.(check bool) "target change mispredicts" true
    (Btb.branch b ~addr:0x400 ~target:0xC00 = Btb.Mispredicted)

let test_btb_flush () =
  let b = Btb.create { Btb.entries = 512; ways = 4 } in
  ignore (Btb.branch b ~addr:0x400 ~target:0x800);
  Btb.flush b;
  Alcotest.(check bool) "mispredicts after flush" true
    (Btb.branch b ~addr:0x400 ~target:0x800 = Btb.Mispredicted);
  Alcotest.(check int) "then one valid entry" 1 (Btb.valid_entries b)

let test_btb_conflict () =
  let b = Btb.create { Btb.entries = 8; ways = 1 } in
  ignore (Btb.branch b ~addr:0 ~target:100);
  (* 8 sets, 4-byte granularity: addr 32 maps to set 0 too. *)
  ignore (Btb.branch b ~addr:32 ~target:200);
  Alcotest.(check bool) "alias evicted original" true
    (Btb.branch b ~addr:0 ~target:100 = Btb.Mispredicted)

let test_bhb_learns_pattern () =
  let h = Bhb.create { Bhb.history_bits = 8; pht_entries = 1024 } in
  (* A branch always taken becomes predicted after warmup. *)
  let mis = ref 0 in
  for i = 1 to 100 do
    if Bhb.branch h ~addr:0x40 ~taken:true = Bhb.Mispredicted && i > 10 then
      incr mis
  done;
  Alcotest.(check int) "steady state predicts always-taken" 0 !mis

let test_bhb_flush_resets () =
  let h = Bhb.create { Bhb.history_bits = 8; pht_entries = 1024 } in
  for _ = 1 to 50 do
    ignore (Bhb.branch h ~addr:0x40 ~taken:true)
  done;
  Bhb.flush h;
  Alcotest.(check bool) "mispredicts taken after flush" true
    (Bhb.branch h ~addr:0x40 ~taken:true = Bhb.Mispredicted)

let test_prefetcher_stream_detection () =
  let pf = Prefetcher.create ~slots:16 ~degree:2 () in
  let line = 64 in
  (* Sequential accesses within a page: third access confirms. *)
  Alcotest.(check (list int)) "1st: none" [] (Prefetcher.on_access pf ~paddr:0 ~line);
  Alcotest.(check (list int)) "2nd: none" [] (Prefetcher.on_access pf ~paddr:64 ~line);
  let pfs = Prefetcher.on_access pf ~paddr:128 ~line in
  Alcotest.(check (list int)) "3rd: prefetch next two" [ 192; 256 ] pfs

let test_prefetcher_page_boundary () =
  let pf = Prefetcher.create ~slots:16 ~degree:2 () in
  let line = 64 in
  let last = 4096 - 64 in
  ignore (Prefetcher.on_access pf ~paddr:(last - 128) ~line);
  ignore (Prefetcher.on_access pf ~paddr:(last - 64) ~line);
  let pfs = Prefetcher.on_access pf ~paddr:last ~line in
  Alcotest.(check (list int)) "no cross-page prefetch" [] pfs

let test_prefetcher_disabled () =
  let pf = Prefetcher.create ~slots:16 ~degree:2 () in
  Prefetcher.set_enabled pf false;
  for i = 0 to 5 do
    Alcotest.(check (list int)) "disabled: none" []
      (Prefetcher.on_access pf ~paddr:(i * 64) ~line:64)
  done

let test_prefetcher_state_survives_and_aliases () =
  let pf = Prefetcher.create ~slots:16 ~degree:2 () in
  let line = 64 in
  (* Domain A trains a stream on page 0. *)
  for i = 0 to 4 do
    ignore (Prefetcher.on_access pf ~paddr:(i * line) ~line)
  done;
  Alcotest.(check bool) "trained" true (Prefetcher.trained_slots pf >= 1);
  (* Domain B touches a page aliasing the same (hashed) slot and the
     same partial tag: the tracker still holds A's state, so B's first
     access that "continues" A's stream triggers a spurious prefetch. *)
  let slot0 = Prefetcher.slot_of pf ~page:0 in
  let ptag page = (page lsr 4) land 3 in
  let rec find page =
    if Prefetcher.slot_of pf ~page = slot0 && ptag page = ptag 0 && page > 0 then
      page
    else find (page + 1)
  in
  let pb = find 1 * 4096 in
  let pfs = Prefetcher.on_access pf ~paddr:(pb + (5 * line)) ~line in
  (* A's last_line was 4, direction +1; B's first access to line 5
     looks like a continuation => spurious prefetch, B-visible. *)
  Alcotest.(check bool) "spurious prefetch from stale state" true
    (List.length pfs > 0);
  Prefetcher.hard_reset pf;
  Alcotest.(check int) "hard reset clears" 0 (Prefetcher.trained_slots pf)

let test_dram_row_buffer () =
  let d = Dram.create { Dram.banks = 8; row_bits = 13; t_hit = 100; t_miss = 200 } in
  Alcotest.(check int) "first access misses row" 200 (Dram.access d ~paddr:0);
  Alcotest.(check int) "same row hits" 100 (Dram.access d ~paddr:64);
  (* Next row in the same bank: rows are bank-interleaved, so row+8. *)
  Alcotest.(check int) "row conflict misses" 200
    (Dram.access d ~paddr:(8 * 8192));
  Dram.close_all d;
  Alcotest.(check int) "closed after precharge" 200 (Dram.access d ~paddr:64)

(* Issue [n] transactions on [core], one every [gap] cycles; returns
   the delay of the last one. *)
let flood bus ~core ~gap ~n =
  let d = ref 0 in
  for i = 1 to n do
    d := Interconnect.record bus ~core ~now:(i * gap)
  done;
  !d

let test_interconnect_contention () =
  let b = Interconnect.create ~cores:2 ~window:1000 ~slots_per_window:5 () in
  (* A lone moderate stream fits the service rate... *)
  Alcotest.(check int) "alone: no delay" 0 (flood b ~core:0 ~gap:300 ~n:20);
  (* ...but once a second core streams concurrently, delays appear. *)
  ignore (flood b ~core:1 ~gap:300 ~n:20);
  let d = Interconnect.record b ~core:0 ~now:6300 in
  Alcotest.(check bool) "delayed under contention" true (d > 0)

let test_interconnect_partitioned () =
  (* Under the hypothetical bandwidth partition, a core's delay is
     independent of the other core's traffic. *)
  let measure ~other_floods =
    let b = Interconnect.create ~cores:2 ~window:1000 ~slots_per_window:5 () in
    Interconnect.set_partitioned b true;
    if other_floods then ignore (flood b ~core:1 ~gap:10 ~n:50);
    flood b ~core:0 ~gap:300 ~n:20
  in
  Alcotest.(check int) "other core's flood is invisible"
    (measure ~other_floods:false)
    (measure ~other_floods:true)

let test_machine_latency_orders () =
  let m = Machine.create Platform.haswell in
  let miss = Machine.access m ~core:0 ~asid:1 ~vaddr:0x10000 ~paddr:0x10000 ~kind:Defs.Read () in
  let hit = Machine.access m ~core:0 ~asid:1 ~vaddr:0x10000 ~paddr:0x10000 ~kind:Defs.Read () in
  Alcotest.(check bool) "miss slower than hit" true (miss > hit);
  Alcotest.(check bool) "hit is L1-ish" true (hit <= 10)

let test_machine_cycles_accumulate () =
  let m = Machine.create Platform.sabre in
  let c0 = Machine.cycles m ~core:0 in
  ignore (Machine.access m ~core:0 ~asid:1 ~vaddr:0 ~paddr:0 ~kind:Defs.Read ());
  Alcotest.(check bool) "cycles advanced" true (Machine.cycles m ~core:0 > c0);
  Alcotest.(check int) "other core unaffected" 0 (Machine.cycles m ~core:1)

let test_machine_llc_back_invalidation () =
  let m = Machine.create Platform.haswell in
  (* Core 0 loads a line (fills L1/L2/LLC). *)
  ignore (Machine.access m ~core:0 ~asid:1 ~vaddr:0x40000 ~paddr:0x40000 ~kind:Defs.Read ());
  Alcotest.(check bool) "in core0 L1" true
    (Cache.probe (Machine.l1d m ~core:0) ~vaddr:0x40000 ~paddr:0x40000);
  (* Core 1 floods the same LLC set until core0's line is evicted. *)
  let llc = Machine.llc m in
  let g = Cache.geometry llc in
  let stride = Cache.sets g * g.Cache.line in
  for w = 1 to g.Cache.ways + 4 do
    let a = 0x40000 + (w * stride) in
    ignore (Machine.access m ~core:1 ~asid:2 ~vaddr:a ~paddr:a ~kind:Defs.Read ())
  done;
  Alcotest.(check bool) "LLC eviction back-invalidates core0 L1" false
    (Cache.probe (Machine.l1d m ~core:0) ~vaddr:0x40000 ~paddr:0x40000)

let test_machine_flush_ops () =
  let m = Machine.create Platform.sabre in
  ignore (Machine.access m ~core:0 ~asid:1 ~vaddr:0 ~paddr:0 ~kind:Defs.Write ());
  let cost = Machine.flush_l1_hw m ~core:0 in
  Alcotest.(check bool) "flush costs cycles" true (cost > 0);
  Alcotest.(check int) "L1D empty" 0 (Cache.valid_lines (Machine.l1d m ~core:0))

let test_machine_flush_cost_depends_on_dirtiness () =
  let mk_dirty n =
    let m = Machine.create Platform.sabre in
    for i = 0 to n - 1 do
      ignore
        (Machine.access m ~core:0 ~asid:1 ~vaddr:(i * 32) ~paddr:(i * 32)
           ~kind:Defs.Write ())
    done;
    Machine.flush_l1_hw m ~core:0
  in
  Alcotest.(check bool) "more dirty lines cost more" true (mk_dirty 512 > mk_dirty 16)

let test_cache_masked_allocation () =
  let c = Cache.create { Cache.size = 512; ways = 8; line = 64; indexing = Cache.Physical } in
  (* One set, 8 ways; class A owns ways 0-3, class B ways 4-7. *)
  let mask_a = 0x0F and mask_b = 0xF0 in
  for i = 0 to 3 do
    ignore (Cache.access_masked c ~alloc_ways:mask_a ~vaddr:(i * 64) ~paddr:(i * 64) ~write:false)
  done;
  for i = 4 to 7 do
    ignore (Cache.access_masked c ~alloc_ways:mask_b ~vaddr:(i * 64) ~paddr:(i * 64) ~write:false)
  done;
  (* B floods: it may only displace its own lines; A's survive. *)
  for i = 8 to 31 do
    ignore (Cache.access_masked c ~alloc_ways:mask_b ~vaddr:(i * 64) ~paddr:(i * 64) ~write:false)
  done;
  for i = 0 to 3 do
    Alcotest.(check bool) "class A line survives B's flood" true
      (Cache.probe c ~vaddr:(i * 64) ~paddr:(i * 64))
  done;
  (* Hits cross classes: B can still *read* an A-allocated line. *)
  Alcotest.(check bool) "cross-class hit" true
    (Cache.access_masked c ~alloc_ways:mask_b ~vaddr:0 ~paddr:0 ~write:false
    = Cache.Hit)

let test_machine_clflush_globally_evicts () =
  let m = Machine.create Platform.haswell in
  ignore (Machine.access m ~core:0 ~asid:1 ~vaddr:0x5000 ~paddr:0x5000 ~kind:Defs.Read ());
  ignore (Machine.access m ~core:1 ~asid:2 ~vaddr:0x5000 ~paddr:0x5000 ~kind:Defs.Read ());
  let cost = Machine.clflush m ~core:0 ~paddr:0x5000 in
  Alcotest.(check bool) "clflush costs cycles" true (cost > 0);
  Alcotest.(check bool) "gone from LLC" false
    (Cache.probe (Machine.llc m) ~vaddr:0x5000 ~paddr:0x5000);
  Alcotest.(check bool) "gone from the other core's L1 too" false
    (Cache.probe (Machine.l1d m ~core:1) ~vaddr:0x5000 ~paddr:0x5000);
  (* The next access pays the full miss again. *)
  let lat = Machine.access m ~core:1 ~asid:2 ~vaddr:0x5000 ~paddr:0x5000 ~kind:Defs.Read () in
  Alcotest.(check bool) "reload is a full miss" true (lat > 100)

let test_dram_bank_hash_unpartitionable () =
  (* The §2.2 point behind the row-buffer channel: page colouring
     constrains frame mod n_colours, but the hashed bank selector still
     spreads any colour class over every bank. *)
  let cfg = Platform.haswell.Platform.dram in
  let banks_seen = Hashtbl.create 8 in
  for frame = 0 to 4095 do
    if frame mod 8 = 3 (* one colour class *) then
      Hashtbl.replace banks_seen (Dram.bank_of cfg ~paddr:(frame * 4096)) ()
  done;
  Alcotest.(check int) "one colour reaches all banks" cfg.Dram.banks
    (Hashtbl.length banks_seen)

let qcheck_clflush_then_miss =
  QCheck.Test.make ~name:"clflush forces the next access to miss" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun a ->
      let a = a land lnot 63 in
      let m = Machine.create Platform.haswell in
      ignore (Machine.access m ~core:0 ~asid:1 ~vaddr:a ~paddr:a ~kind:Defs.Read ());
      ignore (Machine.clflush m ~core:0 ~paddr:a);
      Machine.access m ~core:0 ~asid:1 ~vaddr:a ~paddr:a ~kind:Defs.Read () > 50)

let test_platform_table1 () =
  let h = Platform.haswell in
  Alcotest.(check int) "haswell colours (L2)" 8 (Platform.colours h);
  Alcotest.(check int) "haswell LLC colours" 128 (Platform.llc_colours h);
  let s = Platform.sabre in
  Alcotest.(check int) "sabre colours (L2=LLC)" 16 (Platform.colours s);
  Alcotest.(check bool) "sabre has L1 flush instr" true s.Platform.has_l1_flush_instr;
  Alcotest.(check bool) "haswell lacks L1 flush instr" false
    h.Platform.has_l1_flush_instr;
  Alcotest.(check (float 1e-6)) "cycles->us" 1.0 (Platform.cycles_to_us h 3400)

let qcheck_cache_occupancy_bounded =
  QCheck.Test.make ~name:"cache occupancy never exceeds capacity" ~count:50
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 400) (int_bound 100_000)))
    (fun (_, addrs) ->
      let c = Cache.create { Cache.size = 4096; ways = 4; line = 64; indexing = Cache.Physical } in
      List.iter
        (fun a -> ignore (Cache.access c ~vaddr:a ~paddr:a ~write:(a land 1 = 1)))
        addrs;
      Cache.valid_lines c <= Cache.capacity_lines c
      && Cache.dirty_lines c <= Cache.valid_lines c)

let qcheck_cache_flush_empties =
  QCheck.Test.make ~name:"flush always empties the cache" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create { Cache.size = 8192; ways = 2; line = 64; indexing = Cache.Virtual } in
      List.iter (fun a -> ignore (Cache.access c ~vaddr:a ~paddr:a ~write:true)) addrs;
      ignore (Cache.flush c);
      Cache.valid_lines c = 0 && Cache.dirty_lines c = 0)

let qcheck_access_after_access_hits =
  QCheck.Test.make ~name:"immediate re-access always hits" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun a ->
      let c = mk () in
      ignore (Cache.access c ~vaddr:a ~paddr:a ~write:false);
      is_hit (Cache.access c ~vaddr:a ~paddr:a ~write:false))

let qcheck_tlb_occupancy =
  QCheck.Test.make ~name:"tlb occupancy bounded" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 300) (int_bound 10_000))
    (fun vpns ->
      let t = Tlb.create { Tlb.entries = 64; ways = 4 } in
      List.iter (fun v -> ignore (Tlb.access t ~asid:1 ~vpn:v ~global:false)) vpns;
      Tlb.valid_entries t <= 64)

let suite =
  [
    Alcotest.test_case "cache geometry" `Quick test_cache_geometry;
    Alcotest.test_case "cache miss then hit" `Quick test_cache_miss_then_hit;
    Alcotest.test_case "cache same line hits" `Quick test_cache_same_line_hits;
    Alcotest.test_case "cache conflict eviction" `Quick test_cache_conflict_eviction;
    Alcotest.test_case "cache LRU order" `Quick test_cache_lru_order;
    Alcotest.test_case "cache dirty flush" `Quick test_cache_dirty_flush;
    Alcotest.test_case "cache write-hit dirties" `Quick test_cache_write_hit_dirties;
    Alcotest.test_case "cache eviction address" `Quick test_cache_eviction_reports_address;
    Alcotest.test_case "cache indexing policy" `Quick test_cache_virtual_vs_physical_indexing;
    Alcotest.test_case "cache insert clean" `Quick test_cache_insert_clean;
    Alcotest.test_case "tlb hit/miss/asid" `Quick test_tlb_hit_miss_and_asid;
    Alcotest.test_case "tlb global entries" `Quick test_tlb_global_crosses_asids;
    Alcotest.test_case "tlb flush_asid spares global" `Quick test_tlb_flush_asid_spares_global;
    Alcotest.test_case "tlb 1-way conflicts" `Quick test_tlb_conflict_one_way;
    Alcotest.test_case "tlb flush all" `Quick test_tlb_flush_all;
    Alcotest.test_case "btb trains" `Quick test_btb_predicts_after_training;
    Alcotest.test_case "btb flush" `Quick test_btb_flush;
    Alcotest.test_case "btb conflicts" `Quick test_btb_conflict;
    Alcotest.test_case "bhb learns" `Quick test_bhb_learns_pattern;
    Alcotest.test_case "bhb flush" `Quick test_bhb_flush_resets;
    Alcotest.test_case "prefetcher stream" `Quick test_prefetcher_stream_detection;
    Alcotest.test_case "prefetcher page boundary" `Quick test_prefetcher_page_boundary;
    Alcotest.test_case "prefetcher disable" `Quick test_prefetcher_disabled;
    Alcotest.test_case "prefetcher residual state" `Quick
      test_prefetcher_state_survives_and_aliases;
    Alcotest.test_case "dram row buffer" `Quick test_dram_row_buffer;
    Alcotest.test_case "interconnect contention" `Quick test_interconnect_contention;
    Alcotest.test_case "interconnect partitioned" `Quick test_interconnect_partitioned;
    Alcotest.test_case "machine latency orders" `Quick test_machine_latency_orders;
    Alcotest.test_case "machine cycle accounting" `Quick test_machine_cycles_accumulate;
    Alcotest.test_case "machine LLC back-invalidation" `Quick
      test_machine_llc_back_invalidation;
    Alcotest.test_case "machine flush ops" `Quick test_machine_flush_ops;
    Alcotest.test_case "machine flush cost vs dirtiness" `Quick
      test_machine_flush_cost_depends_on_dirtiness;
    Alcotest.test_case "cache masked allocation (CAT)" `Quick
      test_cache_masked_allocation;
    Alcotest.test_case "clflush global eviction" `Quick
      test_machine_clflush_globally_evicts;
    Alcotest.test_case "dram bank hash vs colouring" `Quick
      test_dram_bank_hash_unpartitionable;
    QCheck_alcotest.to_alcotest qcheck_clflush_then_miss;
    Alcotest.test_case "platform table 1" `Quick test_platform_table1;
    QCheck_alcotest.to_alcotest qcheck_cache_occupancy_bounded;
    QCheck_alcotest.to_alcotest qcheck_cache_flush_empties;
    QCheck_alcotest.to_alcotest qcheck_access_after_access_hits;
    QCheck_alcotest.to_alcotest qcheck_tlb_occupancy;
  ]
