(* Tests for the leakage certifier: sound per-channel bounds
   specialised by configuration (0 bits under full time protection,
   structural capacity when raw, program footprints when a guest is
   given), the small-scope exhaustive noninterference check and its
   cross-validation against the abstract bounds, the monotonicity of
   certification along the Config.strengthen lattice, the
   Bounds-domination of the shrunken-machine scrub, and the JSON/SARIF
   emission (round-trip through a strict parser). *)

open Tp_core
open Tp_kernel
module Diag = Tp_analysis.Diag
module Lint = Tp_analysis.Lint
module Ctcheck = Tp_analysis.Ctcheck
module Ct_ir = Tp_analysis.Ct_ir
module Absint = Tp_analysis.Absint
module Certify = Tp_analysis.Certify
module Kcert = Tp_analysis.Kcert
module Shrink = Tp_hw.Shrink
module Machine = Tp_hw.Machine

let haswell = Tp_hw.Platform.haswell
let sabre = Tp_hw.Platform.sabre
let platforms = [ haswell; sabre ]

let all_kinds =
  Scenario.
    [
      Raw;
      Full_flush;
      Protected;
      Coloured_only;
      Protected_no_pad;
      Protected_no_prefetcher;
      Cat_llc;
    ]

(* Booting is the expensive part; views are reused across tests. *)
let view =
  let cache = Hashtbl.create 8 in
  fun kind p ->
    let key = Scenario.name kind ^ "/" ^ p.Tp_hw.Platform.name in
    match Hashtbl.find_opt cache key with
    | Some v -> v
    | None ->
        let v = Lint.view_of_booted (Scenario.boot kind p) in
        Hashtbl.replace cache key v;
        v

let bound_of c ch =
  List.find (fun b -> b.Certify.b_channel = ch) c.Certify.c_bounds

(* ------------------------------------------------------------------ *)
(* Configuration-level certificates *)

let test_protected_zero () =
  List.iter
    (fun p ->
      let c = Certify.certify_view (view Scenario.Protected p) in
      Alcotest.(check int)
        (p.Tp_hw.Platform.name ^ " state bits")
        0 (Certify.state_bits c);
      Alcotest.(check int) (p.Tp_hw.Platform.name ^ " timing bits") 0
        c.Certify.c_timing_bits;
      Alcotest.(check int)
        (p.Tp_hw.Platform.name ^ " total bits")
        0 (Certify.total_bits c);
      Alcotest.(check bool)
        (p.Tp_hw.Platform.name ^ " report clean")
        true
        (Diag.clean (Certify.report c)))
    platforms

let test_raw_positive () =
  List.iter
    (fun p ->
      let c = Certify.certify_view (view Scenario.Raw p) in
      (* Every channel open at its structural capacity; in particular
         L1-D and TLB (the acceptance floor) must be strictly
         positive. *)
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s > 0" p.Tp_hw.Platform.name
               (Certify.channel_name b.Certify.b_channel))
            true (b.Certify.b_bits > 0);
          Alcotest.(check int)
            (Printf.sprintf "%s %s at capacity" p.Tp_hw.Platform.name
               (Certify.channel_name b.Certify.b_channel))
            b.Certify.b_raw b.Certify.b_bits)
        c.Certify.c_bounds;
      Alcotest.(check bool)
        (p.Tp_hw.Platform.name ^ " timing open")
        true
        (c.Certify.c_timing_bits > 0);
      let r = Certify.report c in
      Alcotest.(check bool) "dirty" false (Diag.clean r);
      List.iter
        (fun rule ->
          Alcotest.(check bool) (rule ^ " present") true
            (List.mem rule (Diag.rules r)))
        [
          Certify.rule_l1d_residue;
          Certify.rule_tlb_residue;
          Certify.rule_pad_timing;
        ])
    platforms

let test_coloured_only_channels () =
  (* Coloured userland with a shared kernel: the kernel image defeats
     the spatial partition (Fig. 3), so the LLC stays open — and no
     flushing means the on-core channels stay open too. *)
  let c = Certify.certify_view (view Scenario.Coloured_only haswell) in
  Alcotest.(check bool) "LLC open" true ((bound_of c Certify.Llc).b_bits > 0);
  Alcotest.(check bool) "L1-D open" true ((bound_of c Certify.L1d).b_bits > 0)

let test_no_pad_timing_only () =
  List.iter
    (fun p ->
      let c = Certify.certify_view (view Scenario.Protected_no_pad p) in
      Alcotest.(check int) (p.Tp_hw.Platform.name ^ " state") 0
        (Certify.state_bits c);
      Alcotest.(check bool)
        (p.Tp_hw.Platform.name ^ " timing residue")
        true
        (c.Certify.c_timing_bits > 0))
    platforms

(* ------------------------------------------------------------------ *)
(* Program-level certificates (Absint footprints) *)

let test_fixture_sqmul_raw () =
  let v = view Scenario.Raw haswell in
  let fx = Option.get (Ctcheck.fixture "sqmul") in
  let c = Certify.certify_fixture v fx in
  List.iter
    (fun ch ->
      Alcotest.(check bool)
        (Certify.channel_name ch ^ " > 0")
        true
        ((bound_of c ch).Certify.b_bits > 0))
    [ Certify.L1d; Certify.Tlb; Certify.Bp ];
  (* Tightening: the program footprint can only shrink the structural
     capacities. *)
  let structural = Certify.certify_view v in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Certify.channel_name b.Certify.b_channel ^ " tightened")
        true
        (b.Certify.b_bits
        <= (bound_of structural b.Certify.b_channel).Certify.b_bits))
    c.Certify.c_bounds;
  Alcotest.(check bool) "strictly below capacity" true
    (Certify.total_bits c < Certify.total_bits structural)

let test_fixture_ct_zero_state () =
  (* The constant-time rewrites deposit no secret-dependent residency
     even on the raw machine: only the timing pseudo-channel (a
     configuration property, not a program property) remains. *)
  let v = view Scenario.Raw haswell in
  List.iter
    (fun name ->
      let fx = Option.get (Ctcheck.fixture name) in
      let c = Certify.certify_fixture v fx in
      Alcotest.(check int) (name ^ " state bits") 0 (Certify.state_bits c))
    [ "sqmul-ct"; "sbox-ct" ]

let test_fixtures_protected_zero () =
  let v = view Scenario.Protected haswell in
  List.iter
    (fun fx ->
      let c = Certify.certify_fixture v fx in
      Alcotest.(check int)
        (fx.Ctcheck.fx_program.Ct_ir.p_name ^ " total")
        0 (Certify.total_bits c))
    Ctcheck.fixtures

(* ------------------------------------------------------------------ *)
(* Monotonicity along the strengthening lattice (QCheck) *)

let override_config v (c : Config.t) =
  {
    v with
    Lint.v_config = c;
    Lint.v_pad = c.Config.pad_cycles;
    Lint.v_kernels =
      List.map
        (fun k -> { k with Lint.kv_pad = c.Config.pad_cycles })
        v.Lint.v_kernels;
  }

let qcheck_strengthen_monotone =
  QCheck.Test.make
    ~name:"strengthening never increases the certified bound" ~count:60
    QCheck.(pair (int_bound (List.length all_kinds - 1)) bool)
    (fun (ki, on_sabre) ->
      let p = if on_sabre then sabre else haswell in
      let kind = List.nth all_kinds ki in
      let v = view kind p in
      let base_cfg = v.Lint.v_config in
      let base = Certify.total_bits (Certify.certify_view (override_config v base_cfg)) in
      List.for_all
        (fun c' ->
          let t =
            Certify.total_bits (Certify.certify_view (override_config v c'))
          in
          if t > base then
            QCheck.Test.fail_reportf
              "%s %s: strengthened config certifies %d > base %d bits"
              p.Tp_hw.Platform.name (Scenario.name kind) t base
          else true)
        (Config.strengthen ~pad_for:(Lint.pad_bound p) base_cfg))

(* ------------------------------------------------------------------ *)
(* Shrink: scrub cost domination (QCheck) *)

let scrub_of_bits bits =
  {
    Shrink.sc_flush_l1 = bits land 1 <> 0;
    sc_flush_l2 = bits land 2 <> 0;
    sc_flush_llc = bits land 4 <> 0;
    sc_flush_tlb = bits land 8 <> 0;
    sc_flush_bp = bits land 16 <> 0;
    sc_close_dram = bits land 32 <> 0;
  }

let qcheck_scrub_bound_dominates =
  let geometries = Shrink.variants haswell @ Shrink.variants sabre in
  QCheck.Test.make
    ~name:"Shrink.bound dominates the exact scrub cost" ~count:120
    QCheck.(
      triple
        (int_bound (List.length geometries - 1))
        (int_bound 63) (small_list small_nat))
    (fun (gi, sbits, activity) ->
      let p = List.nth geometries gi in
      let m = Machine.create p in
      let scrub = scrub_of_bits sbits in
      (* Dirty the machine with arbitrary traffic first: the bound must
         hold from every reachable state, including dirty lines (write
         backs) and populated TLBs/predictors. *)
      List.iteri
        (fun i n ->
          let vaddr = 0x1000_0000 + (n mod 16 * 4096) + (n mod 64 * 64) in
          let kind =
            match n mod 3 with
            | 0 -> Tp_hw.Defs.Read
            | 1 -> Tp_hw.Defs.Write
            | _ -> Tp_hw.Defs.Fetch
          in
          ignore
            (Machine.access m ~core:0 ~asid:(1 + (n mod 2)) ~vaddr
               ~paddr:vaddr ~kind ());
          if n mod 5 = 0 then
            ignore
              (Machine.cond_branch m ~core:0 ~asid:1
                 ~vaddr:(0x2000_0000 + (i mod 32 * 64))
                 ~paddr:(0x2000_0000 + (i mod 32 * 64))
                 ~taken:(n mod 2 = 0)))
        activity;
      let cost = Shrink.apply m ~core:0 scrub in
      let bound = Shrink.bound p scrub in
      if cost > bound then
        QCheck.Test.fail_reportf "%s: scrub cost %d > bound %d"
          p.Tp_hw.Platform.name cost bound
      else true)

let test_dram_close_cost_consistent () =
  Alcotest.(check int) "Shrink mirrors Domain_switch"
    Domain_switch.dram_close_cost Shrink.dram_close_cost

(* ------------------------------------------------------------------ *)
(* Small-scope exhaustive noninterference *)

let test_exhaustive_protected_passes () =
  List.iter
    (fun p ->
      let r = Certify.exhaustive p (Scenario.config Scenario.Protected p) in
      Alcotest.(check bool)
        (p.Tp_hw.Platform.name ^ " passes")
        true
        (r.Certify.ex_counterexample = None);
      Alcotest.(check int)
        (p.Tp_hw.Platform.name ^ " all schedules")
        16 r.Certify.ex_schedules)
    platforms

let test_exhaustive_raw_counterexample () =
  List.iter
    (fun p ->
      let r = Certify.exhaustive p (Scenario.config Scenario.Raw p) in
      match r.Certify.ex_counterexample with
      | None -> Alcotest.fail (p.Tp_hw.Platform.name ^ ": raw passed")
      | Some cx ->
          Alcotest.(check int)
            "schedule length = horizon" r.Certify.ex_horizon
            (String.length cx.Certify.cx_schedule);
          String.iter
            (fun ch ->
              Alcotest.(check bool) "schedule alphabet" true
                (ch = 'V' || ch = 'A'))
            cx.Certify.cx_schedule;
          Alcotest.(check bool) "observations differ" true
            (cx.Certify.cx_obs_a <> cx.Certify.cx_obs_b);
          Alcotest.(check bool) "distinct secrets" true
            (cx.Certify.cx_secret_a <> cx.Certify.cx_secret_b))
    platforms

let test_crosscheck_all_configs () =
  (* The soundness cross-validation the two engines owe each other: a
     0-bit certificate must never coexist with a concrete
     distinguishing schedule.  Quantified over every scenario on both
     platforms. *)
  List.iter
    (fun p ->
      List.iter
        (fun kind ->
          let c = Certify.certify_view (view kind p) in
          let r = Certify.exhaustive p (Scenario.config kind p) in
          let name =
            Printf.sprintf "%s %s" p.Tp_hw.Platform.name (Scenario.name kind)
          in
          Alcotest.(check (list string))
            (name ^ " crosscheck silent")
            []
            (List.map
               (fun f -> f.Diag.rule)
               (Certify.crosscheck c r));
          if Certify.total_bits c = 0 then
            Alcotest.(check bool)
              (name ^ " 0 bits => noninterference")
              true
              (r.Certify.ex_counterexample = None))
        all_kinds)
    platforms

(* ------------------------------------------------------------------ *)
(* Measured MI vs certified bound (the harness contract) *)

let measure_l1d kind =
  let p = haswell in
  let b = Scenario.boot kind p in
  let chan = Tp_attacks.Cache_channels.l1d in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = 250;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:77 in
  Tp_attacks.Harness.measure_leak_result b ~sender ~receiver spec ~rng

let test_measured_mi_below_bound_raw () =
  let leak, hr = measure_l1d Scenario.Raw in
  let bits = Certify.total_bits hr.Tp_attacks.Harness.cert in
  Alcotest.(check bool) "raw certifies > 0" true (bits > 0);
  Alcotest.(check bool) "raw leaks (premise non-vacuous)" true
    (leak.Tp_channel.Leakage.verdict = Tp_channel.Leakage.Leak);
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f <= certified %d bits"
       leak.Tp_channel.Leakage.m bits)
    true
    (leak.Tp_channel.Leakage.m <= float_of_int bits)

let test_measured_mi_below_bound_protected () =
  (* A 0-bit certificate: any Leak verdict would exceed the bound. *)
  let leak, hr = measure_l1d Scenario.Protected in
  Alcotest.(check int) "protected certifies 0" 0
    (Certify.total_bits hr.Tp_attacks.Harness.cert);
  Alcotest.(check bool) "no leak above a 0-bit certificate" true
    (leak.Tp_channel.Leakage.verdict <> Tp_channel.Leakage.Leak)

(* ------------------------------------------------------------------ *)
(* JSON / SARIF emission: strict parse and escape round-trip *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

(* A strict little parser — rejects trailing garbage, raw control
   characters in strings, and unknown escapes, so it actually
   exercises the emitter's escaping. *)
let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad_json "eof") in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if next () <> c then raise (Bad_json (Printf.sprintf "expected %c" c))
  in
  let lit w v =
    String.iter (fun c -> if next () <> c then raise (Bad_json w)) w;
    v
  in
  let string_ () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents b
      | '\\' ->
          (match next () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let h = String.init 4 (fun _ -> next ()) in
              let code = int_of_string ("0x" ^ h) in
              (* the emitter only uses \u00XX, for control bytes *)
              if code > 0x7f then raise (Bad_json "unexpected high \\u");
              Buffer.add_char b (Char.chr code)
          | c -> raise (Bad_json (Printf.sprintf "escape \\%c" c)));
          go ()
      | c when Char.code c < 0x20 ->
          raise (Bad_json "raw control character in string")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then (
          incr pos;
          J_obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = string_ () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> members ((k, v) :: acc)
            | '}' -> J_obj (List.rev ((k, v) :: acc))
            | _ -> raise (Bad_json "object separator")
          in
          members []
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then (
          incr pos;
          J_list [])
        else
          let rec items acc =
            let v = value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> J_list (List.rev (v :: acc))
            | _ -> raise (Bad_json "array separator")
          in
          items []
    | '"' -> J_str (string_ ())
    | 't' -> lit "true" (J_bool true)
    | 'f' -> lit "false" (J_bool false)
    | 'n' -> lit "null" J_null
    | _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        (try J_num (float_of_string (String.sub s start (!pos - start)))
         with _ -> raise (Bad_json "number"))
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let mem k = function
  | J_obj kvs -> (
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad_json ("missing key " ^ k)))
  | _ -> raise (Bad_json ("not an object at " ^ k))

let jstr = function J_str s -> s | _ -> raise (Bad_json "not a string")
let jlist = function J_list l -> l | _ -> raise (Bad_json "not a list")

let nasty =
  "q\" b\\ nl\n tab\t cr\r bs\b ff\012 nul-ish\001 s\xc2\xa7 end"

let test_json_roundtrip_nasty () =
  let r =
    {
      Diag.subject = "subject " ^ nasty;
      findings =
        [
          Diag.error ~rule:"TEST-RULE"
            ~context:[ (nasty, nasty) ]
            ("message " ^ nasty);
        ];
    }
  in
  let j = parse_json (Diag.reports_to_json [ r ]) in
  match jlist j with
  | [ rj ] ->
      Alcotest.(check string) "subject" ("subject " ^ nasty)
        (jstr (mem "subject" rj));
      let fj = List.hd (jlist (mem "findings" rj)) in
      Alcotest.(check string) "message" ("message " ^ nasty)
        (jstr (mem "message" fj));
      Alcotest.(check string) "context value" nasty
        (jstr (mem nasty (mem "context" fj)))
  | _ -> Alcotest.fail "expected a one-report array"

let test_sarif_shape () =
  let reports =
    [
      Certify.report (Certify.certify_view (view Scenario.Raw haswell));
      Certify.report (Certify.certify_view (view Scenario.Protected haswell));
      {
        Diag.subject = "nasty " ^ nasty;
        findings = [ Diag.warning ~rule:"TEST-RULE" nasty ];
      };
    ]
  in
  let j = parse_json (Diag.reports_to_sarif reports) in
  Alcotest.(check string) "version" "2.1.0" (jstr (mem "version" j));
  let run = List.hd (jlist (mem "runs" j)) in
  let driver = mem "driver" (mem "tool" run) in
  Alcotest.(check string) "driver name" "tpsim" (jstr (mem "name" driver));
  let rules = Array.of_list (jlist (mem "rules" driver)) in
  let results = jlist (mem "results" run) in
  let expected = List.length (List.concat_map (fun r -> r.Diag.findings) reports) in
  Alcotest.(check int) "one result per finding" expected (List.length results);
  List.iter
    (fun res ->
      let idx =
        match mem "ruleIndex" res with
        | J_num f -> int_of_float f
        | _ -> raise (Bad_json "ruleIndex")
      in
      Alcotest.(check bool) "ruleIndex in range" true
        (idx >= 0 && idx < Array.length rules);
      Alcotest.(check string) "ruleId matches rules table"
        (jstr (mem "id" rules.(idx)))
        (jstr (mem "ruleId" res));
      let level = jstr (mem "level" res) in
      Alcotest.(check bool) ("level " ^ level) true
        (List.mem level [ "error"; "warning"; "note" ]);
      ignore (jstr (mem "text" (mem "message" res))))
    results

(* ------------------------------------------------------------------ *)
(* Ct_ir layout hooks (the certifier's page-colour control) *)

let test_layout_default_preserved () =
  (* Pinning every array to exactly where the default packing puts it
     must reproduce the default execution bit-for-bit: the layout hook
     cannot have moved the historical addresses. *)
  let fx = Option.get (Ctcheck.fixture "sqmul") in
  let layout = Ct_ir.array_layout fx.Ctcheck.fx_program in
  List.iter
    (fun (name, base, _) ->
      Alcotest.(check int) (name ^ " page-aligned") 0 (base mod 4096);
      Alcotest.(check bool) (name ^ " above data_base") true
        (base >= Ct_ir.data_base))
    layout;
  let inputs = fx.Ctcheck.fx_public @ fx.Ctcheck.fx_secret_a in
  let r1 =
    Ct_ir.execute (Machine.create haswell) ~core:0 fx.Ctcheck.fx_program
      ~inputs
  in
  let pins = List.map (fun (nm, base, _) -> (nm, base)) layout in
  let r2 =
    Ct_ir.execute ~arrays_at:pins (Machine.create haswell) ~core:0
      fx.Ctcheck.fx_program ~inputs
  in
  Alcotest.(check bool) "identical traces" true
    (Ct_ir.diff_traces r1.Ct_ir.x_trace r2.Ct_ir.x_trace = None)

let test_layout_pins_respected () =
  let fx = Option.get (Ctcheck.fixture "sqmul") in
  let p = fx.Ctcheck.fx_program in
  let target = 0x5000_0000 in
  let first_array = fst (List.hd p.Ct_ir.p_arrays) in
  let layout = Ct_ir.array_layout ~arrays_at:[ (first_array, target) ] p in
  let _, base, _ =
    List.find (fun (nm, _, _) -> nm = first_array) layout
  in
  Alcotest.(check int) "pinned base" target base;
  (* Unpinned arrays must not collide with the pin. *)
  List.iter
    (fun (nm, b, len) ->
      if nm <> first_array then
        Alcotest.(check bool) (nm ^ " disjoint from pin") true
          (b + (len * Ct_ir.word) <= target || b >= target + 4096))
    layout;
  match
    Ct_ir.array_layout ~arrays_at:[ (first_array, target + 256) ] p
  with
  | _ -> Alcotest.fail "unaligned pin accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Kernel lifecycle certificates (Kcert) *)

let kcert_platforms = Tp_hw.Platform.all

let kcert ?path kind p =
  Kcert.certify ?path p ~config_name:(Scenario.name kind)
    (Scenario.config kind p)

let steps_of_path = function Kcert.Switch -> 12 | Kcert.Clone -> 6 | Kcert.Destroy -> 6

let test_kcert_protected_zero () =
  (* The protected configuration must certify 0 bits on every lifecycle
     path: switch, clone and destroy are all fully scrubbed/partitioned
     and padded/deterministic. *)
  List.iter
    (fun p ->
      List.iter
        (fun path ->
          let c = kcert ~path Scenario.Protected p in
          let name =
            Printf.sprintf "%s %s" p.Tp_hw.Platform.name
              (Kcert.path_slug path)
          in
          Alcotest.(check int) (name ^ " state bits") 0 (Kcert.state_bits c);
          Alcotest.(check int) (name ^ " total bits") 0 (Kcert.total_bits c);
          Alcotest.(check bool)
            (name ^ " report clean")
            true
            (Diag.clean (Kcert.report c));
          Alcotest.(check int)
            (name ^ " steps")
            (steps_of_path path)
            (List.length c.Kcert.k_steps))
        Kcert.all_paths)
    kcert_platforms

let test_kcert_raw_capacity () =
  List.iter
    (fun p ->
      let c = kcert Scenario.Raw p in
      Alcotest.(check bool)
        (p.Tp_hw.Platform.name ^ " residue")
        true
        (Kcert.total_bits c > 0);
      List.iter
        (fun b ->
          let name =
            Printf.sprintf "%s %s" p.Tp_hw.Platform.name
              (Certify.channel_name b.Kcert.kb_channel)
          in
          Alcotest.(check bool) (name ^ " nothing scrubbed") false
            b.Kcert.kb_scrubbed;
          Alcotest.(check int)
            (name ^ " bits = capacity - coverage")
            (b.Kcert.kb_raw - b.Kcert.kb_covered)
            b.Kcert.kb_bits;
          (* The physically-indexed LLC gets no must-coverage from the
             trace; the branch predictor now earns some through the
             modelled BTB/gshare index hashes, so the raw switch bound
             is strictly tighter than the full structural capacity. *)
          if b.Kcert.kb_channel = Certify.Llc then
            Alcotest.(check int) (name ^ " zero coverage") 0
              b.Kcert.kb_covered;
          if b.Kcert.kb_channel = Certify.Bp then
            Alcotest.(check bool) (name ^ " BP hash coverage earned") true
              (b.Kcert.kb_covered > 0))
        c.Kcert.k_bounds;
      let r = Kcert.report c in
      Alcotest.(check bool) (p.Tp_hw.Platform.name ^ " dirty") false
        (Diag.clean r);
      List.iter
        (fun rule ->
          Alcotest.(check bool) (rule ^ " present") true
            (List.mem rule (Diag.rules r)))
        [ Kcert.rule_l1d_residue; Kcert.rule_tlb_residue; Kcert.rule_pad_timing ])
    kcert_platforms

let test_kcert_sound_all_configs () =
  (* The lint cross-check (TP-KCERT-UNSOUND) must stay silent on every
     honestly produced certificate, on every lifecycle path: each
     channel within its structural capacity, timing within the
     pad+operation capacity, the total within the Bounds-derived
     analytic envelope. *)
  List.iter
    (fun p ->
      List.iter
        (fun kind ->
          List.iter
            (fun path ->
              let c = kcert ~path kind p in
              let name =
                Printf.sprintf "%s %s %s" p.Tp_hw.Platform.name
                  (Scenario.name kind) (Kcert.path_slug path)
              in
              List.iter
                (fun b ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s within capacity" name
                       (Certify.channel_name b.Kcert.kb_channel))
                    true
                    (b.Kcert.kb_bits >= 0 && b.Kcert.kb_bits <= b.Kcert.kb_raw))
                c.Kcert.k_bounds;
              Alcotest.(check bool)
                (name ^ " within analytic envelope")
                true
                (Kcert.total_bits c
                <= Kcert.analytic_worst_bits ~path p c.Kcert.k_config);
              Alcotest.(check int) (name ^ " canary silent") 0
                (List.length (Kcert.check_sound p c)))
            Kcert.all_paths;
          Alcotest.(check int)
            (Printf.sprintf "%s %s lint crosscheck silent"
               p.Tp_hw.Platform.name (Scenario.name kind))
            0
            (List.length
               (Kcert.lint_crosscheck p ~config_name:(Scenario.name kind)
                  (Scenario.config kind p))))
        all_kinds)
    kcert_platforms

let test_kcert_absint_differential () =
  (* Differential oracle: the unified Absint kernel-trace back-end must
     reproduce the original standalone set-wise coverage pass
     bit-for-bit on every lifted trace — same platform geometries, same
     granularity, same min(k, ways) counting. *)
  List.iter
    (fun p ->
      List.iter
        (fun kind ->
          let cfg = Scenario.config kind p in
          List.iter
            (fun path ->
              let steps = Kcert.lift ~path p cfg in
              let accs =
                List.concat_map (fun s -> s.Kcert.s_accesses) steps
              in
              let must = List.filter (fun a -> a.Kcert.a_must) accs in
              let is_fetch a = a.Kcert.a_kind = Tp_hw.Defs.Fetch in
              let code = List.filter is_fetch must in
              let data = List.filter (fun a -> not (is_fetch a)) must in
              let cov =
                Absint.cover_trace p
                  (List.map
                     (fun a ->
                       {
                         Absint.ka_vaddr = a.Kcert.a_vaddr;
                         ka_bytes = a.Kcert.a_bytes;
                         ka_fetch = is_fetch a;
                         ka_fixed = a.Kcert.a_must;
                       })
                     accs)
              in
              let name =
                Printf.sprintf "%s %s %s" p.Tp_hw.Platform.name
                  (Scenario.name kind) (Kcert.path_slug path)
              in
              Alcotest.(check int) (name ^ " l1d")
                (Kcert.covered_cache p.Tp_hw.Platform.l1d data)
                cov.Absint.kc_l1d;
              Alcotest.(check int) (name ^ " l1i")
                (Kcert.covered_cache p.Tp_hw.Platform.l1i code)
                cov.Absint.kc_l1i;
              Alcotest.(check int) (name ^ " dtlb")
                (Kcert.covered_tlb p.Tp_hw.Platform.dtlb
                   (Kcert.pages_of data))
                cov.Absint.kc_dtlb;
              Alcotest.(check int) (name ^ " itlb")
                (Kcert.covered_tlb p.Tp_hw.Platform.itlb
                   (Kcert.pages_of code))
                cov.Absint.kc_itlb;
              Alcotest.(check int) (name ^ " l2tlb")
                (Kcert.covered_tlb p.Tp_hw.Platform.l2tlb
                   (Kcert.pages_of must))
                cov.Absint.kc_l2tlb)
            Kcert.all_paths)
        all_kinds)
    kcert_platforms

let qcheck_bp_coverage_capacity =
  (* The BP-hash coverage is a structural under-approximation: whatever
     the (deterministic) branch trace, it can never claim more pinned
     entries than the predictor has. *)
  QCheck.Test.make
    ~name:"BP-hash coverage never exceeds structural capacity" ~count:200
    QCheck.(
      pair
        (small_list (triple small_nat bool small_nat))
        (small_list small_nat))
    (fun (branches, jumps) ->
      List.for_all
        (fun p ->
          let btb = p.Tp_hw.Platform.btb and bhb = p.Tp_hw.Platform.bhb in
          let trace =
            List.map (fun (s, t, n) -> (0x1000 + (s * 4), t, 1 + n)) branches
          in
          let sites = List.map (fun s -> 0x2000 + (s * 4)) jumps in
          let bc = Absint.btb_coverage btb sites in
          let pc = Absint.pht_coverage bhb trace in
          if
            bc < 0
            || bc > btb.Tp_hw.Btb.entries
            || bc > List.length (List.sort_uniq compare sites)
          then
            QCheck.Test.fail_reportf "%s: BTB coverage %d out of range"
              p.Tp_hw.Platform.name bc
          else if pc < 0 || pc > bhb.Tp_hw.Bhb.pht_entries then
            QCheck.Test.fail_reportf "%s: PHT coverage %d out of range"
              p.Tp_hw.Platform.name pc
          else true)
        Tp_hw.Platform.all)

let qcheck_lifecycle_op_bound_dominates =
  (* The analytic clone/destroy costs (Shrink.*_op_bound, feeding the
     certificates' op_bound via Lint) must dominate the exact modelled
     operation cost from every reachable machine state. *)
  let geometries = Shrink.variants haswell @ Shrink.variants sabre in
  QCheck.Test.make
    ~name:"Shrink lifecycle op bounds dominate exact costs" ~count:60
    QCheck.(
      triple
        (int_bound (List.length geometries - 1))
        bool (small_list small_nat))
    (fun (gi, do_clone, activity) ->
      let p = List.nth geometries gi in
      let m = Machine.create p in
      List.iter
        (fun n ->
          let vaddr = 0x1000_0000 + (n mod 16 * 4096) + (n mod 64 * 64) in
          let kind =
            match n mod 3 with
            | 0 -> Tp_hw.Defs.Read
            | 1 -> Tp_hw.Defs.Write
            | _ -> Tp_hw.Defs.Fetch
          in
          ignore
            (Machine.access m ~core:0 ~asid:(1 + (n mod 2)) ~vaddr
               ~paddr:vaddr ~kind ()))
        activity;
      let page = Tp_hw.Defs.page_size in
      let base = 0x5000_0000 in
      let cost, bound =
        if do_clone then
          ( Shrink.clone_op m ~core:0 ~asid:2 ~src:base
              ~dst:(base + (2 * page)),
            Shrink.clone_op_bound p )
        else
          ( Shrink.destroy_op m ~core:0 ~asid:2
              ~barrier:(base + (6 * page)),
            Shrink.destroy_op_bound p )
      in
      if cost > bound then
        QCheck.Test.fail_reportf "%s: %s cost %d > bound %d"
          p.Tp_hw.Platform.name
          (if do_clone then "clone" else "destroy")
          cost bound
      else true)

let test_kcert_canary_fires () =
  (* Sabotage a certificate and the canary must notice: that is the
     whole point of carrying the analytic envelope separately. *)
  let c = kcert Scenario.Raw haswell in
  let inflated =
    {
      c with
      Kcert.k_bounds =
        List.map
          (fun b ->
            if b.Kcert.kb_channel = Certify.L1d then
              { b with Kcert.kb_bits = b.Kcert.kb_raw + 1 }
            else b)
          c.Kcert.k_bounds;
    }
  in
  let findings = Kcert.check_sound haswell inflated in
  Alcotest.(check bool) "inflated channel flagged" true (findings <> []);
  List.iter
    (fun f ->
      Alcotest.(check string) "rule id" Lint.rule_kcert_unsound f.Diag.rule)
    findings;
  let overtimed =
    { c with Kcert.k_timing_bits = Certify.ceil_log2 (c.Kcert.k_pad_bound + 1) + 3 }
  in
  Alcotest.(check bool) "inflated timing flagged" true
    (Kcert.check_sound haswell overtimed <> [])

let qcheck_kcert_strengthen_monotone =
  QCheck.Test.make
    ~name:"strengthening never increases any kernel lifecycle bound"
    ~count:60
    QCheck.(
      pair
        (int_bound (List.length all_kinds - 1))
        (int_bound (List.length Tp_hw.Platform.all - 1)))
    (fun (ki, pi) ->
      let p = List.nth Tp_hw.Platform.all pi in
      let kind = List.nth all_kinds ki in
      let cfg = Scenario.config kind p in
      let bases =
        List.map (fun path -> (path, Kcert.total_bits (kcert ~path kind p)))
          Kcert.all_paths
      in
      List.for_all
        (fun c' ->
          (* The certified bits of every path are monotone along the
             strengthen lattice, and so are the analytic clone/destroy
             duration bounds themselves (colouring can only shrink the
             DRAM component of a sweep). *)
          List.for_all
            (fun (path, base) ->
              let t =
                Kcert.total_bits
                  (Kcert.certify ~path p ~config_name:"strengthened" c')
              in
              if t > base then
                QCheck.Test.fail_reportf
                  "%s %s %s: strengthened kernel cert %d > base %d bits"
                  p.Tp_hw.Platform.name (Scenario.name kind)
                  (Kcert.path_slug path) t base
              else true)
            bases
          && (if Lint.clone_bound p c' > Lint.clone_bound p cfg then
                QCheck.Test.fail_reportf "%s %s: clone bound grew"
                  p.Tp_hw.Platform.name (Scenario.name kind)
              else true)
          &&
          if Lint.destroy_bound p c' > Lint.destroy_bound p cfg then
            QCheck.Test.fail_reportf "%s %s: destroy bound grew"
              p.Tp_hw.Platform.name (Scenario.name kind)
          else true)
        (Config.strengthen ~pad_for:(Lint.pad_bound p) cfg))

let test_schedules_enumeration () =
  (* 2-domain schedules must reproduce the original bit enumeration
     (PR 6) exactly: 'A' for a 0 bit, 'V' for a 1 bit, least
     significant turn first. *)
  let two = Shrink.schedules ~domains:2 ~horizon:4 in
  Alcotest.(check int) "2^4 schedules" 16 (List.length two);
  List.iteri
    (fun i s ->
      Alcotest.(check string) (Printf.sprintf "schedule %d" i)
        (String.init 4 (fun j -> if i lsr j land 1 = 1 then 'V' else 'A'))
        s)
    two;
  let three = Shrink.schedules ~domains:3 ~horizon:4 in
  Alcotest.(check int) "3^4 schedules" 81 (List.length three);
  Alcotest.(check int) "all distinct" 81
    (List.length (List.sort_uniq compare three));
  List.iter
    (fun s ->
      String.iter
        (fun ch ->
          Alcotest.(check bool) "alphabet AVD" true
            (ch = 'A' || ch = 'V' || ch = 'D'))
        s)
    three;
  (match Shrink.schedules ~domains:4 ~horizon:2 with
  | _ -> Alcotest.fail "4 domains accepted"
  | exception Invalid_argument _ -> ());
  match Shrink.schedules ~domains:2 ~horizon:0 with
  | _ -> Alcotest.fail "0 horizon accepted"
  | exception Invalid_argument _ -> ()

let test_kcert_exhaustive3_agreement () =
  (* The 3-domain small-scope check must agree with the abstract
     kernel certificate on every platform: protected (0 bits) passes,
     raw produces a concrete 3-party distinguishing schedule, and the
     certificate embedding never reports a contradiction. *)
  List.iter
    (fun p ->
      let name = p.Tp_hw.Platform.name in
      let cfg = Scenario.config Scenario.Protected p in
      let ex = Certify.exhaustive3 p cfg in
      Alcotest.(check int) (name ^ " domains") 3 ex.Certify.ex_domains;
      Alcotest.(check int) (name ^ " schedules") 81 ex.Certify.ex_schedules;
      Alcotest.(check bool) (name ^ " protected passes") true
        (ex.Certify.ex_counterexample = None);
      let c =
        Kcert.certify ~exhaustive:ex p ~config_name:"protected" cfg
      in
      Alcotest.(check int) (name ^ " certified 0") 0 (Kcert.total_bits c);
      Alcotest.(check bool) (name ^ " no contradiction") false
        (List.mem Kcert.rule_xcheck (Diag.rules (Kcert.report c)));
      let raw = Certify.exhaustive3 p (Scenario.config Scenario.Raw p) in
      match raw.Certify.ex_counterexample with
      | None -> Alcotest.fail (name ^ ": raw passed the 3-domain check")
      | Some cx ->
          String.iter
            (fun ch ->
              Alcotest.(check bool) "alphabet AVD" true
                (ch = 'A' || ch = 'V' || ch = 'D'))
            cx.Certify.cx_schedule)
    kcert_platforms

let test_kcert_artifact_deterministic () =
  let p = haswell in
  let cfg = Scenario.config Scenario.Protected p in
  let plain = Kcert.certify p ~config_name:"protected" cfg in
  let again = Kcert.certify p ~config_name:"protected" cfg in
  Alcotest.(check string) "core json deterministic" (Kcert.core_json plain)
    (Kcert.core_json again);
  let ex = Certify.exhaustive3 p cfg in
  let full = Kcert.certify ~exhaustive:ex p ~config_name:"protected" cfg in
  Alcotest.(check string) "digest ignores the exhaustive block"
    (Kcert.digest plain) (Kcert.digest full);
  Alcotest.(check string) "artifact name" "haswell-protected-switch.cert.json"
    (Kcert.artifact_name full);
  Alcotest.(check string) "clone artifact name"
    "haswell-protected-clone.cert.json"
    (Kcert.artifact_name
       (Kcert.certify ~path:Kcert.Clone p ~config_name:"protected" cfg));
  let j = parse_json (Kcert.to_json full) in
  Alcotest.(check string) "schema" Kcert.schema (jstr (mem "schema" j));
  Alcotest.(check string) "path field" "switch" (jstr (mem "path" j));
  Alcotest.(check string) "embedded digest" (Kcert.digest full)
    (jstr (mem "digest" j));
  Alcotest.(check string) "platform" "haswell" (jstr (mem "platform" j));
  (match mem "certified_bits" j with
  | J_num f -> Alcotest.(check int) "certified_bits" 0 (int_of_float f)
  | _ -> Alcotest.fail "certified_bits not a number");
  let exj = mem "exhaustive" j in
  (match mem "domains" exj with
  | J_num f -> Alcotest.(check int) "exhaustive domains" 3 (int_of_float f)
  | _ -> Alcotest.fail "exhaustive domains not a number");
  Alcotest.(check int) "12 steps serialised" 12
    (List.length (jlist (mem "steps" j)))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "protected certifies 0 bits" `Quick test_protected_zero;
    Alcotest.test_case "raw certifies structural capacity" `Quick
      test_raw_positive;
    Alcotest.test_case "coloured-only: shared kernel keeps LLC open" `Quick
      test_coloured_only_channels;
    Alcotest.test_case "no-pad: timing-only residue" `Quick
      test_no_pad_timing_only;
    Alcotest.test_case "fixture: sqmul footprint" `Quick test_fixture_sqmul_raw;
    Alcotest.test_case "fixture: ct rewrites deposit 0 state bits" `Quick
      test_fixture_ct_zero_state;
    Alcotest.test_case "fixtures: protected certifies 0" `Quick
      test_fixtures_protected_zero;
    QCheck_alcotest.to_alcotest qcheck_strengthen_monotone;
    QCheck_alcotest.to_alcotest qcheck_scrub_bound_dominates;
    Alcotest.test_case "dram close cost consistent" `Quick
      test_dram_close_cost_consistent;
    Alcotest.test_case "exhaustive: protected passes" `Quick
      test_exhaustive_protected_passes;
    Alcotest.test_case "exhaustive: raw counterexample" `Quick
      test_exhaustive_raw_counterexample;
    Alcotest.test_case "crosscheck: abstract vs exhaustive" `Quick
      test_crosscheck_all_configs;
    Alcotest.test_case "measured MI <= certified bound (raw)" `Quick
      test_measured_mi_below_bound_raw;
    Alcotest.test_case "measured MI <= certified bound (protected)" `Quick
      test_measured_mi_below_bound_protected;
    Alcotest.test_case "json: escape round-trip" `Quick
      test_json_roundtrip_nasty;
    Alcotest.test_case "sarif: shape and rule table" `Quick test_sarif_shape;
    Alcotest.test_case "ct_ir: default layout preserved" `Quick
      test_layout_default_preserved;
    Alcotest.test_case "ct_ir: pinned layout respected" `Quick
      test_layout_pins_respected;
    Alcotest.test_case "kcert: protected certifies 0 bits" `Quick
      test_kcert_protected_zero;
    Alcotest.test_case "kcert: raw residue = capacity - coverage" `Quick
      test_kcert_raw_capacity;
    Alcotest.test_case "kcert: sound on every platform x config x path" `Quick
      test_kcert_sound_all_configs;
    Alcotest.test_case "kcert: Absint back-end matches reference coverage"
      `Quick test_kcert_absint_differential;
    Alcotest.test_case "kcert: unsoundness canary fires" `Quick
      test_kcert_canary_fires;
    QCheck_alcotest.to_alcotest qcheck_kcert_strengthen_monotone;
    QCheck_alcotest.to_alcotest qcheck_bp_coverage_capacity;
    QCheck_alcotest.to_alcotest qcheck_lifecycle_op_bound_dominates;
    Alcotest.test_case "shrink: schedule enumeration" `Quick
      test_schedules_enumeration;
    Alcotest.test_case "kcert: 3-domain exhaustive agreement" `Quick
      test_kcert_exhaustive3_agreement;
    Alcotest.test_case "kcert: deterministic digested artifact" `Quick
      test_kcert_artifact_deterministic;
  ]
