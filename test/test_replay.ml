(* Record-once / replay-many: snapshot round-trip properties, replay
   latency/state equality against live execution, and harness-level
   bit-identity of replayed collections (the PR 10 contract). *)

open Tp_hw
open Tp_core

let haswell = Platform.haswell
let sabre = Platform.sabre

(* ---- snapshot / restore ----------------------------------------- *)

let warm m =
  for i = 0 to 99 do
    ignore
      (Machine.access m ~core:0 ~asid:1 ~vaddr:(i * 4096) ~paddr:(i * 4096)
         ~kind:Defs.Read ()
        : int)
  done

let test_snapshot_roundtrip () =
  List.iter
    (fun p ->
      let m = Machine.create p in
      warm m;
      let snap = Machine.snapshot m in
      let want = Machine.snapshot_digest snap in
      Alcotest.(check string)
        (p.Platform.name ^ ": state digest = snapshot digest")
        want (Machine.state_digest m);
      (* Perturbation must be visible (the clock alone guarantees it),
         and a restore must erase it bit-for-bit. *)
      ignore (Machine.clflush m ~core:0 ~paddr:0 : int);
      ignore
        (Machine.access m ~core:0 ~asid:2 ~vaddr:12345 ~paddr:12345
           ~kind:Defs.Write ()
          : int);
      Alcotest.(check bool)
        (p.Platform.name ^ ": perturbation changes the digest")
        true
        (Machine.state_digest m <> want);
      Machine.restore m snap;
      Alcotest.(check string)
        (p.Platform.name ^ ": restore round-trips bit-identically")
        want (Machine.state_digest m);
      (* Restore is idempotent (the torn-state recovery story). *)
      Machine.restore m snap;
      Alcotest.(check string)
        (p.Platform.name ^ ": re-restore is idempotent")
        want (Machine.state_digest m))
    [ haswell; sabre ]

let test_snapshot_wrong_platform_rejected () =
  let m = Machine.create haswell in
  let s = Machine.snapshot (Machine.create sabre) in
  Alcotest.check_raises "cross-platform restore rejected"
    (Invalid_argument
       "Machine.restore: snapshot of platform sabre applied to a haswell \
        machine") (fun () -> Machine.restore m s)

(* Random op streams, shared by the QCheck properties below.  Each op
   is encoded as (selector, a, b) and decoded into one Machine-API
   call; access walks read a root page-table line (and, for odd b, a
   leaf line) exactly the way Replay.replay issues them, so live and
   replayed walks hit the same lines. *)

let ops_gen =
  QCheck.(
    list_of_size
      Gen.(int_range 1 120)
      (triple (int_bound 6) (int_bound 1_000_000) (int_bound 1_000_000)))

let line_of x = x land lnot 63

let decode (sel, a, b) =
  match sel with
  | 0 -> `Access (Defs.Read, a, line_of b, if b land 1 = 1 then line_of (b / 2) else -1)
  | 1 -> `Access (Defs.Write, a, line_of b, -1)
  | 2 -> `Access (Defs.Fetch, a, line_of b, -1)
  | 3 -> `Cond_branch (a, b land 1 = 1)
  | 4 -> `Jump (a, b)
  | 5 -> `Clflush (line_of a)
  | _ -> `Add_cycles (1 + (b mod 997))

let all_ways = lnot 0

let run_live m ops =
  let root = ref (-1) and leaf = ref (-1) in
  let walk () =
    let lat =
      Machine.access m ~core:0 ~asid:0 ~global:true ~vaddr:!root ~paddr:!root
        ~kind:Defs.Read ()
    in
    if !leaf >= 0 then
      lat
      + Machine.access m ~core:0 ~asid:0 ~global:true ~vaddr:!leaf ~paddr:!leaf
          ~kind:Defs.Read ()
    else lat
  in
  List.map
    (fun op ->
      match decode op with
      | `Access (kind, vaddr, root_pa, leaf_pa) ->
          root := root_pa;
          leaf := leaf_pa;
          Machine.access m ~core:0 ~asid:1 ~global:false ~llc_ways:all_ways
            ~walk ~vaddr ~paddr:vaddr ~kind ()
      | `Cond_branch (vaddr, taken) ->
          Machine.cond_branch m ~core:0 ~asid:1 ~vaddr ~paddr:vaddr ~taken
      | `Jump (vaddr, target) ->
          Machine.jump m ~core:0 ~asid:1 ~vaddr ~paddr:vaddr ~target
      | `Clflush paddr -> Machine.clflush m ~core:0 ~paddr
      | `Add_cycles n ->
          Machine.add_cycles m ~core:0 n;
          n)
    ops

let record ops =
  let r = Replay.create () in
  List.iter
    (fun op ->
      match decode op with
      | `Access (kind, vaddr, root_pa, leaf_pa) ->
          Replay.append_access r ~kind ~vaddr ~paddr:vaddr ~root_pa ~leaf_pa
      | `Cond_branch (vaddr, taken) ->
          Replay.append_cond_branch r ~vaddr ~paddr:vaddr ~taken
      | `Jump (vaddr, target) -> Replay.append_jump r ~vaddr ~paddr:vaddr ~target
      | `Clflush paddr -> Replay.append_clflush r ~paddr
      | `Add_cycles n -> Replay.append_add_cycles r n)
    ops;
  Replay.append_idle r;
  r

let qcheck_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot -> perturb -> restore is bit-identical"
    ~count:30
    QCheck.(pair ops_gen ops_gen)
    (fun (pre, perturb) ->
      let m = Machine.create haswell in
      ignore (run_live m pre : int list);
      let snap = Machine.snapshot m in
      ignore (run_live m perturb : int list);
      Machine.restore m snap;
      Machine.state_digest m = Machine.snapshot_digest snap)

let qcheck_replay_matches_live =
  QCheck.Test.make
    ~name:"replay reproduces live per-op latencies and final state" ~count:30
    ops_gen
    (fun ops ->
      let m_live = Machine.create haswell in
      let lats_live = run_live m_live ops in
      let m_rep = Machine.create haswell in
      let lats_rep = ref [] in
      let r = record ops in
      let res =
        Replay.replay m_rep ~core:0 ~asid:1 ~llc_ways:all_ways ~until:max_int
          ~on_latency:(fun l -> lats_rep := l :: !lats_rep)
          r
      in
      res = `Done_idle
      && List.rev !lats_rep = lats_live
      && Machine.state_digest m_rep = Machine.state_digest m_live)

let qcheck_replay_budget_stops =
  QCheck.Test.make ~name:"replay stops at the first op crossing the budget"
    ~count:30
    QCheck.(pair ops_gen (int_bound 10_000))
    (fun (ops, budget) ->
      let m = Machine.create haswell in
      let n = ref 0 in
      let r = record ops in
      let res =
        Replay.replay m ~core:0 ~asid:1 ~llc_ways:all_ways ~until:budget
          ~on_latency:(fun _ -> incr n)
          r
      in
      match res with
      | `Budget -> !n <= List.length ops && Machine.cycles m ~core:0 >= budget
      | `Done_idle -> !n = List.length ops
      | `Incomplete -> false)

(* ---- stream lifecycle ------------------------------------------- *)

let test_stream_lifecycle () =
  let r = Replay.create () in
  Alcotest.(check bool) "empty stream not complete" false (Replay.complete r);
  Replay.append_add_cycles r 10;
  Alcotest.(check bool) "no idle marker: not complete" false (Replay.complete r);
  Alcotest.(check int) "length counts ops" 1 (Replay.length r);
  Replay.append_idle r;
  Alcotest.(check bool) "idle-terminated stream complete" true
    (Replay.complete r);
  let d = Replay.digest r in
  Alcotest.(check string) "digest cached and stable" d (Replay.digest r);
  Replay.poison r;
  Alcotest.(check bool) "poisoned stream not complete" false (Replay.complete r);
  Alcotest.(check bool) "poisoned stream digests distinctly" true
    (Replay.digest r <> d);
  Replay.clear r;
  Alcotest.(check int) "clear empties" 0 (Replay.length r);
  Alcotest.(check bool) "clear unpoisons" false (Replay.poisoned r)

(* ---- recording determinism across identical boots ---------------- *)

let test_record_streams_deterministic () =
  let record_once () =
    let b = Scenario.boot Scenario.Raw haswell in
    let chan = Tp_attacks.Cache_channels.tlb in
    let sender, _ = chan.Tp_attacks.Cache_channels.prepare b in
    Tp_attacks.Harness.record_streams b ~sender
      ~symbols:chan.Tp_attacks.Cache_channels.symbols
      ~slice_cycles:
        (Tp_attacks.Harness.default_spec haswell)
          .Tp_attacks.Harness.slice_cycles
  in
  let s1 = record_once () and s2 = record_once () in
  Alcotest.(check int) "same stream count" (Array.length s1) (Array.length s2);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "stream %d complete" i)
        true (Replay.complete r);
      Alcotest.(check string)
        (Printf.sprintf "stream %d digest boot-independent" i)
        (Replay.digest r) (Replay.digest s2.(i)))
    s1

(* ---- harness-level bit-identity --------------------------------- *)

let collect ~replay kind =
  Tp_attacks.Harness.set_replay_enabled replay;
  let b = Scenario.boot kind haswell in
  let chan = Tp_attacks.Cache_channels.tlb in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 120;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let data =
    Tp_attacks.Harness.run_pair b ~sender ~receiver spec
      ~rng:(Tp_util.Rng.create ~seed:11)
  in
  ( data,
    Machine.state_digest (Tp_kernel.System.machine b.Tp_kernel.Boot.sys) )

let test_harness_replay_bit_identical () =
  Fun.protect
    ~finally:(fun () -> Tp_attacks.Harness.set_replay_enabled true)
    (fun () ->
      List.iter
        (fun (kind, name) ->
          let d_rep, m_rep = collect ~replay:true kind in
          let d_live, m_live = collect ~replay:false kind in
          Alcotest.(check bool)
            (name ^ ": replayed dataset = live dataset")
            true (d_rep = d_live);
          Alcotest.(check string)
            (name ^ ": replayed machine state = live machine state")
            m_live m_rep)
        [ (Scenario.Raw, "raw"); (Scenario.Protected, "protected") ])

(* The kernel-channel sender enters the kernel for symbols 0-2, so
   those recordings must poison themselves (replay can't reproduce a
   syscall's machine effect) — while symbol 3, pure compute, is
   machine-mediated and legitimately replayable. *)
let test_poisoning_self_disqualifies () =
  let b = Scenario.boot Scenario.Raw haswell in
  let sender, _ = Tp_attacks.Kernel_chan.prepare b in
  let streams =
    Tp_attacks.Harness.record_streams b ~sender
      ~symbols:Tp_attacks.Kernel_chan.symbols
      ~slice_cycles:
        (Tp_attacks.Harness.default_spec haswell)
          .Tp_attacks.Harness.slice_cycles
  in
  Array.iteri
    (fun i r ->
      let replayable = i = 3 in
      Alcotest.(check bool)
        (Printf.sprintf "kernel-chan stream %d replayable=%b" i replayable)
        replayable (Replay.complete r);
      if not replayable then
        Alcotest.(check bool)
          (Printf.sprintf "kernel-chan stream %d poisoned" i)
          true (Replay.poisoned r))
    streams

let suite =
  [
    Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot platform check" `Quick
      test_snapshot_wrong_platform_rejected;
    QCheck_alcotest.to_alcotest qcheck_snapshot_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_replay_matches_live;
    QCheck_alcotest.to_alcotest qcheck_replay_budget_stops;
    Alcotest.test_case "stream lifecycle" `Quick test_stream_lifecycle;
    Alcotest.test_case "recording deterministic across boots" `Quick
      test_record_streams_deterministic;
    Alcotest.test_case "harness replay bit-identical" `Quick
      test_harness_replay_bit_identical;
    Alcotest.test_case "kernel-chan sender self-disqualifies" `Quick
      test_poisoning_self_disqualifies;
  ]
