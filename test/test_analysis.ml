(* Tests for the static-analysis layer: the partition linter (clean on
   the paper's protected configuration, and each seeded
   misconfiguration flagged with exactly its rule), the constant-time
   checker fixtures, and the Audit.capture hardening. *)

open Tp_kernel
open Tp_core
module Diag = Tp_analysis.Diag
module Lint = Tp_analysis.Lint
module Ctcheck = Tp_analysis.Ctcheck

let haswell = Tp_hw.Platform.haswell
let sabre = Tp_hw.Platform.sabre

(* ------------------------------------------------------------------ *)
(* Partition linter: positive results *)

let test_protected_lints_clean () =
  List.iter
    (fun p ->
      let b = Scenario.boot Scenario.Protected p in
      let r = Lint.run ~dynamic:true b in
      Alcotest.(check bool)
        (Printf.sprintf "%s protected clean (%s)" p.Tp_hw.Platform.name
           (Diag.summary r))
        true (Diag.clean r))
    [ haswell; sabre ]

let test_raw_lints_dirty () =
  let b = Scenario.boot Scenario.Raw haswell in
  let r = Lint.check_static b in
  Alcotest.(check bool) "raw has findings" false (Diag.clean r);
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " present") true
        (List.mem rule (Diag.rules r)))
    [
      Lint.rule_colour_off;
      Lint.rule_kernel_shared;
      Lint.rule_irq_off;
      Lint.rule_pad_insufficient;
    ]

let test_full_flush_no_kernel_shared () =
  (* Full flush keeps one kernel image but flushes all on-core state:
     the Fig. 3 kernel-image channel is closed, so TP-KERNEL-SHARED
     must stay quiet (other rules still fire). *)
  let b = Scenario.boot Scenario.Full_flush sabre in
  let r = Lint.check_static b in
  Alcotest.(check bool) "no TP-KERNEL-SHARED" false
    (List.mem Lint.rule_kernel_shared (Diag.rules r))

let test_pad_bound_within_window () =
  (* The analytic bound must sit inside (worst observed unpadded cost,
     configured pad]: below the pad or the configuration is unsound;
     above the empirically calibrated floor or the bound is vacuous. *)
  List.iter
    (fun (p, floor_) ->
      let cfg = Scenario.config Scenario.Protected p in
      let bound = Lint.pad_bound p cfg in
      Alcotest.(check bool)
        (Printf.sprintf "%s bound %d > floor %d" p.Tp_hw.Platform.name bound
           floor_)
        true (bound > floor_);
      Alcotest.(check bool)
        (Printf.sprintf "%s bound %d <= pad %d" p.Tp_hw.Platform.name bound
           cfg.Config.pad_cycles)
        true
        (bound <= cfg.Config.pad_cycles))
    [ (haswell, 55_435); (sabre, 40_238) ]

(* ------------------------------------------------------------------ *)
(* Partition linter: seeded misconfigurations (QCheck) *)

let base_view =
  let cache = Hashtbl.create 2 in
  fun p ->
    match Hashtbl.find_opt cache p.Tp_hw.Platform.name with
    | Some v -> v
    | None ->
        let v = Lint.view_of_booted (Scenario.boot Scenario.Protected p) in
        Hashtbl.replace cache p.Tp_hw.Platform.name v;
        v

let dom v i = List.nth v.Lint.v_domains i

(* Inject one violation class into a clean protected view; returns the
   mutated view and the single rule it must trip. *)
let mutate v cls r =
  let d0 = dom v 0 and d1 = dom v 1 in
  match cls with
  | 0 ->
      (* Overlapping colours: domain 0 steals one of domain 1's. *)
      let pool = Colour.to_list d1.Lint.dv_colours in
      let stolen = List.nth pool (r mod List.length pool) in
      let domains =
        List.map
          (fun d ->
            if d.Lint.dv_id = d0.Lint.dv_id then
              { d with Lint.dv_colours = Colour.add d.Lint.dv_colours stolen }
            else d)
          v.Lint.v_domains
      in
      ({ v with Lint.v_domains = domains }, Lint.rule_colour_overlap)
  | 1 ->
      (* Pad below the analytic bound. *)
      let bound = Lint.pad_bound v.Lint.v_platform v.Lint.v_config in
      ({ v with Lint.v_pad = r mod bound }, Lint.rule_pad_insufficient)
  | 2 ->
      (* One IRQ deliverable to both domains' kernels. *)
      let irq = 20 + (r mod 10) in
      let routes =
        List.filter (fun (i, _) -> i <> irq) v.Lint.v_irq_routes
      in
      ( {
          v with
          Lint.v_irq_routes =
            (irq, d0.Lint.dv_kernel) :: (irq, d1.Lint.dv_kernel) :: routes;
        },
        Lint.rule_irq_shared )
  | _ ->
      (* Missing clone: domain 1 runs on domain 0's image. *)
      let domains =
        List.map
          (fun d ->
            if d.Lint.dv_id = d1.Lint.dv_id then
              { d with Lint.dv_kernel = d0.Lint.dv_kernel }
            else d)
          v.Lint.v_domains
      in
      ({ v with Lint.v_domains = domains }, Lint.rule_clone_missing)

let qcheck_seeded_misconfig =
  QCheck.Test.make ~name:"seeded misconfiguration flags exactly its rule"
    ~count:80
    QCheck.(triple (int_bound 3) bool small_nat)
    (fun (cls, on_haswell, r) ->
      let v = base_view (if on_haswell then haswell else sabre) in
      let mutated, rule = mutate v cls r in
      let report =
        { Diag.subject = "mutated"; findings = Lint.lint_view mutated }
      in
      Diag.rules report = [ rule ])

let test_base_views_clean () =
  (* The mutation tests are only meaningful if the base views lint
     clean (so the single seeded violation is the only signal). *)
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        (p.Tp_hw.Platform.name ^ " base view clean") []
        (Diag.rules
           { Diag.subject = "base"; findings = Lint.lint_view (base_view p) }))
    [ haswell; sabre ]

(* ------------------------------------------------------------------ *)
(* Constant-time checker *)

let fixture name =
  match Ctcheck.fixture name with
  | Some fx -> fx
  | None -> Alcotest.failf "no fixture %s" name

let test_ctcheck_sqmul_leaks () =
  let v = Ctcheck.check_fixture haswell (fixture "sqmul") in
  Alcotest.(check bool) "static: not CT" false v.Ctcheck.v_static_ct;
  Alcotest.(check bool) "secret-dependent branch flagged" true
    (List.exists
       (fun (f : Diag.finding) -> f.Diag.rule = Ctcheck.rule_branch_secret)
       v.Ctcheck.v_static);
  Alcotest.(check bool) "dynamic: traces diverge" false v.Ctcheck.v_trace_equal;
  Alcotest.(check bool) "divergence located" true (v.Ctcheck.v_divergence <> None);
  Alcotest.(check bool) "verdict passes" true v.Ctcheck.v_pass

let test_ctcheck_sqmul_ct_clean () =
  let v = Ctcheck.check_fixture haswell (fixture "sqmul-ct") in
  Alcotest.(check bool) "static: CT" true v.Ctcheck.v_static_ct;
  Alcotest.(check bool) "dynamic: traces equal" true v.Ctcheck.v_trace_equal;
  Alcotest.(check bool) "traces non-trivial" true (v.Ctcheck.v_events > 0);
  Alcotest.(check bool) "verdict passes" true v.Ctcheck.v_pass

let test_ctcheck_sbox_pair () =
  let leaky = Ctcheck.check_fixture sabre (fixture "sbox-lookup") in
  Alcotest.(check bool) "lookup: secret-indexed load flagged" true
    (List.exists
       (fun (f : Diag.finding) -> f.Diag.rule = Ctcheck.rule_addr_secret)
       leaky.Ctcheck.v_static);
  Alcotest.(check bool) "lookup: traces diverge" false
    leaky.Ctcheck.v_trace_equal;
  let ct = Ctcheck.check_fixture sabre (fixture "sbox-ct") in
  Alcotest.(check bool) "scan: static CT" true ct.Ctcheck.v_static_ct;
  Alcotest.(check bool) "scan: traces equal" true ct.Ctcheck.v_trace_equal

let test_ctcheck_all_fixtures_pass () =
  List.iter
    (fun p ->
      List.iter
        (fun fx ->
          let v = Ctcheck.check_fixture p fx in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s agrees and matches ground truth"
               p.Tp_hw.Platform.name v.Ctcheck.v_name)
            true v.Ctcheck.v_pass)
        Ctcheck.fixtures)
    [ haswell; sabre ]

(* ------------------------------------------------------------------ *)
(* Audit.capture hardening *)

let test_audit_nested_capture_rejected () =
  let b = Scenario.boot Scenario.Protected haswell in
  let sys = b.Boot.sys in
  Alcotest.check_raises "nested capture"
    (Invalid_argument
       "Tp_kernel.Audit.capture: nested capture is not supported") (fun () ->
      ignore
        (Audit.capture sys (fun () ->
             ignore (Audit.capture sys (fun () -> ())))))

let test_audit_capture_restores_on_exception () =
  let b = Scenario.boot Scenario.Protected haswell in
  let sys = b.Boot.sys in
  let hook _ ~off:_ ~len:_ ~kind:_ = () in
  System.set_shared_audit sys (Some hook);
  (try ignore (Audit.capture sys (fun () -> raise Exit))
   with Exit -> ());
  (match System.shared_audit sys with
  | Some h when h == hook -> ()
  | Some _ -> Alcotest.fail "a different hook was left installed"
  | None -> Alcotest.fail "previous hook was not restored");
  (* And the nesting guard must have been cleared by the unwinding:
     a fresh capture works. *)
  System.set_shared_audit sys None;
  ignore (Audit.capture sys (fun () -> ()))

let test_audit_capture_restores_none () =
  let b = Scenario.boot Scenario.Protected sabre in
  let sys = b.Boot.sys in
  System.set_shared_audit sys None;
  ignore (Audit.capture sys (fun () -> ()));
  (match System.shared_audit sys with
  | None -> ()
  | Some _ -> Alcotest.fail "hook left installed after capture")

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "protected lints clean" `Quick test_protected_lints_clean;
    Alcotest.test_case "raw lints dirty" `Quick test_raw_lints_dirty;
    Alcotest.test_case "full-flush: no kernel-shared" `Quick
      test_full_flush_no_kernel_shared;
    Alcotest.test_case "pad bound in window" `Quick test_pad_bound_within_window;
    Alcotest.test_case "base views clean" `Quick test_base_views_clean;
    QCheck_alcotest.to_alcotest qcheck_seeded_misconfig;
    Alcotest.test_case "ctcheck: sqmul leaks" `Quick test_ctcheck_sqmul_leaks;
    Alcotest.test_case "ctcheck: sqmul-ct clean" `Quick
      test_ctcheck_sqmul_ct_clean;
    Alcotest.test_case "ctcheck: sbox pair" `Quick test_ctcheck_sbox_pair;
    Alcotest.test_case "ctcheck: all fixtures pass" `Quick
      test_ctcheck_all_fixtures_pass;
    Alcotest.test_case "audit: nested capture rejected" `Quick
      test_audit_nested_capture_rejected;
    Alcotest.test_case "audit: restore on exception" `Quick
      test_audit_capture_restores_on_exception;
    Alcotest.test_case "audit: restore none" `Quick test_audit_capture_restores_none;
  ]
