let () =
  Alcotest.run "time-protection"
    [
      ("util", Test_util.suite);
      ("hw", Test_hw.suite);
      ("replay", Test_replay.suite);
      ("channel", Test_channel.suite);
      ("kernel", Test_kernel.suite);
      ("extensions", Test_extensions.suite);
      ("invariants", Test_invariants.suite);
      ("fault", Test_fault.suite);
      ("mcs", Test_mcs.suite);
      ("cspace", Test_cspace.suite);
      ("attacks", Test_attacks.suite);
      ("workloads", Test_workloads.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("store", Test_store.suite);
      ("serve", Test_serve.suite);
      ("analysis", Test_analysis.suite);
      ("certify", Test_certify.suite);
    ]
