(* Fault injection: the fail-at-step-N driver, transactional rollback
   of kernel operations, the double-free guard, and the checkpointed
   measurement harness (crash consistency of the whole pipeline). *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

let boot () =
  Boot.boot ~platform:haswell ~config:(Config.protected_ haswell) ~domains:2 ()

(* --------------------------------------------------------------- *)
(* The systematic sweep: every standard operation x every injection
   point it crosses x every fault kind must propagate the error and
   leave every global invariant intact. *)

let test_fail_at_each_step () =
  let cases = Tp_fault_driver.Driver.standard_cases ~platform:haswell in
  Alcotest.(check bool) "has cases" true (cases <> []);
  List.iter
    (fun (c : Tp_fault_driver.Driver.case) ->
      let outcomes = Tp_fault_driver.Driver.fail_at_each c in
      Alcotest.(check bool)
        (c.Tp_fault_driver.Driver.c_name ^ " crosses injection points")
        true (outcomes <> []);
      List.iter
        (fun (o : Tp_fault_driver.Driver.outcome) ->
          let label =
            Printf.sprintf "%s: fault %s at %s:%d consistent (raised=%s, [%s])"
              o.Tp_fault_driver.Driver.o_case
              (Types.error_to_string o.Tp_fault_driver.Driver.o_error)
              o.Tp_fault_driver.Driver.o_point
              o.Tp_fault_driver.Driver.o_occurrence
              (Option.value ~default:"<nothing>"
                 o.Tp_fault_driver.Driver.o_raised)
              (String.concat "; " o.Tp_fault_driver.Driver.o_violations)
          in
          Alcotest.(check bool) label true (Tp_fault_driver.Driver.ok o))
        outcomes)
    cases

let test_enumerate_clone_steps () =
  let cases = Tp_fault_driver.Driver.standard_cases ~platform:haswell in
  let clone_case =
    List.find (fun c -> c.Tp_fault_driver.Driver.c_name = "clone") cases
  in
  let steps = Tp_fault_driver.Driver.enumerate clone_case in
  let names = List.map fst steps in
  List.iter
    (fun p ->
      Alcotest.(check bool) ("clone crosses " ^ p) true (List.mem p names))
    [ "clone.validate"; "clone.copy"; "clone.idle"; "clone.commit"; "asid.alloc" ]

(* --------------------------------------------------------------- *)
(* Targeted rollback / roll-forward checks. *)

let test_clone_rollback_releases_asid () =
  let b = boot () in
  let sys = b.Boot.sys in
  let kmem =
    Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool
      ~platform:haswell
  in
  let asids0 = System.free_asid_count sys in
  let frames0 = Invariant.user_frames b in
  let kernels0 = List.length (System.kernels sys) in
  Tp_fault.Fault.arm ~point:"clone.commit"
    (Types.Kernel_error Types.Insufficient_untyped);
  (match Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem with
  | _ -> Alcotest.fail "clone should have failed"
  | exception Types.Kernel_error Types.Insufficient_untyped -> ());
  Tp_fault.Fault.disarm ();
  Alcotest.(check int) "ASID released on rollback" asids0
    (System.free_asid_count sys);
  Alcotest.(check int) "no kernel registered" kernels0
    (List.length (System.kernels sys));
  Invariant.check_exn ~expect_user_frames:frames0 b

let test_destroy_rolls_forward () =
  let b = boot () in
  let sys = b.Boot.sys in
  let kmem =
    Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool
      ~platform:haswell
  in
  let cap = Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem in
  Clone.set_int sys ~image:cap ~irq:5;
  let frames0 = Invariant.user_frames b in
  Tp_fault.Fault.arm ~point:"destroy.ipi"
    (Types.Kernel_error Types.Zombie_object);
  (match Clone.destroy sys ~core:0 cap with
  | () -> Alcotest.fail "destroy should have re-raised the fault"
  | exception Types.Kernel_error Types.Zombie_object -> ());
  Tp_fault.Fault.disarm ();
  (* The recovery path completed the teardown: no zombie left
     registered, the IRQ released, the invariants whole. *)
  Invariant.check_exn ~expect_user_frames:frames0 b;
  Alcotest.(check bool) "cloned kernel unregistered" true
    (List.for_all
       (fun ki -> ki.Types.ki_state = Types.Ki_active)
       (System.kernels sys))

let test_double_free_guard () =
  let b = boot () in
  let sys = b.Boot.sys in
  let a = System.alloc_asid sys in
  System.free_asid sys a;
  Alcotest.check_raises "second free rejected"
    (Types.Kernel_error Types.Double_free) (fun () -> System.free_asid sys a)

let test_kernel_error_printer () =
  Alcotest.(check string) "registered Printexc printer"
    "Kernel_error(double free)"
    (Printexc.to_string (Types.Kernel_error Types.Double_free))

let test_txn_rollback_order () =
  let log = ref [] in
  (match
     Txn.run (fun txn ->
         Txn.defer txn (fun () -> log := 1 :: !log);
         Txn.defer txn (fun () -> log := 2 :: !log);
         failwith "boom")
   with
  | () -> Alcotest.fail "should have raised"
  | exception Failure _ -> ());
  (* Reverse order: the last-deferred undo runs first. *)
  Alcotest.(check (list int)) "undos in reverse order" [ 1; 2 ] !log;
  let log2 = ref [] in
  Txn.run (fun txn -> Txn.defer txn (fun () -> log2 := 1 :: !log2));
  Alcotest.(check (list int)) "no undo on success" [] !log2

(* --------------------------------------------------------------- *)
(* Checkpointed harness: chunking must not change the collected
   dataset, and budgets must degrade gracefully. *)

let channel_pair () =
  let b = Tp_core.Scenario.boot Tp_core.Scenario.Raw haswell in
  let chan = Tp_attacks.Cache_channels.l1d in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  (b, sender, receiver, chan.Tp_attacks.Cache_channels.symbols)

let collect_with_chunk chunk =
  let b, sender, receiver, symbols = channel_pair () in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 50;
      symbols;
      warmup = 2;
      checkpoint_slices = chunk;
    }
  in
  let rng = Tp_util.Rng.create ~seed:42 in
  Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng

let test_checkpointing_is_bit_identical () =
  (* One chunk covering the whole run vs. many small checkpoints. *)
  let mono = collect_with_chunk 100_000 in
  let chunked = collect_with_chunk 7 in
  Alcotest.(check bool) "monolithic not degraded" false
    mono.Tp_attacks.Harness.degraded;
  Alcotest.(check bool) "chunked not degraded" false
    chunked.Tp_attacks.Harness.degraded;
  let m = mono.Tp_attacks.Harness.data in
  let c = chunked.Tp_attacks.Harness.data in
  Alcotest.(check (array int)) "identical inputs" m.Tp_channel.Mi.input
    c.Tp_channel.Mi.input;
  Alcotest.(check bool) "bit-identical outputs" true
    (m.Tp_channel.Mi.output = c.Tp_channel.Mi.output)

let test_budget_degrades_gracefully () =
  let b, sender, receiver, symbols = channel_pair () in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 200;
      symbols;
      warmup = 2;
      checkpoint_slices = 8;
      budget = { Tp_attacks.Harness.max_cycles = Some 1; max_wall_s = None };
    }
  in
  let rng = Tp_util.Rng.create ~seed:7 in
  let r = Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng in
  Alcotest.(check bool) "degraded" true r.Tp_attacks.Harness.degraded;
  Alcotest.(check (option string)) "reason" (Some "cycle budget exhausted")
    r.Tp_attacks.Harness.degraded_reason;
  Alcotest.(check bool) "partial data"
    true
    (Array.length r.Tp_attacks.Harness.data.Tp_channel.Mi.input < 200)

let test_harness_recovers_from_injected_fault () =
  let b, sender, receiver, symbols = channel_pair () in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 30;
      symbols;
      warmup = 2;
      checkpoint_slices = 4;
    }
  in
  let rng = Tp_util.Rng.create ~seed:3 in
  let run () =
    Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng
  in
  (* No kernel ops run during slices in this synthetic pair, so no
     injection point fires mid-loop: the loop must still complete
     cleanly with a dormant registry. *)
  let r = run () in
  Alcotest.(check int) "no faults to recover" 0
    r.Tp_attacks.Harness.recovered_faults;
  Alcotest.(check bool) "complete" false r.Tp_attacks.Harness.degraded;
  Alcotest.(check bool) "checkpointed" true (r.Tp_attacks.Harness.checkpoints > 1)

let suite =
  [
    Alcotest.test_case "fail-at-each-step: all ops, all points, all faults"
      `Slow test_fail_at_each_step;
    Alcotest.test_case "enumerate lists clone's injection points" `Quick
      test_enumerate_clone_steps;
    Alcotest.test_case "clone rollback releases ASID and frames" `Quick
      test_clone_rollback_releases_asid;
    Alcotest.test_case "destroy rolls forward through faults" `Quick
      test_destroy_rolls_forward;
    Alcotest.test_case "free_asid double-free guard" `Quick
      test_double_free_guard;
    Alcotest.test_case "Kernel_error Printexc printer" `Quick
      test_kernel_error_printer;
    Alcotest.test_case "txn undo ordering" `Quick test_txn_rollback_order;
    Alcotest.test_case "checkpointed run is bit-identical" `Quick
      test_checkpointing_is_bit_identical;
    Alcotest.test_case "cycle budget degrades gracefully" `Quick
      test_budget_degrades_gracefully;
    Alcotest.test_case "harness checkpoint loop completes cleanly" `Quick
      test_harness_recovers_from_injected_fault;
  ]
