(* The crash-safe content-addressed result store: commit protocol,
   fsck repair of every kind of crash litter, and the fail-at-step-N
   crash-consistency sweep. *)

module Store = Tp_store.Store

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tp-test-store-%d-%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let k i = Store.key ~code_rev:"test" ~parts:[ "entry"; string_of_int i ]
let v i = Printf.sprintf "payload-%d-%s" i (String.make (i * 7) 'x')

let commit_batch store n =
  for i = 0 to n - 1 do
    Store.put store ~key:(k i) (v i)
  done

let check_intact store n =
  for i = 0 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "entry %d content" i)
      (Some (v i))
      (Store.find store (k i))
  done

let test_put_find () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      Alcotest.(check int) "empty store" 0 (Store.count s);
      Alcotest.(check (option string)) "miss" None (Store.find s (k 0));
      commit_batch s 3;
      Alcotest.(check int) "count" 3 (Store.count s);
      Alcotest.(check bool) "mem" true (Store.mem s (k 1));
      check_intact s 3;
      Alcotest.(check int) "keys sorted" 3 (List.length (Store.keys s));
      Alcotest.(check (list string))
        "keys are sorted" (Store.keys s)
        (List.sort compare (Store.keys s));
      Store.close s)

let test_put_idempotent () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      Store.put s ~key:(k 0) "first";
      Store.put s ~key:(k 0) "second";
      Alcotest.(check (option string))
        "first commit wins" (Some "first")
        (Store.find s (k 0));
      Alcotest.(check int) "one entry" 1 (Store.count s);
      Store.close s)

let test_bad_key_rejected () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      Alcotest.check_raises "malformed key"
        (Invalid_argument "Tp_store.Store.put: malformed key \"not-a-key\"")
        (fun () -> Store.put s ~key:"not-a-key" "data");
      Store.close s)

let test_reopen () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      commit_batch s 4;
      Store.close s;
      let s = Store.open_ ~dir in
      let r = Store.fsck_report s in
      Alcotest.(check int) "entries" 4 r.Store.f_entries;
      Alcotest.(check int) "no torn" 0 r.Store.f_torn;
      Alcotest.(check int) "no missing" 0 r.Store.f_missing;
      Alcotest.(check int) "no corrupt" 0 r.Store.f_corrupt;
      Alcotest.(check int) "no orphans" 0 r.Store.f_orphans;
      check_intact s 4;
      Store.close s)

let test_key_sensitivity () =
  let base = Store.key ~code_rev:"r1" ~parts:[ "a"; "b" ] in
  Alcotest.(check string)
    "stable" base
    (Store.key ~code_rev:"r1" ~parts:[ "a"; "b" ]);
  Alcotest.(check bool)
    "code rev matters" false
    (base = Store.key ~code_rev:"r2" ~parts:[ "a"; "b" ]);
  Alcotest.(check bool)
    "parts matter" false
    (base = Store.key ~code_rev:"r1" ~parts:[ "a"; "c" ]);
  Alcotest.(check bool)
    "no concatenation ambiguity" false
    (base = Store.key ~code_rev:"r1" ~parts:[ "ab" ])

let append_to_journal dir bytes =
  let fd =
    Unix.openfile (Filename.concat dir "journal")
      [ Unix.O_WRONLY; Unix.O_APPEND ]
      0o644
  in
  let b = Bytes.of_string bytes in
  ignore (Unix.write fd b 0 (Bytes.length b));
  Unix.close fd

let test_torn_tail_dropped () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      commit_batch s 3;
      Store.close s;
      (* A crash mid-append leaves half a line. *)
      append_to_journal dir "C deadbeef";
      let s = Store.open_ ~dir in
      Alcotest.(check int) "torn line seen" 1 (Store.fsck_report s).Store.f_torn;
      Alcotest.(check int) "entries kept" 3 (Store.count s);
      check_intact s 3;
      Store.close s;
      (* The compacting rewrite converges: a second open is clean. *)
      let s = Store.open_ ~dir in
      Alcotest.(check int) "converged" 0 (Store.fsck_report s).Store.f_torn;
      Alcotest.(check int) "entries kept" 3 (Store.count s);
      Store.close s)

let test_corrupt_object_quarantined () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      commit_batch s 3;
      Store.close s;
      let victim = Filename.concat (Filename.concat dir "objects") (k 1) in
      let oc = open_out victim in
      output_string oc "bit-rotted";
      close_out oc;
      let s = Store.open_ ~dir in
      Alcotest.(check int)
        "corrupt dropped" 1
        (Store.fsck_report s).Store.f_corrupt;
      Alcotest.(check int) "two entries left" 2 (Store.count s);
      Alcotest.(check (option string)) "victim gone" None (Store.find s (k 1));
      Alcotest.(check (option string))
        "others intact" (Some (v 0))
        (Store.find s (k 0));
      Store.close s)

let test_orphan_and_staging_reaped () =
  with_dir (fun dir ->
      let s = Store.open_ ~dir in
      commit_batch s 2;
      Store.close s;
      (* Crash window between rename and journal append: an object with
         no journal entry.  And staging litter from a crashed write. *)
      let orphan = Store.key ~code_rev:"test" ~parts:[ "orphan" ] in
      let oc =
        open_out (Filename.concat (Filename.concat dir "objects") orphan)
      in
      output_string oc "never committed";
      close_out oc;
      let oc =
        open_out (Filename.concat (Filename.concat dir "staging") "x.tmp")
      in
      output_string oc "torn stage";
      close_out oc;
      let s = Store.open_ ~dir in
      let r = Store.fsck_report s in
      Alcotest.(check int) "orphan reaped" 1 r.Store.f_orphans;
      Alcotest.(check int) "staging reaped" 1 r.Store.f_staging;
      Alcotest.(check bool) "orphan not present" false (Store.mem s orphan);
      check_intact s 2;
      Store.close s)

(* Property: whatever bytes a crash leaves at the journal tail —
   truncation, garbage, both — completed entries before the damage
   point are either intact or absent, never wrong, and fsck converges
   on the second open. *)
let qcheck_fsck_never_corrupts =
  QCheck.Test.make ~name:"random journal tail damage never corrupts entries"
    ~count:60
    QCheck.(pair (int_bound 200) (small_list (int_bound 255)))
    (fun (cut, junk) ->
      let dir = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let s = Store.open_ ~dir in
          commit_batch s 4;
          Store.close s;
          (* Truncate the journal [cut] bytes short, then append junk. *)
          let jpath = Filename.concat dir "journal" in
          let len = (Unix.stat jpath).Unix.st_size in
          let keep = Stdlib.max 0 (len - cut) in
          let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd keep;
          Unix.close fd;
          if junk <> [] then
            append_to_journal dir
              (String.init (List.length junk) (fun i ->
                   Char.chr (List.nth junk i)));
          let s = Store.open_ ~dir in
          let survivors = Store.keys s in
          let ok_content =
            List.for_all
              (fun key ->
                match Store.find s key with
                | None -> false
                | Some data ->
                    (* Whatever survived must be byte-exact. *)
                    List.exists
                      (fun i -> k i = key && v i = data)
                      [ 0; 1; 2; 3 ])
              survivors
          in
          Store.close s;
          let s = Store.open_ ~dir in
          let converged =
            Store.keys s = survivors
            && (Store.fsck_report s).Store.f_torn = 0
            && (Store.fsck_report s).Store.f_corrupt = 0
            && (Store.fsck_report s).Store.f_orphans = 0
          in
          Store.close s;
          ok_content && converged))

let test_fail_at_each () =
  with_dir (fun dir ->
      let outcomes = Tp_store.Sweep.fail_at_each ~dir in
      Alcotest.(check bool)
        "sweep covers the three persistence points" true
        (List.length outcomes > 3 * Tp_store.Sweep.batch_size);
      List.iter
        (fun (o : Tp_store.Sweep.outcome) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s:%d consistent" o.Tp_store.Sweep.o_point
               o.Tp_store.Sweep.o_occurrence)
            []
            o.Tp_store.Sweep.o_violations;
          Alcotest.(check bool)
            (Printf.sprintf "%s:%d fired" o.Tp_store.Sweep.o_point
               o.Tp_store.Sweep.o_occurrence)
            true o.Tp_store.Sweep.o_fired)
        outcomes)

let suite =
  [
    Alcotest.test_case "put/find round-trip" `Quick test_put_find;
    Alcotest.test_case "put is idempotent" `Quick test_put_idempotent;
    Alcotest.test_case "malformed key rejected" `Quick test_bad_key_rejected;
    Alcotest.test_case "reopen replays the journal" `Quick test_reopen;
    Alcotest.test_case "cache key sensitivity" `Quick test_key_sensitivity;
    Alcotest.test_case "torn journal tail dropped" `Quick
      test_torn_tail_dropped;
    Alcotest.test_case "corrupt object quarantined" `Quick
      test_corrupt_object_quarantined;
    Alcotest.test_case "orphans and staging reaped" `Quick
      test_orphan_and_staging_reaped;
    QCheck_alcotest.to_alcotest qcheck_fsck_never_corrupts;
    Alcotest.test_case "fail-at-step-N crash consistency" `Quick
      test_fail_at_each;
  ]
