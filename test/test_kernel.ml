(* Tests for the seL4 model: colours, physical memory, capabilities,
   retype, clone/destroy, IRQ partitioning, scheduling, domain switch,
   IPC, boot, and the execution driver. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell
let sabre = Tp_hw.Platform.sabre

let kernel_error = Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Types.error_to_string e))
    ( = )

let expect_error expected f =
  match f () with
  | _ -> Alcotest.fail "expected Kernel_error"
  | exception Types.Kernel_error e -> Alcotest.check kernel_error "error" expected e

(* ------------------------------------------------------------------ *)
(* Colours *)

let test_colour_split_disjoint () =
  let parts = Colour.split ~n_colours:8 ~parts:2 in
  match parts with
  | [ a; b ] ->
      Alcotest.(check bool) "disjoint" true (Colour.disjoint a b);
      Alcotest.(check int) "a has 4" 4 (Colour.count a);
      Alcotest.(check int) "b has 4" 4 (Colour.count b);
      Alcotest.(check int) "cover all" 255 (Colour.union a b)
  | _ -> Alcotest.fail "expected 2 parts"

let test_colour_split_uneven () =
  let parts = Colour.split ~n_colours:16 ~parts:3 in
  Alcotest.(check int) "3 parts" 3 (List.length parts);
  let total = List.fold_left (fun acc s -> acc + Colour.count s) 0 parts in
  Alcotest.(check int) "all colours used" 16 total

let test_colour_fraction () =
  Alcotest.(check int) "50% of 8" 4 (Colour.count (Colour.fraction ~n_colours:8 ~percent:50));
  Alcotest.(check int) "75% of 8" 6 (Colour.count (Colour.fraction ~n_colours:8 ~percent:75));
  Alcotest.(check int) "1% floors to 1" 1 (Colour.count (Colour.fraction ~n_colours:8 ~percent:1))

let test_colour_of_frame () =
  Alcotest.(check int) "frame 0" 0 (Colour.colour_of_frame ~n_colours:8 0);
  Alcotest.(check int) "frame 9" 1 (Colour.colour_of_frame ~n_colours:8 9)

let test_colour_empty_set () =
  Alcotest.(check int) "count 0" 0 (Colour.count Colour.empty);
  Alcotest.(check (list int)) "to_list []" [] (Colour.to_list Colour.empty);
  Alcotest.(check bool) "no member" false (Colour.mem Colour.empty 0);
  Alcotest.(check bool) "disjoint with all" true
    (Colour.disjoint Colour.empty (Colour.all ~n_colours:8));
  Alcotest.(check bool) "disjoint with itself" true
    (Colour.disjoint Colour.empty Colour.empty);
  Alcotest.(check int) "union identity" (Colour.of_list [ 2; 5 ])
    (Colour.union Colour.empty (Colour.of_list [ 2; 5 ]))

let test_colour_full_mask () =
  let all8 = Colour.all ~n_colours:8 in
  Alcotest.(check int) "mask 0xff" 0xff all8;
  Alcotest.(check int) "count 8" 8 (Colour.count all8);
  Alcotest.(check (list int)) "to_list ascending" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (Colour.to_list all8);
  Alcotest.(check int) "inter identity" all8 (Colour.inter all8 all8);
  Alcotest.(check int) "16 colours" 0xffff (Colour.all ~n_colours:16)

let test_colour_of_list_duplicates () =
  Alcotest.(check int) "duplicates collapse" (Colour.of_list [ 1; 2 ])
    (Colour.of_list [ 1; 2; 2; 1; 1; 2 ]);
  Alcotest.(check int) "count ignores duplicates" 2
    (Colour.count (Colour.of_list [ 7; 7; 3; 3 ]))

let test_colour_disjoint_reflexivity () =
  (* A non-empty set is never disjoint from itself; only the empty set
     is (the linter's overlap rule relies on both directions). *)
  let s = Colour.of_list [ 3 ] in
  Alcotest.(check bool) "non-empty not self-disjoint" false (Colour.disjoint s s);
  Alcotest.(check bool) "symmetric" (Colour.disjoint s Colour.empty)
    (Colour.disjoint Colour.empty s)

(* ------------------------------------------------------------------ *)
(* Physical memory *)

let test_phys_alloc_coloured () =
  let phys = Phys.create haswell in
  ignore (Phys.reserve_boot phys ~frames:10);
  let red = Colour.of_list [ 2 ] in
  (match Phys.alloc phys ~colours:red () with
  | Some f -> Alcotest.(check int) "colour 2" 2 (Phys.colour_of phys f)
  | None -> Alcotest.fail "allocation failed");
  match Phys.alloc_many phys ~colours:red 5 with
  | Some fs ->
      List.iter
        (fun f -> Alcotest.(check int) "all colour 2" 2 (Phys.colour_of phys f))
        fs
  | None -> Alcotest.fail "alloc_many failed"

let test_phys_free_and_reuse () =
  let phys = Phys.create sabre in
  let f = Option.get (Phys.alloc phys ()) in
  let before = Phys.free_frames phys in
  Phys.free phys f;
  Alcotest.(check int) "freed" (before + 1) (Phys.free_frames phys);
  let f' = Option.get (Phys.alloc phys ()) in
  Alcotest.(check int) "lowest-first reuse" f f'

let test_phys_exhaustion () =
  let phys = Phys.create sabre in
  let n = Phys.free_frames phys in
  (match Phys.alloc_many phys n with
  | Some _ -> ()
  | None -> Alcotest.fail "should succeed");
  Alcotest.(check bool) "exhausted" true (Phys.alloc phys () = None)

(* ------------------------------------------------------------------ *)
(* Capabilities and retype *)

let mk_untyped ?(frames = 64) () =
  Retype.untyped_of_frames ~n_colours:8 (List.init frames (fun i -> 100 + i))

let test_retype_takes_frames () =
  let u = mk_untyped () in
  let before = Retype.untyped_free_frames u in
  let _tcb = Retype.retype_tcb u ~core:0 ~prio:5 in
  Alcotest.(check int) "one frame consumed" (before - 1)
    (Retype.untyped_free_frames u)

let test_retype_exhaustion () =
  let u = mk_untyped ~frames:1 () in
  ignore (Retype.retype_tcb u ~core:0 ~prio:0);
  expect_error Types.Insufficient_untyped (fun () ->
      Retype.retype_endpoint u)

let test_split_colours () =
  let u = Retype.untyped_of_frames ~n_colours:8 (List.init 64 Fun.id) in
  let red = Retype.split_colours u (Colour.of_list [ 0; 1 ]) in
  Alcotest.(check int) "red got 16 frames" 16 (Retype.untyped_free_frames red);
  Alcotest.(check int) "parent kept 48" 48 (Retype.untyped_free_frames u);
  (* All remaining parent frames avoid colours 0 and 1. *)
  let parent = Retype.the_untyped u in
  List.iter
    (fun f ->
      Alcotest.(check bool) "colour excluded" true
        (Colour.colour_of_frame ~n_colours:8 f >= 2))
    parent.Types.u_free

let test_split_colours_insufficient () =
  (* Frames 0..7 cover colours 0..7 once; taking colour 0 twice fails. *)
  let u = Retype.untyped_of_frames ~n_colours:8 [ 1; 2; 3 ] in
  expect_error Types.Insufficient_colours (fun () ->
      Retype.split_colours u (Colour.of_list [ 0 ]))

let test_cap_derive_strips_clone_right () =
  let u = mk_untyped () in
  ignore u;
  let root = Capability.mk_root ~clone_right:true (Types.Obj_irq_handler { Types.ih_irq = 1; ih_kernel = None }) in
  let child = Capability.derive ~clone_right:false root in
  Alcotest.(check bool) "stripped" false child.Types.clone_right;
  let grandchild = Capability.derive ~clone_right:true child in
  Alcotest.(check bool) "cannot regain" false grandchild.Types.clone_right

let test_cap_derive_invalid_parent () =
  let root = Capability.mk_root (Types.Obj_irq_handler { Types.ih_irq = 2; ih_kernel = None }) in
  Capability.invalidate root;
  expect_error Types.Invalid_capability (fun () -> Capability.derive root)

let test_cap_descendants_postorder () =
  let root = Capability.mk_root (Types.Obj_irq_handler { Types.ih_irq = 3; ih_kernel = None }) in
  let c1 = Capability.derive root in
  let c2 = Capability.derive c1 in
  let ds = Capability.descendants root in
  Alcotest.(check int) "two descendants" 2 (List.length ds);
  (* Leaves first: c2 before c1. *)
  Alcotest.(check bool) "postorder" true
    (List.nth ds 0 == c2 && List.nth ds 1 == c1)

(* ------------------------------------------------------------------ *)
(* Boot / clone / destroy *)

let boot_protected ?(platform = haswell) ?(domains = 2) () =
  Boot.boot ~platform ~config:(Config.protected_ platform) ~domains ()

let boot_raw ?(platform = haswell) ?(domains = 2) () =
  Boot.boot ~platform ~config:Config.raw ~domains ()

let test_boot_protected_disjoint_colours () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in
  Alcotest.(check bool) "disjoint colour sets" true
    (Colour.disjoint d0.Boot.dom_colours d1.Boot.dom_colours);
  (* Every frame in each pool matches the pool's colour set. *)
  let check_pool d =
    let u = Retype.the_untyped d.Boot.dom_pool in
    List.iter
      (fun f ->
        Alcotest.(check bool) "frame colour in set" true
          (Colour.mem d.Boot.dom_colours (Colour.colour_of_frame ~n_colours:8 f)))
      u.Types.u_free
  in
  check_pool d0;
  check_pool d1

let test_boot_protected_distinct_kernels () =
  let b = boot_protected () in
  Alcotest.(check bool) "different kernel images" true
    (b.Boot.domains.(0).Boot.dom_kernel.Types.ki_id
    <> b.Boot.domains.(1).Boot.dom_kernel.Types.ki_id);
  Alcotest.(check bool) "neither is the initial kernel" true
    (not b.Boot.domains.(0).Boot.dom_kernel.Types.ki_is_initial);
  Alcotest.(check int) "three kernels exist" 3
    (List.length (System.kernels b.Boot.sys))

let test_boot_raw_shares_kernel () =
  let b = boot_raw () in
  Alcotest.(check bool) "same (initial) kernel" true
    (b.Boot.domains.(0).Boot.dom_kernel.Types.ki_is_initial
    && b.Boot.domains.(1).Boot.dom_kernel.Types.ki_is_initial);
  Alcotest.(check bool) "domain caps lack clone right" true
    (not b.Boot.domains.(0).Boot.dom_kernel_cap.Types.clone_right)

let test_cloned_kernel_is_coloured () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  Array.iter
    (fun f ->
      Alcotest.(check bool) "image frame has domain colour" true
        (Colour.mem d0.Boot.dom_colours (Colour.colour_of_frame ~n_colours:8 f)))
    d0.Boot.dom_kernel.Types.ki_frames

let test_clone_has_idle_thread () =
  let b = boot_protected () in
  Alcotest.(check bool) "idle thread exists" true
    (b.Boot.domains.(0).Boot.dom_kernel.Types.ki_idle <> None)

let test_clone_without_right_fails () =
  let b = boot_protected () in
  let stripped = Capability.derive ~clone_right:false b.Boot.master in
  let kmem = Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool ~platform:haswell in
  expect_error Types.No_clone_right (fun () ->
      Clone.clone b.Boot.sys ~core:0 ~src:stripped ~kmem)

let test_clone_cost_positive () =
  let b = boot_protected () in
  Alcotest.(check bool) "clone consumed cycles" true
    (Clone.clone_cost_cycles b.Boot.sys > 0)

let test_destroy_suspends_threads () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let tcb = Boot.spawn b d0 (fun _ -> ()) in
  Clone.destroy b.Boot.sys ~core:0 d0.Boot.dom_kernel_cap;
  Alcotest.(check bool) "thread suspended" true
    (tcb.Types.t_state = Types.Ts_suspended);
  Alcotest.(check bool) "kernel destroyed" true
    (d0.Boot.dom_kernel.Types.ki_state = Types.Ki_destroyed);
  Alcotest.(check int) "kernel unregistered" 2
    (List.length (System.kernels b.Boot.sys))

let test_destroy_running_kernel_falls_back_to_initial () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  (* Pretend the kernel is running on core 1. *)
  d0.Boot.dom_kernel.Types.ki_running_on.(1) <- true;
  Clone.destroy b.Boot.sys ~core:0 d0.Boot.dom_kernel_cap;
  let pc = System.per_core b.Boot.sys 1 in
  Alcotest.(check bool) "core 1 now runs the initial kernel" true
    pc.System.cur_kernel.Types.ki_is_initial;
  Alcotest.(check bool) "core 1 runs an idle thread" true
    (match pc.System.cur_thread with Some t -> t.Types.t_is_idle | None -> false)

let test_destroy_initial_rejected () =
  let b = boot_protected () in
  expect_error Types.Invalid_capability (fun () ->
      Clone.destroy b.Boot.sys ~core:0 b.Boot.master)

let test_revoke_master_destroys_clones () =
  let b = boot_protected () in
  Objects.revoke b.Boot.sys ~core:0 b.Boot.master;
  Alcotest.(check bool) "clones destroyed" true
    (b.Boot.domains.(0).Boot.dom_kernel.Types.ki_state = Types.Ki_destroyed
    && b.Boot.domains.(1).Boot.dom_kernel.Types.ki_state = Types.Ki_destroyed);
  Alcotest.(check bool) "initial survives" true
    ((System.initial_kernel b.Boot.sys).Types.ki_state = Types.Ki_active);
  Alcotest.(check bool) "master still valid" true
    (Capability.is_valid b.Boot.master)

let test_asid_freed_on_destroy () =
  let b = boot_protected () in
  let before_asid = System.alloc_asid b.Boot.sys in
  System.free_asid b.Boot.sys before_asid;
  Clone.destroy b.Boot.sys ~core:0 b.Boot.domains.(0).Boot.dom_kernel_cap;
  Clone.destroy b.Boot.sys ~core:0 b.Boot.domains.(1).Boot.dom_kernel_cap;
  (* Freed ASIDs are reusable. *)
  let a = System.alloc_asid b.Boot.sys in
  Alcotest.(check bool) "asid reusable" true (a > 0)

(* ------------------------------------------------------------------ *)
(* IRQ partitioning *)

let test_irq_set_int_conflict () =
  let b = boot_protected () in
  Clone.set_int b.Boot.sys ~image:b.Boot.domains.(0).Boot.dom_kernel_cap ~irq:5;
  expect_error Types.Irq_in_use (fun () ->
      Clone.set_int b.Boot.sys ~image:b.Boot.domains.(1).Boot.dom_kernel_cap ~irq:5)

let test_irq_freed_on_destroy () =
  let b = boot_protected () in
  Clone.set_int b.Boot.sys ~image:b.Boot.domains.(0).Boot.dom_kernel_cap ~irq:5;
  Clone.destroy b.Boot.sys ~core:0 b.Boot.domains.(0).Boot.dom_kernel_cap;
  (* Now the other domain may claim it. *)
  Clone.set_int b.Boot.sys ~image:b.Boot.domains.(1).Boot.dom_kernel_cap ~irq:5;
  Alcotest.(check pass) "reclaimed" () ()

let test_irq_partition_defers_foreign_timer () =
  let b = boot_protected () in
  let sys = b.Boot.sys in
  let k0 = b.Boot.domains.(0).Boot.dom_kernel in
  let k1 = b.Boot.domains.(1).Boot.dom_kernel in
  Clone.set_int sys ~image:b.Boot.domains.(0).Boot.dom_kernel_cap ~irq:7;
  Irq.arm_timer (System.irq sys) ~core:0 ~irq:7 ~at:0;
  (* While kernel 1 is current, the partitioned IRQ must not fire. *)
  Alcotest.(check (list int)) "deferred under k1" []
    (Irq.pending (System.irq sys) ~core:0 ~now:100 ~partitioned:true ~current:k1);
  Alcotest.(check (list int)) "delivered under k0" [ 7 ]
    (Irq.pending (System.irq sys) ~core:0 ~now:100 ~partitioned:true ~current:k0)

let test_irq_unpartitioned_delivers_anywhere () =
  let b = boot_raw () in
  let sys = b.Boot.sys in
  Irq.arm_timer (System.irq sys) ~core:0 ~irq:9 ~at:0;
  Alcotest.(check (list int)) "raw: delivered" [ 9 ]
    (Irq.pending (System.irq sys) ~core:0 ~now:1 ~partitioned:false
       ~current:(System.initial_kernel sys))

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let mk_tcb prio =
  {
    Types.t_id = Types.fresh_id ();
    t_prio = prio;
    t_state = Types.Ts_ready;
    t_vspace = None;
    t_kernel = None;
    t_core = 0;
    t_sc = None;
    t_domain = 0;
    t_frames = [];
    t_is_idle = false;
  }

let test_sched_priority_order () =
  let s = Sched.create ~cores:1 in
  let lo = mk_tcb 10 and hi = mk_tcb 200 in
  Sched.enqueue s ~core:0 lo;
  Sched.enqueue s ~core:0 hi;
  (match Sched.dequeue_highest s ~core:0 with
  | Some t -> Alcotest.(check int) "highest first" hi.Types.t_id t.Types.t_id
  | None -> Alcotest.fail "empty");
  match Sched.dequeue_highest s ~core:0 with
  | Some t -> Alcotest.(check int) "then lower" lo.Types.t_id t.Types.t_id
  | None -> Alcotest.fail "empty"

let test_sched_fifo_within_priority () =
  let s = Sched.create ~cores:1 in
  let a = mk_tcb 50 and b = mk_tcb 50 in
  Sched.enqueue s ~core:0 a;
  Sched.enqueue s ~core:0 b;
  (match Sched.dequeue_highest s ~core:0 with
  | Some t -> Alcotest.(check int) "fifo" a.Types.t_id t.Types.t_id
  | None -> Alcotest.fail "empty")

let test_sched_remove () =
  let s = Sched.create ~cores:1 in
  let a = mk_tcb 50 and b = mk_tcb 50 in
  Sched.enqueue s ~core:0 a;
  Sched.enqueue s ~core:0 b;
  Sched.remove s ~core:0 a;
  Alcotest.(check bool) "a gone" false (Sched.is_queued s ~core:0 a);
  Alcotest.(check int) "one left" 1 (Sched.queued_count s ~core:0)

let qcheck_sched_always_highest =
  QCheck.Test.make ~name:"dequeue always returns max priority" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 255))
    (fun prios ->
      let s = Sched.create ~cores:1 in
      List.iter (fun p -> Sched.enqueue s ~core:0 (mk_tcb p)) prios;
      match Sched.dequeue_highest s ~core:0 with
      | Some t -> t.Types.t_prio = List.fold_left max 0 prios
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Domain switch *)

let test_switch_updates_current () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let tcb = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 tcb;
  let cost = Domain_switch.switch b.Boot.sys ~core:0 ~to_:tcb in
  let pc = System.per_core b.Boot.sys 0 in
  Alcotest.(check bool) "kernel switched" true cost.Domain_switch.kernel_switched;
  Alcotest.(check bool) "cur thread" true
    (match pc.System.cur_thread with Some t -> t.Types.t_id = tcb.Types.t_id | None -> false);
  Alcotest.(check bool) "cur kernel" true
    (pc.System.cur_kernel.Types.ki_id = d0.Boot.dom_kernel.Types.ki_id)

let test_switch_flushes_on_core_state () =
  let b = boot_protected ~platform:sabre () in
  let sys = b.Boot.sys in
  let m = System.machine sys in
  (* Dirty the L1 and TLB. *)
  for i = 0 to 63 do
    ignore
      (Tp_hw.Machine.access m ~core:0 ~asid:7 ~vaddr:(i * 4096) ~paddr:(i * 4096)
         ~kind:Tp_hw.Defs.Write ())
  done;
  let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 tcb;
  let cost = Domain_switch.switch sys ~core:0 ~to_:tcb in
  Alcotest.(check bool) "flush cost positive" true (cost.Domain_switch.flush > 0);
  (* The switch's own post-flush steps (shared-data prefetch, timer
     reprogramming) re-install a few kernel TLB entries, but every
     pre-switch user entry must be gone. *)
  for i = 0 to 63 do
    Alcotest.(check bool) "user TLB entry flushed" false
      (Tp_hw.Tlb.probe (Tp_hw.Machine.dtlb m ~core:0) ~asid:7 ~vpn:i)
  done

let test_switch_padding_makes_total_constant () =
  (* With padding, total switch latency is the pad regardless of the
     dirty state left behind (Requirement 4 / Table 4). *)
  let run ~dirty =
    let b = boot_protected ~platform:sabre () in
    let sys = b.Boot.sys in
    let m = System.machine sys in
    for i = 0 to dirty - 1 do
      ignore
        (Tp_hw.Machine.access m ~core:0 ~asid:7 ~vaddr:(i * 32) ~paddr:(i * 32)
           ~kind:Tp_hw.Defs.Write ())
    done;
    let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
    Sched.remove (System.sched sys) ~core:0 tcb;
    let d1 = b.Boot.domains.(1) in
    let tcb1 = Boot.spawn b d1 (fun _ -> ()) in
    Sched.remove (System.sched sys) ~core:0 tcb1;
    ignore (Domain_switch.switch sys ~core:0 ~to_:tcb);
    (* Second switch crosses kernels with a padded outgoing kernel. *)
    (Domain_switch.switch sys ~core:0 ~to_:tcb1).Domain_switch.total
  in
  let a = run ~dirty:0 and bm = run ~dirty:1000 in
  Alcotest.(check int) "padded totals equal" a bm

let test_switch_no_pad_varies () =
  let cfgp = { (Config.protected_ sabre) with Config.pad_cycles = 0 } in
  let run ~dirty =
    let b = Boot.boot ~platform:sabre ~config:cfgp ~domains:2 () in
    let sys = b.Boot.sys in
    let m = System.machine sys in
    for i = 0 to dirty - 1 do
      ignore
        (Tp_hw.Machine.access m ~core:0 ~asid:7 ~vaddr:(i * 32) ~paddr:(i * 32)
           ~kind:Tp_hw.Defs.Write ())
    done;
    let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
    Sched.remove (System.sched sys) ~core:0 tcb;
    (* Measure the first kernel-crossing switch: the one that writes
       back the dirt the "sender" left. *)
    (Domain_switch.switch sys ~core:0 ~to_:tcb).Domain_switch.total
  in
  Alcotest.(check bool) "unpadded totals vary with dirtiness" true
    (run ~dirty:1000 > run ~dirty:0)

let test_switch_raw_no_flush () =
  let b = boot_raw () in
  let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 tcb;
  let cost = Domain_switch.switch b.Boot.sys ~core:0 ~to_:tcb in
  Alcotest.(check int) "no flush in raw mode" 0 cost.Domain_switch.flush;
  Alcotest.(check int) "no padding in raw mode" 0 cost.Domain_switch.pad_wait

(* ------------------------------------------------------------------ *)
(* Memory mapping and user access *)

let test_alloc_pages_and_access () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let base = Boot.alloc_pages b d0 ~pages:4 in
  let tcb = Boot.spawn b d0 (fun _ -> ()) in
  let lat = System.user_access b.Boot.sys ~core:0 tcb ~vaddr:base ~kind:Tp_hw.Defs.Read in
  Alcotest.(check bool) "access works" true (lat > 0)

let test_alloc_pages_coloured () =
  let b = boot_protected () in
  let d1 = b.Boot.domains.(1) in
  let base = Boot.alloc_pages b d1 ~pages:8 in
  let vs = d1.Boot.dom_vspace in
  for i = 0 to 7 do
    let pa = System.translate vs (base + (i * 4096)) in
    let frame = pa / 4096 in
    Alcotest.(check bool) "frame colour within domain" true
      (Colour.mem d1.Boot.dom_colours (Colour.colour_of_frame ~n_colours:8 frame))
  done

let test_unmapped_access_faults () =
  let b = boot_protected () in
  let tcb = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  expect_error Types.Invalid_capability (fun () ->
      System.user_access b.Boot.sys ~core:0 tcb ~vaddr:0x7000_0000
        ~kind:Tp_hw.Defs.Read)

(* ------------------------------------------------------------------ *)
(* Exec driver *)

let test_exec_runs_bodies_alternately () =
  let b = boot_protected () in
  let log = ref [] in
  let mk id = fun _ctx -> log := id :: !log in
  ignore (Boot.spawn b b.Boot.domains.(0) (mk 0));
  ignore (Boot.spawn b b.Boot.domains.(1) (mk 1));
  Exec.run_slices b.Boot.sys ~core:0 ~slice_cycles:200_000 ~slices:6 ();
  let runs = List.rev !log in
  Alcotest.(check int) "six slices" 6 (List.length runs);
  (* Round robin: adjacent slices alternate domains. *)
  let rec alternates = function
    | a :: b :: rest -> a <> b && alternates (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "alternating" true (alternates runs)

let test_exec_preempts_infinite_body () =
  let b = boot_protected () in
  let iters = ref 0 in
  ignore
    (Boot.spawn b b.Boot.domains.(0) (fun ctx ->
         while true do
           incr iters;
           Uctx.compute ctx 100
         done));
  Exec.run_slices b.Boot.sys ~core:0 ~slice_cycles:100_000 ~slices:2 ();
  Alcotest.(check bool) "body preempted, made progress" true (!iters > 100)

let test_exec_slice_timing () =
  let b = boot_protected ~platform:sabre () in
  let sys = b.Boot.sys in
  ignore (Boot.spawn b b.Boot.domains.(0) (fun _ -> ()));
  let t0 = System.now sys ~core:0 in
  Exec.run_slices sys ~core:0 ~slice_cycles:50_000 ~slices:4 ();
  let elapsed = System.now sys ~core:0 - t0 in
  Alcotest.(check bool) "~4 slices worth of cycles" true (elapsed >= 200_000)

let test_uctx_timer_interrupts_online_time () =
  (* A fired, unpartitioned timer interrupts the running thread and
     shows as a cycle jump (the Figure 6 receiver's observable). *)
  let b = boot_raw () in
  let sys = b.Boot.sys in
  let jumps = ref 0 in
  ignore
    (Boot.spawn b b.Boot.domains.(0) (fun ctx ->
         Irq.arm_timer (System.irq sys) ~core:0 ~irq:4 ~at:(Uctx.now ctx + 20_000);
         let last = ref (Uctx.now ctx) in
         try
           while true do
             Uctx.compute ctx 10;
             let n = Uctx.now ctx in
             if n - !last > 1_000 then incr jumps;
             last := n
           done
         with Uctx.Preempted -> ()));
  Exec.run_slices sys ~core:0 ~slice_cycles:100_000 ~slices:1 ();
  Alcotest.(check int) "exactly one mid-slice jump" 1 !jumps

(* ------------------------------------------------------------------ *)
(* IPC *)

let test_ipc_cost_positive_and_warm () =
  let b = boot_raw () in
  let sys = b.Boot.sys in
  let d0 = b.Boot.domains.(0) in
  let ep = Boot.new_endpoint b d0 in
  let t1 = Boot.spawn b d0 (fun _ -> ()) in
  let t2 = Boot.spawn b d0 (fun _ -> ()) in
  let cold = Ipc.one_way sys ~core:0 ~ep ~from:t1 ~to_:t2 in
  let warm = Ipc.one_way sys ~core:0 ~ep ~from:t2 ~to_:t1 in
  Alcotest.(check bool) "cold > warm" true (cold > warm);
  Alcotest.(check bool) "warm is hundreds of cycles" true
    (warm > 100 && warm < 5_000)

let test_ipc_rendezvous_blocks_and_wakes () =
  let b = boot_raw () in
  let sys = b.Boot.sys in
  let d0 = b.Boot.domains.(0) in
  let ep = Boot.new_endpoint b d0 in
  let t1 = Boot.spawn b d0 (fun _ -> ()) in
  let t2 = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 t1;
  Sched.remove (System.sched sys) ~core:0 t2;
  Alcotest.(check bool) "recv with no sender blocks" false
    (Ipc.recv sys ~core:0 ~ep t2);
  Alcotest.(check bool) "blocked state" true
    (t2.Types.t_state = Types.Ts_blocked_recv);
  Ipc.send sys ~core:0 ~ep t1;
  Alcotest.(check bool) "receiver woken" true (t2.Types.t_state = Types.Ts_ready)

let test_ipc_global_mappings_cheaper_on_arm () =
  (* Table 5's mechanism: per-ASID kernel mappings (colour-ready) cost
     more on the Sabre's tiny TLBs than global mappings (original). *)
  let measure config =
    let b = Boot.boot ~platform:sabre ~config ~domains:1 () in
    let sys = b.Boot.sys in
    let d0 = b.Boot.domains.(0) in
    let ep = Boot.new_endpoint b d0 in
    let t1 = Boot.spawn b d0 (fun _ -> ()) in
    let t2 = Boot.spawn b d0 (fun _ -> ()) in
    (* Give the two threads distinct address spaces. *)
    let asid = System.alloc_asid sys in
    let vs_cap = Retype.retype_vspace d0.Boot.dom_pool ~asid in
    (match vs_cap.Types.target with
    | Types.Obj_vspace vs -> t2.Types.t_vspace <- Some vs
    | _ -> ());
    (* Warm up, then measure the steady state of ping-pong IPC. *)
    for _ = 1 to 10 do
      ignore (Ipc.one_way sys ~core:0 ~ep ~from:t1 ~to_:t2);
      ignore (Ipc.one_way sys ~core:0 ~ep ~from:t2 ~to_:t1)
    done;
    let t0 = System.now sys ~core:0 in
    for _ = 1 to 50 do
      ignore (Ipc.one_way sys ~core:0 ~ep ~from:t1 ~to_:t2);
      ignore (Ipc.one_way sys ~core:0 ~ep ~from:t2 ~to_:t1)
    done;
    (System.now sys ~core:0 - t0) / 100
  in
  let original = measure Config.raw in
  let colour_ready =
    measure { Config.raw with Config.clone_kernel = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "colour-ready (%d) slower than original (%d)" colour_ready
       original)
    true
    (colour_ready > original)

let suite =
  [
    Alcotest.test_case "colour split disjoint" `Quick test_colour_split_disjoint;
    Alcotest.test_case "colour split uneven" `Quick test_colour_split_uneven;
    Alcotest.test_case "colour fraction" `Quick test_colour_fraction;
    Alcotest.test_case "colour of frame" `Quick test_colour_of_frame;
    Alcotest.test_case "colour empty set" `Quick test_colour_empty_set;
    Alcotest.test_case "colour full mask" `Quick test_colour_full_mask;
    Alcotest.test_case "colour of_list duplicates" `Quick
      test_colour_of_list_duplicates;
    Alcotest.test_case "colour disjoint reflexivity" `Quick
      test_colour_disjoint_reflexivity;
    Alcotest.test_case "phys coloured alloc" `Quick test_phys_alloc_coloured;
    Alcotest.test_case "phys free/reuse" `Quick test_phys_free_and_reuse;
    Alcotest.test_case "phys exhaustion" `Quick test_phys_exhaustion;
    Alcotest.test_case "retype takes frames" `Quick test_retype_takes_frames;
    Alcotest.test_case "retype exhaustion" `Quick test_retype_exhaustion;
    Alcotest.test_case "split colours" `Quick test_split_colours;
    Alcotest.test_case "split colours insufficient" `Quick test_split_colours_insufficient;
    Alcotest.test_case "derive strips clone right" `Quick test_cap_derive_strips_clone_right;
    Alcotest.test_case "derive invalid parent" `Quick test_cap_derive_invalid_parent;
    Alcotest.test_case "descendants postorder" `Quick test_cap_descendants_postorder;
    Alcotest.test_case "boot: disjoint colours" `Quick test_boot_protected_disjoint_colours;
    Alcotest.test_case "boot: distinct kernels" `Quick test_boot_protected_distinct_kernels;
    Alcotest.test_case "boot: raw shares kernel" `Quick test_boot_raw_shares_kernel;
    Alcotest.test_case "clone: image coloured" `Quick test_cloned_kernel_is_coloured;
    Alcotest.test_case "clone: idle thread" `Quick test_clone_has_idle_thread;
    Alcotest.test_case "clone: needs right" `Quick test_clone_without_right_fails;
    Alcotest.test_case "clone: costs cycles" `Quick test_clone_cost_positive;
    Alcotest.test_case "destroy: suspends threads" `Quick test_destroy_suspends_threads;
    Alcotest.test_case "destroy: IPI fallback" `Quick
      test_destroy_running_kernel_falls_back_to_initial;
    Alcotest.test_case "destroy: initial rejected" `Quick test_destroy_initial_rejected;
    Alcotest.test_case "revoke master destroys clones" `Quick
      test_revoke_master_destroys_clones;
    Alcotest.test_case "asid freed on destroy" `Quick test_asid_freed_on_destroy;
    Alcotest.test_case "irq set_int conflict" `Quick test_irq_set_int_conflict;
    Alcotest.test_case "irq freed on destroy" `Quick test_irq_freed_on_destroy;
    Alcotest.test_case "irq partition defers" `Quick test_irq_partition_defers_foreign_timer;
    Alcotest.test_case "irq raw delivers" `Quick test_irq_unpartitioned_delivers_anywhere;
    Alcotest.test_case "sched priority order" `Quick test_sched_priority_order;
    Alcotest.test_case "sched fifo" `Quick test_sched_fifo_within_priority;
    Alcotest.test_case "sched remove" `Quick test_sched_remove;
    QCheck_alcotest.to_alcotest qcheck_sched_always_highest;
    Alcotest.test_case "switch updates current" `Quick test_switch_updates_current;
    Alcotest.test_case "switch flushes on-core" `Quick test_switch_flushes_on_core_state;
    Alcotest.test_case "switch padding constant" `Quick
      test_switch_padding_makes_total_constant;
    Alcotest.test_case "switch no-pad varies" `Quick test_switch_no_pad_varies;
    Alcotest.test_case "switch raw no flush" `Quick test_switch_raw_no_flush;
    Alcotest.test_case "alloc+access" `Quick test_alloc_pages_and_access;
    Alcotest.test_case "alloc pages coloured" `Quick test_alloc_pages_coloured;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_access_faults;
    Alcotest.test_case "exec alternates" `Quick test_exec_runs_bodies_alternately;
    Alcotest.test_case "exec preempts" `Quick test_exec_preempts_infinite_body;
    Alcotest.test_case "exec slice timing" `Quick test_exec_slice_timing;
    Alcotest.test_case "uctx timer interrupt jump" `Quick
      test_uctx_timer_interrupts_online_time;
    Alcotest.test_case "ipc cost" `Quick test_ipc_cost_positive_and_warm;
    Alcotest.test_case "ipc rendezvous" `Quick test_ipc_rendezvous_blocks_and_wakes;
    Alcotest.test_case "ipc arm colour-ready slower" `Quick
      test_ipc_global_mappings_cheaper_on_arm;
  ]
