(* Tests for the observability layer (Tp_obs): counters, tracing,
   pad-slack profiling — and above all the zero-cost guarantee: with
   observability on or off, every simulated result is bit-identical. *)

open Tp_obs

let sabre = Tp_hw.Platform.sabre

(* Every test leaves the global switches off so observability state
   cannot leak between tests (or into other suites). *)
let with_obs ?(counters = false) ?(trace = false) f () =
  Fun.protect
    ~finally:(fun () ->
      Ctl.all_off ();
      Trace.stop ();
      Trace.clear ();
      Padprof.reset ())
    (fun () ->
      Ctl.set_counters counters;
      if trace then Trace.start ~capacity:4096 ();
      f ())

(* --- zero-cost / non-perturbation ---------------------------------- *)

let table2_fingerprint () =
  let r = Tp_core.Exp_table2.run sabre in
  List.map
    (fun row ->
      ( row.Tp_core.Exp_table2.which,
        row.Tp_core.Exp_table2.direct_us,
        row.Tp_core.Exp_table2.indirect_us,
        row.Tp_core.Exp_table2.total_us ))
    r.Tp_core.Exp_table2.rows

let test_table2_unperturbed () =
  Ctl.all_off ();
  let off = table2_fingerprint () in
  let on =
    with_obs ~counters:true ~trace:true (fun () -> table2_fingerprint ()) ()
  in
  Alcotest.(check bool)
    "table2 results bit-identical with counters+trace on" true (off = on)

(* A protected switching workload: the cost record of every switch and
   the final clock must not depend on observability. *)
let switch_fingerprint () =
  let open Tp_kernel in
  let b = Tp_core.Scenario.boot Tp_core.Scenario.Protected sabre in
  let sys = b.Boot.sys in
  let t0 = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  let t1 = Boot.spawn b b.Boot.domains.(1) (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 t0;
  Sched.remove (System.sched sys) ~core:0 t1;
  let costs = ref [] in
  for i = 1 to 40 do
    let c =
      Domain_switch.switch sys ~core:0 ~to_:(if i land 1 = 0 then t0 else t1)
    in
    costs :=
      ( c.Domain_switch.total,
        c.Domain_switch.flush,
        c.Domain_switch.pad_wait,
        c.Domain_switch.kernel_switched )
      :: !costs
  done;
  (List.rev !costs, System.now sys ~core:0)

let test_switch_unperturbed () =
  Ctl.all_off ();
  let off = switch_fingerprint () in
  let on =
    with_obs ~counters:true ~trace:true (fun () -> switch_fingerprint ()) ()
  in
  Alcotest.(check bool)
    "switch costs and clock bit-identical with counters+trace on" true
    (off = on)

let test_counters_off_never_count =
  with_obs ~counters:false (fun () ->
      let s = Counter.make_set "test.off" in
      let c = Counter.counter s "c" in
      Counter.incr c;
      Counter.add c 41;
      Alcotest.(check int) "disabled counter stays 0" 0 (Counter.value c))

(* --- counter semantics --------------------------------------------- *)

let test_counter_basics =
  with_obs ~counters:true (fun () ->
      let s = Counter.make_set "test.basic" in
      let a = Counter.counter s "a" in
      let b = Counter.counter s "b" in
      Counter.incr a;
      Counter.add b 5;
      Alcotest.(check (list (pair string int)))
        "snapshot in declaration order"
        [ ("a", 1); ("b", 5) ]
        (Counter.snapshot s);
      Alcotest.(check int) "total" 6 (Counter.total (Counter.snapshot s));
      Counter.reset s;
      Alcotest.(check (list (pair string int)))
        "reset zeroes, keeps names and order"
        [ ("a", 0); ("b", 0) ]
        (Counter.snapshot s))

let test_registry_replace =
  with_obs (fun () ->
      let s1 = Counter.make_set "test.reg" in
      let s2 = Counter.make_set "test.reg" in
      Counter.register s1;
      Counter.register s2;
      let hits =
        List.filter
          (fun s -> Counter.set_name s = "test.reg")
          (Counter.registered ())
      in
      Alcotest.(check int) "one survivor per name" 1 (List.length hits);
      Alcotest.(check bool) "latest registration wins" true (List.hd hits == s2))

let qcheck_delta_non_negative =
  QCheck.Test.make ~name:"counter deltas are non-negative and sum correctly"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_bound 1000))
    (fun adds ->
      with_obs ~counters:true
        (fun () ->
          let s = Counter.make_set "test.qc" in
          let c = Counter.counter s "c" in
          let before = Counter.snapshot s in
          List.iter (Counter.add c) adds;
          let d = Counter.delta ~before ~after:(Counter.snapshot s) in
          List.for_all (fun (_, v) -> v >= 0) d
          && Counter.total d = List.fold_left ( + ) 0 adds)
        ())

let qcheck_snapshot_reset_roundtrip =
  QCheck.Test.make ~name:"snapshot/reset round-trip preserves names"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 10) (int_bound 100))
    (fun vals ->
      with_obs ~counters:true
        (fun () ->
          let s = Counter.make_set "test.rt" in
          let cs =
            List.mapi
              (fun i v ->
                let c = Counter.counter s (Printf.sprintf "c%d" i) in
                Counter.add c v;
                c)
              vals
          in
          ignore cs;
          let snap = Counter.snapshot s in
          Counter.reset s;
          let zero = Counter.snapshot s in
          List.map fst snap = List.map fst zero
          && List.for_all (fun (_, v) -> v = 0) zero
          && List.map snd snap = vals)
        ())

(* --- trace ring ---------------------------------------------------- *)

let test_trace_ring_overwrite =
  with_obs (fun () ->
      Trace.start ~capacity:8 ();
      for i = 0 to 19 do
        Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:i ~dur:1 ()
      done;
      Alcotest.(check int) "ring keeps capacity" 8 (Trace.recorded ());
      Alcotest.(check int) "overwritten counted" 12 (Trace.dropped ());
      let ts = List.map (fun e -> e.Trace.ts) (Trace.events ()) in
      Alcotest.(check (list int))
        "oldest-first, most recent window"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        ts)

let test_trace_disabled_records_nothing =
  with_obs (fun () ->
      Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:0 ~dur:1 ();
      Alcotest.(check int) "no ring, no events" 0 (Trace.recorded ()))

let test_trace_instant_ts_fallback =
  with_obs ~trace:true (fun () ->
      Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:123 ~dur:7 ();
      Trace.instant ~core:0 ~cat:"t" ~name:"i" ();
      match List.rev (Trace.events ()) with
      | i :: _ ->
          (* Un-timestamped instants land at the end of the latest event,
             keeping causal order. *)
          Alcotest.(check int) "instant lands after last recorded event" 130
            i.Trace.ts
      | [] -> Alcotest.fail "no events recorded")

let test_chrome_export_shape =
  with_obs ~trace:true (fun () ->
      Trace.span ~core:1 ~cat:"kernel" ~name:"domain_switch" ~ts:10 ~dur:5
        ~args:[ ("flush", Trace.Int 3); ("why", Trace.Str "a\"b\\c") ]
        ();
      Trace.instant ~ts:12 ~core:0 ~cat:"klog" ~name:"harness_checkpoint" ();
      let f = Filename.temp_file "tp_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove f)
        (fun () ->
          Trace.export_chrome_file f;
          let ic = open_in f in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          let has sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "traceEvents present" true (has "\"traceEvents\"");
          Alcotest.(check bool) "complete span phase" true (has "\"ph\":\"X\"");
          Alcotest.(check bool) "instant phase" true (has "\"ph\":\"i\"");
          Alcotest.(check bool) "escaped string arg" true (has "a\\\"b\\\\c");
          Alcotest.(check bool) "thread metadata" true (has "thread_name")))

let test_klog_events_become_instants =
  with_obs ~trace:true (fun () ->
      Tp_kernel.Klog.harness_checkpoint ~now:55 ~chunk:2 ~collected:17 ();
      Tp_kernel.Klog.harness_degraded ~now:90 ~reason:"test" ~collected:17 ();
      let names =
        List.map (fun e -> (e.Trace.name, e.Trace.ts)) (Trace.events ())
      in
      Alcotest.(check (list (pair string int)))
        "harness events land in the trace at their clock"
        [ ("harness_checkpoint", 55); ("harness_degraded", 90) ]
        names)

(* --- pad-slack profiler -------------------------------------------- *)

let test_padprof_accounting =
  with_obs ~counters:true (fun () ->
      Padprof.record ~ki:3 ~pad:1000 ~padded:true ~total:1000 ~flush:200
        ~pad_wait:400;
      Padprof.record ~ki:3 ~pad:1000 ~padded:true ~total:1100 ~flush:250
        ~pad_wait:0;
      (* overrun *)
      Padprof.record ~ki:7 ~pad:0 ~padded:false ~total:300 ~flush:0 ~pad_wait:0;
      match Padprof.images () with
      | [ a; b ] ->
          Alcotest.(check int) "sorted by image id" 3 a.Padprof.im_ki;
          Alcotest.(check int) "switches" 2 a.Padprof.im_n;
          Alcotest.(check int) "padded" 2 a.Padprof.im_padded;
          Alcotest.(check int) "overruns" 1 a.Padprof.im_overruns;
          Alcotest.(check int) "worst unpadded" 1100 a.Padprof.im_worst_unpadded;
          Alcotest.(check (option int))
            "headroom = pad - worst unpadded"
            (Some (-100))
            (Padprof.headroom a);
          Alcotest.(check int) "unpadded image" 0 b.Padprof.im_padded;
          Alcotest.(check (option int))
            "no headroom without padded switches" None (Padprof.headroom b)
      | l -> Alcotest.failf "expected 2 images, got %d" (List.length l))

let test_padprof_gated =
  with_obs ~counters:false (fun () ->
      Padprof.record ~ki:1 ~pad:10 ~padded:true ~total:10 ~flush:1 ~pad_wait:1;
      Alcotest.(check int) "no recording with counters off" 0
        (List.length (Padprof.images ())))

(* --- harness metadata ---------------------------------------------- *)

let test_harness_switch_counters =
  with_obs ~counters:true (fun () ->
      let open Tp_kernel in
      let b = Tp_core.Scenario.boot Tp_core.Scenario.Protected sabre in
      let spec =
        {
          (Tp_attacks.Harness.default_spec sabre) with
          Tp_attacks.Harness.samples = 40;
          noise_sigma = 0.0;
        }
      in
      let rng = Tp_util.Rng.create ~seed:3 in
      let sender _ctx _sym = () in
      let receiver ctx = Some (float_of_int (Uctx.now ctx land 0xff)) in
      let r = Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng in
      let sw = r.Tp_attacks.Harness.switch_counters in
      Alcotest.(check bool)
        "switch counters counted the collection" true
        (Counter.total sw > 0);
      Alcotest.(check bool)
        "delta is per-counter non-negative" true
        (List.for_all (fun (_, v) -> v >= 0) sw))

let suite =
  [
    Alcotest.test_case "table2 unperturbed by observability" `Quick
      test_table2_unperturbed;
    Alcotest.test_case "switch path unperturbed by observability" `Quick
      test_switch_unperturbed;
    Alcotest.test_case "counters off never count" `Quick
      test_counters_off_never_count;
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "registry replace-on-name" `Quick test_registry_replace;
    Alcotest.test_case "trace ring overwrite" `Quick test_trace_ring_overwrite;
    Alcotest.test_case "trace disabled records nothing" `Quick
      test_trace_disabled_records_nothing;
    Alcotest.test_case "instant ts fallback" `Quick
      test_trace_instant_ts_fallback;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "klog events become instants" `Quick
      test_klog_events_become_instants;
    Alcotest.test_case "padprof accounting" `Quick test_padprof_accounting;
    Alcotest.test_case "padprof gated on counters" `Quick test_padprof_gated;
    Alcotest.test_case "harness switch-counter metadata" `Quick
      test_harness_switch_counters;
    QCheck_alcotest.to_alcotest qcheck_delta_non_negative;
    QCheck_alcotest.to_alcotest qcheck_snapshot_reset_roundtrip;
  ]
