(* Tests for the observability layer (Tp_obs): counters, tracing,
   pad-slack profiling — and above all the zero-cost guarantee: with
   observability on or off, every simulated result is bit-identical. *)

open Tp_obs

let sabre = Tp_hw.Platform.sabre

(* Every test leaves the global switches off so observability state
   cannot leak between tests (or into other suites). *)
let with_obs ?(counters = false) ?(trace = false) f () =
  Fun.protect
    ~finally:(fun () ->
      Ctl.all_off ();
      Trace.stop ();
      Trace.clear ();
      Padprof.reset ())
    (fun () ->
      Ctl.set_counters counters;
      if trace then Trace.start ~capacity:4096 ();
      f ())

(* --- zero-cost / non-perturbation ---------------------------------- *)

let table2_fingerprint () =
  let r = Tp_core.Exp_table2.run sabre in
  List.map
    (fun row ->
      ( row.Tp_core.Exp_table2.which,
        row.Tp_core.Exp_table2.direct_us,
        row.Tp_core.Exp_table2.indirect_us,
        row.Tp_core.Exp_table2.total_us ))
    r.Tp_core.Exp_table2.rows

let test_table2_unperturbed () =
  Ctl.all_off ();
  let off = table2_fingerprint () in
  let on =
    with_obs ~counters:true ~trace:true (fun () -> table2_fingerprint ()) ()
  in
  Alcotest.(check bool)
    "table2 results bit-identical with counters+trace on" true (off = on)

(* A protected switching workload: the cost record of every switch and
   the final clock must not depend on observability. *)
let switch_fingerprint () =
  let open Tp_kernel in
  let b = Tp_core.Scenario.boot Tp_core.Scenario.Protected sabre in
  let sys = b.Boot.sys in
  let t0 = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  let t1 = Boot.spawn b b.Boot.domains.(1) (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 t0;
  Sched.remove (System.sched sys) ~core:0 t1;
  let costs = ref [] in
  for i = 1 to 40 do
    let c =
      Domain_switch.switch sys ~core:0 ~to_:(if i land 1 = 0 then t0 else t1)
    in
    costs :=
      ( c.Domain_switch.total,
        c.Domain_switch.flush,
        c.Domain_switch.pad_wait,
        c.Domain_switch.kernel_switched )
      :: !costs
  done;
  (List.rev !costs, System.now sys ~core:0)

let test_switch_unperturbed () =
  Ctl.all_off ();
  let off = switch_fingerprint () in
  let on =
    with_obs ~counters:true ~trace:true (fun () -> switch_fingerprint ()) ()
  in
  Alcotest.(check bool)
    "switch costs and clock bit-identical with counters+trace on" true
    (off = on)

let test_counters_off_never_count =
  with_obs ~counters:false (fun () ->
      let s = Counter.make_set "test.off" in
      let c = Counter.counter s "c" in
      Counter.incr c;
      Counter.add c 41;
      Alcotest.(check int) "disabled counter stays 0" 0 (Counter.value c))

(* --- counter semantics --------------------------------------------- *)

let test_counter_basics =
  with_obs ~counters:true (fun () ->
      let s = Counter.make_set "test.basic" in
      let a = Counter.counter s "a" in
      let b = Counter.counter s "b" in
      Counter.incr a;
      Counter.add b 5;
      Alcotest.(check (list (pair string int)))
        "snapshot in declaration order"
        [ ("a", 1); ("b", 5) ]
        (Counter.snapshot s);
      Alcotest.(check int) "total" 6 (Counter.total (Counter.snapshot s));
      Counter.reset s;
      Alcotest.(check (list (pair string int)))
        "reset zeroes, keeps names and order"
        [ ("a", 0); ("b", 0) ]
        (Counter.snapshot s))

let test_registry_replace =
  with_obs (fun () ->
      let s1 = Counter.make_set "test.reg" in
      let s2 = Counter.make_set "test.reg" in
      Counter.register s1;
      Counter.register s2;
      let hits =
        List.filter
          (fun s -> Counter.set_name s = "test.reg")
          (Counter.registered ())
      in
      Alcotest.(check int) "one survivor per name" 1 (List.length hits);
      Alcotest.(check bool) "latest registration wins" true (List.hd hits == s2))

let qcheck_delta_non_negative =
  QCheck.Test.make ~name:"counter deltas are non-negative and sum correctly"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_bound 1000))
    (fun adds ->
      with_obs ~counters:true
        (fun () ->
          let s = Counter.make_set "test.qc" in
          let c = Counter.counter s "c" in
          let before = Counter.snapshot s in
          List.iter (Counter.add c) adds;
          let d = Counter.delta ~before ~after:(Counter.snapshot s) in
          List.for_all (fun (_, v) -> v >= 0) d
          && Counter.total d = List.fold_left ( + ) 0 adds)
        ())

let qcheck_snapshot_reset_roundtrip =
  QCheck.Test.make ~name:"snapshot/reset round-trip preserves names"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 10) (int_bound 100))
    (fun vals ->
      with_obs ~counters:true
        (fun () ->
          let s = Counter.make_set "test.rt" in
          let cs =
            List.mapi
              (fun i v ->
                let c = Counter.counter s (Printf.sprintf "c%d" i) in
                Counter.add c v;
                c)
              vals
          in
          ignore cs;
          let snap = Counter.snapshot s in
          Counter.reset s;
          let zero = Counter.snapshot s in
          List.map fst snap = List.map fst zero
          && List.for_all (fun (_, v) -> v = 0) zero
          && List.map snd snap = vals)
        ())

(* --- trace ring ---------------------------------------------------- *)

let test_trace_ring_overwrite =
  with_obs (fun () ->
      Trace.start ~capacity:8 ();
      for i = 0 to 19 do
        Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:i ~dur:1 ()
      done;
      Alcotest.(check int) "ring keeps capacity" 8 (Trace.recorded ());
      Alcotest.(check int) "overwritten counted" 12 (Trace.dropped ());
      let ts = List.map (fun e -> e.Trace.ts) (Trace.events ()) in
      Alcotest.(check (list int))
        "oldest-first, most recent window"
        [ 12; 13; 14; 15; 16; 17; 18; 19 ]
        ts)

let test_trace_disabled_records_nothing =
  with_obs (fun () ->
      Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:0 ~dur:1 ();
      Alcotest.(check int) "no ring, no events" 0 (Trace.recorded ()))

let test_trace_instant_ts_fallback =
  with_obs ~trace:true (fun () ->
      Trace.span ~core:0 ~cat:"t" ~name:"s" ~ts:123 ~dur:7 ();
      Trace.instant ~core:0 ~cat:"t" ~name:"i" ();
      match List.rev (Trace.events ()) with
      | i :: _ ->
          (* Un-timestamped instants land at the end of the latest event,
             keeping causal order. *)
          Alcotest.(check int) "instant lands after last recorded event" 130
            i.Trace.ts
      | [] -> Alcotest.fail "no events recorded")

let test_chrome_export_shape =
  with_obs ~trace:true (fun () ->
      Trace.span ~core:1 ~cat:"kernel" ~name:"domain_switch" ~ts:10 ~dur:5
        ~args:[ ("flush", Trace.Int 3); ("why", Trace.Str "a\"b\\c") ]
        ();
      Trace.instant ~ts:12 ~core:0 ~cat:"klog" ~name:"harness_checkpoint" ();
      let f = Filename.temp_file "tp_trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove f)
        (fun () ->
          Trace.export_chrome_file f;
          let ic = open_in f in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          let has sub =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) "traceEvents present" true (has "\"traceEvents\"");
          Alcotest.(check bool) "complete span phase" true (has "\"ph\":\"X\"");
          Alcotest.(check bool) "instant phase" true (has "\"ph\":\"i\"");
          Alcotest.(check bool) "escaped string arg" true (has "a\\\"b\\\\c");
          Alcotest.(check bool) "thread metadata" true (has "thread_name")))

let test_klog_events_become_instants =
  with_obs ~trace:true (fun () ->
      Tp_kernel.Klog.harness_checkpoint ~now:55 ~chunk:2 ~collected:17 ();
      Tp_kernel.Klog.harness_degraded ~now:90 ~reason:"test" ~collected:17 ();
      let names =
        List.map (fun e -> (e.Trace.name, e.Trace.ts)) (Trace.events ())
      in
      Alcotest.(check (list (pair string int)))
        "harness events land in the trace at their clock"
        [ ("harness_checkpoint", 55); ("harness_degraded", 90) ]
        names)

(* --- pad-slack profiler -------------------------------------------- *)

let test_padprof_accounting =
  with_obs ~counters:true (fun () ->
      Padprof.record ~ki:3 ~pad:1000 ~padded:true ~total:1000 ~flush:200
        ~pad_wait:400;
      Padprof.record ~ki:3 ~pad:1000 ~padded:true ~total:1100 ~flush:250
        ~pad_wait:0;
      (* overrun *)
      Padprof.record ~ki:7 ~pad:0 ~padded:false ~total:300 ~flush:0 ~pad_wait:0;
      match Padprof.images () with
      | [ a; b ] ->
          Alcotest.(check int) "sorted by image id" 3 a.Padprof.im_ki;
          Alcotest.(check int) "switches" 2 a.Padprof.im_n;
          Alcotest.(check int) "padded" 2 a.Padprof.im_padded;
          Alcotest.(check int) "overruns" 1 a.Padprof.im_overruns;
          Alcotest.(check int) "worst unpadded" 1100 a.Padprof.im_worst_unpadded;
          Alcotest.(check (option int))
            "headroom = pad - worst unpadded"
            (Some (-100))
            (Padprof.headroom a);
          Alcotest.(check int) "unpadded image" 0 b.Padprof.im_padded;
          Alcotest.(check (option int))
            "no headroom without padded switches" None (Padprof.headroom b)
      | l -> Alcotest.failf "expected 2 images, got %d" (List.length l))

let test_padprof_gated =
  with_obs ~counters:false (fun () ->
      Padprof.record ~ki:1 ~pad:10 ~padded:true ~total:10 ~flush:1 ~pad_wait:1;
      Alcotest.(check int) "no recording with counters off" 0
        (List.length (Padprof.images ())))

(* --- log-bucketed histogram ---------------------------------------- *)

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check int) "empty percentile" 0 (Histogram.percentile h 50.0);
  List.iter (Histogram.record h) [ 0; 1; 7; 8; 100; 100; 5000; -3 ];
  Alcotest.(check int) "count" 8 (Histogram.count h);
  Alcotest.(check int) "negative clamped into sum" 5216 (Histogram.sum h);
  Alcotest.(check int) "min" 0 (Histogram.min_ h);
  Alcotest.(check int) "max" 5000 (Histogram.max_ h);
  Alcotest.(check int) "p100 is exact max" 5000 (Histogram.percentile h 100.0);
  Alcotest.(check int) "p0 is exact min" 0 (Histogram.percentile h 0.0);
  (* Small values are exact buckets. *)
  Alcotest.(check int) "value 7 exact" 7 (Histogram.upper_of (Histogram.index_of 7));
  (* Bucket upper bound carries <= 12.5% relative error. *)
  let p90 = Histogram.percentile h 90.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p90 (%d) within an octave-eighth of 5000" p90)
    true
    (float_of_int p90 >= 5000.0 *. 0.875 && p90 <= 5000)

let qcheck_histogram_bucket_invariants =
  QCheck.Test.make ~name:"histogram buckets contain their values" ~count:500
    QCheck.(int_bound 2_000_000_000)
    (fun v ->
      let i = Histogram.index_of v in
      let upper = Histogram.upper_of i in
      (* v lands in bucket i: upper bound covers it, previous doesn't. *)
      v <= upper && (i = 0 || Histogram.upper_of (i - 1) < v))

let qcheck_histogram_merge_order_independent =
  QCheck.Test.make
    ~name:"histogram merge is order-independent (any worker order)" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 5)
           (list_of_size Gen.(int_range 0 30) (int_bound 100_000)))
        (list_of_size Gen.(int_range 0 20) small_nat))
    (fun (worker_values, shuffle_seed) ->
      let workers =
        List.map
          (fun vs ->
            let h = Histogram.create () in
            List.iter (Histogram.record h) vs;
            h)
          worker_values
      in
      let fold order =
        let into = Histogram.create () in
        List.iter (fun h -> Histogram.merge ~into h) order;
        Histogram.snapshot into
      in
      (* A deterministic permutation derived from the seed list. *)
      let permuted =
        List.fold_left
          (fun acc s ->
            let n = List.length acc in
            if n < 2 then acc
            else
              let k = s mod n in
              let x = List.nth acc k in
              x :: List.filteri (fun i _ -> i <> k) acc)
          workers shuffle_seed
      in
      fold workers = fold permuted)

let qcheck_histogram_snapshot_roundtrip =
  QCheck.Test.make ~name:"histogram snapshot/of_snapshot round-trips"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 50) (int_bound 1_000_000))
    (fun vs ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) vs;
      let s = Histogram.snapshot h in
      Histogram.snapshot (Histogram.of_snapshot s) = s)

(* Absorbing worker counter exports in any fixed order yields identical
   snapshots — the determinism contract behind [-j N].  Each ordering
   runs in a fresh spawned domain because the counter registry is
   domain-local. *)
let qcheck_counter_absorb_order_independent =
  QCheck.Test.make ~name:"counter absorb is order-independent" ~count:30
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 4)
           (list_of_size Gen.(int_range 0 10) (int_bound 100)))
        (list_of_size Gen.(int_range 0 8) small_nat))
    (fun (worker_adds, shuffle_seed) ->
      let snapshot_after order =
        Domain.join
          (Domain.spawn (fun () ->
               Ctl.set_counters true;
               Fun.protect
                 ~finally:(fun () -> Ctl.all_off ())
                 (fun () ->
                   let s = Counter.make_set "test.absorb" in
                   let _c = Counter.counter s "c" in
                   Counter.register s;
                   let exports =
                     List.map
                       (fun adds ->
                         Domain.join
                           (Domain.spawn (fun () ->
                                Ctl.set_counters true;
                                let ws = Counter.make_set "test.absorb" in
                                let wc = Counter.counter ws "c" in
                                Counter.register ws;
                                List.iter (Counter.add wc) adds;
                                Counter.export ())))
                       order
                   in
                   List.iter Counter.absorb exports;
                   Counter.snapshot s)))
      in
      let permuted =
        List.fold_left
          (fun acc s ->
            let n = List.length acc in
            if n < 2 then acc
            else
              let k = s mod n in
              let x = List.nth acc k in
              x :: List.filteri (fun i _ -> i <> k) acc)
          worker_adds shuffle_seed
      in
      snapshot_after worker_adds = snapshot_after permuted)

(* --- metrics registry ----------------------------------------------- *)

let with_metrics f () =
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      Metrics.reset ();
      Metrics.set_enabled true;
      f ())

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_metrics_disabled_no_op () =
  Metrics.set_enabled false;
  Metrics.reset ();
  let c = Metrics.counter "tpsim_test_off_total" in
  Metrics.inc c;
  Metrics.inc c ~by:41;
  Alcotest.(check (option (float 0.0)))
    "disabled counter records nothing" None (Metrics.value c)

let test_metrics_render_shape =
  with_metrics (fun () ->
      let c = Metrics.counter ~help:"A counter." "tpsim_test_total" in
      let g = Metrics.gauge ~help:"A gauge." "tpsim_test_gauge" in
      let h = Metrics.histogram ~help:"A histogram." "tpsim_test_us" in
      Metrics.inc c ~labels:[ ("k", "a\"b\\c\nd") ] ~by:3;
      Metrics.inc c ~labels:[ ("k", "plain") ];
      Metrics.set g 2.5;
      List.iter (Metrics.observe h) [ 1; 10; 100 ];
      let text = Metrics.render () in
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "render has %s" (String.escaped sub))
            true (contains_sub text sub))
        [
          "# TYPE tpsim_test_total counter";
          "# HELP tpsim_test_total A counter.";
          "tpsim_test_total{k=\"a\\\"b\\\\c\\nd\"} 3";
          "tpsim_test_total{k=\"plain\"} 1";
          "# TYPE tpsim_test_gauge gauge";
          "tpsim_test_gauge 2.5";
          "# TYPE tpsim_test_us histogram";
          "tpsim_test_us_bucket{le=\"+Inf\"} 3";
          "tpsim_test_us_sum 111";
          "tpsim_test_us_count 3";
          "# EOF";
        ];
      (* Cumulative buckets must be monotone and end at the count. *)
      let e = Tp_serve.Top.parse text in
      let les =
        List.filter_map
          (fun s ->
            if s.Tp_serve.Top.s_name = "tpsim_test_us_bucket" then
              Some s.Tp_serve.Top.s_value
            else None)
          e.Tp_serve.Top.e_samples
      in
      Alcotest.(check bool)
        "bucket series is monotone non-decreasing" true
        (les <> []
        && fst
             (List.fold_left
                (fun (ok, prev) v -> (ok && v >= prev, v))
                (true, 0.0) les))
      |> ignore;
      Alcotest.(check bool) "kind mismatch rejected" true
        (match Metrics.gauge "tpsim_test_total" with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_metrics_roundtrip_via_top =
  with_metrics (fun () ->
      let h = Metrics.histogram "tpsim_rt_us" in
      for _ = 1 to 60 do Metrics.observe h 100 done;
      for _ = 1 to 40 do Metrics.observe h 10_000 done;
      let e = Tp_serve.Top.parse (Metrics.render ()) in
      let q p = Tp_serve.Top.quantile e "tpsim_rt_us" p in
      (* p50 lands in the 100-cycle bucket, p99 in the 10k one, with
         bucket-granularity (12.5%) error. *)
      (match q 50.0 with
      | Some v -> Alcotest.(check bool) "p50 near 100" true (v >= 100.0 && v < 120.0)
      | None -> Alcotest.fail "no p50");
      match q 99.0 with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "p99 (%g) near 10000" v)
            true
            (v >= 10_000.0 *. 0.875 && v <= 10_000.0 *. 1.125)
      | None -> Alcotest.fail "no p99")

(* --- event log ------------------------------------------------------ *)

let test_eventlog_rotation () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tp-test-elog-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir "events.jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let t = Eventlog.open_ ~max_bytes:1024 ~keep:2 path in
      let payload = String.make 100 'x' in
      for i = 1 to 60 do
        Eventlog.write t ~event:"tick"
          [ ("i", Tp_util.Json.Num (float_of_int i));
            ("pad", Tp_util.Json.Str payload) ]
      done;
      Eventlog.close t;
      Alcotest.(check bool) "live file exists" true (Sys.file_exists path);
      Alcotest.(check bool)
        "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool)
        "keep bounds generations" false
        (Sys.file_exists (path ^ ".3"));
      (* Every line of every generation parses and carries ts+event. *)
      let files =
        List.filter Sys.file_exists [ path; path ^ ".1"; path ^ ".2" ]
      in
      let lines =
        List.concat_map
          (fun f ->
            let ic = open_in f in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> In_channel.input_lines ic))
          files
      in
      Alcotest.(check bool) "rotation kept a bounded tail" true
        (List.length lines < 60);
      List.iter
        (fun l ->
          match Tp_util.Json.parse_opt l with
          | Some j ->
              Alcotest.(check bool) "line has ts and event" true
                (Tp_util.Json.member "ts" j <> None
                && Tp_util.Json.member "event" j <> None)
          | None -> Alcotest.failf "unparseable event line: %s" l)
        lines;
      (* Writes after close are silent no-ops. *)
      Eventlog.write t ~event:"late" [])

(* --- pad-slack percentiles ------------------------------------------ *)

let test_padprof_slack_percentiles =
  with_obs ~counters:true (fun () ->
      for slack = 1 to 100 do
        Padprof.record ~ki:5 ~pad:1000 ~padded:true ~total:1000 ~flush:0
          ~pad_wait:slack
      done;
      match Padprof.images () with
      | [ im ] -> (
          match Padprof.slack_percentiles im with
          | None -> Alcotest.fail "no percentiles from padded switches"
          | Some (p50, p99) ->
              Alcotest.(check bool)
                (Printf.sprintf "p50 (%d) near 50" p50)
                true
                (p50 >= 44 && p50 <= 57);
              Alcotest.(check bool)
                (Printf.sprintf "p99 (%d) near 99" p99)
                true
                (p99 >= 87 && p99 <= 100);
              let b = Buffer.create 512 in
              let ppf = Format.formatter_of_buffer b in
              Padprof.report ppf ();
              Format.pp_print_flush ppf ();
              Alcotest.(check bool)
                "report carries the slack columns" true
                (contains_sub (Buffer.contents b) "slack p50"
                && contains_sub (Buffer.contents b) "slack p99"))
      | l -> Alcotest.failf "expected 1 image, got %d" (List.length l))

let test_padprof_no_padded_no_percentiles =
  with_obs ~counters:true (fun () ->
      Padprof.record ~ki:2 ~pad:0 ~padded:false ~total:300 ~flush:0 ~pad_wait:0;
      match Padprof.images () with
      | [ im ] ->
          Alcotest.(check bool)
            "unpadded image has no slack percentiles" true
            (Padprof.slack_percentiles im = None)
      | l -> Alcotest.failf "expected 1 image, got %d" (List.length l))

(* --- harness metadata ---------------------------------------------- *)

let test_harness_switch_counters =
  with_obs ~counters:true (fun () ->
      let open Tp_kernel in
      let b = Tp_core.Scenario.boot Tp_core.Scenario.Protected sabre in
      let spec =
        {
          (Tp_attacks.Harness.default_spec sabre) with
          Tp_attacks.Harness.samples = 40;
          noise_sigma = 0.0;
        }
      in
      let rng = Tp_util.Rng.create ~seed:3 in
      let sender _ctx _sym = () in
      let receiver ctx = Some (float_of_int (Uctx.now ctx land 0xff)) in
      let r = Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng in
      let sw = r.Tp_attacks.Harness.switch_counters in
      Alcotest.(check bool)
        "switch counters counted the collection" true
        (Counter.total sw > 0);
      Alcotest.(check bool)
        "delta is per-counter non-negative" true
        (List.for_all (fun (_, v) -> v >= 0) sw))

let suite =
  [
    Alcotest.test_case "table2 unperturbed by observability" `Quick
      test_table2_unperturbed;
    Alcotest.test_case "switch path unperturbed by observability" `Quick
      test_switch_unperturbed;
    Alcotest.test_case "counters off never count" `Quick
      test_counters_off_never_count;
    Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "registry replace-on-name" `Quick test_registry_replace;
    Alcotest.test_case "trace ring overwrite" `Quick test_trace_ring_overwrite;
    Alcotest.test_case "trace disabled records nothing" `Quick
      test_trace_disabled_records_nothing;
    Alcotest.test_case "instant ts fallback" `Quick
      test_trace_instant_ts_fallback;
    Alcotest.test_case "chrome export shape" `Quick test_chrome_export_shape;
    Alcotest.test_case "klog events become instants" `Quick
      test_klog_events_become_instants;
    Alcotest.test_case "padprof accounting" `Quick test_padprof_accounting;
    Alcotest.test_case "padprof gated on counters" `Quick test_padprof_gated;
    Alcotest.test_case "harness switch-counter metadata" `Quick
      test_harness_switch_counters;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "metrics disabled records nothing" `Quick
      test_metrics_disabled_no_op;
    Alcotest.test_case "metrics render shape" `Quick test_metrics_render_shape;
    Alcotest.test_case "metrics quantiles round-trip via top" `Quick
      test_metrics_roundtrip_via_top;
    Alcotest.test_case "event log rotation" `Quick test_eventlog_rotation;
    Alcotest.test_case "padprof slack percentiles" `Quick
      test_padprof_slack_percentiles;
    Alcotest.test_case "padprof slack absent without padding" `Quick
      test_padprof_no_padded_no_percentiles;
    QCheck_alcotest.to_alcotest qcheck_delta_non_negative;
    QCheck_alcotest.to_alcotest qcheck_snapshot_reset_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_histogram_bucket_invariants;
    QCheck_alcotest.to_alcotest qcheck_histogram_merge_order_independent;
    QCheck_alcotest.to_alcotest qcheck_histogram_snapshot_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_counter_absorb_order_independent;
  ]
