(* Tests for the MI measurement toolchain: KDE, continuous MI, the
   shuffle-based leakage test, channel matrices. *)

open Tp_channel

let rng () = Tp_util.Rng.create ~seed:1234

let test_kde_integrates_to_one () =
  let r = rng () in
  let xs = Array.init 2000 (fun _ -> Tp_util.Rng.gaussian r ~mu:0.0 ~sigma:1.0) in
  let grid = { Kde.lo = -6.0; hi = 6.0; points = 512 } in
  let d = Kde.estimate grid xs in
  let integral = Array.fold_left ( +. ) 0.0 d *. Kde.grid_step grid in
  Alcotest.(check bool) "integral ~ 1" true (Float.abs (integral -. 1.0) < 0.02)

let test_kde_peak_location () =
  let r = rng () in
  let xs = Array.init 3000 (fun _ -> Tp_util.Rng.gaussian r ~mu:2.0 ~sigma:0.3) in
  let grid = { Kde.lo = -1.0; hi = 5.0; points = 600 } in
  let d = Kde.estimate grid xs in
  let peak = ref 0 in
  Array.iteri (fun i v -> if v > d.(!peak) then peak := i) d;
  Alcotest.(check bool) "peak near 2" true
    (Float.abs (Kde.grid_position grid !peak -. 2.0) < 0.2)

let test_kde_degenerate_data () =
  (* Constant samples must not blow up: bandwidth floors to the grid
     step and yields a narrow proper density. *)
  let xs = Array.make 100 5.0 in
  let grid = { Kde.lo = 0.0; hi = 10.0; points = 256 } in
  let d = Kde.estimate grid xs in
  let integral = Array.fold_left ( +. ) 0.0 d *. Kde.grid_step grid in
  Alcotest.(check bool) "finite and ~1" true
    (Float.abs (integral -. 1.0) < 0.05 && Array.for_all Float.is_finite d)

let test_kde_edge_binning () =
  (* Nearest-index binning: half distances round up, uniformly over the
     axis, and out-of-range samples clamp to the end bins.  A single
     sample with a narrow kernel puts the density peak on its bin. *)
  let grid = { Kde.lo = 0.0; hi = 10.0; points = 11 } in
  let peak_of x =
    let d = Kde.estimate grid ~bandwidth:0.1 [| x |] in
    let peak = ref 0 in
    Array.iteri (fun i v -> if v > d.(!peak) then peak := i) d;
    !peak
  in
  Alcotest.(check int) "exact grid point" 7 (peak_of 7.0);
  Alcotest.(check int) "half rounds up" 5 (peak_of 4.5);
  Alcotest.(check int) "below lo clamps to 0" 0 (peak_of (-3.0));
  Alcotest.(check int) "above hi clamps to last" 10 (peak_of 12.0);
  Alcotest.(check int) "just below a boundary" 4 (peak_of 4.4999)

let test_silverman_positive () =
  let r = rng () in
  let xs = Array.init 500 (fun _ -> Tp_util.Rng.gaussian r ~mu:0.0 ~sigma:3.0) in
  Alcotest.(check bool) "positive bandwidth" true (Kde.silverman_bandwidth xs > 0.0)

(* A perfect binary channel: input i -> output exactly i, far apart. *)
let perfect_channel n =
  {
    Mi.input = Array.init n (fun i -> i mod 2);
    output = Array.init n (fun i -> if i mod 2 = 0 then 0.0 else 100.0);
  }

let test_mi_perfect_binary () =
  let m = Mi.estimate (perfect_channel 2000) in
  Alcotest.(check bool) "~1 bit" true (Float.abs (m -. 1.0) < 0.05)

let test_mi_perfect_quaternary () =
  let n = 4000 in
  let s =
    {
      Mi.input = Array.init n (fun i -> i mod 4);
      output = Array.init n (fun i -> float_of_int (i mod 4) *. 50.0);
    }
  in
  let m = Mi.estimate s in
  Alcotest.(check bool) "~2 bits" true (Float.abs (m -. 2.0) < 0.1)

let test_mi_independent_is_zero () =
  let r = rng () in
  let n = 4000 in
  let s =
    {
      Mi.input = Array.init n (fun _ -> Tp_util.Rng.int r 4);
      output = Array.init n (fun _ -> Tp_util.Rng.gaussian r ~mu:10.0 ~sigma:2.0);
    }
  in
  let m = Mi.estimate s in
  Alcotest.(check bool) "~0 bits" true (m < 0.02)

let test_mi_constant_output_zero () =
  let n = 1000 in
  let s =
    { Mi.input = Array.init n (fun i -> i mod 3); output = Array.make n 7.0 }
  in
  Alcotest.(check (float 1e-6)) "exactly 0" 0.0 (Mi.estimate s)

let test_mi_single_symbol_zero () =
  let s = { Mi.input = Array.make 100 0; output = Array.init 100 float_of_int } in
  Alcotest.(check (float 1e-9)) "one symbol -> 0" 0.0 (Mi.estimate s)

let test_mi_noisy_channel_between () =
  (* Overlapping conditionals: 0 < MI < 1. *)
  let r = rng () in
  let n = 4000 in
  let input = Array.init n (fun _ -> Tp_util.Rng.int r 2) in
  let output =
    Array.map
      (fun i -> Tp_util.Rng.gaussian r ~mu:(float_of_int i) ~sigma:1.0)
      input
  in
  let m = Mi.estimate { Mi.input; output } in
  Alcotest.(check bool) "strictly between" true (m > 0.05 && m < 0.95)

let test_mi_uniform_weighting () =
  (* MI weights every symbol equally even with unbalanced samples. *)
  let n = 3000 in
  let input = Array.init n (fun i -> if i < 2700 then 0 else 1) in
  let output = Array.map (fun i -> float_of_int i *. 100.0) input in
  let m = Mi.estimate { Mi.input; output } in
  Alcotest.(check bool) "still ~1 bit" true (Float.abs (m -. 1.0) < 0.1)

let test_mi_permutation_destroys () =
  let r = rng () in
  let s = perfect_channel 2000 in
  let perm = Tp_util.Rng.permutation r 2000 in
  let m = Mi.estimate_with_permutation s ~perm in
  Alcotest.(check bool) "shuffled MI near 0" true (m < 0.05)

let test_leakage_detects_leak () =
  let r = rng () in
  let res = Leakage.test ~rng:r (perfect_channel 1500) in
  Alcotest.(check bool) "verdict = Leak" true (res.Leakage.verdict = Leakage.Leak);
  Alcotest.(check bool) "M > M0" true (res.Leakage.m > res.Leakage.m0)

let test_leakage_accepts_null () =
  let r = rng () in
  let n = 1500 in
  let s =
    {
      Mi.input = Array.init n (fun _ -> Tp_util.Rng.int r 4);
      output = Array.init n (fun _ -> Tp_util.Rng.gaussian r ~mu:0.0 ~sigma:1.0);
    }
  in
  let res = Leakage.test ~rng:r s in
  Alcotest.(check bool) "no leak verdict" true
    (res.Leakage.verdict = Leakage.No_evidence
    || res.Leakage.verdict = Leakage.Negligible)

let test_leakage_noisy_but_real_leak () =
  let r = rng () in
  let n = 2000 in
  let input = Array.init n (fun _ -> Tp_util.Rng.int r 2) in
  let output =
    Array.map
      (fun i -> Tp_util.Rng.gaussian r ~mu:(2.0 *. float_of_int i) ~sigma:1.0)
      input
  in
  let res = Leakage.test ~rng:r { Mi.input; output } in
  Alcotest.(check bool) "detected through noise" true
    (res.Leakage.verdict = Leakage.Leak)

let test_matrix_shape_and_stochastic () =
  let s = perfect_channel 400 in
  let m = Matrix.of_samples ~bins:10 s in
  Alcotest.(check int) "two symbols" 2 (Array.length m.Matrix.symbols);
  (* Columns are conditional distributions: they sum to 1. *)
  Array.iteri
    (fun j _ ->
      let col = Array.fold_left (fun acc row -> acc +. row.(j)) 0.0 m.Matrix.prob in
      Alcotest.(check (float 1e-9)) "column sums to 1" 1.0 col)
    m.Matrix.symbols

let test_matrix_perfect_channel_concentrated () =
  let s = perfect_channel 400 in
  let m = Matrix.of_samples ~bins:10 s in
  (* Symbol 0 -> lowest bin, symbol 1 -> highest bin. *)
  Alcotest.(check (float 1e-9)) "P(bin0|sym0)=1" 1.0 m.Matrix.prob.(0).(0);
  Alcotest.(check (float 1e-9)) "P(bin9|sym1)=1" 1.0 m.Matrix.prob.(9).(1)

let test_capacity_bsc () =
  (* Binary symmetric channel with crossover p: C = 1 - H(p). *)
  let h p = -.(p *. log p /. log 2.) -. ((1. -. p) *. log (1. -. p) /. log 2.) in
  List.iter
    (fun p ->
      let w = [| [| 1. -. p; p |]; [| p; 1. -. p |] |] in
      let c, dist = Capacity.blahut_arimoto w in
      Alcotest.(check (float 1e-3)) "BSC capacity" (1. -. h p) c;
      Alcotest.(check (float 1e-2)) "uniform maximiser" 0.5 dist.(0))
    [ 0.05; 0.1; 0.25; 0.45 ]

let test_capacity_z_channel () =
  (* Z-channel p=0.5: known capacity ~0.3219 bits, maximiser is not
     uniform — exactly what distinguishes capacity from uniform MI. *)
  let w = [| [| 1.0; 0.0 |]; [| 0.5; 0.5 |] |] in
  let c, dist = Capacity.blahut_arimoto w in
  Alcotest.(check (float 1e-3)) "Z-channel capacity" 0.3219 c;
  Alcotest.(check bool) "non-uniform maximiser" true (dist.(0) > 0.55)

let test_capacity_noiseless () =
  let w = [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |]; [| 0.; 0.; 1. |] |] in
  let c, _ = Capacity.blahut_arimoto w in
  Alcotest.(check (float 1e-3)) "log2 3" (log 3. /. log 2.) c

let test_capacity_useless_channel () =
  let w = [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  let c, _ = Capacity.blahut_arimoto w in
  Alcotest.(check (float 1e-6)) "zero capacity" 0.0 c

let test_capacity_rejects_bad_matrix () =
  match Capacity.blahut_arimoto [| [| 0.5; 0.2 |] |] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_capacity_bounds_uniform_mi () =
  (* §5.1: capacity upper-bounds the uniform-input rate. *)
  let r = rng () in
  let n = 3000 in
  let input = Array.init n (fun _ -> Tp_util.Rng.int r 2) in
  let output =
    Array.map
      (fun i -> Tp_util.Rng.gaussian r ~mu:(1.5 *. float_of_int i) ~sigma:1.0)
      input
  in
  let s = { Mi.input; output } in
  let m = Mi.estimate s in
  let c = Capacity.of_samples s in
  Alcotest.(check bool)
    (Printf.sprintf "capacity %.3f >= uniform MI %.3f (within estimation slack)" c m)
    true
    (c >= m -. 0.05)

let qcheck_capacity_vs_mi =
  QCheck.Test.make ~name:"capacity ~ upper bound of uniform MI" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let r = Tp_util.Rng.create ~seed in
      let n = 600 in
      let input = Array.init n (fun _ -> Tp_util.Rng.int r 3) in
      let output =
        Array.map
          (fun i ->
            Tp_util.Rng.gaussian r ~mu:(2.0 *. float_of_int i) ~sigma:1.5)
          input
      in
      let s = { Mi.input; output } in
      Capacity.of_samples s >= Mi.estimate s -. 0.1)

let qcheck_mi_nonnegative_and_bounded =
  QCheck.Test.make ~name:"MI in [0, log2 k]" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 8 120) (pair (int_bound 3) (float_range 0. 100.))))
    (fun (_, pairs) ->
      QCheck.assume (List.length pairs >= 8);
      let input = Array.of_list (List.map fst pairs) in
      let output = Array.of_list (List.map snd pairs) in
      let k =
        List.length (List.sort_uniq compare (Array.to_list input))
      in
      let m = Mi.estimate { Mi.input; output } in
      m >= 0.0 && m <= (log (float_of_int (max 2 k)) /. log 2.0) +. 0.15)

let qcheck_leakage_m0_nonnegative =
  QCheck.Test.make ~name:"shuffle bound M0 >= 0" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let r = Tp_util.Rng.create ~seed in
      let n = 300 in
      let s =
        {
          Mi.input = Array.init n (fun _ -> Tp_util.Rng.int r 2);
          output = Array.init n (fun _ -> Tp_util.Rng.float r 10.0);
        }
      in
      let res = Leakage.test ~shuffles:20 ~rng:r s in
      res.Leakage.m0 >= 0.0 && res.Leakage.m >= 0.0)

let suite =
  [
    Alcotest.test_case "kde integrates to 1" `Quick test_kde_integrates_to_one;
    Alcotest.test_case "kde peak location" `Quick test_kde_peak_location;
    Alcotest.test_case "kde degenerate data" `Quick test_kde_degenerate_data;
    Alcotest.test_case "kde edge binning" `Quick test_kde_edge_binning;
    Alcotest.test_case "silverman positive" `Quick test_silverman_positive;
    Alcotest.test_case "mi perfect binary" `Quick test_mi_perfect_binary;
    Alcotest.test_case "mi perfect quaternary" `Quick test_mi_perfect_quaternary;
    Alcotest.test_case "mi independent ~ 0" `Quick test_mi_independent_is_zero;
    Alcotest.test_case "mi constant output" `Quick test_mi_constant_output_zero;
    Alcotest.test_case "mi single symbol" `Quick test_mi_single_symbol_zero;
    Alcotest.test_case "mi noisy channel" `Quick test_mi_noisy_channel_between;
    Alcotest.test_case "mi uniform weighting" `Quick test_mi_uniform_weighting;
    Alcotest.test_case "mi permutation destroys" `Quick test_mi_permutation_destroys;
    Alcotest.test_case "leakage detects leak" `Quick test_leakage_detects_leak;
    Alcotest.test_case "leakage accepts null" `Quick test_leakage_accepts_null;
    Alcotest.test_case "leakage through noise" `Quick test_leakage_noisy_but_real_leak;
    Alcotest.test_case "matrix stochastic" `Quick test_matrix_shape_and_stochastic;
    Alcotest.test_case "matrix concentrated" `Quick test_matrix_perfect_channel_concentrated;
    Alcotest.test_case "capacity: BSC" `Quick test_capacity_bsc;
    Alcotest.test_case "capacity: Z-channel" `Quick test_capacity_z_channel;
    Alcotest.test_case "capacity: noiseless" `Quick test_capacity_noiseless;
    Alcotest.test_case "capacity: useless" `Quick test_capacity_useless_channel;
    Alcotest.test_case "capacity: rejects bad matrix" `Quick
      test_capacity_rejects_bad_matrix;
    Alcotest.test_case "capacity bounds uniform MI" `Quick
      test_capacity_bounds_uniform_mi;
    QCheck_alcotest.to_alcotest qcheck_capacity_vs_mi;
    QCheck_alcotest.to_alcotest qcheck_mi_nonnegative_and_bounded;
    QCheck_alcotest.to_alcotest qcheck_leakage_m0_nonnegative;
  ]
