(* Tests for the paper's §3.3/§6 extension mechanisms: nested
   partitioning, re-partitioning after destruction, shared memory with
   a dedicated colour — plus kernel-layout invariants. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

let boot_protected ?(domains = 2) () =
  Boot.boot ~platform:haswell ~config:(Config.protected_ haswell) ~domains ()

(* ------------------------------------------------------------------ *)
(* Nested partitioning (§3.3) *)

let test_subdivide_creates_nested_domains () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let subs = Boot.subdivide b d0 ~parts:2 ~core:0 in
  Alcotest.(check int) "two sub-domains" 2 (List.length subs);
  match subs with
  | [ a; bb ] ->
      Alcotest.(check bool) "sub-colours disjoint" true
        (Colour.disjoint a.Boot.dom_colours bb.Boot.dom_colours);
      Alcotest.(check bool) "sub-colours within parent" true
        (Colour.union a.Boot.dom_colours bb.Boot.dom_colours
        land lnot d0.Boot.dom_colours
        = 0);
      Alcotest.(check bool) "fresh kernels" true
        (a.Boot.dom_kernel.Types.ki_id <> bb.Boot.dom_kernel.Types.ki_id
        && a.Boot.dom_kernel.Types.ki_id <> d0.Boot.dom_kernel.Types.ki_id);
      (* Sub-kernels cloned from the parent's capability hang under it
         in the CDT: revoking the parent cap destroys them. *)
      Objects.revoke b.Boot.sys ~core:0 d0.Boot.dom_kernel_cap;
      Alcotest.(check bool) "revoke reaps nested kernels" true
        (a.Boot.dom_kernel.Types.ki_state = Types.Ki_destroyed
        && bb.Boot.dom_kernel.Types.ki_state = Types.Ki_destroyed)
  | _ -> Alcotest.fail "expected two"

let test_subdivide_needs_colours () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  (* d0 holds 4 colours on Haswell; asking for 5 parts must fail. *)
  match Boot.subdivide b d0 ~parts:5 ~core:0 with
  | _ -> Alcotest.fail "expected Insufficient_colours"
  | exception Types.Kernel_error Types.Insufficient_colours -> ()

let test_subdivide_needs_clone_right () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let stripped = Capability.derive ~clone_right:false d0.Boot.dom_kernel_cap in
  let weak = { d0 with Boot.dom_kernel_cap = stripped } in
  match Boot.subdivide b weak ~parts:2 ~core:0 with
  | _ -> Alcotest.fail "expected No_clone_right"
  | exception Types.Kernel_error Types.No_clone_right -> ()

(* ------------------------------------------------------------------ *)
(* Re-partitioning (§3.3: "Re-partitioning is possible by ... revoking
   a complete kernel image") *)

let test_repartition_after_destroy () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let free_before = Retype.untyped_free_frames d0.Boot.dom_pool in
  (* Destroy d0's kernel and reclaim its Kernel_Memory by revoking the
     pool: frames flow back and a new kernel can be cloned. *)
  Clone.destroy b.Boot.sys ~core:0 d0.Boot.dom_kernel_cap;
  Objects.revoke b.Boot.sys ~core:0 d0.Boot.dom_pool;
  let free_after = Retype.untyped_free_frames d0.Boot.dom_pool in
  Alcotest.(check bool) "frames reclaimed" true (free_after > free_before);
  let kmem = Retype.retype_kernel_memory d0.Boot.dom_pool ~platform:haswell in
  let cap = Clone.clone b.Boot.sys ~core:0 ~src:b.Boot.master ~kmem in
  Alcotest.(check bool) "new kernel active" true
    ((Clone.the_image cap).Types.ki_state = Types.Ki_active)

let test_kmem_destruction_invalidates_kernel () =
  (* §4.4: "Destroying active Kernel_Memory also invalidates the
     kernel". *)
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let kmem = Retype.retype_kernel_memory d0.Boot.dom_pool ~platform:haswell in
  let kcap = Clone.clone b.Boot.sys ~core:0 ~src:b.Boot.master ~kmem in
  let ki = Clone.the_image kcap in
  Objects.delete b.Boot.sys ~core:0 kmem;
  Alcotest.(check bool) "kernel destroyed with its memory" true
    (ki.Types.ki_state = Types.Ki_destroyed)

let test_delete_derived_cap_keeps_object () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let nf_cap = Retype.retype_notification d0.Boot.dom_pool in
  let copy = Capability.derive nf_cap in
  Objects.delete b.Boot.sys ~core:0 copy;
  Alcotest.(check bool) "original still valid" true (Capability.is_valid nf_cap)

let test_delete_owner_returns_frames () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let before = Retype.untyped_free_frames d0.Boot.dom_pool in
  let nf_cap = Retype.retype_notification d0.Boot.dom_pool in
  Alcotest.(check int) "one frame taken" (before - 1)
    (Retype.untyped_free_frames d0.Boot.dom_pool);
  Objects.delete b.Boot.sys ~core:0 nf_cap;
  Alcotest.(check int) "frame returned" before
    (Retype.untyped_free_frames d0.Boot.dom_pool)

(* ------------------------------------------------------------------ *)
(* Shared memory with a dedicated colour (§6.1) *)

let test_map_shared_visible_to_both () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in
  let va0, va1 = Boot.map_shared b ~from_dom:d0 ~to_dom:d1 ~pages:2 in
  (* Same physical frames behind both mappings. *)
  for i = 0 to 1 do
    let pa0 = System.translate d0.Boot.dom_vspace (va0 + (i * 4096)) in
    let pa1 = System.translate d1.Boot.dom_vspace (va1 + (i * 4096)) in
    Alcotest.(check int) "same frame" pa0 pa1;
    (* The dedicated colour is the provider's. *)
    Alcotest.(check bool) "provider's colour" true
      (Colour.mem d0.Boot.dom_colours
         (Colour.colour_of_frame ~n_colours:8 (pa0 / 4096)))
  done

let test_map_shared_creates_cache_channel () =
  (* The §6.1 caveat made concrete: writes by one domain are visible as
     timing to the other through the shared lines — the kernel only
     guarantees the mapping, determinism is user-level policy. *)
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) and d1 = b.Boot.domains.(1) in
  let va0, va1 = Boot.map_shared b ~from_dom:d0 ~to_dom:d1 ~pages:1 in
  let t0 = Boot.spawn b d0 (fun _ -> ()) in
  let t1 = Boot.spawn b d1 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 t0;
  Sched.remove (System.sched b.Boot.sys) ~core:0 t1;
  (* Warm d1's TLB entry for the page (another line), then have d0
     touch line 0: d1's subsequent access hits the shared line in
     cache — the cross-domain timing dependence. *)
  ignore
    (System.user_access b.Boot.sys ~core:0 t1 ~vaddr:(va1 + 64)
       ~kind:Tp_hw.Defs.Read);
  ignore (System.user_access b.Boot.sys ~core:0 t0 ~vaddr:va0 ~kind:Tp_hw.Defs.Read);
  let warm = System.user_access b.Boot.sys ~core:0 t1 ~vaddr:va1 ~kind:Tp_hw.Defs.Read in
  Alcotest.(check bool)
    (Printf.sprintf "sharer-warmed line is fast (%d cycles)" warm)
    true (warm <= 16)

(* ------------------------------------------------------------------ *)
(* Layout invariants *)

let test_layout_shared_size () =
  (* §4.1: "total of about 9.5 KiB". *)
  Alcotest.(check bool)
    (Printf.sprintf "shared bytes = %d ~ 9.5KiB" Layout.shared_bytes)
    true
    (Layout.shared_bytes > 9 * 1024 && Layout.shared_bytes < 10 * 1024)

let test_layout_regions_line_disjoint () =
  (* The audit of §4.1: no two shared regions co-reside in a line. *)
  let line = 64 in
  let ranges =
    List.map
      (fun r -> (Layout.shared_region_off r, Layout.shared_region_size r))
      Layout.all_shared_regions
  in
  List.iteri
    (fun i (off_i, size_i) ->
      List.iteri
        (fun j (off_j, size_j) ->
          if i < j then begin
            let last_i = (off_i + size_i - 1) / line in
            let first_j = off_j / line in
            let last_j = (off_j + size_j - 1) / line in
            let first_i = off_i / line in
            Alcotest.(check bool) "no shared cache line" true
              (last_i < first_j || last_j < first_i)
          end)
        ranges)
    ranges

let test_layout_handlers_fit_text () =
  let handlers =
    [
      Layout.entry_stub; Layout.handler_signal; Layout.handler_set_priority;
      Layout.handler_poll; Layout.handler_yield; Layout.handler_ipc;
      Layout.handler_tick; Layout.handler_irq; Layout.handler_clone;
      Layout.handler_destroy;
    ]
  in
  List.iter
    (fun p ->
      let lay = Layout.image_layout p in
      List.iter
        (fun (h : Layout.text_range) ->
          Alcotest.(check bool) "handler inside text" true
            (h.Layout.t_off + h.Layout.t_len <= lay.Layout.text_size))
        handlers)
    Tp_hw.Platform.all

let test_layout_image_frames_cover_layout () =
  List.iter
    (fun p ->
      let lay = Layout.image_layout p in
      Alcotest.(check int) "frames cover image bytes"
        ((lay.Layout.image_bytes + 4095) / 4096)
        (Layout.image_frames p))
    Tp_hw.Platform.all

let test_image_pa_respects_frames () =
  let b = boot_protected () in
  let ki = b.Boot.domains.(0).Boot.dom_kernel in
  let lay = Layout.image_layout haswell in
  for off = 0 to (lay.Layout.image_bytes / 4096) - 1 do
    let pa = System.image_pa ki ~off:(off * 4096) in
    Alcotest.(check int) "offset lands in its frame"
      ki.Types.ki_frames.(off) (pa / 4096)
  done

(* ------------------------------------------------------------------ *)
(* Real page-table walks (§5.3.1's van Schaik claim) *)

let test_leaf_pts_come_from_the_pool () =
  (* "partitioning user space automatically partitions dynamic kernel
     data (and will defeat e.g. page-table side-channel attacks)":
     leaf PTs must carry the owning domain's colours. *)
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  ignore (Boot.alloc_pages b d0 ~pages:8);
  let vs = d0.Boot.dom_vspace in
  Alcotest.(check bool) "a leaf PT exists" true
    (Hashtbl.length vs.Types.vs_leaf_pts > 0);
  Hashtbl.iter
    (fun _ frame ->
      Alcotest.(check bool) "leaf PT frame has domain colour" true
        (Colour.mem d0.Boot.dom_colours (Colour.colour_of_frame ~n_colours:8 frame)))
    vs.Types.vs_leaf_pts;
  Alcotest.(check bool) "root PT too" true
    (Colour.mem d0.Boot.dom_colours
       (Colour.colour_of_frame ~n_colours:8 vs.Types.vs_root_pt))

let test_walk_latency_reflects_pt_cache_state () =
  (* The walk reads real PT lines: evicting them from the caches makes
     the next TLB-missing access measurably slower — the raw material
     of the van Schaik attack. *)
  let b = boot_protected () in
  let sys = b.Boot.sys in
  let m = System.machine sys in
  let d0 = b.Boot.domains.(0) in
  let buf = Boot.alloc_pages b d0 ~pages:4 in
  let tcb = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 tcb;
  let vs = d0.Boot.dom_vspace in
  (* Warm everything, then force a TLB miss with warm PT lines. *)
  ignore (System.user_access sys ~core:0 tcb ~vaddr:buf ~kind:Tp_hw.Defs.Read);
  ignore (Tp_hw.Machine.flush_tlbs m ~core:0);
  let warm_walk = System.user_access sys ~core:0 tcb ~vaddr:buf ~kind:Tp_hw.Defs.Read in
  (* Now also evict the PT lines before the walk. *)
  ignore (Tp_hw.Machine.flush_tlbs m ~core:0);
  ignore (Tp_hw.Machine.clflush m ~core:0 ~paddr:(Phys.frame_addr vs.Types.vs_root_pt));
  Hashtbl.iter
    (fun _ f -> ignore (Tp_hw.Machine.clflush m ~core:0 ~paddr:(Phys.frame_addr f)))
    vs.Types.vs_leaf_pts;
  let cold_walk = System.user_access sys ~core:0 tcb ~vaddr:buf ~kind:Tp_hw.Defs.Read in
  Alcotest.(check bool)
    (Printf.sprintf "cold PT walk slower (%d vs %d)" cold_walk warm_walk)
    true
    (cold_walk > warm_walk + 100)

let test_tlb_hit_avoids_walk () =
  let b = boot_protected () in
  let sys = b.Boot.sys in
  let d0 = b.Boot.domains.(0) in
  let buf = Boot.alloc_pages b d0 ~pages:1 in
  let tcb = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 tcb;
  ignore (System.user_access sys ~core:0 tcb ~vaddr:buf ~kind:Tp_hw.Defs.Read);
  let hit = System.user_access sys ~core:0 tcb ~vaddr:buf ~kind:Tp_hw.Defs.Read in
  Alcotest.(check bool) "TLB+L1 hit is cheap" true (hit <= 10)

(* ------------------------------------------------------------------ *)
(* Multicore execution *)

let test_concurrent_cores_advance () =
  let b = boot_protected () in
  let sys = b.Boot.sys in
  ignore (Boot.spawn b b.Boot.domains.(0) ~core:0 (fun _ -> ()));
  ignore (Boot.spawn b b.Boot.domains.(1) ~core:1 (fun _ -> ()));
  Exec.run_concurrent sys ~cores:[ 0; 1 ] ~slice_cycles:50_000 ~rounds:4 ();
  Alcotest.(check bool) "core 0 advanced" true (System.now sys ~core:0 > 150_000);
  Alcotest.(check bool) "core 1 advanced" true (System.now sys ~core:1 > 150_000)

let test_cosched_one_domain_at_a_time () =
  let b = boot_protected () in
  let sys = b.Boot.sys in
  (* Record, per slice execution, which domain ran; under gang
     scheduling the two domains must never interleave within a round
     pair in a way that overlaps. *)
  let trace = ref [] in
  ignore
    (Boot.spawn b b.Boot.domains.(0) ~core:0 (fun _ -> trace := (0, 0) :: !trace));
  ignore
    (Boot.spawn b b.Boot.domains.(0) ~core:1 (fun _ -> trace := (0, 1) :: !trace));
  ignore
    (Boot.spawn b b.Boot.domains.(1) ~core:0 (fun _ -> trace := (1, 0) :: !trace));
  ignore
    (Boot.spawn b b.Boot.domains.(1) ~core:1 (fun _ -> trace := (1, 1) :: !trace));
  Exec.run_coscheduled sys ~cores:[ 0; 1 ] ~slice_cycles:50_000 ~rounds:4 ();
  (* Each round appended two entries (one per core); they must agree
     on the domain. *)
  let rec rounds = function
    | (d1, _) :: (d2, _) :: rest ->
        Alcotest.(check int) "both cores ran the same domain" d1 d2;
        rounds rest
    | [ _ ] -> Alcotest.fail "odd trace"
    | [] -> ()
  in
  rounds (List.rev !trace);
  Alcotest.(check int) "four rounds, two cores" 8 (List.length !trace)

let test_destroy_during_concurrent_execution () =
  (* §4.4 under real concurrency: destroy a kernel while a core is
     actually executing one of its threads; the IPIs must park that
     core on the initial kernel's idle thread. *)
  let b = boot_protected () in
  let sys = b.Boot.sys in
  let victim_ran = ref 0 in
  ignore
    (Boot.spawn b b.Boot.domains.(0) ~core:1 (fun ctx ->
         incr victim_ran;
         Uctx.idle_rest ctx));
  (* Run core 1 one slice so the domain-0 kernel is genuinely current
     there. *)
  Exec.run_slices sys ~core:1 ~slice_cycles:50_000 ~slices:1 ();
  let pc1 = System.per_core sys 1 in
  Alcotest.(check bool) "domain 0 kernel current on core 1" true
    (pc1.System.cur_kernel.Types.ki_id = b.Boot.domains.(0).Boot.dom_kernel.Types.ki_id);
  (* Destroy it from core 0. *)
  Clone.destroy sys ~core:0 b.Boot.domains.(0).Boot.dom_kernel_cap;
  Alcotest.(check bool) "core 1 parked on initial kernel" true
    pc1.System.cur_kernel.Types.ki_is_initial;
  Alcotest.(check bool) "core 1 runs an idle thread" true
    (match pc1.System.cur_thread with Some t -> t.Types.t_is_idle | None -> false);
  (* The core keeps ticking without user threads. *)
  Exec.run_slices sys ~core:1 ~slice_cycles:50_000 ~slices:2 ();
  Alcotest.(check int) "victim never ran again" 1 !victim_ran

(* ------------------------------------------------------------------ *)
(* Shared-data audit (§4.1) *)

let switch_trace b ~dirty_sender =
  let sys = b.Boot.sys in
  let wl = Boot.spawn b b.Boot.domains.(0) (fun _ -> ()) in
  let idle = Boot.spawn b b.Boot.domains.(1) (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 wl;
  Sched.remove (System.sched sys) ~core:0 idle;
  ignore (Domain_switch.switch sys ~core:0 ~to_:wl);
  if dirty_sender then begin
    let buf = Boot.alloc_pages b b.Boot.domains.(0) ~pages:8 in
    for i = 0 to 511 do
      ignore
        (System.user_access sys ~core:0 wl ~vaddr:(buf + (i * 64))
           ~kind:Tp_hw.Defs.Write)
    done
  end;
  Audit.capture sys (fun () ->
      ignore (Domain_switch.switch sys ~core:0 ~to_:idle))

let test_audit_switch_trace_deterministic () =
  (* The §4.1 audit, mechanised: the shared-data access trace of a
     protected domain switch is identical whatever the outgoing domain
     did — so the residual shared data cannot re-encode sender
     behaviour. *)
  let t1 =
    switch_trace (boot_protected ()) ~dirty_sender:false
  in
  let t2 =
    switch_trace (boot_protected ()) ~dirty_sender:true
  in
  Alcotest.(check bool) "identical shared-data traces" true
    (Audit.equal_traces t1 t2);
  Alcotest.(check bool) "trace non-empty" true (List.length t1 > 0)

let test_audit_prefetch_covers_all_regions () =
  (* Requirement 3's prefetch step must touch every shared region. *)
  let trace = switch_trace (boot_protected ()) ~dirty_sender:false in
  List.iter
    (fun region ->
      Alcotest.(check bool)
        (Audit.region_name region ^ " touched during switch")
        true
        (List.exists (fun e -> e.Audit.region = region) trace))
    Layout.all_shared_regions

let test_audit_syscall_footprints_differ () =
  (* The flip side — and the Figure 3 channel's root cause: different
     syscalls have different shared-data footprints. *)
  let b = boot_protected () in
  let sys = b.Boot.sys in
  let d0 = b.Boot.domains.(0) in
  let nf = Boot.new_notification b d0 in
  let caller = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 caller;
  let helper_cap = Retype.retype_tcb d0.Boot.dom_pool ~core:0 ~prio:50 in
  let helper =
    match helper_cap.Types.target with Types.Obj_tcb t -> t | _ -> assert false
  in
  let trace_of call =
    Audit.capture sys (fun () -> Syscalls.execute sys ~core:0 caller call)
  in
  let signal = trace_of (Syscalls.Signal nf) in
  let setprio = trace_of (Syscalls.Set_priority (helper, 60)) in
  Alcotest.(check bool) "Signal vs SetPriority footprints differ" false
    (Audit.equal_traces signal setprio)

let test_audit_lines_touched_counts () =
  let trace = switch_trace (boot_protected ()) ~dirty_sender:false in
  let n = Audit.lines_touched haswell trace in
  (* The whole shared block is ~9.5 KiB = ~152 lines at 64 B; the
     switch prefetches all of it plus its own bookkeeping. *)
  Alcotest.(check bool) (Printf.sprintf "%d lines ~ whole block" n) true
    (n >= 140 && n <= 170)

(* ------------------------------------------------------------------ *)
(* Syscall semantics *)

let test_signal_wakes_waiter () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let nf = Boot.new_notification b d0 in
  let waiter = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 waiter;
  waiter.Types.t_state <- Types.Ts_blocked_recv;
  nf.Types.nf_waiters <- [ waiter ];
  let caller = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 caller;
  Syscalls.execute b.Boot.sys ~core:0 caller (Syscalls.Signal nf);
  Alcotest.(check bool) "waiter ready" true (waiter.Types.t_state = Types.Ts_ready);
  Alcotest.(check bool) "queued" true
    (Sched.is_queued (System.sched b.Boot.sys) ~core:0 waiter);
  Alcotest.(check int) "word set" 1 nf.Types.nf_word

let test_poll_clears_word () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let nf = Boot.new_notification b d0 in
  nf.Types.nf_word <- 1;
  let caller = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 caller;
  Syscalls.execute b.Boot.sys ~core:0 caller (Syscalls.Poll nf);
  Alcotest.(check int) "word cleared" 0 nf.Types.nf_word

let test_set_priority_requeues () =
  let b = boot_protected () in
  let d0 = b.Boot.domains.(0) in
  let target = Boot.spawn b d0 ~prio:100 (fun _ -> ()) in
  let caller = Boot.spawn b d0 (fun _ -> ()) in
  Sched.remove (System.sched b.Boot.sys) ~core:0 caller;
  Syscalls.execute b.Boot.sys ~core:0 caller (Syscalls.Set_priority (target, 42));
  Alcotest.(check int) "priority changed" 42 target.Types.t_prio;
  Alcotest.(check bool) "still queued at new prio" true
    (Sched.is_queued (System.sched b.Boot.sys) ~core:0 target)

let test_exec_respects_priority () =
  let b = boot_protected () in
  let order = ref [] in
  let lo = Boot.spawn b b.Boot.domains.(0) ~prio:10 (fun _ -> order := `Lo :: !order) in
  let hi = Boot.spawn b b.Boot.domains.(1) ~prio:200 (fun _ -> order := `Hi :: !order) in
  ignore lo;
  ignore hi;
  Exec.run_slices b.Boot.sys ~core:0 ~slice_cycles:100_000 ~slices:1 ();
  Alcotest.(check bool) "high priority ran first" true (!order = [ `Hi ])

let suite =
  [
    Alcotest.test_case "subdivide: nested domains" `Quick
      test_subdivide_creates_nested_domains;
    Alcotest.test_case "subdivide: needs colours" `Quick test_subdivide_needs_colours;
    Alcotest.test_case "subdivide: needs clone right" `Quick
      test_subdivide_needs_clone_right;
    Alcotest.test_case "repartition after destroy" `Quick
      test_repartition_after_destroy;
    Alcotest.test_case "kmem destruction invalidates kernel" `Quick
      test_kmem_destruction_invalidates_kernel;
    Alcotest.test_case "derived cap delete keeps object" `Quick
      test_delete_derived_cap_keeps_object;
    Alcotest.test_case "owner delete returns frames" `Quick
      test_delete_owner_returns_frames;
    Alcotest.test_case "map_shared both see frames" `Quick
      test_map_shared_visible_to_both;
    Alcotest.test_case "map_shared timing channel caveat" `Quick
      test_map_shared_creates_cache_channel;
    Alcotest.test_case "layout shared ~9.5KiB" `Quick test_layout_shared_size;
    Alcotest.test_case "layout regions line-disjoint" `Quick
      test_layout_regions_line_disjoint;
    Alcotest.test_case "layout handlers fit text" `Quick test_layout_handlers_fit_text;
    Alcotest.test_case "layout frames cover image" `Quick
      test_layout_image_frames_cover_layout;
    Alcotest.test_case "image_pa frame mapping" `Quick test_image_pa_respects_frames;
    Alcotest.test_case "PT: leaf tables coloured" `Quick
      test_leaf_pts_come_from_the_pool;
    Alcotest.test_case "PT: walk reads real lines" `Quick
      test_walk_latency_reflects_pt_cache_state;
    Alcotest.test_case "PT: TLB hit avoids walk" `Quick test_tlb_hit_avoids_walk;
    Alcotest.test_case "multicore: concurrent advance" `Quick
      test_concurrent_cores_advance;
    Alcotest.test_case "multicore: cosched gangs" `Quick
      test_cosched_one_domain_at_a_time;
    Alcotest.test_case "multicore: destroy running kernel" `Quick
      test_destroy_during_concurrent_execution;
    Alcotest.test_case "audit: switch trace deterministic" `Quick
      test_audit_switch_trace_deterministic;
    Alcotest.test_case "audit: prefetch covers regions" `Quick
      test_audit_prefetch_covers_all_regions;
    Alcotest.test_case "audit: syscall footprints differ" `Quick
      test_audit_syscall_footprints_differ;
    Alcotest.test_case "audit: lines touched" `Quick test_audit_lines_touched_counts;
    Alcotest.test_case "signal wakes waiter" `Quick test_signal_wakes_waiter;
    Alcotest.test_case "poll clears word" `Quick test_poll_clears_word;
    Alcotest.test_case "set_priority requeues" `Quick test_set_priority_requeues;
    Alcotest.test_case "exec respects priority" `Quick test_exec_respects_priority;
  ]
