(* Tp_par.Pool: work distribution semantics and, above all, the
   determinism contract — a parallel run must be bit-identical to
   [~jobs:1], which is what lets every experiment take [-j N] without
   changing any published number. *)

open Tp_par

let test_run_order () =
  Alcotest.(check (array int))
    "results in trial order"
    (Array.init 17 (fun i -> i * i))
    (Pool.run ~jobs:3 17 (fun i -> i * i))

let test_run_degenerate () =
  Alcotest.(check (array int)) "n = 0" [||] (Pool.run ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "n = 1" [| 7 |] (Pool.run ~jobs:4 1 (fun _ -> 7));
  Alcotest.(check (array int))
    "more jobs than tasks" [| 0; 1 |]
    (Pool.run ~jobs:16 2 (fun i -> i))

let test_map_list () =
  Alcotest.(check (list string))
    "order and index"
    [ "0a"; "1b"; "2c"; "3d" ]
    (Pool.map_list ~jobs:2 [ "a"; "b"; "c"; "d" ] (fun i s ->
         string_of_int i ^ s))

let test_lowest_failure_wins () =
  let raised =
    try
      ignore
        (Pool.run ~jobs:2 8 (fun i ->
             if i >= 5 then failwith (string_of_int i) else i));
      None
    with Failure m -> Some m
  in
  Alcotest.(check (option string)) "lowest-index exception" (Some "5") raised

let test_pool_absorbs_worker_counters () =
  (* A counter set registered by a task must survive into the calling
     domain's registry with its value intact, wherever the task ran. *)
  Tp_obs.Ctl.set_counters true;
  Fun.protect
    ~finally:(fun () -> Tp_obs.Ctl.set_counters false)
    (fun () ->
      ignore
        (Pool.run ~jobs:3 6 (fun i ->
             let s =
               Tp_obs.Counter.make_set (Printf.sprintf "par.pool.%d" i)
             in
             let c = Tp_obs.Counter.counter s "events" in
             Tp_obs.Counter.register s;
             Tp_obs.Counter.add c (i + 1)));
      for i = 0 to 5 do
        match Tp_obs.Counter.find (Printf.sprintf "par.pool.%d" i) with
        | None -> Alcotest.failf "set par.pool.%d lost at join" i
        | Some s ->
            Alcotest.(check int)
              (Printf.sprintf "par.pool.%d total" i)
              (i + 1)
              (Tp_obs.Counter.total (Tp_obs.Counter.snapshot s))
      done)

let test_trace_replayed_in_trial_order () =
  Tp_obs.Trace.start ~capacity:64 ();
  Fun.protect
    ~finally:(fun () ->
      Tp_obs.Trace.stop ();
      Tp_obs.Trace.clear ())
    (fun () ->
      ignore
        (Pool.run ~jobs:2 6 (fun i ->
             Tp_obs.Trace.instant ~ts:i ~core:0 ~cat:"test"
               ~name:(Printf.sprintf "t%d" i)
               ()));
      Alcotest.(check (list string))
        "events land in trial order"
        [ "t0"; "t1"; "t2"; "t3"; "t4"; "t5" ]
        (List.map (fun e -> e.Tp_obs.Trace.name) (Tp_obs.Trace.events ())))

(* ---- the determinism property ----------------------------------- *)

(* One harness channel trial, digested: fresh boot, trial-derived RNG,
   everything the bench and the experiments rely on.  The digest covers
   the collected samples and the final simulated clock. *)
let channel_trial ~scenario ~samples p ~seed ~trial =
  let rng = Tp_util.Rng.of_trial ~seed ~trial in
  let b = Tp_core.Scenario.boot scenario p in
  let chan = Tp_attacks.Cache_channels.l1d in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let s = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
  ( Digest.to_hex
      (Digest.string
         (Marshal.to_string (s.Tp_channel.Mi.input, s.Tp_channel.Mi.output) [])),
    Tp_kernel.System.now b.Tp_kernel.Boot.sys ~core:0 )

let test_parallel_bit_identical () =
  List.iter
    (fun p ->
      List.iter
        (fun seed ->
          let trial i =
            channel_trial ~scenario:Tp_core.Scenario.Raw ~samples:30 p ~seed
              ~trial:i
          in
          let seq = Pool.run ~jobs:1 4 trial in
          List.iter
            (fun jobs ->
              let par = Pool.run ~jobs 4 trial in
              Alcotest.(check bool)
                (Printf.sprintf "%s seed %d: -j %d == -j 1"
                   p.Tp_hw.Platform.name seed jobs)
                true (par = seq))
            [ 2; 4 ])
        [ 1; 42 ])
    [ Tp_hw.Platform.haswell; Tp_hw.Platform.sabre ]

let test_parallel_bit_identical_protected () =
  (* The protected configuration drives the whole switch machinery —
     kernel clones, flushes, padding — through the pool's id regions. *)
  let p = Tp_hw.Platform.haswell in
  let trial i =
    channel_trial ~scenario:Tp_core.Scenario.Protected_no_pad ~samples:20 p
      ~seed:7 ~trial:i
  in
  let seq = Pool.run ~jobs:1 3 trial in
  let par = Pool.run ~jobs:3 3 trial in
  Alcotest.(check bool) "protected path: -j 3 == -j 1" true (par = seq)

let test_validate_jobs () =
  (* Explicit parallelism under fault injection is a hard error whose
     message names the constraint — never a silent downgrade. *)
  (match Pool.validate_jobs ~jobs:(Some 4) ~inject:true with
  | Error msg ->
      let has sub =
        let n = String.length msg and m = String.length sub in
        let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names --inject" true (has "--inject");
      Alcotest.(check bool)
        "message states the constraint" true (has "process-global");
      Alcotest.(check bool)
        "message offers the fix" true (has "--jobs 1")
  | Ok _ -> Alcotest.fail "--inject with -j 4 accepted");
  Alcotest.(check (result int string))
    "explicit -j 1 under injection is fine" (Ok 1)
    (Pool.validate_jobs ~jobs:(Some 1) ~inject:true);
  Alcotest.(check (result int string))
    "unspecified jobs under injection resolve to 1" (Ok 1)
    (Pool.validate_jobs ~jobs:None ~inject:true);
  Alcotest.(check (result int string))
    "explicit jobs pass through" (Ok 6)
    (Pool.validate_jobs ~jobs:(Some 6) ~inject:false);
  Alcotest.(check (result int string))
    "jobs clamped to >= 1" (Ok 1)
    (Pool.validate_jobs ~jobs:(Some 0) ~inject:false);
  match Pool.validate_jobs ~jobs:None ~inject:false with
  | Ok j -> Alcotest.(check bool) "default is positive" true (j >= 1)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "run preserves order" `Quick test_run_order;
    Alcotest.test_case "validate_jobs rejects --inject with -j N" `Quick
      test_validate_jobs;
    Alcotest.test_case "run degenerate sizes" `Quick test_run_degenerate;
    Alcotest.test_case "map_list order and index" `Quick test_map_list;
    Alcotest.test_case "lowest failure wins" `Quick test_lowest_failure_wins;
    Alcotest.test_case "counters absorbed at join" `Quick
      test_pool_absorbs_worker_counters;
    Alcotest.test_case "trace replayed in trial order" `Quick
      test_trace_replayed_in_trial_order;
    Alcotest.test_case "parallel bit-identical (raw, both platforms)" `Quick
      test_parallel_bit_identical;
    Alcotest.test_case "parallel bit-identical (protected)" `Quick
      test_parallel_bit_identical_protected;
  ]
