(* Integration tests: every attack opens its channel on the raw system
   and time protection closes it.  These are the end-to-end properties
   the whole system exists to demonstrate, so they are tested directly
   (with sample sizes kept small enough for CI). *)

open Tp_core
open Tp_kernel

let haswell = Tp_hw.Platform.haswell
let sabre = Tp_hw.Platform.sabre

let is_leak r = r.Tp_channel.Leakage.verdict = Tp_channel.Leakage.Leak

let no_leak r =
  match r.Tp_channel.Leakage.verdict with
  | Tp_channel.Leakage.No_evidence | Tp_channel.Leakage.Negligible -> true
  | Tp_channel.Leakage.Leak -> false

let measure_chan ?(samples = 250) ?(p = haswell) kind
    (chan : Tp_attacks.Cache_channels.t) =
  let b = Scenario.boot kind p in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:77 in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let test_l1d_raw_leaks () =
  Alcotest.(check bool) "L1-D raw leaks" true
    (is_leak (measure_chan Scenario.Raw Tp_attacks.Cache_channels.l1d))

let test_l1d_protected_closed () =
  Alcotest.(check bool) "L1-D protected closed" true
    (no_leak (measure_chan Scenario.Protected Tp_attacks.Cache_channels.l1d))

let test_l1d_full_flush_closed () =
  Alcotest.(check bool) "L1-D full flush closed" true
    (no_leak (measure_chan Scenario.Full_flush Tp_attacks.Cache_channels.l1d))

let test_l1i_raw_leaks () =
  Alcotest.(check bool) "L1-I raw leaks" true
    (is_leak (measure_chan Scenario.Raw Tp_attacks.Cache_channels.l1i))

let test_tlb_raw_leaks () =
  Alcotest.(check bool) "TLB raw leaks" true
    (is_leak (measure_chan Scenario.Raw Tp_attacks.Cache_channels.tlb))

let test_tlb_protected_closed () =
  Alcotest.(check bool) "TLB protected closed" true
    (no_leak (measure_chan Scenario.Protected Tp_attacks.Cache_channels.tlb))

let test_btb_raw_leaks_x86 () =
  Alcotest.(check bool) "BTB raw leaks on x86" true
    (is_leak (measure_chan Scenario.Raw (Tp_attacks.Cache_channels.btb haswell)))

let test_btb_protected_closed () =
  Alcotest.(check bool) "BTB protected closed" true
    (no_leak
       (measure_chan Scenario.Protected (Tp_attacks.Cache_channels.btb haswell)))

let test_bhb_raw_leaks () =
  Alcotest.(check bool) "BHB raw leaks" true
    (is_leak (measure_chan Scenario.Raw Tp_attacks.Cache_channels.bhb))

let test_bhb_protected_closed () =
  Alcotest.(check bool) "BHB protected closed" true
    (no_leak (measure_chan Scenario.Protected Tp_attacks.Cache_channels.bhb))

let test_l2_raw_leaks () =
  Alcotest.(check bool) "L2 raw leaks" true
    (is_leak (measure_chan Scenario.Raw Tp_attacks.Cache_channels.l2))

let test_l2_residual_prefetcher_channel () =
  (* The paper's §5.3.2 headline: protected leaves a residual L2
     channel through the prefetcher; disabling the prefetcher closes
     it.  Needs more samples than the binary checks. *)
  let leak_prot =
    measure_chan ~samples:500 Scenario.Protected Tp_attacks.Cache_channels.l2
  in
  let leak_nopf =
    measure_chan ~samples:500 Scenario.Protected_no_prefetcher
      Tp_attacks.Cache_channels.l2
  in
  Alcotest.(check bool) "residual channel under protection" true
    (is_leak leak_prot);
  Alcotest.(check bool) "closed with prefetcher off" true (no_leak leak_nopf)

let test_l1d_sabre_raw_leaks () =
  Alcotest.(check bool) "L1-D raw leaks on sabre" true
    (is_leak (measure_chan ~p:sabre Scenario.Raw Tp_attacks.Cache_channels.l1d))

let test_l1d_sabre_protected_closed () =
  Alcotest.(check bool) "L1-D protected closed on sabre" true
    (no_leak
       (measure_chan ~p:sabre Scenario.Protected Tp_attacks.Cache_channels.l1d))

(* ------------------------------------------------------------------ *)
(* Kernel-image channel (Figure 3) *)

let measure_kernel_chan kind =
  let b = Scenario.boot kind haswell in
  let sender, receiver = Tp_attacks.Kernel_chan.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 250;
      symbols = Tp_attacks.Kernel_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:5 in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let test_kernel_chan_shared_kernel_leaks () =
  Alcotest.(check bool) "shared kernel leaks despite coloured userland" true
    (is_leak (measure_kernel_chan Scenario.Coloured_only))

let test_kernel_chan_cloned_kernel_closed () =
  Alcotest.(check bool) "cloned kernels close the channel" true
    (no_leak (measure_kernel_chan Scenario.Protected))

(* ------------------------------------------------------------------ *)
(* Flush-latency channel (Table 4) *)

let measure_flush ~padded obs =
  let kind = if padded then Scenario.Protected else Scenario.Protected_no_pad in
  let b = Scenario.boot kind haswell in
  let sender, receiver = Tp_attacks.Flush_chan.prepare obs b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 250;
      symbols = Tp_attacks.Flush_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:6 in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let test_flush_channel_no_pad_leaks () =
  Alcotest.(check bool) "offline time leaks without padding" true
    (is_leak (measure_flush ~padded:false Tp_attacks.Flush_chan.Offline))

let test_flush_channel_padded_closed () =
  Alcotest.(check bool) "padding closes the flush channel" true
    (no_leak (measure_flush ~padded:true Tp_attacks.Flush_chan.Offline))

(* ------------------------------------------------------------------ *)
(* Interrupt channel (Figure 6) *)

let measure_irq kind =
  let p = haswell in
  let b = Scenario.boot kind p in
  let sender, receiver = Tp_attacks.Irq_chan.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = 100;
      symbols = Tp_attacks.Irq_chan.symbols;
      slice_cycles = Tp_hw.Platform.us_to_cycles p 10_000.0;
      noise_sigma = 50.0;
      warmup = 2;
    }
  in
  let rng = Tp_util.Rng.create ~seed:8 in
  Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng

let test_irq_channel_raw_leaks () =
  Alcotest.(check bool) "timer interrupt channel open" true
    (is_leak (measure_irq Scenario.Raw))

let test_irq_channel_partitioned_closed () =
  Alcotest.(check bool) "IRQ partitioning closes it" true
    (no_leak (measure_irq Scenario.Protected))

(* ------------------------------------------------------------------ *)
(* Cross-core LLC attack (Figure 4) *)

let test_crypto_raw_recovers_key () =
  let b = Scenario.boot Scenario.Raw haswell in
  let rng = Tp_util.Rng.create ~seed:11 in
  match Tp_attacks.Crypto.run b ~key_bits:40 ~rng with
  | Some t ->
      Alcotest.(check bool) "recovers >= 90% of key bits" true
        (Tp_attacks.Crypto.recovery_rate t >= 0.9)
  | None -> Alcotest.fail "attack failed to calibrate on the raw system"

let test_crypto_protected_blind () =
  let b = Scenario.boot Scenario.Protected haswell in
  let rng = Tp_util.Rng.create ~seed:11 in
  match Tp_attacks.Crypto.run b ~key_bits:40 ~rng with
  | None -> ()
  | Some t ->
      Alcotest.(check bool) "no activity visible" false
        (Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity)

let test_crypto_ground_truth_consistency () =
  let b = Scenario.boot Scenario.Raw haswell in
  let rng = Tp_util.Rng.create ~seed:12 in
  match Tp_attacks.Crypto.run b ~key_bits:24 ~rng with
  | Some t ->
      (* One op per slot: squares = key_bits (+1 leading?), and each
         1-bit adds a multiply slot. *)
      let squares = Array.to_list t.Tp_attacks.Crypto.square_slots
                    |> List.filter Fun.id |> List.length in
      Alcotest.(check int) "one square per key bit" 24 squares
  | None -> Alcotest.fail "calibration failed"

(* ------------------------------------------------------------------ *)
(* Interconnect channel (beyond-paper) *)

let test_bus_channel_open_under_protection () =
  let b = Scenario.boot Scenario.Protected haswell in
  let rng = Tp_util.Rng.create ~seed:13 in
  let r = Tp_attacks.Bus_chan.run b ~samples:300 ~partitioned:false ~rng in
  Alcotest.(check bool) "bus channel open despite time protection" true
    (is_leak r)

let test_bus_channel_closed_by_partitioning () =
  let b = Scenario.boot Scenario.Protected haswell in
  let rng = Tp_util.Rng.create ~seed:13 in
  let r = Tp_attacks.Bus_chan.run b ~samples:300 ~partitioned:true ~rng in
  Alcotest.(check bool) "hardware bandwidth partition closes it" true
    (no_leak r)

let test_bus_channel_mba_insufficient () =
  (* Footnote 5: Intel MBA's approximate enforcement "is insufficient
     for preventing covert channels". *)
  let b = Scenario.boot Scenario.Protected haswell in
  let rng = Tp_util.Rng.create ~seed:13 in
  let r =
    Tp_attacks.Bus_chan.run_mode b ~samples:300
      ~mode:(Tp_hw.Interconnect.Mba 0.4) ~rng
  in
  Alcotest.(check bool) "MBA leaves the channel open" true (is_leak r)

(* ------------------------------------------------------------------ *)
(* Intel CAT way-partitioning (§2.3, CATalyst) *)

let test_cat_closes_llc_attack () =
  let b = Scenario.boot Scenario.Cat_llc haswell in
  let rng = Tp_util.Rng.create ~seed:99 in
  match Tp_attacks.Crypto.run b ~key_bits:40 ~rng with
  | None -> ()
  | Some t ->
      Alcotest.(check bool) "no victim activity visible under CAT" false
        (Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity)

let test_cat_leaves_on_core_channels () =
  (* The paper's argument for kernel-enforced time protection: CAT
     partitions only the LLC; on-core channels (here L1-D) stay wide
     open without flushing. *)
  Alcotest.(check bool) "L1-D still leaks under CAT alone" true
    (is_leak (measure_chan Scenario.Cat_llc Tp_attacks.Cache_channels.l1d))

let test_cat_masks_are_disjoint () =
  let b = Scenario.boot Scenario.Cat_llc haswell in
  let m0 = System.cat_mask_of_domain b.Boot.sys 0 in
  let m1 = System.cat_mask_of_domain b.Boot.sys 1 in
  Alcotest.(check bool) "masks non-trivial" true (m0 <> max_int && m1 <> max_int);
  Alcotest.(check int) "masks disjoint" 0 (m0 land m1)

(* ------------------------------------------------------------------ *)
(* Gang scheduling (§3.1.1) *)

let measure_cosched ~cosched =
  let b = Scenario.boot Scenario.Protected haswell in
  let sender, receiver = Tp_attacks.Cosched_chan.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 200;
      symbols = Tp_attacks.Cosched_chan.symbols;
    }
  in
  let rng = Tp_util.Rng.create ~seed:21 in
  let s =
    Tp_attacks.Harness.run_pair_cross_core b ~sender ~receiver ~cosched spec ~rng
  in
  Tp_channel.Leakage.test ~rng s

let test_cross_core_concurrent_leaks () =
  (* Full time protection does not help against a concurrent
     cross-core bandwidth channel — which is why the confinement
     threat model must exclude it. *)
  Alcotest.(check bool) "concurrent: open despite time protection" true
    (is_leak (measure_cosched ~cosched:false))

let test_cross_core_cosched_closed () =
  Alcotest.(check bool) "gang-scheduled: closed" true
    (no_leak (measure_cosched ~cosched:true))

(* ------------------------------------------------------------------ *)
(* DRAM row-buffer channel (beyond-paper, taxonomy §2.2) *)

let run_dram config ~close =
  let b = Boot.boot ~platform:haswell ~config ~domains:2 () in
  let rng = Tp_util.Rng.create ~seed:4 in
  Tp_attacks.Dram_chan.run b ~samples:250 ~close_rows_on_switch:close ~rng

let test_dram_channel_raw_leaks () =
  Alcotest.(check bool) "row-buffer channel open on raw" true
    (is_leak (run_dram Config.raw ~close:false))

let test_dram_channel_survives_protection () =
  (* Row-buffer state is outside the architected flush set: full time
     protection does not close this channel — the same
     hardware-contract gap as the prefetcher. *)
  Alcotest.(check bool) "row-buffer channel survives time protection" true
    (is_leak (run_dram (Config.protected_ haswell) ~close:false))

let test_dram_channel_closed_by_row_close () =
  Alcotest.(check bool) "hypothetical precharge-on-switch closes it" true
    (no_leak
       (run_dram
          { (Config.protected_ haswell) with Config.close_dram_rows = true }
          ~close:true))

(* ------------------------------------------------------------------ *)
(* Harness mechanics *)

let test_harness_pairs_symbols () =
  (* A sender/receiver pair that communicates perfectly through shared
     harness-side state proves the symbol pairing is aligned. *)
  let b = Scenario.boot Scenario.Raw haswell in
  let latest = ref 0.0 in
  let sender ctx sym =
    latest := float_of_int sym;
    Uctx.idle_rest ctx
  in
  let receiver _ctx = Some !latest in
  let spec =
    {
      (Tp_attacks.Harness.default_spec haswell) with
      Tp_attacks.Harness.samples = 50;
      noise_sigma = 0.0;
      (* This sender communicates through a host-side ref, not through
         the machine — exactly the kind of body the record/replay
         contract excludes (replay re-executes machine ops only), so
         it must opt out. *)
      replay = false;
    }
  in
  let rng = Tp_util.Rng.create ~seed:1 in
  let s = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
  Array.iteri
    (fun i sym ->
      Alcotest.(check (float 1e-9)) "aligned" (float_of_int sym)
        s.Tp_channel.Mi.output.(i))
    s.Tp_channel.Mi.input

let test_harness_rejects_empty () =
  let b = Scenario.boot Scenario.Raw haswell in
  let sender ctx _ = Tp_kernel.Uctx.idle_rest ctx in
  let receiver _ = None in
  let spec =
    { (Tp_attacks.Harness.default_spec haswell) with Tp_attacks.Harness.samples = 5 }
  in
  let rng = Tp_util.Rng.create ~seed:1 in
  match Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()


let suite =
  [
    Alcotest.test_case "L1-D raw leaks" `Slow test_l1d_raw_leaks;
    Alcotest.test_case "L1-D protected closed" `Slow test_l1d_protected_closed;
    Alcotest.test_case "L1-D full-flush closed" `Slow test_l1d_full_flush_closed;
    Alcotest.test_case "L1-I raw leaks" `Slow test_l1i_raw_leaks;
    Alcotest.test_case "TLB raw leaks" `Slow test_tlb_raw_leaks;
    Alcotest.test_case "TLB protected closed" `Slow test_tlb_protected_closed;
    Alcotest.test_case "BTB raw leaks (x86)" `Slow test_btb_raw_leaks_x86;
    Alcotest.test_case "BTB protected closed" `Slow test_btb_protected_closed;
    Alcotest.test_case "BHB raw leaks" `Slow test_bhb_raw_leaks;
    Alcotest.test_case "BHB protected closed" `Slow test_bhb_protected_closed;
    Alcotest.test_case "L2 raw leaks" `Slow test_l2_raw_leaks;
    Alcotest.test_case "L2 residual prefetcher channel" `Slow
      test_l2_residual_prefetcher_channel;
    Alcotest.test_case "L1-D raw leaks (sabre)" `Slow test_l1d_sabre_raw_leaks;
    Alcotest.test_case "L1-D protected closed (sabre)" `Slow
      test_l1d_sabre_protected_closed;
    Alcotest.test_case "kernel channel: shared kernel leaks" `Slow
      test_kernel_chan_shared_kernel_leaks;
    Alcotest.test_case "kernel channel: cloning closes" `Slow
      test_kernel_chan_cloned_kernel_closed;
    Alcotest.test_case "flush channel: no pad leaks" `Slow
      test_flush_channel_no_pad_leaks;
    Alcotest.test_case "flush channel: padded closed" `Slow
      test_flush_channel_padded_closed;
    Alcotest.test_case "irq channel: raw leaks" `Slow test_irq_channel_raw_leaks;
    Alcotest.test_case "irq channel: partitioned closed" `Slow
      test_irq_channel_partitioned_closed;
    Alcotest.test_case "crypto: raw recovers key" `Quick test_crypto_raw_recovers_key;
    Alcotest.test_case "crypto: protected blind" `Quick test_crypto_protected_blind;
    Alcotest.test_case "crypto: ground truth" `Quick
      test_crypto_ground_truth_consistency;
    Alcotest.test_case "CAT closes LLC attack" `Quick test_cat_closes_llc_attack;
    Alcotest.test_case "CAT leaves on-core channels" `Slow
      test_cat_leaves_on_core_channels;
    Alcotest.test_case "CAT masks disjoint" `Quick test_cat_masks_are_disjoint;
    Alcotest.test_case "cross-core concurrent leaks" `Slow
      test_cross_core_concurrent_leaks;
    Alcotest.test_case "cross-core cosched closed" `Slow
      test_cross_core_cosched_closed;
    Alcotest.test_case "dram channel raw leaks" `Quick test_dram_channel_raw_leaks;
    Alcotest.test_case "dram channel survives TP" `Quick
      test_dram_channel_survives_protection;
    Alcotest.test_case "dram channel closed by row-close" `Quick
      test_dram_channel_closed_by_row_close;
    Alcotest.test_case "bus channel open under TP" `Quick
      test_bus_channel_open_under_protection;
    Alcotest.test_case "bus channel closed by partition" `Quick
      test_bus_channel_closed_by_partitioning;
    Alcotest.test_case "bus channel: MBA insufficient" `Quick
      test_bus_channel_mba_insufficient;
    Alcotest.test_case "harness pairs symbols" `Quick test_harness_pairs_symbols;
    Alcotest.test_case "harness rejects empty" `Quick test_harness_rejects_empty;
  ]
