(* Model-checking-flavoured property tests: random sequences of
   kernel operations must preserve the system's global invariants.

   These are the invariants the seL4 proofs establish statically; here
   they are checked dynamically over randomised traces:

   - frame conservation: every physical frame is accounted for exactly
     once (free in some Untyped, backing an object, or boot-reserved);
   - the initial kernel and its idle thread always survive (§4.4);
   - active kernel images are disjoint in their backing frames;
   - coloured pools never hold a frame of a foreign colour;
   - destroyed kernels hold no IRQ associations;
   - the scheduler never queues a suspended or inactive thread. *)

open Tp_kernel

let haswell = Tp_hw.Platform.haswell

type op =
  | Op_clone
  | Op_destroy_last
  | Op_retype_tcb
  | Op_retype_notification
  | Op_revoke_pool
  | Op_spawn
  | Op_run_slices
  | Op_set_int of int
  | Op_clone_fail of int  (* clone with a fault injected at point #n *)
  | Op_retype_fail of int  (* retype with a fault injected at point #n *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Op_clone);
        (3, return Op_destroy_last);
        (2, return Op_retype_tcb);
        (2, return Op_retype_notification);
        (1, return Op_revoke_pool);
        (3, return Op_spawn);
        (2, return Op_run_slices);
        (1, map (fun i -> Op_set_int (1 + (i mod 8))) small_nat);
        (2, map (fun i -> Op_clone_fail i) small_nat);
        (2, map (fun i -> Op_retype_fail i) small_nat);
      ])

let pp_op = function
  | Op_clone -> "clone"
  | Op_destroy_last -> "destroy"
  | Op_retype_tcb -> "retype-tcb"
  | Op_retype_notification -> "retype-ntfn"
  | Op_revoke_pool -> "revoke-pool"
  | Op_spawn -> "spawn"
  | Op_run_slices -> "run"
  | Op_set_int i -> Printf.sprintf "set-int %d" i
  | Op_clone_fail n -> Printf.sprintf "clone-fail %d" n
  | Op_retype_fail n -> Printf.sprintf "retype-fail %d" n

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 25) op_gen)

(* The invariant suite itself lives in Tp_kernel.Invariant (shared
   with the fail-at-step-N driver); here we only turn violations into
   test failures. *)
let check_invariants (b : Boot.booted) = Invariant.check_exn b

(* Frame conservation: free(phys) stayed 0 after boot (all frames went
   to the root untyped), so the cap forest must account for everything
   that is not boot-reserved.  Kernel images are backed by
   Kernel_Memory frames that stay owned by the kmem object in the
   pool's tree, so the root tree alone must conserve the user frame
   count. *)
let check_frame_conservation (b : Boot.booted) ~total_user_frames =
  Invariant.check_exn ~expect_user_frames:total_user_frames b

let apply_op b op =
  let sys = b.Boot.sys in
  let dom = b.Boot.domains.(0) in
  try
    match op with
    | Op_clone ->
        let kmem = Retype.retype_kernel_memory dom.Boot.dom_pool ~platform:haswell in
        ignore (Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem)
    | Op_destroy_last -> begin
        (* Destroy the most recently cloned kernel, if any. *)
        match
          List.find_opt
            (fun c ->
              Capability.is_valid c
              &&
              match c.Types.target with
              | Types.Obj_kernel_image ki -> ki.Types.ki_state = Types.Ki_active
              | _ -> false)
            b.Boot.master.Types.children
        with
        | Some cap -> Clone.destroy sys ~core:0 cap
        | None -> ()
      end
    | Op_retype_tcb -> ignore (Retype.retype_tcb dom.Boot.dom_pool ~core:0 ~prio:10)
    | Op_retype_notification -> ignore (Retype.retype_notification dom.Boot.dom_pool)
    | Op_revoke_pool -> Objects.revoke sys ~core:0 b.Boot.domains.(1).Boot.dom_pool
    | Op_spawn -> ignore (Boot.spawn b dom (fun _ -> ()))
    | Op_run_slices -> Exec.run_slices sys ~core:0 ~slice_cycles:50_000 ~slices:2 ()
    | Op_set_int irq -> Clone.set_int sys ~image:dom.Boot.dom_kernel_cap ~irq
    | Op_clone_fail n ->
        (* Clone with a one-shot fault injected somewhere along the
           operation: it must raise and roll back completely. *)
        let points =
          [| "clone.validate"; "clone.copy"; "clone.idle"; "clone.commit";
             "asid.alloc" |]
        in
        Tp_fault.Fault.arm ~point:points.(n mod Array.length points)
          (Types.Kernel_error Types.Insufficient_untyped);
        Fun.protect ~finally:Tp_fault.Fault.disarm (fun () ->
            let kmem =
              Retype.retype_kernel_memory dom.Boot.dom_pool ~platform:haswell
            in
            ignore (Clone.clone sys ~core:0 ~src:b.Boot.master ~kmem))
    | Op_retype_fail n ->
        let points = [| "retype.take_frames"; "retype.register"; "phys.alloc" |] in
        Tp_fault.Fault.arm ~point:points.(n mod Array.length points)
          (Types.Kernel_error Types.Insufficient_untyped);
        Fun.protect ~finally:Tp_fault.Fault.disarm (fun () ->
            ignore (Retype.retype_tcb dom.Boot.dom_pool ~core:0 ~prio:10))
  with Types.Kernel_error _ -> (* rejected operations are fine *) ()

let qcheck_invariants =
  QCheck.Test.make ~name:"random op sequences preserve kernel invariants"
    ~count:40 ops_arbitrary (fun ops ->
      let b =
        Boot.boot ~platform:haswell ~config:(Config.protected_ haswell)
          ~domains:2 ()
      in
      List.iter
        (fun op ->
          apply_op b op;
          check_invariants b)
        ops;
      true)

let qcheck_frame_conservation =
  QCheck.Test.make ~name:"random op sequences conserve frames" ~count:25
    ops_arbitrary (fun ops ->
      let b =
        Boot.boot ~platform:haswell ~config:(Config.protected_ haswell)
          ~domains:2 ()
      in
      let total = Invariant.user_frames b in
      List.iter (fun op -> apply_op b op) ops;
      check_frame_conservation b ~total_user_frames:total;
      true)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_invariants;
    QCheck_alcotest.to_alcotest qcheck_frame_conservation;
  ]
