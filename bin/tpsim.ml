(* tpsim: run the time-protection reproduction experiments from the
   command line.  Every paper table/figure is a subcommand; `all` runs
   the full evaluation. *)

open Cmdliner
open Tp_core

(* A proper enum conv: an unknown platform is a usage error with the
   valid alternatives listed, not an Invalid_argument backtrace. *)
let platform_choices =
  [
    ("haswell", [ Tp_hw.Platform.haswell ]);
    ("sabre", [ Tp_hw.Platform.sabre ]);
    ("armv8", [ Tp_hw.Platform.armv8 ]);
    ("both", [ Tp_hw.Platform.haswell; Tp_hw.Platform.sabre ]);
    ("all", Tp_hw.Platform.all);
  ]

let platform_arg =
  let doc =
    "Platform: $(b,haswell), $(b,sabre), $(b,armv8), $(b,both) (the \
     paper's two) or $(b,all)."
  in
  Arg.(
    value
    & opt (enum platform_choices) (List.assoc "both" platform_choices)
    & info [ "p"; "platform" ] ~docv:"PLATFORM" ~doc)

let quality_arg =
  let doc = "Experiment size: $(b,quick) or $(b,full)." in
  Arg.(
    value
    & opt (enum [ ("quick", Quality.Quick); ("full", Quality.Full) ]) Quality.Quick
    & info [ "q"; "quality" ] ~docv:"QUALITY" ~doc)

let seed_arg =
  let doc = "PRNG seed (experiments are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Log kernel events (clone/destroy/switch) to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let inject_arg =
  let doc =
    "Arm a one-shot kernel fault at injection point $(docv) (format \
     POINT[:HIT], e.g. clone.copy:2 for the third crossing); exercises \
     the kernel's error paths and the harness's recovery under a real \
     experiment.  See `tpsim faults' for the point names."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"POINT" ~doc)

let budget_arg =
  let doc =
    "Simulated-cycle budget per measurement; when exhausted, collection \
     stops early and the result is reported as degraded (partial) \
     instead of running to completion."
  in
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"CYCLES" ~doc)

let setup_logging verbose =
  if verbose then begin
    (* Worker domains of the trial pool log too: serialise the
       reporter so interleaved kernel events stay line-atomic. *)
    let m = Mutex.create () in
    let r = Logs_fmt.reporter () in
    Logs.set_reporter
      {
        Logs.report =
          (fun src level ~over k msgf ->
            Mutex.lock m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock m)
              (fun () -> r.Logs.report src level ~over k msgf));
      };
    Logs.set_level (Some Logs.Debug)
  end

let jobs_arg =
  let doc =
    "Worker domains for independent trials.  Experiments fan their \
     trials out on a deterministic pool whose output is bit-identical \
     at every $(docv), including 1 (the sequential path).  Default: \
     what the host offers.  Incompatible with $(b,--inject), whose \
     fault plans are process-global state: the combination is \
     rejected."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Resolve -j against --inject via the pool's validator; an explicit
   parallel request under injection is a usage error (`Error in a
   Term.ret term), never a silent downgrade. *)
let setup_jobs jobs inject =
  match Tp_par.Pool.validate_jobs ~jobs ~inject:(inject <> None) with
  | Ok j ->
      Tp_par.Pool.set_default_jobs j;
      Ok ()
  | Error msg -> Error msg

let setup_fault = function
  | None -> ()
  | Some s ->
      let point, hit =
        match String.index_opt s ':' with
        | None -> (s, 0)
        | Some i -> (
            ( String.sub s 0 i,
              match
                int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
              with
              | Some h when h >= 0 -> h
              | Some _ | None ->
                  prerr_endline
                    "tpsim: --inject expects POINT[:HIT] with HIT a \
                     non-negative integer, e.g. clone.copy:2";
                  exit 1 ))
      in
      let known = Tp_fault.Fault.points () in
      if not (List.mem point known) then
        Printf.eprintf
          "tpsim: warning: unknown injection point %s (known: %s)\n%!" point
          (String.concat ", " known);
      Tp_fault.Fault.arm ~point ~hit
        (Tp_kernel.Types.Kernel_error Tp_kernel.Types.Insufficient_untyped)

let setup_budget = function
  | None -> ()
  | Some c ->
      Tp_attacks.Harness.set_default_budget
        { Tp_attacks.Harness.max_cycles = Some c; max_wall_s = None }

let run_over plats f = List.iter f plats

(* Global observability flags.  They are recognised anywhere on the
   command line — also before the subcommand, which cmdliner's
   [Cmd.group] cannot parse — so they are extracted from argv up front
   and the exporters run from [at_exit] (covering early exits such as
   the injected-fault abort). *)
let obs_trace = ref None
let obs_metrics = ref None
let obs_counters = ref false

let strip_obs_argv argv =
  let n = Array.length argv in
  let keep = ref [] in
  let i = ref 0 in
  let value_of flag =
    if !i + 1 >= n then begin
      Printf.eprintf "tpsim: option '%s' needs a FILE argument\n%!" flag;
      exit 124
    end;
    incr i;
    argv.(!i)
  in
  let prefixed ~prefix s =
    let pl = String.length prefix in
    if String.length s > pl && String.sub s 0 pl = prefix then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  while !i < n do
    (match argv.(!i) with
    | "--trace" -> obs_trace := Some (value_of "--trace")
    | "--metrics" -> obs_metrics := Some (value_of "--metrics")
    | "--counters" -> obs_counters := true
    | s -> (
        match (prefixed ~prefix:"--trace=" s, prefixed ~prefix:"--metrics=" s) with
        | Some f, _ -> obs_trace := Some f
        | None, Some f -> obs_metrics := Some f
        | None, None -> keep := s :: !keep));
    incr i
  done;
  Array.of_list (List.rev !keep)

let setup_obs () =
  if !obs_counters || !obs_metrics <> None then Tp_obs.Ctl.set_counters true;
  if !obs_trace <> None then Tp_obs.Trace.start ()

let finish_obs () =
  (match !obs_trace with
  | Some f ->
      Tp_obs.Trace.export_chrome_file f;
      Printf.eprintf "tpsim: wrote %d trace events (%d dropped) to %s\n%!"
        (Tp_obs.Trace.recorded ()) (Tp_obs.Trace.dropped ()) f
  | None -> ());
  (match !obs_metrics with
  | Some f ->
      Tp_obs.Trace.export_metrics_file f;
      Printf.eprintf "tpsim: wrote counter metrics to %s\n%!" f
  | None -> ());
  if !obs_counters then
    Tp_util.Table.print (Tp_obs.Counter.table (Tp_obs.Counter.registered ()))

let cmd_platforms =
  let run () =
    List.iter
      (fun p ->
        Format.printf "%a@.@." Tp_hw.Platform.pp p)
      Tp_hw.Platform.all
  in
  Cmd.v (Cmd.info "platforms" ~doc:"Describe the modelled platforms (Table 1).")
    Term.(const run $ const ())

let mk_cmd name doc f =
  let run plats q seed verbose inject budget jobs =
    match setup_jobs jobs inject with
    | Error msg -> `Error (false, msg)
    | Ok () -> (
        setup_logging verbose;
        setup_fault inject;
        setup_budget budget;
        try
          run_over plats (fun p -> f q ~seed p);
          `Ok ()
        with Tp_kernel.Types.Kernel_error e when inject <> None ->
          (* The armed fault fired outside a recoverable loop (e.g.
             during scenario boot) and propagated cleanly — the error
             path held. *)
          Format.printf "experiment aborted by injected fault: %s@."
            (Tp_kernel.Types.error_to_string e);
          exit 2)
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      ret
        (const run $ platform_arg $ quality_arg $ seed_arg $ verbose_arg
       $ inject_arg $ budget_arg $ jobs_arg))

let table2 _q ~seed:_ p = Report.table2 (Exp_table2.run p)
let fig3 q ~seed p = Report.fig3 (Exp_fig3.run q ~seed p)
let table3 q ~seed p = Report.table3 (Exp_table3.run q ~seed p)

let table4 q ~seed p =
  let r = Exp_table4.run q ~seed p in
  Report.fig5 r;
  Report.table4 r

let fig4 q ~seed p = Report.fig4 (Exp_fig4.run q ~seed p)
let fig6 q ~seed p = Report.fig6 (Exp_fig6.run q ~seed p)
let table5 q ~seed:_ p = Report.table5 (Exp_table5.run q p)
let table6 q ~seed:_ p = Report.table6 (Exp_table6.run q p)
let table7 q ~seed:_ p = Report.table7 (Exp_table7.run q p)
let fig7 q ~seed p = Report.fig7 (Exp_fig7.run_fig7 q ~seed p)
let table8 q ~seed p = Report.table8 (Exp_fig7.run_table8 q ~seed p)

let bus q ~seed p =
  (* Beyond-paper demo: the interconnect channel the paper's threat
     model excludes, and the hypothetical hardware fix. *)
  let rng = Tp_util.Rng.create ~seed in
  let samples = Quality.samples q in
  let open_chan =
    Tp_attacks.Bus_chan.run (Scenario.boot Scenario.Protected p) ~samples
      ~partitioned:false ~rng
  in
  let closed =
    Tp_attacks.Bus_chan.run (Scenario.boot Scenario.Protected p) ~samples
      ~partitioned:true ~rng
  in
  Format.printf
    "Interconnect channel on %s (cross-core, concurrent):@.  time \
     protection alone: %a@.  with hypothetical bandwidth partition: %a@.@."
    p.Tp_hw.Platform.name Tp_channel.Leakage.pp_result open_chan
    Tp_channel.Leakage.pp_result closed

let dram q ~seed p =
  (* Beyond-paper demo: the DRAM row-buffer channel from the §2.2
     taxonomy, which survives time protection (no architected row
     flush) and closes only with hypothetical hardware support. *)
  let open Tp_kernel in
  let samples = Quality.samples q / 2 in
  let run config ~close =
    let b = Boot.boot ~platform:p ~config ~domains:2 () in
    let rng = Tp_util.Rng.create ~seed in
    Tp_attacks.Dram_chan.run b ~samples ~close_rows_on_switch:close ~rng
  in
  Format.printf "DRAM row-buffer channel on %s (intra-core):@."
    p.Tp_hw.Platform.name;
  Format.printf "  raw:                              %a@."
    Tp_channel.Leakage.pp_result
    (run Config.raw ~close:false);
  Format.printf "  full time protection:             %a@."
    Tp_channel.Leakage.pp_result
    (run (Config.protected_ p) ~close:false);
  Format.printf "  + hypothetical precharge-on-switch: %a@.@."
    Tp_channel.Leakage.pp_result
    (run { (Config.protected_ p) with Config.close_dram_rows = true } ~close:true)

let cat q ~seed p =
  (* §2.3's hardware alternative: way-partition the LLC with CAT.  It
     closes the cross-core LLC side channel without colouring, but
     being LLC-only it leaves every on-core channel open — the paper's
     case for mandatory kernel-level time protection. *)
  let rng = Tp_util.Rng.create ~seed in
  Format.printf "Intel CAT way-partitioned LLC on %s:@." p.Tp_hw.Platform.name;
  (match
     Tp_attacks.Crypto.run (Scenario.boot Scenario.Cat_llc p) ~key_bits:48 ~rng
   with
  | Some t when Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity ->
      Format.printf "  LLC attack: still open (unexpected)@."
  | Some _ | None -> Format.printf "  LLC side channel vs ElGamal: closed@.");
  let chan = Tp_attacks.Cache_channels.l1d in
  let b = Scenario.boot Scenario.Cat_llc p in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = Quality.samples q / 2;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let l1 = Tp_attacks.Harness.measure_leak b ~sender ~receiver spec ~rng in
  Format.printf "  but the on-core L1-D channel:  %a@.@."
    Tp_channel.Leakage.pp_result l1

let cosched q ~seed p =
  (* §3.1.1's confinement mitigation for cross-core channels: gang
     scheduling so only one domain ever executes. *)
  let samples = Quality.samples q / 3 in
  let run ~cosched =
    let b = Scenario.boot Scenario.Protected p in
    let sender, receiver = Tp_attacks.Cosched_chan.prepare b in
    let spec =
      {
        (Tp_attacks.Harness.default_spec p) with
        Tp_attacks.Harness.samples;
        symbols = Tp_attacks.Cosched_chan.symbols;
      }
    in
    let rng = Tp_util.Rng.create ~seed in
    let s =
      Tp_attacks.Harness.run_pair_cross_core b ~sender ~receiver ~cosched spec
        ~rng
    in
    Tp_channel.Leakage.test ~rng s
  in
  Format.printf "Cross-core bandwidth channel on %s, time protection on:@."
    p.Tp_hw.Platform.name;
  Format.printf "  free-running concurrency: %a@." Tp_channel.Leakage.pp_result
    (run ~cosched:false);
  Format.printf "  gang-scheduled domains:   %a@.@."
    Tp_channel.Leakage.pp_result (run ~cosched:true)

let mls q ~seed p =
  let samples = Quality.samples q / 2 in
  let r = Mls.demo ~samples ~seed p in
  Format.printf "Bell-LaPadula padding policy on %s:@." p.Tp_hw.Platform.name;
  Format.printf "  High -> Low (forbidden):   %a@." Tp_channel.Leakage.pp_result
    r.Mls.high_to_low;
  Format.printf "  Low  -> High (authorised): %a@.@."
    Tp_channel.Leakage.pp_result r.Mls.low_to_high

let calibrate _q ~seed:_ p =
  let c = Calibrate.switch_pad p in
  Format.printf
    "%s: worst unpadded switch %d cycles over %d adversarial trials;@."
    p.Tp_hw.Platform.name c.Calibrate.worst_observed_cycles c.Calibrate.trials;
  Format.printf "calibrated pad %.1f us (+25%% margin); validates: %b@.@."
    c.Calibrate.pad_us
    (Calibrate.covers c p ~trials:8)

(* Microarchitectural statistics: run a steady-state domain-switching
   workload (two domains each sweeping an L1-D-sized buffer, as in the
   Table 6 measurement) with counters on, then dump every registered
   counter set and the pad-slack profile. *)
let stats q ~seed:_ p =
  let open Tp_kernel in
  Tp_obs.Ctl.set_counters true;
  let b = Scenario.boot Scenario.Protected p in
  let sys = b.Boot.sys in
  let line = p.Tp_hw.Platform.line in
  let page = Tp_hw.Defs.page_size in
  let l1d = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size in
  let body buf ctx =
    for i = 0 to (l1d / line) - 1 do
      Uctx.write ctx (buf + (i * line))
    done
  in
  let mk dom =
    let buf = Boot.alloc_pages b dom ~pages:(Stdlib.max 1 (l1d / page)) in
    let t = Boot.spawn b dom (fun ctx -> while true do body buf ctx done) in
    Sched.remove (System.sched sys) ~core:0 t;
    (t, buf)
  in
  let a = mk b.Boot.domains.(0) in
  let bb = mk b.Boot.domains.(1) in
  (* Count the steady state, not the boot traffic. *)
  Tp_obs.Counter.reset_all ();
  Tp_obs.Padprof.reset ();
  let slice = Tp_hw.Platform.us_to_cycles p 1000.0 in
  let run_slice (t, buf) =
    ignore (Domain_switch.switch sys ~core:0 ~to_:t);
    let ctx =
      Uctx.make sys ~core:0 t ~slice_end:(System.now sys ~core:0 + slice)
    in
    try
      while true do
        body buf ctx
      done
    with Uctx.Preempted -> ()
  in
  for _ = 1 to Quality.repeats q do
    run_slice a;
    run_slice bb
  done;
  Format.printf "==== %s: %d switching slices ====@.@." p.Tp_hw.Platform.name
    (2 * Quality.repeats q);
  Tp_util.Table.print (Tp_obs.Counter.table (Tp_obs.Counter.registered ()));
  Tp_obs.Padprof.report
    ~cycles_to_us:(Tp_hw.Platform.cycles_to_us p)
    Format.std_formatter ();
  let dropped = Tp_obs.Trace.dropped () in
  if dropped > 0 then
    Format.printf
      "warning: %d trace spans were dropped (ring full) — the trace \
       under-reports; trace a shorter window@."
      dropped

let all q ~seed p =
  Format.printf "==================== %s ====================@.@."
    p.Tp_hw.Platform.name;
  table2 q ~seed p;
  fig3 q ~seed p;
  table3 q ~seed p;
  fig4 q ~seed p;
  table4 q ~seed p;
  fig6 q ~seed p;
  table5 q ~seed p;
  table6 q ~seed p;
  table7 q ~seed p;
  fig7 q ~seed p;
  table8 q ~seed p;
  bus q ~seed p;
  dram q ~seed p;
  cosched q ~seed p;
  cat q ~seed p;
  mls q ~seed p;
  calibrate q ~seed p

(* Fresh scratch directory under the system temp dir.  /tmp, not
   _build: Unix-domain socket paths (serve-smoke) are limited to ~107
   bytes. *)
let mkdtemp prefix =
  let base = Filename.get_temp_dir_name () in
  let rec go n =
    let d =
      Filename.concat base
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) n)
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (EEXIST, _, _) -> go (n + 1)
  in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (ENOENT, _, _) -> ()

let cmd_faults =
  (* Systematic fail-at-step-N sweep: for every standard kernel
     operation, inject every fault kind at every injection-point
     crossing and check the global invariant suite afterwards.
     Exits non-zero if any error path leaks state. *)
  let run plats verbose =
    setup_logging verbose;
    let bad = ref 0 in
    run_over plats (fun p ->
        Format.printf "Fail-at-step-N sweep on %s:@." p.Tp_hw.Platform.name;
        List.iter
          (fun (c : Tp_fault_driver.Driver.case) ->
            let outcomes = Tp_fault_driver.Driver.fail_at_each c in
            let good =
              List.length (List.filter Tp_fault_driver.Driver.ok outcomes)
            in
            Format.printf "  %-14s %3d injected faults, %3d left consistent@."
              c.Tp_fault_driver.Driver.c_name (List.length outcomes) good;
            List.iter
              (fun (o : Tp_fault_driver.Driver.outcome) ->
                if not (Tp_fault_driver.Driver.ok o) then begin
                  incr bad;
                  Format.printf
                    "    FAIL %s:%d %s — fired=%b raised=%s@."
                    o.Tp_fault_driver.Driver.o_point
                    o.Tp_fault_driver.Driver.o_occurrence
                    (Tp_kernel.Types.error_to_string
                       o.Tp_fault_driver.Driver.o_error)
                    o.Tp_fault_driver.Driver.o_fired
                    (Option.value ~default:"<nothing>"
                       o.Tp_fault_driver.Driver.o_raised);
                  List.iter
                    (Format.printf "      violated: %s@.")
                    o.Tp_fault_driver.Driver.o_violations
                end)
              outcomes)
          (Tp_fault_driver.Driver.standard_cases ~platform:p);
        Format.printf "@.");
    (* Crash-consistency sweep over the result store's persistence
       path: fail every store_write/store_fsync/store_rename crossing
       of a commit batch and check completed entries survive. *)
    let scratch = mkdtemp "tpsim-faults" in
    Fun.protect
      ~finally:(fun () -> try rm_rf scratch with Unix.Unix_error _ -> ())
      (fun () ->
        Format.printf "Fail-at-step-N sweep over the result store:@.";
        let outcomes =
          Tp_store.Sweep.fail_at_each
            ~dir:(Filename.concat scratch "store-sweep")
        in
        let good = List.length (List.filter Tp_store.Sweep.ok outcomes) in
        Format.printf "  %-14s %3d injected faults, %3d left consistent@."
          "store" (List.length outcomes) good;
        List.iter
          (fun (o : Tp_store.Sweep.outcome) ->
            if not (Tp_store.Sweep.ok o) then begin
              incr bad;
              Format.printf "    FAIL %s:%d — fired=%b committed=%d@."
                o.Tp_store.Sweep.o_point o.Tp_store.Sweep.o_occurrence
                o.Tp_store.Sweep.o_fired o.Tp_store.Sweep.o_committed;
              List.iter
                (Format.printf "      violated: %s@.")
                o.Tp_store.Sweep.o_violations
            end)
          outcomes;
        Format.printf "@.";
        (* Harness recovery surfaced as the same JSON the campaign
           service reports: a fault injected mid-collection must be
           recovered (not fatal), and a cycle budget must degrade the
           result rather than abort it. *)
        let p = List.hd plats in
        let measure ~budget ~inject =
          let b = Scenario.boot Scenario.Protected p in
          let sender, receiver = Tp_attacks.Kernel_chan.prepare b in
          let spec =
            {
              (Tp_attacks.Harness.default_spec p) with
              Tp_attacks.Harness.samples = 200;
              symbols = Tp_attacks.Kernel_chan.symbols;
              budget =
                { Tp_attacks.Harness.max_cycles = budget; max_wall_s = None };
            }
          in
          (match inject with
          | None -> ()
          | Some hit ->
              Tp_fault.Fault.arm ~point:Tp_attacks.Harness.point_chunk ~hit
                (Tp_kernel.Types.Kernel_error
                   Tp_kernel.Types.Insufficient_untyped));
          let r =
            Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec
              ~rng:(Tp_util.Rng.create ~seed:1)
          in
          Tp_fault.Fault.disarm ();
          r
        in
        Format.printf "Harness recovery status (%s, kernel channel):@."
          p.Tp_hw.Platform.name;
        let recovered = measure ~budget:None ~inject:(Some 2) in
        Format.printf "  injected harness.chunk:2 -> %s@."
          (Tp_attacks.Harness.status_json recovered);
        if recovered.Tp_attacks.Harness.recovered_faults < 1 then begin
          incr bad;
          Format.printf "    FAIL: mid-collection fault was not recovered@."
        end;
        let degraded = measure ~budget:(Some 2_000_000) ~inject:None in
        Format.printf "  cycle budget 2000000   -> %s@."
          (Tp_attacks.Harness.status_json degraded);
        if not degraded.Tp_attacks.Harness.degraded then begin
          incr bad;
          Format.printf "    FAIL: cycle budget did not degrade the result@."
        end;
        Format.printf "@.";
        (* Torn-state sweep over whole-machine restore: the
           snapshot_restore point is crossed once per component
           loaded, so arming every crossing crashes the restore
           between every pair of components.  Recovery is restoring
           again — load_state overwrites everything it touches — and
           the recovered machine must digest identically to the
           snapshot, with no torn state surviving the crash. *)
        Format.printf "Fail-at-step-N sweep over snapshot restore (%s):@."
          p.Tp_hw.Platform.name;
        let sb = Scenario.boot Scenario.Raw p in
        let m = Tp_kernel.System.machine sb.Tp_kernel.Boot.sys in
        let perturb () =
          for i = 0 to 63 do
            ignore
              (Tp_hw.Machine.access m ~core:0 ~asid:0 ~global:false
                 ~vaddr:(i * 4096) ~paddr:(i * 4096) ~kind:Tp_hw.Defs.Read
                 () : int)
          done
        in
        let snap = Tp_hw.Machine.snapshot m in
        let want = Tp_hw.Machine.snapshot_digest snap in
        perturb ();
        let (), crossings =
          Tp_fault.Fault.trace (fun () -> Tp_hw.Machine.restore m snap)
        in
        let steps = List.length crossings in
        let torn = ref 0 and restore_fired = ref 0 in
        for hit = 0 to steps - 1 do
          perturb ();
          Tp_fault.Fault.arm ~point:Tp_hw.Machine.point_restore ~hit
            (Failure "injected restore crash");
          (match Tp_hw.Machine.restore m snap with
          | () -> ()
          | exception Failure _ -> incr restore_fired);
          Tp_fault.Fault.disarm ();
          Tp_hw.Machine.restore m snap;
          if Tp_hw.Machine.state_digest m <> want then incr torn
        done;
        Format.printf
          "  %3d armed restore crossings, %3d crashed, %3d left torn state@."
          steps !restore_fired !torn;
        if !torn > 0 || !restore_fired <> steps then begin
          incr bad;
          Format.printf
            "    FAIL: crash mid-restore not recovered bit-identically@."
        end;
        (* A fault striking the replay path mid-collection must be
           recovered by the harness exactly like a live-slice kernel
           fault: the trial degrades to recover-and-resume, never
           aborts. *)
        let rb = Scenario.boot Scenario.Protected p in
        let chan = Tp_attacks.Cache_channels.l1d in
        let sender, receiver = chan.Tp_attacks.Cache_channels.prepare rb in
        let spec =
          {
            (Tp_attacks.Harness.default_spec p) with
            Tp_attacks.Harness.samples = 200;
            symbols = chan.Tp_attacks.Cache_channels.symbols;
          }
        in
        Tp_fault.Fault.arm ~point:Tp_hw.Replay.point_step ~hit:3
          (Tp_kernel.Types.Kernel_error Tp_kernel.Types.Insufficient_untyped);
        let rr =
          Tp_attacks.Harness.run_pair_result rb ~sender ~receiver spec
            ~rng:(Tp_util.Rng.create ~seed:1)
        in
        let replay_fired = Tp_fault.Fault.fired () in
        Tp_fault.Fault.disarm ();
        Format.printf "  injected replay_step:3   -> %s@."
          (Tp_attacks.Harness.status_json rr);
        if not replay_fired then begin
          incr bad;
          Format.printf "    FAIL: replay_step fault never fired@."
        end;
        if rr.Tp_attacks.Harness.recovered_faults < 1 then begin
          incr bad;
          Format.printf "    FAIL: mid-replay fault was not recovered@."
        end;
        Format.printf "@.";
        (* Crash-resume across the campaign engine's dispatch loop:
           crash a tiny sweep at every job_dispatch crossing, resume
           into the same store, and require the final digest to match
           an uninterrupted run. *)
        Format.printf "Crash-resume across job_dispatch:@.";
        let job =
          Tp_serve.Protocol.job ~id:"faults-resume"
            ~platforms:[ "haswell" ] ~configs:[ "protected" ]
            ~channels:[ "l1d"; "kernel" ] ~trials:2 ~samples:120 ()
        in
        let digest_of dir =
          let st = Tp_store.Store.open_ ~dir in
          Fun.protect
            ~finally:(fun () -> Tp_store.Store.close st)
            (fun () ->
              match Tp_serve.Engine.run_job ~store:st ~jobs:1 job with
              | Ok r -> r.Tp_serve.Protocol.r_digest
              | Error e -> failwith e)
        in
        let reference = digest_of (Filename.concat scratch "ref") in
        let crash_dir = Filename.concat scratch "crash" in
        let fired = ref 0 in
        for hit = 0 to 3 do
          let st = Tp_store.Store.open_ ~dir:crash_dir in
          Tp_fault.Fault.arm ~point:Tp_serve.Engine.point_dispatch ~hit
            (Failure "injected dispatch crash");
          (match Tp_serve.Engine.run_job ~store:st ~jobs:1 job with
          | Ok _ | Error _ -> ()
          | exception Failure _ -> incr fired);
          Tp_fault.Fault.disarm ();
          Tp_store.Store.close st
        done;
        let resumed = digest_of crash_dir in
        Format.printf
          "  4 armed dispatch crossings, %d crashed; resumed digest %s \
           uninterrupted reference@."
          !fired
          (if resumed = reference then "==" else "<>");
        if resumed <> reference then begin
          incr bad;
          Format.printf "    FAIL: crash-resume digest mismatch@."
        end;
        Format.printf "@.");
    if !bad > 0 then begin
      Format.printf "%d fault outcomes left the kernel inconsistent@." !bad;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Fault-injection sweep: fail every kernel operation at every \
          injection point and check the global invariants.")
    Term.(const run $ platform_arg $ verbose_arg)

let scenario_choices =
  [
    ("raw", Scenario.Raw);
    ("full-flush", Scenario.Full_flush);
    ("protected", Scenario.Protected);
    ("coloured-only", Scenario.Coloured_only);
    ("no-pad", Scenario.Protected_no_pad);
    ("no-prefetcher", Scenario.Protected_no_prefetcher);
    ("cat-llc", Scenario.Cat_llc);
  ]

(* Stable slug for a scenario kind: the CLI spelling, reused for
   certificate artifact names and the daemon's config column. *)
let slug_of_kind kind =
  fst (List.find (fun (_, k) -> k = kind) scenario_choices)

let config_arg =
  let doc =
    "Scenario to lint: $(b,raw), $(b,full-flush), $(b,protected), \
     $(b,coloured-only), $(b,no-pad), $(b,no-prefetcher) or $(b,cat-llc)."
  in
  Arg.(
    value
    & opt (enum scenario_choices) Scenario.Protected
    & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let domains_arg =
  let doc = "Number of security domains to boot." in
  Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Emit the reports as a JSON array instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let sarif_arg =
  let doc =
    "Emit the reports as SARIF 2.1.0 (GitHub code-scanning format) \
     instead of text.  Mutually exclusive with $(b,--json)."
  in
  Arg.(value & flag & info [ "sarif" ] ~doc)

let out_arg =
  let doc = "Write the output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let expect_arg =
  let doc =
    "Assert the outcome: with $(b,clean) exit non-zero if any report has \
     findings, with $(b,findings) exit non-zero if any report is clean.  \
     This is what the CI gate uses."
  in
  Arg.(
    value
    & opt (some (enum [ ("clean", `Clean); ("findings", `Findings) ])) None
    & info [ "expect" ] ~docv:"OUTCOME" ~doc)

let with_out file f =
  match file with
  | None -> f stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* Shared report rendering for the analysis subcommands: text, --json,
   or --sarif (exclusive). *)
let render_reports ~json ~sarif ~out reports =
  if json && sarif then begin
    Printf.eprintf "tpsim: --json and --sarif are mutually exclusive\n%!";
    exit 2
  end;
  with_out out (fun oc ->
      if json then output_string oc (Tp_analysis.Diag.reports_to_json reports)
      else if sarif then
        output_string oc (Tp_analysis.Diag.reports_to_sarif reports)
      else begin
        let ppf = Format.formatter_of_out_channel oc in
        List.iter
          (fun r -> Format.fprintf ppf "%a@." Tp_analysis.Diag.pp_report r)
          reports;
        Format.pp_print_flush ppf ()
      end)

let cmd_lint =
  (* Static time-protection linter (plus the dynamic §4.1 audit): does
     the booted configuration actually establish the isolation it
     claims?  `--expect` turns the verdict into an exit code for CI. *)
  let run plats kind domains json sarif out expect verbose =
    setup_logging verbose;
    let reports =
      List.map
        (fun p ->
          let b = Scenario.boot ~domains kind p in
          let subject =
            Printf.sprintf "lint %s %s" p.Tp_hw.Platform.name
              (Scenario.name kind)
          in
          let r = Tp_analysis.Lint.run ~subject b in
          (* Kernel-certifier unsoundness canary (TP-KCERT-UNSOUND):
             the certified switch-path bound must stay inside its
             Bounds-derived analytic envelope. *)
          let kc =
            Tp_analysis.Kcert.lint_crosscheck p
              ~config_name:(slug_of_kind kind) (Scenario.config kind p)
          in
          {
            r with
            Tp_analysis.Diag.findings = r.Tp_analysis.Diag.findings @ kc;
          })
        plats
    in
    render_reports ~json ~sarif ~out reports;
    (match out with
    | Some f ->
        List.iter
          (fun (r : Tp_analysis.Diag.report) ->
            Printf.eprintf "tpsim: %s: %s\n%!" r.subject
              (Tp_analysis.Diag.summary r))
          reports;
        Printf.eprintf "tpsim: wrote lint report to %s\n%!" f
    | None -> ());
    match expect with
    | None -> ()
    | Some `Clean ->
        let dirty =
          List.filter (fun r -> not (Tp_analysis.Diag.clean r)) reports
        in
        if dirty <> [] then begin
          List.iter
            (fun (r : Tp_analysis.Diag.report) ->
              Printf.eprintf "tpsim: expected clean but %s: %s\n%!" r.subject
                (Tp_analysis.Diag.summary r))
            dirty;
          exit 1
        end
    | Some `Findings ->
        let clean = List.filter Tp_analysis.Diag.clean reports in
        if clean <> [] then begin
          List.iter
            (fun (r : Tp_analysis.Diag.report) ->
              Printf.eprintf
                "tpsim: expected findings but %s lints clean\n%!" r.subject)
            clean;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static time-protection linter: colour/CAT disjointness, clone \
          coverage, IRQ partitioning and pad sufficiency against the \
          analytic worst-case switch bound, plus the dynamic \
          shared-data audit.")
    Term.(
      const run $ platform_arg $ config_arg $ domains_arg $ json_arg
      $ sarif_arg $ out_arg $ expect_arg $ verbose_arg)

let cmd_ctcheck =
  (* Constant-time checker over the bundled fixtures: static taint
     verdict cross-checked against a dynamic two-secret trace diff. *)
  let run plats json sarif out verbose =
    setup_logging verbose;
    let failed = ref 0 in
    let reports =
      List.concat_map
        (fun p ->
          List.map
            (fun fx ->
              let v = Tp_analysis.Ctcheck.check_fixture p fx in
              if not v.Tp_analysis.Ctcheck.v_pass then incr failed;
              Tp_analysis.Ctcheck.report p v)
            Tp_analysis.Ctcheck.fixtures)
        plats
    in
    render_reports ~json ~sarif ~out reports;
    (match out with
    | Some f -> Printf.eprintf "tpsim: wrote ctcheck report to %s\n%!" f
    | None -> ());
    if !failed > 0 then begin
      Printf.eprintf "tpsim: %d constant-time verdicts failed\n%!" !failed;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "ctcheck"
       ~doc:
         "Constant-time checker: secret-taint dataflow over the guest IR \
          fixtures (incl. the Sec. 5.3.3 square-and-multiply victim), \
          cross-checked by executing each fixture under two secrets and \
          diffing the address/branch traces.")
    Term.(const run $ platform_arg $ json_arg $ sarif_arg $ out_arg $ verbose_arg)

let certify_configs_arg =
  let doc =
    "Configuration(s) to certify (repeatable): $(b,raw), $(b,full-flush), \
     $(b,protected), $(b,coloured-only), $(b,no-pad), $(b,no-prefetcher) \
     or $(b,cat-llc).  Default: raw, full-flush, coloured-only, no-pad \
     and protected."
  in
  Arg.(
    value
    & opt_all (enum scenario_choices) []
    & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let exhaustive_arg =
  let doc =
    "Also run the small-scope model check: enumerate every two-domain \
     schedule on the shrunken machine and require all attacker \
     observations to be identical across victim secrets; prints the \
     concrete distinguishing schedule when one exists."
  in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let fixtures_arg =
  let doc =
    "Additionally certify each bundled ctcheck guest program: the \
     channel capacities are tightened to the program's abstract \
     footprint."
  in
  Arg.(value & flag & info [ "fixtures" ] ~doc)

let kernel_arg =
  let doc =
    "Certify the kernel's own lifecycle paths instead of guest \
     programs: lift the 12-step $(b,Domain_switch) sequence, the \
     $(b,Clone.clone) image copy and the $(b,Clone.destroy) teardown \
     into access traces, derive a sound per-execution leakage bound \
     per (platform, configuration, path), and cross-validate each with \
     the 3-domain small-scope model check.  Without $(b,-c), all seven \
     scenario configurations are certified; without $(b,--path), all \
     three paths."
  in
  Arg.(value & flag & info [ "kernel" ] ~doc)

let paths_arg =
  let doc =
    "With $(b,--kernel): lifecycle path(s) to certify (repeatable): \
     $(b,switch), $(b,clone) or $(b,destroy).  Default: all three."
  in
  Arg.(
    value
    & opt_all
        (enum
           (List.map
              (fun pa -> (Tp_analysis.Kcert.path_slug pa, pa))
              Tp_analysis.Kcert.all_paths))
        []
    & info [ "path" ] ~docv:"PATH" ~doc)

let certs_arg =
  let doc =
    "With $(b,--kernel): directory of golden certificate artifacts \
     ($(b,<platform>-<config>-<path>.cert.json)).  Alone, (re)writes \
     every certificate into it; with $(b,--check), byte-compares \
     instead and exits non-zero on any drift, missing file, or (when \
     checking the full matrix) stale leftover artifact (the CI gate)."
  in
  Arg.(value & opt (some string) None & info [ "certs" ] ~docv:"DIR" ~doc)

let check_arg =
  let doc = "Byte-compare against the goldens in $(b,--certs) (no writes)." in
  Arg.(value & flag & info [ "check" ] ~doc)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

(* `certify --kernel`: per-(platform, config, path) lifecycle
   certificates, each cross-validated by the 3-domain exhaustive check
   (with the neighbour performing that path's operation), emitted as
   deterministic content-digested artifacts and optionally byte-diffed
   against the checked-in goldens. *)
let certify_kernel plats kinds paths ~json ~sarif ~out ~expect ~certs_dir
    ~check =
  let full_matrix =
    (* The complete golden matrix was requested: -p all, every config,
       every path.  Only then can --check also flag stale leftovers. *)
    kinds = [] && paths = []
    && List.length plats = List.length Tp_hw.Platform.all
  in
  let kinds =
    match kinds with [] -> List.map snd scenario_choices | ks -> ks
  in
  let paths = match paths with [] -> Tp_analysis.Kcert.all_paths | ps -> ps in
  let entries =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun kind ->
            let cfg = Scenario.config kind p in
            List.map
              (fun path ->
                let ex = Tp_analysis.Certify.exhaustive3_path path p cfg in
                let cert =
                  Tp_analysis.Kcert.certify ~exhaustive:ex ~path p
                    ~config_name:(slug_of_kind kind) cfg
                in
                (cert, Tp_analysis.Kcert.report cert))
              paths)
          kinds)
      plats
  in
  let reports = List.map snd entries in
  (match (certs_dir, check) with
  | None, true ->
      Printf.eprintf "tpsim: --check needs --certs DIR\n%!";
      exit 2
  | None, false -> ()
  | Some dir, true ->
      let bad = ref 0 in
      List.iter
        (fun (c, _) ->
          let path =
            Filename.concat dir (Tp_analysis.Kcert.artifact_name c)
          in
          let want = Tp_analysis.Kcert.to_json c in
          match
            try
              Some (In_channel.with_open_bin path In_channel.input_all)
            with Sys_error _ -> None
          with
          | None ->
              incr bad;
              Printf.eprintf "tpsim: missing golden certificate %s\n%!" path
          | Some got when not (String.equal got want) ->
              incr bad;
              Printf.eprintf
                "tpsim: golden certificate drift: %s (regenerated digest \
                 %s)\n\
                 %!"
                path
                (Tp_analysis.Kcert.digest c)
          | Some _ -> ())
        entries;
      (if full_matrix then
         (* Stale leftovers (e.g. artifacts under a retired naming
            scheme) would silently bypass the byte-diff gate. *)
         let expected =
           List.map
             (fun (c, _) -> Tp_analysis.Kcert.artifact_name c)
             entries
         in
         Array.iter
           (fun f ->
             if
               Filename.check_suffix f ".cert.json"
               && not (List.mem f expected)
             then begin
               incr bad;
               Printf.eprintf
                 "tpsim: stale certificate artifact %s (not part of the \
                  current golden matrix)\n\
                  %!"
                 (Filename.concat dir f)
             end)
           (try Sys.readdir dir with Sys_error _ -> [||]));
      if !bad > 0 then begin
        Printf.eprintf
          "tpsim: %d golden certificate(s) out of date; regenerate with \
           `tpsim certify --kernel -p all --certs %s`\n\
           %!"
          !bad dir;
        exit 1
      end
      else
        Printf.eprintf
          "tpsim: %d golden certificates verified byte-identical\n%!"
          (List.length entries)
  | Some dir, false ->
      mkdir_p dir;
      List.iter
        (fun (c, _) ->
          let path =
            Filename.concat dir (Tp_analysis.Kcert.artifact_name c)
          in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (Tp_analysis.Kcert.to_json c)))
        entries;
      Printf.eprintf "tpsim: wrote %d certificates to %s\n%!"
        (List.length entries) dir);
  if json && sarif then begin
    Printf.eprintf "tpsim: --json and --sarif are mutually exclusive\n%!";
    exit 2
  end;
  with_out out (fun oc ->
      if json then
        output_string oc
          (Printf.sprintf "[%s]"
             (String.concat ",\n"
                (List.map
                   (fun (c, r) ->
                     Printf.sprintf "{\"cert\":%s,\"report\":%s}"
                       (Tp_analysis.Kcert.to_json c)
                       (Tp_analysis.Diag.report_to_json r))
                   entries)))
      else if sarif then
        output_string oc (Tp_analysis.Diag.reports_to_sarif reports)
      else begin
        let ppf = Format.formatter_of_out_channel oc in
        List.iter
          (fun (c, _) ->
            Format.fprintf ppf "%a" Tp_analysis.Kcert.pp c;
            Format.fprintf ppf "  digest: %s@.@."
              (Tp_analysis.Kcert.digest c))
          entries;
        Format.pp_print_flush ppf ()
      end);
  (match out with
  | Some f ->
      List.iter
        (fun (r : Tp_analysis.Diag.report) ->
          Printf.eprintf "tpsim: %s: %s\n%!" r.subject
            (Tp_analysis.Diag.summary r))
        reports;
      Printf.eprintf "tpsim: wrote kernel certification report to %s\n%!" f
  | None -> ());
  match expect with
  | None -> ()
  | Some `Clean ->
      let dirty =
        List.filter (fun r -> not (Tp_analysis.Diag.clean r)) reports
      in
      if dirty <> [] then begin
        List.iter
          (fun (r : Tp_analysis.Diag.report) ->
            Printf.eprintf "tpsim: expected clean but %s: %s\n%!" r.subject
              (Tp_analysis.Diag.summary r))
          dirty;
        exit 1
      end
  | Some `Findings ->
      let clean = List.filter Tp_analysis.Diag.clean reports in
      if clean <> [] then begin
        List.iter
          (fun (r : Tp_analysis.Diag.report) ->
            Printf.eprintf
              "tpsim: expected findings but %s certifies clean\n%!" r.subject)
          clean;
        exit 1
      end

let cmd_certify =
  (* Abstract-interpretation leakage certifier: sound per-channel
     upper bounds from the lint view (optionally tightened per guest
     program), cross-validated by exhaustive small-scope model
     checking. *)
  let run plats kinds paths domains json sarif out expect exhaustive fixtures
      kernel certs_dir check verbose =
    setup_logging verbose;
    if kernel then
      certify_kernel plats kinds paths ~json ~sarif ~out ~expect ~certs_dir
        ~check
    else begin
    let kinds =
      match kinds with
      | [] ->
          Scenario.
            [ Raw; Full_flush; Coloured_only; Protected_no_pad; Protected ]
      | ks -> ks
    in
    let entries =
      List.concat_map
        (fun p ->
          List.concat_map
            (fun kind ->
              let b = Scenario.boot ~domains kind p in
              let v = Tp_analysis.Lint.view_of_booted b in
              let subject =
                Printf.sprintf "certify %s %s" p.Tp_hw.Platform.name
                  (Scenario.name kind)
              in
              let cert = Tp_analysis.Certify.certify_view ~subject v in
              let ex =
                if exhaustive then
                  Some (Tp_analysis.Certify.exhaustive p (Scenario.config kind p))
                else None
              in
              let report =
                let base = Tp_analysis.Certify.report cert in
                match ex with
                | None -> base
                | Some r ->
                    {
                      base with
                      Tp_analysis.Diag.findings =
                        base.Tp_analysis.Diag.findings
                        @ Tp_analysis.Certify.exhaustive_findings r
                        @ Tp_analysis.Certify.crosscheck cert r;
                    }
              in
              let fixture_entries =
                if not fixtures then []
                else
                  List.map
                    (fun fx ->
                      let c =
                        Tp_analysis.Certify.certify_fixture
                          ~subject:
                            (Printf.sprintf "%s %s" subject
                               fx.Tp_analysis.Ctcheck.fx_program
                                 .Tp_analysis.Ct_ir.p_name)
                          v fx
                      in
                      (c, None, Tp_analysis.Certify.report c))
                    Tp_analysis.Ctcheck.fixtures
              in
              ((cert, ex, report) :: fixture_entries))
            kinds)
        plats
    in
    let reports = List.map (fun (_, _, r) -> r) entries in
    let exhaustive_json = function
      | None -> "null"
      | Some r -> Tp_analysis.Certify.exhaustive_to_json r
    in
    if json && sarif then begin
      Printf.eprintf "tpsim: --json and --sarif are mutually exclusive\n%!";
      exit 2
    end;
    with_out out (fun oc ->
        if json then
          output_string oc
            (Printf.sprintf "[%s]"
               (String.concat ",\n"
                  (List.map
                     (fun (c, ex, r) ->
                       Printf.sprintf
                         "{\"cert\":%s,\"report\":%s,\"exhaustive\":%s}"
                         (Tp_analysis.Certify.cert_to_json c)
                         (Tp_analysis.Diag.report_to_json r)
                         (exhaustive_json ex))
                     entries)))
        else if sarif then
          output_string oc (Tp_analysis.Diag.reports_to_sarif reports)
        else begin
          let ppf = Format.formatter_of_out_channel oc in
          List.iter
            (fun (c, ex, _) ->
              Format.fprintf ppf "%a" Tp_analysis.Certify.pp c;
              (match ex with
              | None -> ()
              | Some (r : Tp_analysis.Certify.exhaustive_result) -> (
                  match r.ex_counterexample with
                  | None ->
                      Format.fprintf ppf
                        "  exhaustive: PASS (%d schedules x %d secrets, \
                         horizon %d, on %s)@."
                        r.ex_schedules
                        (List.length r.ex_secrets)
                        r.ex_horizon r.ex_platform
                  | Some cx ->
                      Format.fprintf ppf
                        "  exhaustive: FAIL -- schedule %s distinguishes \
                         secrets %d/%d at attacker turn %d, observation %d \
                         (%d vs %d cycles%s)@."
                        cx.cx_schedule cx.cx_secret_a cx.cx_secret_b
                        cx.cx_turn cx.cx_index cx.cx_obs_a cx.cx_obs_b
                        (if cx.cx_index = 0 then "; index 0 = turn timestamp"
                         else "")));
              Format.fprintf ppf "@.")
            entries;
          Format.pp_print_flush ppf ()
        end);
    (match out with
    | Some f ->
        List.iter
          (fun (r : Tp_analysis.Diag.report) ->
            Printf.eprintf "tpsim: %s: %s\n%!" r.subject
              (Tp_analysis.Diag.summary r))
          reports;
        Printf.eprintf "tpsim: wrote certification report to %s\n%!" f
    | None -> ());
    match expect with
    | None -> ()
    | Some `Clean ->
        let dirty =
          List.filter (fun r -> not (Tp_analysis.Diag.clean r)) reports
        in
        if dirty <> [] then begin
          List.iter
            (fun (r : Tp_analysis.Diag.report) ->
              Printf.eprintf "tpsim: expected clean but %s: %s\n%!" r.subject
                (Tp_analysis.Diag.summary r))
            dirty;
          exit 1
        end
    | Some `Findings ->
        let clean = List.filter Tp_analysis.Diag.clean reports in
        if clean <> [] then begin
          List.iter
            (fun (r : Tp_analysis.Diag.report) ->
              Printf.eprintf
                "tpsim: expected findings but %s certifies clean\n%!"
                r.subject)
            clean;
          exit 1
        end
    end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Abstract-interpretation leakage certifier: a sound per-channel \
          upper bound in bits (L1-D, L1-I, TLB, branch predictor, LLC, \
          plus pad timing) for each configuration, 0 under full time \
          protection; $(b,--exhaustive) cross-validates by enumerating \
          two-domain schedules on a shrunken machine and checking \
          observational determinism.  $(b,--kernel) certifies the \
          kernel's own lifecycle paths (switch, clone, destroy) \
          instead, with 3-domain cross-validation and content-digested \
          golden artifacts ($(b,--certs)/$(b,--check)).")
    Term.(
      const run $ platform_arg $ certify_configs_arg $ paths_arg $ domains_arg
      $ json_arg $ sarif_arg $ out_arg $ expect_arg $ exhaustive_arg
      $ fixtures_arg $ kernel_arg $ certs_arg $ check_arg $ verbose_arg)

let no_replay_arg =
  let doc =
    "Disable record-once / replay-many sender slices and run every \
     trial slice live.  Replay is bit-identical to live execution by \
     construction, so flipping this flag must never change a result — \
     it exists for A/B debugging and for measuring the speedup."
  in
  Arg.(value & flag & info [ "no-replay" ] ~doc)

let cmd_bench =
  (* Benchmark-regression harness: suite throughput at -j 1 vs -j N,
     bit-identity between the two, JSON artifact and baseline gate. *)
  let bench_json =
    let doc = "Write the results as a JSON document to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let baseline =
    let doc =
      "Compare accesses/s per experiment against the JSON emitted by an \
       earlier run and fail on a drop beyond $(b,--max-regress)."
    in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let max_regress =
    let doc = "Allowed relative throughput drop vs the baseline, percent." in
    Arg.(value & opt float 25.0 & info [ "max-regress" ] ~docv:"PCT" ~doc)
  in
  let run plats q seed jobs verbose json baseline max_regress no_replay =
    setup_logging verbose;
    Result.get_ok (setup_jobs jobs None);
    Tp_attacks.Harness.set_replay_enabled (not no_replay);
    exit
      (Bench.run q ~seed
         ~jobs:(Tp_par.Pool.default_jobs ())
         ~platforms:plats ~json_out:json ~baseline ~max_regress ())
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Benchmark the simulator: wall clock, simulated cycles/s and \
          accesses/s over a fixed trial suite, sequential vs parallel \
          (verified bit-identical), with optional JSON output and a \
          baseline regression gate.")
    Term.(
      const run $ platform_arg $ quality_arg $ seed_arg $ jobs_arg
      $ verbose_arg $ bench_json $ baseline $ max_regress $ no_replay_arg)

let socket_arg =
  let doc = "Unix-domain socket path of the campaign daemon." in
  Arg.(
    required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let store_arg =
  let doc =
    "Result-store directory (created as needed; fsck'd on open, so a \
     directory a crashed daemon left behind is fine)."
  in
  Arg.(required & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let event_log_arg =
  let doc =
    "Append a structured JSONL event log (daemon lifecycle, job \
     received/done/rejected, dropped-span warnings and leakage-drift \
     alerts) to $(docv), rotated at about 1 MiB with 3 generations \
     kept."
  in
  Arg.(
    value & opt (some string) None & info [ "event-log" ] ~docv:"FILE" ~doc)

let cmd_serve =
  let run socket store jobs event_log verbose =
    match setup_jobs jobs None with
    | Error msg -> `Error (false, msg)
    | Ok () ->
        setup_logging verbose;
        let elog = Option.map Tp_obs.Eventlog.open_ event_log in
        Fun.protect
          ~finally:(fun () -> Option.iter Tp_obs.Eventlog.close elog)
          (fun () ->
            Tp_serve.Serve.run ~socket ~store_dir:store
              ~jobs:(Tp_par.Pool.default_jobs ())
              ~log:(fun s -> Printf.eprintf "tpsim-serve: %s\n%!" s)
              ?event_log:elog ());
        `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Campaign daemon: accept JSON jobs over a Unix-domain socket, \
          shard trials across worker domains, memoize every trial in a \
          crash-safe content-addressed result store, and stream \
          progress to the submitting client.  Survives kill -9: a \
          restarted daemon resumes mid-sweep bit-identically.  Exposes \
          campaign telemetry: any client can scrape an OpenMetrics \
          snapshot with the metrics request (see $(b,tpsim top)), and \
          $(b,--event-log) records a rotated JSONL lifecycle stream.")
    Term.(
      ret
        (const run $ socket_arg $ store_arg $ jobs_arg $ event_log_arg
       $ verbose_arg))

let cmd_sweep =
  let strings_arg names ~default ~doc ~docv =
    Arg.(value & opt_all string default & info names ~docv ~doc)
  in
  let platforms_arg =
    strings_arg [ "p"; "platform" ] ~default:[ "haswell" ] ~docv:"PLATFORM"
      ~doc:
        "Platform slug (repeatable): $(b,haswell), $(b,sabre) or \
         $(b,armv8)."
  in
  let configs_arg =
    strings_arg [ "c"; "config" ] ~default:[ "protected" ] ~docv:"CONFIG"
      ~doc:
        "Scenario slug (repeatable): $(b,raw), $(b,full-flush), \
         $(b,protected), $(b,coloured-only), $(b,no-pad), \
         $(b,no-prefetcher) or $(b,cat-llc)."
  in
  let channels_arg =
    strings_arg [ "channel" ] ~default:[ "l1d" ] ~docv:"CHANNEL"
      ~doc:
        "Channel slug (repeatable): $(b,l1d), $(b,l1i), $(b,tlb), \
         $(b,btb), $(b,bhb), $(b,l2), $(b,kernel) or $(b,flush)."
  in
  let trials_arg =
    Arg.(
      value & opt int 1
      & info [ "trials" ] ~docv:"N" ~doc:"Trials per matrix cell.")
  in
  let samples_arg =
    Arg.(
      value & opt int 300
      & info [ "samples" ] ~docv:"N" ~doc:"Harness samples per trial.")
  in
  let cycle_budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cycle-budget" ] ~docv:"CYCLES"
          ~doc:
            "Deterministic simulated-cycle budget per trial (part of \
             the cache key); an exhausted trial is kept, marked \
             degraded.")
  in
  let trial_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "trial-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock timeout per trial attempt.  Timed-out trials \
             are reported failed and recomputed on resubmission — \
             wall time is host-dependent, so they are never cached.")
  in
  let wall_budget_arg =
    Arg.(
      value & opt (some float) None
      & info [ "wall-budget" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget per job; when exhausted the job \
             degrades gracefully, returning everything computed so \
             far.")
  in
  let retries_arg =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts per faulted trial (exponential backoff \
             between attempts).")
  in
  let run socket platforms configs channels trials seed samples cycle_budget
      trial_timeout wall_budget retries json no_replay =
    let failures = ref 0 in
    let batches =
      List.concat_map
        (fun p -> List.map (fun c -> (p, c)) configs)
        platforms
    in
    let results =
      List.filter_map
        (fun (p, c) ->
          let job =
            Tp_serve.Protocol.job
              ~id:(Printf.sprintf "sweep-%s-%s" p c)
              ~platforms:[ p ] ~configs:[ c ] ~channels ~trials ~seed
              ~samples ?trial_cycle_budget:cycle_budget
              ?trial_timeout_s:trial_timeout ?wall_budget_s:wall_budget
              ~max_retries:retries ~replay:(not no_replay) ()
          in
          match
            Tp_serve.Client.submit ~socket
              ~on_progress:(fun pr ->
                Printf.eprintf
                  "tpsim-sweep: %s %d/%d (%d cached, %d failed, %d \
                   retried)%s\n\
                   %!"
                  job.Tp_serve.Protocol.j_id pr.Tp_serve.Protocol.p_done
                  pr.Tp_serve.Protocol.p_total pr.Tp_serve.Protocol.p_cached
                  pr.Tp_serve.Protocol.p_failed
                  pr.Tp_serve.Protocol.p_retried
                  (if pr.Tp_serve.Protocol.p_dropped_spans > 0 then
                     Printf.sprintf
                       " [warning: %d trace spans dropped daemon-side]"
                       pr.Tp_serve.Protocol.p_dropped_spans
                   else ""))
              job
          with
          | Ok r ->
              if r.Tp_serve.Protocol.r_status = Tp_serve.Protocol.Failed then
                incr failures;
              Some r
          | Error why ->
              Printf.eprintf "tpsim-sweep: %s: %s\n%!"
                job.Tp_serve.Protocol.j_id why;
              incr failures;
              None)
        batches
    in
    if json then
      print_endline
        (Tp_util.Json.to_string
           (Tp_util.Json.Arr
              (List.map Tp_serve.Protocol.result_to_json results)))
    else
      List.iter
        (fun (r : Tp_serve.Protocol.job_result) ->
          Printf.printf
            "%s: %s — %d trials (%d computed, %d cached, %d degraded, %d \
             failed, %d retried), digest %s%s\n"
            r.Tp_serve.Protocol.r_id
            (Tp_serve.Protocol.status_name r.Tp_serve.Protocol.r_status)
            r.Tp_serve.Protocol.r_total r.Tp_serve.Protocol.r_computed
            r.Tp_serve.Protocol.r_cached r.Tp_serve.Protocol.r_degraded
            r.Tp_serve.Protocol.r_failed r.Tp_serve.Protocol.r_retried
            r.Tp_serve.Protocol.r_digest
            (match r.Tp_serve.Protocol.r_reason with
            | None -> ""
            | Some why -> " (" ^ why ^ ")");
          List.iter
            (fun (t : Tp_serve.Protocol.trial) ->
              Printf.printf "  %s %s %s#%d: %s M=%.4f M0=%.4f n=%d%s%s%s\n"
                t.Tp_serve.Protocol.t_platform t.Tp_serve.Protocol.t_config
                t.Tp_serve.Protocol.t_channel t.Tp_serve.Protocol.t_trial
                t.Tp_serve.Protocol.t_verdict t.Tp_serve.Protocol.t_mi_bits
                t.Tp_serve.Protocol.t_m0_bits t.Tp_serve.Protocol.t_n
                (if t.Tp_serve.Protocol.t_cached then " [cached]" else "")
                (if t.Tp_serve.Protocol.t_retries > 0 then
                   Printf.sprintf " [%d retries]"
                     t.Tp_serve.Protocol.t_retries
                 else "")
                (match t.Tp_serve.Protocol.t_degraded_reason with
                | None -> ""
                | Some why -> " [" ^ why ^ "]"))
            r.Tp_serve.Protocol.r_trials)
        results;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Submit the platform x config x channel x trial matrix to a \
          running campaign daemon in per-(platform, config) batches and \
          render the streamed results.  Resubmitting a finished sweep \
          is answered entirely from the daemon's result store.")
    Term.(
      const run $ socket_arg $ platforms_arg $ configs_arg $ channels_arg
      $ trials_arg $ seed_arg $ samples_arg $ cycle_budget_arg
      $ trial_timeout_arg $ wall_budget_arg $ retries_arg $ json_arg
      $ no_replay_arg)

let cmd_serve_smoke =
  (* End-to-end crash-resume gate, self-contained so CI can run it as
     one command: reference run in-process, then daemon runs that are
     SIGKILLed mid-sweep, resumed, and resubmitted, gating on digest
     bit-identity and cache-hit latency. *)
  let run verbose =
    setup_logging verbose;
    let dir = mkdtemp "tpsim-smoke" in
    let socket = Filename.concat dir "sock" in
    let store = Filename.concat dir "store" in
    let exe = Sys.executable_name in
    let fails = ref 0 in
    let check name cond detail =
      if cond then Printf.printf "  ok   %s\n%!" name
      else begin
        incr fails;
        Printf.printf "  FAIL %s: %s\n%!" name detail
      end
    in
    let spawn () =
      Unix.create_process exe
        [| exe; "serve"; "--socket"; socket; "--store"; store; "-j"; "1" |]
        Unix.stdin Unix.stderr Unix.stderr
    in
    let job =
      Tp_serve.Protocol.job ~id:"smoke" ~platforms:[ "haswell" ]
        ~configs:[ "protected" ]
        ~channels:[ "l1d"; "kernel" ]
        ~trials:2 ~samples:150 ()
    in
    Printf.printf "serve-smoke: uninterrupted reference run (-j 1)\n%!";
    let ref_digest =
      let st = Tp_store.Store.open_ ~dir:(Filename.concat dir "ref") in
      Fun.protect
        ~finally:(fun () -> Tp_store.Store.close st)
        (fun () ->
          match Tp_serve.Engine.run_job ~store:st ~jobs:1 job with
          | Ok r -> r.Tp_serve.Protocol.r_digest
          | Error e ->
              Printf.eprintf "serve-smoke: reference run rejected: %s\n%!" e;
              exit 1)
    in
    Printf.printf "serve-smoke: daemon run, SIGKILL at first progress\n%!";
    let pid1 = spawn () in
    (match Tp_serve.Client.ping ~socket with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "serve-smoke: daemon never came up: %s\n%!" e;
        Unix.kill pid1 Sys.sigkill;
        exit 1);
    let killed = ref false in
    let r1 =
      Tp_serve.Client.submit ~socket
        ~on_progress:(fun pr ->
          if
            (not !killed)
            && pr.Tp_serve.Protocol.p_done < pr.Tp_serve.Protocol.p_total
          then begin
            killed := true;
            Unix.kill pid1 Sys.sigkill
          end)
        job
    in
    ignore (Unix.waitpid [] pid1);
    check "daemon SIGKILLed mid-sweep"
      (!killed && Result.is_error r1)
      "the job finished before the kill landed";
    Printf.printf "serve-smoke: restarted daemon resumes the sweep\n%!";
    let pid2 = spawn () in
    (match Tp_serve.Client.submit ~socket job with
    | Error e -> check "resumed submit" false e
    | Ok r ->
        check "resumed job completes"
          (r.Tp_serve.Protocol.r_status = Tp_serve.Protocol.Complete)
          (Tp_serve.Protocol.status_name r.Tp_serve.Protocol.r_status);
        check "resume digest bit-identical to uninterrupted run"
          (r.Tp_serve.Protocol.r_digest = ref_digest)
          (r.Tp_serve.Protocol.r_digest ^ " <> " ^ ref_digest);
        check "pre-crash trials answered from cache"
          (r.Tp_serve.Protocol.r_cached >= 2)
          (string_of_int r.Tp_serve.Protocol.r_cached);
        check "no failed trials"
          (r.Tp_serve.Protocol.r_failed = 0)
          (string_of_int r.Tp_serve.Protocol.r_failed));
    let t0 = Unix.gettimeofday () in
    (match Tp_serve.Client.submit ~socket job with
    | Error e -> check "resubmission" false e
    | Ok r ->
        let dt = Unix.gettimeofday () -. t0 in
        check "resubmission fully cached"
          (r.Tp_serve.Protocol.r_cached = r.Tp_serve.Protocol.r_total
          && r.Tp_serve.Protocol.r_computed = 0)
          (Printf.sprintf "%d/%d cached" r.Tp_serve.Protocol.r_cached
             r.Tp_serve.Protocol.r_total);
        check "resubmission digest stable"
          (r.Tp_serve.Protocol.r_digest = ref_digest)
          r.Tp_serve.Protocol.r_digest;
        check "cache-hit latency under 1s" (dt < 1.0)
          (Printf.sprintf "%.3fs" dt));
    (match Tp_serve.Client.shutdown ~socket with
    | Ok () -> ()
    | Error e -> check "daemon shutdown" false e);
    ignore (Unix.waitpid [] pid2);
    (try rm_rf dir with Unix.Unix_error _ -> ());
    if !fails > 0 then begin
      Printf.printf "serve-smoke: %d checks FAILED\n%!" !fails;
      exit 1
    end
    else Printf.printf "serve-smoke: PASS\n%!"
  in
  Cmd.v
    (Cmd.info "serve-smoke"
       ~doc:
         "Crash-resume smoke test of the campaign service: start the \
          daemon, SIGKILL it mid-sweep, restart, and gate on digest \
          bit-identity with an uninterrupted run plus fully-cached \
          resubmission.  This is the CI gate.")
    Term.(const run $ verbose_arg)

let cmd_replay_smoke =
  (* Bit-identity A/B gate for record-once / replay-many: the same
     small collection run twice — replay on, then forced fully live —
     must produce byte-identical datasets and leave the machine in a
     byte-identical state, per config and channel.  This is the CI
     gate behind the sweep hot path's correctness claim. *)
  let run plats verbose =
    setup_logging verbose;
    let fails = ref 0 in
    let check name cond detail =
      if cond then Printf.printf "  ok   %s\n%!" name
      else begin
        incr fails;
        Printf.printf "  FAIL %s: %s\n%!" name detail
      end
    in
    Fun.protect
      ~finally:(fun () -> Tp_attacks.Harness.set_replay_enabled true)
      (fun () ->
        run_over plats (fun p ->
            Printf.printf "replay-smoke: %s\n%!" p.Tp_hw.Platform.name;
            List.iter
              (fun (cfg, slug) ->
                List.iter
                  (fun (chan : Tp_attacks.Cache_channels.t) ->
                    let collect replay_on =
                      Tp_attacks.Harness.set_replay_enabled replay_on;
                      let b = Scenario.boot cfg p in
                      let sender, receiver =
                        chan.Tp_attacks.Cache_channels.prepare b
                      in
                      let spec =
                        {
                          (Tp_attacks.Harness.default_spec p) with
                          Tp_attacks.Harness.samples = 150;
                          symbols = chan.Tp_attacks.Cache_channels.symbols;
                        }
                      in
                      let data =
                        Tp_attacks.Harness.run_pair b ~sender ~receiver spec
                          ~rng:(Tp_util.Rng.create ~seed:7)
                      in
                      ( data,
                        Tp_hw.Machine.state_digest
                          (Tp_kernel.System.machine b.Tp_kernel.Boot.sys) )
                    in
                    let d_rep, m_rep = collect true in
                    let d_live, m_live = collect false in
                    let name = Printf.sprintf "%s/%s" slug
                        chan.Tp_attacks.Cache_channels.name in
                    check (name ^ ": dataset bit-identical")
                      (d_rep = d_live) "replayed dataset differs from live";
                    check (name ^ ": machine state bit-identical")
                      (m_rep = m_live) (m_rep ^ " <> " ^ m_live))
                  [ Tp_attacks.Cache_channels.l1d;
                    Tp_attacks.Cache_channels.tlb ])
              [ (Scenario.Raw, "raw"); (Scenario.Protected, "protected") ]);
        if !fails > 0 then begin
          Printf.printf "replay-smoke: %d checks FAILED\n%!" !fails;
          exit 1
        end
        else Printf.printf "replay-smoke: PASS\n%!")
  in
  Cmd.v
    (Cmd.info "replay-smoke"
       ~doc:
         "Bit-identity A/B smoke test of record-once / replay-many: \
          run the same small collection with replay enabled and with \
          $(b,--no-replay) semantics forced, and gate on the datasets \
          and final machine states being byte-identical.  This is the \
          CI gate.")
    Term.(const run $ platform_arg $ verbose_arg)

let cmd_top =
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between scrapes of the daemon's metrics request.")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame and exit (no screen clearing).")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Print the raw OpenMetrics exposition text instead of the \
             dashboard (pipe it to a file and any Prometheus tooling \
             can ingest it).")
  in
  let run socket interval once raw =
    match
      Tp_serve.Top.run ~socket ~interval
        ?frames:(if once then Some 1 else None)
        ~raw ()
    with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, e)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running campaign daemon: scrape the \
          metrics request every few seconds and render trial \
          throughput, latency percentiles (p50/p90/p99/max from the \
          exposition histograms), store hit rate, per-domain pool \
          utilisation and the leakage-drift monitor (measured MI vs \
          the certified bound recorded with each trial).")
    Term.(ret (const run $ socket_arg $ interval_arg $ once_arg $ raw_arg))

let cmd_top_smoke =
  (* Telemetry end-to-end gate, self-contained like serve-smoke: boot
     the daemon with an event log, run a small sweep, scrape the
     metrics request, and assert the exposition carries every family
     the dashboard renders plus a parseable JSONL lifecycle stream. *)
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Copy the scraped metrics snapshot (metrics.txt) and the \
             daemon's event log (events.jsonl) into $(docv), created \
             as needed — the CI artifact path.")
  in
  let run out verbose =
    setup_logging verbose;
    let dir = mkdtemp "tpsim-topsmoke" in
    let socket = Filename.concat dir "sock" in
    let store = Filename.concat dir "store" in
    let elog = Filename.concat dir "events.jsonl" in
    let exe = Sys.executable_name in
    let fails = ref 0 in
    let check name cond detail =
      if cond then Printf.printf "  ok   %s\n%!" name
      else begin
        incr fails;
        Printf.printf "  FAIL %s: %s\n%!" name detail
      end
    in
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      nn = 0 || go 0
    in
    Printf.printf "top-smoke: daemon + small sweep + metrics scrape\n%!";
    let pid =
      Unix.create_process exe
        [|
          exe; "serve"; "--socket"; socket; "--store"; store; "-j"; "2";
          "--event-log"; elog;
        |]
        Unix.stdin Unix.stderr Unix.stderr
    in
    (match Tp_serve.Client.ping ~socket with
    | Ok () -> ()
    | Error e ->
        Printf.eprintf "top-smoke: daemon never came up: %s\n%!" e;
        Unix.kill pid Sys.sigkill;
        exit 1);
    let job =
      Tp_serve.Protocol.job ~id:"top-smoke" ~platforms:[ "haswell" ]
        ~configs:[ "protected" ] ~channels:[ "l1d" ] ~trials:2 ~samples:120 ()
    in
    (match Tp_serve.Client.submit ~socket job with
    | Error e -> check "sweep completes" false e
    | Ok r ->
        check "sweep completes"
          (r.Tp_serve.Protocol.r_status = Tp_serve.Protocol.Complete)
          (Tp_serve.Protocol.status_name r.Tp_serve.Protocol.r_status));
    let metrics_text =
      match Tp_serve.Client.metrics ~socket with
      | Error e ->
          check "metrics scrape answers" false e;
          ""
      | Ok text ->
          check "metrics scrape answers" true "";
          text
    in
    List.iter
      (fun (what, family) ->
        check
          (Printf.sprintf "exposition carries %s" what)
          (contains metrics_text family)
          (family ^ " not found"))
      [
        ("engine latency histogram", "tpsim_engine_trial_us_bucket");
        ("engine trial counters", "tpsim_engine_trials_total");
        ("store hits", "tpsim_store_hits_total");
        ("store misses", "tpsim_store_misses_total");
        ("pool tasks", "tpsim_pool_tasks_total");
        ("pool busy time", "tpsim_pool_busy_us_total");
        ("drift counter type", "# TYPE tpsim_engine_mi_over_cert_total");
        ("OpenMetrics terminator", "# EOF");
      ];
    let e = Tp_serve.Top.parse metrics_text in
    check "exposition parses into samples" (e.Tp_serve.Top.e_samples <> [])
      "no samples";
    check "engine recorded the sweep's trials"
      (Tp_serve.Top.total e "tpsim_engine_trials_total" >= 2.0)
      (string_of_float (Tp_serve.Top.total e "tpsim_engine_trials_total"));
    let frame = Tp_serve.Top.render ~now:(Unix.gettimeofday ()) e in
    check "dashboard frame renders"
      (contains frame "latency" && contains frame "store"
     && contains frame "pool" && contains frame "leakage")
      frame;
    (match Tp_serve.Client.shutdown ~socket with
    | Ok () -> ()
    | Error e -> check "daemon shutdown" false e);
    ignore (Unix.waitpid [] pid);
    check "event log written" (Sys.file_exists elog) elog;
    let events =
      match open_in elog with
      | exception Sys_error _ -> []
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              In_channel.input_lines ic
              |> List.filter_map (fun l ->
                     Option.bind
                       (Tp_util.Json.parse_opt l)
                       (fun j ->
                         Option.bind
                           (Tp_util.Json.member "event" j)
                           Tp_util.Json.str)))
    in
    check "every event-log line is valid JSON with an event field"
      (events <> []) "no parseable events";
    List.iter
      (fun ev ->
        check
          (Printf.sprintf "event log records %s" ev)
          (List.mem ev events)
          (String.concat "," events))
      [ "daemon_start"; "job_received"; "job_done"; "shutdown" ];
    (match out with
    | None -> ()
    | Some out ->
        (if not (Sys.file_exists out) then
           try Unix.mkdir out 0o755 with Unix.Unix_error _ -> ());
        let save name data =
          let oc = open_out (Filename.concat out name) in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc data)
        in
        save "metrics.txt" metrics_text;
        (match open_in_bin elog with
        | exception Sys_error _ -> ()
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> save "events.jsonl" (In_channel.input_all ic))));
    (try rm_rf dir with Unix.Unix_error _ -> ());
    if !fails > 0 then begin
      Printf.printf "top-smoke: %d checks FAILED\n%!" !fails;
      exit 1
    end
    else Printf.printf "top-smoke: PASS\n%!"
  in
  Cmd.v
    (Cmd.info "top-smoke"
       ~doc:
         "Telemetry smoke test: boot the daemon with an event log, run \
          a small sweep, scrape the metrics request, and gate on the \
          OpenMetrics exposition carrying the engine/store/pool \
          families the dashboard renders plus a parseable JSONL event \
          log.  This is the CI gate.")
    Term.(const run $ out_arg $ verbose_arg)

let cmds =
  [
    cmd_platforms;
    cmd_faults;
    cmd_bench;
    cmd_serve;
    cmd_sweep;
    cmd_serve_smoke;
    cmd_replay_smoke;
    cmd_top;
    cmd_top_smoke;
    cmd_lint;
    cmd_ctcheck;
    cmd_certify;
    mk_cmd "table2" "Worst-case cache flush costs (Table 2)." table2;
    mk_cmd "fig3" "Kernel-image covert channel matrix (Figure 3)." fig3;
    mk_cmd "table3" "Intra-core timing channels (Table 3)." table3;
    mk_cmd "fig4" "Cross-core LLC side channel vs ElGamal (Figure 4)." fig4;
    mk_cmd "table4" "Cache-flush latency channel incl. Figure 5 (Table 4)."
      table4;
    mk_cmd "fig6" "Timer-interrupt channel (Figure 6)." fig6;
    mk_cmd "table5" "IPC microbenchmark (Table 5)." table5;
    mk_cmd "table6" "Domain-switch cost (Table 6)." table6;
    mk_cmd "table7" "Kernel clone/destroy cost (Table 7)." table7;
    mk_cmd "fig7" "Splash-2 colouring slowdowns (Figure 7)." fig7;
    mk_cmd "table8" "Time-shared Splash-2 overhead (Table 8)." table8;
    mk_cmd "bus" "Interconnect covert channel demo (beyond paper)." bus;
    mk_cmd "dram" "DRAM row-buffer channel demo (beyond paper)." dram;
    mk_cmd "cosched" "Gang-scheduling mitigation demo (Sec. 3.1.1)." cosched;
    mk_cmd "cat" "Intel CAT way-partitioning demo (Sec. 2.3)." cat;
    mk_cmd "mls" "Bell-LaPadula padding policy demo (Sec. 4.3)." mls;
    mk_cmd "calibrate" "Empirical worst-case pad calibration (Sec. 4.3)."
      calibrate;
    mk_cmd "stats"
      "Performance counters and pad-slack profile of a switching workload."
      stats;
    mk_cmd "all" "Run the complete evaluation." all;
  ]

let () =
  let info =
    Cmd.info "tpsim" ~version:"1.0"
      ~doc:
        "Reproduction of 'Time Protection: The Missing OS Abstraction' \
         (EuroSys 2019) on a simulated microarchitecture."
      ~man:
        [
          `S Manpage.s_common_options;
          `P
            "$(b,--trace) $(i,FILE): record a Chrome trace (spans for \
             domain switches, flushes, clone/destroy; instants for \
             harness checkpoints and injected faults) and write it as \
             Perfetto-loadable JSON on exit.  1 trace microsecond = 1 \
             simulated cycle.";
          `P
            "$(b,--counters): enable the microarchitectural performance \
             counters and print every counter set on exit.";
          `P
            "$(b,--metrics) $(i,FILE): enable the counters and dump them \
             as JSONL on exit.";
          `P
            "These three are global: they may appear before or after the \
             subcommand.";
        ]
  in
  let argv = strip_obs_argv Sys.argv in
  setup_obs ();
  at_exit finish_obs;
  exit (Cmd.eval ~argv (Cmd.group info cmds))
