type tracker = {
  mutable ptag : int; (* partial page tag, 2 bits; -1 = invalid *)
  mutable last_line : int; (* last line offset seen within the page *)
  mutable dir : int; (* +1 / -1 *)
  mutable confidence : int; (* saturates at [confirm] *)
}

type t = {
  slots : int;
  degree : int;
  table : tracker array;
  mutable enabled : bool;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_issued : Tp_obs.Counter.t;
  st_allocs : Tp_obs.Counter.t;
  st_filtered : Tp_obs.Counter.t;
  st_resets : Tp_obs.Counter.t;
}

let confirm = 2
let partial_tag_bits = 2

let create ?(name = "prefetcher") ~slots ~degree () =
  assert (Defs.is_pow2 slots);
  assert (degree > 0);
  let st = Tp_obs.Counter.make_set name in
  let st_issued = Tp_obs.Counter.counter st "lines_issued" in
  let st_allocs = Tp_obs.Counter.counter st "tracker_allocs" in
  let st_filtered = Tp_obs.Counter.counter st "alloc_filtered" in
  let st_resets = Tp_obs.Counter.counter st "hard_resets" in
  {
    slots;
    degree;
    table =
      Array.init slots (fun _ ->
          { ptag = -1; last_line = 0; dir = 1; confidence = 0 });
    enabled = true;
    st;
    st_issued;
    st_allocs;
    st_filtered;
    st_resets;
  }

let counters t = t.st

(* Tracker index: a hash over the page number, not its low bits.  Real
   prefetchers fold higher address bits into their indexing, so page
   colouring — which fixes only the low page bits — cannot partition
   the tracker table.  (If the index were [page mod slots], disjoint
   colour sets would imply disjoint slot sets and the §5.3.2 residual
   channel could not exist.) *)
let slot_of t ~page =
  (page lxor (page lsr 4) lxor (page lsr 9)) land (t.slots - 1)

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

let on_access t ~paddr ~line =
  if not t.enabled then []
  else begin
    let page = paddr / Defs.page_size in
    let line_off = Defs.page_offset paddr / line in
    let slot = slot_of t ~page in
    let ptag = (page lsr Defs.log2 t.slots) land ((1 lsl partial_tag_bits) - 1) in
    let tr = t.table.(slot) in
    let lines_per_page = Defs.page_size / line in
    if tr.ptag = ptag then begin
      let delta = line_off - tr.last_line in
      if delta = tr.dir && delta <> 0 then
        tr.confidence <- min confirm (tr.confidence + 1)
      else if delta = -tr.dir && delta <> 0 then begin
        tr.dir <- -tr.dir;
        tr.confidence <- 1
      end
      else if delta <> 0 then tr.confidence <- max 0 (tr.confidence - 1);
      tr.last_line <- line_off;
      if tr.confidence >= confirm then begin
        (* Confirmed stream: prefetch [degree] lines ahead, staying
           within the page (real prefetchers stop at page boundaries). *)
        let rec fetch k acc =
          if k > t.degree then List.rev acc
          else begin
            let next = line_off + (k * tr.dir) in
            if next < 0 || next >= lines_per_page then List.rev acc
            else begin
              let pf = (page * Defs.page_size) + (next * line) in
              fetch (k + 1) (pf :: acc)
            end
          end
        in
        let pfs = fetch 1 [] in
        Tp_obs.Counter.add t.st_issued (List.length pfs);
        pfs
      end
      else []
    end
    else begin
      (* Allocation filter: an incumbent stream with confidence resists
         immediate replacement (real prefetchers require repeated
         misses in a new region before stealing a trained tracker).
         The filter is what makes tracker state observable across a
         domain switch: a tracker the previous domain degraded to zero
         confidence re-allocates instantly, while an intact one costs
         extra unprefetched accesses to displace — a per-page timing
         difference the next domain can read back. *)
      if tr.ptag <> -1 && tr.confidence > 0 then begin
        Tp_obs.Counter.incr t.st_filtered;
        tr.confidence <- tr.confidence - 1;
        []
      end
      else begin
        Tp_obs.Counter.incr t.st_allocs;
        tr.ptag <- ptag;
        tr.last_line <- line_off;
        tr.dir <- 1;
        tr.confidence <- 0;
        []
      end
    end
  end

let trained_slots t =
  Array.fold_left
    (fun acc tr -> if tr.ptag <> -1 && tr.confidence >= confirm then acc + 1 else acc)
    0 t.table

let hard_reset t =
  Tp_obs.Counter.incr t.st_resets;
  Array.iter
    (fun tr ->
      tr.ptag <- -1;
      tr.last_line <- 0;
      tr.dir <- 1;
      tr.confidence <- 0)
    t.table

let state_words t = (4 * Array.length t.table) + 1 + Blob.counters_words t.st

let save_state t blob off =
  let n = Array.length t.table in
  for i = 0 to n - 1 do
    let tr = t.table.(i) in
    let o = off + (4 * i) in
    blob.{o} <- tr.ptag;
    blob.{o + 1} <- tr.last_line;
    blob.{o + 2} <- tr.dir;
    blob.{o + 3} <- tr.confidence
  done;
  let off = off + (4 * n) in
  blob.{off} <- (if t.enabled then 1 else 0);
  Blob.save_counters blob (off + 1) t.st

let load_state t blob off =
  let n = Array.length t.table in
  for i = 0 to n - 1 do
    let tr = t.table.(i) in
    let o = off + (4 * i) in
    tr.ptag <- blob.{o};
    tr.last_line <- blob.{o + 1};
    tr.dir <- blob.{o + 2};
    tr.confidence <- blob.{o + 3}
  done;
  let off = off + (4 * n) in
  t.enabled <- blob.{off} <> 0;
  Blob.load_counters blob (off + 1) t.st
