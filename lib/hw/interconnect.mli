(** Stateless-interconnect (bus) contention model.

    The paper's taxonomy (§2.2 item 2) distinguishes stateful resources
    from stateless interconnects: time-sharing cannot leak through a
    bus, but {e concurrent} access can, as a reduction in available
    bandwidth.  No mainstream hardware supports bandwidth partitioning,
    which is why the paper's threat scenarios exclude cross-core covert
    channels; we model the bus anyway so the limitation is demonstrable
    (see the interconnect tests and the channel-taxonomy example).

    The model: each core's issue {e rate} is estimated from its own
    inter-transaction gaps (cores have independent clocks, so no
    shared wall-clock window exists); a transaction's queueing delay
    grows once the combined offered rate exceeds the bus's service
    rate.  [partitioned] mode measures each core against its own
    static share — the hypothetical hardware fix — so other cores'
    traffic cannot influence its delay. *)

type mode =
  | Open  (** no bandwidth control: the contemporary-hardware default *)
  | Partitioned
      (** hypothetical exact bandwidth partition: each core measured
          against its own static share only *)
  | Mba of float
      (** Intel memory-bandwidth-allocation style {e approximate}
          throttling: each core's rate is (loosely) capped at the given
          fraction of the service rate, but cross-core contention still
          reaches the delay — which is why the paper's footnote 5 calls
          MBA "insufficient for preventing covert channels" *)

type t

val create : ?name:string -> cores:int -> window:int -> slots_per_window:int -> unit -> t
(** The service rate is [slots_per_window / window] transactions per
    cycle.  [name] labels the performance-counter set. *)

val counters : t -> Tp_obs.Counter.set
(** Transaction/stall counters (observability only). *)

val set_mode : t -> mode -> unit

val set_partitioned : t -> bool -> unit
(** [set_partitioned t b] = [set_mode t (if b then Partitioned else
    Open)] (compatibility shorthand). *)

val record : t -> core:int -> now:int -> int
(** Record one transaction by [core] (the [now] argument is unused by
    the load model but kept so callers need no clock plumbing);
    returns the queueing delay in cycles to add to that transaction's
    latency. *)

val window_traffic : t -> core:int -> int
(** The core's current estimated bus utilisation, in per mille of the
    service rate (diagnostics only). *)

val drain : t -> unit
(** Clear all load state (models a quiescent gap much longer than the
    bus's queueing horizon). *)

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
