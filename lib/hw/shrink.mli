(** Shrunken platforms and a machine-level switch scrub, for
    small-scope model checking (Tp_analysis's [certify --exhaustive]).

    {!tiny} keeps the parent platform's hierarchy shape but makes every
    structure small enough that all two-domain schedules of a short
    horizon can be enumerated.  Guarantees:

    - every physically-indexed cache has exactly {e two} page colours,
      and its sets line up with page parity (even pages are one colour,
      odd pages the other) — so a parity placement reproduces a
      2-colour allocation;
    - TLBs are fully associative (page-granular contention survives the
      shrink);
    - no stream prefetcher: its tracker state has no architected flush
      (the Section 5.3.2 residual) and sits outside the five certified
      channels. *)

val tiny : Platform.t -> Platform.t

val variants : Platform.t -> Platform.t list
(** [tiny p] plus a few more small geometries (different ways/sets),
    for property tests that sweep machine configurations. *)

(** {1 Schedule enumeration} *)

val schedule_letters : string
(** Letter assigned to each domain index: ['A'] (attacker) is domain 0,
    ['V'] (victim) domain 1, ['D'] (deterministic public neighbour)
    domain 2. *)

val schedules : domains:int -> horizon:int -> string list
(** All [domains^horizon] turn orders of length [horizon] over the
    first [domains] letters of {!schedule_letters}, in a fixed order.
    With [domains = 2] this reproduces the original two-domain
    enumeration bit for bit (schedule [i] spells bit [j] of [i] as
    ['V'] when set).  Raises [Invalid_argument] outside
    [2 <= domains <= 3] or [1 <= horizon <= 16]. *)

(** {1 Switch scrub}

    The machine-level image of the domain-switch flush sequence:
    which state the switch scrubs, as plain flags (lib/hw cannot see
    {!Tp_kernel.Config}). *)

type scrub = {
  sc_flush_l1 : bool;
  sc_flush_l2 : bool;
  sc_flush_llc : bool;  (** covers the whole inclusive hierarchy *)
  sc_flush_tlb : bool;
  sc_flush_bp : bool;
  sc_close_dram : bool;  (** hypothetical precharge-all *)
}

val no_scrub : scrub

val dram_close_cost : int
(** Fixed cost of the precharge-all, matching
    [Tp_kernel.Domain_switch.dram_close_cost]. *)

val apply : Machine.t -> core:int -> scrub -> int
(** Perform the scrub on the machine; returns the cycles charged.
    Mirrors [Tp_kernel.Domain_switch]'s flush ordering ([flush_llc]
    subsumes the private levels). *)

val bound : Platform.t -> scrub -> int
(** Worst-case cost of {!apply} from {!Bounds}: dominates the exact
    cost of any scrub on any reachable machine state (the
    Bounds-domination property test exercises this). *)

(** {1 Lifecycle operations}

    Machine-level images of the kernel clone/destroy paths, used by the
    per-path exhaustive cross-check: the neutral neighbour turn is
    replaced with the operation under test.  Both are sequential sweeps
    so the analytic [*_op_bound] (built from {!Bounds.sweep}) dominates
    them on any reachable machine state. *)

val clone_op : Machine.t -> core:int -> asid:int -> src:int -> dst:int -> int
(** The coloured-pool copy loop of [Clone.clone], shrunk to one page:
    a read sweep of the page at [src] followed by a write sweep of the
    page at [dst].  Returns the cycles charged. *)

val clone_op_bound : Platform.t -> int
(** Analytic worst case of {!clone_op}. *)

val destroy_op : Machine.t -> core:int -> asid:int -> barrier:int -> int
(** The teardown of [Clone.destroy], shrunk: one write to the IPI
    barrier line at [barrier], a TLB shootdown, and the fixed
    {!Bounds.ipi_cost} stall.  Returns the cycles charged. *)

val destroy_op_bound : Platform.t -> int
(** Analytic worst case of {!destroy_op}. *)
