(* Record-once / replay-many victim traces.

   A stream records the *identity* of every operation a domain issued
   through the Machine API — not its latency or its cache outcome — as
   fixed-width records in a growable flat Blob.  Replaying re-executes
   the recorded operations against any machine of the same platform,
   so the machine-state evolution (and hence every latency, counter
   and eviction) is exactly what live execution of the same body would
   have produced: bit-identity is by construction, and the replay loop
   is branch-light and allocation-free per op.

   Streams are immutable once recorded (the recorder appends, replay
   only reads), so one stream can be replayed concurrently from many
   domains. *)

(* One record is [tag; w1; w2; w3; w4]. *)
let stride = 5

let tag_read = 0
let tag_write = 1
let tag_fetch = 2
let tag_cond_branch = 3
let tag_jump = 4
let tag_clflush = 5
let tag_add_cycles = 6
let tag_idle = 7

(* Crossed once per replayed stream, so `tpsim faults` can strike the
   replay path and prove the trial loop degrades to live execution. *)
let point_step = "replay_step"
let () = Tp_fault.Fault.register point_step

type t = {
  mutable data : Blob.t;
  mutable len : int; (* words in use *)
  mutable poisoned : bool;
  mutable digest : string option; (* cached; invalidated by appends *)
}

let create ?(initial_ops = 64) () =
  {
    data = Blob.create (stride * max 1 initial_ops);
    len = 0;
    poisoned = false;
    digest = None;
  }

let clear t =
  t.len <- 0;
  t.poisoned <- false;
  t.digest <- None

let length t = t.len / stride
let poison t =
  t.poisoned <- true;
  t.digest <- None
let poisoned t = t.poisoned

(* A usable stream is an unpoisoned one that ends in the idle marker:
   the recorded body ran to completion (idled out its slice) rather
   than being cut short by preemption or a kernel fault. *)
let complete t =
  (not t.poisoned)
  && t.len >= stride
  && t.data.{t.len - stride} = tag_idle

let grow t =
  let d = Blob.create (2 * Blob.length t.data) in
  Bigarray.Array1.blit
    (Bigarray.Array1.sub t.data 0 t.len)
    (Bigarray.Array1.sub d 0 t.len);
  t.data <- d

let append t tag w1 w2 w3 w4 =
  if t.len + stride > Blob.length t.data then grow t;
  let d = t.data and off = t.len in
  d.{off} <- tag;
  d.{off + 1} <- w1;
  d.{off + 2} <- w2;
  d.{off + 3} <- w3;
  d.{off + 4} <- w4;
  t.len <- t.len + stride;
  t.digest <- None

let append_access t ~kind ~vaddr ~paddr ~root_pa ~leaf_pa =
  let tag =
    match kind with
    | Defs.Read -> tag_read
    | Defs.Write -> tag_write
    | Defs.Fetch -> tag_fetch
  in
  append t tag vaddr paddr root_pa leaf_pa

let append_cond_branch t ~vaddr ~paddr ~taken =
  append t tag_cond_branch vaddr paddr (if taken then 1 else 0) 0

let append_jump t ~vaddr ~paddr ~target = append t tag_jump vaddr paddr target 0
let append_clflush t ~paddr = append t tag_clflush paddr 0 0 0
let append_add_cycles t n = append t tag_add_cycles n 0 0 0
let append_idle t = append t tag_idle 0 0 0 0

let digest t =
  match t.digest with
  | Some d -> d
  | None ->
      let d =
        (if t.poisoned then "poisoned:" else "")
        ^ Blob.digest_sub t.data ~len:t.len
      in
      t.digest <- Some d;
      d

let replay m ~core ~asid ~llc_ways ~until ?on_latency t =
  Tp_fault.Fault.hit point_step;
  let data = t.data in
  (* The page-table walk of a replayed access reads the very PT lines
     the recorder resolved, through the same kernel window the live
     walker uses; two shared cells instead of per-op closures keep the
     loop allocation-free. *)
  let root = ref (-1) and leaf = ref (-1) in
  let walk () =
    let lat =
      Machine.access m ~core ~asid:0 ~global:true ~vaddr:!root ~paddr:!root
        ~kind:Defs.Read ()
    in
    if !leaf >= 0 then
      lat
      + Machine.access m ~core ~asid:0 ~global:true ~vaddr:!leaf ~paddr:!leaf
          ~kind:Defs.Read ()
    else lat
  in
  let note = match on_latency with None -> ignore | Some f -> f in
  let n = t.len in
  let i = ref 0 in
  let res = ref `Incomplete in
  let running = ref true in
  while !running && !i < n do
    let off = !i in
    let tag = data.{off} in
    if tag = tag_idle then begin
      res := `Done_idle;
      running := false
    end
    else begin
      let lat =
        if tag <= tag_fetch then begin
          let kind =
            if tag = tag_read then Defs.Read
            else if tag = tag_write then Defs.Write
            else Defs.Fetch
          in
          root := data.{off + 3};
          leaf := data.{off + 4};
          Machine.access m ~core ~asid ~global:false ~llc_ways ~walk
            ~vaddr:data.{off + 1} ~paddr:data.{off + 2} ~kind ()
        end
        else if tag = tag_cond_branch then
          Machine.cond_branch m ~core ~asid ~vaddr:data.{off + 1}
            ~paddr:data.{off + 2}
            ~taken:(data.{off + 3} <> 0)
        else if tag = tag_jump then
          Machine.jump m ~core ~asid ~vaddr:data.{off + 1}
            ~paddr:data.{off + 2} ~target:data.{off + 3}
        else if tag = tag_clflush then
          Machine.clflush m ~core ~paddr:data.{off + 1}
        else begin
          Machine.add_cycles m ~core data.{off + 1};
          data.{off + 1}
        end
      in
      note lat;
      i := !i + stride;
      (* The slice-budget check live execution performs after every
         operation (Uctx.post): the op that crosses the boundary still
         runs in full, then execution stops. *)
      if Machine.cycles m ~core >= until then begin
        res := `Budget;
        running := false
      end
    end
  done;
  (!res : [ `Done_idle | `Budget | `Incomplete ])
