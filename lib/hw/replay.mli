(** Record-once / replay-many victim op streams.

    A {!t} records the {e identity} of every operation a domain issues
    through the {!Machine} API — vaddr/paddr/kind for accesses (plus
    the page-table lines its walk resolved), direction for branches,
    targets for jumps, cycle counts for pure compute — as fixed-width
    records in a growable flat {!Blob.t}.  It does {e not} record
    latencies or cache outcomes: replaying re-executes the operations
    against a machine, so state evolution, latencies and counters are
    exactly those of live execution.  Bit-identity is by construction
    and is additionally enforced by digest gates in the test suite and
    [@ci].

    Streams are position-independent (no absolute times), so a stream
    recorded against a freshly booted system is valid against any
    other identically booted system of the same platform.  Once
    recorded a stream is immutable; {!replay} only reads, so many
    domains can replay one stream concurrently. *)

type t

val create : ?initial_ops:int -> unit -> t
val clear : t -> unit

val length : t -> int
(** Number of recorded operations. *)

(** {2 Recording} *)

val append_access :
  t ->
  kind:Defs.access_kind ->
  vaddr:int ->
  paddr:int ->
  root_pa:int ->
  leaf_pa:int ->
  unit
(** [leaf_pa = -1] when the walk reads no leaf page-table line. *)

val append_cond_branch : t -> vaddr:int -> paddr:int -> taken:bool -> unit
val append_jump : t -> vaddr:int -> paddr:int -> target:int -> unit
val append_clflush : t -> paddr:int -> unit
val append_add_cycles : t -> int -> unit

val append_idle : t -> unit
(** Marks the recorded body as done with its slice: live execution
    idled from here to the slice boundary.  Replay collapses the idle
    span into one clock advance (idling has no machine effect beyond
    the clock), which is where most of the replay speedup of
    idle-heavy victims comes from. *)

val poison : t -> unit
(** Mark the stream as unreplayable.  Called by the recorder when the
    recorded body does something whose machine effect is not captured
    by the op stream (reads the clock, enters the kernel, …). *)

val poisoned : t -> bool

val complete : t -> bool
(** An unpoisoned stream that ends in the idle marker — i.e. the
    recorded body ran a full slice to quiescence.  Only complete
    streams may be replayed in place of live execution. *)

val digest : t -> string
(** Content digest of the recorded stream (cached, invalidated by
    appends); poisoned streams digest distinctly. *)

(** {2 Replay} *)

val replay :
  Machine.t ->
  core:int ->
  asid:int ->
  llc_ways:int ->
  until:int ->
  ?on_latency:(int -> unit) ->
  t ->
  [ `Done_idle | `Budget | `Incomplete ]
(** Re-execute the recorded operations on [core] of [m], stopping
    after the first op that pushes the core clock to [until] or later
    (the same post-op budget check live execution performs).
    [`Done_idle]: the idle marker was reached with budget to spare —
    the caller should advance the clock to the slice boundary.
    [`Budget]: the budget check fired mid-stream.  [`Incomplete]: the
    stream ran out without an idle marker (only possible on incomplete
    streams).  [on_latency] observes each replayed op's latency, in
    op order — the hook the latency-equality property tests use.
    Crosses the {!point_step} fault point once per call. *)

val point_step : string
(** ["replay_step"]: fault-injection point crossed at replay entry. *)
