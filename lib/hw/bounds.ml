(* Analytic worst-case cost bounds for the time-protection switch path.

   Every bound here is derived from the same Platform geometry and
   Machine cost constants the simulator charges, so the numbers cannot
   drift from the model.  The bounds are conservative (an adversary
   cannot make the corresponding operation cost more), but they are not
   wildly loose: a pad sized from them stays within the empirical
   calibration envelope (see EXPERIMENTS.md). *)

let lines_of ~line bytes = (bytes + line - 1) / line
let pages_of bytes = (bytes + Defs.page_size - 1) / Defs.page_size

let cache_lines (g : Cache.geometry) = g.Cache.size / g.Cache.line

(* Flushing a cache costs [inval] per resident line plus [wb] per dirty
   line (Machine.flush_cache_cost).  Worst case: full occupancy, and
   for data caches every line dirty.  Instruction caches are never
   written, so their lines are always clean. *)
let flush_cost ~dirty g =
  let n = cache_lines g in
  (n * Machine.inval_cost_per_line) + if dirty then n * Machine.wb_cost_per_line else 0

type sweep = {
  sw_lines : int;
  sw_pages : int;
  sw_rows : int;
  sw_cycles : int;
}

let sweep ?(fetch = false) ?(coloured = false) (p : Platform.t) ~bytes () =
  let line = p.Platform.line in
  let n = lines_of ~line bytes in
  let pages = pages_of bytes in
  let row_bytes = 1 lsl p.Platform.dram.Dram.row_bits in
  let rows = (bytes + row_bytes - 1) / row_bytes in
  (* Hierarchy lookup latency charged on every line regardless of where
     it is finally served from. *)
  let lat_l2 = match p.Platform.l2 with Some _ -> p.Platform.lat_l2 | None -> 0 in
  let base = n * (p.Platform.lat_l1 + lat_l2 + p.Platform.lat_llc) in
  (* DRAM component of a sequential sweep.  With a stream prefetcher
     the demand stream only stalls for the first line of each DRAM row
     (the prefetcher runs ahead within a row) but pays the prefetch
     issue cost per line; without one, every line takes an open-row
     access plus a row-miss penalty per row crossing. *)
  let dram_all =
    let d = p.Platform.dram in
    if p.Platform.prefetcher_slots > 0 then
      (rows * d.Dram.t_miss) + (n * Machine.prefetch_issue_cost)
    else (n * d.Dram.t_hit) + (rows * (d.Dram.t_miss - d.Dram.t_hit))
  in
  (* Under cache colouring an adversary domain holds at most half the
     colours (with >= 2 domains), so at most half the swept lines can
     have been evicted to DRAM; the rest are LLC hits, whose latency is
     already in [base]. *)
  let dram = if coloured then dram_all / 2 else dram_all in
  (* Worst case every page of the sweep misses the whole TLB hierarchy
     and pays a page-table walk. *)
  let tlb = pages * p.Platform.tlb_walk in
  (* An instruction-side sweep through a chain of jumps mispredicts
     every one of them (the manual-flush property, §4.3). *)
  let fetch_extra = if fetch then n * p.Platform.mispredict_penalty else 0 in
  {
    sw_lines = n;
    sw_pages = pages;
    sw_rows = rows;
    sw_cycles = base + dram + tlb + fetch_extra;
  }

let sweep_cycles ?fetch ?coloured p ~bytes () =
  (sweep ?fetch ?coloured p ~bytes ()).sw_cycles

let l1_flush_hw_bound (p : Platform.t) =
  flush_cost ~dirty:true p.Platform.l1d + flush_cost ~dirty:false p.Platform.l1i

(* x86 manual flush: one load per line of an L1-D-sized buffer, then a
   chain of mispredicted jumps through an L1-I-sized one.  The buffers
   live in the (coloured) kernel image. *)
let l1_flush_manual_bound ?coloured (p : Platform.t) =
  sweep_cycles ?coloured p ~bytes:p.Platform.l1d.Cache.size ()
  + sweep_cycles ~fetch:true ?coloured p ~bytes:p.Platform.l1i.Cache.size ()

let l1_flush_bound ?coloured (p : Platform.t) =
  if p.Platform.has_l1_flush_instr then l1_flush_hw_bound p
  else l1_flush_manual_bound ?coloured p

let l2_flush_bound (p : Platform.t) =
  match p.Platform.l2 with None -> 0 | Some g -> flush_cost ~dirty:true g

let llc_flush_bound (p : Platform.t) = flush_cost ~dirty:true p.Platform.llc
let tlb_flush_bound (_ : Platform.t) = Machine.tlb_flush_cost
let bp_flush_bound (_ : Platform.t) = Machine.bp_flush_cost

(* A demand access that allocates can evict a dirty victim at every
   cache level it passes through (Machine charges wb_cost_per_line per
   level on eviction).  The flush bounds above charge their own
   writebacks; a sweep of [lines] demand accesses must also budget the
   victims'. *)
let hierarchy_levels (p : Platform.t) =
  2 + match p.Platform.l2 with Some _ -> 1 | None -> 0

let eviction_wb_bound (p : Platform.t) ~lines =
  lines * hierarchy_levels p * Machine.wb_cost_per_line

(* Fixed costs of the kernel lifecycle operations.  This is the single
   table both sides read: Tp_kernel.Domain_switch / Tp_kernel.Clone
   charge these exact constants when executing, and the analytic
   envelopes here and in Tp_analysis.Lint sum the same names — so the
   executed sequence and its certified bound cannot silently drift. *)

let lock_cost = 30
let timer_reprogram_cost = 60
let return_cost = 40
let dram_close_cost = 100

(* Lock acquire + release, timer reprogram, return-from-kernel: the
   unconditional per-switch overhead outside any flush or sweep. *)
let switch_fixed_overhead = (2 * lock_cost) + timer_reprogram_cost + return_cost

(* Inter-processor interrupt round trip: the destroy path stalls both
   the initiating and each remote core for one IPI while remote TLBs
   are shot down. *)
let ipi_cost = 1500

(* Capability/registry bookkeeping charged at the end of a destroy. *)
let destroy_bookkeeping_cost = 400
