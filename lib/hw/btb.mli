(** Branch target buffer model.

    A set-associative structure keyed by branch instruction address,
    storing the predicted target.  A taken branch whose entry is absent
    (or whose stored target differs) costs a misprediction; executing a
    branch installs/updates its entry.  The receiver of the BTB channel
    (§5.3.2) senses the sender's footprint as extra mispredictions on
    its own probe branches. *)

type geometry = { entries : int; ways : int }

val index_shift : int
(** Branch addresses are indexed at 4-byte granularity. *)

val geometry_sets : geometry -> int
(** Number of sets ([entries / ways]). *)

val set_of_addr : geometry -> int -> int
(** The pure index hash [(addr lsr index_shift) land (sets - 1)] — the
    same placement function {!branch} uses, exposed so the certifier
    can fold a lifted branch trace through it. *)

type t

val create : ?name:string -> geometry -> t
(** [name] labels the BTB's performance-counter set. *)

val counters : t -> Tp_obs.Counter.set
(** Predict/mispredict/flush counters (observability only). *)

type result = Predicted | Mispredicted

val branch : t -> addr:int -> target:int -> result
(** Execute a taken branch at [addr] jumping to [target]. *)

val flush : t -> unit
(** Model of an indirect-branch-control (IBC) style BTB invalidation. *)

val valid_entries : t -> int

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
