type indexing = Virtual | Physical

type geometry = { size : int; ways : int; line : int; indexing : indexing }

let sets g = g.size / (g.ways * g.line)
let colours g = max 1 (sets g * g.line / Defs.page_size)

type t = {
  g : geometry;
  n_sets : int;
  line_bits : int;
  (* Flat arrays indexed by set * ways + way. tag = -1 means invalid. *)
  tags : int array;
  dirty : bool array;
  age : int array;
  mutable clock : int;
  mutable n_dirty : int;
  mutable n_valid : int;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_hits : Tp_obs.Counter.t;
  st_misses : Tp_obs.Counter.t;
  st_writebacks : Tp_obs.Counter.t;
  st_prefetch_fills : Tp_obs.Counter.t;
  st_invals : Tp_obs.Counter.t;
  st_flushes : Tp_obs.Counter.t;
  st_flush_writebacks : Tp_obs.Counter.t;
}

let create ?(name = "cache") g =
  assert (Defs.is_pow2 g.size && Defs.is_pow2 g.ways && Defs.is_pow2 g.line);
  assert (g.size >= g.ways * g.line);
  let n_sets = sets g in
  let n = n_sets * g.ways in
  let st = Tp_obs.Counter.make_set name in
  (* Bound outside the record so the counters are declared (and hence
     printed) in this order. *)
  let st_hits = Tp_obs.Counter.counter st "hits" in
  let st_misses = Tp_obs.Counter.counter st "misses" in
  let st_writebacks = Tp_obs.Counter.counter st "writebacks" in
  let st_prefetch_fills = Tp_obs.Counter.counter st "prefetch_fills" in
  let st_invals = Tp_obs.Counter.counter st "invalidations" in
  let st_flushes = Tp_obs.Counter.counter st "flushes" in
  let st_flush_writebacks = Tp_obs.Counter.counter st "flush_writebacks" in
  {
    g;
    n_sets;
    line_bits = Defs.log2 g.line;
    tags = Array.make n (-1);
    dirty = Array.make n false;
    age = Array.make n 0;
    clock = 0;
    n_dirty = 0;
    n_valid = 0;
    st;
    st_hits;
    st_misses;
    st_writebacks;
    st_prefetch_fills;
    st_invals;
    st_flushes;
    st_flush_writebacks;
  }

let counters t = t.st

let geometry t = t.g

let set_of t ~vaddr ~paddr =
  let index_addr = match t.g.indexing with Virtual -> vaddr | Physical -> paddr in
  (index_addr lsr t.line_bits) land (t.n_sets - 1)

(* The tag is the full physical line address; since we never need to
   reconstruct set/tag splits this is simplest and collision-free. *)
let tag_of t ~paddr = paddr lsr t.line_bits

type result = Hit | Miss of { evicted_dirty : bool; evicted : int }

let find_way t set tag =
  let base = set * t.g.ways in
  let rec go w =
    if w = t.g.ways then -1
    else if t.tags.(base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

(* LRU victim within the ways allowed by [mask] (a bitmask over way
   indices); invalid allowed ways are preferred outright. *)
let lru_way t set mask =
  let base = set * t.g.ways in
  let best = ref (-1) in
  for w = 0 to t.g.ways - 1 do
    if mask land (1 lsl w) <> 0 then begin
      let i = base + w in
      if !best = -1 then best := i
      else if t.tags.(i) = -1 then begin
        if t.tags.(!best) <> -1 || t.age.(i) < t.age.(!best) then best := i
      end
      else if t.tags.(!best) <> -1 && t.age.(i) < t.age.(!best) then best := i
    end
  done;
  assert (!best >= 0);
  !best

let touch t i =
  t.clock <- t.clock + 1;
  t.age.(i) <- t.clock

let alloc t set tag ~dirty ~mask =
  let i = lru_way t set mask in
  let evicted_dirty = t.tags.(i) <> -1 && t.dirty.(i) in
  let evicted = if t.tags.(i) = -1 then -1 else t.tags.(i) lsl t.line_bits in
  if evicted_dirty then Tp_obs.Counter.incr t.st_writebacks;
  if t.tags.(i) = -1 then t.n_valid <- t.n_valid + 1;
  if evicted_dirty then t.n_dirty <- t.n_dirty - 1;
  t.tags.(i) <- tag;
  t.dirty.(i) <- dirty;
  if dirty then t.n_dirty <- t.n_dirty + 1;
  touch t i;
  (evicted_dirty, evicted)

let access_masked t ~alloc_ways ~vaddr ~paddr ~write =
  let mask =
    let m = alloc_ways land ((1 lsl t.g.ways) - 1) in
    assert (m <> 0);
    m
  in
  let set = set_of t ~vaddr ~paddr in
  let tag = tag_of t ~paddr in
  let i = find_way t set tag in
  if i >= 0 then begin
    Tp_obs.Counter.incr t.st_hits;
    touch t i;
    if write && not t.dirty.(i) then begin
      t.dirty.(i) <- true;
      t.n_dirty <- t.n_dirty + 1
    end;
    Hit
  end
  else begin
    Tp_obs.Counter.incr t.st_misses;
    let evicted_dirty, evicted = alloc t set tag ~dirty:write ~mask in
    Miss { evicted_dirty; evicted }
  end

let access t ~vaddr ~paddr ~write =
  access_masked t ~alloc_ways:max_int ~vaddr ~paddr ~write

let probe t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  find_way t set (tag_of t ~paddr) >= 0

let insert_clean t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  let tag = tag_of t ~paddr in
  let i = find_way t set tag in
  if i >= 0 then Hit
  else begin
    Tp_obs.Counter.incr t.st_prefetch_fills;
    let mask = (1 lsl t.g.ways) - 1 in
    let evicted_dirty, evicted = alloc t set tag ~dirty:false ~mask in
    Miss { evicted_dirty; evicted }
  end

let invalidate_line t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  let i = find_way t set (tag_of t ~paddr) in
  if i >= 0 then begin
    Tp_obs.Counter.incr t.st_invals;
    if t.dirty.(i) then t.n_dirty <- t.n_dirty - 1;
    t.dirty.(i) <- false;
    t.tags.(i) <- -1;
    t.n_valid <- t.n_valid - 1
  end

let flush t =
  let wb = t.n_dirty in
  Tp_obs.Counter.incr t.st_flushes;
  Tp_obs.Counter.add t.st_flush_writebacks wb;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0;
  t.n_dirty <- 0;
  t.n_valid <- 0;
  wb

let dirty_lines t = t.n_dirty
let valid_lines t = t.n_valid

let lines_in_set t set =
  let base = set * t.g.ways in
  let c = ref 0 in
  for w = 0 to t.g.ways - 1 do
    if t.tags.(base + w) <> -1 then incr c
  done;
  !c

let capacity_lines t = t.n_sets * t.g.ways

let pp_geometry ppf g =
  Format.fprintf ppf "%dKiB %d-way %dB-line (%d sets, %d colours, %s-indexed)"
    (g.size / 1024) g.ways g.line (sets g) (colours g)
    (match g.indexing with Virtual -> "virtually" | Physical -> "physically")
