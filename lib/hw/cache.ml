type indexing = Virtual | Physical

type geometry = { size : int; ways : int; line : int; indexing : indexing }

let sets g = g.size / (g.ways * g.line)
let colours g = max 1 (sets g * g.line / Defs.page_size)

type t = {
  g : geometry;
  n_sets : int;
  n_ways : int; (* copy of g.ways, one load instead of two on the hot path *)
  way_mask : int; (* (1 lsl ways) - 1 *)
  line_bits : int;
  (* Flat arrays indexed by set * ways + way. tag = -1 means invalid. *)
  tags : int array;
  dirty : bool array;
  age : int array;
  mutable clock : int;
  mutable n_dirty : int;
  mutable n_valid : int;
  (* Victim of the last allocating miss, so the allocation-free access
     variants can report evictions without boxing a result. *)
  mutable ev_line : int;
  mutable ev_dirty : bool;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_hits : Tp_obs.Counter.t;
  st_misses : Tp_obs.Counter.t;
  st_writebacks : Tp_obs.Counter.t;
  st_prefetch_fills : Tp_obs.Counter.t;
  st_invals : Tp_obs.Counter.t;
  st_flushes : Tp_obs.Counter.t;
  st_flush_writebacks : Tp_obs.Counter.t;
}

let create ?(name = "cache") g =
  assert (Defs.is_pow2 g.size && Defs.is_pow2 g.ways && Defs.is_pow2 g.line);
  assert (g.size >= g.ways * g.line);
  let n_sets = sets g in
  let n = n_sets * g.ways in
  let st = Tp_obs.Counter.make_set name in
  (* Bound outside the record so the counters are declared (and hence
     printed) in this order. *)
  let st_hits = Tp_obs.Counter.counter st "hits" in
  let st_misses = Tp_obs.Counter.counter st "misses" in
  let st_writebacks = Tp_obs.Counter.counter st "writebacks" in
  let st_prefetch_fills = Tp_obs.Counter.counter st "prefetch_fills" in
  let st_invals = Tp_obs.Counter.counter st "invalidations" in
  let st_flushes = Tp_obs.Counter.counter st "flushes" in
  let st_flush_writebacks = Tp_obs.Counter.counter st "flush_writebacks" in
  {
    g;
    n_sets;
    n_ways = g.ways;
    way_mask = (1 lsl g.ways) - 1;
    line_bits = Defs.log2 g.line;
    tags = Array.make n (-1);
    dirty = Array.make n false;
    age = Array.make n 0;
    clock = 0;
    n_dirty = 0;
    n_valid = 0;
    ev_line = -1;
    ev_dirty = false;
    st;
    st_hits;
    st_misses;
    st_writebacks;
    st_prefetch_fills;
    st_invals;
    st_flushes;
    st_flush_writebacks;
  }

let counters t = t.st

let geometry t = t.g

let set_of t ~vaddr ~paddr =
  let index_addr = match t.g.indexing with Virtual -> vaddr | Physical -> paddr in
  (index_addr lsr t.line_bits) land (t.n_sets - 1)

(* The tag is the full physical line address; since we never need to
   reconstruct set/tag splits this is simplest and collision-free. *)
let tag_of t ~paddr = paddr lsr t.line_bits

type result = Hit | Miss of { evicted_dirty : bool; evicted : int }

(* Way search, unrolled for the associativities the platforms actually
   use.  unsafe_get is safe by construction: the arrays hold
   [n_sets * ways] entries, [set] is masked by the pow-2 [n_sets - 1]
   and [w < ways], so [base + w] cannot escape. *)
let find_way t set tag =
  let tags = t.tags in
  let base = set * t.n_ways in
  match t.n_ways with
  | 1 -> if Array.unsafe_get tags base = tag then base else -1
  | 2 ->
      if Array.unsafe_get tags base = tag then base
      else if Array.unsafe_get tags (base + 1) = tag then base + 1
      else -1
  | 4 ->
      if Array.unsafe_get tags base = tag then base
      else if Array.unsafe_get tags (base + 1) = tag then base + 1
      else if Array.unsafe_get tags (base + 2) = tag then base + 2
      else if Array.unsafe_get tags (base + 3) = tag then base + 3
      else -1
  | 8 ->
      if Array.unsafe_get tags base = tag then base
      else if Array.unsafe_get tags (base + 1) = tag then base + 1
      else if Array.unsafe_get tags (base + 2) = tag then base + 2
      else if Array.unsafe_get tags (base + 3) = tag then base + 3
      else if Array.unsafe_get tags (base + 4) = tag then base + 4
      else if Array.unsafe_get tags (base + 5) = tag then base + 5
      else if Array.unsafe_get tags (base + 6) = tag then base + 6
      else if Array.unsafe_get tags (base + 7) = tag then base + 7
      else -1
  | ways ->
      let rec go w =
        if w = ways then -1
        else if Array.unsafe_get tags (base + w) = tag then base + w
        else go (w + 1)
      in
      go 0

(* LRU victim within the ways allowed by [mask] (a bitmask over way
   indices).  The first invalid allowed way wins outright — LRU order
   among invalid ways is meaningless, so there is no reason to keep
   scanning once one is found. *)
let lru_way t set mask =
  let base = set * t.n_ways in
  let tags = t.tags and age = t.age in
  let best = ref (-1) in
  let found = ref (-1) in
  let w = ref 0 in
  while !found < 0 && !w < t.n_ways do
    (if mask land (1 lsl !w) <> 0 then begin
       let i = base + !w in
       if Array.unsafe_get tags i = -1 then found := i
       else if !best < 0 || Array.unsafe_get age i < Array.unsafe_get age !best
       then best := i
     end);
    incr w
  done;
  if !found >= 0 then !found
  else begin
    assert (!best >= 0);
    !best
  end

let touch t i =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.age i t.clock

let alloc t set tag ~dirty ~mask ~obs =
  let i = lru_way t set mask in
  let old = Array.unsafe_get t.tags i in
  let evicted_dirty = old <> -1 && Array.unsafe_get t.dirty i in
  t.ev_dirty <- evicted_dirty;
  t.ev_line <- (if old = -1 then -1 else old lsl t.line_bits);
  if evicted_dirty then begin
    if obs then Tp_obs.Counter.incr_unchecked t.st_writebacks;
    t.n_dirty <- t.n_dirty - 1
  end;
  if old = -1 then t.n_valid <- t.n_valid + 1;
  Array.unsafe_set t.tags i tag;
  Array.unsafe_set t.dirty i dirty;
  if dirty then t.n_dirty <- t.n_dirty + 1;
  touch t i

(* Allocation-free access: returns [true] on hit; on miss the victim is
   left in [ev_line]/[ev_dirty] ({!last_evicted}/{!last_evicted_dirty})
   instead of a boxed [Miss] record.  One counters_on check covers
   every recording of the access. *)
let access_masked_fast t ~alloc_ways ~vaddr ~paddr ~write =
  let mask = alloc_ways land t.way_mask in
  assert (mask <> 0);
  let obs = Tp_obs.Ctl.counters_on () in
  let set = set_of t ~vaddr ~paddr in
  let tag = tag_of t ~paddr in
  let i = find_way t set tag in
  if i >= 0 then begin
    if obs then Tp_obs.Counter.incr_unchecked t.st_hits;
    touch t i;
    if write && not (Array.unsafe_get t.dirty i) then begin
      Array.unsafe_set t.dirty i true;
      t.n_dirty <- t.n_dirty + 1
    end;
    true
  end
  else begin
    if obs then Tp_obs.Counter.incr_unchecked t.st_misses;
    alloc t set tag ~dirty:write ~mask ~obs;
    false
  end

let access_fast t ~vaddr ~paddr ~write =
  access_masked_fast t ~alloc_ways:max_int ~vaddr ~paddr ~write

let last_evicted t = t.ev_line
let last_evicted_dirty t = t.ev_dirty

let access_masked t ~alloc_ways ~vaddr ~paddr ~write =
  if access_masked_fast t ~alloc_ways ~vaddr ~paddr ~write then Hit
  else Miss { evicted_dirty = t.ev_dirty; evicted = t.ev_line }

let access t ~vaddr ~paddr ~write =
  access_masked t ~alloc_ways:max_int ~vaddr ~paddr ~write

let probe t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  find_way t set (tag_of t ~paddr) >= 0

let insert_clean_fast t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  let tag = tag_of t ~paddr in
  let i = find_way t set tag in
  if i >= 0 then true
  else begin
    Tp_obs.Counter.incr t.st_prefetch_fills;
    alloc t set tag ~dirty:false ~mask:t.way_mask
      ~obs:(Tp_obs.Ctl.counters_on ());
    false
  end

let insert_clean t ~vaddr ~paddr =
  if insert_clean_fast t ~vaddr ~paddr then Hit
  else Miss { evicted_dirty = t.ev_dirty; evicted = t.ev_line }

let invalidate_line t ~vaddr ~paddr =
  let set = set_of t ~vaddr ~paddr in
  let i = find_way t set (tag_of t ~paddr) in
  if i >= 0 then begin
    Tp_obs.Counter.incr t.st_invals;
    if t.dirty.(i) then t.n_dirty <- t.n_dirty - 1;
    t.dirty.(i) <- false;
    t.tags.(i) <- -1;
    t.n_valid <- t.n_valid - 1
  end

let flush t =
  let wb = t.n_dirty in
  Tp_obs.Counter.incr t.st_flushes;
  Tp_obs.Counter.add t.st_flush_writebacks wb;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0;
  t.n_dirty <- 0;
  t.n_valid <- 0;
  wb

let state_words t =
  (3 * Array.length t.tags) + 5 + Blob.counters_words t.st

let save_state t blob off =
  let off = Blob.save_ints blob off t.tags in
  let off = Blob.save_bools blob off t.dirty in
  let off = Blob.save_ints blob off t.age in
  blob.{off} <- t.clock;
  blob.{off + 1} <- t.n_dirty;
  blob.{off + 2} <- t.n_valid;
  blob.{off + 3} <- t.ev_line;
  blob.{off + 4} <- (if t.ev_dirty then 1 else 0);
  Blob.save_counters blob (off + 5) t.st

let load_state t blob off =
  let off = Blob.load_ints blob off t.tags in
  let off = Blob.load_bools blob off t.dirty in
  let off = Blob.load_ints blob off t.age in
  t.clock <- blob.{off};
  t.n_dirty <- blob.{off + 1};
  t.n_valid <- blob.{off + 2};
  t.ev_line <- blob.{off + 3};
  t.ev_dirty <- blob.{off + 4} <> 0;
  Blob.load_counters blob (off + 5) t.st

let dirty_lines t = t.n_dirty
let valid_lines t = t.n_valid

let lines_in_set t set =
  let base = set * t.g.ways in
  let c = ref 0 in
  for w = 0 to t.g.ways - 1 do
    if t.tags.(base + w) <> -1 then incr c
  done;
  !c

let capacity_lines t = t.n_sets * t.g.ways

let pp_geometry ppf g =
  Format.fprintf ppf "%dKiB %d-way %dB-line (%d sets, %d colours, %s-indexed)"
    (g.size / 1024) g.ways g.line (sets g) (colours g)
    (match g.indexing with Virtual -> "virtually" | Physical -> "physically")
