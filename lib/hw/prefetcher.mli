(** Hardware stream-prefetcher model.

    This module exists to reproduce the paper's central negative result
    (§5.3.2): on Haswell, time protection colours the L2 yet a residual
    channel of ~50 mb remains, which the authors traced to the data
    prefetcher — a state machine that the architecture provides no way
    to flush and that page colouring cannot partition.

    The model: a small table of stream trackers indexed by low page
    bits and tagged by only a {e partial} page tag (as in real
    prefetchers, to keep the structure cheap).  Partial tagging means
    pages of different security domains alias into the same tracker.
    A domain's streaming pattern trains trackers (direction +
    confidence); after a domain switch the trackers retain that state —
    no flush instruction exists — so the next domain's accesses hit
    trained trackers and trigger spurious prefetches whose number
    depends on the previous domain's behaviour.  Each spurious prefetch
    perturbs the L2 (insertion + fill-buffer occupancy), which the
    receiver observes as probe-time variation.

    [set_enabled t false] models the MSR-based disable the paper uses
    in the "full flush" scenario (Viswanathan 2014). *)

type t

val create : ?name:string -> slots:int -> degree:int -> unit -> t
(** [slots] stream trackers, prefetching [degree] lines ahead on a
    confirmed stream.  [slots] must be a power of two.  [name] labels
    the performance-counter set. *)

val counters : t -> Tp_obs.Counter.set
(** Issue/allocation/filter counters (observability only). *)

val set_enabled : t -> bool -> unit

val enabled : t -> bool

val slot_of : t -> page:int -> int
(** Tracker index for a page number: a hash folding in higher address
    bits, so page colouring cannot partition the table (exposed for
    tests). *)

val on_access : t -> paddr:int -> line:int -> int list
(** Notify the prefetcher of a demand access to physical address
    [paddr] (cache line size [line]); returns the physical addresses of
    lines to prefetch (empty when disabled or no stream confirmed). *)

val trained_slots : t -> int
(** Number of trackers whose confidence has reached the prefetch
    threshold; diagnostic only. *)

val hard_reset : t -> unit
(** Clear all tracker state.  Deliberately {e not} part of any flush
    the OS model can invoke: contemporary ISAs expose no such
    operation, which is the paper's hardware-contract complaint.  Used
    only by tests and by explicit "what if hardware helped" ablations. *)

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
