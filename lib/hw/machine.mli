(** Whole-machine composition: cores, private caches, shared LLC, bus,
    DRAM, and cycle accounting.

    All simulated execution goes through this module: a memory access
    walks TLBs and the cache hierarchy, consumes cycles on the issuing
    core, triggers the prefetcher, records bus traffic, and — for the
    inclusive shared LLC — back-invalidates evicted lines from every
    core's private caches (which is what makes cross-core prime&probe
    work, §5.3.3).

    The machine is fully deterministic.  Measurement noise, where an
    experiment wants it, is added by the attack harness on top of the
    cycle-counter readings, never here. *)

type t

val create : Platform.t -> t

val platform : t -> Platform.t

val n_cores : t -> int

val counter_sets : t -> Tp_obs.Counter.set list
(** Every performance-counter set owned by this machine (per-core sets
    named ["c<i>.*"], then ["llc"], ["dram"], ["bus"]).  Creating a
    machine also {!Tp_obs.Counter.register}s them, replacing any
    same-named sets of a previously created machine. *)

(** {1 Time} *)

val cycles : t -> core:int -> int
(** The core's cycle counter (the attacker's clock). *)

val add_cycles : t -> core:int -> int -> unit
(** Advance a core's clock without memory traffic (pure compute). *)

(** {1 Execution} *)

val access :
  t ->
  core:int ->
  asid:int ->
  ?global:bool ->
  ?llc_ways:int ->
  ?walk:(unit -> int) ->
  vaddr:int ->
  paddr:int ->
  kind:Defs.access_kind ->
  unit ->
  int
(** Perform one memory access; returns its latency in cycles, which has
    already been added to the core's clock.  [global] marks the page's
    TLB entry as a global mapping (kernel windows in the unmodified
    kernel).  [llc_ways] is the issuer's CAT class-of-service mask:
    LLC misses may only allocate into those ways (default: all).
    [walk] performs the page-table walk on a full TLB miss and returns
    its latency — the caller supplies it so the walk's memory accesses
    hit the real page-table lines (making page-table cache footprints,
    and hence van-Schaik-style PT side channels, emerge); without it a
    flat platform walk cost is charged. *)

val cond_branch :
  t -> core:int -> asid:int -> vaddr:int -> paddr:int -> taken:bool -> int
(** A conditional branch: instruction fetch plus direction prediction
    through the BHB; returns total latency (added to the clock). *)

val jump :
  t -> core:int -> asid:int -> vaddr:int -> paddr:int -> target:int -> int
(** A taken direct/indirect jump: instruction fetch plus BTB lookup. *)

(** {1 Flush operations (invoked by the kernel model)} *)

val clflush : t -> core:int -> paddr:int -> int
(** Architected single-line flush (x86 [clflush] / Arm v8 [DC CIVAC]):
    evict the line from every cache level on every core (coherence
    makes it global).  Returns the cycles consumed (added to the
    issuing core's clock).  Available to user mode on both modelled
    ISAs — which is what makes Flush+Reload and DRAMA-style attacks
    practical. *)

val flush_l1_hw : t -> core:int -> int
(** Architected L1 I+D flush (Arm DCCISW/ICIALLU).  Returns the cycles
    consumed (invalidate cost + write-back of dirty lines), already
    added to the clock.  Only meaningful when the platform
    [has_l1_flush_instr]. *)

val flush_l2_private : t -> core:int -> int
(** Flush the core's private L2 if it has one (part of a full flush). *)

val flush_llc : t -> core:int -> int
(** Write back and invalidate the shared LLC (the expensive part of
    x86 [wbinvd]); also back-invalidates all cores' private caches. *)

val flush_tlbs : t -> core:int -> int
(** Full TLB invalidation (TLBIALL / invpcid). *)

val flush_branch_predictor : t -> core:int -> int
(** BTB + BHB reset (x86 IBC / Arm BPIALL). *)

(** {1 Component access (kernel model, tests, diagnostics)} *)

val l1d : t -> core:int -> Cache.t
val l1i : t -> core:int -> Cache.t
val l2 : t -> core:int -> Cache.t option
val llc : t -> Cache.t
val dtlb : t -> core:int -> Tlb.t
val itlb : t -> core:int -> Tlb.t
val l2tlb : t -> core:int -> Tlb.t
val btb : t -> core:int -> Btb.t
val bhb : t -> core:int -> Bhb.t
val prefetcher : t -> core:int -> Prefetcher.t option
val bus : t -> Interconnect.t
val dram : t -> Dram.t

val set_prefetcher_enabled : t -> core:int -> bool -> unit
(** Model of the MSR 0x1A4 prefetcher disable (no-op if the platform
    has no prefetcher). *)

(** {1 Snapshot / restore}

    O(state) capture of the {e entire} microarchitectural state — all
    caches' tags/dirty/age, TLBs, BTB/BHB, prefetcher trackers, DRAM
    row buffers, interconnect load estimators, per-core cycle counters
    and every performance-counter value — into one contiguous flat
    int blob.  Restoring rolls the machine back bit-identically, which
    is what lets a trial loop execute a victim once and replay it per
    attacker variant ({!Replay}).  Snapshots are machine-shaped, not
    machine-bound: a snapshot taken on one machine restores onto any
    other machine of the same platform. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** @raise Invalid_argument if the snapshot's platform or state size
    does not match this machine.  Crossing {!point_restore} once per
    component, so fault injection can crash a restore midway; a
    re-restore from the same snapshot is idempotent, so recovery
    leaves no torn state. *)

val snapshot_words : t -> int
(** Size of this machine's snapshot in words. *)

val snapshot_digest : snapshot -> string
(** Content digest (MD5 hex) of the snapshot blob; computed lazily and
    cached.  Equal digests mean bit-identical machine state. *)

val state_digest : t -> string
(** Digest of the machine's current state ([snapshot] + digest) — the
    bit-identity oracle used by the replay gates. *)

val point_restore : string
(** ["snapshot_restore"]: fault-injection point crossed once per
    component during {!restore}. *)

(** {1 Cost-model constants}

    The calibrated constants of the flush cost model, exported so that
    analytic worst-case bounds ({!Bounds}) are derived from the same
    numbers the simulator charges rather than a drifting copy. *)

val inval_cost_per_line : int
(** Tag-walk + invalidate cost per cache line flushed. *)

val wb_cost_per_line : int
(** Write-back cost per dirty line flushed. *)

val tlb_flush_cost : int
(** Fixed cost of a full TLB invalidation. *)

val bp_flush_cost : int
(** Fixed cost of a branch-predictor (BTB + BHB) reset. *)

val prefetch_issue_cost : int
(** Cycles charged to the demand stream per prefetch issued. *)
