(** Branch history buffer / direction predictor model (gshare).

    A global history register of recent branch outcomes indexes (XORed
    with the branch address) a pattern history table of 2-bit saturating
    counters.  The BHB covert channel of Evtyushkin et al. (reproduced
    in §5.3.2) works because the sender's taken/not-taken pattern trains
    counters that the receiver's conditional branches then alias with,
    changing the receiver's misprediction count. *)

type geometry = {
  history_bits : int;  (** length of the global history register *)
  pht_entries : int;  (** pattern history table size; power of two *)
}

val init_counter : int
(** Counter reset value (weakly not-taken). *)

val taken_threshold : int
(** Counters at or above this predict taken. *)

val index_of : geometry -> history:int -> int -> int
(** The pure gshare index hash
    [(history lxor (addr lsr 2)) land (pht_entries - 1)] — the same
    placement function {!branch} uses, exposed so the certifier can
    fold a lifted branch trace through it. *)

type t

val create : ?name:string -> geometry -> t
(** [name] labels the predictor's performance-counter set. *)

val counters : t -> Tp_obs.Counter.set
(** Predict/mispredict/flush counters (observability only). *)

type result = Predicted | Mispredicted

val branch : t -> addr:int -> taken:bool -> result
(** Predict-then-update a conditional branch at [addr]. *)

val flush : t -> unit
(** Clear history and reset all counters to weakly-not-taken. *)

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
