type geometry = { history_bits : int; pht_entries : int }

type t = {
  g : geometry;
  pht : int array; (* 2-bit saturating counters, 0..3; >=2 predicts taken *)
  mutable history : int;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_predicted : Tp_obs.Counter.t;
  st_mispredicted : Tp_obs.Counter.t;
  st_flushes : Tp_obs.Counter.t;
}

(* 2-bit saturating counters: reset value (weakly not-taken) and the
   predict-taken threshold, exposed for the certifier's PHT-interval
   abstraction. *)
let init_counter = 1
let taken_threshold = 2

(* The pure gshare index hash, exposed so the certifier can fold a
   lifted branch trace through the same placement function. *)
let index_of g ~history addr =
  (history lxor (addr lsr 2)) land (g.pht_entries - 1)

let create ?(name = "bhb") g =
  assert (Defs.is_pow2 g.pht_entries);
  assert (g.history_bits > 0 && g.history_bits < 30);
  let st = Tp_obs.Counter.make_set name in
  let st_predicted = Tp_obs.Counter.counter st "predicted" in
  let st_mispredicted = Tp_obs.Counter.counter st "mispredicted" in
  let st_flushes = Tp_obs.Counter.counter st "flushes" in
  { g; pht = Array.make g.pht_entries init_counter; history = 0; st;
    st_predicted; st_mispredicted; st_flushes }

let counters t = t.st

type result = Predicted | Mispredicted

let index t addr = index_of t.g ~history:t.history addr

let branch t ~addr ~taken =
  let i = index t addr in
  let c = t.pht.(i) in
  let predicted_taken = c >= taken_threshold in
  let result = if predicted_taken = taken then Predicted else Mispredicted in
  (match result with
  | Predicted -> Tp_obs.Counter.incr t.st_predicted
  | Mispredicted -> Tp_obs.Counter.incr t.st_mispredicted);
  t.pht.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0))
    land ((1 lsl t.g.history_bits) - 1);
  result

let flush t =
  Tp_obs.Counter.incr t.st_flushes;
  Array.fill t.pht 0 (Array.length t.pht) init_counter;
  t.history <- 0

let state_words t = Array.length t.pht + 1 + Blob.counters_words t.st

let save_state t blob off =
  let off = Blob.save_ints blob off t.pht in
  blob.{off} <- t.history;
  Blob.save_counters blob (off + 1) t.st

let load_state t blob off =
  let off = Blob.load_ints blob off t.pht in
  t.history <- blob.{off};
  Blob.load_counters blob (off + 1) t.st
