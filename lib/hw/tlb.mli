(** Translation look-aside buffer model.

    Set-associative over virtual page numbers, with two features the
    generic {!Cache} lacks and the paper's evaluation depends on:

    - entries are tagged with an ASID and a [global] bit.  Global
      entries (the original seL4 kernel maps the kernel window global)
      hit under any ASID and survive {!flush_asid}.  The colour-ready
      kernel cannot use global kernel mappings, which is what causes
      the Arm IPC slowdown in Table 5 (conflict misses in the 2-way
      L2 TLB of the Cortex A9);
    - a full flush ({!flush_all}) models [TLBIALL]/[invpcid]. *)

type geometry = { entries : int; ways : int }

type t

val create : ?name:string -> geometry -> t
(** [name] labels the TLB's performance-counter set. *)

val geometry : t -> geometry

val counters : t -> Tp_obs.Counter.set
(** Hit/miss/flush counters (observability only, never read by the
    model). *)

type result = Hit | Miss

val access : t -> asid:int -> vpn:int -> global:bool -> result
(** Look up [vpn] under [asid]; on miss, install the translation with
    the given [global] flag, evicting the set's LRU entry. *)

val probe : t -> asid:int -> vpn:int -> bool
(** Presence check without allocation or LRU update. *)

val flush_all : t -> unit

val flush_asid : t -> int -> unit
(** Drop all non-global entries belonging to the ASID. *)

val valid_entries : t -> int

val sets : t -> int

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
