(* Shrunken platform variants for small-scope model checking.

   The exhaustive noninterference check (Tp_analysis.Certify) needs a
   machine small enough that every two-domain schedule can be
   enumerated, yet structurally faithful: the same cache hierarchy
   shape as the parent platform (private L2 present iff the parent has
   one), physically-indexed outer levels that still support two page
   colours, fully-associative tiny TLBs (so page-granular contention is
   observable at all), and a gshare predictor with a short history.

   Two invariants matter for soundness of the shrink:

   - every physically-indexed cache satisfies [sets * line =
     colours * page_size] with [colours = 2], so placing one domain on
     even pages and the other on odd pages is exactly the partition a
     2-colour allocation would produce;
   - the stream prefetcher is absent ([prefetcher_slots = 0]).  Its
     tracker state has no architected flush (the paper's Section 5.3.2
     residual), so it is outside the five certified channels; keeping
     it would make even a fully-flushed machine nondeterministic and
     the small-scope check vacuous. *)

let page = Defs.page_size

let tiny (p : Platform.t) =
  let line = p.Platform.line in
  let l1 =
    { Cache.size = 512; ways = 2; line; indexing = Cache.Virtual }
  in
  (* [size = 2 * ways * page_size] gives [colours = size / (ways *
     page_size) = 2] whatever the line size. *)
  let outer ways =
    { Cache.size = 2 * ways * page; ways; line; indexing = Cache.Physical }
  in
  {
    p with
    Platform.name = p.Platform.name ^ "-shrunk";
    l1d = l1;
    l1i = l1;
    l2 = Option.map (fun _ -> outer 2) p.Platform.l2;
    llc = outer 2;
    (* Fully associative: every page contends with every other, so the
       TLB channel is not accidentally closed by set partitioning. *)
    itlb = { Tlb.entries = 4; ways = 4 };
    dtlb = { Tlb.entries = 4; ways = 4 };
    l2tlb = { Tlb.entries = 8; ways = 8 };
    btb = { Btb.entries = 8; ways = 2 };
    bhb = { Bhb.history_bits = 4; pht_entries = 16 };
    prefetcher_slots = 0;
    prefetcher_degree = 0;
  }

(* Further small geometries for property tests (the Bounds-domination
   QCheck sweeps them): same shape constraints, different sizes and
   associativities. *)
let variants (p : Platform.t) =
  let line = p.Platform.line in
  let t = tiny p in
  let with_l1 ways sets pp =
    let l1 =
      { Cache.size = ways * sets * line; ways; line; indexing = Cache.Virtual }
    in
    { pp with Platform.l1d = l1; l1i = l1 }
  in
  let with_outer ways pp =
    let g =
      { Cache.size = 2 * ways * page; ways; line; indexing = Cache.Physical }
    in
    {
      pp with
      Platform.l2 = Option.map (fun _ -> g) pp.Platform.l2;
      llc = g;
    }
  in
  [
    t;
    with_l1 1 8 t;
    with_l1 4 4 (with_outer 4 t);
    { (with_outer 1 t) with Platform.dtlb = { Tlb.entries = 8; ways = 2 } };
  ]

(* ------------------------------------------------------------------ *)
(* Schedule enumeration                                                *)

(* Letter d of the alphabet acts for domain d.  'A' (the attacker) is
   digit 0 so that, with [domains = 2], schedule i spells bit j of i as
   'V' when set and 'A' when clear — exactly the enumeration the
   original two-domain exhaustive check used, keeping its golden
   counterexamples stable. *)
let schedule_letters = "AVD"

let schedules ~domains ~horizon =
  if domains < 2 || domains > String.length schedule_letters then
    invalid_arg "Shrink.schedules: domains out of range";
  if horizon < 1 || horizon > 16 then
    invalid_arg "Shrink.schedules: horizon out of range";
  let total =
    let rec pow acc n = if n = 0 then acc else pow (acc * domains) (n - 1) in
    pow 1 horizon
  in
  List.init total (fun i ->
      String.init horizon (fun j ->
          let rec digit v k = if k = 0 then v mod domains else digit (v / domains) (k - 1) in
          schedule_letters.[digit i j]))

(* ------------------------------------------------------------------ *)
(* Machine-level switch scrub                                          *)

type scrub = {
  sc_flush_l1 : bool;
  sc_flush_l2 : bool;
  sc_flush_llc : bool;
  sc_flush_tlb : bool;
  sc_flush_bp : bool;
  sc_close_dram : bool;
}

let no_scrub =
  {
    sc_flush_l1 = false;
    sc_flush_l2 = false;
    sc_flush_llc = false;
    sc_flush_tlb = false;
    sc_flush_bp = false;
    sc_close_dram = false;
  }

(* Same fixed cost Tp_kernel.Domain_switch charges for the hypothetical
   precharge-all operation, read from the shared lifecycle cost table. *)
let dram_close_cost = Bounds.dram_close_cost

let apply m ~core s =
  let cost = ref 0 in
  (* Mirrors Tp_kernel.Domain_switch: a full-hierarchy flush runs
     L1 + private L2 + LLC in order, otherwise the requested private
     levels are flushed individually.  At machine scope the architected
     L1 flush is used unconditionally — the x86 manual-flush sequence
     is a kernel-layer construction. *)
  if s.sc_flush_llc then begin
    cost := !cost + Machine.flush_l1_hw m ~core;
    cost := !cost + Machine.flush_l2_private m ~core;
    cost := !cost + Machine.flush_llc m ~core
  end
  else begin
    if s.sc_flush_l1 then cost := !cost + Machine.flush_l1_hw m ~core;
    if s.sc_flush_l2 then cost := !cost + Machine.flush_l2_private m ~core
  end;
  if s.sc_flush_tlb then cost := !cost + Machine.flush_tlbs m ~core;
  if s.sc_flush_bp then cost := !cost + Machine.flush_branch_predictor m ~core;
  if s.sc_close_dram then begin
    Dram.close_all (Machine.dram m);
    Machine.add_cycles m ~core dram_close_cost;
    cost := !cost + dram_close_cost
  end;
  !cost

let bound (p : Platform.t) s =
  (if s.sc_flush_llc then
     Bounds.l1_flush_hw_bound p + Bounds.l2_flush_bound p
     + Bounds.llc_flush_bound p
   else
     (if s.sc_flush_l1 then Bounds.l1_flush_hw_bound p else 0)
     + if s.sc_flush_l2 then Bounds.l2_flush_bound p else 0)
  + (if s.sc_flush_tlb then Bounds.tlb_flush_bound p else 0)
  + (if s.sc_flush_bp then Bounds.bp_flush_bound p else 0)
  + if s.sc_close_dram then dram_close_cost else 0

(* ------------------------------------------------------------------ *)
(* Machine-level lifecycle operations                                  *)

(* The per-path exhaustive check replaces the neutral neighbour turn
   with a machine-level image of the kernel operation under test.  The
   ops are deliberately sequential (whole-page read sweep, then a
   whole-page write sweep) so the analytic bounds below — built from
   the same sequential Bounds.sweep model the pad bound uses — dominate
   them on any reachable machine state. *)

let clone_op m ~core ~asid ~src ~dst =
  let p = Machine.platform m in
  let line = p.Platform.line in
  let lines = page / line in
  let cost = ref 0 in
  for i = 0 to lines - 1 do
    let a = src + (i * line) in
    cost := !cost + Machine.access m ~core ~asid ~vaddr:a ~paddr:a ~kind:Defs.Read ()
  done;
  for i = 0 to lines - 1 do
    let a = dst + (i * line) in
    cost := !cost + Machine.access m ~core ~asid ~vaddr:a ~paddr:a ~kind:Defs.Write ()
  done;
  !cost

let clone_op_bound (p : Platform.t) =
  let lines = 2 * (page / p.Platform.line) in
  (2 * Bounds.sweep_cycles p ~bytes:page ())
  + Bounds.eviction_wb_bound p ~lines

let destroy_op m ~core ~asid ~barrier =
  let cost = ref 0 in
  cost :=
    !cost
    + Machine.access m ~core ~asid ~vaddr:barrier ~paddr:barrier
        ~kind:Defs.Write ();
  cost := !cost + Machine.flush_tlbs m ~core;
  Machine.add_cycles m ~core Bounds.ipi_cost;
  cost := !cost + Bounds.ipi_cost;
  !cost

let destroy_op_bound (p : Platform.t) =
  Bounds.sweep_cycles p ~bytes:p.Platform.line ()
  + Bounds.eviction_wb_bound p ~lines:1
  + Bounds.tlb_flush_bound p + Bounds.ipi_cost
