type geometry = { entries : int; ways : int }

type t = {
  g : geometry;
  n_sets : int;
  vpns : int array; (* -1 = invalid *)
  asids : int array;
  globals : bool array;
  age : int array;
  mutable clock : int;
  mutable n_valid : int;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_hits : Tp_obs.Counter.t;
  st_misses : Tp_obs.Counter.t;
  st_flushes : Tp_obs.Counter.t;
  st_asid_flushes : Tp_obs.Counter.t;
}

let create ?(name = "tlb") g =
  assert (Defs.is_pow2 g.entries && Defs.is_pow2 g.ways);
  assert (g.entries >= g.ways);
  let n_sets = g.entries / g.ways in
  let st = Tp_obs.Counter.make_set name in
  let st_hits = Tp_obs.Counter.counter st "hits" in
  let st_misses = Tp_obs.Counter.counter st "misses" in
  let st_flushes = Tp_obs.Counter.counter st "flushes" in
  let st_asid_flushes = Tp_obs.Counter.counter st "asid_flushes" in
  {
    g;
    n_sets;
    vpns = Array.make g.entries (-1);
    asids = Array.make g.entries (-1);
    globals = Array.make g.entries false;
    age = Array.make g.entries 0;
    clock = 0;
    n_valid = 0;
    st;
    st_hits;
    st_misses;
    st_flushes;
    st_asid_flushes;
  }

let counters t = t.st

let geometry t = t.g
let sets t = t.n_sets

type result = Hit | Miss

let set_of t vpn = vpn land (t.n_sets - 1)

(* unsafe_get is in bounds by construction: the arrays hold
   [n_sets * ways] entries, [set] is masked by the pow-2 [n_sets - 1]
   and [w < ways]. *)
let find t ~asid ~vpn =
  let base = set_of t vpn * t.g.ways in
  let vpns = t.vpns and globals = t.globals and asids = t.asids in
  let ways = t.g.ways in
  let rec go w =
    if w = ways then -1
    else begin
      let i = base + w in
      if
        Array.unsafe_get vpns i = vpn
        && (Array.unsafe_get globals i || Array.unsafe_get asids i = asid)
      then i
      else go (w + 1)
    end
  in
  go 0

(* First invalid way wins outright (LRU among invalids is
   meaningless); otherwise lowest age. *)
let lru_way t set =
  let base = set * t.g.ways in
  let vpns = t.vpns and age = t.age in
  if Array.unsafe_get vpns base = -1 then base
  else begin
    let best = ref base in
    let found = ref (-1) in
    let w = ref 1 in
    while !found < 0 && !w < t.g.ways do
      let i = base + !w in
      if Array.unsafe_get vpns i = -1 then found := i
      else if Array.unsafe_get age i < Array.unsafe_get age !best then best := i;
      incr w
    done;
    if !found >= 0 then !found else !best
  end

let access t ~asid ~vpn ~global =
  let i = find t ~asid ~vpn in
  t.clock <- t.clock + 1;
  if i >= 0 then begin
    Tp_obs.Counter.incr t.st_hits;
    Array.unsafe_set t.age i t.clock;
    Hit
  end
  else begin
    Tp_obs.Counter.incr t.st_misses;
    let i = lru_way t (set_of t vpn) in
    if Array.unsafe_get t.vpns i = -1 then t.n_valid <- t.n_valid + 1;
    Array.unsafe_set t.vpns i vpn;
    Array.unsafe_set t.asids i asid;
    Array.unsafe_set t.globals i global;
    Array.unsafe_set t.age i t.clock;
    Miss
  end

let probe t ~asid ~vpn = find t ~asid ~vpn >= 0

let flush_all t =
  Tp_obs.Counter.incr t.st_flushes;
  Array.fill t.vpns 0 (Array.length t.vpns) (-1);
  Array.fill t.globals 0 (Array.length t.globals) false;
  t.n_valid <- 0

let flush_asid t asid =
  Tp_obs.Counter.incr t.st_asid_flushes;
  Array.iteri
    (fun i vpn ->
      if vpn <> -1 && (not t.globals.(i)) && t.asids.(i) = asid then begin
        t.vpns.(i) <- -1;
        t.n_valid <- t.n_valid - 1
      end)
    t.vpns

let valid_entries t = t.n_valid

let state_words t =
  (4 * Array.length t.vpns) + 2 + Blob.counters_words t.st

let save_state t blob off =
  let off = Blob.save_ints blob off t.vpns in
  let off = Blob.save_ints blob off t.asids in
  let off = Blob.save_bools blob off t.globals in
  let off = Blob.save_ints blob off t.age in
  blob.{off} <- t.clock;
  blob.{off + 1} <- t.n_valid;
  Blob.save_counters blob (off + 2) t.st

let load_state t blob off =
  let off = Blob.load_ints blob off t.vpns in
  let off = Blob.load_ints blob off t.asids in
  let off = Blob.load_bools blob off t.globals in
  let off = Blob.load_ints blob off t.age in
  t.clock <- blob.{off};
  t.n_valid <- blob.{off + 1};
  Blob.load_counters blob (off + 2) t.st
