(** Analytic worst-case cost bounds for time-protection operations.

    The linter ({!Tp_analysis.Lint}) needs a static answer to "how long
    can a protected domain switch possibly take?" so it can judge a
    configured [pad_cycles] without running the machine.  This module
    derives per-platform upper bounds from the {!Platform} geometry and
    the {!Machine} cost constants — the same numbers the simulator
    charges — for the three cost classes of the switch path:

    - {b flush bounds}: full-occupancy, all-dirty flushes of each
      structure (hardware flush instructions), or the x86 "manual"
      load/jump flush expressed as memory sweeps;
    - {b sweep bounds}: worst-case cost of touching [bytes] of memory
      sequentially with a cold TLB (used for the switch-path code and
      data footprint, the stack copy, and the shared-data prefetch);
    - fixed costs (TLB shootdown, branch-predictor reset).

    Sweeps model the DRAM component explicitly: with a stream
    prefetcher the demand stream stalls once per DRAM row; without one
    every line pays an open-row access.  When the configuration colours
    the caches ([coloured]), an adversary holds at most half the
    colours, so at most half of the swept lines can have been evicted
    to DRAM — the bound that makes protected pads checkable without
    assuming an impossible all-DRAM sweep. *)

type sweep = {
  sw_lines : int;  (** cache lines touched *)
  sw_pages : int;  (** pages touched (TLB walks charged) *)
  sw_rows : int;  (** DRAM rows crossed *)
  sw_cycles : int;  (** worst-case total cycles *)
}

val sweep : ?fetch:bool -> ?coloured:bool -> Platform.t -> bytes:int -> unit -> sweep
(** Worst-case cost of sequentially touching [bytes] of memory.
    [fetch] models an instruction-side sweep through chained,
    always-mispredicted jumps (the manual-flush I side); [coloured]
    asserts that cache colouring confines the adversary's evictions to
    at most half the swept lines. *)

val sweep_cycles :
  ?fetch:bool -> ?coloured:bool -> Platform.t -> bytes:int -> unit -> int

val l1_flush_bound : ?coloured:bool -> Platform.t -> int
(** Worst-case L1 I+D flush: the architected flush (full occupancy,
    dirty D side) when the platform has one, otherwise the x86 manual
    sweep flush over the image's L1-sized buffers. *)

val l1_flush_hw_bound : Platform.t -> int
(** The architected L1 flush bound regardless of
    [has_l1_flush_instr] — the full-flush ([wbinvd]) path uses it on
    every platform. *)

val l1_flush_manual_bound : ?coloured:bool -> Platform.t -> int
(** The manual load/jump displacement flush bound (§4.3). *)

val l2_flush_bound : Platform.t -> int
(** Worst-case private-L2 flush (0 if the platform has none). *)

val llc_flush_bound : Platform.t -> int
(** Worst-case shared-LLC write-back + invalidate. *)

val tlb_flush_bound : Platform.t -> int
val bp_flush_bound : Platform.t -> int

val eviction_wb_bound : Platform.t -> lines:int -> int
(** Worst-case dirty-victim write-back cost of [lines] demand accesses:
    each allocation can evict a dirty line at every level of the cache
    hierarchy.  The flush bounds charge their own write-backs; sweeps
    must budget the victims' separately. *)

(** {2 Lifecycle cost table}

    The fixed cycle costs of the kernel lifecycle operations, shared
    between the executing kernel ({!Tp_kernel.Domain_switch},
    {!Tp_kernel.Clone} alias them) and the analytic envelopes
    ({!Tp_analysis.Lint}, {!Tp_analysis.Kcert} sum them) — one table,
    so the certified bound cannot drift from the executed sequence. *)

val lock_cost : int
(** Acquire or release the big kernel lock once. *)

val timer_reprogram_cost : int
(** Reprogram the preemption timer for the incoming domain. *)

val return_cost : int
(** Return-from-kernel trap overhead. *)

val dram_close_cost : int
(** Close all open DRAM rows (the pad's deterministic-DRAM step). *)

val switch_fixed_overhead : int
(** [2*lock + timer_reprogram + return]: the unconditional per-switch
    overhead outside any flush or sweep. *)

val ipi_cost : int
(** One inter-processor-interrupt round trip (destroy's TLB shootdown
    stalls initiator and remote for one each). *)

val destroy_bookkeeping_cost : int
(** Capability/registry bookkeeping at the end of a destroy. *)
