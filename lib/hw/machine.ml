type core_state = {
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t option;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  l2tlb : Tlb.t;
  btb : Btb.t;
  bhb : Bhb.t;
  prefetcher : Prefetcher.t option;
  mutable cycles : int;
  (* Cycles the last TLB walk already charged to [cycles] itself, so
     [access] can report a total latency without double-charging and
     without boxing a result tuple on the per-access path. *)
  mutable walk_charged : int;
  (* Core-level performance counters (observability only; the model
     never reads them back, see Tp_obs.Ctl). *)
  st : Tp_obs.Counter.set;
  st_accesses : Tp_obs.Counter.t;
  st_l2tlb_hits : Tp_obs.Counter.t;
  st_tlb_walks : Tp_obs.Counter.t;
  st_walk_cycles : Tp_obs.Counter.t;
  st_clflushes : Tp_obs.Counter.t;
  st_prefetch_lines : Tp_obs.Counter.t;
  st_flush_ops : Tp_obs.Counter.t;
  st_flush_cycles : Tp_obs.Counter.t;
}

type t = {
  platform : Platform.t;
  cores : core_state array;
  llc : Cache.t;
  dram : Dram.t;
  bus : Interconnect.t;
}

(* Flush cost model, calibrated so the Table 2 shapes hold: invalidating
   a line costs a few cycles of tag-walk, writing back a dirty line a
   burst-amortised store.  See EXPERIMENTS.md for the calibration. *)
let inval_cost_per_line = 5
let wb_cost_per_line = 10
let tlb_flush_cost = 200
let bp_flush_cost = 400
let l2_tlb_hit_extra = 7
let prefetch_issue_cost = 1

let create platform =
  let open Platform in
  let mk_core i =
    let n fmt = Printf.sprintf "c%d.%s" i fmt in
    let st = Tp_obs.Counter.make_set (n "core") in
    let st_accesses = Tp_obs.Counter.counter st "accesses" in
    let st_l2tlb_hits = Tp_obs.Counter.counter st "l2tlb_hits" in
    let st_tlb_walks = Tp_obs.Counter.counter st "tlb_walks" in
    let st_walk_cycles = Tp_obs.Counter.counter st "walk_cycles" in
    let st_clflushes = Tp_obs.Counter.counter st "clflushes" in
    let st_prefetch_lines = Tp_obs.Counter.counter st "prefetch_lines" in
    let st_flush_ops = Tp_obs.Counter.counter st "flush_ops" in
    let st_flush_cycles = Tp_obs.Counter.counter st "flush_cycles" in
    {
      l1d = Cache.create ~name:(n "l1d") platform.l1d;
      l1i = Cache.create ~name:(n "l1i") platform.l1i;
      l2 = Option.map (Cache.create ~name:(n "l2")) platform.l2;
      itlb = Tlb.create ~name:(n "itlb") platform.itlb;
      dtlb = Tlb.create ~name:(n "dtlb") platform.dtlb;
      l2tlb = Tlb.create ~name:(n "l2tlb") platform.l2tlb;
      btb = Btb.create ~name:(n "btb") platform.btb;
      bhb = Bhb.create ~name:(n "bhb") platform.bhb;
      prefetcher =
        (if platform.prefetcher_slots > 0 then
           Some
             (Prefetcher.create ~name:(n "prefetcher")
                ~slots:platform.prefetcher_slots
                ~degree:platform.prefetcher_degree ())
         else None);
      cycles = 0;
      walk_charged = 0;
      st;
      st_accesses;
      st_l2tlb_hits;
      st_tlb_walks;
      st_walk_cycles;
      st_clflushes;
      st_prefetch_lines;
      st_flush_ops;
      st_flush_cycles;
    }
  in
  let t =
    {
      platform;
      cores = Array.init platform.cores mk_core;
      llc = Cache.create ~name:"llc" platform.llc;
      dram = Dram.create ~name:"dram" platform.dram;
      (* Memory-bus service rate scaled to the platform: 1.3x the rate of
         a single latency-bound DRAM stream, so one stream fits and two
         concurrent ones contend. *)
      bus =
        (let stream_latency =
           platform.lat_l1 + platform.lat_l2 + platform.lat_llc
           + platform.dram.Dram.t_hit
         in
         Interconnect.create ~cores:platform.cores
           ~window:(10 * stream_latency) ~slots_per_window:13 ());
    }
  in
  (* Publish this machine's counter sets; a later machine with the same
     topology replaces them, so the registry always describes the most
     recent boot (what `tpsim stats` dumps). *)
  Array.iter
    (fun c ->
      Tp_obs.Counter.register c.st;
      Tp_obs.Counter.register (Cache.counters c.l1d);
      Tp_obs.Counter.register (Cache.counters c.l1i);
      (match c.l2 with
      | Some l2 -> Tp_obs.Counter.register (Cache.counters l2)
      | None -> ());
      Tp_obs.Counter.register (Tlb.counters c.itlb);
      Tp_obs.Counter.register (Tlb.counters c.dtlb);
      Tp_obs.Counter.register (Tlb.counters c.l2tlb);
      Tp_obs.Counter.register (Btb.counters c.btb);
      Tp_obs.Counter.register (Bhb.counters c.bhb);
      match c.prefetcher with
      | Some pf -> Tp_obs.Counter.register (Prefetcher.counters pf)
      | None -> ())
    t.cores;
  Tp_obs.Counter.register (Cache.counters t.llc);
  Tp_obs.Counter.register (Dram.counters t.dram);
  Tp_obs.Counter.register (Interconnect.counters t.bus);
  t

let platform t = t.platform
let n_cores t = Array.length t.cores

let counter_sets t =
  let core_sets c =
    [ c.st; Cache.counters c.l1d; Cache.counters c.l1i ]
    @ (match c.l2 with Some l2 -> [ Cache.counters l2 ] | None -> [])
    @ [ Tlb.counters c.itlb; Tlb.counters c.dtlb; Tlb.counters c.l2tlb;
        Btb.counters c.btb; Bhb.counters c.bhb ]
    @
    match c.prefetcher with
    | Some pf -> [ Prefetcher.counters pf ]
    | None -> []
  in
  List.concat_map core_sets (Array.to_list t.cores)
  @ [ Cache.counters t.llc; Dram.counters t.dram; Interconnect.counters t.bus ]

let core t i =
  assert (i >= 0 && i < Array.length t.cores);
  t.cores.(i)

let cycles t ~core:i = (core t i).cycles
let add_cycles t ~core:i n = (core t i).cycles <- (core t i).cycles + n

(* Invalidate a physical line from every core's private caches; the
   shared LLC is inclusive, so an LLC eviction must purge inner copies.
   For virtually-indexed L1s every alias set would need checking on real
   hardware; our L1 index uses the vaddr, so we conservatively scan all
   L1 sets via the physical tag by probing each possible index page
   offset — in practice user mappings here are vaddr=colour-preserving,
   so invalidating with vaddr=paddr covers the common case and the
   over-approximation only loses a little timing fidelity. *)
let back_invalidate t line_paddr =
  if line_paddr >= 0 then
    Array.iter
      (fun c ->
        Cache.invalidate_line c.l1d ~vaddr:line_paddr ~paddr:line_paddr;
        Cache.invalidate_line c.l1i ~vaddr:line_paddr ~paddr:line_paddr;
        match c.l2 with
        | Some l2 -> Cache.invalidate_line l2 ~vaddr:line_paddr ~paddr:line_paddr
        | None -> ())
      t.cores

(* Access the shared levels (LLC then DRAM) for one physical line;
   returns latency.  LLC misses are memory-bus transactions — the
   bandwidth-limited, contended resource; LLC hits are served by the
   (much wider) on-chip fabric and are not bus-accounted. *)
let shared_access t ~core_id ~llc_ways ~paddr ~write =
  let c = core t core_id in
  let p = t.platform in
  if Cache.access_masked_fast t.llc ~alloc_ways:llc_ways ~vaddr:paddr ~paddr ~write
  then p.Platform.lat_llc
  else begin
    let evicted_dirty = Cache.last_evicted_dirty t.llc in
    back_invalidate t (Cache.last_evicted t.llc);
    let bus_delay = Interconnect.record t.bus ~core:core_id ~now:c.cycles in
    let wb = if evicted_dirty then wb_cost_per_line else 0 in
    p.Platform.lat_llc + Dram.access t.dram ~paddr + wb + bus_delay
  end

(* Issue prefetches suggested by the stream prefetcher: insert into the
   private L2 and the (inclusive) LLC. *)
let issue_prefetches t ~core_id ~llc_ways pf_addrs =
  let c = core t core_id in
  Tp_obs.Counter.add c.st_prefetch_lines (List.length pf_addrs);
  List.fold_left
    (fun cost pf ->
      (match c.l2 with
      | Some l2 -> ignore (Cache.insert_clean_fast l2 ~vaddr:pf ~paddr:pf)
      | None -> ());
      (* Prefetches allocate under the issuing core's CAT class too. *)
      if
        not
          (Cache.access_masked_fast t.llc ~alloc_ways:llc_ways ~vaddr:pf
             ~paddr:pf ~write:false)
      then back_invalidate t (Cache.last_evicted t.llc);
      cost + prefetch_issue_cost)
    0 pf_addrs

(* Returns the latency to report; cycles of it already charged by the
   walk's own memory accesses are left in [c.walk_charged] (a scratch
   field rather than a result tuple: this path runs once per simulated
   access and must not allocate). *)
let tlb_latency t ~core_id ~asid ~vpn ~kind ~global ~walk =
  let c = core t core_id in
  let p = t.platform in
  c.walk_charged <- 0;
  let first = match kind with Defs.Fetch -> c.itlb | Defs.Read | Defs.Write -> c.dtlb in
  match Tlb.access first ~asid ~vpn ~global with
  | Tlb.Hit -> 0
  | Tlb.Miss -> begin
      match Tlb.access c.l2tlb ~asid ~vpn ~global with
      | Tlb.Hit ->
          Tp_obs.Counter.incr c.st_l2tlb_hits;
          l2_tlb_hit_extra
      | Tlb.Miss -> begin
          Tp_obs.Counter.incr c.st_tlb_walks;
          match walk with
          | Some f ->
              (* The walk's PT reads charge the core as they run; a
                 small fixed TLB-refill overhead comes on top. *)
              let w = f () in
              Tp_obs.Counter.add c.st_walk_cycles w;
              c.walk_charged <- w;
              w + 10
          | None ->
              Tp_obs.Counter.add c.st_walk_cycles p.Platform.tlb_walk;
              p.Platform.tlb_walk
        end
    end

let access t ~core:core_id ~asid ?(global = false) ?(llc_ways = max_int) ?walk
    ~vaddr ~paddr ~kind () =
  let c = core t core_id in
  let p = t.platform in
  let write = match kind with Defs.Write -> true | Defs.Read | Defs.Fetch -> false in
  Tp_obs.Counter.incr c.st_accesses;
  let vpn = Defs.page_of vaddr in
  let lat_tlb = tlb_latency t ~core_id ~asid ~vpn ~kind ~global ~walk in
  let already_charged = c.walk_charged in
  let l1 = match kind with Defs.Fetch -> c.l1i | Defs.Read | Defs.Write -> c.l1d in
  let lat =
    if Cache.access_fast l1 ~vaddr ~paddr ~write then p.Platform.lat_l1
    else begin
      let l1_wb = if Cache.last_evicted_dirty l1 then wb_cost_per_line else 0 in
      let inner =
        match c.l2 with
        | Some l2 -> begin
            (* The stream prefetcher observes L2 traffic (L1 misses). *)
            let pf_cost =
              match c.prefetcher with
              | Some pf ->
                  let suggestions =
                    Prefetcher.on_access pf ~paddr ~line:p.Platform.line
                  in
                  issue_prefetches t ~core_id ~llc_ways suggestions
              | None -> 0
            in
            if Cache.access_fast l2 ~vaddr:paddr ~paddr ~write:false then
              p.Platform.lat_l2 + pf_cost
            else begin
              let l2_wb =
                if Cache.last_evicted_dirty l2 then wb_cost_per_line else 0
              in
              p.Platform.lat_l2 + l2_wb + pf_cost
              + shared_access t ~core_id ~llc_ways ~paddr ~write:false
            end
          end
        | None -> shared_access t ~core_id ~llc_ways ~paddr ~write:false
      in
      p.Platform.lat_l1 + l1_wb + inner
    end
  in
  let total = lat_tlb + lat in
  c.cycles <- c.cycles + total - already_charged;
  total

let cond_branch t ~core:core_id ~asid ~vaddr ~paddr ~taken =
  let c = core t core_id in
  let p = t.platform in
  let fetch = access t ~core:core_id ~asid ~vaddr ~paddr ~kind:Defs.Fetch () in
  let penalty =
    match Bhb.branch c.bhb ~addr:vaddr ~taken with
    | Bhb.Predicted -> 0
    | Bhb.Mispredicted -> p.Platform.mispredict_penalty
  in
  c.cycles <- c.cycles + penalty;
  fetch + penalty

let jump t ~core:core_id ~asid ~vaddr ~paddr ~target =
  let c = core t core_id in
  let p = t.platform in
  let fetch = access t ~core:core_id ~asid ~vaddr ~paddr ~kind:Defs.Fetch () in
  let penalty =
    match Btb.branch c.btb ~addr:vaddr ~target with
    | Btb.Predicted -> 0
    | Btb.Mispredicted -> p.Platform.mispredict_penalty
  in
  c.cycles <- c.cycles + penalty;
  fetch + penalty

(* A flush instruction walks the whole tag array (cost per capacity
   line, independent of occupancy) and writes back what is dirty. *)
let clflush_cost = 40

let clflush t ~core:core_id ~paddr =
  let line_mask = lnot (t.platform.Platform.line - 1) in
  let la = paddr land line_mask in
  back_invalidate t la;
  Cache.invalidate_line t.llc ~vaddr:la ~paddr:la;
  let c = core t core_id in
  Tp_obs.Counter.incr c.st_clflushes;
  c.cycles <- c.cycles + clflush_cost;
  clflush_cost

let flush_cache_cost cache =
  let lines = Cache.capacity_lines cache in
  let dirty = Cache.flush cache in
  (lines * inval_cost_per_line) + (dirty * wb_cost_per_line)

(* Account a hardware flush operation: counters plus (when tracing) a
   span covering the cycles the flush occupied the core. *)
let note_flush c ~core_id ~what cost =
  Tp_obs.Counter.incr c.st_flush_ops;
  Tp_obs.Counter.add c.st_flush_cycles cost;
  if Tp_obs.Trace.enabled () then
    Tp_obs.Trace.span ~core:core_id ~cat:"hw" ~name:what ~ts:c.cycles ~dur:cost
      ()

let flush_l1_hw t ~core:core_id =
  let c = core t core_id in
  let cost = flush_cache_cost c.l1d + flush_cache_cost c.l1i in
  note_flush c ~core_id ~what:"flush_l1" cost;
  c.cycles <- c.cycles + cost;
  cost

let flush_l2_private t ~core:core_id =
  let c = core t core_id in
  match c.l2 with
  | None -> 0
  | Some l2 ->
      let cost = flush_cache_cost l2 in
      note_flush c ~core_id ~what:"flush_l2" cost;
      c.cycles <- c.cycles + cost;
      cost

let flush_llc t ~core:core_id =
  let c = core t core_id in
  let cost = flush_cache_cost t.llc in
  (* Inclusive hierarchy: private copies are gone too. *)
  Array.iter
    (fun cc ->
      ignore (Cache.flush cc.l1d);
      ignore (Cache.flush cc.l1i);
      match cc.l2 with Some l2 -> ignore (Cache.flush l2) | None -> ())
    t.cores;
  note_flush c ~core_id ~what:"flush_llc" cost;
  c.cycles <- c.cycles + cost;
  cost

let flush_tlbs t ~core:core_id =
  let c = core t core_id in
  Tlb.flush_all c.itlb;
  Tlb.flush_all c.dtlb;
  Tlb.flush_all c.l2tlb;
  note_flush c ~core_id ~what:"flush_tlbs" tlb_flush_cost;
  c.cycles <- c.cycles + tlb_flush_cost;
  tlb_flush_cost

let flush_branch_predictor t ~core:core_id =
  let c = core t core_id in
  Btb.flush c.btb;
  Bhb.flush c.bhb;
  note_flush c ~core_id ~what:"flush_bp" bp_flush_cost;
  c.cycles <- c.cycles + bp_flush_cost;
  bp_flush_cost

let l1d t ~core:i = (core t i).l1d
let l1i t ~core:i = (core t i).l1i
let l2 t ~core:i = (core t i).l2
let llc t = t.llc
let dtlb t ~core:i = (core t i).dtlb
let itlb t ~core:i = (core t i).itlb
let l2tlb t ~core:i = (core t i).l2tlb
let btb t ~core:i = (core t i).btb
let bhb t ~core:i = (core t i).bhb
let prefetcher t ~core:i = (core t i).prefetcher
let bus t = t.bus
let dram t = t.dram

let set_prefetcher_enabled t ~core:i b =
  match (core t i).prefetcher with
  | Some pf -> Prefetcher.set_enabled pf b
  | None -> ()

(* ---- whole-machine snapshot / restore --------------------------- *)

(* Crossed once per component restored, so the fail-at-step-N driver
   can crash a restore between any two components.  Recovery is simply
   restoring again: load_state overwrites everything it touches, so a
   re-restore from the same snapshot is idempotent and no torn state
   survives. *)
let point_restore = "snapshot_restore"
let () = Tp_fault.Fault.register point_restore

type snapshot = {
  snap_platform : string;
  snap_data : Blob.t;
  mutable snap_digest : string option; (* computed lazily, cached *)
}

let core_state_words c =
  2 (* cycles, walk_charged *)
  + Blob.counters_words c.st
  + Cache.state_words c.l1d + Cache.state_words c.l1i
  + (match c.l2 with Some l2 -> Cache.state_words l2 | None -> 0)
  + Tlb.state_words c.itlb + Tlb.state_words c.dtlb + Tlb.state_words c.l2tlb
  + Btb.state_words c.btb + Bhb.state_words c.bhb
  +
  match c.prefetcher with Some pf -> Prefetcher.state_words pf | None -> 0

let snapshot_words t =
  Array.fold_left (fun acc c -> acc + core_state_words c) 0 t.cores
  + Cache.state_words t.llc + Dram.state_words t.dram
  + Interconnect.state_words t.bus

let save_core c blob off =
  blob.{off} <- c.cycles;
  blob.{off + 1} <- c.walk_charged;
  let off = Blob.save_counters blob (off + 2) c.st in
  let off = Cache.save_state c.l1d blob off in
  let off = Cache.save_state c.l1i blob off in
  let off =
    match c.l2 with Some l2 -> Cache.save_state l2 blob off | None -> off
  in
  let off = Tlb.save_state c.itlb blob off in
  let off = Tlb.save_state c.dtlb blob off in
  let off = Tlb.save_state c.l2tlb blob off in
  let off = Btb.save_state c.btb blob off in
  let off = Bhb.save_state c.bhb blob off in
  match c.prefetcher with
  | Some pf -> Prefetcher.save_state pf blob off
  | None -> off

let load_core c blob off =
  Tp_fault.Fault.hit point_restore;
  c.cycles <- blob.{off};
  c.walk_charged <- blob.{off + 1};
  let off = Blob.load_counters blob (off + 2) c.st in
  let off = Cache.load_state c.l1d blob off in
  let off = Cache.load_state c.l1i blob off in
  let off =
    match c.l2 with Some l2 -> Cache.load_state l2 blob off | None -> off
  in
  let off = Tlb.load_state c.itlb blob off in
  let off = Tlb.load_state c.dtlb blob off in
  let off = Tlb.load_state c.l2tlb blob off in
  let off = Btb.load_state c.btb blob off in
  let off = Bhb.load_state c.bhb blob off in
  match c.prefetcher with
  | Some pf -> Prefetcher.load_state pf blob off
  | None -> off

let snapshot t =
  let n = snapshot_words t in
  let blob = Blob.create n in
  let off = Array.fold_left (fun off c -> save_core c blob off) 0 t.cores in
  let off = Cache.save_state t.llc blob off in
  let off = Dram.save_state t.dram blob off in
  let off = Interconnect.save_state t.bus blob off in
  assert (off = n);
  {
    snap_platform = t.platform.Platform.name;
    snap_data = blob;
    snap_digest = None;
  }

let restore t s =
  if s.snap_platform <> t.platform.Platform.name then
    invalid_arg
      (Printf.sprintf
         "Machine.restore: snapshot of platform %s applied to a %s machine"
         s.snap_platform t.platform.Platform.name);
  if Blob.length s.snap_data <> snapshot_words t then
    invalid_arg "Machine.restore: snapshot size does not match this machine";
  let blob = s.snap_data in
  let off = Array.fold_left (fun off c -> load_core c blob off) 0 t.cores in
  Tp_fault.Fault.hit point_restore;
  let off = Cache.load_state t.llc blob off in
  Tp_fault.Fault.hit point_restore;
  let off = Dram.load_state t.dram blob off in
  Tp_fault.Fault.hit point_restore;
  let off = Interconnect.load_state t.bus blob off in
  ignore (off : int)

let snapshot_digest s =
  match s.snap_digest with
  | Some d -> d
  | None ->
      let d = Blob.digest s.snap_data in
      s.snap_digest <- Some d;
      d

let state_digest t = snapshot_digest (snapshot t)
