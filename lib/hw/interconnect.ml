type mode = Open | Partitioned | Mba of float

type t = {
  cores : int;
  rate : float array; (* per-core issue rate, transactions/cycle (EWMA) *)
  slow_rate : float array; (* long-horizon average, the MBA meter *)
  last : int array; (* per-core cycle of the previous transaction *)
  run_start : int array; (* start of the core's current activity run *)
  service : float; (* bus service rate, transactions/cycle *)
  mutable mode : mode;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_transactions : Tp_obs.Counter.t;
  st_stalled : Tp_obs.Counter.t;
  st_stall_cycles : Tp_obs.Counter.t;
}

let ewma_alpha = 0.2
let slow_alpha = 0.01
let delay_scale = 50.0

(* A core's traffic only contends with transactions that are actually
   in flight around the same time: another core whose last issue is
   older than this window is quiescent — a bus queue drains within a
   few service periods.  (Per-core clocks are comparable as global
   time because the execution drivers advance every core each round;
   manual cross-core drivers keep them aligned explicitly.) *)
let active_window = 3_000

(* A gap longer than this ends an activity run (the core went quiet —
   preempted, sleeping, compute-bound). *)
let run_gap = 50_000

let create ?(name = "bus") ~cores ~window ~slots_per_window () =
  assert (cores > 0 && window > 0 && slots_per_window > 0);
  let st = Tp_obs.Counter.make_set name in
  let st_transactions = Tp_obs.Counter.counter st "transactions" in
  let st_stalled = Tp_obs.Counter.counter st "stalled" in
  let st_stall_cycles = Tp_obs.Counter.counter st "stall_cycles" in
  {
    cores;
    rate = Array.make cores 0.0;
    slow_rate = Array.make cores 0.0;
    last = Array.make cores (-1);
    run_start = Array.make cores (-1);
    service = float_of_int slots_per_window /. float_of_int window;
    mode = Open;
    st;
    st_transactions;
    st_stalled;
    st_stall_cycles;
  }

let counters t = t.st

let set_mode t m = t.mode <- m
let set_partitioned t b = t.mode <- (if b then Partitioned else Open)

(* Cores have independent clocks, so each core's issue rate is derived
   from its own inter-transaction gaps; the queueing delay of a
   transaction grows with the total offered rate beyond the bus's
   service rate (a linear M/D/1 flavour).  Under the hypothetical
   bandwidth partition each core is measured against its own share
   only, so other cores' traffic cannot influence its delay. *)
let record t ~core ~now =
  assert (core >= 0 && core < t.cores);
  let dt =
    if t.last.(core) < 0 then max_int else Stdlib.max 1 (now - t.last.(core))
  in
  if dt > run_gap then t.run_start.(core) <- now;
  t.last.(core) <- now;
  let inst = if dt = max_int then 0.0 else 1.0 /. float_of_int dt in
  (* The fast estimator tracks the within-burst issue rate: a gap
     longer than the queueing horizon means the core was descheduled
     or computing, not that the bus saw a slower stream, so it leaves
     the estimate alone.  The MBA meter, by contrast, is charged for
     gaps — it measures sustained bandwidth. *)
  if dt <= active_window then
    t.rate.(core) <- ((1.0 -. ewma_alpha) *. t.rate.(core)) +. (ewma_alpha *. inst);
  t.slow_rate.(core) <-
    ((1.0 -. slow_alpha) *. t.slow_rate.(core)) +. (slow_alpha *. inst);
  (* Sum of the offered rates of cores whose current activity run
     covers this instant: a run is [run_start, last], padded by the
     queue-drain window on both sides. *)
  let live_sum () =
    let acc = ref 0.0 in
    for j = 0 to t.cores - 1 do
      if
        j = core
        || (t.last.(j) >= 0
           && now >= t.run_start.(j) - active_window
           && now <= t.last.(j) + active_window)
      then acc := !acc +. t.rate.(j)
    done;
    !acc
  in
  let delay =
    match t.mode with
    | Partitioned ->
        let offered = t.rate.(core) *. float_of_int t.cores in
        let overload = offered -. t.service in
        if overload > 0.0 then int_of_float (overload /. t.service *. delay_scale)
        else 0
    | Open ->
        let overload = live_sum () -. t.service in
        if overload > 0.0 then int_of_float (overload /. t.service *. delay_scale)
        else 0
    | Mba limit ->
        (* Approximate enforcement: the MBA meter is a slow average, so a
           core pays its throttle penalty only when its {e sustained}
           rate exceeds the cap — instantaneous bursts pass straight
           through, and the shared queue is still shared, so the
           contention term computed from everyone's instantaneous rate
           remains.  That residue is why the paper's footnote 5 deems
           MBA insufficient against covert channels. *)
        let cap = limit *. t.service in
        let throttle =
          let over = t.slow_rate.(core) -. cap in
          if over > 0.0 then
            int_of_float (over /. t.service *. delay_scale *. 2.0)
          else 0
        in
        let overload = live_sum () -. t.service in
        throttle
        + (if overload > 0.0 then
             int_of_float (overload /. t.service *. delay_scale)
           else 0)
  in
  Tp_obs.Counter.incr t.st_transactions;
  if delay > 0 then begin
    Tp_obs.Counter.incr t.st_stalled;
    Tp_obs.Counter.add t.st_stall_cycles delay
  end;
  delay

let window_traffic t ~core =
  (* Scaled to a per-mille utilisation figure for diagnostics. *)
  int_of_float (t.rate.(core) /. t.service *. 1000.0)

let drain t =
  Array.fill t.rate 0 t.cores 0.0;
  Array.fill t.slow_rate 0 t.cores 0.0;
  Array.fill t.last 0 t.cores (-1);
  Array.fill t.run_start 0 t.cores (-1)

let state_words t =
  (2 * t.cores * Blob.float_words) (* rate, slow_rate *)
  + (2 * t.cores) (* last, run_start *)
  + 1 + Blob.float_words (* mode tag + Mba limit *)
  + Blob.counters_words t.st

let save_floats blob off a =
  Array.fold_left (fun off f -> Blob.save_float blob off f) off a

let load_floats blob off (a : float array) =
  let o = ref off in
  for i = 0 to Array.length a - 1 do
    a.(i) <- Blob.load_float blob !o;
    o := !o + Blob.float_words
  done;
  !o

let save_state t blob off =
  let off = save_floats blob off t.rate in
  let off = save_floats blob off t.slow_rate in
  let off = Blob.save_ints blob off t.last in
  let off = Blob.save_ints blob off t.run_start in
  let tag, limit =
    match t.mode with Open -> (0, 0.0) | Partitioned -> (1, 0.0) | Mba l -> (2, l)
  in
  blob.{off} <- tag;
  let off = Blob.save_float blob (off + 1) limit in
  Blob.save_counters blob off t.st

let load_state t blob off =
  let off = load_floats blob off t.rate in
  let off = load_floats blob off t.slow_rate in
  let off = Blob.load_ints blob off t.last in
  let off = Blob.load_ints blob off t.run_start in
  let tag = blob.{off} in
  let limit = Blob.load_float blob (off + 1) in
  t.mode <-
    (match tag with 0 -> Open | 1 -> Partitioned | _ -> Mba limit);
  Blob.load_counters blob (off + 1 + Blob.float_words) t.st
