(* Flat integer state blobs for machine snapshots and replay streams.

   One contiguous [Bigarray.Array1] of native ints holds the saved
   state of every component: int arrays verbatim, bool arrays as 0/1,
   floats as two 32-bit halves of their IEEE-754 bit pattern (an OCaml
   int is 63-bit, so a full [Int64] does not fit in one word).  The
   helpers thread a write/read offset so component save/load functions
   compose by concatenation. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let length (b : t) = Bigarray.Array1.dim b

(* In-bounds by construction: callers size the blob with the matching
   [state_words] sum before saving, and load walks the same layout. *)

let save_ints (b : t) off (a : int array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b (off + i) (Array.unsafe_get a i)
  done;
  off + n

let load_ints (b : t) off (a : int array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get b (off + i))
  done;
  off + n

let save_bools (b : t) off (a : bool array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set b (off + i) (if Array.unsafe_get a i then 1 else 0)
  done;
  off + n

let load_bools (b : t) off (a : bool array) =
  let n = Array.length a in
  for i = 0 to n - 1 do
    Array.unsafe_set a i (Bigarray.Array1.unsafe_get b (off + i) <> 0)
  done;
  off + n

let save_float (b : t) off f =
  let bits = Int64.bits_of_float f in
  b.{off} <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
  b.{off + 1} <- Int64.to_int (Int64.shift_right_logical bits 32);
  off + 2

let load_float (b : t) off =
  let lo = Int64.logand (Int64.of_int b.{off}) 0xFFFFFFFFL in
  let hi = Int64.shift_left (Int64.of_int b.{off + 1}) 32 in
  Int64.float_of_bits (Int64.logor hi lo)

let float_words = 2

let save_counters (b : t) off st = save_ints b off (Tp_obs.Counter.values st)

let load_counters (b : t) off st =
  let n = Tp_obs.Counter.length st in
  let tmp = Array.make n 0 in
  let off = load_ints b off tmp in
  Tp_obs.Counter.set_values st tmp;
  off

let counters_words st = Tp_obs.Counter.length st

let digest_sub (b : t) ~len =
  let bytes = Bytes.create (8 * len) in
  for i = 0 to len - 1 do
    Bytes.set_int64_le bytes (8 * i) (Int64.of_int b.{i})
  done;
  Digest.to_hex (Digest.bytes bytes)

let digest (b : t) = digest_sub b ~len:(length b)
