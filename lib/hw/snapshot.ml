(* Thin façade over the machine-resident snapshot implementation: the
   capture/restore logic lives in Machine (it needs the machine's
   internals), this module gives the feature a stable standalone name
   (Tp_hw.Snapshot) for callers that deal in snapshots only. *)

type t = Machine.snapshot

let capture = Machine.snapshot
let restore = Machine.restore
let words = Machine.snapshot_words
let digest = Machine.snapshot_digest
let point_restore = Machine.point_restore
