(** Flat integer state blobs.

    The storage format shared by {!Machine.snapshot} and {!Replay}
    streams: one contiguous [Bigarray.Array1] of native ints.  Each
    component saves into (and loads from) the blob at a threaded
    offset, so whole-machine layouts are plain concatenation; int
    arrays are stored verbatim, bool arrays as 0/1 and floats as two
    32-bit halves of their bit pattern (native ints are 63-bit). *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
val length : t -> int

(** Each [save_*] writes at [off] and returns the offset past what it
    wrote; [load_*] walks the same layout back. *)

val save_ints : t -> int -> int array -> int
val load_ints : t -> int -> int array -> int
val save_bools : t -> int -> bool array -> int
val load_bools : t -> int -> bool array -> int

val save_float : t -> int -> float -> int
val load_float : t -> int -> float
(** [load_float b off] reads the two words at [off] (no offset
    threading: callers advance by {!float_words}). *)

val float_words : int

val save_counters : t -> int -> Tp_obs.Counter.set -> int
val load_counters : t -> int -> Tp_obs.Counter.set -> int
(** Counter values are machine state for snapshot purposes: restoring
    a snapshot must also roll the observability counters back, or a
    replayed trial's counter-derived metrics would diverge from a
    fresh run's. *)

val counters_words : Tp_obs.Counter.set -> int

val digest : t -> string
(** MD5 (hex) over the blob's words in little-endian byte order. *)

val digest_sub : t -> len:int -> string
(** Digest of the first [len] words only (replay streams are grown
    capacity-doubling, so the live prefix is what identifies them). *)
