(** Whole-machine microarchitectural snapshots.

    A façade over {!Machine.snapshot} / {!Machine.restore}: O(state)
    capture of every cache, TLB, predictor, prefetcher, DRAM row
    buffer, interconnect estimator, core clock and performance-counter
    value into one flat {!Blob.t} with a content digest.  See the
    {!Machine} documentation for the restore/fault-injection
    contract. *)

type t = Machine.snapshot

val capture : Machine.t -> t
val restore : Machine.t -> t -> unit
val words : Machine.t -> int
val digest : t -> string

val point_restore : string
(** ["snapshot_restore"] — fault point crossed per component restored. *)
