type geometry = { entries : int; ways : int }

type t = {
  g : geometry;
  n_sets : int;
  tags : int array; (* branch address; -1 = invalid *)
  targets : int array;
  age : int array;
  mutable clock : int;
  mutable n_valid : int;
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_predicted : Tp_obs.Counter.t;
  st_mispredicted : Tp_obs.Counter.t;
  st_flushes : Tp_obs.Counter.t;
}

(* Branch addresses are instruction-granular; use 4-byte granularity for
   the index so consecutive branch slots map to consecutive sets. *)
let index_shift = 2

let geometry_sets g = g.entries / g.ways

(* The pure index hash, exposed so the certifier can fold a lifted
   branch trace through the same placement function the model uses. *)
let set_of_addr g addr = (addr lsr index_shift) land (geometry_sets g - 1)

let create ?(name = "btb") g =
  assert (Defs.is_pow2 g.entries && Defs.is_pow2 g.ways);
  let n_sets = g.entries / g.ways in
  let st = Tp_obs.Counter.make_set name in
  let st_predicted = Tp_obs.Counter.counter st "predicted" in
  let st_mispredicted = Tp_obs.Counter.counter st "mispredicted" in
  let st_flushes = Tp_obs.Counter.counter st "flushes" in
  {
    g;
    n_sets;
    tags = Array.make g.entries (-1);
    targets = Array.make g.entries 0;
    age = Array.make g.entries 0;
    clock = 0;
    n_valid = 0;
    st;
    st_predicted;
    st_mispredicted;
    st_flushes;
  }

let counters t = t.st

type result = Predicted | Mispredicted

let set_of t addr = (addr lsr index_shift) land (t.n_sets - 1)

let find t addr =
  let base = set_of t addr * t.g.ways in
  let rec go w =
    if w = t.g.ways then -1
    else if t.tags.(base + w) = addr then base + w
    else go (w + 1)
  in
  go 0

let lru_way t set =
  let base = set * t.g.ways in
  let best = ref base in
  for w = 1 to t.g.ways - 1 do
    let i = base + w in
    if t.tags.(i) = -1 then begin
      if t.tags.(!best) <> -1 || t.age.(i) < t.age.(!best) then best := i
    end
    else if t.tags.(!best) <> -1 && t.age.(i) < t.age.(!best) then best := i
  done;
  !best

let branch t ~addr ~target =
  t.clock <- t.clock + 1;
  let i = find t addr in
  if i >= 0 && t.targets.(i) = target then begin
    Tp_obs.Counter.incr t.st_predicted;
    t.age.(i) <- t.clock;
    Predicted
  end
  else begin
    Tp_obs.Counter.incr t.st_mispredicted;
    let i = if i >= 0 then i else lru_way t (set_of t addr) in
    if t.tags.(i) = -1 then t.n_valid <- t.n_valid + 1;
    t.tags.(i) <- addr;
    t.targets.(i) <- target;
    t.age.(i) <- t.clock;
    Mispredicted
  end

let flush t =
  Tp_obs.Counter.incr t.st_flushes;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.n_valid <- 0

let valid_entries t = t.n_valid

let state_words t =
  (3 * Array.length t.tags) + 2 + Blob.counters_words t.st

let save_state t blob off =
  let off = Blob.save_ints blob off t.tags in
  let off = Blob.save_ints blob off t.targets in
  let off = Blob.save_ints blob off t.age in
  blob.{off} <- t.clock;
  blob.{off + 1} <- t.n_valid;
  Blob.save_counters blob (off + 2) t.st

let load_state t blob off =
  let off = Blob.load_ints blob off t.tags in
  let off = Blob.load_ints blob off t.targets in
  let off = Blob.load_ints blob off t.age in
  t.clock <- blob.{off};
  t.n_valid <- blob.{off + 1};
  Blob.load_counters blob (off + 2) t.st
