(** DRAM access-latency model with open-row buffers.

    Each bank keeps one open row; an access to the open row is cheaper
    than one that requires precharge + activate.  Row-buffer state is a
    microarchitectural channel in its own right (the paper's taxonomy,
    §2.2 item 1 lists DRAM row buffers); modelling it keeps memory
    latency non-constant in a realistic, testable way. *)

type config = {
  banks : int;  (** power of two *)
  row_bits : int;  (** log2 of the row size in bytes *)
  t_hit : int;  (** cycles for an open-row access *)
  t_miss : int;  (** cycles for a row-buffer miss (precharge+activate) *)
}

type t

val create : ?name:string -> config -> t
(** [name] labels the performance-counter set. *)

val counters : t -> Tp_obs.Counter.set
(** Row hit/empty/conflict/precharge counters (observability only). *)

val bank_of : config -> paddr:int -> int
(** Bank an address maps to.  The selector hashes many address bits
    (as real memory controllers do), so page colouring cannot
    partition the banks. *)

val access : t -> paddr:int -> int
(** Latency in cycles; updates the bank's open row. *)

val close_all : t -> unit
(** Precharge all banks (e.g. after self-refresh); all rows closed. *)

(** {2 Snapshot} — see {!Cache.state_words}: sizes, saves and restores
    this component's complete mutable state (including its performance
    counters) in a machine snapshot blob at a threaded offset. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int
