(** Set-associative, write-back, write-allocate cache model.

    This is the workhorse of the simulator: L1-I, L1-D, L2 and LLC are
    all instances, differing only in geometry and indexing policy.
    TLBs reuse it through {!Tlb} with page-sized "lines".

    The model tracks, per line: tag, dirty bit and LRU age.  It does not
    store data — timing channels arise from presence/absence of lines
    and from the cost of writing back dirty lines, which is exactly what
    the model captures.

    Indexing vs. tagging: L1 caches are (effectively) indexed by virtual
    address and therefore cannot be partitioned by the OS; L2/LLC are
    physically indexed, which is what makes page colouring work.  Every
    access supplies both addresses and the geometry selects which one
    feeds the set index; tags always come from the physical address. *)

type indexing = Virtual | Physical

type geometry = {
  size : int;  (** total bytes; power of two *)
  ways : int;  (** associativity; power of two *)
  line : int;  (** line size in bytes; power of two *)
  indexing : indexing;
}

val sets : geometry -> int
(** Number of sets: [size / (ways * line)]. *)

val colours : geometry -> int
(** Page colours: [max 1 (sets * line / page_size)].  The number of
    distinct cache partitions the OS can create by frame allocation. *)

type t

val create : ?name:string -> geometry -> t
(** [name] labels the cache's performance-counter set (default
    ["cache"]); {!Machine} names its instances ["c0.l1d"], ["llc"], … *)

val geometry : t -> geometry

val counters : t -> Tp_obs.Counter.set
(** Hit/miss/writeback/invalidation/flush counters.  Observability
    only: the model never reads them, so recording cannot perturb
    simulated time (see {!Tp_obs.Ctl}). *)

type result =
  | Hit
  | Miss of { evicted_dirty : bool; evicted : int }
      (** The access missed.  [evicted] is the physical line address
          (line-aligned) of the victim line, or [-1] if an invalid way
          was filled; [evicted_dirty] says whether it needed
          write-back.  Inclusive outer caches use [evicted] to
          back-invalidate inner copies. *)

val access : t -> vaddr:int -> paddr:int -> write:bool -> result
(** Look up the line containing the address; on miss, allocate it,
    evicting the LRU way of the set.  [write] marks the line dirty. *)

val access_masked :
  t -> alloc_ways:int -> vaddr:int -> paddr:int -> write:bool -> result
(** Like {!access}, but a miss may only allocate into the ways set in
    the [alloc_ways] bitmask — the Intel CAT (cache allocation
    technology) mechanism of §2.3: hits are served from any way, but a
    class of service can only displace lines within its own ways, so
    disjoint masks partition the cache by associativity instead of by
    page colour. *)

(** {2 Allocation-free access}

    The per-access hot path of the whole simulator.  The [_fast]
    variants return a bare [bool] (hit?) instead of boxing a {!result};
    on a miss the victim is available from {!last_evicted} /
    {!last_evicted_dirty} until the next allocating operation on the
    same cache.  {!access}/{!access_masked} are thin wrappers kept for
    callers that want the summary value. *)

val access_fast : t -> vaddr:int -> paddr:int -> write:bool -> bool
(** [true] = hit.  Semantics of {!access}, without the result box. *)

val access_masked_fast :
  t -> alloc_ways:int -> vaddr:int -> paddr:int -> write:bool -> bool
(** [true] = hit.  Semantics of {!access_masked}, without the box. *)

val insert_clean_fast : t -> vaddr:int -> paddr:int -> bool
(** [true] = already present.  Semantics of {!insert_clean}. *)

val last_evicted : t -> int
(** Physical line address evicted by the most recent allocating miss
    ([-1] if it filled an invalid way).  Only meaningful directly after
    a [_fast] call returned [false]. *)

val last_evicted_dirty : t -> bool
(** Whether that victim needed write-back. *)

val probe : t -> vaddr:int -> paddr:int -> bool
(** Non-allocating presence check (true = would hit). Does not touch
    LRU state; used by tests and by snooping logic, never by attacker
    code (attackers only see time). *)

val insert_clean : t -> vaddr:int -> paddr:int -> result
(** Allocate a line without marking it dirty and without counting as a
    demand access (used by the prefetcher).  Returns [Hit] if already
    present. *)

val invalidate_line : t -> vaddr:int -> paddr:int -> unit
(** Drop a single line if present (no write-back modelled). *)

val flush : t -> int
(** Invalidate everything; returns the number of dirty lines that had
    to be written back (the source of the paper's cache-flush latency
    channel, §5.3.4). *)

val dirty_lines : t -> int
(** Current number of dirty lines. *)

val valid_lines : t -> int
(** Current number of valid lines. *)

(** {2 Snapshot}

    Every component exposes the same triple: [state_words] sizes its
    slice of a machine snapshot blob, [save_state]/[load_state] write
    and read that slice at a threaded offset and return the offset
    past it.  The saved state covers {e everything} mutable — tags,
    dirty bits, ages, LRU clock, derived occupancy counts and the
    performance counters — so a restore is bit-identical. *)

val state_words : t -> int
val save_state : t -> Blob.t -> int -> int
val load_state : t -> Blob.t -> int -> int

val set_of : t -> vaddr:int -> paddr:int -> int
(** Set index the given address maps to (respects the indexing policy). *)

val lines_in_set : t -> int -> int
(** Valid lines currently in a set; for tests and diagnostics. *)

val capacity_lines : t -> int
(** Total number of lines the cache can hold. *)

val pp_geometry : Format.formatter -> geometry -> unit
