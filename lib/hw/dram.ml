type config = { banks : int; row_bits : int; t_hit : int; t_miss : int }

type t = {
  cfg : config;
  open_rows : int array; (* -1 = closed *)
  (* Observability only: never read by the model itself. *)
  st : Tp_obs.Counter.set;
  st_row_hits : Tp_obs.Counter.t;
  st_row_empty : Tp_obs.Counter.t;
  st_row_conflicts : Tp_obs.Counter.t;
  st_precharge_all : Tp_obs.Counter.t;
}

let create ?(name = "dram") cfg =
  assert (Defs.is_pow2 cfg.banks);
  let st = Tp_obs.Counter.make_set name in
  let st_row_hits = Tp_obs.Counter.counter st "row_hits" in
  let st_row_empty = Tp_obs.Counter.counter st "row_empty" in
  let st_row_conflicts = Tp_obs.Counter.counter st "row_conflicts" in
  let st_precharge_all = Tp_obs.Counter.counter st "precharge_all" in
  {
    cfg;
    open_rows = Array.make cfg.banks (-1);
    st;
    st_row_hits;
    st_row_empty;
    st_row_conflicts;
    st_precharge_all;
  }

let counters t = t.st

(* Memory controllers hash many address bits into the bank selector to
   spread conflicts; consequently page colouring (which constrains only
   the low page-number bits) cannot partition the banks — DRAM rows are
   microarchitectural state outside OS control, like the prefetcher. *)
let bank_of_row cfg row =
  (row lxor (row lsr 3) lxor (row lsr 7)) land (cfg.banks - 1)

let bank_of cfg ~paddr = bank_of_row cfg (paddr lsr cfg.row_bits)

let access t ~paddr =
  let row = paddr lsr t.cfg.row_bits in
  let bank = bank_of_row t.cfg row in
  if t.open_rows.(bank) = row then begin
    Tp_obs.Counter.incr t.st_row_hits;
    t.cfg.t_hit
  end
  else begin
    (* Same latency either way in this model; the distinction is a
       counter-only refinement (empty bank vs. conflicting open row). *)
    if t.open_rows.(bank) = -1 then Tp_obs.Counter.incr t.st_row_empty
    else Tp_obs.Counter.incr t.st_row_conflicts;
    t.open_rows.(bank) <- row;
    t.cfg.t_miss
  end

let close_all t =
  Tp_obs.Counter.incr t.st_precharge_all;
  Array.fill t.open_rows 0 (Array.length t.open_rows) (-1)

let state_words t = Array.length t.open_rows + Blob.counters_words t.st

let save_state t blob off =
  let off = Blob.save_ints blob off t.open_rows in
  Blob.save_counters blob off t.st

let load_state t blob off =
  let off = Blob.load_ints blob off t.open_rows in
  Blob.load_counters blob off t.st
