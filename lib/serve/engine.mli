(** Job execution engine of the campaign service.

    Expands a {!Protocol.job} into its deterministic cell list
    (platform × config × channel × trial, in job order), answers
    already-stored cells from the result store, and shards the rest
    across {!Tp_par.Pool} in small waves so progress can stream and
    budgets/circuit state are checked at deterministic points.

    Robustness contract (the headline of this subsystem):

    - {e retry with backoff}: a trial that raises (worker fault) or
      times out is retried up to [j_max_retries] times with exponential
      backoff before being reported [Failed];
    - {e circuit breaking}: after {!circuit_threshold} consecutive
      trial failures (post-retry), remaining cells are skipped and the
      job degrades — a sick worker pool cannot burn the whole budget;
    - {e graceful degradation}: a job that exhausts its wall budget
      returns everything computed so far, marked [Degraded] with a
      reason, mirroring the PR 1 harness contract;
    - {e idempotent resubmission}: every completed cell is stored
      before the next wave is dispatched, so resubmitting after any
      interruption (including [kill -9] — see the crash-resume tests)
      continues from the store and converges to a result bit-identical
      to an uninterrupted run;
    - {e honest caching}: only deterministic outcomes are stored.
      Wall-clock-degraded trials are host-dependent, so they are
      reported [Failed] (recomputable) and never written back.

    The dispatch loop crosses the {!Tp_fault} point [job_dispatch]
    once per cell (in the coordinating thread), so the fail-at-step-N
    driver can crash a sweep between any two dispatches and prove
    crash-resume bit-identity. *)

type cell = {
  cl_platform : string;  (** platform slug, e.g. ["haswell"] *)
  cl_plat : Tp_hw.Platform.t;
  cl_config : string;  (** scenario slug *)
  cl_kind : Tp_core.Scenario.kind;
  cl_channel : string;
  cl_trial : int;
}

val point_dispatch : string
(** ["job_dispatch"] *)

val circuit_threshold : int
(** Consecutive post-retry failures that open the circuit (5). *)

val config_slugs : (string * Tp_core.Scenario.kind) list
(** CLI-stable scenario slugs ([raw], [full-flush], [protected], ...),
    shared with [tpsim]'s [-c] argument. *)

val channel_slugs : string list
(** [l1d; l1i; tlb; btb; bhb; l2; kernel; flush]. *)

val code_rev : unit -> string
(** Digest of the running executable: the "code rev" component of
    every cache key, so results never survive a rebuild. *)

val cells_of_job : Protocol.job -> (cell list, string) result
(** Validate names and expand, preserving job list order. *)

val cell_key : code_rev:string -> Protocol.job -> cell -> string
(** The store key of one cell: digest over schema, platform, config,
    channel, seed, samples, cycle budget and trial index. *)

val compute_cell : Protocol.job -> cell -> (string, string) result
(** Run one trial (fresh boot, per-cell RNG stream) and return its
    stored blob, or [Error reason] for non-cacheable outcomes (wall
    timeout, empty collection).  The blob records the trial's certified
    leakage bounds — {!Tp_analysis.Certify.total_bits} of the harness
    cert plus the kernel switch-path bound, certificate digest and
    code rev ({!Tp_analysis.Kcert}) — so the drift monitor can compare
    measured MI against them forever after. *)

val switch_path_channels : string list
(** [kernel; flush]: the channels whose measurements exercise the
    kernel's domain-switch path, bounded by the {!Tp_analysis.Kcert}
    certificate rather than the guest-level one. *)

val drifting : Protocol.trial -> bool
(** The leakage-drift predicate: a non-failed trial with a leak verdict
    whose measured MI exceeds its recorded certified bound — the kernel
    switch-path bound for {!switch_path_channels}, the guest bound
    otherwise.  Such trials bump [tpsim_engine_mi_over_cert_total] and
    raise an [mi_over_cert] event-log alert. *)

val run_job :
  store:Tp_store.Store.t ->
  ?code_rev:string ->
  ?jobs:int ->
  ?progress:(Protocol.progress -> unit) ->
  ?compute:(Protocol.job -> cell -> (string, string) result) ->
  Protocol.job ->
  (Protocol.job_result, string) result
(** Execute a job.  [Error] only for invalid jobs (unknown platform /
    config / channel names); execution trouble degrades the result
    instead.  [compute] is a test seam (defaults to {!compute_cell});
    [jobs] defaults to the pool default.  Store write failures and
    armed [job_dispatch] faults propagate as exceptions — they are the
    simulated crashes of the crash-resume tests. *)
