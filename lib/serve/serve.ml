module Json = Tp_util.Json
module Store = Tp_store.Store

(* Swallow a dead peer: the job (and its store commits) must outlive
   the client that asked for it. *)
let send fd line =
  let data = Bytes.of_string (line ^ "\n") in
  try
    let rec loop off =
      if off < Bytes.length data then
        loop (off + Unix.write fd data off (Bytes.length data - off))
    in
    loop 0;
    true
  with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> false

let event name fields = Json.to_string (Json.Obj (("event", Json.Str name) :: fields))

let error_line msg = event "error" [ ("message", Json.Str msg) ]

let elog event_log ~event:name fields =
  match event_log with
  | None -> ()
  | Some l -> Tp_obs.Eventlog.write l ~event:name fields

(* The drift alert carries everything a pager needs to reproduce. *)
let alert_fields (t : Protocol.trial) =
  [
    ("platform", Json.Str t.Protocol.t_platform);
    ("config", Json.Str t.Protocol.t_config);
    ("channel", Json.Str t.Protocol.t_channel);
    ("trial", Json.Num (float_of_int t.Protocol.t_trial));
    ("mi_bits", Json.Num t.Protocol.t_mi_bits);
    ("cert_bits", Json.Num (float_of_int t.Protocol.t_cert_bits));
    ("kcert_bits", Json.Num (float_of_int t.Protocol.t_kcert_bits));
    ("kcert_digest", Json.Str t.Protocol.t_kcert_digest);
    ("code_rev", Json.Str t.Protocol.t_code_rev);
    ("key", Json.Str t.Protocol.t_key);
  ]

(* One request line -> zero or more progress lines -> one final line.
   [true] keeps the daemon alive, [false] is a shutdown. *)
let handle ~store ~jobs ~log ?event_log fd line =
  match Json.parse_opt line with
  | None ->
      ignore (send fd (error_line "request is not valid JSON"));
      true
  | Some req -> (
      match Option.bind (Json.member "op" req) Json.str with
      | Some "ping" ->
          ignore (send fd (event "pong" []));
          true
      | Some "metrics" ->
          (* Point-in-time OpenMetrics snapshot over the same socket
             the jobs ride; any client can scrape it (tpsim top). *)
          ignore
            (send fd
               (event "metrics" [ ("text", Json.Str (Tp_obs.Metrics.render ())) ]));
          true
      | Some "status" ->
          ignore
            (send fd
               (event "status"
                  [
                    ("store_dir", Json.Str (Store.dir store));
                    ("entries", Json.Num (float_of_int (Store.count store)));
                    ("jobs", Json.Num (float_of_int jobs));
                    ("code_rev", Json.Str (Engine.code_rev ()));
                  ]));
          true
      | Some "shutdown" ->
          elog event_log ~event:"shutdown" [];
          ignore (send fd (event "bye" []));
          false
      | Some "submit" -> (
          match Json.member "job" req with
          | None ->
              ignore (send fd (error_line "submit carries no job"));
              true
          | Some jj -> (
              match Protocol.job_of_json jj with
              | Error why ->
                  ignore (send fd (error_line ("bad job: " ^ why)));
                  true
              | Ok job ->
                  log
                    (Printf.sprintf "job %s: %d platform(s) x %d config(s) x \
                                     %d channel(s) x %d trial(s)"
                       job.Protocol.j_id
                       (List.length job.Protocol.j_platforms)
                       (List.length job.Protocol.j_configs)
                       (List.length job.Protocol.j_channels)
                       job.Protocol.j_trials);
                  elog event_log ~event:"job_received"
                    [
                      ("id", Json.Str job.Protocol.j_id);
                      ("job", Protocol.job_to_json job);
                    ];
                  let progress p =
                    ignore
                      (send fd
                         (event "progress"
                            [ ("progress", Protocol.progress_to_json p) ]))
                  in
                  (match Engine.run_job ~store ~jobs ~progress job with
                  | Ok r ->
                      log
                        (Printf.sprintf
                           "job %s: %s (%d computed, %d cached, %d failed)"
                           r.Protocol.r_id
                           (Protocol.status_name r.Protocol.r_status)
                           r.Protocol.r_computed r.Protocol.r_cached
                           r.Protocol.r_failed);
                      List.iter
                        (fun t ->
                          if Engine.drifting t then begin
                            let kernel_bound =
                              List.mem t.Protocol.t_channel
                                Engine.switch_path_channels
                            in
                            log
                              (Printf.sprintf
                                 "ALERT job %s: %s %s %s#%d measured MI \
                                  %.4f b exceeds certified %s bound %d b"
                                 r.Protocol.r_id t.Protocol.t_platform
                                 t.Protocol.t_config t.Protocol.t_channel
                                 t.Protocol.t_trial t.Protocol.t_mi_bits
                                 (if kernel_bound then "kernel switch-path"
                                  else "guest")
                                 (if kernel_bound then t.Protocol.t_kcert_bits
                                  else t.Protocol.t_cert_bits));
                            elog event_log ~event:"mi_over_cert"
                              (("id", Json.Str r.Protocol.r_id)
                              :: alert_fields t)
                          end)
                        r.Protocol.r_trials;
                      let dropped = Tp_obs.Trace.dropped () in
                      if dropped > 0 then
                        elog event_log ~event:"spans_dropped"
                          [
                            ("id", Json.Str r.Protocol.r_id);
                            ("dropped", Json.Num (float_of_int dropped));
                          ];
                      elog event_log ~event:"job_done"
                        [
                          ("id", Json.Str r.Protocol.r_id);
                          ( "status",
                            Json.Str (Protocol.status_name r.Protocol.r_status)
                          );
                          ("total", Json.Num (float_of_int r.Protocol.r_total));
                          ( "computed",
                            Json.Num (float_of_int r.Protocol.r_computed) );
                          ( "cached",
                            Json.Num (float_of_int r.Protocol.r_cached) );
                          ( "failed",
                            Json.Num (float_of_int r.Protocol.r_failed) );
                          ("digest", Json.Str r.Protocol.r_digest);
                        ];
                      ignore
                        (send fd
                           (event "result"
                              [ ("result", Protocol.result_to_json r) ]))
                  | Error why ->
                      log (Printf.sprintf "job %s rejected: %s"
                             job.Protocol.j_id why);
                      elog event_log ~event:"job_rejected"
                        [
                          ("id", Json.Str job.Protocol.j_id);
                          ("reason", Json.Str why);
                        ];
                      ignore (send fd (error_line why)));
                  true))
      | Some op ->
          ignore (send fd (error_line ("unknown op " ^ op)));
          true
      | None ->
          ignore (send fd (error_line "request carries no op"));
          true)

(* Buffered line reader over a raw fd (no in_channel: we keep the fd
   for writes on the same socket). *)
let read_lines fd f =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> true (* peer closed; daemon lives on *)
    | n ->
        let continue = ref true in
        for i = 0 to n - 1 do
          let c = Bytes.get chunk i in
          if c = '\n' then begin
            let line = Buffer.contents buf in
            Buffer.clear buf;
            if !continue && String.trim line <> "" then
              continue := f line
          end
          else Buffer.add_char buf c
        done;
        if !continue then loop () else false
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> true
  in
  loop ()

let run ~socket ~store_dir ?jobs ?(log = ignore) ?event_log ?(metrics = true)
    () =
  let jobs =
    match jobs with
    | Some j -> Stdlib.max 1 j
    | None -> Tp_par.Pool.default_jobs ()
  in
  (* The daemon is the one place metrics default on: it owns the
     process, and the bit-identity contract is enforced regardless
     (test_serve runs the same jobs with metrics off and compares
     digests).  Enable before the store opens so fsck and journal
     replay are counted. *)
  if metrics then Tp_obs.Metrics.set_enabled true;
  (* A client that vanishes mid-stream must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let store = Store.open_ ~dir:store_dir in
  let r = Store.fsck_report store in
  log
    (Printf.sprintf
       "store %s: %d entries (fsck: %d torn, %d missing, %d corrupt, %d \
        orphans, %d staging)"
       store_dir r.Store.f_entries r.Store.f_torn r.Store.f_missing
       r.Store.f_corrupt r.Store.f_orphans r.Store.f_staging);
  elog event_log ~event:"daemon_start"
    [
      ("socket", Json.Str socket);
      ("store_dir", Json.Str store_dir);
      ("jobs", Json.Num (float_of_int jobs));
      ("entries", Json.Num (float_of_int r.Store.f_entries));
      ("code_rev", Json.Str (Engine.code_rev ()));
    ];
  if Sys.file_exists socket then Unix.unlink socket;
  let srv = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
      Store.close store)
    (fun () ->
      Unix.bind srv (ADDR_UNIX socket);
      Unix.listen srv 8;
      log (Printf.sprintf "listening on %s (%d worker domains)" socket jobs);
      let alive = ref true in
      while !alive do
        let fd, _ = Unix.accept srv in
        let keep_going =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> read_lines fd (handle ~store ~jobs ~log ?event_log fd))
        in
        alive := keep_going
      done;
      log "shutdown requested, store closed")
