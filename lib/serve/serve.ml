module Json = Tp_util.Json
module Store = Tp_store.Store

(* Swallow a dead peer: the job (and its store commits) must outlive
   the client that asked for it. *)
let send fd line =
  let data = Bytes.of_string (line ^ "\n") in
  try
    let rec loop off =
      if off < Bytes.length data then
        loop (off + Unix.write fd data off (Bytes.length data - off))
    in
    loop 0;
    true
  with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) -> false

let event name fields = Json.to_string (Json.Obj (("event", Json.Str name) :: fields))

let error_line msg = event "error" [ ("message", Json.Str msg) ]

(* One request line -> zero or more progress lines -> one final line.
   [true] keeps the daemon alive, [false] is a shutdown. *)
let handle ~store ~jobs ~log fd line =
  match Json.parse_opt line with
  | None ->
      ignore (send fd (error_line "request is not valid JSON"));
      true
  | Some req -> (
      match Option.bind (Json.member "op" req) Json.str with
      | Some "ping" ->
          ignore (send fd (event "pong" []));
          true
      | Some "status" ->
          ignore
            (send fd
               (event "status"
                  [
                    ("store_dir", Json.Str (Store.dir store));
                    ("entries", Json.Num (float_of_int (Store.count store)));
                    ("jobs", Json.Num (float_of_int jobs));
                    ("code_rev", Json.Str (Engine.code_rev ()));
                  ]));
          true
      | Some "shutdown" ->
          ignore (send fd (event "bye" []));
          false
      | Some "submit" -> (
          match Json.member "job" req with
          | None ->
              ignore (send fd (error_line "submit carries no job"));
              true
          | Some jj -> (
              match Protocol.job_of_json jj with
              | Error why ->
                  ignore (send fd (error_line ("bad job: " ^ why)));
                  true
              | Ok job ->
                  log
                    (Printf.sprintf "job %s: %d platform(s) x %d config(s) x \
                                     %d channel(s) x %d trial(s)"
                       job.Protocol.j_id
                       (List.length job.Protocol.j_platforms)
                       (List.length job.Protocol.j_configs)
                       (List.length job.Protocol.j_channels)
                       job.Protocol.j_trials);
                  let progress p =
                    ignore
                      (send fd
                         (event "progress"
                            [ ("progress", Protocol.progress_to_json p) ]))
                  in
                  (match Engine.run_job ~store ~jobs ~progress job with
                  | Ok r ->
                      log
                        (Printf.sprintf
                           "job %s: %s (%d computed, %d cached, %d failed)"
                           r.Protocol.r_id
                           (Protocol.status_name r.Protocol.r_status)
                           r.Protocol.r_computed r.Protocol.r_cached
                           r.Protocol.r_failed);
                      ignore
                        (send fd
                           (event "result"
                              [ ("result", Protocol.result_to_json r) ]))
                  | Error why ->
                      log (Printf.sprintf "job %s rejected: %s"
                             job.Protocol.j_id why);
                      ignore (send fd (error_line why)));
                  true))
      | Some op ->
          ignore (send fd (error_line ("unknown op " ^ op)));
          true
      | None ->
          ignore (send fd (error_line "request carries no op"));
          true)

(* Buffered line reader over a raw fd (no in_channel: we keep the fd
   for writes on the same socket). *)
let read_lines fd f =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> true (* peer closed; daemon lives on *)
    | n ->
        let continue = ref true in
        for i = 0 to n - 1 do
          let c = Bytes.get chunk i in
          if c = '\n' then begin
            let line = Buffer.contents buf in
            Buffer.clear buf;
            if !continue && String.trim line <> "" then
              continue := f line
          end
          else Buffer.add_char buf c
        done;
        if !continue then loop () else false
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> true
  in
  loop ()

let run ~socket ~store_dir ?jobs ?(log = ignore) () =
  let jobs =
    match jobs with
    | Some j -> Stdlib.max 1 j
    | None -> Tp_par.Pool.default_jobs ()
  in
  (* A client that vanishes mid-stream must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let store = Store.open_ ~dir:store_dir in
  let r = Store.fsck_report store in
  log
    (Printf.sprintf
       "store %s: %d entries (fsck: %d torn, %d missing, %d corrupt, %d \
        orphans, %d staging)"
       store_dir r.Store.f_entries r.Store.f_torn r.Store.f_missing
       r.Store.f_corrupt r.Store.f_orphans r.Store.f_staging);
  if Sys.file_exists socket then Unix.unlink socket;
  let srv = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ());
      Store.close store)
    (fun () ->
      Unix.bind srv (ADDR_UNIX socket);
      Unix.listen srv 8;
      log (Printf.sprintf "listening on %s (%d worker domains)" socket jobs);
      let alive = ref true in
      while !alive do
        let fd, _ = Unix.accept srv in
        let keep_going =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> read_lines fd (handle ~store ~jobs ~log fd))
        in
        alive := keep_going
      done;
      log "shutdown requested, store closed")
