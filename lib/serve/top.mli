(** The [tpsim top] live dashboard.

    Scrapes the daemon's [metrics] request ({!Client.metrics}) on a
    refresh loop and renders a one-screen view: trial throughput
    (counter delta between scrapes), engine latency percentiles
    reconstructed from the histogram buckets, store hit rate, per-
    domain pool utilisation, and the leakage-drift monitor (trials
    whose measured MI exceeded their recorded certified bound).

    The exposition parser and renderer are exposed so the pipeline is
    unit-testable without a live socket. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type exposition = {
  e_types : (string * string) list;  (** family name → kind *)
  e_samples : sample list;
}

val empty : exposition

val parse : string -> exposition
(** Parse the text exposition {!Tp_obs.Metrics.render} emits.
    Unparseable lines are skipped, never fatal — a dashboard must not
    die mid-scrape. *)

val value :
  ?labels:(string * string) list -> exposition -> string -> float option
(** First sample with the name whose labels include all of [labels]. *)

val total : exposition -> string -> float
(** Sum over every label set of one sample name (0 if absent). *)

val by_label : exposition -> string -> string -> (string * float) list
(** [(label value, sample value)] pairs of one name keyed by one label. *)

val quantile : exposition -> string -> float -> float option
(** Nearest-rank quantile (p in 0..100) of a histogram family,
    reconstructed from its cumulative [_bucket{le=...}] samples. *)

val render : ?prev:exposition * float -> now:float -> exposition -> string
(** One dashboard frame.  [prev] is the previous scrape and the
    seconds elapsed since it — what turns monotonic counters into
    rates. *)

val run :
  socket:string ->
  ?interval:float ->
  ?frames:int ->
  ?raw:bool ->
  unit ->
  (unit, string) result
(** Scrape/render loop against a live daemon: every [interval]
    (default 2 s) seconds, forever — or [frames] times — clearing the
    screen between frames (except single-frame and [raw] mode, which
    prints the exposition text verbatim).  [Error] on connection loss
    or daemon rejection. *)
