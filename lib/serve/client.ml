module Json = Tp_util.Json

let connect ~socket ?(attempts = 20) ?(backoff_s = 0.05) () =
  let rec go n backoff =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n <= 1 then
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket
               (Unix.error_message e))
        else begin
          Unix.sleepf backoff;
          go (n - 1) (Stdlib.min 1.0 (backoff *. 2.0))
        end
  in
  go (Stdlib.max 1 attempts) backoff_s

let send_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let rec loop off =
    if off < Bytes.length data then
      loop (off + Unix.write fd data off (Bytes.length data - off))
  in
  match loop 0 with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connection lost while sending: " ^ Unix.error_message e)

(* Feed each received line to [f] until it returns [Some v] (the final
   event) or the daemon drops the connection. *)
let read_until fd f =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let result = ref None in
  let rec loop () =
    match !result with
    | Some v -> Ok v
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed before the final event"
        | n ->
            for i = 0 to n - 1 do
              let c = Bytes.get chunk i in
              if c = '\n' then begin
                let line = Buffer.contents buf in
                Buffer.clear buf;
                if !result = None && String.trim line <> "" then
                  result := f line
              end
              else Buffer.add_char buf c
            done;
            loop ()
        | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
            Error "connection reset before the final event")
  in
  loop ()

let with_conn ~socket f =
  match connect ~socket () with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f fd)

let event_of_line line =
  match Json.parse_opt line with
  | None -> ("garbage", Json.Null)
  | Some j ->
      ( Option.value ~default:"garbage"
          (Option.bind (Json.member "event" j) Json.str),
        j )

let request ~socket line ~expect =
  with_conn ~socket (fun fd ->
      match send_line fd line with
      | Error _ as e -> e
      | Ok () ->
          read_until fd (fun l ->
              let ev, j = event_of_line l in
              if ev = expect then Some (Ok j)
              else if ev = "error" then
                Some
                  (Error
                     (Option.value ~default:"unspecified daemon error"
                        (Option.bind (Json.member "message" j) Json.str)))
              else None)
          |> Result.join)

let ping ~socket =
  Result.map (fun _ -> ()) (request ~socket Protocol.ping_line ~expect:"pong")

let status ~socket = request ~socket Protocol.status_line ~expect:"status"

let metrics ~socket =
  Result.bind
    (request ~socket Protocol.metrics_line ~expect:"metrics")
    (fun j ->
      Option.to_result ~none:"metrics event carries no text"
        (Option.bind (Json.member "text" j) Json.str))

let shutdown ~socket =
  Result.map (fun _ -> ())
    (request ~socket Protocol.shutdown_line ~expect:"bye")

let submit ~socket ?(on_progress = ignore) job =
  with_conn ~socket (fun fd ->
      match send_line fd (Protocol.submit_line job) with
      | Error _ as e -> e
      | Ok () ->
          read_until fd (fun l ->
              let ev, j = event_of_line l in
              match ev with
              | "progress" ->
                  (match
                     Option.to_result ~none:"progress event without body"
                       (Json.member "progress" j)
                     |> Fun.flip Result.bind Protocol.progress_of_json
                   with
                  | Ok p -> on_progress p
                  | Error _ -> ());
                  None
              | "result" ->
                  Some
                    (Result.bind
                       (Option.to_result ~none:"result event without body"
                          (Json.member "result" j))
                       Protocol.result_of_json)
              | "error" ->
                  Some
                    (Error
                       (Option.value ~default:"unspecified daemon error"
                          (Option.bind (Json.member "message" j) Json.str)))
              | _ -> None)
          |> Result.join)
