(** Wire protocol of the campaign service.

    Requests and responses are newline-delimited JSON objects over a
    Unix-domain socket.  Requests carry an ["op"] field ([ping],
    [status], [metrics], [submit], [shutdown]); responses carry an ["event"]
    field.  A [submit] streams zero or more [progress] events before
    its final [result] (or [error]) event, so clients can render
    completion live.

    A {e job} names the sub-matrix to measure (platforms × protection
    configs × channels × trials) plus its robustness envelope: retry
    bound with exponential backoff for faulted trials, a deterministic
    per-trial simulated-cycle budget (degrades the trial, and is part
    of its cache key), a per-trial wall timeout and a per-job wall
    budget (which stop work but never poison the store — wall time is
    host-dependent, so wall-degraded trials are reported [failed] and
    recomputed on resume rather than cached).

    A trial's {e stored} form (what the result store files under the
    trial's key) contains only deterministic fields; per-execution
    metadata (retries, cache hit) ride the wire but never the disk, so
    a resumed sweep is bit-identical to an uninterrupted one. *)

type job = {
  j_id : string;
  j_platforms : string list;  (** platform names, e.g. ["haswell"] *)
  j_configs : string list;  (** scenario slugs, e.g. ["protected"] *)
  j_channels : string list;  (** channel slugs, e.g. ["l1d"; "kernel"] *)
  j_trials : int;  (** trials per (platform, config, channel) cell *)
  j_seed : int;
  j_samples : int;  (** harness samples per trial *)
  j_trial_cycle_budget : int option;
      (** deterministic per-trial simulated-cycle budget; in the key *)
  j_trial_timeout_s : float option;  (** wall timeout per trial attempt *)
  j_wall_budget_s : float option;  (** wall budget for the whole job *)
  j_max_retries : int;  (** extra attempts per faulted trial *)
  j_retry_backoff_s : float;  (** base backoff (doubles per attempt) *)
  j_replay : bool;
      (** allow record-once / replay-many sender slices (bit-identical
          to live execution; [--no-replay] turns it off for A/B
          debugging).  In the cache key. *)
}

val job : ?id:string -> ?platforms:string list -> ?configs:string list ->
  ?channels:string list -> ?trials:int -> ?seed:int -> ?samples:int ->
  ?trial_cycle_budget:int -> ?trial_timeout_s:float -> ?wall_budget_s:float ->
  ?max_retries:int -> ?retry_backoff_s:float -> ?replay:bool -> unit -> job
(** A job with service defaults: haswell × protected × l1d, 1 trial,
    seed 1, 300 samples, 2 retries, 50 ms base backoff, no budgets,
    replay on. *)

type status = Complete | Degraded | Failed

val status_name : status -> string
val status_of_name : string -> status option

type trial = {
  t_platform : string;
  t_config : string;
  t_channel : string;
  t_trial : int;
  t_key : string;  (** content-address in the result store *)
  t_status : status;
  t_mi_bits : float;
  t_m0_bits : float;
  t_verdict : string;  (** "leak" / "no-evidence" / "negligible" / "no-data" *)
  t_n : int;  (** samples the verdict is based on *)
  t_cert_bits : int;
      (** certified leakage bound recorded at compute time
          ({!Tp_analysis.Certify.total_bits}); the drift monitor flags a
          leak verdict whose measured MI exceeds it *)
  t_kcert_bits : int;
      (** certified kernel switch-path bound
          ({!Tp_analysis.Kcert.total_bits}); the drift monitor uses
          this bound instead for trials that exercise the switch path
          (kernel/flush channels) *)
  t_kcert_digest : string;
      (** content digest of the switch-path kernel certificate the
          trial ran under ({!Tp_analysis.Kcert.digest}) — ties every
          stored trial to a checked-in golden certificate *)
  t_kcert_clone_digest : string;
      (** digest of the clone-path kernel certificate (schema v4) *)
  t_kcert_destroy_digest : string;
      (** digest of the destroy-path kernel certificate (schema v4) *)
  t_code_rev : string;
      (** executable digest ({!Engine.code_rev}) recorded next to the
          certificate digest *)
  t_degraded_reason : string option;
  t_recovered_faults : int;  (** harness recoveries (PR 1 contract) *)
  t_checkpoints : int;
  t_retries : int;  (** execution metadata — never stored *)
  t_cached : bool;  (** execution metadata — never stored *)
}

type job_result = {
  r_id : string;
  r_status : status;  (** [Complete] iff every trial is [Complete] *)
  r_reason : string option;
  r_total : int;
  r_computed : int;
  r_cached : int;
  r_degraded : int;
  r_failed : int;
  r_retried : int;  (** total retry attempts across trials *)
  r_digest : string;
      (** digest over the sorted (key, stored-content digest) pairs of
          all non-failed trials: bit-identity anchor for crash-resume *)
  r_trials : trial list;  (** in deterministic cell order *)
}

type progress = {
  p_done : int;
  p_total : int;
  p_cached : int;
  p_failed : int;
  p_retried : int;
  p_dropped_spans : int;
      (** trace-ring spans overwritten so far (0 unless tracing) *)
}

(** {1 Stored form (result-store blobs)} *)

val stored_of_trial : trial -> string
(** Canonical JSON blob for the store: deterministic fields only. *)

val trial_of_stored : key:string -> string -> (trial, string) result
(** Parse a store blob back ([t_cached = true], [t_retries = 0]). *)

(** {1 Wire form} *)

val job_to_json : job -> Tp_util.Json.t
val job_of_json : Tp_util.Json.t -> (job, string) result
val trial_to_json : trial -> Tp_util.Json.t
val result_to_json : job_result -> Tp_util.Json.t
val result_of_json : Tp_util.Json.t -> (job_result, string) result
val progress_to_json : progress -> Tp_util.Json.t
val progress_of_json : Tp_util.Json.t -> (progress, string) result

val submit_line : job -> string
val ping_line : string
val status_line : string
val metrics_line : string
val shutdown_line : string
(** Complete request lines (no trailing newline).  [metrics_line]
    requests a point-in-time OpenMetrics snapshot; the daemon answers
    with a single [metrics] event carrying the exposition text. *)
