(** Client side of the campaign service ([tpsim sweep]).

    Thin, synchronous wrappers over the {!Protocol} wire format.  Each
    call opens its own connection; [connect]'s bounded retry loop
    absorbs the window where the daemon is still booting (or was just
    SIGKILLed and restarted — the crash-resume path). *)

val connect :
  socket:string -> ?attempts:int -> ?backoff_s:float -> unit ->
  (Unix.file_descr, string) result
(** Connect with up to [attempts] tries (default 20), sleeping
    [backoff_s] (default 0.05 s, doubling, capped at 1 s) between
    tries while the socket is absent or refusing. *)

val ping : socket:string -> (unit, string) result

val status : socket:string -> (Tp_util.Json.t, string) result
(** The daemon's status object (store dir, entry count, jobs). *)

val metrics : socket:string -> (string, string) result
(** Scrape a point-in-time OpenMetrics snapshot (the text exposition
    {!Tp_obs.Metrics.render} produced daemon-side).  This is what
    [tpsim top] refreshes on. *)

val submit :
  socket:string ->
  ?on_progress:(Protocol.progress -> unit) ->
  Protocol.job ->
  (Protocol.job_result, string) result
(** Submit and block until the final event, feeding each streamed
    progress event to [on_progress].  [Error] covers connection
    failure, daemon-side rejection and a connection dropped mid-job
    (e.g. the daemon was SIGKILLed) — resubmitting after a restart is
    the intended recovery, and is answered mostly from cache. *)

val shutdown : socket:string -> (unit, string) result
