(* The [tpsim top] dashboard: scrape the daemon's OpenMetrics snapshot
   over the job socket, parse the text exposition back into samples,
   and render a one-screen live view — throughput, latency percentile
   table, store hit rate, per-domain pool utilisation, and the
   leakage-drift monitor.

   The parser handles exactly what [Tp_obs.Metrics.render] emits (the
   Prometheus text format subset): [# TYPE]/[# HELP] comments, sample
   lines with an optional [{k="v",...}] label block, [# EOF].  It lives
   here rather than in the binary so the render pipeline is unit-
   testable against a synthetic exposition. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

type exposition = {
  e_types : (string * string) list; (* family name -> kind *)
  e_samples : sample list;
}

let empty = { e_types = []; e_samples = [] }

(* ---- parsing ----------------------------------------------------- *)

let parse_labels s =
  (* [s] is the inside of one { } block: comma-separated key=value
     pairs, values double-quoted with backslash escapes. *)
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  let ok = ref true in
  while !ok && !i < n do
    while !i < n && (s.[!i] = ',' || s.[!i] = ' ') do incr i done;
    if !i < n then begin
      let k0 = !i in
      while !i < n && s.[!i] <> '=' do incr i done;
      if !i >= n || !i + 1 >= n || s.[!i + 1] <> '"' then ok := false
      else begin
        let key = String.sub s k0 (!i - k0) in
        i := !i + 2;
        let b = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          (match s.[!i] with
          | '\\' when !i + 1 < n ->
              incr i;
              Buffer.add_char b
                (match s.[!i] with 'n' -> '\n' | c -> c)
          | '"' -> closed := true
          | c -> Buffer.add_char b c);
          incr i
        done;
        if !closed then labels := (key, Buffer.contents b) :: !labels
        else ok := false
      end
    end
  done;
  if !ok then Some (List.rev !labels) else None

let parse_sample line =
  let name_end =
    match (String.index_opt line '{', String.index_opt line ' ') with
    | Some b, Some sp when b < sp -> b
    | _, Some sp -> sp
    | _ -> String.length line
  in
  if name_end = 0 || name_end >= String.length line then None
  else
    let name = String.sub line 0 name_end in
    let labels, rest =
      if line.[name_end] = '{' then
        match String.index_from_opt line name_end '}' with
        | None -> (None, "")
        | Some e ->
            ( parse_labels (String.sub line (name_end + 1) (e - name_end - 1)),
              String.sub line (e + 1) (String.length line - e - 1) )
      else
        ( Some [],
          String.sub line name_end (String.length line - name_end) )
    in
    match labels with
    | None -> None
    | Some labels -> (
        match float_of_string_opt (String.trim rest) with
        | Some v -> Some { s_name = name; s_labels = labels; s_value = v }
        | None -> None)

let parse text =
  let types = ref [] and samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" then ()
         else if String.length line > 0 && line.[0] = '#' then begin
           match String.split_on_char ' ' line with
           | "#" :: "TYPE" :: name :: kind :: _ ->
               types := (name, kind) :: !types
           | _ -> ()
         end
         else
           match parse_sample line with
           | Some s -> samples := s :: !samples
           | None -> ());
  { e_types = List.rev !types; e_samples = List.rev !samples }

(* ---- queries ----------------------------------------------------- *)

let label s k = List.assoc_opt k s.s_labels

let value ?labels e name =
  List.find_opt
    (fun s ->
      s.s_name = name
      &&
      match labels with
      | None -> true
      | Some want ->
          List.for_all (fun (k, v) -> label s k = Some v) want)
    e.e_samples
  |> Option.map (fun s -> s.s_value)

(* Sum over every label set of one sample name. *)
let total e name =
  List.fold_left
    (fun acc s -> if s.s_name = name then acc +. s.s_value else acc)
    0.0 e.e_samples

(* All (label value, sample value) pairs of one name keyed by one
   label, in exposition order. *)
let by_label e name key =
  List.filter_map
    (fun s ->
      if s.s_name = name then
        Option.map (fun v -> (v, s.s_value)) (label s key)
      else None)
    e.e_samples

(* Quantile of an unlabelled histogram family from its cumulative
   _bucket series: the smallest [le] whose cumulative count covers the
   nearest-rank position. *)
let quantile e name p =
  let buckets =
    List.filter_map
      (fun s ->
        if s.s_name = name ^ "_bucket" then
          match label s "le" with
          | Some "+Inf" -> None
          | Some le ->
              Option.map (fun u -> (u, s.s_value)) (float_of_string_opt le)
          | None -> None
        else None)
      e.e_samples
  in
  let count = total e (name ^ "_count") in
  if count <= 0.0 then None
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = Float.max 1.0 (Float.ceil (p /. 100.0 *. count)) in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) buckets in
    let rec pick = function
      | [] -> None
      | [ (u, _) ] -> Some u
      | (u, cum) :: rest -> if cum >= rank then Some u else pick rest
    in
    pick sorted
  end

(* ---- rendering --------------------------------------------------- *)

let fmt_f v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

let fmt_opt = function None -> "-" | Some v -> fmt_f v

let pct num den = if den <= 0.0 then 0.0 else 100.0 *. num /. den

let render ?prev ~now e =
  ignore now;
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (* Throughput from the counter delta between two scrapes. *)
  let trials_now = total e "tpsim_engine_trials_total" in
  (match prev with
  | Some (p, dt) when dt > 0.0 ->
      let d = trials_now -. total p "tpsim_engine_trials_total" in
      line "throughput  %.1f trials/s (%.0f in %.1fs)" (d /. dt) d dt
  | _ -> line "throughput  - (first scrape)");
  let outcome o =
    Option.value ~default:0.0
      (value ~labels:[ ("outcome", o) ] e "tpsim_engine_trials_total")
  in
  line "trials      %s total: %s complete, %s cached, %s degraded, %s failed"
    (fmt_f trials_now)
    (fmt_f (outcome "complete"))
    (fmt_f (outcome "cached"))
    (fmt_f (outcome "degraded"))
    (fmt_f (outcome "failed"));
  let jobs_by = by_label e "tpsim_engine_jobs_total" "status" in
  if jobs_by <> [] then
    line "jobs        %s"
      (String.concat ", "
         (List.map (fun (st, v) -> Printf.sprintf "%s %s" (fmt_f v) st) jobs_by));
  let circuit =
    match value e "tpsim_engine_circuit_open" with
    | Some v when v > 0.0 -> "OPEN"
    | _ -> "closed"
  in
  let retries = total e "tpsim_engine_retries_total" in
  line "circuit     %s   retries %s" circuit (fmt_f retries);
  line "";
  line "latency (us)  %10s %10s %10s %10s %10s" "p50" "p90" "p99" "max" "count";
  List.iter
    (fun (label_, fam) ->
      let q p = fmt_opt (quantile e fam p) in
      line "  %-11s %10s %10s %10s %10s %10s" label_ (q 50.0) (q 90.0)
        (q 99.0) (q 100.0)
        (fmt_f (total e (fam ^ "_count"))))
    [
      ("trial", "tpsim_engine_trial_us");
      ("wave", "tpsim_engine_wave_us");
      ("job", "tpsim_engine_job_us");
    ];
  line "";
  let hits = total e "tpsim_store_hits_total"
  and misses = total e "tpsim_store_misses_total" in
  line "store       %s hits / %s misses (%.1f%% hit)   entries %s   puts %s   fsyncs %s"
    (fmt_f hits) (fmt_f misses)
    (pct hits (hits +. misses))
    (fmt_opt (value e "tpsim_store_entries"))
    (fmt_f (total e "tpsim_store_puts_total"))
    (fmt_f (total e "tpsim_store_fsyncs_total"));
  line "";
  line "pool        %s runs, %s tasks, %s steals"
    (fmt_f (total e "tpsim_pool_runs_total"))
    (fmt_f (total e "tpsim_pool_tasks_total"))
    (fmt_f (total e "tpsim_pool_steals_total"));
  let domains =
    List.sort_uniq compare
      (List.map fst (by_label e "tpsim_pool_tasks_total" "domain"))
  in
  List.iter
    (fun d ->
      let labels = [ ("domain", d) ] in
      let busy =
        Option.value ~default:0.0 (value ~labels e "tpsim_pool_busy_us_total")
      and idle =
        Option.value ~default:0.0 (value ~labels e "tpsim_pool_idle_us_total")
      and tasks =
        Option.value ~default:0.0 (value ~labels e "tpsim_pool_tasks_total")
      in
      line "  domain %-4s %5.1f%% busy  (%s tasks)" d
        (pct busy (busy +. idle))
        (fmt_f tasks))
    domains;
  line "";
  let drift = by_label e "tpsim_engine_mi_over_cert_total" "channel" in
  let drift_total = total e "tpsim_engine_mi_over_cert_total" in
  if drift_total > 0.0 then
    line "leakage     ALERT: %s trial(s) measured MI over certified bound (%s)"
      (fmt_f drift_total)
      (String.concat ", "
         (List.map (fun (c, v) -> Printf.sprintf "%s: %s" c (fmt_f v)) drift))
  else line "leakage     ok: no trial over its certified bound";
  Buffer.contents b

(* ---- refresh loop ------------------------------------------------ *)

let run ~socket ?(interval = 2.0) ?frames ?(raw = false) () =
  let clear = frames <> Some 1 && not raw in
  let rec loop n prev =
    match Client.metrics ~socket with
    | Error _ as e -> e
    | Ok text ->
        let now = Unix.gettimeofday () in
        if raw then print_string text
        else begin
          let e = parse text in
          if clear then print_string "\027[2J\027[H";
          print_string
            (Printf.sprintf "tpsim top — %s — scrape %d\n\n" socket (n + 1));
          print_string
            (render
               ?prev:(Option.map (fun (p, t) -> (p, now -. t)) prev)
               ~now e)
        end;
        flush stdout;
        let continue = match frames with Some k -> n + 1 < k | None -> true in
        if not continue then Ok ()
        else begin
          Unix.sleepf interval;
          let prev = if raw then None else Some (parse text, now) in
          loop (n + 1) prev
        end
  in
  loop 0 None
