module Json = Tp_util.Json

type job = {
  j_id : string;
  j_platforms : string list;
  j_configs : string list;
  j_channels : string list;
  j_trials : int;
  j_seed : int;
  j_samples : int;
  j_trial_cycle_budget : int option;
  j_trial_timeout_s : float option;
  j_wall_budget_s : float option;
  j_max_retries : int;
  j_retry_backoff_s : float;
  j_replay : bool;
}

let job ?(id = "job") ?(platforms = [ "haswell" ]) ?(configs = [ "protected" ])
    ?(channels = [ "l1d" ]) ?(trials = 1) ?(seed = 1) ?(samples = 300)
    ?trial_cycle_budget ?trial_timeout_s ?wall_budget_s ?(max_retries = 2)
    ?(retry_backoff_s = 0.05) ?(replay = true) () =
  {
    j_id = id;
    j_platforms = platforms;
    j_configs = configs;
    j_channels = channels;
    j_trials = trials;
    j_seed = seed;
    j_samples = samples;
    j_trial_cycle_budget = trial_cycle_budget;
    j_trial_timeout_s = trial_timeout_s;
    j_wall_budget_s = wall_budget_s;
    j_max_retries = max_retries;
    j_retry_backoff_s = retry_backoff_s;
    j_replay = replay;
  }

type status = Complete | Degraded | Failed

let status_name = function
  | Complete -> "complete"
  | Degraded -> "degraded"
  | Failed -> "failed"

let status_of_name = function
  | "complete" -> Some Complete
  | "degraded" -> Some Degraded
  | "failed" -> Some Failed
  | _ -> None

type trial = {
  t_platform : string;
  t_config : string;
  t_channel : string;
  t_trial : int;
  t_key : string;
  t_status : status;
  t_mi_bits : float;
  t_m0_bits : float;
  t_verdict : string;
  t_n : int;
  t_cert_bits : int;
  t_kcert_bits : int;  (** certified kernel switch-path bound *)
  t_kcert_digest : string;  (** switch-path Kcert certificate digest *)
  t_kcert_clone_digest : string;  (** clone-path Kcert certificate digest *)
  t_kcert_destroy_digest : string;
      (** destroy-path Kcert certificate digest *)
  t_code_rev : string;  (** executable digest the trial ran under *)
  t_degraded_reason : string option;
  t_recovered_faults : int;
  t_checkpoints : int;
  t_retries : int;
  t_cached : bool;
}

type job_result = {
  r_id : string;
  r_status : status;
  r_reason : string option;
  r_total : int;
  r_computed : int;
  r_cached : int;
  r_degraded : int;
  r_failed : int;
  r_retried : int;
  r_digest : string;
  r_trials : trial list;
}

type progress = {
  p_done : int;
  p_total : int;
  p_cached : int;
  p_failed : int;
  p_retried : int;
  p_dropped_spans : int;
}

(* ---- helpers ----------------------------------------------------- *)

let opt_json of_v = function None -> Json.Null | Some v -> of_v v

let get_str j k =
  match Option.bind (Json.member k j) Json.str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" k)

let get_int j k =
  match Option.bind (Json.member k j) Json.int_ with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" k)

let get_num j k =
  match Option.bind (Json.member k j) Json.num with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing or non-numeric field %S" k)

let get_bool j k =
  match Option.bind (Json.member k j) Json.bool_ with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "missing or non-boolean field %S" k)

let get_str_list j k =
  match Option.bind (Json.member k j) Json.arr with
  | Some l -> (
      match List.filter_map Json.str l with
      | ss when List.length ss = List.length l -> Ok ss
      | _ -> Error (Printf.sprintf "field %S has non-string elements" k))
  | None -> Error (Printf.sprintf "missing or non-array field %S" k)

let opt_int j k = Option.bind (Json.member k j) Json.int_
let opt_num j k = Option.bind (Json.member k j) Json.num

let opt_str j k =
  match Json.member k j with
  | Some (Json.Str s) -> Some s
  | Some _ | None -> None

let ( let* ) = Result.bind

(* ---- job --------------------------------------------------------- *)

let job_to_json j =
  Json.Obj
    [
      ("id", Json.Str j.j_id);
      ("platforms", Json.Arr (List.map (fun s -> Json.Str s) j.j_platforms));
      ("configs", Json.Arr (List.map (fun s -> Json.Str s) j.j_configs));
      ("channels", Json.Arr (List.map (fun s -> Json.Str s) j.j_channels));
      ("trials", Json.Num (float_of_int j.j_trials));
      ("seed", Json.Num (float_of_int j.j_seed));
      ("samples", Json.Num (float_of_int j.j_samples));
      ( "trial_cycle_budget",
        opt_json (fun i -> Json.Num (float_of_int i)) j.j_trial_cycle_budget );
      ("trial_timeout_s", opt_json (fun f -> Json.Num f) j.j_trial_timeout_s);
      ("wall_budget_s", opt_json (fun f -> Json.Num f) j.j_wall_budget_s);
      ("max_retries", Json.Num (float_of_int j.j_max_retries));
      ("retry_backoff_s", Json.Num j.j_retry_backoff_s);
      ("replay", Json.Bool j.j_replay);
    ]

let job_of_json j =
  let* id = get_str j "id" in
  let* platforms = get_str_list j "platforms" in
  let* configs = get_str_list j "configs" in
  let* channels = get_str_list j "channels" in
  let* trials = get_int j "trials" in
  let* seed = get_int j "seed" in
  let* samples = get_int j "samples" in
  let* max_retries = get_int j "max_retries" in
  if trials < 1 then Error "trials must be >= 1"
  else if samples < 1 then Error "samples must be >= 1"
  else if max_retries < 0 then Error "max_retries must be >= 0"
  else
    Ok
      {
        j_id = id;
        j_platforms = platforms;
        j_configs = configs;
        j_channels = channels;
        j_trials = trials;
        j_seed = seed;
        j_samples = samples;
        j_trial_cycle_budget = opt_int j "trial_cycle_budget";
        j_trial_timeout_s = opt_num j "trial_timeout_s";
        j_wall_budget_s = opt_num j "wall_budget_s";
        j_max_retries = max_retries;
        j_retry_backoff_s =
          Option.value ~default:0.05 (opt_num j "retry_backoff_s");
        (* Absent in pre-replay clients' jobs: default on (replay is
           bit-identical, so the default is safe). *)
        j_replay =
          (match Option.bind (Json.member "replay" j) Json.bool_ with
          | Some b -> b
          | None -> true);
      }

(* ---- trial ------------------------------------------------------- *)

(* The stored blob carries only fields that are a pure function of the
   trial's cache key: no retries, no cache flag, no wall-clock times. *)
let stored_fields t =
  [
    ("schema", Json.Str "tpsim-trial/4");
    ("platform", Json.Str t.t_platform);
    ("config", Json.Str t.t_config);
    ("channel", Json.Str t.t_channel);
    ("trial", Json.Num (float_of_int t.t_trial));
    ("status", Json.Str (status_name t.t_status));
    ("mi_bits", Json.Num t.t_mi_bits);
    ("m0_bits", Json.Num t.t_m0_bits);
    ("verdict", Json.Str t.t_verdict);
    ("n", Json.Num (float_of_int t.t_n));
    ("cert_bits", Json.Num (float_of_int t.t_cert_bits));
    ("kcert_bits", Json.Num (float_of_int t.t_kcert_bits));
    ("kcert_digest", Json.Str t.t_kcert_digest);
    ("kcert_clone_digest", Json.Str t.t_kcert_clone_digest);
    ("kcert_destroy_digest", Json.Str t.t_kcert_destroy_digest);
    ("code_rev", Json.Str t.t_code_rev);
    ("degraded_reason", opt_json (fun s -> Json.Str s) t.t_degraded_reason);
    ("recovered_faults", Json.Num (float_of_int t.t_recovered_faults));
    ("checkpoints", Json.Num (float_of_int t.t_checkpoints));
  ]

let stored_of_trial t = Json.to_string (Json.Obj (stored_fields t))

let trial_of_fields ~key ~retries ~cached j =
  let* platform = get_str j "platform" in
  let* config = get_str j "config" in
  let* channel = get_str j "channel" in
  let* trial = get_int j "trial" in
  let* status_s = get_str j "status" in
  let* status =
    Option.to_result ~none:("unknown status " ^ status_s)
      (status_of_name status_s)
  in
  let* mi = get_num j "mi_bits" in
  let* m0 = get_num j "m0_bits" in
  let* verdict = get_str j "verdict" in
  let* n = get_int j "n" in
  let* cert_bits = get_int j "cert_bits" in
  let* kcert_bits = get_int j "kcert_bits" in
  let* kcert_digest = get_str j "kcert_digest" in
  let* kcert_clone_digest = get_str j "kcert_clone_digest" in
  let* kcert_destroy_digest = get_str j "kcert_destroy_digest" in
  let* code_rev = get_str j "code_rev" in
  let* recovered = get_int j "recovered_faults" in
  let* checkpoints = get_int j "checkpoints" in
  Ok
    {
      t_platform = platform;
      t_config = config;
      t_channel = channel;
      t_trial = trial;
      t_key = key;
      t_status = status;
      t_mi_bits = mi;
      t_m0_bits = m0;
      t_verdict = verdict;
      t_n = n;
      t_cert_bits = cert_bits;
      t_kcert_bits = kcert_bits;
      t_kcert_digest = kcert_digest;
      t_kcert_clone_digest = kcert_clone_digest;
      t_kcert_destroy_digest = kcert_destroy_digest;
      t_code_rev = code_rev;
      t_degraded_reason = opt_str j "degraded_reason";
      t_recovered_faults = recovered;
      t_checkpoints = checkpoints;
      t_retries = retries;
      t_cached = cached;
    }

let trial_of_stored ~key s =
  match Json.parse s with
  | j -> trial_of_fields ~key ~retries:0 ~cached:true j
  | exception Json.Bad msg -> Error ("bad stored trial: " ^ msg)

let trial_to_json t =
  Json.Obj
    (stored_fields t
    @ [
        ("key", Json.Str t.t_key);
        ("retries", Json.Num (float_of_int t.t_retries));
        ("cached", Json.Bool t.t_cached);
      ])

let trial_of_json j =
  let* key = get_str j "key" in
  let* retries = get_int j "retries" in
  let* cached = get_bool j "cached" in
  trial_of_fields ~key ~retries ~cached j

(* ---- job result -------------------------------------------------- *)

let result_to_json r =
  Json.Obj
    [
      ("id", Json.Str r.r_id);
      ("status", Json.Str (status_name r.r_status));
      ("reason", opt_json (fun s -> Json.Str s) r.r_reason);
      ("total", Json.Num (float_of_int r.r_total));
      ("computed", Json.Num (float_of_int r.r_computed));
      ("cached", Json.Num (float_of_int r.r_cached));
      ("degraded", Json.Num (float_of_int r.r_degraded));
      ("failed", Json.Num (float_of_int r.r_failed));
      ("retried", Json.Num (float_of_int r.r_retried));
      ("digest", Json.Str r.r_digest);
      ("trials", Json.Arr (List.map trial_to_json r.r_trials));
    ]

let result_of_json j =
  let* id = get_str j "id" in
  let* status_s = get_str j "status" in
  let* status =
    Option.to_result ~none:("unknown status " ^ status_s)
      (status_of_name status_s)
  in
  let* total = get_int j "total" in
  let* computed = get_int j "computed" in
  let* cached = get_int j "cached" in
  let* degraded = get_int j "degraded" in
  let* failed = get_int j "failed" in
  let* retried = get_int j "retried" in
  let* digest = get_str j "digest" in
  let* trials =
    match Option.bind (Json.member "trials" j) Json.arr with
    | None -> Error "missing trials array"
    | Some l ->
        List.fold_left
          (fun acc t ->
            let* acc = acc in
            let* t = trial_of_json t in
            Ok (t :: acc))
          (Ok []) l
        |> Result.map List.rev
  in
  Ok
    {
      r_id = id;
      r_status = status;
      r_reason = opt_str j "reason";
      r_total = total;
      r_computed = computed;
      r_cached = cached;
      r_degraded = degraded;
      r_failed = failed;
      r_retried = retried;
      r_digest = digest;
      r_trials = trials;
    }

(* ---- progress ---------------------------------------------------- *)

let progress_to_json p =
  Json.Obj
    [
      ("done", Json.Num (float_of_int p.p_done));
      ("total", Json.Num (float_of_int p.p_total));
      ("cached", Json.Num (float_of_int p.p_cached));
      ("failed", Json.Num (float_of_int p.p_failed));
      ("retried", Json.Num (float_of_int p.p_retried));
      ("dropped_spans", Json.Num (float_of_int p.p_dropped_spans));
    ]

let progress_of_json j =
  let* done_ = get_int j "done" in
  let* total = get_int j "total" in
  let* cached = get_int j "cached" in
  let* failed = get_int j "failed" in
  let* retried = get_int j "retried" in
  Ok
    {
      p_done = done_;
      p_total = total;
      p_cached = cached;
      p_failed = failed;
      p_retried = retried;
      p_dropped_spans = Option.value ~default:0 (opt_int j "dropped_spans");
    }

(* ---- request lines ----------------------------------------------- *)

let submit_line j =
  Json.to_string (Json.Obj [ ("op", Json.Str "submit"); ("job", job_to_json j) ])

let ping_line = Json.to_string (Json.Obj [ ("op", Json.Str "ping") ])
let metrics_line = Json.to_string (Json.Obj [ ("op", Json.Str "metrics") ])
let status_line = Json.to_string (Json.Obj [ ("op", Json.Str "status") ])
let shutdown_line = Json.to_string (Json.Obj [ ("op", Json.Str "shutdown") ])
