(** The [tpsim serve] daemon.

    A long-running campaign service: accepts newline-delimited JSON
    requests ({!Protocol}) over a Unix-domain socket, executes jobs
    through {!Engine.run_job} against one crash-safe result store, and
    streams progress events back to the submitting client.

    Connections are served one at a time — parallelism lives {e inside}
    a job (trials shard across {!Tp_par.Pool}), which keeps job
    execution deterministic.  A client that disconnects mid-job does
    not hurt the job: writes to a dead peer are swallowed and the job
    runs to completion, its trials committed to the store, so the
    resubmission that follows a client crash is answered from cache.
    The daemon itself may be [kill -9]ed at any moment: the store's
    journal protocol guarantees completed trials survive, and a
    restarted daemon resumes mid-sweep bit-identically. *)

val run :
  socket:string ->
  store_dir:string ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  ?event_log:Tp_obs.Eventlog.t ->
  ?metrics:bool ->
  unit ->
  unit
(** Serve until a [shutdown] request.  Creates [store_dir] as needed
    and replaces a stale socket file.  [jobs] is the worker-domain
    count handed to every job (default: the pool default); [log]
    receives one human-readable line per lifecycle event.

    [metrics] (default [true]) enables {!Tp_obs.Metrics} for the
    daemon process, making the [metrics] request answer a live
    OpenMetrics snapshot (engine latency histograms, store hit/miss,
    pool utilisation) — recording is observational only, so job
    digests are bit-identical either way.  [event_log] (optional)
    receives the structured JSONL lifecycle stream: [daemon_start],
    [job_received], [job_done], [job_rejected], [spans_dropped],
    [mi_over_cert] drift alerts and [shutdown]. *)
