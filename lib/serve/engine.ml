module Store = Tp_store.Store
module Scenario = Tp_core.Scenario
module Harness = Tp_attacks.Harness

type cell = {
  cl_platform : string;
  cl_plat : Tp_hw.Platform.t;
  cl_config : string;
  cl_kind : Scenario.kind;
  cl_channel : string;
  cl_trial : int;
}

let point_dispatch = "job_dispatch"
let () = Tp_fault.Fault.register point_dispatch
let circuit_threshold = 5

(* Campaign telemetry (no-ops unless Tp_obs.Metrics is enabled).
   Latency clocks only tick when metrics are on, and nothing recorded
   here is ever read back by the engine, so a metrics-off run is
   bit-identical (enforced by test_serve). *)
module Metrics = Tp_obs.Metrics

let m_trials =
  Metrics.counter
    ~help:"Trials recorded, by outcome (complete, degraded, failed, cached)."
    "tpsim_engine_trials_total"

let m_retries =
  Metrics.counter ~help:"Retry attempts across all trials."
    "tpsim_engine_retries_total"

let m_jobs =
  Metrics.counter ~help:"Jobs finished, by final status."
    "tpsim_engine_jobs_total"

let m_circuit_opens =
  Metrics.counter ~help:"Circuit-breaker openings."
    "tpsim_engine_circuit_opens_total"

let m_circuit =
  Metrics.gauge ~help:"1 while the current job's circuit breaker is open."
    "tpsim_engine_circuit_open"

let m_trial_us =
  Metrics.histogram
    ~help:"Wall latency of one trial dispatch incl. retries, microseconds."
    "tpsim_engine_trial_us"

let m_wave_us =
  Metrics.histogram ~help:"Wall latency of one dispatch wave, microseconds."
    "tpsim_engine_wave_us"

let m_job_us =
  Metrics.histogram ~help:"Wall latency of one job, microseconds."
    "tpsim_engine_job_us"

let m_drift =
  Metrics.counter
    ~help:
      "Leakage drift: trials whose measured MI exceeded their recorded \
       certified bound, by channel."
    "tpsim_engine_mi_over_cert_total"

let us_since t0 = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)

(* Channels that exercise the kernel's domain-switch path: their
   measured MI is bounded by the switch-path certificate, not the
   guest-level one. *)
let switch_path_channels = [ "kernel"; "flush" ]

(* The drift monitor's predicate: a leak verdict above the bound the
   certifier recorded for this very trial (PR 4's guest cert, or the
   kernel switch-path cert for kernel/flush channels, stored with the
   result).  Degraded/complete only — a failed trial has no data. *)
let drifting (t : Protocol.trial) =
  let bound =
    if List.mem t.Protocol.t_channel switch_path_channels then
      t.Protocol.t_kcert_bits
    else t.Protocol.t_cert_bits
  in
  t.Protocol.t_status <> Protocol.Failed
  && t.Protocol.t_verdict = "leak"
  && t.Protocol.t_mi_bits > float_of_int bound

let platform_slugs =
  [
    ("haswell", Tp_hw.Platform.haswell);
    ("sabre", Tp_hw.Platform.sabre);
    ("armv8", Tp_hw.Platform.armv8);
  ]

let config_slugs =
  [
    ("raw", Scenario.Raw);
    ("full-flush", Scenario.Full_flush);
    ("protected", Scenario.Protected);
    ("coloured-only", Scenario.Coloured_only);
    ("no-pad", Scenario.Protected_no_pad);
    ("no-prefetcher", Scenario.Protected_no_prefetcher);
    ("cat-llc", Scenario.Cat_llc);
  ]

let channel_slugs =
  [ "l1d"; "l1i"; "tlb"; "btb"; "bhb"; "l2"; "kernel"; "flush" ]

(* Channels whose senders are pure Machine-op bodies, eligible for the
   record-once / replay-many hot path.  The kernel and flush channels
   enter the kernel / read the clock, which poisons a recording; they
   always run live (and would self-disqualify anyway). *)
let replayable_channels = [ "l1d"; "l1i"; "tlb"; "btb"; "bhb"; "l2" ]

let code_rev =
  (* Hashing the executable once per process: any rebuild invalidates
     every cache entry, so a stale store can never answer for changed
     measurement code. *)
  let rev =
    lazy
      (try Digest.to_hex (Digest.file Sys.executable_name)
       with Sys_error _ -> "unknown-code-rev")
  in
  fun () -> Lazy.force rev

let lookup what table s =
  match List.assoc_opt s table with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown %s %S (expected one of: %s)" what s
           (String.concat ", " (List.map fst table)))

let ( let* ) = Result.bind

let rec all_ok f = function
  | [] -> Ok []
  | x :: xs ->
      let* v = f x in
      let* vs = all_ok f xs in
      Ok (v :: vs)

let cells_of_job (j : Protocol.job) =
  let* () =
    if j.Protocol.j_platforms = [] then Error "job names no platforms"
    else if j.Protocol.j_configs = [] then Error "job names no configs"
    else if j.Protocol.j_channels = [] then Error "job names no channels"
    else Ok ()
  in
  let* plats =
    all_ok
      (fun s ->
        let* p = lookup "platform" platform_slugs s in
        Ok (s, p))
      j.Protocol.j_platforms
  in
  let* kinds =
    all_ok
      (fun s ->
        let* k = lookup "config" config_slugs s in
        Ok (s, k))
      j.Protocol.j_configs
  in
  let* chans =
    all_ok
      (fun s ->
        if List.mem s channel_slugs then Ok s
        else
          Error
            (Printf.sprintf "unknown channel %S (expected one of: %s)" s
               (String.concat ", " channel_slugs)))
      j.Protocol.j_channels
  in
  Ok
    (List.concat_map
       (fun (pslug, plat) ->
         List.concat_map
           (fun (cslug, kind) ->
             List.concat_map
               (fun chan ->
                 List.init j.Protocol.j_trials (fun t ->
                     {
                       cl_platform = pslug;
                       cl_plat = plat;
                       cl_config = cslug;
                       cl_kind = kind;
                       cl_channel = chan;
                       cl_trial = t;
                     }))
               chans)
           kinds)
       plats)

(* The cell's RNG stream depends only on (seed, platform, config,
   channel, trial) — never on the cell's position in the job, the job's
   shape, or the code rev — so a cell computed by a 1-cell job is
   bit-identical to the same cell inside a full-matrix sweep. *)
let cell_rng (j : Protocol.job) c =
  let tag =
    String.concat "\x00"
      [
        "tpsim-cell-rng";
        c.cl_platform;
        c.cl_config;
        c.cl_channel;
        string_of_int j.Protocol.j_seed;
        string_of_int c.cl_trial;
      ]
  in
  let d = Digest.string tag in
  Tp_util.Rng.create ~seed:(Int64.to_int (String.get_int64_le d 0))

let prepare_channel c b =
  let module Cc = Tp_attacks.Cache_channels in
  match c.cl_channel with
  | "kernel" ->
      (Tp_attacks.Kernel_chan.prepare b, Tp_attacks.Kernel_chan.symbols)
  | "flush" ->
      (Tp_attacks.Flush_chan.(prepare Offline) b, Tp_attacks.Flush_chan.symbols)
  | slug ->
      let ch =
        match slug with
        | "l1d" -> Cc.l1d
        | "l1i" -> Cc.l1i
        | "tlb" -> Cc.tlb
        | "btb" -> Cc.btb c.cl_plat
        | "bhb" -> Cc.bhb
        | "l2" -> Cc.l2
        | _ -> invalid_arg ("Tp_serve.Engine: unknown channel " ^ slug)
      in
      (ch.Cc.prepare b, ch.Cc.symbols)

(* ---- record-once / replay-many pre-pass -------------------------- *)

(* Per-(platform, config, channel) victim op streams, recorded once per
   process against a scratch boot and shared by every trial of the
   combination.  Booting and buffer allocation are deterministic, so a
   stream recorded on the scratch system is valid — op identities are
   position-independent — on every trial's own fresh boot.  Guarded by
   a mutex: one scratch boot per combination even under [-j N]. *)
let stream_memo : (string * string * string, Tp_hw.Replay.t array option) Hashtbl.t
    =
  Hashtbl.create 16

let stream_memo_mu = Mutex.create ()

let record_cell_streams c =
  let b = Scenario.boot c.cl_kind c.cl_plat in
  let (sender, _receiver), symbols = prepare_channel c b in
  let streams =
    Harness.record_streams b ~sender ~symbols
      ~slice_cycles:(Harness.default_spec c.cl_plat).Harness.slice_cycles
  in
  (* All-or-nothing: one incomplete (cut-short or poisoned) stream and
     the whole combination runs live — a half-seeded bundle would make
     the cache key's stream digest lie about what replay covers. *)
  if Array.for_all Tp_hw.Replay.complete streams then Some streams else None

let streams_for (j : Protocol.job) c =
  if not (j.Protocol.j_replay && List.mem c.cl_channel replayable_channels)
  then None
  else begin
    let key = (c.cl_platform, c.cl_config, c.cl_channel) in
    Mutex.lock stream_memo_mu;
    let r =
      match Hashtbl.find_opt stream_memo key with
      | Some v -> v
      | None ->
          let v = try record_cell_streams c with _ -> None in
          Hashtbl.replace stream_memo key v;
          v
    in
    Mutex.unlock stream_memo_mu;
    r
  end

let streams_digest = function
  | None -> "no-replay"
  | Some streams ->
      "replay:"
      ^ Digest.to_hex
          (Digest.string
             (String.concat ","
                (Array.to_list (Array.map Tp_hw.Replay.digest streams))))

let cell_key ~code_rev (j : Protocol.job) c =
  Store.key ~code_rev
    ~parts:
      [
        "tpsim-store/5";
        c.cl_platform;
        c.cl_config;
        c.cl_channel;
        string_of_int j.Protocol.j_seed;
        string_of_int j.Protocol.j_samples;
        (match j.Protocol.j_trial_cycle_budget with
        | None -> "unbounded"
        | Some b -> string_of_int b);
        (* The victim-trace digests this trial may replay (or
           "no-replay"): the key tells the whole provenance story, even
           though replay is bit-identical by construction. *)
        streams_digest (streams_for j c);
        string_of_int c.cl_trial;
      ]

let verdict_name = function
  | Tp_channel.Leakage.Leak -> "leak"
  | Tp_channel.Leakage.No_evidence -> "no-evidence"
  | Tp_channel.Leakage.Negligible -> "negligible"

let wall_reason = "wall-clock budget exhausted"

let compute_cell (j : Protocol.job) c =
  let b = Scenario.boot c.cl_kind c.cl_plat in
  let (sender, receiver), symbols = prepare_channel c b in
  let spec =
    {
      (Harness.default_spec c.cl_plat) with
      Harness.samples = j.Protocol.j_samples;
      symbols;
      budget =
        {
          Harness.max_cycles = j.Protocol.j_trial_cycle_budget;
          max_wall_s = j.Protocol.j_trial_timeout_s;
        };
      replay = j.Protocol.j_replay;
      replay_seed = streams_for j c;
    }
  in
  let rng = cell_rng j c in
  let r = Harness.run_pair_result b ~sender ~receiver spec ~rng in
  let n = Array.length r.Harness.data.Tp_channel.Mi.input in
  (* Wall-clock truncation depends on host load, so its partial dataset
     must never enter the content-addressed store: report it as a
     recomputable failure.  Cycle-budget truncation is a deterministic
     function of the key and is cached like any complete result. *)
  if r.Harness.degraded_reason = Some wall_reason then
    Error (Printf.sprintf "trial wall timeout after %d samples" n)
  else if n = 0 then
    Error
      (Printf.sprintf "no samples collected%s"
         (match r.Harness.degraded_reason with
         | Some why -> ": " ^ why
         | None -> ""))
  else
    let leak = Tp_channel.Leakage.test ~rng r.Harness.data in
    (* The kernel lifecycle certificates for this cell, recomputed at
       compute time (pure, sub-millisecond): the switch-path bound and
       all three per-path digests are stored with the trial so a
       result can always be traced back to the golden certificates and
       code revision it was measured under. *)
    let cfg = Scenario.config c.cl_kind c.cl_plat in
    let kpath path =
      Tp_analysis.Kcert.certify ~path c.cl_plat ~config_name:c.cl_config cfg
    in
    let kcert = kpath Tp_analysis.Kcert.Switch in
    Ok
      (Protocol.stored_of_trial
         {
           Protocol.t_platform = c.cl_platform;
           t_config = c.cl_config;
           t_channel = c.cl_channel;
           t_trial = c.cl_trial;
           t_key = "";
           t_status =
             (if r.Harness.degraded then Protocol.Degraded
              else Protocol.Complete);
           t_mi_bits = leak.Tp_channel.Leakage.m;
           t_m0_bits = leak.Tp_channel.Leakage.m0;
           t_verdict = verdict_name leak.Tp_channel.Leakage.verdict;
           t_n = n;
           t_cert_bits = Tp_analysis.Certify.total_bits r.Harness.cert;
           t_kcert_bits = Tp_analysis.Kcert.total_bits kcert;
           t_kcert_digest = Tp_analysis.Kcert.digest kcert;
           t_kcert_clone_digest =
             Tp_analysis.Kcert.digest (kpath Tp_analysis.Kcert.Clone);
           t_kcert_destroy_digest =
             Tp_analysis.Kcert.digest (kpath Tp_analysis.Kcert.Destroy);
           t_code_rev = code_rev ();
           t_degraded_reason = r.Harness.degraded_reason;
           t_recovered_faults = r.Harness.recovered_faults;
           t_checkpoints = r.Harness.checkpoints;
           t_retries = 0;
           t_cached = false;
         })

(* ---- job execution ----------------------------------------------- *)

let failed_trial c ~key ~retries reason =
  {
    Protocol.t_platform = c.cl_platform;
    t_config = c.cl_config;
    t_channel = c.cl_channel;
    t_trial = c.cl_trial;
    t_key = key;
    t_status = Protocol.Failed;
    t_mi_bits = 0.0;
    t_m0_bits = 0.0;
    t_verdict = "no-data";
    t_n = 0;
    t_cert_bits = 0;
    t_kcert_bits = 0;
    t_kcert_digest = "";
    t_kcert_clone_digest = "";
    t_kcert_destroy_digest = "";
    t_code_rev = "";
    t_degraded_reason = Some reason;
    t_recovered_faults = 0;
    t_checkpoints = 0;
    t_retries = retries;
    t_cached = false;
  }

(* One attempt plus up to [j_max_retries] retries with exponential
   backoff.  Traps everything: a worker fault must surface as a Failed
   trial, not tear down the pool. *)
let attempt_cell ~compute (j : Protocol.job) c =
  let rec go attempt =
    let outcome =
      match compute j c with
      | r -> r
      | exception e -> Error ("worker fault: " ^ Printexc.to_string e)
    in
    match outcome with
    | Ok blob -> (Ok blob, attempt)
    | Error why ->
        if attempt >= j.Protocol.j_max_retries then (Error why, attempt)
        else begin
          let backoff =
            j.Protocol.j_retry_backoff_s *. (2.0 ** float_of_int attempt)
          in
          if backoff > 0.0 then Unix.sleepf backoff;
          go (attempt + 1)
        end
  in
  go 0

let job_digest ~store trials =
  let pairs =
    List.filter_map
      (fun (t : Protocol.trial) ->
        if t.Protocol.t_status = Protocol.Failed then None
        else
          Option.map
            (fun d -> t.Protocol.t_key ^ "=" ^ d)
            (Store.content_digest store t.Protocol.t_key))
      trials
  in
  Digest.to_hex (Digest.string (String.concat "\n" (List.sort compare pairs)))

let rec take n = function
  | [] -> ([], [])
  | xs when n <= 0 -> ([], xs)
  | x :: xs ->
      let hd, tl = take (n - 1) xs in
      (x :: hd, tl)

let run_job ~store ?code_rev:rev ?jobs ?progress ?(compute = compute_cell)
    (j : Protocol.job) =
  let* cells = cells_of_job j in
  let rev = match rev with Some r -> r | None -> code_rev () in
  let jobs_n =
    match jobs with
    | Some n -> Stdlib.max 1 n
    | None -> Tp_par.Pool.default_jobs ()
  in
  let total = List.length cells in
  let keyed = List.map (fun c -> (c, cell_key ~code_rev:rev j c)) cells in
  let trials = Array.make total None in
  let t_job = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
  Metrics.set m_circuit 0.0;
  let cached = ref 0 and failed = ref 0 and retried = ref 0 in
  let done_ = ref 0 in
  let consecutive = ref 0 in
  let stop_reason = ref None in
  let record i t =
    trials.(i) <- Some t;
    incr done_;
    (match t.Protocol.t_status with
    | Protocol.Failed ->
        incr failed;
        incr consecutive
    | Protocol.Complete | Protocol.Degraded -> consecutive := 0);
    retried := !retried + t.Protocol.t_retries;
    if t.Protocol.t_cached then incr cached;
    let outcome =
      if t.Protocol.t_cached then "cached"
      else Protocol.status_name t.Protocol.t_status
    in
    Metrics.inc m_trials ~labels:[ ("outcome", outcome) ];
    if t.Protocol.t_retries > 0 then
      Metrics.inc m_retries ~by:t.Protocol.t_retries;
    if drifting t then
      Metrics.inc m_drift ~labels:[ ("channel", t.Protocol.t_channel) ]
  in
  let emit () =
    match progress with
    | None -> ()
    | Some f ->
        f
          {
            Protocol.p_done = !done_;
            p_total = total;
            p_cached = !cached;
            p_failed = !failed;
            p_retried = !retried;
            p_dropped_spans = Tp_obs.Trace.dropped ();
          }
  in
  (* Answer everything the store already holds; a resubmission of a
     completed job is nothing but this scan. *)
  let pending = ref [] in
  List.iteri
    (fun i (c, key) ->
      match Store.find store key with
      | None -> pending := (i, c, key) :: !pending
      | Some blob -> (
          match Protocol.trial_of_stored ~key blob with
          | Ok t -> record i t
          | Error why ->
              (* Digest-valid but unparseable: a schema change without a
                 code-rev change.  Fail loudly rather than recompute
                 into a key [put] would refuse to overwrite. *)
              record i
                (failed_trial c ~key ~retries:0
                   ("stored trial unreadable: " ^ why))))
    keyed;
  let pending = List.rev !pending in
  consecutive := 0;
  if !done_ > 0 then emit ();
  let wave = Stdlib.max 1 (jobs_n * 2) in
  let deadline =
    Option.map
      (fun s -> Unix.gettimeofday () +. s)
      j.Protocol.j_wall_budget_s
  in
  let rec waves rest =
    match rest with
    | [] -> ()
    | _ when !stop_reason <> None ->
        (* Graceful degradation: everything already computed (and
           stored) is kept; the remainder is reported failed with the
           stop reason and recomputed on resubmission. *)
        List.iter
          (fun (i, c, key) ->
            record i (failed_trial c ~key ~retries:0 (Option.get !stop_reason)))
          rest;
        emit ()
    | _
      when Option.fold ~none:false
             ~some:(fun d -> Unix.gettimeofday () >= d)
             deadline ->
        stop_reason := Some "job wall budget exhausted";
        waves rest
    | _ ->
        let chunk, rest = take wave rest in
        (* Dispatch crossings happen here in the coordinating thread —
           one per cell — so fail-at-step-N can crash a sweep between
           any two dispatches. *)
        List.iter (fun _ -> Tp_fault.Fault.hit point_dispatch) chunk;
        let arr = Array.of_list chunk in
        let t_wave = if Metrics.enabled () then Unix.gettimeofday () else 0.0 in
        let outs =
          Tp_par.Pool.run ~jobs:jobs_n (Array.length arr) (fun k ->
              let _, c, _ = arr.(k) in
              if Metrics.enabled () then begin
                let t0 = Unix.gettimeofday () in
                let out = attempt_cell ~compute j c in
                Metrics.observe m_trial_us (us_since t0);
                out
              end
              else attempt_cell ~compute j c)
        in
        if Metrics.enabled () then Metrics.observe m_wave_us (us_since t_wave);
        Array.iteri
          (fun k (out, retries) ->
            let i, c, key = arr.(k) in
            match out with
            | Ok blob -> (
                (* Store before anything depends on the result: a crash
                   after this put resumes with the cell already
                   answered. *)
                Store.put store ~key blob;
                match Protocol.trial_of_stored ~key blob with
                | Ok t ->
                    record i
                      { t with Protocol.t_cached = false; t_retries = retries }
                | Error why ->
                    record i
                      (failed_trial c ~key ~retries
                         ("computed trial unreadable: " ^ why)))
            | Error why -> record i (failed_trial c ~key ~retries why))
          outs;
        if !consecutive >= circuit_threshold && !stop_reason = None then begin
          stop_reason :=
            Some
              (Printf.sprintf
                 "circuit open after %d consecutive trial failures"
                 !consecutive);
          Metrics.inc m_circuit_opens;
          Metrics.set m_circuit 1.0
        end;
        emit ();
        waves rest
  in
  waves pending;
  let trials = Array.to_list trials |> List.map Option.get in
  let degraded =
    List.length
      (List.filter
         (fun (t : Protocol.trial) -> t.Protocol.t_status = Protocol.Degraded)
         trials)
  in
  let status =
    if !failed = total then Protocol.Failed
    else if !failed > 0 || degraded > 0 || !stop_reason <> None then
      Protocol.Degraded
    else Protocol.Complete
  in
  if Metrics.enabled () then begin
    Metrics.observe m_job_us (us_since t_job);
    Metrics.inc m_jobs ~labels:[ ("status", Protocol.status_name status) ]
  end;
  Ok
    {
      Protocol.r_id = j.Protocol.j_id;
      r_status = status;
      r_reason = !stop_reason;
      r_total = total;
      r_computed = total - !cached - !failed;
      r_cached = !cached;
      r_degraded = degraded;
      r_failed = !failed;
      r_retried = !retried;
      r_digest = job_digest ~store trials;
      r_trials = trials;
    }
