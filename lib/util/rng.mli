(** Deterministic, splittable pseudo-random number generator.

    All randomness in the simulator and the measurement toolchain flows
    through an explicit [Rng.t] so that every experiment is reproducible
    from a seed.  The generator is a SplitMix64 core (Steele et al.,
    OOPSLA 2014), which has a cheap, well-distributed [split] operation:
    independent subsystems (each core, each attack process, the shuffle
    test) get their own split stream and cannot perturb each other by
    consuming numbers in a different order. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator from a 64-bit seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val of_trial : seed:int -> trial:int -> t
(** [of_trial ~seed ~trial] derives the generator for one independent
    trial of an experiment: a pure function of [(seed, trial)], so a
    parallel runner hands trial [i] the same stream regardless of
    worker assignment or completion order. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box–Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)
