type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Trial-indexed stream splitting for the parallel runner: the stream
   for trial [i] depends only on (seed, i), never on which worker runs
   the trial or in what order, so parallel schedules reproduce the
   sequential streams exactly. *)
let of_trial ~seed ~trial =
  {
    state =
      mix64
        (Int64.add
           (mix64 (Int64.of_int seed))
           (Int64.mul (Int64.of_int (trial + 1)) golden_gamma));
  }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used in the simulator (all far below 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  (* Box–Muller; discard the second deviate for simplicity. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
