(** Minimal JSON reader/writer.

    The dependency cone deliberately has no JSON library; every layer
    that needs machine-readable output hand-rolls its printing
    ({!Tp_obs.Trace}, [Tp_analysis.Diag]).  This module centralises
    the {e parsing} side (the bench baseline gate, the campaign-service
    wire protocol and the result store all read JSON back) plus a
    printer for building documents from structured values.

    The parser accepts standard JSON with the escapes this repo's
    printers emit (incl. [\uXXXX]); it rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

val parse : string -> t
(** @raise Bad on malformed input (message includes the byte offset). *)

val parse_opt : string -> t option

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects too. *)

val str : t -> string option
val num : t -> float option
val int_ : t -> int option
(** [Num] rounded to the nearest integer. *)

val bool_ : t -> bool option
val arr : t -> t list option

val escape : string -> string
(** Escape a string body for embedding between double quotes:
    quotes, backslashes and control characters (as [\u00XX]). *)

val to_string : t -> string
(** Compact (single-line) rendering.  Integral [Num]s print without a
    fractional part; other floats round-trip ([%.17g]). *)
