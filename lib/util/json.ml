type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse s =
  let n = String.length s in
  let i = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !i)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  (* Encode a BMP code point as UTF-8; surrogate pairs are not
     reassembled (each half encodes separately), which is enough for
     the control-character escapes this repo's printers emit. *)
  let add_code_point b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string";
      match s.[!i] with
      | '"' -> incr i
      | '\\' ->
          incr i;
          if !i >= n then fail "unterminated escape";
          (match s.[!i] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
              if !i + 4 >= n then fail "truncated \\u escape";
              let cp =
                (hex_digit s.[!i + 1] lsl 12)
                lor (hex_digit s.[!i + 2] lsl 8)
                lor (hex_digit s.[!i + 3] lsl 4)
                lor hex_digit s.[!i + 4]
              in
              i := !i + 4;
              add_code_point b cp
          | c -> fail (Printf.sprintf "unsupported escape '\\%c'" c));
          incr i;
          go ()
      | c ->
          Buffer.add_char b c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr i;
        skip_ws ();
        if peek () = Some '}' then begin
          incr i;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                members ((k, v) :: acc)
            | Some '}' ->
                incr i;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some '[' ->
        incr i;
        skip_ws ();
        if peek () = Some ']' then begin
          incr i;
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr i;
                elems (v :: acc)
            | Some ']' ->
                incr i;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
    | Some 't' ->
        i := !i + 4;
        Bool true
    | Some 'f' ->
        i := !i + 5;
        Bool false
    | Some 'n' ->
        i := !i + 4;
        Null
    | Some _ ->
        let j = ref !i in
        while
          !j < n
          && (match s.[!j] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr j
        done;
        if !j = !i then fail "expected a value";
        let num = String.sub s !i (!j - !i) in
        i := !j;
        (match float_of_string_opt num with
        | Some f -> Num f
        | None -> fail "bad number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then fail "trailing garbage";
  v

let parse_opt s = match parse s with v -> Some v | exception Bad _ -> None

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f -> Some (int_of_float (Float.round f))
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let arr = function Arr l -> Some l | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> float_to_string f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr l -> "[" ^ String.concat "," (List.map to_string l) ^ "]"
  | Obj kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
      ^ "}"
