(** Deterministic parallel execution of independent trials.

    The paper's evaluation is embarrassingly parallel: every table and
    figure aggregates independent, seed-determined trials.  [run] fans
    such trials out across [Domain.spawn] workers pulling task indices
    from a shared atomic counter (work stealing in its simplest form:
    whichever worker is free takes the next trial), and merges the
    results back in trial order.

    {2 Determinism contract}

    A parallel run is {e bit-identical} to [~jobs:1] provided each task
    obeys the isolation rules:

    - the task creates every simulator object it uses (machine, boot,
      threads) — never sharing mutable simulator state across tasks;
    - all randomness comes from the task's own stream, derived from the
      trial index ({!Tp_util.Rng.of_trial} or an equivalent pure
      function of [(seed, index)]);
    - observability flags ({!Tp_obs.Ctl}) are toggled only outside
      [run].

    The pool supplies the rest: kernel object ids are allocated from a
    per-task region (at {e every} jobs level, so id-derived values
    match between sequential and parallel runs); per-domain counter
    registries are summed into the caller's registry at join in a fixed
    worker order; traced events are captured per task and replayed into
    the caller's ring in trial order.

    Tasks must not themselves call [run] (no nesting), and anything
    relying on ambient global state not listed above (e.g. an armed
    {!Tp_fault} plan) is not parallel-safe — [tpsim] forces [~jobs:1]
    under [--inject]. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the host offers. *)

val set_default_jobs : int -> unit
(** Set the process default used when [?jobs] is omitted (clamped to
    [>= 1]).  The CLI's [-j]/[--jobs] lands here. *)

val default_jobs : unit -> int

val validate_jobs : jobs:int option -> inject:bool -> (int, string) result
(** Resolve a CLI jobs request against the fault-injection constraint.
    [Ok j] is the jobs level to install ([recommended_jobs] when
    unspecified, 1 when unspecified under injection).  An {e explicit}
    request for more than one worker while a fault plan is armed is
    [Error msg]: fault plans are process-global one-shot state, so
    concurrent workers would race the armed crossing — the combination
    is rejected, not silently downgraded. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs n f] computes [[| f 0; ...; f (n-1) |]], evaluating the
    tasks on [min jobs n] domains (the calling domain works too).  If
    any task raises, the remaining tasks are abandoned after their
    current trial and the exception of the lowest-index failing task is
    re-raised (with its backtrace) after all workers have joined. *)

val map_list : ?jobs:int -> 'a list -> (int -> 'a -> 'b) -> 'b list
(** [map_list xs f] is {!run} over a list, preserving order: element
    [i] is mapped by [f i x]. *)
