let recommended_jobs () = Domain.recommended_domain_count ()

(* Campaign telemetry (no-ops unless Tp_obs.Metrics is enabled): how
   work spread across domains and how busy each slot was.  Slot 0 is
   the calling domain; spawned workers are slots 1..jobs-1, and every
   task they claim is a "steal" off the shared counter.  Workers keep
   plain per-slot tallies (one writer each) and the coordinator folds
   them into the registry at join, so recording never races. *)
let m_runs =
  Tp_obs.Metrics.counter ~help:"Pool invocations (waves dispatched)."
    "tpsim_pool_runs_total"

let m_tasks =
  Tp_obs.Metrics.counter ~help:"Tasks executed, per domain slot."
    "tpsim_pool_tasks_total"

let m_steals =
  Tp_obs.Metrics.counter
    ~help:"Tasks claimed by spawned workers (slot > 0)."
    "tpsim_pool_steals_total"

let m_busy_us =
  Tp_obs.Metrics.counter ~help:"Wall microseconds spent inside tasks, per \
                                domain slot."
    "tpsim_pool_busy_us_total"

let m_idle_us =
  Tp_obs.Metrics.counter
    ~help:"Wall microseconds a slot spent idle within its pool run."
    "tpsim_pool_idle_us_total"

let us f = int_of_float (f *. 1e6)

let record_slots ~wall tasks busy =
  let n = Array.length tasks in
  for slot = 0 to n - 1 do
    let labels = [ ("domain", string_of_int slot) ] in
    Tp_obs.Metrics.inc m_tasks ~labels ~by:tasks.(slot);
    Tp_obs.Metrics.inc m_busy_us ~labels ~by:(us busy.(slot));
    Tp_obs.Metrics.inc m_idle_us ~labels
      ~by:(Stdlib.max 0 (us (wall -. busy.(slot))))
  done;
  for slot = 1 to n - 1 do
    Tp_obs.Metrics.inc m_steals ~by:tasks.(slot)
  done;
  Tp_obs.Metrics.inc m_runs

let default = Atomic.make 1
let set_default_jobs j = Atomic.set default (Stdlib.max 1 j)
let default_jobs () = Atomic.get default

let validate_jobs ~jobs ~inject =
  match jobs with
  | Some j when inject && j > 1 ->
      Error
        (Printf.sprintf
           "--inject is incompatible with --jobs %d: fault plans are \
            process-global (one armed crossing per process), so parallel \
            worker domains would race the injection point; drop --jobs or \
            pass --jobs 1"
           j)
  | Some j -> Ok (Stdlib.max 1 j)
  | None -> Ok (if inject then 1 else recommended_jobs ())

(* Each task allocates kernel object ids from its own region so that
   id sequences depend only on the trial index, not on worker
   assignment.  Applied at every jobs level: a [-j 1] run uses the same
   regions as [-j N], which is what makes id-derived values (Exec body
   keys, debug output) bit-identical across jobs levels.  2^20 ids per
   trial is orders of magnitude beyond what any experiment allocates;
   the caller's own id mark is restored afterwards. *)
let id_region_bits = 20

let with_task i f =
  let saved = Tp_kernel.Types.id_mark () in
  Fun.protect
    ~finally:(fun () -> Tp_kernel.Types.set_id_mark saved)
    (fun () ->
      Tp_kernel.Types.set_id_mark ((i + 1) lsl id_region_bits);
      Tp_obs.Trace.with_capture (fun () -> f i))

let run_seq n f =
  (* Same capture/replay path as the parallel case so a traced [-j 1]
     run buffers exactly what [-j N] does. *)
  let inst = Tp_obs.Metrics.enabled () in
  let t_start = if inst then Unix.gettimeofday () else 0.0 in
  let busy = ref 0.0 in
  let out =
    Array.init n (fun i ->
        let t0 = if inst then Unix.gettimeofday () else 0.0 in
        let v, evs = with_task i f in
        if inst then busy := !busy +. (Unix.gettimeofday () -. t0);
        Tp_obs.Trace.replay evs;
        v)
  in
  if inst then
    record_slots
      ~wall:(Unix.gettimeofday () -. t_start)
      [| n |] [| !busy |];
  out

let run_par jobs n f =
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let results = Array.make n None in
  let errors = Array.make n None in
  let inst = Tp_obs.Metrics.enabled () in
  let t_start = if inst then Unix.gettimeofday () else 0.0 in
  let tasks = Array.make jobs 0 in
  let busy = Array.make jobs 0.0 in
  (* One writer per slot (the worker that claimed the index); reads
     happen only after every worker has joined, so plain arrays are
     race-free here.  Same story for the per-slot telemetry tallies. *)
  let work slot =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || Atomic.get stop then continue := false
      else begin
        let t0 = if inst then Unix.gettimeofday () else 0.0 in
        (match with_task i f with
        | v -> results.(i) <- Some v
        | exception e ->
            errors.(i) <- Some (e, Printexc.get_raw_backtrace ());
            Atomic.set stop true;
            continue := false);
        if inst then begin
          tasks.(slot) <- tasks.(slot) + 1;
          busy.(slot) <- busy.(slot) +. (Unix.gettimeofday () -. t0)
        end
      end
    done
  in
  let workers =
    Array.init (jobs - 1) (fun k ->
        Domain.spawn (fun () ->
            work (k + 1);
            Tp_obs.Counter.export ()))
  in
  work 0;
  let exports = Array.map Domain.join workers in
  (* Deterministic merge: counter sums in fixed worker order (sums
     commute, so totals equal the sequential run's), then traces in
     trial order. *)
  Array.iter Tp_obs.Counter.absorb exports;
  if inst then
    record_slots ~wall:(Unix.gettimeofday () -. t_start) tasks busy;
  (* Array.iter visits slots in index order, so this re-raises the
     lowest-index failure — independent of which worker hit it. *)
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  Array.map
    (fun slot ->
      match slot with
      | Some (v, evs) ->
          Tp_obs.Trace.replay evs;
          v
      | None -> assert false (* no error ⇒ every slot was filled *))
    results

let run ?jobs n f =
  if n < 0 then invalid_arg "Tp_par.Pool.run: negative task count";
  if n = 0 then [||]
  else begin
    let jobs =
      Stdlib.max 1 (Stdlib.min n (match jobs with Some j -> j | None -> default_jobs ()))
    in
    if jobs = 1 then run_seq n f else run_par jobs n f
  end

let map_list ?jobs xs f =
  let arr = Array.of_list xs in
  Array.to_list (run ?jobs (Array.length arr) (fun i -> f i arr.(i)))
