type t = Quick | Full

let samples = function Quick -> 600 | Full -> 2500
let irq_samples = function Quick -> 200 | Full -> 800
let workload_accesses = function Quick -> 150_000 | Full -> 1_000_000
let repeats = function Quick -> 30 | Full -> 320

(* A degraded (partial, budget- or fault-limited) measurement is still
   reported, but tagged so the verdict is read with appropriate
   confidence. *)
let degraded_tag d = if d then " [degraded]" else ""

let of_string = function
  | "quick" -> Some Quick
  | "full" -> Some Full
  | _ -> None
