open Tp_kernel

type fig7_row = {
  workload : string;
  base_75 : float;
  base_50 : float;
  clone_100 : float;
  clone_75 : float;
  clone_50 : float;
}

type fig7_result = {
  platform : string;
  rows : fig7_row list;
  geomean : float * float * float * float * float;
}

let selected workloads =
  match workloads with
  | None -> Tp_workloads.Splash.all
  | Some names ->
      List.filter_map Tp_workloads.Splash.by_name names

(* Cycles for one solo run of a workload under a configuration. *)
let solo_cycles ~seed p config ~colour_percent w ~accesses =
  let b = Boot.boot ~colour_percent ~domains:1 ~platform:p ~config () in
  let rng = Tp_util.Rng.create ~seed in
  Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w ~accesses ~rng

let pct base v = 100.0 *. (float_of_int v /. float_of_int base -. 1.0)

let ratio_geomean xs =
  (* Geometric mean over slowdown ratios, reported back as a %. *)
  let ratios = Array.of_list (List.map (fun s -> 1.0 +. (s /. 100.0)) xs) in
  100.0 *. (Tp_util.Stats.geomean ratios -. 1.0)

let run_fig7 ?workloads q ~seed p =
  let accesses = Quality.workload_accesses q in
  let coloured = { Config.raw with Config.colour_user = true } in
  let cloned = { Config.raw with Config.colour_user = true; clone_kernel = true } in
  let wls = selected workloads in
  (* Flatten the workload x configuration grid into independent solo
     runs (each boots its own system), fan out, regroup per row. *)
  let variants =
    [
      (Config.raw, 100);
      (coloured, 75);
      (coloured, 50);
      (cloned, 100);
      (cloned, 75);
      (cloned, 50);
    ]
  in
  let n_var = List.length variants in
  let units =
    List.concat_map (fun w -> List.map (fun v -> (w, v)) variants) wls
  in
  let cycles =
    Array.of_list
      (Tp_par.Pool.map_list units (fun _ (w, (config, cp)) ->
           solo_cycles ~seed p config ~colour_percent:cp w ~accesses))
  in
  let rows =
    List.mapi
      (fun i w ->
        let base = cycles.(i * n_var) in
        let s k = pct base cycles.((i * n_var) + k) in
        {
          workload = w.Tp_workloads.Splash.name;
          base_75 = s 1;
          base_50 = s 2;
          clone_100 = s 3;
          clone_75 = s 4;
          clone_50 = s 5;
        })
      wls
  in
  let gm f = ratio_geomean (List.map f rows) in
  {
    platform = p.Tp_hw.Platform.name;
    rows;
    geomean =
      ( gm (fun r -> r.base_75),
        gm (fun r -> r.base_50),
        gm (fun r -> r.clone_100),
        gm (fun r -> r.clone_75),
        gm (fun r -> r.clone_50) );
  }

type table8_row = { workload : string; no_pad_pct : float; pad_pct : float }

type table8_result = {
  platform : string;
  rows : table8_row list;
  max_ : float * float;
  min_ : float * float;
  mean : float * float;
}

(* Time-shared run: the workload shares the core with an idle domain
   and we measure its steady-state throughput (accesses per cycle over
   a fixed window of slices) — wall-clock ratios would quantise to
   whole slice pairs at simulatable run lengths.  Note the tick: we
   use a 1 ms slice to keep the simulation tractable (the paper uses
   10 ms); per-switch costs amortise over the slice, so switch-related
   overheads here are ~10x the paper's, with the same ordering (see
   EXPERIMENTS.md). *)
let timeshare_slice_us = 1000.0
let warmup_slices = 4
let measured_slices = 12

let timeshared_throughput ~seed p config w =
  let b = Boot.boot ~domains:2 ~platform:p ~config () in
  let sys = b.Boot.sys in
  let dom = b.Boot.domains.(0) in
  let idle_dom = b.Boot.domains.(1) in
  let pages = w.Tp_workloads.Splash.ws_kib * 1024 / Tp_hw.Defs.page_size in
  let buf = Boot.alloc_pages b dom ~pages in
  let done_accesses = ref 0 in
  let rng = Tp_util.Rng.create ~seed in
  ignore
    (Boot.spawn b dom
       (Tp_workloads.Splash.body w ~buf ~rng ~accesses:done_accesses ()));
  ignore (Boot.spawn b idle_dom (fun _ -> ()));
  let slice = Tp_hw.Platform.us_to_cycles p timeshare_slice_us in
  Exec.run_slices sys ~core:0 ~slice_cycles:slice ~slices:(2 * warmup_slices) ();
  let a0 = !done_accesses in
  let t0 = System.now sys ~core:0 in
  Exec.run_slices sys ~core:0 ~slice_cycles:slice ~slices:(2 * measured_slices) ();
  float_of_int (!done_accesses - a0) /. float_of_int (System.now sys ~core:0 - t0)

let run_table8 ?workloads q ~seed p =
  ignore (Quality.workload_accesses q);
  let pad_cycles = Tp_hw.Platform.us_to_cycles p (Config.pad_us p) in
  let protected_nopad =
    { (Config.protected_ p) with Config.pad_cycles = 0 }
  in
  let protected_pad =
    { (Config.protected_ p) with Config.pad_cycles = pad_cycles }
  in
  (* Overhead = throughput loss vs. the raw time-shared system. *)
  let pct_thr base v = 100.0 *. ((base /. v) -. 1.0) in
  let wls = selected workloads in
  let cfgs = [ Config.raw; protected_nopad; protected_pad ] in
  let units = List.concat_map (fun w -> List.map (fun c -> (w, c)) cfgs) wls in
  let thr =
    Array.of_list
      (Tp_par.Pool.map_list units (fun _ (w, config) ->
           timeshared_throughput ~seed p config w))
  in
  let rows =
    List.mapi
      (fun i w ->
        let base = thr.(i * 3) in
        {
          workload = w.Tp_workloads.Splash.name;
          no_pad_pct = pct_thr base thr.((i * 3) + 1);
          pad_pct = pct_thr base thr.((i * 3) + 2);
        })
      wls
  in
  let by f = List.map f rows in
  let pick cmp sel =
    List.fold_left
      (fun acc r -> if cmp (sel r) (sel acc) then r else acc)
      (List.hd rows) rows
  in
  let worst = pick ( > ) (fun r -> r.no_pad_pct) in
  let best = pick ( < ) (fun r -> r.no_pad_pct) in
  {
    platform = p.Tp_hw.Platform.name;
    rows;
    max_ = (worst.no_pad_pct, worst.pad_pct);
    min_ = (best.no_pad_pct, best.pad_pct);
    mean = (ratio_geomean (by (fun r -> r.no_pad_pct)),
            ratio_geomean (by (fun r -> r.pad_pct)));
  }
