(** Benchmark-regression harness behind [tpsim bench].

    Runs a fixed suite of simulator workloads (channel collections and
    a Splash solo run) as independent trials, once with [-j 1] and once
    on the parallel pool, and reports wall clock, simulated cycles/s,
    memory accesses/s (from the microarchitectural counters), speedup
    and max RSS.  Every trial digests its simulation output and the
    sequential/parallel digests must match bit-for-bit, so a reported
    speedup can never come from diverging computation.

    With [baseline] set, accesses/s is compared per experiment against
    the JSON emitted by an earlier run; a relative drop beyond
    [max_regress] percent is a failure.  Keep checked-in baselines
    generous — the gate exists to catch hot-path collapses, not host
    noise (see bench/baseline.json). *)

val run :
  Quality.t ->
  seed:int ->
  jobs:int ->
  platforms:Tp_hw.Platform.t list ->
  json_out:string option ->
  baseline:string option ->
  max_regress:float ->
  unit ->
  int
(** Returns the intended exit code: 0, or 1 on a determinism mismatch
    or a baseline regression (details on stderr). *)
