type result = {
  platform : string;
  raw_trace : Tp_attacks.Crypto.trace option;
  protected_trace : Tp_attacks.Crypto.trace option;
  raw_recovery : float;
}

let key_bits = function Quality.Quick -> 48 | Quality.Full -> 160

let run q ~seed p =
  let bits = key_bits q in
  (* Raw and protected runs are independent (own boot, own seed). *)
  let traces =
    Tp_par.Pool.run 2 (fun i ->
        if i = 0 then
          let rng = Tp_util.Rng.create ~seed in
          Tp_attacks.Crypto.run (Scenario.boot Scenario.Raw p) ~key_bits:bits
            ~rng
        else
          let rng = Tp_util.Rng.create ~seed:(seed + 1) in
          Tp_attacks.Crypto.run
            (Scenario.boot Scenario.Protected p)
            ~key_bits:bits ~rng)
  in
  let raw_trace = traces.(0) in
  let protected_trace = traces.(1) in
  {
    platform = p.Tp_hw.Platform.name;
    raw_trace;
    protected_trace;
    raw_recovery =
      (match raw_trace with
      | Some t -> Tp_attacks.Crypto.recovery_rate t
      | None -> 0.0);
  }
