type result = {
  platform : string;
  raw_leak : Tp_channel.Leakage.result;
  protected_leak : Tp_channel.Leakage.result;
  raw_series : (int * float) array;
}

let measure q ~seed kind p =
  let rng = Tp_util.Rng.create ~seed in
  let b = Scenario.boot kind p in
  let sender, receiver = Tp_attacks.Irq_chan.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = Quality.irq_samples q;
      symbols = Tp_attacks.Irq_chan.symbols;
      (* The experiment uses a 10 ms system tick (§5.3.5). *)
      slice_cycles = Tp_hw.Platform.us_to_cycles p 10_000.0;
      noise_sigma = 50.0;
      warmup = 3;
    }
  in
  let samples = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
  (samples, Tp_channel.Leakage.test ~rng samples)

let run q ~seed p =
  (* Both measures are independent trials (own boot, own seed). *)
  let measures =
    Tp_par.Pool.run 2 (fun i ->
        if i = 0 then measure q ~seed Scenario.Raw p
        else measure q ~seed:(seed + 1) Scenario.Protected p)
  in
  let raw_samples, raw_leak = measures.(0) in
  let _, protected_leak = measures.(1) in
  let raw_series =
    Array.init
      (Array.length raw_samples.Tp_channel.Mi.input)
      (fun k ->
        (raw_samples.Tp_channel.Mi.input.(k), raw_samples.Tp_channel.Mi.output.(k)))
  in
  { platform = p.Tp_hw.Platform.name; raw_leak; protected_leak; raw_series }
