open Tp_kernel

type row = { variant : string; cycles : int; slowdown_pct : float }

type result = { platform : string; rows : row list }

(* Steady-state one-way IPC cost between two threads with distinct
   address spaces, optionally on distinct kernels. *)
let measure_pair q sys b dom_a dom_b ~use_initial_kernel =
  let ep = Boot.new_endpoint b dom_a in
  let t1 = Boot.spawn b dom_a (fun _ -> ()) in
  let t2 = Boot.spawn b dom_b (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 t1;
  Sched.remove (System.sched sys) ~core:0 t2;
  (* Distinct address spaces even within one domain. *)
  if dom_a == dom_b then begin
    let asid = System.alloc_asid sys in
    let vs_cap = Retype.retype_vspace dom_a.Boot.dom_pool ~asid in
    match vs_cap.Types.target with
    | Types.Obj_vspace vs -> t2.Types.t_vspace <- Some vs
    | _ -> assert false
  end;
  if use_initial_kernel then begin
    t1.Types.t_kernel <- Some (System.initial_kernel sys);
    t2.Types.t_kernel <- Some (System.initial_kernel sys)
  end;
  let reps = Quality.repeats q * 4 in
  for _ = 1 to 10 do
    ignore (Ipc.one_way sys ~core:0 ~ep ~from:t1 ~to_:t2);
    ignore (Ipc.one_way sys ~core:0 ~ep ~from:t2 ~to_:t1)
  done;
  let t0 = System.now sys ~core:0 in
  for _ = 1 to reps do
    ignore (Ipc.one_way sys ~core:0 ~ep ~from:t1 ~to_:t2);
    ignore (Ipc.one_way sys ~core:0 ~ep ~from:t2 ~to_:t1)
  done;
  (System.now sys ~core:0 - t0) / (2 * reps)

let run q p =
  (* The four variants each boot their own system: independent trials,
     fanned out on the pool. *)
  let variants =
    Tp_par.Pool.run 4 (fun i ->
        match i with
        | 0 ->
            let b = Boot.boot ~platform:p ~config:Config.raw ~domains:1 () in
            measure_pair q b.Boot.sys b b.Boot.domains.(0) b.Boot.domains.(0)
              ~use_initial_kernel:true
        | 1 ->
            (* Kernel built for time protection (no global kernel
               mappings) but not using it: everything still runs on the
               initial kernel. *)
            let cfg = { Config.raw with Config.clone_kernel = true } in
            let b = Boot.boot ~platform:p ~config:cfg ~domains:1 () in
            measure_pair q b.Boot.sys b b.Boot.domains.(0) b.Boot.domains.(0)
              ~use_initial_kernel:true
        | 2 ->
            let b =
              Boot.boot ~platform:p ~config:(Config.protected_ p) ~domains:1 ()
            in
            measure_pair q b.Boot.sys b b.Boot.domains.(0) b.Boot.domains.(0)
              ~use_initial_kernel:false
        | _ ->
            let b =
              Boot.boot ~platform:p ~config:(Config.protected_ p) ~domains:2 ()
            in
            measure_pair q b.Boot.sys b b.Boot.domains.(0) b.Boot.domains.(1)
              ~use_initial_kernel:false)
  in
  let original = variants.(0) in
  let colour_ready = variants.(1) in
  let intra_colour = variants.(2) in
  let inter_colour = variants.(3) in
  let pct v =
    100.0 *. (float_of_int v -. float_of_int original) /. float_of_int original
  in
  {
    platform = p.Tp_hw.Platform.name;
    rows =
      [
        { variant = "original"; cycles = original; slowdown_pct = 0.0 };
        { variant = "colour-ready"; cycles = colour_ready; slowdown_pct = pct colour_ready };
        { variant = "intra-colour"; cycles = intra_colour; slowdown_pct = pct intra_colour };
        { variant = "inter-colour"; cycles = inter_colour; slowdown_pct = pct inter_colour };
      ];
  }
