(** Table 3: mutual information of the intra-core channels (L1-D,
    L1-I, TLB, BTB, BHB, and on x86 the L2) under raw, full-flush and
    protected scenarios — plus the §5.3.2 diagnosis column: the x86 L2
    residual channel re-measured with the prefetcher disabled. *)

type cell = {
  scenario : string;
  leak : Tp_channel.Leakage.result;
  degraded : bool;  (** partial measurement (budget/fault recovery) *)
}

type row = { channel : string; cells : cell list }

type result = { platform : string; rows : row list }

val run : ?channels:string list -> Quality.t -> seed:int -> Tp_hw.Platform.t -> result
(** [channels] filters by channel name (default: all for the
    platform).  The prefetcher-off ablation runs automatically for the
    x86 L2 row. *)
