type side = {
  scenario : string;
  matrix : Tp_channel.Matrix.t;
  leak : Tp_channel.Leakage.result;
  capacity_bits : float;
  degraded : bool;
}

type result = { platform : string; coloured_only : side; protected_ : side }

let run_side q ~seed kind p =
  let rng = Tp_util.Rng.create ~seed in
  let b = Scenario.boot kind p in
  let sender, receiver = Tp_attacks.Kernel_chan.prepare b in
  (* The receiver's three probe passes over its LLC share must fit the
     slice; the Sabre's low clock and large share need a longer tick
     than the 1 ms used on x86 (§5.3.1). *)
  let slice_us =
    match p.Tp_hw.Platform.arch with
    | Tp_hw.Platform.X86 -> 1_000.0
    | Tp_hw.Platform.Arm -> 10_000.0
  in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = Quality.samples q;
      symbols = Tp_attacks.Kernel_chan.symbols;
      slice_cycles = Tp_hw.Platform.us_to_cycles p slice_us;
    }
  in
  let r = Tp_attacks.Harness.run_pair_result b ~sender ~receiver spec ~rng in
  let samples = r.Tp_attacks.Harness.data in
  if Array.length samples.Tp_channel.Mi.input = 0 then
    invalid_arg "Exp_fig3.run_side: no samples collected";
  let leak = Tp_channel.Leakage.test ~rng samples in
  {
    scenario = Scenario.name kind;
    matrix = Tp_channel.Matrix.of_samples samples;
    leak;
    capacity_bits = Tp_channel.Capacity.of_samples samples;
    degraded = r.Tp_attacks.Harness.degraded;
  }

let run q ~seed p =
  (* The two sides are independent trials (own boot, own seed): fan
     them out on the pool. *)
  let sides =
    Tp_par.Pool.run 2 (fun i ->
        if i = 0 then run_side q ~seed Scenario.Coloured_only p
        else run_side q ~seed:(seed + 1) Scenario.Protected p)
  in
  {
    platform = p.Tp_hw.Platform.name;
    coloured_only = sides.(0);
    protected_ = sides.(1);
  }
