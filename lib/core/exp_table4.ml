type cell = {
  observable : string;
  padded : bool;
  leak : Tp_channel.Leakage.result;
}

type result = {
  platform : string;
  pad_us : float;
  cells : cell list;
  fig5_series : (int * float) array;
}

let measure q ~seed ~padded observable p =
  let rng = Tp_util.Rng.create ~seed in
  let kind = if padded then Scenario.Protected else Scenario.Protected_no_pad in
  let b = Scenario.boot kind p in
  let sender, receiver = Tp_attacks.Flush_chan.prepare observable b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = Quality.samples q;
      symbols = Tp_attacks.Flush_chan.symbols;
    }
  in
  let samples = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
  (samples, Tp_channel.Leakage.test ~rng samples)

let obs_name = function
  | Tp_attacks.Flush_chan.Online -> "Online"
  | Tp_attacks.Flush_chan.Offline -> "Offline"

let combos =
  [
    (false, Tp_attacks.Flush_chan.Online);
    (false, Tp_attacks.Flush_chan.Offline);
    (true, Tp_attacks.Flush_chan.Online);
    (true, Tp_attacks.Flush_chan.Offline);
  ]

let run q ~seed p =
  (* Each cell boots its own system with a seed derived from its
     position: independent trials, fanned out on the pool. *)
  let measured =
    Tp_par.Pool.map_list combos (fun i (padded, obs) ->
        (padded, obs, measure q ~seed:(seed + i) ~padded obs p))
  in
  let cells =
    List.map
      (fun (padded, obs, (_, leak)) -> { observable = obs_name obs; padded; leak })
      measured
  in
  let fig5 =
    match
      List.find_opt
        (fun (padded, obs, _) ->
          (not padded) && obs = Tp_attacks.Flush_chan.Offline)
        measured
    with
    | Some (_, _, (samples, _)) ->
        Array.init
          (Array.length samples.Tp_channel.Mi.input)
          (fun k ->
            (samples.Tp_channel.Mi.input.(k), samples.Tp_channel.Mi.output.(k)))
    | None -> [||]
  in
  {
    platform = p.Tp_hw.Platform.name;
    pad_us = Tp_kernel.Config.pad_us p;
    cells;
    fig5_series = fig5;
  }
