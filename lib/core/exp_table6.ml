open Tp_kernel

type row = { mode : string; us_by_workload : (string * float) list }

type result = { platform : string; workloads : string list; rows : row list }

let page = Tp_hw.Defs.page_size

(* The receiver workloads whose residue the switch must clean up. *)
let workloads p =
  let l1d = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size in
  let l1i = p.Tp_hw.Platform.l1i.Tp_hw.Cache.size in
  let l2 =
    match p.Tp_hw.Platform.l2 with
    | Some g -> Some g.Tp_hw.Cache.size
    | None -> None
  in
  let llc = p.Tp_hw.Platform.llc.Tp_hw.Cache.size in
  [ ("Idle", `Idle); ("L1-D", `Read l1d); ("L1-I", `Fetch l1i) ]
  @ (match l2 with Some s -> [ ("L2", `Read s) ] | None -> [])
  @
  match p.Tp_hw.Platform.arch with
  | Tp_hw.Platform.X86 -> [ ("L3", `Read (llc / 2)) ]
  | Tp_hw.Platform.Arm -> [ ("L2(LLC)", `Read (llc / 2)) ]

let body_of line spec buf ctx =
  match spec with
  | `Idle -> ()
  | `Read bytes ->
      while true do
        for i = 0 to (bytes / line) - 1 do
          Uctx.write ctx (buf + (i * line))
        done
      done
  | `Fetch bytes ->
      while true do
        for i = 0 to (bytes / line) - 1 do
          Uctx.fetch ctx (buf + (i * line))
        done
      done

let measure_one q kind p spec =
  let b = Scenario.boot kind p in
  let sys = b.Boot.sys in
  let line = p.Tp_hw.Platform.line in
  let wl_dom = b.Boot.domains.(0) in
  let idle_dom = b.Boot.domains.(1) in
  let bytes = match spec with `Idle -> page | `Read n | `Fetch n -> n in
  let buf = Boot.alloc_pages b wl_dom ~pages:(max 1 (bytes / page)) in
  let wl = Boot.spawn b wl_dom (body_of line spec buf) in
  let idle = Boot.spawn b idle_dom (fun _ -> ()) in
  Sched.remove (System.sched sys) ~core:0 wl;
  Sched.remove (System.sched sys) ~core:0 idle;
  let slice = Tp_hw.Platform.us_to_cycles p 1000.0 in
  let reps = Quality.repeats q in
  let costs = Array.make reps 0.0 in
  for r = 0 to reps - 1 do
    (* Run the workload for a slice... *)
    ignore (Domain_switch.switch sys ~core:0 ~to_:wl);
    let ctx = Uctx.make sys ~core:0 wl ~slice_end:(System.now sys ~core:0 + slice) in
    (try
       body_of line spec buf ctx;
       Uctx.idle_rest ctx
     with Uctx.Preempted -> ());
    (* ...and time switching away from it to the idle domain. *)
    let cost = Domain_switch.switch sys ~core:0 ~to_:idle in
    costs.(r) <- Tp_hw.Platform.cycles_to_us p cost.Domain_switch.total
  done;
  (* The paper reports means, medians for the bimodal LLC case; the
     median is robust for both. *)
  Tp_util.Stats.median costs

let modes = [ Scenario.Raw; Scenario.Full_flush; Scenario.Protected_no_pad ]

let mode_label = function
  | Scenario.Raw -> "Raw"
  | Scenario.Full_flush -> "Full flush"
  | Scenario.Protected_no_pad -> "Protected"
  | k -> Scenario.name k

let run q p =
  let wls = workloads p in
  (* Flatten the mode x workload grid into independent cells (each
     boots its own system), fan out, regroup per mode. *)
  let units =
    List.concat_map (fun kind -> List.map (fun wl -> (kind, wl)) wls) modes
  in
  let measured =
    Tp_par.Pool.map_list units (fun _ (kind, (name, spec)) ->
        (kind, name, measure_one q kind p spec))
  in
  let rows =
    List.map
      (fun kind ->
        {
          mode = mode_label kind;
          us_by_workload =
            List.filter_map
              (fun (k, n, v) -> if k = kind then Some (n, v) else None)
              measured;
        })
      modes
  in
  { platform = p.Tp_hw.Platform.name; workloads = List.map fst wls; rows }
