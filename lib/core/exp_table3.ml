type cell = {
  scenario : string;
  leak : Tp_channel.Leakage.result;
  degraded : bool;
}

type row = { channel : string; cells : cell list }

type result = { platform : string; rows : row list }

let measure q ~seed kind p (chan : Tp_attacks.Cache_channels.t) =
  let rng = Tp_util.Rng.create ~seed in
  let b = Scenario.boot kind p in
  let sender, receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = Quality.samples q;
      symbols = chan.Tp_attacks.Cache_channels.symbols;
    }
  in
  let leak, r = Tp_attacks.Harness.measure_leak_result b ~sender ~receiver spec ~rng in
  { scenario = Scenario.name kind; leak; degraded = r.Tp_attacks.Harness.degraded }

let run ?channels q ~seed p =
  let chans = Tp_attacks.Cache_channels.all p in
  let chans =
    match channels with
    | None -> chans
    | Some names ->
        List.filter
          (fun c -> List.mem c.Tp_attacks.Cache_channels.name names)
          chans
  in
  let scenarios_for name =
    Scenario.table3_set
    @
    (* The paper's diagnosis of the x86 L2 residual channel:
       disabling the prefetcher (§5.3.2). *)
    if name = "L2" && p.Tp_hw.Platform.prefetcher_slots > 0 then
      [ Scenario.Protected_no_prefetcher ]
    else []
  in
  (* Flatten the channel x scenario grid into independent trials (each
     boots its own system and derives its seed from its grid position),
     fan out on the pool, then regroup in grid order. *)
  let units =
    List.concat
      (List.mapi
         (fun i chan ->
           List.mapi
             (fun j kind -> (i, chan, j, kind))
             (scenarios_for chan.Tp_attacks.Cache_channels.name))
         chans)
  in
  let cells =
    Tp_par.Pool.map_list units (fun _ (i, chan, j, kind) ->
        measure q ~seed:(seed + (i * 13) + j) kind p chan)
  in
  let tagged = List.combine units cells in
  let rows =
    List.mapi
      (fun i chan ->
        {
          channel = chan.Tp_attacks.Cache_channels.name;
          cells =
            List.filter_map
              (fun ((i', _, _, _), c) -> if i' = i then Some c else None)
              tagged;
        })
      chans
  in
  { platform = p.Tp_hw.Platform.name; rows }
