(* Benchmark-regression harness (tpsim bench).

   Runs a small fixed suite of simulator workloads — covert-channel
   collections and a Splash solo run — as independent trials, once
   sequentially (-j 1) and once on the parallel pool, and reports
   throughput (simulated cycles/s, memory accesses/s), wall clock,
   speedup and max RSS as a machine-readable JSON document.

   Two properties make the numbers trustworthy:

   - every trial returns a digest of its simulation output, and the
     sequential and parallel digests must be bit-identical — the run
     fails otherwise, so a reported speedup can never come from
     computing something different;
   - throughput is measured in simulator work units (cycles, accesses
     from the microarchitectural counters), so a regression gate on
     them tracks the simulator hot path rather than host noise.

   The [--baseline] gate compares accesses/s against a previously
   emitted JSON file and fails on a relative drop beyond
   [--max-regress] percent.  Checked-in baselines should be generous
   (see bench/baseline.json): CI hosts vary widely, the gate is there
   to catch order-of-magnitude hot-path regressions, not 5%% noise. *)

open Tp_kernel

type trial_out = { t_digest : string; t_cycles : int; t_accesses : int }

type exp_result = {
  r_name : string;
  r_platform : string;
  r_trials : int;
  r_wall_seq : float;
  r_wall_par : float;
  r_speedup : float;
  r_cycles : int;
  r_accesses : int;
  r_cycles_per_sec : float;
  r_accesses_per_sec : float;
  r_deterministic : bool;
}

(* ---- per-trial instrumentation ---------------------------------- *)

let digest_string s = Digest.to_hex (Digest.string s)

let digest_samples (s : Tp_channel.Mi.samples) =
  digest_string
    (Marshal.to_string (s.Tp_channel.Mi.input, s.Tp_channel.Mi.output) [])

(* Per-core "accesses" counters of the trial's own machine.  Each trial
   boots a fresh system whose counters start at zero, so reading them at
   the end gives exactly the trial's traffic — deterministic, unlike a
   delta over the domain-global registry, where a later boot re-registers
   same-named sets. *)
let accesses_of sys =
  List.fold_left
    (fun acc set ->
      List.fold_left
        (fun a (n, v) -> if n = "accesses" then a + v else a)
        acc
        (Tp_obs.Counter.snapshot set))
    0
    (Tp_hw.Machine.counter_sets (System.machine sys))

(* ---- the suite -------------------------------------------------- *)

let bench_samples = function Quality.Quick -> 120 | Quality.Full -> 600
let bench_trials = function Quality.Quick -> 8 | Quality.Full -> 16
let bench_accesses = function Quality.Quick -> 40_000 | Quality.Full -> 200_000

type exp_spec = {
  x_name : string;
  x_run : Quality.t -> seed:int -> trial:int -> Tp_hw.Platform.t -> trial_out;
}

let channel_trial ~scenario ~prepare ~symbols q ~seed ~trial p =
  let rng = Tp_util.Rng.of_trial ~seed ~trial in
  let b = Scenario.boot scenario p in
  let sender, receiver = prepare b in
  let spec =
    {
      (Tp_attacks.Harness.default_spec p) with
      Tp_attacks.Harness.samples = bench_samples q;
      symbols;
    }
  in
  let s = Tp_attacks.Harness.run_pair b ~sender ~receiver spec ~rng in
  {
    t_digest = digest_samples s;
    t_cycles = System.now b.Boot.sys ~core:0;
    t_accesses = accesses_of b.Boot.sys;
  }

let suite =
  [
    {
      x_name = "kernel-chan";
      x_run =
        (fun q ~seed ~trial p ->
          channel_trial ~scenario:Scenario.Coloured_only
            ~prepare:Tp_attacks.Kernel_chan.prepare
            ~symbols:Tp_attacks.Kernel_chan.symbols q ~seed ~trial p);
    };
    {
      x_name = "l1d-chan";
      x_run =
        (fun q ~seed ~trial p ->
          let chan = Tp_attacks.Cache_channels.l1d in
          channel_trial ~scenario:Scenario.Raw
            ~prepare:chan.Tp_attacks.Cache_channels.prepare
            ~symbols:chan.Tp_attacks.Cache_channels.symbols q ~seed ~trial p);
    };
    {
      x_name = "flush-chan";
      x_run =
        (fun q ~seed ~trial p ->
          channel_trial ~scenario:Scenario.Protected_no_pad
            ~prepare:(Tp_attacks.Flush_chan.prepare Tp_attacks.Flush_chan.Offline)
            ~symbols:Tp_attacks.Flush_chan.symbols q ~seed ~trial p);
    };
    {
      x_name = "splash-solo";
      x_run =
        (fun q ~seed ~trial p ->
          let w = List.hd Tp_workloads.Splash.all in
          let b =
            Boot.boot ~colour_percent:100 ~domains:1 ~platform:p
              ~config:Config.raw ()
          in
          let rng = Tp_util.Rng.of_trial ~seed ~trial in
          let cycles =
            Tp_workloads.Splash.run_alone b b.Boot.domains.(0) w
              ~accesses:(bench_accesses q) ~rng
          in
          {
            t_digest = digest_string (string_of_int cycles);
            t_cycles = cycles;
            t_accesses = accesses_of b.Boot.sys;
          });
    };
  ]

(* ---- the replay-sweep experiment --------------------------------- *)

(* Victim-execution-shaped measurement of the record-once/replay-many
   hot path: record one op stream per symbol, snapshot the machine,
   then drive the same schedule of sender slices twice from the same
   restored state — once live (the body re-executes, then idles to the
   slice boundary in interrupt-latency steps) and once replayed
   (Tp_hw.Replay re-executes the ops and collapses the idle span).
   The final machine-state digests must be bit-identical — a speedup
   that computes something different is a failure, same rule as the
   parallel suite above — and the replay leg must clear the 5x
   throughput floor the sweep hot path is built on. *)
let replay_speedup_floor = 5.0

let replay_sweep_exp q p =
  let module H = Tp_attacks.Harness in
  let b = Scenario.boot Scenario.Raw p in
  let chan = Tp_attacks.Cache_channels.tlb in
  let sender, _receiver = chan.Tp_attacks.Cache_channels.prepare b in
  let symbols = chan.Tp_attacks.Cache_channels.symbols in
  let slice_cycles = (H.default_spec p).H.slice_cycles in
  let sys = b.Boot.sys in
  let m = System.machine sys in
  let streams = Array.init symbols (fun _ -> Tp_hw.Replay.create ()) in
  let mode = ref `Nop in
  let body ctx =
    match !mode with
    | `Nop -> ()
    | `Record s ->
        Uctx.set_recorder ctx (Some streams.(s));
        sender ctx s
    | `Live s -> sender ctx s
    | `Replay s ->
        if not (Uctx.replay ctx streams.(s)) then
          failwith "tpsim bench: replay-sweep: replay refused a complete stream"
  in
  ignore (Boot.spawn b b.Boot.domains.(0) body);
  let slice md =
    mode := md;
    Exec.run_slices sys ~core:0 ~slice_cycles ~slices:1 ()
  in
  for s = 0 to symbols - 1 do
    slice (`Record s)
  done;
  Array.iter
    (fun r ->
      if not (Tp_hw.Replay.complete r) then
        failwith "tpsim bench: replay-sweep: recording came back incomplete")
    streams;
  let snap = Tp_hw.Machine.snapshot m in
  let rounds = bench_trials q in
  let leg md =
    Tp_hw.Machine.restore m snap;
    let c0 = System.now sys ~core:0 in
    let a0 = accesses_of sys in
    let t0 = Unix.gettimeofday () in
    for i = 0 to (rounds * symbols) - 1 do
      slice (md (i mod symbols))
    done;
    let wall = Unix.gettimeofday () -. t0 in
    ( Tp_hw.Machine.state_digest m,
      System.now sys ~core:0 - c0,
      accesses_of sys - a0,
      wall )
  in
  let d_live, _, _, wall_live = leg (fun s -> `Live s) in
  let d_rep, cycles, accesses, wall_rep = leg (fun s -> `Replay s) in
  let per denom v = if denom > 0.0 then float_of_int v /. denom else 0.0 in
  {
    r_name = "replay-sweep";
    r_platform = p.Tp_hw.Platform.name;
    r_trials = rounds * symbols;
    r_wall_seq = wall_live;
    r_wall_par = wall_rep;
    r_speedup = (if wall_rep > 0.0 then wall_live /. wall_rep else 1.0);
    r_cycles = cycles;
    r_accesses = accesses;
    r_cycles_per_sec = per wall_rep cycles;
    r_accesses_per_sec = per wall_rep accesses;
    r_deterministic = d_live = d_rep;
  }

(* ---- running ---------------------------------------------------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

let run_exp q ~seed ~jobs p x =
  let n = bench_trials q in
  let trial i = x.x_run q ~seed ~trial:i p in
  let seq, wall_seq = time (fun () -> Tp_par.Pool.run ~jobs:1 n trial) in
  let par, wall_par = time (fun () -> Tp_par.Pool.run ~jobs n trial) in
  let det = seq = par in
  let cycles = Array.fold_left (fun a t -> a + t.t_cycles) 0 par in
  let accesses = Array.fold_left (fun a t -> a + t.t_accesses) 0 par in
  let per denom v = if denom > 0.0 then float_of_int v /. denom else 0.0 in
  {
    r_name = x.x_name;
    r_platform = p.Tp_hw.Platform.name;
    r_trials = n;
    r_wall_seq = wall_seq;
    r_wall_par = wall_par;
    r_speedup = (if wall_par > 0.0 then wall_seq /. wall_par else 1.0);
    r_cycles = cycles;
    r_accesses = accesses;
    r_cycles_per_sec = per wall_par cycles;
    r_accesses_per_sec = per wall_par accesses;
    r_deterministic = det;
  }

let max_rss_kib () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rss = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
               Scanf.sscanf
                 (String.sub line 6 (String.length line - 6))
                 " %d" (fun v -> rss := v)
           done
         with End_of_file -> ());
        !rss)
  with Sys_error _ -> 0

(* ---- JSON out --------------------------------------------------- *)

let json_of_results ~jobs ~quality results =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema\": \"tpsim-bench/1\",\n  \"jobs\": %d,\n  \"quality\": \
        \"%s\",\n  \"max_rss_kib\": %d,\n  \"experiments\": [\n"
       jobs quality (max_rss_kib ()));
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": \"%s\", \"platform\": \"%s\", \"trials\": %d,\n\
           \     \"wall_s_seq\": %.6f, \"wall_s\": %.6f, \"speedup\": %.3f,\n\
           \     \"cycles\": %d, \"accesses\": %d,\n\
           \     \"cycles_per_sec\": %.1f, \"accesses_per_sec\": %.1f,\n\
           \     \"deterministic\": %b}%s\n"
           r.r_name r.r_platform r.r_trials r.r_wall_seq r.r_wall_par
           r.r_speedup r.r_cycles r.r_accesses r.r_cycles_per_sec
           r.r_accesses_per_sec r.r_deterministic
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* The baseline file is read back with the shared minimal JSON reader
   (Tp_util.Json, which started life here). *)

module Json = Tp_util.Json

(* ---- baseline gate ---------------------------------------------- *)

type regression = {
  g_name : string;
  g_platform : string;
  g_current : float;
  g_baseline : float;
  g_drop_pct : float;
}

let check_baseline ~max_regress ~baseline results =
  let base_exps =
    match Json.member "experiments" baseline with
    | Some (Json.Arr l) -> l
    | _ -> []
  in
  let lookup name platform =
    List.find_map
      (fun e ->
        match
          ( Json.member "name" e,
            Json.member "platform" e,
            Json.member "accesses_per_sec" e )
        with
        | Some (Json.Str n), Some (Json.Str p), Some (Json.Num v)
          when n = name && p = platform ->
            Some v
        | _ -> None)
      base_exps
  in
  List.filter_map
    (fun r ->
      match lookup r.r_name r.r_platform with
      | None -> None
      | Some base when base <= 0.0 -> None
      | Some base ->
          let drop = 100.0 *. (1.0 -. (r.r_accesses_per_sec /. base)) in
          if drop > max_regress then
            Some
              {
                g_name = r.r_name;
                g_platform = r.r_platform;
                g_current = r.r_accesses_per_sec;
                g_baseline = base;
                g_drop_pct = drop;
              }
          else None)
    results

(* ---- entry point ------------------------------------------------ *)

let quality_name = function Quality.Quick -> "quick" | Quality.Full -> "full"

let run q ~seed ~jobs ~platforms ~json_out ~baseline ~max_regress () =
  (* Throughput counts simulator work units, so the counters must be
     live; toggled here, outside any parallel region (Tp_obs.Ctl). *)
  let counters_were_on = Tp_obs.Ctl.counters_on () in
  Tp_obs.Ctl.set_counters true;
  let results =
    List.concat_map
      (fun p ->
        List.map (fun x -> run_exp q ~seed ~jobs p x) suite
        @ [ replay_sweep_exp q p ])
      platforms
  in
  if not counters_were_on then Tp_obs.Ctl.set_counters false;
  Format.printf "tpsim bench: %d jobs, quality %s, seed %d@." jobs
    (quality_name q) seed;
  List.iter
    (fun r ->
      Format.printf
        "  %-12s %-8s %2d trials  %7.3fs seq  %7.3fs par  %5.2fx  %10.0f \
         acc/s  %s@."
        r.r_name r.r_platform r.r_trials r.r_wall_seq r.r_wall_par r.r_speedup
        r.r_accesses_per_sec
        (if r.r_deterministic then "bit-identical" else "MISMATCH"))
    results;
  let nondet = List.filter (fun r -> not r.r_deterministic) results in
  List.iter
    (fun r ->
      if r.r_name = "replay-sweep" then
        Printf.eprintf
          "tpsim bench: FAIL %s/%s: replayed machine state differs from live \
           execution\n\
           %!"
          r.r_name r.r_platform
      else
        Printf.eprintf
          "tpsim bench: FAIL %s/%s: parallel output differs from sequential\n%!"
          r.r_name r.r_platform)
    nondet;
  (* The sweep hot path exists to buy this factor; losing it is a
     regression even if absolute throughput still clears the baseline. *)
  let slow_replay =
    List.filter
      (fun r ->
        r.r_name = "replay-sweep" && r.r_speedup < replay_speedup_floor)
      results
  in
  List.iter
    (fun r ->
      Printf.eprintf
        "tpsim bench: FAIL %s/%s: replay speedup %.2fx below the %.0fx floor\n%!"
        r.r_name r.r_platform r.r_speedup replay_speedup_floor)
    slow_replay;
  (match json_out with
  | None -> ()
  | Some f ->
      let oc = open_out f in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc
            (json_of_results ~jobs ~quality:(quality_name q) results));
      Printf.eprintf "tpsim bench: wrote %s\n%!" f);
  let regressions =
    match baseline with
    | None -> []
    | Some f -> (
        match
          let ic = open_in f in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Json.parse (In_channel.input_all ic))
        with
        | j -> check_baseline ~max_regress ~baseline:j results
        | exception (Sys_error msg | Json.Bad msg) ->
            Printf.eprintf "tpsim bench: cannot read baseline %s: %s\n%!" f msg;
            [])
  in
  List.iter
    (fun g ->
      Printf.eprintf
        "tpsim bench: REGRESSION %s/%s: %.0f accesses/s vs baseline %.0f \
         (-%.1f%% > %.1f%% allowed)\n%!"
        g.g_name g.g_platform g.g_current g.g_baseline g.g_drop_pct max_regress)
    regressions;
  if nondet <> [] || slow_replay <> [] || regressions <> [] then 1 else 0
