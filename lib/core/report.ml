open Tp_util

let mb bits = Printf.sprintf "%.1f" (Tp_channel.Mi.bits_to_millibits bits)

let verdict_cell (r : Tp_channel.Leakage.result) =
  let tag =
    match r.Tp_channel.Leakage.verdict with
    | Tp_channel.Leakage.Leak -> "LEAK"
    | Tp_channel.Leakage.No_evidence -> "ok"
    | Tp_channel.Leakage.Negligible -> "ok(<1mb)"
  in
  Printf.sprintf "M=%s M0=%s %s" (mb r.Tp_channel.Leakage.m)
    (mb r.Tp_channel.Leakage.m0) tag

let table2 (r : Exp_table2.result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 2: worst-case cache flush cost (us) — %s [paper: x86 L1 \
            27 total / full 520; Arm L1 45 / full 1150]"
           r.Exp_table2.platform)
      ~headers:[ "Cache"; "direct"; "indirect"; "total" ]
  in
  List.iter
    (fun row ->
      Table.add_row t
        [
          row.Exp_table2.which;
          Table.cell_f row.Exp_table2.direct_us;
          Table.cell_f row.Exp_table2.indirect_us;
          Table.cell_f row.Exp_table2.total_us;
        ])
    r.Exp_table2.rows;
  Table.print t

let fig3_side (s : Exp_fig3.side) =
  Format.printf "--- %s%s ---@." s.Exp_fig3.scenario
    (Quality.degraded_tag s.Exp_fig3.degraded);
  Tp_channel.Matrix.pp Format.std_formatter s.Exp_fig3.matrix;
  Format.printf "%a;  discrete capacity C = %s mb%s@.@."
    Tp_channel.Leakage.pp_result s.Exp_fig3.leak
    (mb s.Exp_fig3.capacity_bits)
    (Quality.degraded_tag s.Exp_fig3.degraded)

let fig3 (r : Exp_fig3.result) =
  Format.printf
    "Figure 3: kernel timing-channel matrix on %s (rows: probe misses; \
     columns: syscall symbol)@.[paper: coloured-only M=0.79b (x86) / 20mb \
     (Arm); protected M<=0.6mb]@.@."
    r.Exp_fig3.platform;
  fig3_side r.Exp_fig3.coloured_only;
  fig3_side r.Exp_fig3.protected_

let table3 (r : Exp_table3.result) =
  (* Rows can have extra ablation columns (the x86 L2 prefetcher-off
     cell); build the header set as the union in order of appearance. *)
  let scenarios =
    List.fold_left
      (fun acc row ->
        List.fold_left
          (fun acc c ->
            if List.mem c.Exp_table3.scenario acc then acc
            else acc @ [ c.Exp_table3.scenario ])
          acc row.Exp_table3.cells)
      [] r.Exp_table3.rows
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 3: intra-core channel MI (mb) — %s [paper: raw large; \
            full-flush/protected closed, except x86 L2 residual 50mb from \
            the prefetcher]"
           r.Exp_table3.platform)
      ~headers:("Channel" :: scenarios)
  in
  List.iter
    (fun row ->
      let cell_for s =
        match
          List.find_opt (fun c -> c.Exp_table3.scenario = s) row.Exp_table3.cells
        with
        | Some c ->
            verdict_cell c.Exp_table3.leak
            ^ Quality.degraded_tag c.Exp_table3.degraded
        | None -> ""
      in
      Table.add_row t (row.Exp_table3.channel :: List.map cell_for scenarios))
    r.Exp_table3.rows;
  Table.print t

let table4 (r : Exp_table4.result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 4: cache-flush latency channel (pad = %.1f us) — %s \
            [paper: no-pad leaks, padded closed]"
           r.Exp_table4.pad_us r.Exp_table4.platform)
      ~headers:[ "Timing"; "Padding"; "Result" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [
          c.Exp_table4.observable;
          (if c.Exp_table4.padded then "padded" else "no pad");
          verdict_cell c.Exp_table4.leak;
        ])
    r.Exp_table4.cells;
  Table.print t

let fig5 (r : Exp_table4.result) =
  Format.printf
    "Figure 5: unmitigated cache-flush channel on %s — offline time vs \
     sender cache footprint@."
    r.Exp_table4.platform;
  if Array.length r.Exp_table4.fig5_series = 0 then
    Format.printf "(no series recorded)@."
  else begin
    (* Mean offline time per sender symbol, as an ASCII series. *)
    let by_sym = Hashtbl.create 16 in
    Array.iter
      (fun (s, y) ->
        let prev = try Hashtbl.find by_sym s with Not_found -> [] in
        Hashtbl.replace by_sym s (y :: prev))
      r.Exp_table4.fig5_series;
    let syms = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_sym []) in
    let means =
      List.map
        (fun s -> (s, Stats.mean (Array.of_list (Hashtbl.find by_sym s))))
        syms
    in
    let lo = List.fold_left (fun a (_, m) -> Stdlib.min a m) infinity means in
    let hi = List.fold_left (fun a (_, m) -> Stdlib.max a m) neg_infinity means in
    List.iter
      (fun (s, m) ->
        let bar =
          if hi > lo then int_of_float ((m -. lo) /. (hi -. lo) *. 50.0) else 0
        in
        Format.printf "  sets bucket %2d | %s %.0f cycles@." s
          (String.make bar '#') m)
      means
  end;
  Format.printf "@."

let fig4 (r : Exp_fig4.result) =
  Format.printf
    "Figure 4: cross-core LLC side channel vs square-and-multiply — %s@."
    r.Exp_fig4.platform;
  (match r.Exp_fig4.raw_trace with
  | Some t ->
      Format.printf "raw system: spy observes the victim —@.";
      Tp_attacks.Crypto.pp_trace Format.std_formatter t
  | None -> Format.printf "raw system: spy found no observable sets (!)@.");
  (match r.Exp_fig4.protected_trace with
  | Some t when Array.exists (fun a -> a > 0) t.Tp_attacks.Crypto.activity ->
      Format.printf "protected: channel still open (unexpected) —@.";
      Tp_attacks.Crypto.pp_trace Format.std_formatter t
  | Some _ | None ->
      Format.printf
        "protected: the spy can no longer detect any cache activity of the \
         victim; channel closed (as in the paper).@.");
  Format.printf "@."

let fig6 (r : Exp_fig6.result) =
  Format.printf
    "Figure 6: interrupt channel — %s [paper: raw M=902mb; partitioned \
     closed]@."
    r.Exp_fig6.platform;
  (* Mean first-online period per timer symbol. *)
  let by_sym = Hashtbl.create 8 in
  Array.iter
    (fun (s, y) ->
      let prev = try Hashtbl.find by_sym s with Not_found -> [] in
      Hashtbl.replace by_sym s (y :: prev))
    r.Exp_fig6.raw_series;
  let syms = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) by_sym []) in
  List.iter
    (fun s ->
      let m = Stats.mean (Array.of_list (Hashtbl.find by_sym s)) in
      Format.printf "  timer %2d ms -> first online period %.2f Mcycles@."
        (13 + s) (m /. 1e6))
    syms;
  Format.printf "raw:        %a@." Tp_channel.Leakage.pp_result r.Exp_fig6.raw_leak;
  Format.printf "partitioned: %a@.@." Tp_channel.Leakage.pp_result
    r.Exp_fig6.protected_leak

let table5 (r : Exp_table5.result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 5: IPC microbenchmark — %s [paper: x86 381/386/380/378; \
            Arm 344/391/395/389 (+14%% colour-ready)]"
           r.Exp_table5.platform)
      ~headers:[ "Version"; "Cycles"; "Slowdown" ]
  in
  List.iter
    (fun row ->
      Table.add_row t
        [
          row.Exp_table5.variant;
          Table.cell_i row.Exp_table5.cycles;
          Table.cell_pct row.Exp_table5.slowdown_pct;
        ])
    r.Exp_table5.rows;
  Table.print t

let table6 (r : Exp_table6.result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 6: switch-away cost, no padding (us) — %s [paper x86: raw \
            ~0.2, full flush 271, protected 30]"
           r.Exp_table6.platform)
      ~headers:("Mode" :: r.Exp_table6.workloads)
  in
  List.iter
    (fun row ->
      Table.add_row t
        (row.Exp_table6.mode
        :: List.map (fun (_, us) -> Table.cell_f us) row.Exp_table6.us_by_workload))
    r.Exp_table6.rows;
  Table.print t

let table7 (r : Exp_table7.result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 7: clone/destroy vs process creation (us) — %s [paper: \
            x86 79/0.6/257; Arm 608/67/4300]"
           r.Exp_table7.platform)
      ~headers:[ "clone"; "destroy"; "fork+exec" ]
  in
  Table.add_row t
    [
      Table.cell_f r.Exp_table7.clone_us;
      Table.cell_f r.Exp_table7.destroy_us;
      Table.cell_f r.Exp_table7.fork_exec_us;
    ];
  Table.print t

let fig7 (r : Exp_fig7.fig7_result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 7: Splash-2 slowdown vs unpartitioned baseline (%%) — %s \
            [paper: mostly <2%%, raytrace worst; cloning ~free]"
           r.Exp_fig7.platform)
      ~headers:
        [ "Workload"; "75% base"; "50% base"; "100% clone"; "75% clone"; "50% clone" ]
  in
  List.iter
    (fun (row : Exp_fig7.fig7_row) ->
      Table.add_row t
        [
          row.Exp_fig7.workload;
          Table.cell_pct row.Exp_fig7.base_75;
          Table.cell_pct row.Exp_fig7.base_50;
          Table.cell_pct row.Exp_fig7.clone_100;
          Table.cell_pct row.Exp_fig7.clone_75;
          Table.cell_pct row.Exp_fig7.clone_50;
        ])
    r.Exp_fig7.rows;
  Table.add_sep t;
  let g75, g50, c100, c75, c50 = r.Exp_fig7.geomean in
  Table.add_row t
    [
      "GEOMEAN";
      Table.cell_pct g75;
      Table.cell_pct g50;
      Table.cell_pct c100;
      Table.cell_pct c75;
      Table.cell_pct c50;
    ];
  Table.print t

let table8 (r : Exp_fig7.table8_result) =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Table 8: time-shared Splash-2 under 50%% colours (%%) — %s \
            [1 ms tick here vs paper's 10 ms: switch overheads ~10x the \
            paper's, same ordering]"
           r.Exp_fig7.platform)
      ~headers:[ "Workload"; "no pad"; "padded" ]
  in
  List.iter
    (fun (row : Exp_fig7.table8_row) ->
      Table.add_row t
        [
          row.Exp_fig7.workload;
          Table.cell_pct row.Exp_fig7.no_pad_pct;
          Table.cell_pct row.Exp_fig7.pad_pct;
        ])
    r.Exp_fig7.rows;
  Table.add_sep t;
  let mx_np, mx_p = r.Exp_fig7.max_ in
  let mn_np, mn_p = r.Exp_fig7.min_ in
  let me_np, me_p = r.Exp_fig7.mean in
  Table.add_row t [ "MAX"; Table.cell_pct mx_np; Table.cell_pct mx_p ];
  Table.add_row t [ "MIN"; Table.cell_pct mn_np; Table.cell_pct mn_p ];
  Table.add_row t [ "GEOMEAN"; Table.cell_pct me_np; Table.cell_pct me_p ];
  Table.print t
