(** Figure 3: the kernel-image covert channel, with coloured userland
    only (shared kernel) vs. full time protection (cloned kernels).
    Reports the channel matrix and the leakage test result for both
    configurations. *)

type side = {
  scenario : string;
  matrix : Tp_channel.Matrix.t;
  leak : Tp_channel.Leakage.result;
  capacity_bits : float;
      (** discrete channel capacity (Blahut–Arimoto) of the empirical
          matrix — the §5.1 companion measure: an upper bound on any
          encoding's rate, vs. [leak.m]'s uniform-input rate *)
  degraded : bool;
      (** the measurement ran out of budget or recovered from faults
          and holds fewer samples than requested *)
}

type result = { platform : string; coloured_only : side; protected_ : side }

val run : Quality.t -> seed:int -> Tp_hw.Platform.t -> result
