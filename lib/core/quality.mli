(** Experiment sizing: every driver takes a [Quality.t] so the bench
    can run a minutes-scale [Quick] pass by default and a heavier
    [Full] pass on demand.  Quick sizes are chosen so every channel
    verdict is already stable. *)

type t = Quick | Full

val samples : t -> int
(** Channel-measurement samples per configuration. *)

val irq_samples : t -> int
(** The 10 ms-slice interrupt channel is costlier per sample. *)

val workload_accesses : t -> int
(** Memory accesses per SPLASH-2-signature benchmark run. *)

val repeats : t -> int
(** Repetitions for latency microbenchmarks. *)

val degraded_tag : bool -> string
(** [" [degraded]"] when a measurement returned partial data (cycle or
    wall-clock budget hit, or recovered kernel faults), [""]
    otherwise; appended to verdict cells by {!Report}. *)

val of_string : string -> t option
