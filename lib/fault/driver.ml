(* Fail-at-step-N driver.

   For a kernel operation, enumerate the injection points it crosses
   (by tracing one clean run), then for every crossing and every fault
   kind re-run the operation on a fresh system with that fault armed,
   and check the full global invariant suite afterwards.  A hardened
   error path passes when every injected failure propagates to the
   caller AND leaves the system consistent — no leaked ASIDs or
   frames, no half-registered kernels, no dangling IRQs.

   Cases are closures that boot a fresh deterministic system and
   return the operation as a thunk, so the (point, occurrence) pairs
   recorded by the trace align exactly with the armed runs. *)

open Tp_kernel

type case = {
  c_name : string;
  c_make : unit -> Boot.booted * (unit -> unit);
      (* fresh system (setup untraced) + the operation under test *)
}

type outcome = {
  o_case : string;
  o_point : string;
  o_occurrence : int;
  o_error : Types.error;  (* the injected fault *)
  o_fired : bool;  (* the armed crossing was reached *)
  o_raised : string option;  (* what the operation raised, if anything *)
  o_violations : string list;  (* invariant violations after the fault *)
}

(* A hardened error path must (a) reach the armed point, (b) let the
   fault propagate — not swallow it — and (c) keep every invariant. *)
let ok o = o.o_fired && o.o_raised <> None && o.o_violations = []

let enumerate case =
  let _b, op = case.c_make () in
  let (), steps = Tp_fault.Fault.trace op in
  steps

(* The paper-relevant failure kinds: allocation failure, ASID
   exhaustion, IRQ conflict, zombie race. *)
let default_errors =
  [
    Types.Insufficient_untyped;
    Types.Out_of_asids;
    Types.Irq_in_use;
    Types.Zombie_object;
  ]

let run_one case ~point ~occurrence ~error =
  let b, op = case.c_make () in
  let frames0 = Invariant.user_frames b in
  Tp_fault.Fault.arm ~point ~hit:occurrence (Types.Kernel_error error);
  let raised =
    match op () with
    | () -> None
    | exception e -> Some (Printexc.to_string e)
  in
  let fired = Tp_fault.Fault.fired () in
  Tp_fault.Fault.disarm ();
  {
    o_case = case.c_name;
    o_point = point;
    o_occurrence = occurrence;
    o_error = error;
    o_fired = fired;
    o_raised = raised;
    o_violations = Invariant.check ~expect_user_frames:frames0 b;
  }

let fail_at_each ?(errors = default_errors) case =
  let steps = enumerate case in
  List.concat_map
    (fun (point, occurrence) ->
      List.map
        (fun error -> run_one case ~point ~occurrence ~error)
        errors)
    steps

(* Standard operation cases over a freshly booted, kernel-cloning,
   coloured two-domain system — the configuration where every
   mechanism (clone, colouring, partitioned IRQs) is live. *)
let standard_cases ~platform =
  let boot () =
    Boot.boot ~platform ~config:(Config.protected_ platform) ~domains:2 ()
  in
  let clone_setup b =
    let kmem =
      Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool ~platform
    in
    kmem
  in
  [
    {
      c_name = "retype-kmem";
      c_make =
        (fun () ->
          let b = boot () in
          ( b,
            fun () ->
              ignore
                (Retype.retype_kernel_memory b.Boot.domains.(0).Boot.dom_pool
                   ~platform) ));
    };
    {
      c_name = "retype-tcb";
      c_make =
        (fun () ->
          let b = boot () in
          ( b,
            fun () ->
              ignore
                (Retype.retype_tcb b.Boot.domains.(0).Boot.dom_pool ~core:0
                   ~prio:10) ));
    };
    {
      c_name = "retype-vspace";
      c_make =
        (fun () ->
          let b = boot () in
          let asid = System.alloc_asid b.Boot.sys in
          ( b,
            fun () ->
              ignore (Retype.retype_vspace b.Boot.domains.(0).Boot.dom_pool ~asid) ));
    };
    {
      c_name = "clone";
      c_make =
        (fun () ->
          let b = boot () in
          let kmem = clone_setup b in
          ( b,
            fun () ->
              ignore (Clone.clone b.Boot.sys ~core:0 ~src:b.Boot.master ~kmem) ));
    };
    {
      c_name = "destroy";
      c_make =
        (fun () ->
          let b = boot () in
          let kmem = clone_setup b in
          let cap = Clone.clone b.Boot.sys ~core:0 ~src:b.Boot.master ~kmem in
          Clone.set_int b.Boot.sys ~image:cap ~irq:5;
          (b, fun () -> Clone.destroy b.Boot.sys ~core:0 cap));
    };
    {
      c_name = "spawn";
      c_make =
        (fun () ->
          let b = boot () in
          (b, fun () -> ignore (Boot.spawn b b.Boot.domains.(0) (fun _ -> ()))));
    };
  ]
