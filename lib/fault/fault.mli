(** Fault-injection point registry.

    Kernel operations call {!hit} at each named injection point.  A
    dormant registry costs a couple of loads per crossing; tooling can
    {!trace} an operation to enumerate its points (the "steps" of the
    fail-at-step-N driver) or {!arm} a one-shot fault so that a chosen
    crossing raises a chosen exception.

    The module has no kernel dependencies: injected exceptions are
    supplied by the caller (typically [Tp_kernel.Types.Kernel_error]),
    so the kernel library itself can call {!hit}. *)

type event =
  | Ev_armed of { point : string; hit : int }
  | Ev_injected of { point : string; hit : int }
  | Ev_disarmed of { point : string; fired : bool }

val set_observer : (event -> unit) option -> unit
(** Install an observer for arm/inject/disarm events (e.g. the kernel
    log).  [None] removes it. *)

val register : string -> unit
(** Declare an injection point so {!points} can enumerate it before it
    is ever crossed.  Idempotent. *)

val points : unit -> string list
(** All registered point names, in registration order. *)

val hit : string -> unit
(** Cross an injection point: record it when tracing, raise the armed
    exception when this crossing is the armed one.  Near-free when the
    registry is dormant. *)

val arm : point:string -> ?hit:int -> exn -> unit
(** [arm ~point ~hit exn] makes the [hit]-th (0-based, counted from
    now) crossing of [point] raise [exn], once.  Replaces any
    previously armed fault. *)

val disarm : unit -> unit
(** Remove the armed fault (fired or not). *)

val fired : unit -> bool
(** Has the currently armed fault fired? *)

val trace : (unit -> 'a) -> 'a * (string * int) list
(** [trace f] runs [f] while recording every injection-point crossing;
    returns [f ()]'s result and the ordered [(point, occurrence)]
    list.  Occurrence indices are per-point and 0-based, aligned with
    {!arm}'s [hit] argument (when arming at the same program state
    tracing started in).  Nested traces restore the outer recorder. *)

val with_fault :
  point:string -> ?hit:int -> exn -> (unit -> 'a) -> ('a, exn) result
(** Arm, run the thunk, disarm.  [Error e] when the thunk raised [e]
    (normally the injected fault); also [Error] if the fault fired yet
    the operation still returned — an operation must not swallow an
    injected failure. *)
