(* Fault-injection registry.

   Kernel code declares *injection points* — named places inside
   multi-step operations where a failure (allocation exhaustion, IRQ
   conflict, zombie race, ...) could strike.  The registry supports
   three modes of use:

   - dormant (the default): [hit] is a near-no-op so production runs
     pay nothing;
   - recording: [trace f] runs [f] and returns the ordered list of
     injection points it crossed — this is how the fail-at-step-N
     driver enumerates the steps of an operation;
   - armed: [arm ~point ~hit exn] makes the [hit]-th crossing of
     [point] raise [exn], exactly once.

   The module is deliberately free of kernel dependencies so the
   kernel itself can depend on it; the exceptions injected are
   whatever the driver arms (usually [Tp_kernel.Types.Kernel_error]). *)

type event =
  | Ev_armed of { point : string; hit : int }
  | Ev_injected of { point : string; hit : int }
  | Ev_disarmed of { point : string; fired : bool }

let observer : (event -> unit) option ref = ref None
let set_observer f = observer := f
let emit ev = match !observer with Some f -> f ev | None -> ()

(* Registered point names, in registration order (kernel module init
   order), for enumeration by tooling. *)
let registered : (string, unit) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []

let register name =
  if not (Hashtbl.mem registered name) then begin
    Hashtbl.add registered name ();
    order := name :: !order
  end

let points () = List.rev !order

type armed = {
  a_point : string;
  a_hit : int;  (* 0-based index of the crossing that fires *)
  mutable a_countdown : int;
  a_exn : exn;
  mutable a_fired : bool;
}

let current : armed option ref = ref None

type recorder = {
  r_counts : (string, int) Hashtbl.t;  (* per-point occurrence counter *)
  mutable r_trace : (string * int) list;  (* reversed *)
}

let recording : recorder option ref = ref None

let arm ~point ?(hit = 0) exn =
  register point;
  current := Some { a_point = point; a_hit = hit; a_countdown = hit; a_exn = exn; a_fired = false };
  emit (Ev_armed { point; hit })

let disarm () =
  (match !current with
  | Some a -> emit (Ev_disarmed { point = a.a_point; fired = a.a_fired })
  | None -> ());
  current := None

let fired () = match !current with Some a -> a.a_fired | None -> false

let hit name =
  match (!current, !recording) with
  | None, None -> ()
  | cur, rec_ ->
      (match rec_ with
      | Some r ->
          let k = try Hashtbl.find r.r_counts name with Not_found -> 0 in
          Hashtbl.replace r.r_counts name (k + 1);
          r.r_trace <- (name, k) :: r.r_trace
      | None -> ());
      (match cur with
      | Some a when a.a_point = name && not a.a_fired ->
          if a.a_countdown = 0 then begin
            a.a_fired <- true;
            emit (Ev_injected { point = name; hit = a.a_hit });
            raise a.a_exn
          end
          else a.a_countdown <- a.a_countdown - 1
      | Some _ | None -> ())

let trace f =
  let r = { r_counts = Hashtbl.create 16; r_trace = [] } in
  let saved = !recording in
  recording := Some r;
  let finish () = recording := saved in
  match f () with
  | v ->
      finish ();
      (v, List.rev r.r_trace)
  | exception e ->
      finish ();
      raise e

let with_fault ~point ?(hit = 0) exn f =
  arm ~point ~hit exn;
  let finish () = disarm () in
  match f () with
  | v ->
      let was_fired = fired () in
      finish ();
      if was_fired then Error (Failure "fault fired but operation succeeded")
      else Ok v
  | exception e ->
      finish ();
      Error e
