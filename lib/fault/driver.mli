(** Fail-at-step-N driver for kernel operations.

    Enumerate the injection points a multi-step operation crosses,
    re-run it on a fresh system with a fault injected at each crossing
    (for each failure kind), and check the full invariant suite
    ({!Tp_kernel.Invariant}) after every injected failure. *)

open Tp_kernel

type case = {
  c_name : string;
  c_make : unit -> Boot.booted * (unit -> unit);
      (** Boot a fresh deterministic system (setup is not traced) and
          return the operation under test as a thunk.  Determinism is
          what aligns traced (point, occurrence) pairs with armed
          re-runs. *)
}

type outcome = {
  o_case : string;
  o_point : string;  (** injection point name *)
  o_occurrence : int;  (** which crossing of the point was armed *)
  o_error : Types.error;  (** the injected fault *)
  o_fired : bool;  (** the armed crossing was reached *)
  o_raised : string option;  (** what the operation raised, if anything *)
  o_violations : string list;  (** invariant violations after the fault *)
}

val ok : outcome -> bool
(** The fault fired, propagated to the caller, and every invariant
    held afterwards. *)

val enumerate : case -> (string * int) list
(** The ordered (point, occurrence) crossings of one clean run. *)

val default_errors : Types.error list
(** Allocation failure, ASID exhaustion, IRQ conflict, zombie race. *)

val run_one :
  case -> point:string -> occurrence:int -> error:Types.error -> outcome

val fail_at_each : ?errors:Types.error list -> case -> outcome list
(** The full cross product: every crossing x every fault kind. *)

val standard_cases : platform:Tp_hw.Platform.t -> case list
(** retype-kmem, retype-tcb, retype-vspace, clone, destroy (with a
    partitioned IRQ to tear down), spawn — on a protected coloured
    two-domain boot. *)
