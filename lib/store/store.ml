(* Content-addressed result store: objects/<key> files plus an
   append-only journal of commits.  The journal is the source of truth;
   fsck on open drops torn tails and quarantines mismatches, so a crash
   mid-write can lose at most the entry being written, never a
   completed one. *)

let point_write = "store_write"
let point_fsync = "store_fsync"
let point_rename = "store_rename"

let () =
  List.iter Tp_fault.Fault.register [ point_write; point_fsync; point_rename ]

(* Campaign telemetry (no-ops unless Tp_obs.Metrics is enabled, which
   only the serve daemon does): cache effectiveness, commit-protocol
   traffic, and what fsck had to repair. *)
module Metrics = Tp_obs.Metrics

let m_hits =
  Metrics.counter ~help:"Store lookups answered with verified content."
    "tpsim_store_hits_total"

let m_misses =
  Metrics.counter
    ~help:"Store lookups that found nothing (or dropped bit-rot)."
    "tpsim_store_misses_total"

let m_puts =
  Metrics.counter ~help:"Objects committed through the staged-write path."
    "tpsim_store_puts_total"

let m_stage_writes =
  Metrics.counter ~help:"Staged durable file writes (objects and journals)."
    "tpsim_store_stage_writes_total"

let m_fsyncs =
  Metrics.counter ~help:"File fsyncs issued by the commit protocol."
    "tpsim_store_fsyncs_total"

let m_journal_replayed =
  Metrics.counter ~help:"Journal entries replayed across store opens."
    "tpsim_store_journal_replayed_total"

let m_fsck =
  Metrics.counter
    ~help:
      "Damage repaired on open, by kind (torn, missing, corrupt, orphan, \
       staging)."
    "tpsim_store_fsck_total"

let m_entries =
  Metrics.gauge ~help:"Live entries in the most recently touched store."
    "tpsim_store_entries"

type entry = { e_digest : string; e_len : int }

type fsck_report = {
  f_entries : int;
  f_torn : int;
  f_missing : int;
  f_corrupt : int;
  f_orphans : int;
  f_staging : int;
}

type t = {
  t_dir : string;
  t_tbl : (string, entry) Hashtbl.t;
  mutable t_journal : Unix.file_descr option;  (* None once closed *)
  t_fsck : fsck_report;
}

let dir t = t.t_dir
let fsck_report t = t.t_fsck
let objects_dir dir = Filename.concat dir "objects"
let staging_dir dir = Filename.concat dir "staging"
let journal_path dir = Filename.concat dir "journal"
let object_path dir key = Filename.concat (objects_dir dir) key

let is_hex_key k =
  String.length k = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       k

let key ~code_rev ~parts =
  Digest.to_hex (Digest.string (String.concat "\x00" (code_rev :: parts)))

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* fsync a directory so a rename inside it is durable; best-effort on
   filesystems that refuse directory fsync. *)
let fsync_dir d =
  match Unix.openfile d [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Staged durable write: the injection points make every step of the
   commit protocol a crash site the fail-at-step-N sweep can hit. *)
let write_file_sync path data =
  Tp_fault.Fault.hit point_write;
  let fd =
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd data;
      Tp_fault.Fault.hit point_fsync;
      Unix.fsync fd);
  Metrics.inc m_stage_writes;
  Metrics.inc m_fsyncs

let rename_durable src dst =
  Tp_fault.Fault.hit point_rename;
  Unix.rename src dst;
  fsync_dir (Filename.dirname dst)

let journal_line key e =
  Printf.sprintf "C %s %s %d\n" key e.e_digest e.e_len

(* One committed entry per line; anything that does not parse exactly
   is treated as the torn tail of a crashed append and every later
   line is distrusted too. *)
let parse_line line =
  match String.split_on_char ' ' line with
  | [ "C"; k; d; l ] when is_hex_key k && is_hex_key d -> (
      match int_of_string_opt l with
      | Some len when len >= 0 -> Some (k, { e_digest = d; e_len = len })
      | _ -> None)
  | _ -> None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> In_channel.input_all ic)

let list_files d =
  match Sys.readdir d with
  | a ->
      Array.sort compare a;
      Array.to_list a
  | exception Sys_error _ -> []

let open_ ~dir =
  mkdir_p dir;
  mkdir_p (objects_dir dir);
  mkdir_p (staging_dir dir);
  let tbl = Hashtbl.create 256 in
  let torn = ref 0 and missing = ref 0 and corrupt = ref 0 in
  (* Replay: last line wins for a duplicated key (appends are ordered);
     the first malformed line marks the crash point — drop the rest. *)
  (match read_file (journal_path dir) with
  | raw ->
      let lines = String.split_on_char '\n' raw in
      let rec replay = function
        | [] | [ "" ] -> ()
        | line :: rest -> (
            match parse_line line with
            | Some (k, e) ->
                Hashtbl.replace tbl k e;
                replay rest
            | None ->
                torn := !torn + 1 + List.length (List.filter (( <> ) "") rest))
      in
      replay lines
  | exception Sys_error _ -> ());
  (* Verify every journalled object; drop (and delete) mismatches. *)
  Hashtbl.iter
    (fun k e ->
      let path = object_path dir k in
      match Unix.stat path with
      | exception Unix.Unix_error _ ->
          incr missing;
          Hashtbl.remove tbl k
      | st ->
          if
            st.Unix.st_size <> e.e_len
            || Digest.to_hex (Digest.file path) <> e.e_digest
          then begin
            incr corrupt;
            Hashtbl.remove tbl k;
            try Sys.remove path with Sys_error _ -> ()
          end)
    (Hashtbl.copy tbl);
  (* Orphans: renamed into place but never journalled (crash between
     rename and commit).  The commit never happened — remove them so a
     resume recomputes instead of trusting an unverifiable file. *)
  let orphans =
    List.filter (fun f -> not (Hashtbl.mem tbl f)) (list_files (objects_dir dir))
  in
  List.iter
    (fun f -> try Sys.remove (object_path dir f) with Sys_error _ -> ())
    orphans;
  let stage = list_files (staging_dir dir) in
  List.iter
    (fun f ->
      try Sys.remove (Filename.concat (staging_dir dir) f) with Sys_error _ -> ())
    stage;
  (* Rewrite the journal compacted, through the same atomic path as a
     commit, so repeated crash/open cycles converge instead of growing
     the journal or re-reporting the same damage. *)
  let b = Buffer.create 4096 in
  let live = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
  List.iter (fun k -> Buffer.add_string b (journal_line k (Hashtbl.find tbl k))) live;
  let jtmp = Filename.concat (staging_dir dir) "journal.tmp" in
  write_file_sync jtmp (Buffer.contents b);
  rename_durable jtmp (journal_path dir);
  let jfd =
    Unix.openfile (journal_path dir)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CLOEXEC ]
      0o644
  in
  Metrics.inc m_journal_replayed ~by:(Hashtbl.length tbl);
  List.iter
    (fun (kind, n) ->
      if n > 0 then Metrics.inc m_fsck ~labels:[ ("kind", kind) ] ~by:n)
    [
      ("torn", !torn);
      ("missing", !missing);
      ("corrupt", !corrupt);
      ("orphan", List.length orphans);
      ("staging", List.length stage);
    ];
  Metrics.set m_entries (float_of_int (Hashtbl.length tbl));
  {
    t_dir = dir;
    t_tbl = tbl;
    t_journal = Some jfd;
    t_fsck =
      {
        f_entries = Hashtbl.length tbl;
        f_torn = !torn;
        f_missing = !missing;
        f_corrupt = !corrupt;
        f_orphans = List.length orphans;
        f_staging = List.length stage;
      };
  }

let journal_fd t =
  match t.t_journal with
  | Some fd -> fd
  | None -> invalid_arg "Tp_store.Store: store is closed"

let close t =
  match t.t_journal with
  | None -> ()
  | Some fd ->
      t.t_journal <- None;
      Unix.close fd

let mem t k = Hashtbl.mem t.t_tbl k
let count t = Hashtbl.length t.t_tbl

let keys t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.t_tbl [])

let content_digest t k =
  Option.map (fun e -> e.e_digest) (Hashtbl.find_opt t.t_tbl k)

let find t k =
  match Hashtbl.find_opt t.t_tbl k with
  | None ->
      Metrics.inc m_misses;
      None
  | Some e -> (
      match read_file (object_path t.t_dir k) with
      | data when Digest.to_hex (Digest.string data) = e.e_digest ->
          Metrics.inc m_hits;
          Some data
      | _ | (exception Sys_error _) ->
          (* Bit rot after open: surface as a miss, not wrong data. *)
          Hashtbl.remove t.t_tbl k;
          Metrics.inc m_misses;
          None)

let put t ~key data =
  if not (is_hex_key key) then
    invalid_arg (Printf.sprintf "Tp_store.Store.put: malformed key %S" key);
  ignore (journal_fd t);
  if not (mem t key) then begin
    let tmp = Filename.concat (staging_dir t.t_dir) (key ^ ".tmp") in
    write_file_sync tmp data;
    rename_durable tmp (object_path t.t_dir key);
    let e =
      { e_digest = Digest.to_hex (Digest.string data); e_len = String.length data }
    in
    (* Journal append commits the entry; its own write/fsync crossings
       mean a fault here leaves an orphan object for fsck to reap. *)
    let fd = journal_fd t in
    Tp_fault.Fault.hit point_write;
    write_all fd (journal_line key e);
    Tp_fault.Fault.hit point_fsync;
    Unix.fsync fd;
    Hashtbl.replace t.t_tbl key e;
    Metrics.inc m_puts;
    Metrics.inc m_fsyncs;
    Metrics.set m_entries (float_of_int (Hashtbl.length t.t_tbl))
  end
