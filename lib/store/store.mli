(** Content-addressed, crash-safe result store.

    The campaign service ({!Tp_serve}) memoizes experiment results on
    disk so a million-trial sweep is incremental: each trial's result
    is filed under the digest of everything that determines it —
    [(code rev, platform, config, channel, seed, spec)] — and a repeat
    query is answered from the store in microseconds.

    Crash safety is the defining property.  Completed entries survive
    [kill -9] at {e any} instruction of a later write:

    - object files are written to a staging area, fsync'd, and
      atomically renamed into place — a reader never sees a torn
      object;
    - commits are recorded in an append-only {e journal} (content
      digest + length per entry), fsync'd after the rename; the
      journal, not the object directory, is the source of truth;
    - {!open_} replays and fscks the journal: a torn tail (the line a
      crash cut short) is dropped, entries whose object is missing or
      fails its digest are dropped and quarantined, orphan objects
      (renamed but never journalled — the crash window between rename
      and commit) are deleted, staging litter is cleared, and the
      journal is rewritten compacted via the same atomic-rename path.

    The write path crosses the {!Tp_fault} points [store_write],
    [store_fsync] and [store_rename], so the fail-at-step-N driver can
    prove the crash-consistency claim the same way PR 1 did for kernel
    paths (see {!Sweep}). *)

type t

type fsck_report = {
  f_entries : int;  (** live entries after replay *)
  f_torn : int;  (** malformed/truncated journal lines dropped *)
  f_missing : int;  (** journalled entries whose object was gone *)
  f_corrupt : int;  (** journalled entries whose object failed its digest *)
  f_orphans : int;  (** un-journalled objects removed *)
  f_staging : int;  (** staging (tmp) files removed *)
}

val open_ : dir:string -> t
(** Open (creating directories as needed) and fsck.  Safe to call on a
    directory a crashed writer left in any state.
    @raise Sys_error when the directory cannot be created. *)

val close : t -> unit
(** Release the journal handle.  Using [t] afterwards raises. *)

val dir : t -> string
val fsck_report : t -> fsck_report
(** What {!open_} found and repaired. *)

val key : code_rev:string -> parts:string list -> string
(** Cache key: hex digest of the NUL-joined [code_rev :: parts].
    Stable across processes; changing any part changes the key. *)

val mem : t -> string -> bool
val count : t -> int
val keys : t -> string list
(** Live keys, sorted. *)

val find : t -> string -> string option
(** Contents of a committed entry; verifies the journalled digest on
    read and returns [None] (dropping the entry) on a mismatch, so bit
    rot surfaces as a recomputable miss, never as wrong data. *)

val content_digest : t -> string -> string option
(** The journalled content digest (hex), without reading the object. *)

val put : t -> key:string -> string -> unit
(** Commit [data] under [key]: stage + fsync + rename + journal +
    fsync.  Idempotent — a repeat [put] of the same key is a no-op
    (the store is content-addressed by inputs; the first commit wins).
    @raise Invalid_argument on a malformed key. *)

(** {1 Fault points} *)

val point_write : string  (** ["store_write"] *)

val point_fsync : string  (** ["store_fsync"] *)

val point_rename : string  (** ["store_rename"] *)
