(* Fail-at-step-N sweep over the store commit protocol.  Mirrors
   Tp_fault_driver.Driver: trace a clean batch to enumerate crossings,
   then crash (raise) at each crossing and verify the reopened store. *)

exception Crash

type outcome = {
  o_point : string;
  o_occurrence : int;
  o_fired : bool;
  o_committed : int;
  o_violations : string list;
}

let ok o = o.o_fired && o.o_violations = []
let batch_size = 4

let batch_keys =
  List.init batch_size (fun i ->
      Store.key ~code_rev:"store-sweep" ~parts:[ "entry"; string_of_int i ])

let batch_data i =
  Printf.sprintf "store-sweep payload %d: %s" i (String.make (64 + (17 * i)) 'x')

(* The operation under test: open (itself a journal rewrite, so its
   crossings are swept too), commit the batch, close. *)
let run_batch dir =
  let s = Store.open_ ~dir in
  Fun.protect
    ~finally:(fun () -> Store.close s)
    (fun () ->
      List.iteri (fun i k -> Store.put s ~key:k (batch_data i)) batch_keys)

let check dir =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  let s = Store.open_ ~dir in
  let present = List.map (Store.mem s) batch_keys in
  (* Prefix property: a crash loses a suffix of the batch, never an
     interior entry. *)
  let rec prefix_ok = function
    | true :: rest -> prefix_ok rest
    | false :: rest -> List.for_all not rest
    | [] -> true
  in
  if not (prefix_ok present) then
    violate "committed set is not a prefix of the batch: [%s]"
      (String.concat ";" (List.map string_of_bool present));
  List.iteri
    (fun i k ->
      if Store.mem s k then
        match Store.find s k with
        | Some data when data = batch_data i -> ()
        | Some _ -> violate "entry %d readable but content differs" i
        | None -> violate "entry %d journalled but unreadable" i)
    batch_keys;
  let committed = List.length (List.filter Fun.id present) in
  let r1 = Store.fsck_report s in
  Store.close s;
  (* fsck must converge: a second open of the repaired store finds the
     same entries and nothing left to repair. *)
  let s2 = Store.open_ ~dir in
  let r2 = Store.fsck_report s2 in
  if r2.Store.f_entries <> r1.Store.f_entries then
    violate "fsck not stable: %d entries then %d" r1.Store.f_entries
      r2.Store.f_entries;
  if
    r2.Store.f_torn + r2.Store.f_missing + r2.Store.f_corrupt
    + r2.Store.f_orphans + r2.Store.f_staging
    <> 0
  then
    violate "second fsck still repairing (torn=%d missing=%d corrupt=%d orphans=%d staging=%d)"
      r2.Store.f_torn r2.Store.f_missing r2.Store.f_corrupt r2.Store.f_orphans
      r2.Store.f_staging;
  Store.close s2;
  (committed, List.rev !violations)

let fail_at_each ~dir =
  let clean_dir = Filename.concat dir "clean" in
  let (), steps = Tp_fault.Fault.trace (fun () -> run_batch clean_dir) in
  List.mapi
    (fun i (point, occurrence) ->
      let run_dir = Filename.concat dir (Printf.sprintf "crash-%d" i) in
      Tp_fault.Fault.arm ~point ~hit:occurrence Crash;
      (match run_batch run_dir with () -> () | exception Crash -> ());
      let fired = Tp_fault.Fault.fired () in
      Tp_fault.Fault.disarm ();
      let committed, violations = check run_dir in
      { o_point = point; o_occurrence = occurrence; o_fired = fired;
        o_committed = committed; o_violations = violations })
    steps
