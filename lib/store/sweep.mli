(** Fail-at-step-N crash-consistency sweep over the store write path.

    The persistence analogue of [Tp_fault_driver.Driver]: trace one
    clean batch of commits to enumerate every [store_write] /
    [store_fsync] / [store_rename] crossing, then re-run the batch
    once per crossing with a one-shot fault armed there (a simulated
    crash at that step), reopen the store, and check the
    crash-consistency contract:

    - every key the reopened store reports present holds exactly the
      content originally committed under it;
    - the present set is a {e prefix} of the batch (commits are
      sequential — a crash can lose the in-flight entry and everything
      after, never an earlier one);
    - no staging litter survives;
    - a second reopen finds the identical set (fsck converges). *)

type outcome = {
  o_point : string;
  o_occurrence : int;
  o_fired : bool;  (** the armed crossing was reached *)
  o_committed : int;  (** entries present after crash + reopen *)
  o_violations : string list;
}

val ok : outcome -> bool
(** Fired and no violations. *)

val batch_size : int
(** Entries committed per traced batch (4). *)

val fail_at_each : dir:string -> outcome list
(** Run the sweep under [dir] (a scratch directory; one fresh subdir
    per armed run).  Leaves the armed fault disarmed. *)
