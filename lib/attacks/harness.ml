open Tp_kernel

type budget = { max_cycles : int option; max_wall_s : float option }

let no_budget = { max_cycles = None; max_wall_s = None }

type spec = {
  samples : int;
  symbols : int;
  slice_cycles : int;
  noise_sigma : float;
  warmup : int;
  checkpoint_slices : int;
  budget : budget;
  replay : bool;
  replay_seed : Tp_hw.Replay.t array option;
}

let default_spec p =
  {
    samples = 1500;
    symbols = 4;
    slice_cycles = Tp_hw.Platform.us_to_cycles p 1000.0 (* 1 ms, as in §5.3.1 *);
    noise_sigma = 8.0;
    warmup = 4;
    checkpoint_slices = 64;
    budget = no_budget;
    replay = true;
    replay_seed = None;
  }

(* Process-wide replay kill switch (tpsim --no-replay), for A/B
   debugging: replay is bit-identical by construction, so flipping it
   must never change a result — this switch is how one proves that on
   a live discrepancy. *)
let replay_enabled = Atomic.make true
let set_replay_enabled v = Atomic.set replay_enabled v

(* Process-wide default budget, for tooling (tpsim --budget) that
   cannot reach into every experiment's spec.  A spec's own budget
   fields win.  Atomic so the CLI can set it once and parallel workers
   read one coherent record (never a torn default). *)
let default_budget = Atomic.make no_budget
let set_default_budget b = Atomic.set default_budget b

let effective_budget spec =
  let d = Atomic.get default_budget in
  let pick a b = match a with Some _ -> a | None -> b in
  {
    max_cycles = pick spec.budget.max_cycles d.max_cycles;
    max_wall_s = pick spec.budget.max_wall_s d.max_wall_s;
  }

type result = {
  data : Tp_channel.Mi.samples;
  degraded : bool;
  degraded_reason : string option;
  recovered_faults : int;
  checkpoints : int;
  switch_counters : Tp_obs.Counter.snapshot;
  lint : Tp_analysis.Diag.report;
  cert : Tp_analysis.Certify.cert;
}

(* Re-admit a measurement thread that an aborted slice left neither
   running nor queued, so the loop can keep collecting. *)
let recover_thread sys tcb =
  if
    (not tcb.Types.t_is_idle)
    && tcb.Types.t_state <> Types.Ts_suspended
    && not (Sched.is_queued (System.sched sys) ~core:tcb.Types.t_core tcb)
  then begin
    tcb.Types.t_state <- Types.Ts_ready;
    Sched.enqueue (System.sched sys) ~core:tcb.Types.t_core tcb
  end

(* The checkpointed collection loop shared by the single-core and
   cross-core harnesses.  [run_chunk n] advances the simulation by [n]
   scheduling units (slices or rounds); [collected ()] reports how
   many samples have been recorded so far.  Returns the degradation
   reason (if any), the number of kernel faults recovered and the
   number of checkpoints taken.

   Each chunk is a checkpoint: the sample lists only ever grow, so a
   kernel fault mid-chunk costs at most the current chunk's partial
   slices — everything recorded at the last checkpoint is kept and the
   loop resumes, instead of the whole measurement aborting. *)
(* Injection point crossed once per checkpointed chunk: arming it lets
   the fail-at-step-N machinery strike the collection loop itself (not
   just kernel setup paths) and exercise the recovery/degradation
   contract below — the same proof obligation PR 1 imposed on kernel
   operations, extended to the serving layer. *)
let point_chunk = "harness.chunk"
let () = Tp_fault.Fault.register point_chunk

let collect sys ~threads ~total ~chunk_size ~budget ~target ~collected ~run_chunk =
  (* Wall budget means wall time: Sys.time is CPU time, which both
     undercounts when the process is descheduled and — summed across
     domains — overcounts under -j N.  Unix.gettimeofday is the
     monotonic-enough wall clock this toolchain has. *)
  let wall0 = Unix.gettimeofday () in
  let cycles0 = System.now sys ~core:0 in
  (* Switch-path counters over this collection, for the result's
     checkpoint metadata (all zeros when counters are off). *)
  let sw0 = Tp_obs.Counter.snapshot (Domain_switch.counters ()) in
  let stop = ref None in
  let recovered = ref 0 in
  let checkpoints = ref 0 in
  let fruitless = ref 0 in
  let done_ = ref 0 in
  while !done_ < total && !stop = None && collected () < target do
    let n = Stdlib.min chunk_size (total - !done_) in
    let before = collected () in
    (match
       Tp_fault.Fault.hit point_chunk;
       run_chunk n
     with
    | () -> fruitless := 0
    | exception (Types.Kernel_error _ as e) ->
        (* Partial-result recovery: keep everything collected so far,
           re-admit the measurement threads, and carry on.  Repeated
           faults without progress mean the system cannot make headway
           — degrade instead of spinning. *)
        incr recovered;
        Klog.fault_recovered ~where:"Harness.collect" ~exn_:e;
        List.iter (recover_thread sys) threads;
        if collected () = before then begin
          incr fruitless;
          if !fruitless >= 3 then stop := Some "repeated kernel faults"
        end
        else fruitless := 0);
    done_ := !done_ + n;
    incr checkpoints;
    Klog.harness_checkpoint
      ~now:(System.now sys ~core:0)
      ~chunk:!checkpoints ~collected:(collected ()) ();
    (match budget.max_cycles with
    | Some c when System.now sys ~core:0 - cycles0 >= c ->
        stop := Some "cycle budget exhausted"
    | Some _ | None -> ());
    match budget.max_wall_s with
    | Some s when Unix.gettimeofday () -. wall0 >= s ->
        stop := Some "wall-clock budget exhausted"
    | Some _ | None -> ()
  done;
  let switch_counters =
    Tp_obs.Counter.delta ~before:sw0
      ~after:(Tp_obs.Counter.snapshot (Domain_switch.counters ()))
  in
  (!stop, !recovered, !checkpoints, switch_counters)

let finish ~b ~spec ~inputs ~outputs ~stop ~recovered ~checkpoints
    ~switch_counters =
  let input = Array.of_list (List.rev !inputs) in
  let output = Array.of_list (List.rev !outputs) in
  let n = Stdlib.min spec.samples (Array.length input) in
  let shortfall = n < spec.samples in
  let reason =
    match stop with
    | Some r -> Some r
    | None -> if shortfall then Some "sample shortfall" else None
  in
  (match reason with
  | Some r -> Klog.harness_degraded ~reason:r ~collected:n ()
  | None -> ());
  {
    data = { Tp_channel.Mi.input = Array.sub input 0 n; output = Array.sub output 0 n };
    degraded = shortfall || stop <> None;
    degraded_reason = reason;
    recovered_faults = recovered;
    checkpoints;
    switch_counters;
    lint = Tp_analysis.Lint.check_static b;
    cert = Tp_analysis.Certify.certify_static b;
  }

(* Per-symbol record-once / replay-many state for the sender side of a
   trial loop.  The first slice sending symbol [s] runs live with a
   recorder attached; every later slice for [s] replays the recorded
   stream ({!Uctx.replay}), bit-identical to live execution by
   construction.  Senders whose op sequence the stream cannot capture
   (clock reads, syscalls) poison their recording and permanently fall
   back to live execution — the kernel and flush channels take this
   path on their first slice and are never replayed. *)
type sym_state =
  | Fresh
  | Pending of Tp_hw.Replay.t
  | Recorded of Tp_hw.Replay.t
  | Live

let replayed_sender spec ~sender =
  if not (spec.replay && Atomic.get replay_enabled) then sender
  else begin
    let streams =
      match spec.replay_seed with
      | Some a when Array.length a = spec.symbols ->
          Array.map
            (fun r -> if Tp_hw.Replay.complete r then Recorded r else Live)
            a
      | Some _ | None -> Array.make spec.symbols Fresh
    in
    fun ctx s ->
      (* Settle the previous slice's recording: only now, at the next
         scheduling of the sender, is it known whether that slice ran
         to quiescence (complete) or was cut short or poisoned. *)
      Array.iteri
        (fun i st ->
          match st with
          | Pending r ->
              streams.(i) <-
                (if Tp_hw.Replay.complete r then Recorded r else Live)
          | Fresh | Recorded _ | Live -> ())
        streams;
      match streams.(s) with
      | Recorded r ->
          (* A transient refusal (e.g. a timer due within this slice)
             runs live this once; the stream stays good. *)
          if not (Uctx.replay ctx r) then sender ctx s
      | Live -> sender ctx s
      | Fresh ->
          let r = Tp_hw.Replay.create () in
          streams.(s) <- Pending r;
          Uctx.set_recorder ctx (Some r);
          sender ctx s
      | Pending _ -> sender ctx s (* unreachable: settled above *)
  end

let record_streams b ~sender ~symbols ~slice_cycles =
  let sys = b.Boot.sys in
  let streams = Array.init symbols (fun _ -> Tp_hw.Replay.create ()) in
  let idx = ref 0 in
  let body ctx =
    if !idx < symbols then begin
      let s = !idx in
      incr idx;
      Uctx.set_recorder ctx (Some streams.(s));
      sender ctx s
    end
  in
  ignore (Boot.spawn b b.Boot.domains.(0) body);
  (* A couple of slack slices in case setup left another thread
     runnable; once every symbol is recorded the body is a no-op. *)
  Exec.run_slices sys ~core:0 ~slice_cycles ~slices:(symbols + 2) ();
  streams

let run_pair_result b ~sender ~receiver spec ~rng =
  let sys = b.Boot.sys in
  let sym_rng = Tp_util.Rng.split rng in
  let noise_rng = Tp_util.Rng.split rng in
  let cur_sym = ref (-1) in
  let iteration = ref 0 in
  let inputs = ref [] and outputs = ref [] in
  let recorded = ref 0 in
  let send = replayed_sender spec ~sender in
  let sender_body ctx =
    let s = Tp_util.Rng.int sym_rng spec.symbols in
    cur_sym := s;
    send ctx s
  in
  let receiver_body ctx =
    let m = receiver ctx in
    (match m with
    | Some y when !cur_sym >= 0 && !iteration >= spec.warmup ->
        inputs := !cur_sym :: !inputs;
        outputs :=
          (y +. Tp_util.Rng.gaussian noise_rng ~mu:0.0 ~sigma:spec.noise_sigma)
          :: !outputs;
        incr recorded
    | Some _ | None -> ());
    incr iteration
  in
  let st = Boot.spawn b b.Boot.domains.(0) sender_body in
  let rt = Boot.spawn b b.Boot.domains.(1) receiver_body in
  (* Two slices per iteration (sender then receiver), plus slack for
     warmup and the first scheduling round. *)
  let slices = 2 * (spec.samples + spec.warmup + 2) in
  let stop, recovered, checkpoints, switch_counters =
    collect sys ~threads:[ st; rt ] ~total:slices
      ~chunk_size:(Stdlib.max 1 spec.checkpoint_slices)
      ~budget:(effective_budget spec) ~target:spec.samples
      ~collected:(fun () -> !recorded)
      ~run_chunk:(fun n ->
        Exec.run_slices sys ~core:0 ~slice_cycles:spec.slice_cycles ~slices:n ())
  in
  finish ~b ~spec ~inputs ~outputs ~stop ~recovered ~checkpoints ~switch_counters

let run_pair b ~sender ~receiver spec ~rng =
  let r = run_pair_result b ~sender ~receiver spec ~rng in
  if Array.length r.data.Tp_channel.Mi.input = 0 then
    invalid_arg
      "Harness.run_pair: no samples collected — the receiver never completed \
       a measurement within its slice (slice_cycles too small for the probe?)";
  r.data

let run_pair_cross_core_result b ~sender ~receiver ~cosched spec ~rng =
  let sys = b.Boot.sys in
  let sym_rng = Tp_util.Rng.split rng in
  let noise_rng = Tp_util.Rng.split rng in
  let cur_sym = ref (-1) in
  let iteration = ref 0 in
  let inputs = ref [] and outputs = ref [] in
  let recorded = ref 0 in
  let send = replayed_sender spec ~sender in
  let sender_body ctx =
    let s = Tp_util.Rng.int sym_rng spec.symbols in
    cur_sym := s;
    send ctx s
  in
  let receiver_body ctx =
    (match receiver ctx with
    | Some y when !cur_sym >= 0 && !iteration >= spec.warmup ->
        inputs := !cur_sym :: !inputs;
        outputs :=
          (y +. Tp_util.Rng.gaussian noise_rng ~mu:0.0 ~sigma:spec.noise_sigma)
          :: !outputs;
        incr recorded
    | Some _ | None -> ());
    incr iteration
  in
  let st = Boot.spawn b b.Boot.domains.(0) ~core:0 sender_body in
  let rt = Boot.spawn b b.Boot.domains.(1) ~core:1 receiver_body in
  let cores = [ 0; 1 ] in
  let rounds =
    (* Concurrent: one round = one sender + one receiver slice.
       Co-scheduled: the domain rotation needs two rounds per sample. *)
    (if cosched then 2 else 1) * (spec.samples + spec.warmup + 2)
  in
  let run_chunk n =
    if cosched then
      Exec.run_coscheduled sys ~cores ~slice_cycles:spec.slice_cycles ~rounds:n ()
    else
      Exec.run_concurrent sys ~cores ~slice_cycles:spec.slice_cycles ~rounds:n ()
  in
  let stop, recovered, checkpoints, switch_counters =
    collect sys ~threads:[ st; rt ] ~total:rounds
      ~chunk_size:(Stdlib.max 1 spec.checkpoint_slices)
      ~budget:(effective_budget spec) ~target:spec.samples
      ~collected:(fun () -> !recorded)
      ~run_chunk
  in
  finish ~b ~spec ~inputs ~outputs ~stop ~recovered ~checkpoints
    ~switch_counters

let run_pair_cross_core b ~sender ~receiver ~cosched spec ~rng =
  let r = run_pair_cross_core_result b ~sender ~receiver ~cosched spec ~rng in
  if Array.length r.data.Tp_channel.Mi.input = 0 then
    invalid_arg "Harness.run_pair_cross_core: no samples collected";
  r.data

let measure_leak_result b ~sender ~receiver spec ~rng =
  let r = run_pair_result b ~sender ~receiver spec ~rng in
  if Array.length r.data.Tp_channel.Mi.input = 0 then
    invalid_arg "Harness.measure_leak: no samples collected";
  (Tp_channel.Leakage.test ~rng r.data, r)

let measure_leak b ~sender ~receiver spec ~rng =
  fst (measure_leak_result b ~sender ~receiver spec ~rng)

(* Collection metadata as one JSON object, so `tpsim faults` and the
   campaign service report the degradation contract in the same
   machine-readable shape. *)
let status_json r =
  Printf.sprintf
    "{\"degraded\":%b,\"degraded_reason\":%s,\"recovered_faults\":%d,\"checkpoints\":%d,\"samples\":%d}"
    r.degraded
    (match r.degraded_reason with
    | None -> "null"
    | Some s -> "\"" ^ Tp_util.Json.escape s ^ "\"")
    r.recovered_faults r.checkpoints
    (Array.length r.data.Tp_channel.Mi.input)

let timed ctx f =
  let t0 = Uctx.now ctx in
  f ();
  Uctx.now ctx - t0

let probe_reads ctx ~base ~stride ~count =
  timed ctx (fun () ->
      for i = 0 to count - 1 do
        Uctx.read ctx (base + (i * stride))
      done)

let probe_read_misses ctx ~base ~stride ~count ~threshold =
  let misses = ref 0 in
  for i = 0 to count - 1 do
    let t0 = Uctx.now ctx in
    Uctx.read ctx (base + (i * stride));
    if Uctx.now ctx - t0 > threshold then incr misses
  done;
  !misses
