(** Covert-channel measurement harness.

    Runs a Trojan (sender) and a spy (receiver) time-sharing one core
    in two security domains, exactly as in §5.3: each iteration the
    sender encodes a uniformly random symbol during its slice, then the
    receiver measures during its own slice; the pair (symbol,
    measurement) is one channel use.  The resulting dataset feeds
    {!Tp_channel.Leakage.test}.

    The simulated machine is deterministic; real measurements are not.
    [noise_sigma] adds Gaussian measurement noise (cycles) to the
    receiver's outputs, modelling timer granularity and platform
    jitter, so the statistical test operates under realistic
    conditions (and so "no leak" results genuinely exercise the
    shuffle bound instead of comparing exact constants).

    The collection loop is checkpointed: slices run in chunks of
    [checkpoint_slices], samples recorded before a kernel fault are
    kept, and the loop recovers and resumes instead of aborting.  An
    optional cycle or wall-clock budget stops collection early with a
    partial, [degraded]-flagged dataset rather than failing.  An
    uninterrupted, unbudgeted run is bit-identical to an unchunked
    one. *)

type budget = { max_cycles : int option; max_wall_s : float option }

val no_budget : budget

type spec = {
  samples : int;  (** channel uses to record *)
  symbols : int;  (** input alphabet size *)
  slice_cycles : int;  (** time-slice length *)
  noise_sigma : float;  (** receiver measurement noise, cycles *)
  warmup : int;  (** initial iterations to discard *)
  checkpoint_slices : int;  (** slices per checkpointed chunk *)
  budget : budget;  (** optional collection limits *)
  replay : bool;
      (** allow record-once / replay-many sender slices ({!Tp_hw.Replay}).
          Bit-identical to live execution for senders whose entire
          observable behaviour goes through their [Uctx.t] (true of
          every shipped channel; clock/syscall use self-disqualifies by
          poisoning).  A sender that communicates through host-side
          state the machine never sees must set this to [false]. *)
  replay_seed : Tp_hw.Replay.t array option;
      (** pre-recorded per-symbol sender streams (e.g. from
          {!record_streams}), replayed from the very first slice;
          [None] records lazily on each symbol's first send *)
}

val default_spec : Tp_hw.Platform.t -> spec
(** 1 ms slices, 1500 samples, 4 symbols, small noise, 64-slice
    checkpoints, no budget, replay on (unseeded). *)

val set_replay_enabled : bool -> unit
(** Process-wide replay kill switch (tpsim's [--no-replay]); off means
    every sender slice runs live regardless of spec.  For A/B
    debugging — flipping it must never change any result. *)

val record_streams :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  symbols:int ->
  slice_cycles:int ->
  Tp_hw.Replay.t array
(** Record one sender slice per symbol (0, 1, …) in domain 0 on core 0
    of [b] — the campaign engine's scratch pre-pass.  Streams record op
    identities only, so a stream recorded on one freshly booted system
    replays bit-identically on any identically booted one.  Streams of
    senders that poison their recording, or that overrun the slice,
    come back incomplete ({!Tp_hw.Replay.complete} is false); callers
    must check before seeding. *)

val set_default_budget : budget -> unit
(** Process-wide fallback budget (tpsim's [--budget]); a spec's own
    budget fields take precedence. *)

type result = {
  data : Tp_channel.Mi.samples;  (** what was collected (possibly partial) *)
  degraded : bool;  (** fewer samples than requested *)
  degraded_reason : string option;
  recovered_faults : int;  (** kernel faults recovered mid-run *)
  checkpoints : int;
  switch_counters : Tp_obs.Counter.snapshot;
      (** delta of the kernel switch-path counters over the collection
          (all zeros unless counters are enabled, {!Tp_obs.Ctl}) *)
  lint : Tp_analysis.Diag.report;
      (** static partition-lint verdict ({!Tp_analysis.Lint.check_static})
          of the configuration this result was measured under, so every
          dataset records whether its protection claims actually held *)
  cert : Tp_analysis.Certify.cert;
      (** certified leakage bound ({!Tp_analysis.Certify.certify_static})
          of the same configuration: any MI later measured from [data]
          must stay at or below [Certify.total_bits cert] — the
          cross-validation the certifier's test suite enforces *)
}

val run_pair :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  spec ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Mi.samples
(** [run_pair b ~sender ~receiver spec ~rng] runs the pair in domains
    0 (sender) and 1 (receiver) of [b] on core 0 and returns the
    collected dataset.  The receiver returns [None] for slices that
    should not produce a sample (e.g. calibration).
    @raise Invalid_argument if no samples at all were collected. *)

val run_pair_result :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  spec ->
  rng:Tp_util.Rng.t ->
  result
(** Like {!run_pair} but never raises on partial data: returns
    whatever was collected together with degradation metadata. *)

val run_pair_cross_core :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  cosched:bool ->
  spec ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Mi.samples
(** Cross-core variant: the sender runs in domain 0 on core 0 and the
    receiver in domain 1 on core 1.  With [cosched:false] both domains
    execute concurrently ({!Tp_kernel.Exec.run_concurrent}); with
    [cosched:true] they are gang-scheduled so only one domain is ever
    executing ({!Tp_kernel.Exec.run_coscheduled}, the §3.1.1
    confinement mitigation). *)

val run_pair_cross_core_result :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  cosched:bool ->
  spec ->
  rng:Tp_util.Rng.t ->
  result
(** Checkpointed cross-core variant, never raises on partial data. *)

val measure_leak :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  spec ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Leakage.result
(** [run_pair] followed by the shuffle test. *)

val measure_leak_result :
  Tp_kernel.Boot.booted ->
  sender:(Tp_kernel.Uctx.t -> int -> unit) ->
  receiver:(Tp_kernel.Uctx.t -> float option) ->
  spec ->
  rng:Tp_util.Rng.t ->
  Tp_channel.Leakage.result * result
(** {!measure_leak} plus the collection metadata (degraded flag,
    recovered fault count) for reporting. *)

val status_json : result -> string
(** The collection metadata of a result — degraded flag and reason,
    recovered fault count, checkpoints, samples kept — as one JSON
    object, the shape [tpsim faults] and the campaign-service
    job-result JSON both report. *)

val point_chunk : string
(** ["harness.chunk"]: injection point crossed once per checkpointed
    collection chunk.  Arming it (e.g. [--inject harness.chunk:2])
    makes a kernel fault strike {e mid-collection}, driving the
    recover-and-resume path rather than a setup path. *)

(** {1 Receiver helpers} *)

val timed : Tp_kernel.Uctx.t -> (unit -> unit) -> int
(** Cycle-counter time of running a thunk. *)

val probe_reads : Tp_kernel.Uctx.t -> base:int -> stride:int -> count:int -> int
(** Read [count] addresses [base, base+stride, ...]; returns total
    cycles — the basic prime/probe traversal. *)

val probe_read_misses :
  Tp_kernel.Uctx.t -> base:int -> stride:int -> count:int -> threshold:int -> int
(** Like {!probe_reads} but returns how many individual accesses took
    longer than [threshold] cycles (a miss count, as the paper's
    receivers report). *)
