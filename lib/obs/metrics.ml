(* Typed metric registry with Prometheus/OpenMetrics text exposition.

   One process-global registry guarded by a mutex: unlike the counter
   registry (domain-local, merged at pool joins), metric recording is
   low-rate — per trial, per wave, per store commit — so worker domains
   simply take the lock.  Everything is gated on [enabled]: with
   metrics off (the default) every record call is one atomic load, no
   lock, no clock reads, so a metrics-off run is bit-identical to one
   that never linked this module.  Values are observational only —
   nothing in the simulator reads a metric back. *)

type kind = Counter | Gauge | Histogram_k

type cell =
  | Ccounter of int ref
  | Cgauge of float ref
  | Chist of Histogram.t

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  (* (canonical label key, labels, cell), insertion-ordered; rendering
     sorts by key so exposition is deterministic. *)
  mutable f_series : (string * (string * string) list * cell) list;
}

let registry : (string, family) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()
let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram_k -> "histogram"

let family kind ?(help = "") name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some f ->
          if f.f_kind <> kind then
            invalid_arg
              (Printf.sprintf
                 "Tp_obs.Metrics: %s already registered as a %s" name
                 (kind_name f.f_kind));
          f
      | None ->
          let f = { f_name = name; f_help = help; f_kind = kind; f_series = [] } in
          Hashtbl.replace registry name f;
          f)

let counter ?help name = family Counter ?help name
let gauge ?help name = family Gauge ?help name
let histogram ?help name = family Histogram_k ?help name

(* Label-value escaping per the text exposition format. *)
let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let label_block = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
      ^ "}"

let canonical labels =
  label_block (List.sort (fun (a, _) (b, _) -> compare a b) labels)

(* Callers hold the lock. *)
let cell_of f labels =
  let key = canonical labels in
  match
    List.find_opt (fun (k, _, _) -> k = key) f.f_series
  with
  | Some (_, _, c) -> c
  | None ->
      let c =
        match f.f_kind with
        | Counter -> Ccounter (ref 0)
        | Gauge -> Cgauge (ref 0.0)
        | Histogram_k -> Chist (Histogram.create ())
      in
      let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
      f.f_series <- f.f_series @ [ (key, labels, c) ];
      c

let wrong_kind f want =
  invalid_arg
    (Printf.sprintf "Tp_obs.Metrics: %s is a %s, not a %s" f.f_name
       (kind_name f.f_kind) want)

let inc ?(labels = []) ?(by = 1) f =
  if enabled () then
    with_lock (fun () ->
        match cell_of f labels with
        | Ccounter r -> r := !r + by
        | Cgauge _ | Chist _ -> wrong_kind f "counter")

let set ?(labels = []) f v =
  if enabled () then
    with_lock (fun () ->
        match cell_of f labels with
        | Cgauge r -> r := v
        | Ccounter _ | Chist _ -> wrong_kind f "gauge")

let observe ?(labels = []) f v =
  if enabled () then
    with_lock (fun () ->
        match cell_of f labels with
        | Chist h -> Histogram.record h v
        | Ccounter _ | Cgauge _ -> wrong_kind f "histogram")

(* ---- reading back (tests, the drift monitor) --------------------- *)

let find_cell f labels =
  let key = canonical labels in
  with_lock (fun () ->
      Option.map
        (fun (_, _, c) -> c)
        (List.find_opt (fun (k, _, _) -> k = key) f.f_series))

let value ?(labels = []) f =
  match find_cell f labels with
  | Some (Ccounter r) -> Some (float_of_int !r)
  | Some (Cgauge r) -> Some !r
  | Some (Chist _) | None -> None

let histogram_of ?(labels = []) f =
  match find_cell f labels with
  | Some (Chist h) -> Some h
  | Some _ | None -> None

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ f -> f.f_series <- []) registry)

(* ---- exposition -------------------------------------------------- *)

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let escape_help h =
  let b = Buffer.create (String.length h) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    h;
  Buffer.contents b

let render_family b f =
  if f.f_help <> "" then
    Buffer.add_string b
      (Printf.sprintf "# HELP %s %s\n" f.f_name (escape_help f.f_help));
  Buffer.add_string b
    (Printf.sprintf "# TYPE %s %s\n" f.f_name (kind_name f.f_kind));
  let series =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) f.f_series
  in
  List.iter
    (fun (_, labels, cell) ->
      match cell with
      | Ccounter r ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" f.f_name (label_block labels) !r)
      | Cgauge r ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" f.f_name (label_block labels)
               (float_str !r))
      | Chist h ->
          let cum = ref 0 in
          List.iter
            (fun (ub, c) ->
              cum := !cum + c;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" f.f_name
                   (label_block (labels @ [ ("le", string_of_int ub) ]))
                   !cum))
            (Histogram.buckets h);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket%s %d\n" f.f_name
               (label_block (labels @ [ ("le", "+Inf") ]))
               (Histogram.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" f.f_name (label_block labels)
               (Histogram.sum h));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" f.f_name (label_block labels)
               (Histogram.count h)))
    series

let render () =
  with_lock (fun () ->
      let fams =
        Hashtbl.fold (fun _ f acc -> f :: acc) registry []
        |> List.sort (fun a b -> compare a.f_name b.f_name)
      in
      let b = Buffer.create 4096 in
      List.iter (render_family b) fams;
      Buffer.add_string b "# EOF\n";
      Buffer.contents b)
