(* Structured JSONL event log with size-based rotation.

   One JSON object per line, append-only; when the file would exceed
   [max_bytes] it is rotated (path -> path.1 -> path.2 ...) before the
   write, so a single log never grows past the cap and the newest
   [keep] generations survive.  Writes are mutex-serialised — the serve
   daemon logs from the accept loop only, but the lock makes the module
   safe to call from anywhere. *)

module Json = Tp_util.Json

type t = {
  e_path : string;
  e_max_bytes : int;
  e_keep : int;
  e_lock : Mutex.t;
  mutable e_oc : out_channel option; (* None once closed *)
}

let open_ ?(max_bytes = 1_048_576) ?(keep = 3) path =
  if max_bytes < 1024 then
    invalid_arg "Tp_obs.Eventlog.open_: max_bytes must be >= 1024";
  if keep < 1 then invalid_arg "Tp_obs.Eventlog.open_: keep must be >= 1";
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  {
    e_path = path;
    e_max_bytes = max_bytes;
    e_keep = keep;
    e_lock = Mutex.create ();
    e_oc = Some oc;
  }

let path t = t.e_path

let gen_path t n = t.e_path ^ "." ^ string_of_int n

(* Caller holds the lock and has closed the current channel. *)
let rotate t =
  (try Sys.remove (gen_path t t.e_keep) with Sys_error _ -> ());
  for n = t.e_keep - 1 downto 1 do
    if Sys.file_exists (gen_path t n) then
      try Sys.rename (gen_path t n) (gen_path t (n + 1)) with Sys_error _ -> ()
  done;
  if Sys.file_exists t.e_path then
    try Sys.rename t.e_path (gen_path t 1) with Sys_error _ -> ()

let write t ~event fields =
  Mutex.lock t.e_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.e_lock)
    (fun () ->
      match t.e_oc with
      | None -> ()
      | Some oc ->
          let line =
            Json.to_string
              (Json.Obj
                 (("ts", Json.Num (Unix.gettimeofday ()))
                 :: ("event", Json.Str event)
                 :: fields))
          in
          let len = String.length line + 1 in
          let oc =
            if pos_out oc + len > t.e_max_bytes && pos_out oc > 0 then begin
              close_out_noerr oc;
              rotate t;
              let oc =
                open_out_gen
                  [ Open_append; Open_creat; Open_binary ]
                  0o644 t.e_path
              in
              t.e_oc <- Some oc;
              oc
            end
            else oc
          in
          output_string oc line;
          output_char oc '\n';
          flush oc)

let close t =
  Mutex.lock t.e_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.e_lock)
    (fun () ->
      match t.e_oc with
      | None -> ()
      | Some oc ->
          t.e_oc <- None;
          close_out_noerr oc)
