(** Span-based structured tracing with a Chrome trace-event exporter.

    Events go into a fixed-capacity ring buffer: tracing a long run is
    O(1) memory and the buffer keeps the most recent window (the
    [dropped] count says how much history was overwritten).  Timestamps
    are simulated cycles; the exporter writes them as trace-event
    microseconds, so {e 1 trace "µs" = 1 simulated cycle} — load the
    file in Perfetto / [chrome://tracing] and read the time axis as
    cycles.

    Recording is gated on {!Ctl.trace_on} (set by {!start}); like the
    counters, the trace layer only ever observes the model, so an
    instrumented run computes bit-identical results. *)

type arg = Int of int | Str of string | Bool of bool

type kind = Span | Instant

type event = {
  ts : int;  (** start, simulated cycles *)
  dur : int;  (** span length (0 for instants) *)
  core : int;  (** trace-event tid *)
  cat : string;  (** category: "hw", "kernel", "harness", "fault", ... *)
  name : string;
  args : (string * arg) list;
  kind : kind;
}

val start : ?capacity:int -> unit -> unit
(** Allocate the ring (default capacity 262144 events, power of two
    not required) and enable tracing.  Restarting clears the buffer. *)

val stop : unit -> unit
(** Disable tracing; the buffered events remain exportable. *)

val clear : unit -> unit
(** Drop all buffered events (and the dropped count). *)

val enabled : unit -> bool
(** [Ctl.trace_on], re-exported so instrumentation sites can guard
    argument construction. *)

val span :
  core:int -> cat:string -> name:string -> ts:int -> dur:int ->
  ?args:(string * arg) list -> unit -> unit
(** Record a completed span (trace-event phase ["X"]). *)

val instant :
  ?ts:int -> core:int -> cat:string -> name:string ->
  ?args:(string * arg) list -> unit -> unit
(** Record an instant event.  Without [ts] the event is placed at the
    timestamp of the most recently recorded event — callers with no
    clock of their own (e.g. the fault registry observer) still land
    in causal order. *)

val events : unit -> event list
(** Buffered events, oldest first. *)

val recorded : unit -> int
(** Events currently buffered. *)

val dropped : unit -> int
(** Events overwritten since {!start}/{!clear}. *)

(** {1 Cross-domain capture}

    The ring is {e domain-local}: the [Ctl.trace] flag is shared, but
    each domain buffers into its own ring, so a [Tp_par.Pool] worker
    never races the main ring.  The pool wraps every task in
    {!with_capture} (at all jobs levels) and {!replay}s the captures in
    trial order, making a traced [-j N] run buffer the same events as
    [-j 1]. *)

val with_capture : ?capacity:int -> (unit -> 'a) -> 'a * event list
(** Run a thunk with a fresh private ring (its [last_ts] starts at 0)
    and return its result plus the events it recorded; the previous
    ring is restored afterwards, even on exception.  When tracing is
    disabled this is just [f ()] with an empty capture. *)

val replay : event list -> unit
(** Push previously captured events into the current ring (no-op when
    no ring is allocated). *)

(** {1 Export} *)

val export_chrome : out_channel -> unit
(** Write the buffer as Chrome trace-event JSON
    ([{"traceEvents": [...]}]), loadable by Perfetto. *)

val export_chrome_file : string -> unit

val export_metrics_jsonl : out_channel -> unit
(** Dump every registered counter set as one JSON object per line:
    [{"set": "c0.l1d", "counters": {"hits": 12, ...}}]. *)

val export_metrics_file : string -> unit
