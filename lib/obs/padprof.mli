(** Pad-slack profiler: is deterministic padding actually hiding the
    domain-switch latency variation?

    The paper's padding defence (§4.3) works only if the configured pad
    exceeds the worst-case unpadded switch latency — otherwise the
    switch overruns the pad and its duration is observable again.  This
    profiler records every {!Tp_kernel.Domain_switch} cost (fed by the
    switch path itself, gated on {!Ctl.counters_on}) keyed by the
    {e outgoing} kernel image, whose attribute the pad is, and reports
    per image:

    - the latency distribution (total / flush / pad-wait),
    - the worst observed {e unpadded} cost ([total - pad_wait]),
    - the pad-slack distribution ([pad_wait], what the padding absorbed),
    - the headroom ([pad - worst unpadded]) and the number of {e pad
      overruns} — padded switches that hit the pad target with nothing
      to spare, i.e. observable leaks. *)

type obs = { o_total : int; o_flush : int; o_pad_wait : int; o_padded : bool }

type image = {
  im_ki : int;  (** kernel image id *)
  mutable im_pad : int;  (** configured pad, cycles (last seen) *)
  mutable im_n : int;  (** switches observed *)
  mutable im_padded : int;  (** of which padded (protecting, pad > 0) *)
  mutable im_overruns : int;  (** padded switches with zero slack *)
  mutable im_worst_unpadded : int;
  mutable im_worst_total : int;
  mutable im_sum_total : int;
  mutable im_min_slack : int;  (** over padded switches; [max_int] if none *)
  mutable im_samples : obs list;  (** newest first, capped *)
  mutable im_kept : int;
}

val record :
  ki:int -> pad:int -> padded:bool -> total:int -> flush:int -> pad_wait:int ->
  unit
(** Called by the switch path after each domain switch; no-op unless
    {!Ctl.counters_on}. *)

val images : unit -> image list
(** Profiles sorted by kernel image id. *)

val reset : unit -> unit

val headroom : image -> int option
(** [pad - worst unpadded], if any padded switch was seen. *)

val slack_percentiles : image -> (int * int) option
(** (p50, p99) of the pad-wait over padded switches, from a
    log-bucketed {!Histogram} over the retained samples; [None] if no
    padded switch was seen. *)

val report : ?cycles_to_us:(int -> float) -> Format.formatter -> unit -> unit
(** Per-image summary table (including pad-slack p50/p99 columns)
    plus a pad-slack histogram per padded image.  With [cycles_to_us]
    the table carries a µs column. *)
