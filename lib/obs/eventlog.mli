(** Structured JSONL event log with size-based rotation.

    The serve daemon's durable activity record: one JSON object per
    line ([{"ts": <unix seconds>, "event": "<name>", ...fields}]),
    appended and flushed per event so a tail survives a crash.  Before
    a write would push the file past [max_bytes], generations rotate
    ([path] → [path.1] → ... → [path.keep], oldest deleted), bounding
    total disk use at roughly [(keep + 1) * max_bytes].

    Event names used by [Tp_serve]: [daemon_start], [job_received],
    [job_done], [job_rejected], [spans_dropped], [mi_over_cert] (the
    leakage-drift alert) and [shutdown]. *)

type t

val open_ : ?max_bytes:int -> ?keep:int -> string -> t
(** Open (append) an event log at a path.  [max_bytes] defaults to
    1 MiB (minimum 1024), [keep] to 3 rotated generations. *)

val write : t -> event:string -> (string * Tp_util.Json.t) list -> unit
(** Append one event; a timestamp is added automatically.  No-op after
    {!close}.  Thread-safe. *)

val path : t -> string
val close : t -> unit
