(** Global observability switches.

    Both default to off, so a plain library user pays one boolean load
    per would-be event and nothing else.  The zero-perturbation
    contract (enforced by [test_obs]): flipping either switch must not
    change any simulated cycle count — counters and traces live beside
    the machine model, never inside its arithmetic.

    Domain-safety rule: the switches are plain shared refs.  Toggle
    them only outside parallel regions — [Domain.spawn] publishes the
    value to workers, which treat it as read-only for the task's
    duration.  The stores the switches gate ({!Counter}, {!Trace},
    {!Padprof}) are all domain-local, so concurrent recording never
    races. *)

val set_counters : bool -> unit
(** Enable/disable performance-counter recording (and the pad-slack
    profiler, which feeds off the same events). *)

val counters_on : unit -> bool

val set_trace : bool -> unit
(** Enable/disable structured-trace recording.  {!Trace.start} flips
    this on after allocating the ring. *)

val trace_on : unit -> bool

val all_off : unit -> unit
(** Turn everything off (test teardown). *)
