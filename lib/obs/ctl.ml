let counters = ref false
let trace = ref false
let counters_on () = !counters
let trace_on () = !trace
let set_counters b = counters := b
let set_trace b = trace := b

let all_off () =
  counters := false;
  trace := false
