type t = { c_name : string; mutable v : int }

type set = { s_name : string; mutable items : t list (* reverse order *) }

type snapshot = (string * int) list

let make_set s_name = { s_name; items = [] }

let counter set c_name =
  let c = { c_name; v = 0 } in
  set.items <- c :: set.items;
  c

let incr c = if Ctl.counters_on () then c.v <- c.v + 1
let add c n = if Ctl.counters_on () then c.v <- c.v + n
let value c = c.v
let name c = c.c_name
let set_name s = s.s_name
let snapshot set = List.rev_map (fun c -> (c.c_name, c.v)) set.items
let reset set = List.iter (fun c -> c.v <- 0) set.items

let delta ~before ~after =
  List.map2
    (fun (nb, b) (na, a) ->
      if nb <> na then
        invalid_arg "Counter.delta: snapshots from different sets";
      (nb, a - b))
    before after

let total snap = List.fold_left (fun acc (_, v) -> acc + v) 0 snap

let registry : (string, set) Hashtbl.t = Hashtbl.create 64

let register set = Hashtbl.replace registry set.s_name set

let registered () =
  Hashtbl.fold (fun _ s acc -> s :: acc) registry []
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let find n = Hashtbl.find_opt registry n
let reset_all () = Hashtbl.iter (fun _ s -> reset s) registry

let pp_set ppf set =
  Format.fprintf ppf "%s:" set.s_name;
  List.iter
    (fun (n, v) -> if v <> 0 then Format.fprintf ppf "@.  %-20s %d" n v)
    (snapshot set);
  Format.fprintf ppf "@."

let table ?(skip_zero = true) sets =
  let t =
    Tp_util.Table.create ~title:"Performance counters"
      ~headers:[ "component"; "counter"; "value" ]
  in
  let first = ref true in
  List.iter
    (fun set ->
      let rows =
        List.filter (fun (_, v) -> (not skip_zero) || v <> 0) (snapshot set)
      in
      if rows <> [] then begin
        if not !first then Tp_util.Table.add_sep t;
        first := false;
        List.iteri
          (fun i (n, v) ->
            Tp_util.Table.add_row t
              [ (if i = 0 then set.s_name else ""); n; Tp_util.Table.cell_i v ])
          rows
      end)
    sets;
  t
