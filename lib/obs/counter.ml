type t = { c_name : string; mutable v : int }

type set = { s_name : string; mutable items : t list (* reverse order *) }

type snapshot = (string * int) list

let make_set s_name = { s_name; items = [] }

let counter set c_name =
  let c = { c_name; v = 0 } in
  set.items <- c :: set.items;
  c

let incr c = if Ctl.counters_on () then c.v <- c.v + 1
let add c n = if Ctl.counters_on () then c.v <- c.v + n

(* For hot paths that hoist one Ctl.counters_on check over several
   recordings (Cache/Tlb access): the caller has already checked. *)
let incr_unchecked c = c.v <- c.v + 1
let add_unchecked c n = c.v <- c.v + n
let value c = c.v
let name c = c.c_name
let set_name s = s.s_name
let snapshot set = List.rev_map (fun c -> (c.c_name, c.v)) set.items
let reset set = List.iter (fun c -> c.v <- 0) set.items
let length set = List.length set.items
let values set = Array.of_list (List.rev_map (fun c -> c.v) set.items)

let set_values set vs =
  let n = List.length set.items in
  if Array.length vs <> n then
    invalid_arg "Counter.set_values: value count does not match the set";
  (* [items] is reverse declaration order; [vs] is declaration order. *)
  let i = ref n in
  List.iter
    (fun c ->
      decr i;
      c.v <- vs.(!i))
    set.items

let delta ~before ~after =
  List.map2
    (fun (nb, b) (na, a) ->
      if nb <> na then
        invalid_arg "Counter.delta: snapshots from different sets";
      (nb, a - b))
    before after

let total snap = List.fold_left (fun acc (_, v) -> acc + v) 0 snap

(* The registry is domain-local: each worker domain spawned by
   Tp_par.Pool registers the sets of the simulators it creates without
   racing the main domain (or its siblings).  Aggregation back into the
   spawning domain happens explicitly via {!export}/{!absorb} at
   join. *)
let registry_key : (string, set) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key

let register set = Hashtbl.replace (registry ()) set.s_name set

let registered () =
  Hashtbl.fold (fun _ s acc -> s :: acc) (registry ()) []
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let find n = Hashtbl.find_opt (registry ()) n
let reset_all () = Hashtbl.iter (fun _ s -> reset s) (registry ())

let export () = List.map (fun s -> (s.s_name, snapshot s)) (registered ())

let absorb exported =
  List.iter
    (fun (sname, snap) ->
      match find sname with
      | Some set when List.map (fun c -> c.c_name) (List.rev set.items)
                      = List.map fst snap ->
          (* Same component exists here: pointwise sum (counter values
             commute, so absorbing workers in any fixed order is
             deterministic). *)
          List.iter
            (fun c ->
              match List.assoc_opt c.c_name snap with
              | Some v -> c.v <- c.v + v
              | None -> ())
            set.items
      | Some _ | None ->
          (* Unknown (or shape-changed) component: materialise it so
             [tpsim stats]-style dumps still see the worker's activity. *)
          let set = make_set sname in
          List.iter
            (fun (cname, v) ->
              let c = counter set cname in
              c.v <- v)
            snap;
          register set)
    exported

let pp_set ppf set =
  Format.fprintf ppf "%s:" set.s_name;
  List.iter
    (fun (n, v) -> if v <> 0 then Format.fprintf ppf "@.  %-20s %d" n v)
    (snapshot set);
  Format.fprintf ppf "@."

let table ?(skip_zero = true) sets =
  let t =
    Tp_util.Table.create ~title:"Performance counters"
      ~headers:[ "component"; "counter"; "value" ]
  in
  let first = ref true in
  List.iter
    (fun set ->
      let rows =
        List.filter (fun (_, v) -> (not skip_zero) || v <> 0) (snapshot set)
      in
      if rows <> [] then begin
        if not !first then Tp_util.Table.add_sep t;
        first := false;
        List.iteri
          (fun i (n, v) ->
            Tp_util.Table.add_row t
              [ (if i = 0 then set.s_name else ""); n; Tp_util.Table.cell_i v ])
          rows
      end)
    sets;
  t
