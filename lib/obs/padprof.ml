type obs = { o_total : int; o_flush : int; o_pad_wait : int; o_padded : bool }

type image = {
  im_ki : int;
  mutable im_pad : int;
  mutable im_n : int;
  mutable im_padded : int;
  mutable im_overruns : int;
  mutable im_worst_unpadded : int;
  mutable im_worst_total : int;
  mutable im_sum_total : int;
  mutable im_min_slack : int;
  mutable im_samples : obs list;
  mutable im_kept : int;
}

(* Per-switch samples retained per image for the histograms; beyond the
   cap only the running aggregates keep growing. *)
let sample_cap = 65_536

(* Domain-local, like the counter registry: each Tp_par.Pool worker
   profiles the switches of its own simulators.  Profiles are not
   merged at join (tpsim stats runs sequentially); the table exists so
   worker-side recording never races the main domain. *)
let table_key : (int, image) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let table () = Domain.DLS.get table_key

let image_of ki =
  let table = table () in
  match Hashtbl.find_opt table ki with
  | Some im -> im
  | None ->
      let im =
        {
          im_ki = ki;
          im_pad = 0;
          im_n = 0;
          im_padded = 0;
          im_overruns = 0;
          im_worst_unpadded = 0;
          im_worst_total = 0;
          im_sum_total = 0;
          im_min_slack = max_int;
          im_samples = [];
          im_kept = 0;
        }
      in
      Hashtbl.replace table ki im;
      im

let record ~ki ~pad ~padded ~total ~flush ~pad_wait =
  if Ctl.counters_on () then begin
    let im = image_of ki in
    im.im_pad <- pad;
    im.im_n <- im.im_n + 1;
    let unpadded = total - pad_wait in
    if unpadded > im.im_worst_unpadded then im.im_worst_unpadded <- unpadded;
    if total > im.im_worst_total then im.im_worst_total <- total;
    im.im_sum_total <- im.im_sum_total + total;
    if padded then begin
      im.im_padded <- im.im_padded + 1;
      if pad_wait < im.im_min_slack then im.im_min_slack <- pad_wait;
      if pad_wait = 0 then im.im_overruns <- im.im_overruns + 1
    end;
    if im.im_kept < sample_cap then begin
      im.im_samples <-
        { o_total = total; o_flush = flush; o_pad_wait = pad_wait;
          o_padded = padded }
        :: im.im_samples;
      im.im_kept <- im.im_kept + 1
    end
  end

let images () =
  Hashtbl.fold (fun _ im acc -> im :: acc) (table ()) []
  |> List.sort (fun a b -> compare a.im_ki b.im_ki)

let reset () = Hashtbl.reset (table ())

let headroom im =
  if im.im_padded = 0 then None else Some (im.im_pad - im.im_worst_unpadded)

(* Pad-slack quantiles from the log-bucketed histogram: p50 tells us
   where the padding typically sits, p99 how close the tail gets to an
   overrun.  Built on demand from the retained samples. *)
let slack_percentiles im =
  let h = Histogram.create () in
  List.iter
    (fun o -> if o.o_padded then Histogram.record h o.o_pad_wait)
    im.im_samples;
  if Histogram.count h = 0 then None
  else Some (Histogram.percentile h 50.0, Histogram.percentile h 99.0)

let report ?cycles_to_us ppf () =
  let ims = images () in
  if ims = [] then
    Format.fprintf ppf
      "pad-slack profile: no domain switches recorded (counters off?)@."
  else begin
    let t =
      Tp_util.Table.create ~title:"Pad-slack profile (per kernel image, cycles)"
        ~headers:
          ([ "image"; "switches"; "padded"; "pad"; "worst unpadded";
             "mean total"; "min slack"; "slack p50"; "slack p99"; "headroom";
             "overruns" ]
          @ match cycles_to_us with Some _ -> [ "pad (us)" ] | None -> [])
    in
    List.iter
      (fun im ->
        let mean = if im.im_n = 0 then 0 else im.im_sum_total / im.im_n in
        Tp_util.Table.add_row t
          ([ Printf.sprintf "#%d" im.im_ki;
             Tp_util.Table.cell_i im.im_n;
             Tp_util.Table.cell_i im.im_padded;
             Tp_util.Table.cell_i im.im_pad;
             Tp_util.Table.cell_i im.im_worst_unpadded;
             Tp_util.Table.cell_i mean;
             (if im.im_min_slack = max_int then "-"
              else Tp_util.Table.cell_i im.im_min_slack);
             (match slack_percentiles im with
             | None -> "-"
             | Some (p50, _) -> Tp_util.Table.cell_i p50);
             (match slack_percentiles im with
             | None -> "-"
             | Some (_, p99) -> Tp_util.Table.cell_i p99);
             (match headroom im with
             | None -> "-"
             | Some h -> Tp_util.Table.cell_i h);
             Tp_util.Table.cell_i im.im_overruns ]
          @
          match cycles_to_us with
          | Some f -> [ Tp_util.Table.cell_f (f im.im_pad) ]
          | None -> []))
      ims;
    Format.fprintf ppf "%a@." Tp_util.Table.pp t;
    (* Distribution of what the padding absorbed: a healthy profile has
       every padded switch well away from the 0 bin (the overrun bin). *)
    List.iter
      (fun im ->
        let padded =
          List.filter_map
            (fun o -> if o.o_padded then Some o.o_pad_wait else None)
            im.im_samples
        in
        if padded <> [] && im.im_pad > 0 then begin
          let hi = float_of_int (Stdlib.max 1 im.im_pad) in
          let h = Tp_util.Histogram.create ~lo:0.0 ~hi ~bins:16 in
          List.iter (fun s -> Tp_util.Histogram.add h (float_of_int s)) padded;
          Format.fprintf ppf
            "image #%d pad-slack distribution (pad_wait cycles, %d samples):@.%a@."
            im.im_ki (List.length padded)
            (Tp_util.Histogram.pp ~width:40)
            h
        end)
      ims;
    (* Unpadded-total distribution is the padding-determinism question
       for images with no pad configured. *)
    List.iter
      (fun im ->
        if im.im_pad = 0 && im.im_samples <> [] then begin
          let hi = float_of_int (Stdlib.max 1 im.im_worst_total) in
          let h = Tp_util.Histogram.create ~lo:0.0 ~hi ~bins:16 in
          List.iter
            (fun o -> Tp_util.Histogram.add h (float_of_int o.o_total))
            im.im_samples;
          Format.fprintf ppf
            "image #%d switch-total distribution (no pad, %d samples):@.%a@."
            im.im_ki im.im_kept
            (Tp_util.Histogram.pp ~width:40)
            h
        end)
      ims
  end
