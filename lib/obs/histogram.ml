(* Log-bucketed (HDR-style) histogram over non-negative integers.

   Bucket layout: values below [sub_count] get one bucket each (exact);
   above that, each power-of-two octave is split into [sub_count]
   sub-buckets, so the relative error of any reconstructed quantile is
   bounded by 1/sub_count (~12.5%) while the whole histogram is one
   fixed 488-slot array regardless of range.  Recording is a couple of
   shifts plus an increment — cheap enough for per-trial latencies.

   Merging is pointwise addition (plus min/max/sum combination), which
   commutes and associates, so absorbing worker histograms in any fixed
   order yields identical aggregates — the same property that makes
   [Counter.absorb] safe at a pool join. *)

let sub_bits = 3
let sub_count = 1 lsl sub_bits (* 8 *)

(* Highest index reachable for a 62-bit value: (62 - sub_bits) *
   sub_count + (sub_count - 1) extra inside the top octave. *)
let n_buckets = 488

let floor_log2 v =
  let e = ref 0 and v = ref v in
  while !v > 1 do
    incr e;
    v := !v lsr 1
  done;
  !e

let index_of v =
  if v < sub_count then v
  else begin
    let e = floor_log2 v in
    let m = v lsr (e - sub_bits) in
    (* m in [sub_count, 2*sub_count) *)
    let i = ((e - sub_bits) * sub_count) + m in
    if i >= n_buckets then n_buckets - 1 else i
  end

(* Largest value a bucket covers (inclusive); the quantile estimate. *)
let upper_of i =
  if i < sub_count then i
  else
    let e = sub_bits + ((i - sub_count) / sub_count) in
    let m = i - ((e - sub_bits) * sub_count) in
    (* m in [sub_count, 2*sub_count) *)
    ((m + 1) lsl (e - sub_bits)) - 1

type t = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int; (* max_int while empty *)
  mutable h_max : int;
  h_counts : int array;
}

type snapshot = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_buckets : (int * int) list; (* (bucket index, count), ascending, non-zero *)
}

let create () =
  {
    h_count = 0;
    h_sum = 0;
    h_min = max_int;
    h_max = 0;
    h_counts = Array.make n_buckets 0;
  }

let clear h =
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_min <- max_int;
  h.h_max <- 0;
  Array.fill h.h_counts 0 n_buckets 0

let record h v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let count h = h.h_count
let sum h = h.h_sum
let min_ h = if h.h_count = 0 then 0 else h.h_min
let max_ h = h.h_max

let mean h =
  if h.h_count = 0 then 0.0
  else float_of_int h.h_sum /. float_of_int h.h_count

(* Nearest-rank quantile from the cumulative bucket counts; the bucket
   upper bound, clamped to the observed extremes so p100 is exact. *)
let percentile h p =
  if h.h_count = 0 then 0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank && !i < n_buckets do
      seen := !seen + h.h_counts.(!i);
      if !seen < rank then incr i
    done;
    let u = upper_of !i in
    if u > h.h_max then h.h_max else if u < h.h_min then h.h_min else u
  end

let merge ~into src =
  Array.iteri
    (fun i c -> if c > 0 then into.h_counts.(i) <- into.h_counts.(i) + c)
    src.h_counts;
  into.h_count <- into.h_count + src.h_count;
  into.h_sum <- into.h_sum + src.h_sum;
  if src.h_count > 0 then begin
    if src.h_min < into.h_min then into.h_min <- src.h_min;
    if src.h_max > into.h_max then into.h_max <- src.h_max
  end

let buckets h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_counts.(i) > 0 then acc := (upper_of i, h.h_counts.(i)) :: !acc
  done;
  !acc

let snapshot h =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_counts.(i) > 0 then acc := (i, h.h_counts.(i)) :: !acc
  done;
  {
    s_count = h.h_count;
    s_sum = h.h_sum;
    s_min = h.h_min;
    s_max = h.h_max;
    s_buckets = !acc;
  }

let of_snapshot s =
  let h = create () in
  List.iter (fun (i, c) -> h.h_counts.(i) <- c) s.s_buckets;
  h.h_count <- s.s_count;
  h.h_sum <- s.s_sum;
  h.h_min <- s.s_min;
  h.h_max <- s.s_max;
  h
