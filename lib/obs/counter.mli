(** Per-component performance counters.

    A {e counter} is a named monotonic integer; a {e set} groups the
    counters of one hardware or kernel component ("c0.l1d", "dram",
    "kernel.switch", ...).  Recording is gated on {!Ctl.counters_on}:
    with counters off every increment is a no-op, and in either case a
    counter is never read by the model itself, so enabling them cannot
    perturb a measurement.

    Sets support snapshot / delta / reset, which is what the harness
    uses to attribute counter activity to one measurement window, and
    a process-wide registry (by name, replace-on-collision) so tooling
    like [tpsim stats] can dump everything that is live without
    threading component references through every layer. *)

type t
(** One named counter. *)

type set
(** A named, ordered collection of counters. *)

type snapshot = (string * int) list
(** Counter values in declaration order. *)

(** {1 Building} *)

val make_set : string -> set
(** Fresh, unregistered set. *)

val counter : set -> string -> t
(** Declare a counter in a set.  Declaration order is preserved by
    {!snapshot} and printing. *)

val register : set -> unit
(** Publish the set in the process-wide registry.  A set with the same
    name replaces the previous one — the registry always describes the
    most recently created machine/system. *)

(** {1 Recording} *)

val incr : t -> unit
(** Add one, if {!Ctl.counters_on}. *)

val add : t -> int -> unit
(** Add [n] (expected non-negative), if {!Ctl.counters_on}. *)

val incr_unchecked : t -> unit
(** {!incr} without the {!Ctl.counters_on} gate — for hot paths that
    hoist one flag check over several recordings.  Callers must only
    reach this when counters are on, or the zero-perturbation account
    ("off means nothing recorded") breaks. *)

val add_unchecked : t -> int -> unit

(** {1 Reading} *)

val value : t -> int
val name : t -> string
val set_name : set -> string

val snapshot : set -> snapshot
val reset : set -> unit

val length : set -> int
(** Number of counters declared in the set. *)

val values : set -> int array
(** Counter values in declaration order — the array counterpart of
    {!snapshot}, used by machine snapshot/restore where counter values
    are part of the saved state. *)

val set_values : set -> int array -> unit
(** Overwrite every counter from an array in declaration order (the
    inverse of {!values}).  Unlike {!incr} this is unconditional: it
    restores values that were already gated on {!Ctl.counters_on} when
    recorded.
    @raise Invalid_argument on an arity mismatch. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Pointwise [after - before]; both snapshots must come from the same
    set (checked by counter name). *)

val total : snapshot -> int
(** Sum of all values (quick "did anything happen" check). *)

(** {1 Registry} *)

val registered : unit -> set list
(** All registered sets, sorted by name. *)

val find : string -> set option

val reset_all : unit -> unit
(** Reset every registered set (a fresh measurement window). *)

(** {1 Cross-domain aggregation}

    The registry is {e domain-local} ([Domain.DLS]): a worker domain
    spawned by [Tp_par.Pool] starts with an empty registry, registers
    the sets of whatever simulators it creates, and its counts are
    folded back into the spawning domain at join via {!export} /
    {!absorb}.  Counter values are sums, so absorbing the workers in a
    fixed order yields deterministic aggregates. *)

val export : unit -> (string * snapshot) list
(** Snapshot of every set registered in the {e current} domain, sorted
    by set name. *)

val absorb : (string * snapshot) list -> unit
(** Fold an {!export}ed snapshot list into this domain's registry:
    pointwise-add into a registered set of the same name and shape, or
    materialise (and register) a new set otherwise.  Unlike {!incr},
    absorption is unconditional — it aggregates values that were
    already gated on {!Ctl.counters_on} when recorded. *)

(** {1 Rendering} *)

val pp_set : Format.formatter -> set -> unit
(** One line per non-zero counter, indented under the set name. *)

val table : ?skip_zero:bool -> set list -> Tp_util.Table.t
(** All sets as one aligned [component | counter | value] table with a
    separator between components; [skip_zero] (default true) omits
    counters that never fired. *)
