(** Log-bucketed (HDR-style) latency histogram.

    Fixed memory (one 488-slot array) over any non-negative integer
    range: exact below 8, then 8 sub-buckets per power-of-two octave,
    so quantiles reconstructed from the buckets carry at most ~12.5%
    relative error.  Negative values clamp to 0.

    Histograms are {e observational}: nothing in the simulator reads
    one back, so recording cannot perturb a measurement.  Recording is
    unconditional — callers gate on their own switch ({!Ctl.counters_on},
    [Metrics.enabled]) exactly like {!Counter.incr_unchecked}.

    {!merge} is pointwise addition plus min/max/sum combination; it
    commutes and associates, so folding worker histograms into the
    coordinator in {e any} fixed order yields identical aggregates —
    the property that keeps [-j N] runs bit-identical to [-j 1]
    (mirrors {!Counter.export} / {!Counter.absorb}). *)

type t

type snapshot = {
  s_count : int;
  s_sum : int;
  s_min : int;  (** [max_int] while empty *)
  s_max : int;
  s_buckets : (int * int) list;
      (** (bucket index, count), ascending, non-zero entries only *)
}

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Add one observation (clamped to 0 if negative). *)

(** {1 Reading} *)

val count : t -> int
val sum : t -> int

val min_ : t -> int
(** 0 when empty. *)

val max_ : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile h p] for [p] in [0..100]: nearest-rank quantile as the
    matching bucket's upper bound, clamped to the observed min/max (so
    [percentile h 100.0 = max_ h] exactly).  0 when empty. *)

val buckets : t -> (int * int) list
(** (inclusive upper bound, count) per non-empty bucket, ascending —
    the OpenMetrics [le] series before cumulation. *)

(** {1 Cross-domain aggregation} *)

val merge : into:t -> t -> unit
(** Pointwise add [src] into [into]; order-independent. *)

val snapshot : t -> snapshot
val of_snapshot : snapshot -> t

(**/**)

val index_of : int -> int
(** Bucket index of a value (exposed for the property tests). *)

val upper_of : int -> int
(** Inclusive upper bound of a bucket index (exposed for tests). *)
