(** Typed metric registry with Prometheus/OpenMetrics text exposition.

    The campaign telemetry layer: named families of counters, gauges
    and {!Histogram}s, each fanned out over label sets, rendered as the
    text exposition format any Prometheus-compatible scraper (and
    [tpsim top]) understands.

    Unlike the {!Counter} registry this one is process-global and
    mutex-guarded: metric events are low-rate (per trial, per store
    commit, per pool join), so worker domains simply take the lock.

    Zero-perturbation contract: every recording call is gated on
    {!enabled} (default off; one atomic load when off), recorded values
    are never read back by the model, and the metrics-on/off digest
    bit-identity is enforced by [test_serve].  The daemon ([tpsim
    serve]) flips {!set_enabled} on at boot; plain CLI runs leave it
    off. *)

type family

val set_enabled : bool -> unit
val enabled : unit -> bool

(** {1 Declaring}

    Declaration is idempotent by name (the existing family is
    returned); redeclaring a name with a different kind is a
    programming error ([Invalid_argument]).  Counter family names
    should end in [_total] per the OpenMetrics convention. *)

val counter : ?help:string -> string -> family
val gauge : ?help:string -> string -> family
val histogram : ?help:string -> string -> family

(** {1 Recording} — no-ops unless {!enabled}. *)

val inc : ?labels:(string * string) list -> ?by:int -> family -> unit
val set : ?labels:(string * string) list -> family -> float -> unit
val observe : ?labels:(string * string) list -> family -> int -> unit

(** {1 Reading back} — for tests and the drift monitor. *)

val value : ?labels:(string * string) list -> family -> float option
(** Current counter/gauge value of one series, if it exists. *)

val histogram_of : ?labels:(string * string) list -> family -> Histogram.t option

val reset : unit -> unit
(** Drop every series (families stay declared) — test isolation. *)

(** {1 Exposition} *)

val render : unit -> string
(** The whole registry in the text exposition format: [# HELP] /
    [# TYPE] per family (sorted by name), one sample line per series
    (sorted by label set), histograms as cumulative [_bucket{le=...}]
    series plus [_sum] / [_count], terminated by [# EOF]. *)
