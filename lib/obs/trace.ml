type arg = Int of int | Str of string | Bool of bool

type kind = Span | Instant

type event = {
  ts : int;
  dur : int;
  core : int;
  cat : string;
  name : string;
  args : (string * arg) list;
  kind : kind;
}

let default_capacity = 262_144

type ring = {
  buf : event option array;
  mutable head : int; (* next write position *)
  mutable count : int;
  mutable n_dropped : int;
  mutable last_ts : int;
}

(* The ring is domain-local: the [Ctl.trace] flag is shared (workers
   observe the value published at spawn), but each domain buffers into
   its own ring, so worker domains never race the main ring.  Worker
   events reach the main ring via {!with_capture}/{!replay} at join. *)
let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ring () = Domain.DLS.get ring_key

let fresh_ring capacity =
  { buf = Array.make capacity None; head = 0; count = 0; n_dropped = 0;
    last_ts = 0 }

let start ?(capacity = default_capacity) () =
  assert (capacity > 0);
  ring () := Some (fresh_ring capacity);
  Ctl.set_trace true

let stop () = Ctl.set_trace false

let clear () =
  match !(ring ()) with
  | None -> ()
  | Some r ->
      Array.fill r.buf 0 (Array.length r.buf) None;
      r.head <- 0;
      r.count <- 0;
      r.n_dropped <- 0;
      r.last_ts <- 0

let enabled () = Ctl.trace_on ()

let push ev =
  match !(ring ()) with
  | None -> ()
  | Some r ->
      let cap = Array.length r.buf in
      if r.count = cap then r.n_dropped <- r.n_dropped + 1
      else r.count <- r.count + 1;
      r.buf.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod cap;
      r.last_ts <- Stdlib.max r.last_ts (ev.ts + ev.dur)

let span ~core ~cat ~name ~ts ~dur ?(args = []) () =
  if enabled () then push { ts; dur; core; cat; name; args; kind = Span }

let instant ?ts ~core ~cat ~name ?(args = []) () =
  if enabled () then begin
    let ts =
      match ts with
      | Some t -> t
      | None -> ( match !(ring ()) with None -> 0 | Some r -> r.last_ts)
    in
    push { ts; dur = 0; core; cat; name; args; kind = Instant }
  end

let events () =
  match !(ring ()) with
  | None -> []
  | Some r ->
      let cap = Array.length r.buf in
      let first = (r.head - r.count + cap * 2) mod cap in
      List.init r.count (fun i ->
          match r.buf.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false)

let recorded () = match !(ring ()) with None -> 0 | Some r -> r.count
let dropped () = match !(ring ()) with None -> 0 | Some r -> r.n_dropped

(* Per-task capture, the deterministic-merge half of the domain-local
   design: a pool task records into a private ring (same capacity
   semantics, last_ts starting at 0 regardless of jobs level), and the
   pool replays the captured events into the spawning domain's ring in
   trial order — so a traced [-j N] run buffers the same events as
   [-j 1]. *)
let with_capture ?(capacity = default_capacity) f =
  if not (enabled ()) then (f (), [])
  else begin
    let cell = ring () in
    let saved = !cell in
    cell := Some (fresh_ring capacity);
    Fun.protect
      ~finally:(fun () -> cell := saved)
      (fun () ->
        let v = f () in
        (v, events ()))
  end

let replay evs = List.iter push evs

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: the toolchain has no JSON library and
   the trace-event schema is flat). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_json = function
  | Int i -> string_of_int i
  | Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Bool b -> if b then "true" else "false"

let args_json args =
  String.concat ","
    (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (arg_json v)) args)

let event_json e =
  let common =
    Printf.sprintf "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%d"
      (escape e.name) (escape e.cat) e.core e.ts
  in
  let phase =
    match e.kind with
    | Span -> Printf.sprintf ",\"ph\":\"X\",\"dur\":%d" e.dur
    | Instant -> ",\"ph\":\"i\",\"s\":\"t\""
  in
  let args =
    if e.args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_json e.args)
  in
  "{" ^ common ^ phase ^ args ^ "}"

let export_chrome oc =
  output_string oc "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let evs = events () in
  (* Name the rows: tid = simulated core. *)
  let cores = List.sort_uniq compare (List.map (fun e -> e.core) evs) in
  let meta =
    List.map
      (fun c ->
        Printf.sprintf
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
           \"args\":{\"name\":\"core %d\"}}"
          c c)
      cores
  in
  let lines = meta @ List.map event_json evs in
  List.iteri
    (fun i l ->
      if i > 0 then output_string oc ",\n";
      output_string oc l)
    lines;
  output_string oc "\n]}\n"

let export_chrome_file path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> export_chrome oc)

let export_metrics_jsonl oc =
  List.iter
    (fun set ->
      let fields =
        List.map
          (fun (n, v) -> Printf.sprintf "\"%s\":%d" (escape n) v)
          (Counter.snapshot set)
      in
      Printf.fprintf oc "{\"set\":\"%s\",\"counters\":{%s}}\n"
        (escape (Counter.set_name set))
        (String.concat "," fields))
    (Counter.registered ())

let export_metrics_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> export_metrics_jsonl oc)
