type grid = { lo : float; hi : float; points : int }

let grid_step g =
  assert (g.points > 1);
  (g.hi -. g.lo) /. float_of_int (g.points - 1)

let grid_position g i = g.lo +. (float_of_int i *. grid_step g)

let silverman_bandwidth samples =
  let n = Array.length samples in
  assert (n > 0);
  if n = 1 then 0.0
  else begin
    let sd = Tp_util.Stats.std samples in
    let iqr =
      Tp_util.Stats.percentile samples 75.0 -. Tp_util.Stats.percentile samples 25.0
    in
    let spread =
      if iqr > 0.0 then Stdlib.min sd (iqr /. 1.34)
      else sd (* discrete-ish data: fall back to sd alone *)
    in
    0.9 *. spread *. (float_of_int n ** -0.2)
  end

let estimate g ?bandwidth samples =
  assert (Array.length samples > 0);
  assert (g.points > 1);
  let step = grid_step g in
  let h =
    match bandwidth with
    | Some h -> Stdlib.max h step
    | None -> Stdlib.max (silverman_bandwidth samples) step
  in
  (* Bin the samples onto the grid (nearest grid position, clamped).
     Round half-up via floor(q + 0.5): Float.round rounds halves away
     from zero, so a sample below [lo] landing on a -0.5 boundary would
     truncate differently from one above it — floor keeps the
     nearest-index rule uniform over the whole (pre-clamp) axis. *)
  let counts = Array.make g.points 0 in
  Array.iter
    (fun x ->
      let q = (x -. g.lo) /. step in
      let i = int_of_float (Float.floor (q +. 0.5)) in
      let i = if i < 0 then 0 else if i >= g.points then g.points - 1 else i in
      counts.(i) <- counts.(i) + 1)
    samples;
  (* Precompute the kernel over the window where it is non-negligible. *)
  let half_window = int_of_float (Float.ceil (4.0 *. h /. step)) in
  let norm = 1.0 /. (h *. sqrt (2.0 *. Float.pi)) in
  let kernel =
    Array.init
      ((2 * half_window) + 1)
      (fun k ->
        let d = float_of_int (k - half_window) *. step /. h in
        norm *. exp (-0.5 *. d *. d))
  in
  let n = float_of_int (Array.length samples) in
  let density = Array.make g.points 0.0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let w = float_of_int c /. n in
        let lo = Stdlib.max 0 (i - half_window) in
        let hi = Stdlib.min (g.points - 1) (i + half_window) in
        for j = lo to hi do
          density.(j) <- density.(j) +. (w *. kernel.(j - i + half_window))
        done
      end)
    counts;
  density
