(** Priority scheduler state (pure data structure).

    seL4's scheduler: an array of per-priority FIFO ready queues plus a
    bitmap for constant-time highest-priority lookup, kept per core.
    This module is purely functional bookkeeping — the {e memory
    behaviour} of the scheduler (its queue heads and bitmap live in the
    residual shared data region and are touched on every scheduling
    event) is performed by the callers via {!System.touch_shared},
    keeping data structure and timing model separate. *)

val n_priorities : int
(** 256, as in seL4. *)

type t

val create : cores:int -> t

val counters : unit -> Tp_obs.Counter.set
(** Scheduler-event performance counters (["kernel.sched"]: enqueues,
    dequeues, removes).  Observability only. *)

val enqueue : t -> core:int -> Types.tcb -> unit
(** Append to the tail of the thread's priority queue.  The thread
    must not already be queued. *)

val dequeue_highest : t -> core:int -> Types.tcb option
(** Remove and return the head of the highest non-empty priority
    queue. *)

val dequeue_domain : t -> core:int -> domain:int -> Types.tcb option
(** Remove and return the highest-priority ready thread belonging to
    the given security domain (gang scheduling support). *)

val domains_present : t -> core:int -> int list
(** Distinct domain tags of queued threads, ascending. *)

val peek_highest : t -> core:int -> Types.tcb option

val remove : t -> core:int -> Types.tcb -> unit
(** Remove the thread wherever it is queued (no-op if absent). *)

val is_queued : t -> core:int -> Types.tcb -> bool

val queued_count : t -> core:int -> int
