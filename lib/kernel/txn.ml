(* Transactional rollback for multi-step kernel operations.

   A kernel operation that claims resources in several steps (ASIDs,
   frames, CDT edges, registry entries) registers an undo action right
   after each claim.  If the operation later raises — a real error or
   an injected fault — the undo actions run in reverse claim order and
   the exception propagates; on success they are dropped.  This is
   what makes operations like Kernel_Clone all-or-nothing, which the
   invariant suite (and the seL4 line of proofs this models) demands. *)

type t = { mutable undo : (unit -> unit) list }

let defer t f = t.undo <- f :: t.undo

let rollback t =
  let us = t.undo in
  t.undo <- [];
  (* Undo actions must not themselves abort the rollback; a failing
     undo would leave the remaining claims leaked. *)
  List.iter (fun u -> try u () with _ -> ()) us

let run f =
  let t = { undo = [] } in
  match f t with
  | v ->
      t.undo <- [];
      v
  | exception e ->
      rollback t;
      raise e
