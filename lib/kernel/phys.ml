type t = {
  n_frames : int;
  n_colours : int;
  free : bool array;
  mutable n_free : int;
  mutable boot_reserved : bool;
  (* Next-candidate hint per colour keeps allocation O(1) amortised. *)
  hint : int array;
}

let create p =
  let n_frames = p.Tp_hw.Platform.mem_bytes / Tp_hw.Defs.page_size in
  let n_colours = Colour.n_colours p in
  {
    n_frames;
    n_colours;
    free = Array.make n_frames true;
    n_free = n_frames;
    boot_reserved = false;
    hint = Array.make n_colours 0;
  }

let n_frames t = t.n_frames
let n_colours t = t.n_colours
let colour_of t f = Colour.colour_of_frame ~n_colours:t.n_colours f

let reserve_boot t ~frames =
  assert (not t.boot_reserved);
  assert (frames <= t.n_frames);
  for f = 0 to frames - 1 do
    assert t.free.(f);
    t.free.(f) <- false
  done;
  t.n_free <- t.n_free - frames;
  t.boot_reserved <- true;
  0

let () =
  List.iter Tp_fault.Fault.register [ "phys.alloc"; "phys.alloc_many"; "phys.free" ]

let alloc t ?(colours = -1) () =
  Tp_fault.Fault.hit "phys.alloc";
  (* colours = -1 means "any colour" (all bits set). *)
  let want c = colours land (1 lsl c) <> 0 in
  let rec scan f =
    if f >= t.n_frames then None
    else if t.free.(f) && want (colour_of t f) then begin
      t.free.(f) <- false;
      t.n_free <- t.n_free - 1;
      Some f
    end
    else scan (f + 1)
  in
  (* Start from the lowest colour hint among wanted colours. *)
  let start =
    let best = ref t.n_frames in
    for c = 0 to t.n_colours - 1 do
      if want c && t.hint.(c) < !best then best := t.hint.(c)
    done;
    if !best = t.n_frames then 0 else !best
  in
  match scan start with
  | Some f ->
      let c = colour_of t f in
      t.hint.(c) <- f + 1;
      Some f
  | None -> (
      match scan 0 with
      | Some f ->
          let c = colour_of t f in
          t.hint.(c) <- f + 1;
          Some f
      | None -> None)

let alloc_many t ?(colours = -1) n =
  Tp_fault.Fault.hit "phys.alloc_many";
  let rec go acc k =
    if k = 0 then Some (List.rev acc)
    else begin
      match alloc t ~colours () with
      | Some f -> go (f :: acc) (k - 1)
      | None ->
          List.iter
            (fun f ->
              t.free.(f) <- true;
              t.n_free <- t.n_free + 1)
            acc;
          None
    end
  in
  go [] n

let free t f =
  Tp_fault.Fault.hit "phys.free";
  assert (f >= 0 && f < t.n_frames);
  assert (not t.free.(f));
  t.free.(f) <- true;
  t.n_free <- t.n_free + 1;
  let c = colour_of t f in
  if f < t.hint.(c) then t.hint.(c) <- f

let free_frames t = t.n_free

let free_frames_of_colour t c =
  let count = ref 0 in
  for f = 0 to t.n_frames - 1 do
    if t.free.(f) && colour_of t f = c then incr count
  done;
  !count

let frame_addr f = f * Tp_hw.Defs.page_size
