let src = Logs.Src.create "tp.kernel" ~doc:"Time-protection kernel events"

module Log = (val Logs.src_log src : Logs.LOG)

let kid ki =
  Printf.sprintf "#%d%s" ki.Types.ki_id
    (if ki.Types.ki_is_initial then "(initial)" else "")

let clone ki ~cost_cycles =
  Log.info (fun m ->
      m "kernel_clone -> image %s (asid %d, %d cycles)" (kid ki)
        ki.Types.ki_asid cost_cycles)

let destroy ki = Log.info (fun m -> m "kernel_destroy %s" (kid ki))

let set_int ki ~irq = Log.info (fun m -> m "kernel_set_int %s irq=%d" (kid ki) irq)

let switch ~core ~from_kernel ~to_kernel ~total =
  Log.debug (fun m ->
      m "core %d: switch %s -> %s (%d cycles)" core (kid from_kernel)
        (kid to_kernel) total)

(* Fault-injection events: every armed, injected and recovered fault
   is a kernel-log event so injected runs are auditable. *)

(* When tracing is on, the same events also land in the trace ring as
   instants, so harness chunk boundaries and injected faults are
   visible on the Perfetto timeline alongside the switch spans. *)
let trace_instant ?ts ~name args =
  if Tp_obs.Trace.enabled () then
    Tp_obs.Trace.instant ?ts ~core:0 ~cat:"klog" ~name ~args ()

let fault_injected ~point ~hit =
  Log.info (fun m -> m "fault_injected point=%s hit=%d" point hit);
  trace_instant ~name:"fault_injected"
    [ ("point", Tp_obs.Trace.Str point); ("hit", Tp_obs.Trace.Int hit) ]

let fault_armed ~point ~hit =
  Log.debug (fun m -> m "fault_armed point=%s hit=%d" point hit)

let fault_recovered ~where ~exn_ =
  Log.info (fun m ->
      m "fault_recovered %s: %s" where (Printexc.to_string exn_));
  trace_instant ~name:"fault_recovered"
    [
      ("where", Tp_obs.Trace.Str where);
      ("exn", Tp_obs.Trace.Str (Printexc.to_string exn_));
    ]

let harness_checkpoint ?now ~chunk ~collected () =
  Log.debug (fun m -> m "harness_checkpoint chunk=%d collected=%d" chunk collected);
  trace_instant ?ts:now ~name:"harness_checkpoint"
    [ ("chunk", Tp_obs.Trace.Int chunk); ("collected", Tp_obs.Trace.Int collected) ]

let harness_degraded ?now ~reason ~collected () =
  Log.info (fun m -> m "harness_degraded (%s) collected=%d" reason collected);
  trace_instant ?ts:now ~name:"harness_degraded"
    [
      ("reason", Tp_obs.Trace.Str reason);
      ("collected", Tp_obs.Trace.Int collected);
    ]

let init_fault_logging () =
  Tp_fault.Fault.set_observer
    (Some
       (function
       | Tp_fault.Fault.Ev_armed { point; hit } -> fault_armed ~point ~hit
       | Tp_fault.Fault.Ev_injected { point; hit } -> fault_injected ~point ~hit
       | Tp_fault.Fault.Ev_disarmed { point; fired } ->
           Log.debug (fun m -> m "fault_disarmed point=%s fired=%b" point fired)))
