type percore = {
  mutable cur_kernel : Types.kimage;
  mutable cur_thread : Types.tcb option;
  mutable slice_end : int;
  mutable last_tick_start : int;
}

type t = {
  machine : Tp_hw.Machine.t;
  platform : Tp_hw.Platform.t;
  cfg : Config.t;
  phys : Phys.t;
  sched : Sched.t;
  irq : Irq.t;
  shared_paddr : int;
  shared_vaddr : int;
  initial_kernel : Types.kimage;
  mutable kernels : Types.kimage list;
  mutable tcbs : Types.tcb list;
  mutable asid_free : int list;
  cores : percore array;
  mutable shared_audit :
    (Layout.shared_region -> off:int -> len:int -> kind:Tp_hw.Defs.access_kind -> unit)
    option;
  mutable cat_masks : int array option;
}

let max_asids = 256

let mk_idle_tcb ki core =
  {
    Types.t_id = Types.fresh_id ();
    t_prio = 0;
    t_state = Types.Ts_ready;
    t_vspace = None;
    t_kernel = Some ki;
    t_core = core;
      t_sc = None;
    t_domain = -1;
    t_frames = [];
    t_is_idle = true;
  }

let create platform cfg =
  let machine = Tp_hw.Machine.create platform in
  let phys = Phys.create platform in
  let img_frames = Layout.image_frames platform in
  let boot_frames = img_frames + Layout.shared_frames in
  let base = Phys.reserve_boot phys ~frames:boot_frames in
  let shared_paddr = Phys.frame_addr (base + img_frames) in
  (* The kernel window maps the image at the canonical base and the
     shared block well past the image area. *)
  let shared_vaddr = Layout.shared_vaddr in
  let initial_kernel =
    {
      Types.ki_id = Types.fresh_id ();
      ki_state = Types.Ki_active;
      ki_asid = 0;
      ki_is_initial = true;
      ki_frames = Array.init img_frames (fun i -> base + i);
      ki_idle = None;
      ki_running_on = Array.make platform.Tp_hw.Platform.cores false;
      ki_irqs = [];
      ki_pad_cycles = cfg.Config.pad_cycles;
    }
  in
  initial_kernel.Types.ki_idle <- Some (mk_idle_tcb initial_kernel 0);
  if cfg.Config.disable_prefetcher then
    for c = 0 to platform.Tp_hw.Platform.cores - 1 do
      Tp_hw.Machine.set_prefetcher_enabled machine ~core:c false
    done;
  {
    machine;
    platform;
    cfg;
    phys;
    sched = Sched.create ~cores:platform.Tp_hw.Platform.cores;
    irq = Irq.create ~cores:platform.Tp_hw.Platform.cores;
    shared_paddr;
    shared_vaddr;
    initial_kernel;
    kernels = [ initial_kernel ];
    tcbs = [];
    asid_free = List.init (max_asids - 1) (fun i -> i + 1);
    shared_audit = None;
    cat_masks = None;
    cores =
      Array.init platform.Tp_hw.Platform.cores (fun c ->
          {
            cur_kernel = initial_kernel;
            cur_thread = None;
            slice_end = 0;
            last_tick_start = Tp_hw.Machine.cycles machine ~core:c;
          });
  }

let machine t = t.machine
let platform t = t.platform
let cfg t = t.cfg
let phys t = t.phys
let sched t = t.sched
let irq t = t.irq
let initial_kernel t = t.initial_kernel
let kernels t = t.kernels
let register_kernel t ki = t.kernels <- ki :: t.kernels

let unregister_kernel t ki =
  t.kernels <- List.filter (fun k -> k.Types.ki_id <> ki.Types.ki_id) t.kernels

let per_core t c = t.cores.(c)
let n_colours t = Phys.n_colours t.phys

let () = List.iter Tp_fault.Fault.register [ "asid.alloc"; "asid.free" ]

let alloc_asid t =
  Tp_fault.Fault.hit "asid.alloc";
  match t.asid_free with
  | [] -> raise (Types.Kernel_error Types.Out_of_asids)
  | a :: rest ->
      t.asid_free <- rest;
      a

let free_asid t a =
  Tp_fault.Fault.hit "asid.free";
  (* ASID 0 belongs to the initial kernel and is never allocatable;
     re-freeing a free ASID would corrupt the free list (the same ASID
     handed out twice aliases two protection domains). *)
  if a <= 0 || a >= max_asids || List.mem a t.asid_free then
    raise (Types.Kernel_error Types.Double_free);
  t.asid_free <- a :: t.asid_free

let free_asid_count t = List.length t.asid_free
let asid_is_free t a = List.mem a t.asid_free

let register_tcb t tcb = t.tcbs <- tcb :: t.tcbs
let all_tcbs t = t.tcbs

let now t ~core = Tp_hw.Machine.cycles t.machine ~core

let kernel_mappings_global t = not t.cfg.Config.clone_kernel

let current_asid t ~core =
  match t.cores.(core).cur_thread with
  | Some { Types.t_vspace = Some vs; _ } -> vs.Types.vs_asid
  | Some _ | None -> t.cores.(core).cur_kernel.Types.ki_asid

type image_region = Text | Stack | Data | Flushbuf

let region_off t region =
  let lay = Layout.image_layout t.platform in
  match region with
  | Text -> lay.Layout.text_off
  | Stack -> lay.Layout.stack_off
  | Data -> lay.Layout.data_off
  | Flushbuf -> lay.Layout.flushbuf_off

(* Physical address of a byte offset into an image: image frames may be
   non-contiguous (coloured pools), so resolve through the frame list. *)
let image_pa ki ~off =
  let page = Tp_hw.Defs.page_size in
  Phys.frame_addr ki.Types.ki_frames.(off / page) + (off mod page)

let image_region_base t ki region =
  let roff = region_off t region in
  (Layout.kernel_base_vaddr + roff, image_pa ki ~off:roff)

let touch_lines t ~core ~kind lines =
  let asid = current_asid t ~core in
  let global = kernel_mappings_global t in
  List.fold_left
    (fun acc (vaddr, paddr) ->
      acc + Tp_hw.Machine.access t.machine ~core ~asid ~global ~vaddr ~paddr ~kind ())
    0 lines

let touch_image t ~core ki ~region ~off ~len ~kind =
  let roff = region_off t region in
  let line = t.platform.Tp_hw.Platform.line in
  let first = (roff + off) / line * line in
  let last = (roff + off + len - 1) / line * line in
  let rec go o acc =
    if o > last then acc
    else begin
      let lat =
        touch_lines t ~core ~kind
          [ (Layout.kernel_base_vaddr + o, image_pa ki ~off:o) ]
      in
      go (o + line) (acc + lat)
    end
  in
  go first 0

let set_shared_audit t hook = t.shared_audit <- hook

let shared_audit t = t.shared_audit

let set_cat_masks t masks = t.cat_masks <- masks

let cat_masks t = t.cat_masks

let cat_mask_of_domain t dom =
  match t.cat_masks with
  | Some a when dom >= 0 && dom < Array.length a -> a.(dom)
  | Some _ | None -> max_int

let touch_shared t ~core region ?(off = 0) ?len ~kind () =
  let len =
    match len with Some l -> l | None -> Layout.shared_region_size region
  in
  (match t.shared_audit with
  | Some hook -> hook region ~off ~len ~kind
  | None -> ());
  let roff = Layout.shared_region_off region in
  let lines =
    Layout.lines ~line:t.platform.Tp_hw.Platform.line ~base_vaddr:t.shared_vaddr
      ~base_paddr:t.shared_paddr ~off:(roff + off) ~len
  in
  touch_lines t ~core ~kind lines

let shared_base t = (t.shared_vaddr, t.shared_paddr)

let translate vs vaddr =
  let vpn = Tp_hw.Defs.page_of vaddr in
  match Hashtbl.find_opt vs.Types.vs_pages vpn with
  | Some frame -> Phys.frame_addr frame + Tp_hw.Defs.page_offset vaddr
  | None -> raise (Types.Kernel_error Types.Invalid_capability)

let pt_index vpn = vpn lsr 9 (* 512 8-byte entries per 4 KiB table *)

let map_page _t vs ~pt_alloc ~vpn ~frame =
  assert (not (Hashtbl.mem vs.Types.vs_pages vpn));
  let pti = pt_index vpn in
  if not (Hashtbl.mem vs.Types.vs_leaf_pts pti) then begin
    match pt_alloc with
    | Some alloc -> Hashtbl.replace vs.Types.vs_leaf_pts pti (alloc ())
    | None -> raise (Types.Kernel_error Types.Invalid_address)
  end;
  Hashtbl.replace vs.Types.vs_pages vpn frame

(* The memory traffic of a hardware page-table walk: one read in the
   root table, one in the leaf table.  PT lines are read through the
   kernel's physical window (they are data to the walker). *)
let walk_cost t ~core vs vpn =
  let line = t.platform.Tp_hw.Platform.line in
  let read_pt_entry frame idx =
    let pa = Phys.frame_addr frame + (idx * 8 / line * line) in
    Tp_hw.Machine.access t.machine ~core ~asid:0 ~global:true ~vaddr:pa ~paddr:pa
      ~kind:Tp_hw.Defs.Read ()
  in
  let pti = pt_index vpn in
  let root_lat = read_pt_entry vs.Types.vs_root_pt (pti land 511) in
  match Hashtbl.find_opt vs.Types.vs_leaf_pts pti with
  | Some leaf -> root_lat + read_pt_entry leaf (vpn land 511)
  | None -> root_lat

(* Pure mirror of [walk_cost]: the physical addresses of the PT lines
   a walk of [vpn] would read, without performing the reads.  The
   replay recorder stores these so a replayed access's TLB-miss walk
   touches the same lines the live walk did. *)
let walk_lines t vs vpn =
  let line = t.platform.Tp_hw.Platform.line in
  let entry_line frame idx = Phys.frame_addr frame + (idx * 8 / line * line) in
  let pti = pt_index vpn in
  let root = entry_line vs.Types.vs_root_pt (pti land 511) in
  let leaf =
    match Hashtbl.find_opt vs.Types.vs_leaf_pts pti with
    | Some l -> entry_line l (vpn land 511)
    | None -> -1
  in
  (root, leaf)

let user_access t ~core tcb ~vaddr ~kind =
  match tcb.Types.t_vspace with
  | None -> raise (Types.Kernel_error Types.Invalid_capability)
  | Some vs ->
      let paddr = translate vs vaddr in
      let llc_ways = cat_mask_of_domain t tcb.Types.t_domain in
      let walk () = walk_cost t ~core vs (Tp_hw.Defs.page_of vaddr) in
      Tp_hw.Machine.access t.machine ~core ~asid:vs.Types.vs_asid ~global:false
        ~llc_ways ~walk ~vaddr ~paddr ~kind ()
