(** All-or-nothing kernel operations.

    [run f] passes [f] a transaction; after each resource claim, [f]
    calls {!defer} with the matching release.  If [f] raises, the
    deferred releases run in reverse order and the exception
    propagates; if [f] returns, they are discarded.  Used by
    [Clone.clone] and the [Retype] constructors so that failed
    operations (including injected faults) leave no residual state. *)

type t

val defer : t -> (unit -> unit) -> unit
(** Register an undo action for the claim just performed. *)

val run : (t -> 'a) -> 'a
(** Run an operation transactionally.  Exceptions from undo actions
    themselves are swallowed so the rollback always completes. *)
