(** Dynamic checking of the kernel's global invariants.

    The invariants the seL4 proofs establish statically — frame
    conservation, image disjointness, colour-pool purity, no dangling
    IRQ associations, ASID uniqueness, scheduler sanity — checked over
    a live {!Boot.booted} system.  Used after every step of the
    property tests and after every injected fault in the
    fail-at-step-N driver ([Tp_fault_driver.Driver]). *)

val user_frames : Boot.booted -> int
(** Frames accounted for by the root Untyped's capability forest;
    capture after boot and pass as [expect_user_frames] to detect
    leaks and double-frees. *)

val check : ?expect_user_frames:int -> Boot.booted -> string list
(** All invariant violations, human-readable; [[]] means the system is
    consistent. *)

val check_exn : ?expect_user_frames:int -> Boot.booted -> unit
(** @raise Failure listing the violations, if any. *)
