(** User-mode execution context.

    A workload body receives a [Uctx.t] and performs all its work
    through it: memory accesses, branches, syscalls, and cycle-counter
    reads (the attacker's clock).  After every operation the context

    - delivers any unmasked device interrupt whose timer has fired
      (charging the kernel's IRQ-handling path to this core — the
      observable "jump" of the Figure 6 receiver), and
    - raises {!Preempted} once the time slice is exhausted,

    so preemption is involuntary from the body's point of view: any
    operation can be its last.  Bodies therefore keep their persistent
    state in captured refs. *)

exception Preempted

type t

val make : System.t -> core:int -> Types.tcb -> slice_end:int -> t
(** Used by {!Exec}; bodies never construct contexts. *)

val sys : t -> System.t
val core : t -> int
val tcb : t -> Types.tcb

val now : t -> int
(** Read the cycle counter (rdtsc / CCNT). *)

val read : t -> int -> unit
(** Load from a virtual address. *)

val write : t -> int -> unit
(** Store to a virtual address. *)

val fetch : t -> int -> unit
(** Execute straight-line code at a virtual address (I-side access). *)

val jump : t -> src:int -> target:int -> unit
(** Taken jump from [src] to [target] (I-fetch + BTB). *)

val cond_branch : t -> addr:int -> taken:bool -> unit
(** Conditional branch (I-fetch + direction predictor). *)

val clflush : t -> int -> unit
(** Flush one cache line by virtual address (x86 [clflush] / Arm v8
    [DC CIVAC] — user-mode instructions, the enabler of Flush+Reload
    and DRAMA-style attacks). *)

val compute : t -> int -> unit
(** Spin for [n] cycles of pure computation (no memory traffic). *)

val syscall : t -> Syscalls.call -> unit

val remaining : t -> int
(** Cycles left in the current slice (never negative). *)

val idle_rest : t -> unit
(** Sleep until the end of the slice, still accepting interrupts at
    their fire times; always raises {!Preempted} at the slice end. *)

(** {1 Record / replay}

    The record-once / replay-many machinery of the sweep hot path.
    With a recorder attached, every operation the body performs
    through this context is also appended to the stream — by identity
    (addresses, directions, cycle counts), not by outcome — so the
    stream replayed against a machine in the same pre-slice state
    reproduces the slice bit-identically.  Context operations whose
    influence on the body's op sequence the stream cannot capture
    ({!now}, {!remaining}, {!syscall}, {!sys}, {!tcb}) poison the
    recording, permanently disqualifying the stream; such bodies
    simply always run live. *)

val set_recorder : t -> Tp_hw.Replay.t option -> unit
(** Attach (or detach) a recording stream.  Used by the attack
    harness at slice start; bodies never call it. *)

val replay : t -> Tp_hw.Replay.t -> bool
(** Execute this slice by replaying [r] instead of running the body.
    Returns [false] — caller must run the body live — if the stream is
    not {!Tp_hw.Replay.complete}, the thread has no vspace, or a timer
    is due within the slice (replay performs no mid-slice interrupt
    delivery).  Otherwise replays to the slice boundary and raises
    {!Preempted} exactly as live execution would; it never returns
    [true] normally. *)
