(** Mechanised audit of the residual shared kernel data (§4.1).

    The paper's audit: "we determine for all such data the
    circumstances (interrupt handling, context switch) under which the
    kernel will access it.  We then establish that none of the cache
    lines involved contain or are accessed through private user
    information."  This module captures shared-data access traces for
    arbitrary operations and provides the determinism comparison: if
    the trace of a domain switch is identical whatever the outgoing
    domain did, the shared data cannot carry a channel across it
    (given the Requirement-3 prefetch normalises residency). *)

type event = {
  region : Layout.shared_region;
  off : int;
  len : int;
  kind : Tp_hw.Defs.access_kind;
}

type trace = event list

val capture : System.t -> (unit -> unit) -> trace
(** Record every shared-data access performed while the thunk runs.
    Any previously installed audit hook ({!System.set_shared_audit})
    is restored afterwards, also when the thunk raises.
    @raise Invalid_argument on a nested capture on the same system
    (nesting is not supported). *)

val equal_traces : trace -> trace -> bool

val lines_touched : Tp_hw.Platform.t -> trace -> int
(** Number of distinct shared-region cache lines the trace covers. *)

val pp_trace : Format.formatter -> trace -> unit

val region_name : Layout.shared_region -> string
