(* The global invariant suite, checkable at any point of a system's
   life — after every random operation in the property tests and after
   every injected fault in the fail-at-step-N driver.

   These are the invariants the seL4 proofs establish statically
   (frame conservation, object disjointness, IRQ/scheduler sanity);
   here they are checked dynamically and any violation is reported as
   a human-readable string instead of an assertion failure, so tooling
   (tpsim faults) can tabulate them. *)

let sprintf = Printf.sprintf

(* Walk the CDT from a capability, summing the frames owned by live
   objects. *)
let rec frames_of_cap_tree cap =
  if not (Capability.is_valid cap) then 0
  else begin
    let own =
      if Objects.is_owner cap then List.length (Types.obj_frames cap.Types.target)
      else 0
    in
    List.fold_left
      (fun acc child -> acc + frames_of_cap_tree child)
      own cap.Types.children
  end

let user_frames (b : Boot.booted) = frames_of_cap_tree b.Boot.root

let check ?expect_user_frames (b : Boot.booted) =
  let sys = b.Boot.sys in
  let bad = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  (* Initial kernel alive with an idle thread (§4.4: an idle thread
     always survives). *)
  let ik = System.initial_kernel sys in
  if ik.Types.ki_state <> Types.Ki_active then fail "initial kernel not active";
  if ik.Types.ki_idle = None then fail "initial kernel lost its idle thread";
  let kernels = System.kernels sys in
  (* The registry holds no destroyed kernels and no half-built images. *)
  List.iter
    (fun ki ->
      if ki.Types.ki_state = Types.Ki_destroyed then
        fail "destroyed kernel #%d still registered" ki.Types.ki_id)
    kernels;
  (* Active kernels have pairwise-disjoint frames. *)
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj ->
          if i < j then begin
            let si = List.sort_uniq compare (Array.to_list ki.Types.ki_frames) in
            let sj = List.sort_uniq compare (Array.to_list kj.Types.ki_frames) in
            if not (List.for_all (fun f -> not (List.mem f sj)) si) then
              fail "kernels #%d and #%d share frames" ki.Types.ki_id
                kj.Types.ki_id
          end)
        kernels)
    kernels;
  (* Live kernels hold allocated, pairwise-distinct ASIDs (a leaked or
     double-freed ASID would alias two protection domains). *)
  List.iteri
    (fun i ki ->
      if ki.Types.ki_state <> Types.Ki_destroyed then begin
        if ki.Types.ki_asid < 0 then
          fail "live kernel #%d has no ASID" ki.Types.ki_id
        else if
          ki.Types.ki_asid > 0 && System.asid_is_free sys ki.Types.ki_asid
        then
          fail "kernel #%d's ASID %d is on the free list" ki.Types.ki_id
            ki.Types.ki_asid;
        List.iteri
          (fun j kj ->
            if
              i < j
              && kj.Types.ki_state <> Types.Ki_destroyed
              && ki.Types.ki_asid = kj.Types.ki_asid
            then
              fail "kernels #%d and #%d share ASID %d" ki.Types.ki_id
                kj.Types.ki_id ki.Types.ki_asid)
          kernels
      end)
    kernels;
  (* Coloured pools hold only their own colours. *)
  Array.iter
    (fun dom ->
      let u = Retype.the_untyped dom.Boot.dom_pool in
      List.iter
        (fun f ->
          if
            not
              (Colour.mem dom.Boot.dom_colours
                 (Colour.colour_of_frame ~n_colours:(System.n_colours sys) f))
          then
            fail "domain %d pool holds foreign-coloured frame %d"
              dom.Boot.dom_id f)
        u.Types.u_free)
    b.Boot.domains;
  (* Non-active kernels hold no IRQs; live IRQ associations point at
     active kernels. *)
  List.iter
    (fun ki ->
      if ki.Types.ki_state <> Types.Ki_active && ki.Types.ki_irqs <> [] then
        fail "non-active kernel #%d still holds IRQs" ki.Types.ki_id)
    kernels;
  for irq = 1 to Irq.n_irqs - 1 do
    match (Irq.handler (System.irq sys) irq).Types.ih_kernel with
    | Some k when k.Types.ki_state <> Types.Ki_active ->
        fail "IRQ %d associated with non-active kernel #%d" irq k.Types.ki_id
    | Some _ | None -> ()
  done;
  (* Scheduler queues contain only ready threads. *)
  List.iter
    (fun tcb ->
      if
        Sched.is_queued (System.sched sys) ~core:tcb.Types.t_core tcb
        && tcb.Types.t_state <> Types.Ts_ready
        && tcb.Types.t_state <> Types.Ts_running
      then fail "scheduler queues non-ready thread #%d" tcb.Types.t_id)
    (System.all_tcbs sys);
  (* Frame conservation: the cap forest accounts for every user frame
     handed out at boot — failed operations must not lose or duplicate
     frames. *)
  (match expect_user_frames with
  | Some expected ->
      let tree = user_frames b in
      if tree <> expected then
        fail "frame conservation broken: %d user frames, expected %d" tree
          expected
  | None -> ());
  List.rev !bad

let check_exn ?expect_user_frames b =
  match check ?expect_user_frames b with
  | [] -> ()
  | violations ->
      failwith
        (sprintf "kernel invariants violated:\n  %s"
           (String.concat "\n  " violations))
