type cost = {
  total : int;
  flush : int;
  pad_wait : int;
  kernel_switched : bool;
}

(* Switch-path performance counters (observability only: the switch
   logic never reads them, see Tp_obs.Ctl).  One instance per domain —
   Tp_par.Pool workers count into their own set (registered in their
   domain-local registry) and the pool sums the sets at join. *)
type stats = {
  st : Tp_obs.Counter.set;
  st_switches : Tp_obs.Counter.t;
  st_kernel_switches : Tp_obs.Counter.t;
  st_protected : Tp_obs.Counter.t;
  st_flush_cycles : Tp_obs.Counter.t;
  st_pad_wait_cycles : Tp_obs.Counter.t;
  st_pad_overruns : Tp_obs.Counter.t;
}

let stats_key : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st = Tp_obs.Counter.make_set "kernel.switch" in
      let stats =
        {
          st;
          st_switches = Tp_obs.Counter.counter st "switches";
          st_kernel_switches = Tp_obs.Counter.counter st "kernel_switches";
          st_protected = Tp_obs.Counter.counter st "protected";
          st_flush_cycles = Tp_obs.Counter.counter st "flush_cycles";
          st_pad_wait_cycles = Tp_obs.Counter.counter st "pad_wait_cycles";
          st_pad_overruns = Tp_obs.Counter.counter st "pad_overruns";
        }
      in
      Tp_obs.Counter.register st;
      stats)

let stats () = Domain.DLS.get stats_key
let counters () = (stats ()).st

(* Fixed switch-step costs, read from the shared lifecycle table in
   Tp_hw.Bounds — the same table the analytic envelope sums, so the
   executed sequence and the certified bound cannot drift. *)
let lock_cost = Tp_hw.Bounds.lock_cost
let timer_reprogram_cost = Tp_hw.Bounds.timer_reprogram_cost
let return_cost = Tp_hw.Bounds.return_cost
let dram_close_cost = Tp_hw.Bounds.dram_close_cost

(* Cycles the switch path always spends outside memory traffic: lock
   acquire + release (steps 1 and 6), timer reprogramming (step 11) and
   the user return (step 12).  Exported for the linter's analytic
   worst-case switch bound. *)
let fixed_overhead_cycles = Tp_hw.Bounds.switch_fixed_overhead

(* x86 "manual" L1 flush (§4.3): the kernel loads one word per line of
   an L1-D-sized buffer, then follows a chain of jumps through an
   L1-I-sized buffer (each chained jump is BTB-mispredicted, which is
   why the paper's manual flush is so much more expensive than a real
   flush instruction would be).  The buffers are per-image, so their
   contents are the same deterministic lines every time. *)
let manual_l1_flush sys ~core ki =
  let p = System.platform sys in
  let line = p.Tp_hw.Platform.line in
  let m = System.machine sys in
  let asid = System.current_asid sys ~core in
  let global = System.kernel_mappings_global sys in
  let lay = Layout.image_layout p in
  let d_size = p.Tp_hw.Platform.l1d.Tp_hw.Cache.size in
  let i_size = p.Tp_hw.Platform.l1i.Tp_hw.Cache.size in
  let start = System.now sys ~core in
  (* D side: one load per line. *)
  for l = 0 to (d_size / line) - 1 do
    let off = lay.Layout.flushbuf_off + (l * line) in
    let pa = System.image_pa ki ~off in
    ignore
      (Tp_hw.Machine.access m ~core ~asid ~global
         ~vaddr:(Layout.kernel_base_vaddr + off) ~paddr:pa ~kind:Tp_hw.Defs.Read ())
  done;
  (* I side: chained jumps, one per line; also scrubs the BTB. *)
  for l = 0 to (i_size / line) - 1 do
    let off = lay.Layout.flushbuf_off + d_size + (l * line) in
    let pa = System.image_pa ki ~off in
    let va = Layout.kernel_base_vaddr + off in
    ignore (Tp_hw.Machine.jump m ~core ~asid ~vaddr:va ~paddr:pa ~target:(va + line))
  done;
  System.now sys ~core - start

let l1_flush_cost sys ~core =
  let p = System.platform sys in
  let m = System.machine sys in
  if p.Tp_hw.Platform.has_l1_flush_instr then Tp_hw.Machine.flush_l1_hw m ~core
  else begin
    (* The manual flush displaces rather than invalidates: after the
       loop the L1 holds exactly the flush buffer — deterministic
       content, which is all the defence needs. *)
    let ki = (System.per_core sys core).System.cur_kernel in
    manual_l1_flush sys ~core ki
  end

let full_flush_cost sys ~core =
  let m = System.machine sys in
  let c1 = Tp_hw.Machine.flush_l1_hw m ~core in
  let c2 = Tp_hw.Machine.flush_l2_private m ~core in
  let c3 = Tp_hw.Machine.flush_llc m ~core in
  let c4 = Tp_hw.Machine.flush_tlbs m ~core in
  let c5 = Tp_hw.Machine.flush_branch_predictor m ~core in
  c1 + c2 + c3 + c4 + c5

let do_flushes sys ~core ki =
  let cfg = System.cfg sys in
  let m = System.machine sys in
  let p = System.platform sys in
  let acc = ref 0 in
  if cfg.Config.flush_llc then begin
    (* wbinvd covers the whole hierarchy in one go. *)
    acc := !acc + Tp_hw.Machine.flush_l1_hw m ~core;
    acc := !acc + Tp_hw.Machine.flush_l2_private m ~core;
    acc := !acc + Tp_hw.Machine.flush_llc m ~core
  end
  else if cfg.Config.flush_l1 then begin
    if p.Tp_hw.Platform.has_l1_flush_instr then
      acc := !acc + Tp_hw.Machine.flush_l1_hw m ~core
    else acc := !acc + manual_l1_flush sys ~core ki;
    if cfg.Config.flush_l2 then acc := !acc + Tp_hw.Machine.flush_l2_private m ~core
  end;
  if cfg.Config.flush_tlb then acc := !acc + Tp_hw.Machine.flush_tlbs m ~core;
  if cfg.Config.flush_bp then
    acc := !acc + Tp_hw.Machine.flush_branch_predictor m ~core;
  if cfg.Config.close_dram_rows then begin
    (* Hypothetical hardware support: precharge all banks so row-buffer
       state cannot cross the switch (no current ISA offers this). *)
    Tp_hw.Dram.close_all (Tp_hw.Machine.dram m);
    acc := !acc + dram_close_cost;
    Tp_hw.Machine.add_cycles m ~core dram_close_cost
  end;
  !acc

let prefetch_shared sys ~core =
  List.iter
    (fun r -> ignore (System.touch_shared sys ~core r ~kind:Tp_hw.Defs.Read ()))
    Layout.all_shared_regions

let switch sys ~core ~to_ =
  let cfg = System.cfg sys in
  let m = System.machine sys in
  let pc = System.per_core sys core in
  let from_kernel = pc.System.cur_kernel in
  let to_kernel =
    match to_.Types.t_kernel with Some k -> k | None -> from_kernel
  in
  let kernel_switched = to_kernel.Types.ki_id <> from_kernel.Types.ki_id in
  let domain_crossed =
    match pc.System.cur_thread with
    | Some cur -> cur.Types.t_domain <> to_.Types.t_domain
    | None -> true
  in
  (* Protection steps run on a kernel switch; with a single shared
     kernel (full-flush scenario) they run on domain crossings. *)
  let protect = kernel_switched || (domain_crossed && not cfg.Config.clone_kernel) in
  let t0 = System.now sys ~core in
  pc.System.last_tick_start <- t0;
  (* 1. acquire the kernel lock *)
  ignore (System.touch_shared sys ~core Layout.Big_lock ~kind:Tp_hw.Defs.Write ());
  Tp_hw.Machine.add_cycles m ~core lock_cost;
  (* 2. process the timer tick normally *)
  ignore
    (System.touch_image sys ~core from_kernel ~region:System.Text
       ~off:Layout.handler_tick.Layout.t_off ~len:Layout.handler_tick.Layout.t_len
       ~kind:Tp_hw.Defs.Fetch);
  ignore (System.touch_shared sys ~core Layout.Cur_irq ~kind:Tp_hw.Defs.Write ());
  ignore
    (System.touch_shared sys ~core Layout.Sched_queues ~off:(to_.Types.t_prio * 16)
       ~len:16 ~kind:Tp_hw.Defs.Read ());
  ignore (System.touch_shared sys ~core Layout.Sched_bitmap ~kind:Tp_hw.Defs.Read ());
  ignore (System.touch_shared sys ~core Layout.Cur_decision ~kind:Tp_hw.Defs.Write ());
  if protect then begin
    (* 3. mask interrupts (and resolve the x86 mask race by acking
       anything that already fired, §4.3). *)
    ignore
      (System.touch_shared sys ~core Layout.Irq_tables ~len:256
         ~kind:Tp_hw.Defs.Write ());
    if cfg.Config.partition_irqs then
      Irq.drop_masked_race (System.irq sys) ~core ~now:(System.now sys ~core)
  end;
  if kernel_switched then begin
    (* 4. switch the kernel stack (copy the live part across). *)
    let p = System.platform sys in
    let lay = Layout.image_layout p in
    let live = min 1024 lay.Layout.stack_size in
    ignore
      (System.touch_image sys ~core from_kernel ~region:System.Stack ~off:0
         ~len:live ~kind:Tp_hw.Defs.Read);
    ignore
      (System.touch_image sys ~core to_kernel ~region:System.Stack ~off:0 ~len:live
         ~kind:Tp_hw.Defs.Write)
  end;
  (* 5. switch thread context (implicitly the kernel image: the
     page-directory pointer changes with the address space). *)
  (match pc.System.cur_thread with
  | Some cur ->
      if not cur.Types.t_is_idle then begin
        cur.Types.t_state <- Types.Ts_ready;
        ignore
          (System.touch_shared sys ~core Layout.Sched_queues
             ~off:(cur.Types.t_prio * 16) ~len:16 ~kind:Tp_hw.Defs.Write ())
      end
  | None -> ());
  (* Touch the destination TCB (it holds the Kernel_Image reference the
     kernel compares against itself to detect the stack switch). *)
  (match to_.Types.t_frames with
  | f :: _ ->
      let pa = Phys.frame_addr f in
      let asid = System.current_asid sys ~core in
      let global = System.kernel_mappings_global sys in
      for l = 0 to 3 do
        let a = pa + (l * (System.platform sys).Tp_hw.Platform.line) in
        ignore
          (Tp_hw.Machine.access m ~core ~asid ~global ~vaddr:a ~paddr:a
             ~kind:Tp_hw.Defs.Read ())
      done
  | [] -> ());
  ignore
    (System.touch_shared sys ~core Layout.Cur_pointers ~kind:Tp_hw.Defs.Write ());
  from_kernel.Types.ki_running_on.(core) <- false;
  to_kernel.Types.ki_running_on.(core) <- true;
  pc.System.cur_thread <- Some to_;
  pc.System.cur_kernel <- to_kernel;
  to_.Types.t_state <- Types.Ts_running;
  (* 6. release the kernel lock *)
  ignore (System.touch_shared sys ~core Layout.Big_lock ~kind:Tp_hw.Defs.Write ());
  Tp_hw.Machine.add_cycles m ~core lock_cost;
  (* 7. unmask the interrupts of the new kernel *)
  if protect then
    ignore
      (System.touch_shared sys ~core Layout.Irq_tables ~len:256
         ~kind:Tp_hw.Defs.Write ());
  (* 8. flush on-core microarchitectural state *)
  let flush = if protect then do_flushes sys ~core to_kernel else 0 in
  (* 9. pre-fetch shared kernel data (Requirement 3) *)
  if protect && cfg.Config.prefetch_shared then prefetch_shared sys ~core;
  (* 10. poll the cycle counter until the configured latency has
     elapsed since the preemption interrupt; the pad is the *outgoing*
     kernel's attribute. *)
  let pad_wait =
    if protect && from_kernel.Types.ki_pad_cycles > 0 then begin
      let target = t0 + from_kernel.Types.ki_pad_cycles in
      let nw = System.now sys ~core in
      if nw < target then begin
        Tp_hw.Machine.add_cycles m ~core (target - nw);
        target - nw
      end
      else 0
    end
    else 0
  in
  (* 11. reprogram the timer interrupt *)
  ignore
    (System.touch_shared sys ~core Layout.Irq_tables ~len:64 ~kind:Tp_hw.Defs.Write ());
  Tp_hw.Machine.add_cycles m ~core timer_reprogram_cost;
  (* 12. restore the user stack pointer and return *)
  Tp_hw.Machine.add_cycles m ~core return_cost;
  let total = System.now sys ~core - t0 in
  if kernel_switched then Klog.switch ~core ~from_kernel ~to_kernel ~total;
  let padded = protect && from_kernel.Types.ki_pad_cycles > 0 in
  let s = stats () in
  Tp_obs.Counter.incr s.st_switches;
  if kernel_switched then Tp_obs.Counter.incr s.st_kernel_switches;
  if protect then Tp_obs.Counter.incr s.st_protected;
  Tp_obs.Counter.add s.st_flush_cycles flush;
  Tp_obs.Counter.add s.st_pad_wait_cycles pad_wait;
  if padded && pad_wait = 0 then Tp_obs.Counter.incr s.st_pad_overruns;
  Tp_obs.Padprof.record ~ki:from_kernel.Types.ki_id
    ~pad:from_kernel.Types.ki_pad_cycles ~padded ~total ~flush ~pad_wait;
  if Tp_obs.Trace.enabled () then
    Tp_obs.Trace.span ~core ~cat:"kernel" ~name:"domain_switch" ~ts:t0
      ~dur:total
      ~args:
        [
          ("from_ki", Tp_obs.Trace.Int from_kernel.Types.ki_id);
          ("to_ki", Tp_obs.Trace.Int to_kernel.Types.ki_id);
          ("flush", Tp_obs.Trace.Int flush);
          ("pad_wait", Tp_obs.Trace.Int pad_wait);
          ("kernel_switched", Tp_obs.Trace.Bool kernel_switched);
          ("protected", Tp_obs.Trace.Bool protect);
        ]
      ();
  { total; flush; pad_wait; kernel_switched }
