exception Preempted

type t = {
  sys : System.t;
  core : int;
  tcb : Types.tcb;
  slice_end : int;
  mutable recorder : Tp_hw.Replay.t option;
}

let make sys ~core tcb ~slice_end = { sys; core; tcb; slice_end; recorder = None }

(* Internal clock read — used by the slice machinery itself, which is
   part of what a replay reproduces, so it must not poison. *)
let now_ t = System.now t.sys ~core:t.core

(* A recorded stream replays only the body's Machine-level operations.
   Any behaviour that could make the body's op sequence depend on
   something the stream does not capture — the clock, kernel entry,
   direct system access — poisons the recording: the stream stays
   unreplayable and the trial loop falls back to live execution. *)
let taint t =
  match t.recorder with
  | Some r -> Tp_hw.Replay.poison r
  | None -> ()

let set_recorder t r = t.recorder <- r

let sys t = taint t; t.sys
let core t = t.core
let tcb t = taint t; t.tcb
let now t = taint t; now_ t

(* Deliver fired, unmasked timer IRQs; then enforce the slice budget. *)
let post t =
  let cfg = System.cfg t.sys in
  let pc = System.per_core t.sys t.core in
  let fired =
    Irq.pending (System.irq t.sys) ~core:t.core ~now:(now_ t)
      ~partitioned:cfg.Config.partition_irqs ~current:pc.System.cur_kernel
  in
  List.iter (fun irq -> Syscalls.handle_irq t.sys ~core:t.core ~irq) fired;
  if now_ t >= t.slice_end then raise Preempted

let vspace t =
  match t.tcb.Types.t_vspace with
  | Some vs -> vs
  | None -> raise (Types.Kernel_error Types.Invalid_capability)

let record_access t ~kind vaddr =
  match t.recorder with
  | None -> ()
  | Some r ->
      let vs = vspace t in
      let paddr = System.translate vs vaddr in
      let root_pa, leaf_pa =
        System.walk_lines t.sys vs (Tp_hw.Defs.page_of vaddr)
      in
      Tp_hw.Replay.append_access r ~kind ~vaddr ~paddr ~root_pa ~leaf_pa

let read t vaddr =
  record_access t ~kind:Tp_hw.Defs.Read vaddr;
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Read);
  post t

let write t vaddr =
  record_access t ~kind:Tp_hw.Defs.Write vaddr;
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Write);
  post t

let fetch t vaddr =
  record_access t ~kind:Tp_hw.Defs.Fetch vaddr;
  ignore (System.user_access t.sys ~core:t.core t.tcb ~vaddr ~kind:Tp_hw.Defs.Fetch);
  post t

let jump t ~src ~target =
  let vs = vspace t in
  let paddr = System.translate vs src in
  (match t.recorder with
  | Some r -> Tp_hw.Replay.append_jump r ~vaddr:src ~paddr ~target
  | None -> ());
  ignore
    (Tp_hw.Machine.jump (System.machine t.sys) ~core:t.core
       ~asid:vs.Types.vs_asid ~vaddr:src ~paddr ~target);
  post t

let cond_branch t ~addr ~taken =
  let vs = vspace t in
  let paddr = System.translate vs addr in
  (match t.recorder with
  | Some r -> Tp_hw.Replay.append_cond_branch r ~vaddr:addr ~paddr ~taken
  | None -> ());
  ignore
    (Tp_hw.Machine.cond_branch (System.machine t.sys) ~core:t.core
       ~asid:vs.Types.vs_asid ~vaddr:addr ~paddr ~taken);
  post t

let clflush t vaddr =
  let vs = vspace t in
  let paddr = System.translate vs vaddr in
  (match t.recorder with
  | Some r -> Tp_hw.Replay.append_clflush r ~paddr
  | None -> ());
  ignore (Tp_hw.Machine.clflush (System.machine t.sys) ~core:t.core ~paddr);
  post t

let compute t n =
  assert (n >= 0);
  (match t.recorder with
  | Some r -> Tp_hw.Replay.append_add_cycles r n
  | None -> ());
  Tp_hw.Machine.add_cycles (System.machine t.sys) ~core:t.core n;
  post t

let syscall t call =
  taint t;
  Syscalls.execute t.sys ~core:t.core t.tcb call;
  post t

let remaining t =
  taint t;
  Stdlib.max 0 (t.slice_end - now_ t)

let idle_rest t =
  (* Idling has no machine effect beyond the clock, so the recording is
     a single marker; replay collapses the whole span into one clock
     advance. *)
  (match t.recorder with
  | Some r -> Tp_hw.Replay.append_idle r
  | None -> ());
  (* Advance in interrupt-latency-sized steps so timers fire at the
     right instant even while the thread sleeps. *)
  let step = 1000 in
  let rec go () =
    let left = t.slice_end - now_ t in
    if left <= 0 then (post t; raise Preempted)
    else begin
      Tp_hw.Machine.add_cycles (System.machine t.sys) ~core:t.core
        (Stdlib.min step left);
      post t;
      go ()
    end
  in
  go ()

let replay t r =
  if not (Tp_hw.Replay.complete r) then false
  else if Irq.next_timer (System.irq t.sys) ~core:t.core <= t.slice_end then
    (* A timer due within the slice would be delivered at a mid-slice
       [post] live; the replay loop performs no IRQ delivery, so the
       states would diverge.  Run live instead. *)
    false
  else
    match t.tcb.Types.t_vspace with
    | None -> false
    | Some vs ->
        let llc_ways = System.cat_mask_of_domain t.sys t.tcb.Types.t_domain in
        (match
           Tp_hw.Replay.replay (System.machine t.sys) ~core:t.core
             ~asid:vs.Types.vs_asid ~llc_ways ~until:t.slice_end r
         with
        | `Done_idle ->
            (* The recorded body idled out its slice; do the same in one
               step, then run the normal end-of-slice post (which also
               delivers any timer landing exactly on the boundary,
               matching live idle_rest). *)
            let left = t.slice_end - now_ t in
            if left > 0 then
              Tp_hw.Machine.add_cycles (System.machine t.sys) ~core:t.core left
        | `Budget | `Incomplete -> ());
        (* The clock is at or past the slice end either way. *)
        post t;
        (* Unreachable: [post] raises [Preempted] at the slice end. *)
        true
