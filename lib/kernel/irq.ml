let n_irqs = 32
let preemption_irq = 0

type timer = { tm_irq : int; tm_at : int }

type t = {
  handlers : Types.irq_handler array;
  timers : timer list ref array; (* per core, unsorted (few entries) *)
}

let create ~cores =
  {
    handlers = Array.init n_irqs (fun i -> { Types.ih_irq = i; ih_kernel = None });
    timers = Array.init cores (fun _ -> ref []);
  }

let handler t irq =
  assert (irq >= 0 && irq < n_irqs);
  t.handlers.(irq)

let () = List.iter Tp_fault.Fault.register [ "irq.set_int"; "irq.clear_int" ]

let set_int t ~irq ki =
  assert (irq <> preemption_irq);
  Tp_fault.Fault.hit "irq.set_int";
  let h = handler t irq in
  (match h.Types.ih_kernel with
  | Some k when k.Types.ki_id <> ki.Types.ki_id && k.Types.ki_state = Types.Ki_active
    ->
      raise (Types.Kernel_error Types.Irq_in_use)
  | Some _ | None -> ());
  h.Types.ih_kernel <- Some ki

let clear_int t ~irq =
  Tp_fault.Fault.hit "irq.clear_int";
  (handler t irq).Types.ih_kernel <- None

let routes t =
  Array.to_list t.handlers
  |> List.filter_map (fun h ->
         match h.Types.ih_kernel with
         | Some ki -> Some (h.Types.ih_irq, ki)
         | None -> None)

let arm_timer t ~core ~irq ~at =
  let ts = t.timers.(core) in
  ts := { tm_irq = irq; tm_at = at } :: !ts

let cancel_timers t ~core ~irq =
  let ts = t.timers.(core) in
  ts := List.filter (fun tm -> tm.tm_irq <> irq) !ts

let deliverable t ~partitioned ~current irq =
  if not partitioned then true
  else begin
    match (handler t irq).Types.ih_kernel with
    | Some k -> k.Types.ki_id = current.Types.ki_id
    | None ->
        (* Unassociated IRQs are valid but unpartitioned; the kernel
           "will only ensure that partitioned IRQs cannot leak" (§4.2).
           An unassociated IRQ is delivered to whoever is running. *)
        true
  end

let pending t ~core ~now ~partitioned ~current =
  let ts = t.timers.(core) in
  let fired, rest =
    List.partition
      (fun tm -> tm.tm_at <= now && deliverable t ~partitioned ~current tm.tm_irq)
      !ts
  in
  ts := rest;
  List.map (fun tm -> tm.tm_irq) (List.sort (fun a b -> compare a.tm_at b.tm_at) fired)

let next_timer t ~core =
  List.fold_left
    (fun acc tm -> Stdlib.min acc tm.tm_at)
    max_int !(t.timers.(core))

let drop_masked_race t ~core ~now =
  let ts = t.timers.(core) in
  ts := List.filter (fun tm -> tm.tm_at > now) !ts
