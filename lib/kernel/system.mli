(** Central kernel state and kernel-memory access primitives.

    A [System.t] is one booted machine: the hardware model, the
    residual shared data region, the initial kernel image (built from
    boot-reserved frames, its [Kernel_Memory] deliberately withheld
    from userland so an idle thread always survives, §4.4), scheduler
    and IRQ state, and per-core "current kernel / current thread"
    registers.

    Every kernel code path in the model executes its memory traffic
    through {!touch_image} / {!touch_shared}, so kernel footprints hit
    the simulated caches exactly where the layout puts them — this is
    what makes the Figure 3 kernel channel (and its mitigation by
    cloning) emerge rather than being hard-coded. *)

type t

type percore = {
  mutable cur_kernel : Types.kimage;
  mutable cur_thread : Types.tcb option;
  mutable slice_end : int;  (** cycle at which the current slice ends *)
  mutable last_tick_start : int;  (** preemption-interrupt arrival time *)
}

val create : Tp_hw.Platform.t -> Config.t -> t
(** Boot: reserve frames for the initial kernel image and the shared
    region, create the initial kernel (ASID 0) and its idle thread. *)

val machine : t -> Tp_hw.Machine.t
val platform : t -> Tp_hw.Platform.t
val cfg : t -> Config.t
val phys : t -> Phys.t
val sched : t -> Sched.t
val irq : t -> Irq.t
val initial_kernel : t -> Types.kimage
val kernels : t -> Types.kimage list
val register_kernel : t -> Types.kimage -> unit
val unregister_kernel : t -> Types.kimage -> unit
val per_core : t -> int -> percore
val n_colours : t -> int

val alloc_asid : t -> int
(** @raise Types.Kernel_error [Out_of_asids] when exhausted. *)

val free_asid : t -> int -> unit
(** @raise Types.Kernel_error [Double_free] when the ASID is already
    free (or was never allocatable), instead of corrupting the free
    list. *)

val free_asid_count : t -> int
(** Number of currently free ASIDs (leak detection in the fault
    driver). *)

val asid_is_free : t -> int -> bool

val register_tcb : t -> Types.tcb -> unit
val all_tcbs : t -> Types.tcb list

val now : t -> core:int -> int
(** Current cycle count on a core. *)

(** {1 Kernel memory traffic}

    All return the cycles consumed (already charged to the core). *)

type image_region = Text | Stack | Data | Flushbuf

val image_region_base : t -> Types.kimage -> image_region -> int * int
(** [(vaddr, paddr)] base of a region of an image. *)

val image_pa : Types.kimage -> off:int -> int
(** Physical address of a byte offset into an image (resolves through
    the possibly non-contiguous frame list). *)

val touch_image :
  t -> core:int -> Types.kimage -> region:image_region -> off:int -> len:int ->
  kind:Tp_hw.Defs.access_kind -> int
(** Touch every cache line of the byte range within an image region,
    through the current address space's TLB context. *)

val touch_shared :
  t -> core:int -> Layout.shared_region -> ?off:int -> ?len:int ->
  kind:Tp_hw.Defs.access_kind -> unit -> int
(** Touch (a sub-range of) one shared static data region.  Defaults to
    the whole region. *)

val shared_base : t -> int * int
(** [(vaddr, paddr)] base of the shared static data block. *)

val set_cat_masks : t -> int array option -> unit
(** Install per-domain CAT way masks (index = domain tag); [None]
    disables way partitioning.  Used by {!Boot} when the configuration
    enables [cat_llc]. *)

val cat_mask_of_domain : t -> int -> int
(** The LLC allocation mask for a domain (all ways when CAT is off or
    the domain is out of range). *)

val cat_masks : t -> int array option
(** The installed per-domain CAT way masks, if any (linter query). *)

val set_shared_audit :
  t ->
  (Layout.shared_region -> off:int -> len:int -> kind:Tp_hw.Defs.access_kind -> unit)
  option ->
  unit
(** Install (or remove) an observer called on every access to the
    residual shared data — the instrumentation behind {!Audit}'s
    §4.1-style audit. *)

val shared_audit :
  t ->
  (Layout.shared_region -> off:int -> len:int -> kind:Tp_hw.Defs.access_kind -> unit)
  option
(** The currently installed shared-data observer, if any. *)

(** {1 User memory} *)

val translate : Types.vspace -> int -> int
(** Virtual to physical; raises [Types.Kernel_error Invalid_capability]
    on an unmapped page (the model's page fault). *)

val map_page :
  t ->
  Types.vspace ->
  pt_alloc:(unit -> int) option ->
  vpn:int ->
  frame:int ->
  unit
(** Install a mapping.  If the covering leaf page table does not exist
    yet, [pt_alloc] supplies a frame for it (from the mapper's pool —
    page tables are user-supplied kernel data, Figure 2); with [None] a
    missing leaf PT raises [Invalid_address]. *)

val user_access :
  t -> core:int -> Types.tcb -> vaddr:int -> kind:Tp_hw.Defs.access_kind -> int
(** One user-mode access by a thread: TLB lookup, then — on a full
    TLB miss — a {e real} page-table walk that reads the root and leaf
    PT lines through the cache hierarchy (so PT cache footprints, the
    van Schaik 2018 channel of §5.3.1, exist and are coloured away
    with the rest of the pool), then the data access.  Returns and
    charges the total latency. *)

val walk_lines : t -> Types.vspace -> int -> int * int
(** [(root_line_pa, leaf_line_pa)] — the physical addresses of the PT
    lines a page-table walk of this vpn reads ([leaf = -1] if the leaf
    table does not exist).  Pure: no machine traffic.  The replay
    recorder ({!Uctx.set_recorder}) stores these with each access so
    replayed TLB-miss walks touch the exact lines live walks did. *)

val current_asid : t -> core:int -> int
(** ASID used for kernel accesses on this core: the current thread's
    address space (kernel mappings live in every AS). *)

val kernel_mappings_global : t -> bool
(** Whether kernel TLB entries are global mappings: true for the
    unmodified single-kernel layout, false once the kernel is
    colour-ready (multiple images preclude global mappings — the
    Table 5 Arm overhead). *)
