(** Kernel clone and destruction (§4.1, §4.4) — the paper's core
    mechanism.

    Cloning copies the source kernel's text, read-only data and stack
    into user-supplied [Kernel_Memory], replicates the replicable
    globals, creates a fresh idle thread and kernel address space
    (ASID), and returns a capability to the new [Kernel_Image].  The
    copy is performed as real simulated memory traffic, so its cost
    (Table 7) emerges from the memory system rather than being a
    constant.

    Destruction follows §4.4: the image becomes a zombie, threads bound
    to it are suspended, [system_stall] and [TLB_invalidate] IPIs are
    sent to every core the zombie is running on (those cores fall back
    to the initial kernel's idle thread), and only then is the object
    reclaimed.  The initial kernel can never be destroyed because its
    [Kernel_Memory] is never handed to userland. *)

val master_cap : System.t -> Types.cap
(** The boot-time Kernel_Image master capability: refers to the
    initial kernel and carries the clone right (§4.1). *)

val clone : System.t -> core:int -> src:Types.cap -> kmem:Types.cap -> Types.cap
(** [clone sys ~core ~src ~kmem] runs Kernel_Clone on the calling
    core.  [src] must be a valid Kernel_Image capability with the
    clone right; [kmem] a valid, unbound Kernel_Memory capability.
    The new image's capability is a CDT child of [src], so revoking a
    Kernel_Image capability destroys all kernels cloned from it.
    @raise Types.Kernel_error [No_clone_right | Wrong_object_type |
    Invalid_capability | Zombie_object | Out_of_asids] *)

val destroy : System.t -> core:int -> Types.cap -> unit
(** Destroy the Kernel_Image behind the capability (also invalidates
    the capability and, transitively, its CDT descendants' view of the
    kernel).  Destroying the initial kernel is rejected with
    [Invalid_capability]. *)

val set_int : System.t -> image:Types.cap -> irq:int -> unit
(** Kernel_SetInt: associate an IRQ source with a kernel image
    (§4.2).  @raise Types.Kernel_error [Irq_in_use] if the IRQ is
    partitioned to a different live kernel. *)

val set_pad : System.t -> image:Types.cap -> cycles:int -> unit
(** Configure the image's domain-switch padding latency (§4.3: a
    user-controlled kernel-image attribute, for policy freedom). *)

val the_image : Types.cap -> Types.kimage
(** @raise Types.Kernel_error [Wrong_object_type | Invalid_capability] *)

val clone_cost_cycles : System.t -> int
(** Cycles consumed by the most recent [clone] on this system
    (diagnostic for Table 7). *)

val counters : unit -> Tp_obs.Counter.set
(** Clone/destroy performance counters (["kernel.clone"]: clones,
    clone_cycles, destroys, destroy_ipis).  Observability only. *)
