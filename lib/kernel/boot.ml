type domain = {
  dom_id : int;
  dom_colours : Colour.set;
  dom_pool : Types.cap;
  dom_kernel_cap : Types.cap;
  dom_kernel : Types.kimage;
  dom_vspace : Types.vspace;
  mutable dom_threads : Types.tcb list;
}

type booted = {
  sys : System.t;
  root : Types.cap;
  master : Types.cap;
  domains : domain array;
}

let () = List.iter Tp_fault.Fault.register [ "boot.reserve"; "boot.domain"; "boot.spawn" ]

let boot ?(colour_percent = 100) ?(domains = 2) ~platform ~config () =
  assert (domains >= 1);
  Klog.init_fault_logging ();
  let sys = System.create platform config in
  Tp_fault.Fault.hit "boot.reserve";
  let phys = System.phys sys in
  for c = 0 to Tp_hw.Machine.n_cores (System.machine sys) - 1 do
    (System.initial_kernel sys).Types.ki_running_on.(c) <- true
  done;
  (* All free memory becomes the root Untyped of the initial task. *)
  let all_frames =
    match Phys.alloc_many phys (Phys.free_frames phys) with
    | Some fs -> fs
    | None -> assert false
  in
  let n_colours = Phys.n_colours phys in
  let root = Retype.untyped_of_frames ~n_colours all_frames in
  let master = Clone.master_cap sys in
  let usable = Colour.fraction ~n_colours ~percent:colour_percent in
  let colour_splits =
    if config.Config.colour_user then begin
      let usable_list = Colour.to_list usable in
      let k = List.length usable_list in
      let per = Stdlib.max 1 (k / domains) in
      List.init domains (fun d ->
          Colour.of_list
            (List.filteri
               (fun i _ -> i >= d * per && i < (d + 1) * per)
               usable_list))
    end
    else List.init domains (fun _ -> usable)
  in
  let total_free = Retype.untyped_free_frames root in
  let mk_domain d colours =
    Tp_fault.Fault.hit "boot.domain";
    let pool =
      if config.Config.colour_user then Retype.split_colours root colours
      else Retype.split_frames root ~frames:(total_free / (domains + 1))
    in
    let kernel_cap, kernel =
      if config.Config.clone_kernel then begin
        let kmem = Retype.retype_kernel_memory pool ~platform in
        let cap = Clone.clone sys ~core:0 ~src:master ~kmem in
        (cap, Clone.the_image cap)
      end
      else begin
        (* A derived master cap with the clone right stripped. *)
        let cap = Capability.derive ~clone_right:false master in
        (cap, System.initial_kernel sys)
      end
    in
    let asid = System.alloc_asid sys in
    let vs_cap = Retype.retype_vspace pool ~asid in
    let vspace =
      match vs_cap.Types.target with
      | Types.Obj_vspace vs -> vs
      | _ -> assert false
    in
    {
      dom_id = d;
      dom_colours = colours;
      dom_pool = pool;
      dom_kernel_cap = kernel_cap;
      dom_kernel = kernel;
      dom_vspace = vspace;
      dom_threads = [];
    }
  in
  let domains_arr =
    Array.of_list (List.mapi mk_domain colour_splits)
  in
  (* Way-based LLC partitioning (Intel CAT, §2.3): each domain gets a
     disjoint slice of the LLC's ways as its class of service. *)
  if config.Config.cat_llc then begin
    let ways = platform.Tp_hw.Platform.llc.Tp_hw.Cache.ways in
    let n = Array.length domains_arr in
    let per = Stdlib.max 1 (ways / n) in
    let masks =
      Array.init n (fun i ->
          let lo = i * per in
          let hi = if i = n - 1 then ways else lo + per in
          ((1 lsl hi) - 1) land lnot ((1 lsl lo) - 1))
    in
    System.set_cat_masks sys (Some masks)
  end;
  { sys; root; master; domains = domains_arr }

let spawn b dom ?(prio = 100) ?(core = 0) body =
  Tp_fault.Fault.hit "boot.spawn";
  let cap = Retype.retype_tcb dom.dom_pool ~core ~prio in
  let tcb =
    match cap.Types.target with Types.Obj_tcb t -> t | _ -> assert false
  in
  tcb.Types.t_vspace <- Some dom.dom_vspace;
  tcb.Types.t_kernel <- Some dom.dom_kernel;
  tcb.Types.t_domain <- dom.dom_id;
  System.register_tcb b.sys tcb;
  dom.dom_threads <- tcb :: dom.dom_threads;
  Exec.set_body tcb body;
  Exec.make_runnable b.sys tcb;
  tcb

(* Leaf page tables are carved from the mapper's own pool, like every
   other piece of dynamic kernel data (Figure 2). *)
let pt_alloc_of pool () =
  match Retype.take_frames pool 1 with [ f ] -> f | _ -> assert false

let alloc_pages b dom ~pages =
  assert (pages > 0);
  let frames = Retype.take_frames dom.dom_pool pages in
  let vs = dom.dom_vspace in
  let pt_alloc = pt_alloc_of dom.dom_pool in
  let base_vpn = vs.Types.vs_heap_next in
  List.iteri
    (fun i f -> System.map_page b.sys vs ~pt_alloc:(Some pt_alloc) ~vpn:(base_vpn + i) ~frame:f)
    frames;
  vs.Types.vs_heap_next <- base_vpn + pages;
  base_vpn * Tp_hw.Defs.page_size

let alloc_pages_where b dom ~pred ~pages =
  assert (pages > 0);
  let frames = Retype.take_frames_where dom.dom_pool ~pred pages in
  let vs = dom.dom_vspace in
  let pt_alloc = pt_alloc_of dom.dom_pool in
  let base_vpn = vs.Types.vs_heap_next in
  List.iteri
    (fun i f -> System.map_page b.sys vs ~pt_alloc:(Some pt_alloc) ~vpn:(base_vpn + i) ~frame:f)
    frames;
  vs.Types.vs_heap_next <- base_vpn + pages;
  base_vpn * Tp_hw.Defs.page_size

let map_shared b ~from_dom ~to_dom ~pages =
  assert (pages > 0);
  let frames = Retype.take_frames from_dom.dom_pool pages in
  let map_into dom =
    let vs = dom.dom_vspace in
    let pt_alloc = pt_alloc_of dom.dom_pool in
    let base_vpn = vs.Types.vs_heap_next in
    List.iteri
      (fun i f -> System.map_page b.sys vs ~pt_alloc:(Some pt_alloc) ~vpn:(base_vpn + i) ~frame:f)
      frames;
    vs.Types.vs_heap_next <- base_vpn + pages;
    base_vpn * Tp_hw.Defs.page_size
  in
  (map_into from_dom, map_into to_dom)

let subdivide b dom ~parts ~core =
  assert (parts >= 1);
  let n_avail = Colour.count dom.dom_colours in
  if n_avail < parts then raise (Types.Kernel_error Types.Insufficient_colours);
  let colour_list = Colour.to_list dom.dom_colours in
  let per = n_avail / parts in
  let extra = n_avail mod parts in
  let rec split_colours part start acc =
    if part = parts then List.rev acc
    else begin
      let size = per + if part < extra then 1 else 0 in
      let s = Colour.of_list (List.filteri (fun i _ -> i >= start && i < start + size) colour_list) in
      split_colours (part + 1) (start + size) (s :: acc)
    end
  in
  let platform = System.platform b.sys in
  List.mapi
    (fun i colours ->
      let pool = Retype.split_colours dom.dom_pool colours in
      let kmem = Retype.retype_kernel_memory pool ~platform in
      let cap = Clone.clone b.sys ~core ~src:dom.dom_kernel_cap ~kmem in
      let asid = System.alloc_asid b.sys in
      let vs_cap = Retype.retype_vspace pool ~asid in
      let vspace =
        match vs_cap.Types.target with
        | Types.Obj_vspace vs -> vs
        | _ -> assert false
      in
      {
        dom_id = (dom.dom_id * 100) + i + 1;
        dom_colours = colours;
        dom_pool = pool;
        dom_kernel_cap = cap;
        dom_kernel = Clone.the_image cap;
        dom_vspace = vspace;
        dom_threads = [];
      })
    (split_colours 0 0 [])

let new_notification b dom =
  ignore b;
  let cap = Retype.retype_notification dom.dom_pool in
  match cap.Types.target with
  | Types.Obj_notification nf -> nf
  | _ -> assert false

let new_endpoint b dom =
  ignore b;
  let cap = Retype.retype_endpoint dom.dom_pool in
  match cap.Types.target with
  | Types.Obj_endpoint ep -> ep
  | _ -> assert false
