(** Interrupt controller model with per-kernel partitioning (§4.2).

    Each IRQ line has an {!Types.irq_handler} object; the
    [Kernel_SetInt] operation associates an IRQ with a kernel image.
    At any time only the preemption timer (IRQ 0) and the IRQs
    associated with the {e current} kernel may be unmasked, which
    prevents one partition's devices from interrupting another
    partition's time slices — the mitigation evaluated in §5.3.5.

    One-shot timers model the programmable timer device the Trojan of
    Figure 6 abuses: it arms a timeout that fires 3–7 ms into the spy's
    slice. *)

val n_irqs : int

val preemption_irq : int
(** IRQ 0: the kernel's own preemption timer, never maskable by
    partitioning. *)

type t

val create : cores:int -> t

val handler : t -> int -> Types.irq_handler

val set_int : t -> irq:int -> Types.kimage -> unit
(** Associate the IRQ with the kernel image.
    @raise Types.Kernel_error [Irq_in_use] if it is already associated
    with a different, still-active kernel. *)

val clear_int : t -> irq:int -> unit

val routes : t -> (int * Types.kimage) list
(** Current IRQ routing table: one [(irq, kernel)] pair per associated
    line, in IRQ order.  Linter query ({!Tp_analysis.Lint}): the
    controller itself guarantees at most one kernel per line. *)

val arm_timer : t -> core:int -> irq:int -> at:int -> unit
(** Program a one-shot timer on [core] to raise [irq] at cycle [at]. *)

val cancel_timers : t -> core:int -> irq:int -> unit

val pending :
  t -> core:int -> now:int -> partitioned:bool -> current:Types.kimage ->
  int list
(** Consume and return the timer IRQs that have fired by [now] and are
    deliverable: with [partitioned] enforcement only IRQs associated
    with [current] are deliverable — others stay pending (masked at
    the source) until their kernel is switched in. *)

val next_timer : t -> core:int -> int
(** Earliest armed timer fire time on [core] ([max_int] if none),
    regardless of deliverability.  The replay gate uses it: a slice
    with no timer due before its end is interrupt-free, so replay
    need not model IRQ delivery. *)

val drop_masked_race : t -> core:int -> now:int -> unit
(** Model of the §4.3 x86 mask race resolution: after masking, probe
    and acknowledge any interrupt already accepted by the CPU.  Drops
    every timer that has already fired on this core. *)
