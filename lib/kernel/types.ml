(* Kernel object model.

   All kernel objects live in one mutually recursive type family, as is
   usual for graph-shaped OS state in OCaml; the operational modules
   (Retype, Clone, System, ...) are layered on top.  This module
   deliberately has no interface file: it exports only data definitions
   and trivial constructors, and every field is part of the model. *)

type error =
  | Invalid_capability  (** revoked or wrong cap presented *)
  | Insufficient_untyped  (** not enough free frames in the untyped *)
  | Insufficient_colours  (** a coloured allocation cannot be satisfied *)
  | Wrong_object_type
  | No_clone_right  (** Kernel_Image cap lacks the clone right *)
  | Zombie_object  (** operation on a kernel being destroyed *)
  | Out_of_asids
  | Irq_in_use  (** IRQ already associated with another kernel *)
  | Not_bound
  | Invalid_address  (** CSpace lookup failed (guard/depth/empty slot) *)
  | Slot_occupied  (** destination CNode slot already holds a capability *)
  | Double_free  (** releasing a resource (ASID, frame) that is already free *)

exception Kernel_error of error

let error_to_string = function
  | Invalid_capability -> "invalid capability"
  | Insufficient_untyped -> "insufficient untyped memory"
  | Insufficient_colours -> "insufficient colours"
  | Wrong_object_type -> "wrong object type"
  | No_clone_right -> "no clone right"
  | Zombie_object -> "zombie object"
  | Out_of_asids -> "out of ASIDs"
  | Irq_in_use -> "IRQ in use"
  | Not_bound -> "not bound"
  | Invalid_address -> "invalid CSpace address"
  | Slot_occupied -> "slot occupied"
  | Double_free -> "double free"

(* Uncaught kernel errors in tests and tpsim print the message, not
   just the constructor's ordinal. *)
let () =
  Printexc.register_printer (function
    | Kernel_error e -> Some (Printf.sprintf "Kernel_error(%s)" (error_to_string e))
    | _ -> None)

type rights = { read : bool; write : bool; grant : bool }

let full_rights = { read = true; write = true; grant = true }

type thread_state =
  | Ts_inactive
  | Ts_ready
  | Ts_running
  | Ts_blocked_send
  | Ts_blocked_recv
  | Ts_suspended  (** suspended by kernel destruction (§4.4) *)

type obj =
  | Obj_untyped of untyped
  | Obj_frame of frame
  | Obj_tcb of tcb
  | Obj_endpoint of endpoint
  | Obj_notification of notification
  | Obj_vspace of vspace
  | Obj_kernel_image of kimage
  | Obj_kernel_memory of kmem
  | Obj_irq_handler of irq_handler
  | Obj_sched_context of sched_context
  | Obj_cnode of cnode

and cap = {
  cap_id : int;
  target : obj;
  rights : rights;
  clone_right : bool;  (** meaningful on Kernel_Image caps only *)
  parent : cap option;  (** capability derivation tree *)
  mutable children : cap list;
  mutable valid : bool;  (** false once revoked/deleted *)
}

and untyped = {
  u_id : int;
  mutable u_free : int list;  (** free frames owned by this untyped *)
  mutable u_retyped : obj list;  (** objects carved out of it *)
  u_colours : Colour.set;  (** colours of the frames it holds *)
}

and frame = {
  f_id : int;
  f_frame : int;  (** physical frame number *)
  mutable f_mapping : (vspace * int) option;  (** where it is mapped *)
}

and vspace = {
  vs_id : int;
  mutable vs_asid : int;
  vs_pages : (int, int) Hashtbl.t;  (** vpn -> physical frame *)
  vs_root_pt : int;  (** frame of the top-level page table *)
  vs_leaf_pts : (int, int) Hashtbl.t;
      (** PT index (vpn / 512) -> frame of the leaf page table.  Page
          tables are dynamic kernel data in user-supplied frames, so
          colouring userland colours them too — which is what defeats
          page-table side-channel attacks (§5.3.1, van Schaik 2018). *)
  mutable vs_heap_next : int;  (** next free heap vpn (bump) *)
}

and tcb = {
  t_id : int;
  mutable t_prio : int;
  mutable t_state : thread_state;
  mutable t_vspace : vspace option;
  mutable t_kernel : kimage option;
      (** the kernel image handling this thread's syscalls (§4.1:
          "we add the capability of the kernel responsible for handling
          its system call to each thread's TCB") *)
  mutable t_core : int;
  mutable t_sc : sched_context option;
      (** scheduling context capping this thread's CPU time; [None] =
          plain round-robin slices *)
  mutable t_domain : int;
      (** security-domain tag; kernel images imply domains under
          cloning, but the full-flush scenario has a single kernel and
          still must flush on domain crossings *)
  t_frames : int list;  (** frames backing the TCB object itself *)
  t_is_idle : bool;
}

and endpoint = {
  ep_id : int;
  mutable ep_send_q : tcb list;
  mutable ep_recv_q : tcb list;
  ep_frames : int list;
}

and notification = {
  nf_id : int;
  mutable nf_word : int;
  mutable nf_waiters : tcb list;
  nf_frames : int list;
}

and sched_context = {
  sc_id : int;
  mutable sc_budget : int;  (** execution budget per period, cycles *)
  mutable sc_period : int;  (** replenishment period, cycles *)
  mutable sc_remaining : int;  (** budget left in the current period *)
  mutable sc_replenish_at : int;  (** cycle at which the budget refills *)
  sc_frames : int list;
}
(** Scheduling-context capability (Lyons et al., EuroSys 2018 — the
    "recently added temporal integrity mechanisms" the paper's §8
    wants time protection combined with).  A thread without one runs
    on raw time slices; a thread with one is capped to [sc_budget]
    cycles per [sc_period], enforcing upper bounds on CPU time
    independently of priority. *)

and kimage_state = Ki_active | Ki_zombie | Ki_destroyed

and kimage = {
  ki_id : int;
  mutable ki_state : kimage_state;
  mutable ki_asid : int;
  ki_is_initial : bool;
  (* Physical placement of the cloned parts (§4.1: code, read-only
     data, stack, replicas of almost all global data, idle thread).
     Image frames come from a (possibly coloured, hence physically
     non-contiguous) pool; byte offset [o] into the image lives in
     [ki_frames.(o / page_size)].  Region offsets come from
     [Layout.image_layout]. *)
  ki_frames : int array;  (** frames backing the image, in offset order *)
  mutable ki_idle : tcb option;
  mutable ki_running_on : bool array;  (** per-core presence bitmap (§4.4) *)
  mutable ki_irqs : int list;  (** IRQs associated via Kernel_SetInt (§4.2) *)
  mutable ki_pad_cycles : int;  (** configured switch-latency pad; 0 = none *)
}

and kmem = {
  km_id : int;
  km_frames : int list;
  mutable km_image : kimage option;  (** the image mapped into it *)
}

and irq_handler = {
  ih_irq : int;
  mutable ih_kernel : kimage option;  (** partition association *)
}

and cnode = {
  cn_id : int;
  cn_radix : int;  (** log2 of the slot count *)
  mutable cn_guard : int;  (** guard value consumed before indexing *)
  mutable cn_guard_bits : int;  (** number of guard bits *)
  cn_slots : cap option array;
  cn_frames : int list;
}
(** Capability storage: seL4 CSpaces are guarded page tables of CNodes.
    An address is resolved MSB-first: each CNode strips its guard then
    indexes a slot by the next [cn_radix] bits; interior slots hold
    further CNode capabilities. *)

(* Object id generation: ids are only used for identity and debugging,
   never for addressing.  The counter is domain-local so parallel
   workers (Tp_par.Pool) allocate ids without racing; the pool gives
   each task a disjoint id region via {!set_id_mark} at every jobs
   level, which keeps ids (and anything hashed on them) bit-identical
   between sequential and parallel runs. *)
let id_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_id () =
  let c = Domain.DLS.get id_counter in
  incr c;
  !c

let id_mark () = !(Domain.DLS.get id_counter)
let set_id_mark v = Domain.DLS.get id_counter := v

let obj_frames = function
  | Obj_untyped u -> u.u_free
  | Obj_frame f -> [ f.f_frame ]
  | Obj_tcb t -> t.t_frames
  | Obj_endpoint e -> e.ep_frames
  | Obj_notification n -> n.nf_frames
  | Obj_vspace _ -> []
  | Obj_kernel_image k -> Array.to_list k.ki_frames
  | Obj_kernel_memory m -> m.km_frames
  | Obj_irq_handler _ -> []
  | Obj_sched_context sc -> sc.sc_frames
  | Obj_cnode cn -> cn.cn_frames

let obj_kind_name = function
  | Obj_untyped _ -> "Untyped"
  | Obj_frame _ -> "Frame"
  | Obj_tcb _ -> "TCB"
  | Obj_endpoint _ -> "Endpoint"
  | Obj_notification _ -> "Notification"
  | Obj_vspace _ -> "VSpace"
  | Obj_kernel_image _ -> "Kernel_Image"
  | Obj_kernel_memory _ -> "Kernel_Memory"
  | Obj_irq_handler _ -> "IRQ_Handler"
  | Obj_sched_context _ -> "Sched_Context"
  | Obj_cnode _ -> "CNode"
