type event = {
  region : Layout.shared_region;
  off : int;
  len : int;
  kind : Tp_hw.Defs.access_kind;
}

type trace = event list

(* Systems with a capture in progress (physical identity).  Capturing
   replaces the system's audit hook, so a nested capture on the same
   system would silently steal the outer capture's events: reject it
   outright rather than return a wrong trace.  Domain-local: systems
   are never shared across domains (Tp_par rule), so each domain
   tracks only its own captures and workers do not contend. *)
let capturing : System.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let capture sys f =
  let capturing = Domain.DLS.get capturing in
  if List.memq sys !capturing then
    invalid_arg "Tp_kernel.Audit.capture: nested capture is not supported";
  let events = ref [] in
  let previous = System.shared_audit sys in
  capturing := sys :: !capturing;
  System.set_shared_audit sys
    (Some (fun region ~off ~len ~kind -> events := { region; off; len; kind } :: !events));
  Fun.protect
    ~finally:(fun () ->
      capturing := List.filter (fun s -> s != sys) !capturing;
      System.set_shared_audit sys previous)
    f;
  List.rev !events

let equal_traces a b = a = b

let lines_touched p trace =
  let line = p.Tp_hw.Platform.line in
  let lines = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let base = Layout.shared_region_off e.region + e.off in
      let first = base / line and last = (base + e.len - 1) / line in
      for l = first to last do
        Hashtbl.replace lines l ()
      done)
    trace;
  Hashtbl.length lines

let region_name = function
  | Layout.Sched_queues -> "sched-queues"
  | Layout.Sched_bitmap -> "sched-bitmap"
  | Layout.Cur_decision -> "cur-decision"
  | Layout.Irq_tables -> "irq-tables"
  | Layout.Cur_irq -> "cur-irq"
  | Layout.Asid_table -> "asid-table"
  | Layout.Ioport_table -> "ioport-table"
  | Layout.Cur_pointers -> "cur-pointers"
  | Layout.Big_lock -> "big-lock"
  | Layout.Ipi_barrier -> "ipi-barrier"

let pp_trace ppf trace =
  List.iter
    (fun e ->
      Format.fprintf ppf "%s[%d..%d] %a@." (region_name e.region) e.off
        (e.off + e.len - 1) Tp_hw.Defs.pp_access_kind e.kind)
    trace
