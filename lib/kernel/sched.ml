let n_priorities = 256

(* Scheduler-event performance counters (observability only).  Per
   domain — see Domain_switch for the pattern. *)
type stats = {
  st : Tp_obs.Counter.set;
  st_enqueues : Tp_obs.Counter.t;
  st_dequeues : Tp_obs.Counter.t;
  st_removes : Tp_obs.Counter.t;
}

let stats_key : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st = Tp_obs.Counter.make_set "kernel.sched" in
      let stats =
        {
          st;
          st_enqueues = Tp_obs.Counter.counter st "enqueues";
          st_dequeues = Tp_obs.Counter.counter st "dequeues";
          st_removes = Tp_obs.Counter.counter st "removes";
        }
      in
      Tp_obs.Counter.register st;
      stats)

let stats () = Domain.DLS.get stats_key
let counters () = (stats ()).st

type t = { queues : Types.tcb Queue.t array array (* core -> prio -> q *) }

let create ~cores =
  { queues = Array.init cores (fun _ -> Array.init n_priorities (fun _ -> Queue.create ())) }

let valid_prio p = p >= 0 && p < n_priorities

let enqueue t ~core tcb =
  assert (valid_prio tcb.Types.t_prio);
  Tp_obs.Counter.incr (stats ()).st_enqueues;
  Queue.push tcb t.queues.(core).(tcb.Types.t_prio)

let find_highest t ~core =
  let qs = t.queues.(core) in
  let rec go p =
    if p < 0 then None
    else if not (Queue.is_empty qs.(p)) then Some p
    else go (p - 1)
  in
  go (n_priorities - 1)

let dequeue_highest t ~core =
  match find_highest t ~core with
  | None -> None
  | Some p ->
      Tp_obs.Counter.incr (stats ()).st_dequeues;
      Some (Queue.pop t.queues.(core).(p))

let peek_highest t ~core =
  match find_highest t ~core with
  | None -> None
  | Some p -> Some (Queue.peek t.queues.(core).(p))

let dequeue_domain t ~core ~domain =
  let qs = t.queues.(core) in
  let rec go p =
    if p < 0 then None
    else begin
      let q = qs.(p) in
      let found = ref None in
      let keep = Queue.create () in
      Queue.iter
        (fun th ->
          if !found = None && th.Types.t_domain = domain then found := Some th
          else Queue.push th keep)
        q;
      match !found with
      | Some th ->
          Queue.clear q;
          Queue.transfer keep q;
          Tp_obs.Counter.incr (stats ()).st_dequeues;
          Some th
      | None -> go (p - 1)
    end
  in
  go (n_priorities - 1)

let domains_present t ~core =
  let qs = t.queues.(core) in
  let doms = Hashtbl.create 8 in
  Array.iter
    (fun q -> Queue.iter (fun th -> Hashtbl.replace doms th.Types.t_domain ()) q)
    qs;
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) doms [])

let remove t ~core tcb =
  Tp_obs.Counter.incr (stats ()).st_removes;
  let q = t.queues.(core).(tcb.Types.t_prio) in
  let keep = Queue.create () in
  Queue.iter (fun th -> if th.Types.t_id <> tcb.Types.t_id then Queue.push th keep) q;
  Queue.clear q;
  Queue.transfer keep q

let is_queued t ~core tcb =
  let q = t.queues.(core).(tcb.Types.t_prio) in
  Queue.fold (fun acc th -> acc || th.Types.t_id = tcb.Types.t_id) false q

let queued_count t ~core =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues.(core)
