(** Kernel memory layout.

    Defines (a) the per-image layout — text+rodata, stack, replicated
    globals, and the L1-sized flush buffers used by the x86 "manual"
    flush (§4.3) — and (b) the residual shared static data region,
    which holds exactly the §4.1 list: scheduler ready-queue heads and
    bitmap, current scheduling decision, IRQ state tables, current IRQ,
    hardware ASID table, IO-port control table, current-thread
    pointers, the SMP big lock and the IPI barrier (~9.5 KiB total).

    The kernel window is mapped at the same virtual address in every
    address space, so the virtual address of a kernel byte depends only
    on its offset — different images alias in the virtually-indexed L1
    but occupy different (colourable) physical lines, exactly the
    property the clone design relies on. *)

val kernel_base_vaddr : int
(** Base of the kernel virtual window. *)

val shared_vaddr : int
(** Virtual base of the residual shared static data block ({!shared_region}
    offsets are relative to it).  {!System} maps the block here and the
    kernel-path certifier ({!Tp_analysis.Kcert}) lifts the switch
    trace against the same base, so the two cannot drift. *)

(** {1 Per-image layout} *)

type image_layout = {
  text_off : int;
  text_size : int;
  stack_off : int;
  stack_size : int;
  data_off : int;  (** replicated globals *)
  data_size : int;
  flushbuf_off : int;  (** L1-D then L1-I flush buffers (x86 only) *)
  flushbuf_size : int;
  image_bytes : int;  (** total, page-aligned *)
}

val image_layout : Tp_hw.Platform.t -> image_layout

val image_frames : Tp_hw.Platform.t -> int
(** Frames needed for one kernel image. *)

(** {1 Shared static data} *)

type shared_region =
  | Sched_queues  (** per-priority ready-queue head pointers (4 KiB) *)
  | Sched_bitmap  (** highest-priority lookup bitmap (32 B) *)
  | Cur_decision  (** current scheduling decision (8 B) *)
  | Irq_tables  (** IRQ state + handler tables (2 x 1.1 KiB) *)
  | Cur_irq  (** interrupt currently being handled (8 B) *)
  | Asid_table  (** first-level hardware ASID table (1.1 KiB) *)
  | Ioport_table  (** IO port control table (2 KiB, x86 only) *)
  | Cur_pointers  (** current thread / cspace / kernel / idle / FPU owner *)
  | Big_lock  (** SMP kernel lock (8 B) *)
  | Ipi_barrier  (** inter-processor-interrupt barrier (8 B) *)

val shared_region_off : shared_region -> int
val shared_region_size : shared_region -> int

val shared_bytes : int
(** Total shared region size (~9.5 KiB). *)

val shared_frames : int

val all_shared_regions : shared_region list

val switch_footprint : Tp_hw.Platform.t -> (string * int) list
(** The distinct memory the {!Domain_switch} path touches outside its
    flush and shared-prefetch steps, as [(component, bytes)] pairs:
    tick-handler text, the shared-region slots of steps 1–7 and 11,
    the kernel stack copy (read + write) and the destination TCB.
    Input to the linter's analytic worst-case switch cost. *)

val clone_footprint : Tp_hw.Platform.t -> (string * int) list
(** The distinct memory the [Clone.clone] path touches: clone-handler
    text, the ASID table, and the coloured-pool copy loop's read and
    write sides (text + stack + replicated data of one image each).
    Input to the linter's analytic worst-case clone cost. *)

val destroy_footprint : Tp_hw.Platform.t -> (string * int) list
(** The distinct memory the [Clone.destroy] path touches:
    destroy-handler text, IRQ tables, scheduler structures, the IPI
    barrier, the ASID table and the registry bookkeeping.  Input to
    the linter's analytic worst-case destroy cost (which adds the
    fixed IPI-stall and bookkeeping costs from {!Tp_hw.Bounds}). *)

(** {1 Syscall handler text map} *)

(** Byte ranges within kernel text, one per handler, placed on distinct
    pages so different handlers have different cache colours — the
    physical basis of the Figure 3 kernel channel. *)

type text_range = { t_off : int; t_len : int }

val entry_stub : text_range
val handler_signal : text_range
val handler_set_priority : text_range
val handler_poll : text_range
val handler_yield : text_range
val handler_ipc : text_range
val handler_tick : text_range
val handler_irq : text_range
val handler_clone : text_range
val handler_destroy : text_range

(** {1 Line enumeration} *)

val lines :
  line:int -> base_vaddr:int -> base_paddr:int -> off:int -> len:int ->
  (int * int) list
(** [(vaddr, paddr)] pairs, one per cache line overlapping
    [\[off, off+len)] relative to the two bases. *)
