(** Kernel event logging.

    A [Logs] source (["tp.kernel"]) for the security-relevant kernel
    events: clone, destruction, IRQ association, domain switches.
    Silent unless the embedding application installs a reporter and
    raises the level (e.g. [tpsim -v]); the experiments never enable
    it, so logging cannot perturb measurements. *)

val src : Logs.src

val clone : Types.kimage -> cost_cycles:int -> unit
val destroy : Types.kimage -> unit
val set_int : Types.kimage -> irq:int -> unit

val switch :
  core:int -> from_kernel:Types.kimage -> to_kernel:Types.kimage ->
  total:int -> unit
(** Logged at debug level (one per tick — voluminous). *)

(** {1 Fault-injection events} *)

val fault_injected : point:string -> hit:int -> unit
val fault_armed : point:string -> hit:int -> unit

val fault_recovered : where:string -> exn_:exn -> unit
(** An operation or harness absorbed a fault and restored a consistent
    state. *)

val harness_checkpoint : ?now:int -> chunk:int -> collected:int -> unit -> unit
(** [now] is the simulated-cycle timestamp for the trace instant (the
    log line does not need it); without it the event lands at the time
    of the most recent span. *)

val harness_degraded : ?now:int -> reason:string -> collected:int -> unit -> unit

val init_fault_logging : unit -> unit
(** Route {!Tp_fault.Fault} registry events (arm/inject/disarm) into
    this log source.  Idempotent; called by {!Boot.boot}. *)
