(** Time-protection configuration: which mechanisms are active.

    The evaluation (§5.2) compares three scenarios; each is a value of
    this record so experiments can also ablate individual mechanisms
    (e.g. padding off, prefetcher on — the knobs behind Tables 3/4 and
    the §5.3.2 prefetcher diagnosis). *)

type t = {
  colour_user : bool;  (** allocate user pools with disjoint colours *)
  clone_kernel : bool;  (** one cloned kernel image per domain (Req 2) *)
  flush_l1 : bool;  (** flush L1 I+D on domain switch (Req 1) *)
  flush_tlb : bool;  (** flush TLBs on domain switch (Req 1) *)
  flush_bp : bool;  (** flush BTB+BHB on domain switch (Req 1) *)
  flush_l2 : bool;  (** full-flush scenario: flush private L2 *)
  flush_llc : bool;  (** full-flush scenario: flush whole hierarchy *)
  disable_prefetcher : bool;  (** full-flush scenario: MSR prefetcher off *)
  pad_cycles : int;  (** pad domain switch to this latency; 0 = no pad (Req 4) *)
  partition_irqs : bool;  (** mask other kernels' IRQs (Req 5) *)
  prefetch_shared : bool;  (** prefetch residual shared data on switch (Req 3) *)
  close_dram_rows : bool;
      (** hypothetical hardware fix: precharge all DRAM banks on the
          domain switch, closing the row-buffer channel the current
          contract cannot (ablation; no real ISA offers this) *)
  cat_llc : bool;
      (** partition the LLC by ways with Intel CAT instead of (or in
          addition to) page colouring — the §2.3/CATalyst mechanism.
          Domains get disjoint class-of-service way masks. *)
}

val raw : t
(** No mitigation at all: the unmitigated-channel baseline. *)

val protected_ : Tp_hw.Platform.t -> t
(** The paper's time-protection implementation: coloured userland,
    cloned kernels, on-core flush, deterministic shared-data prefetch,
    IRQ partitioning, and padding set to a measured worst case
    (58.8 µs on x86, 62.5 µs on Arm — Table 4's pad values). *)

val full_flush : Tp_hw.Platform.t -> t
(** Maximal architected reset: flush the complete cache hierarchy and
    disable the prefetcher; no colouring, no cloning.  The expensive
    comparison point of §5.2/§5.3. *)

val pad_us : Tp_hw.Platform.t -> float
(** The per-platform default padding latency used by [protected_]. *)

val strengthen : ?pad_for:(t -> int) -> t -> t list
(** One-step strengthenings: each disabled mechanism enabled on its
    own (plus, when the current pad is below [pad_for t], a
    pad-raising step).  [pad_for] supplies the analytic worst-case
    switch cost for a candidate configuration (pass
    [Tp_analysis.Lint.pad_bound]); every candidate is re-padded to
    [max candidate-requirement original-pad], so enabling a flush —
    which raises the worst-case switch cost — cannot open the timing
    pseudo-channel that adequate padding had closed.  The certifier's
    monotonicity property ("more protection never certifies more
    bits") quantifies over exactly this lattice. *)

val pp : Format.formatter -> t -> unit
