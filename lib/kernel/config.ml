type t = {
  colour_user : bool;
  clone_kernel : bool;
  flush_l1 : bool;
  flush_tlb : bool;
  flush_bp : bool;
  flush_l2 : bool;
  flush_llc : bool;
  disable_prefetcher : bool;
  pad_cycles : int;
  partition_irqs : bool;
  prefetch_shared : bool;
  close_dram_rows : bool;
  cat_llc : bool;
}

let raw =
  {
    colour_user = false;
    clone_kernel = false;
    flush_l1 = false;
    flush_tlb = false;
    flush_bp = false;
    flush_l2 = false;
    flush_llc = false;
    disable_prefetcher = false;
    pad_cycles = 0;
    partition_irqs = false;
    prefetch_shared = false;
    close_dram_rows = false;
    cat_llc = false;
  }

(* Table 4's padding values: 58.8 us (x86), 62.5 us (Arm). *)
let pad_us p =
  match p.Tp_hw.Platform.arch with Tp_hw.Platform.X86 -> 58.8 | Tp_hw.Platform.Arm -> 62.5

let protected_ p =
  {
    colour_user = true;
    clone_kernel = true;
    flush_l1 = true;
    flush_tlb = true;
    flush_bp = true;
    flush_l2 = false;
    flush_llc = false;
    disable_prefetcher = false;
    pad_cycles = Tp_hw.Platform.us_to_cycles p (pad_us p);
    partition_irqs = true;
    prefetch_shared = true;
    close_dram_rows = false;
    cat_llc = false;
  }

let full_flush _p =
  {
    colour_user = false;
    clone_kernel = false;
    flush_l1 = true;
    flush_tlb = true;
    flush_bp = true;
    flush_l2 = true;
    flush_llc = true;
    disable_prefetcher = true;
    pad_cycles = 0;
    partition_irqs = false;
    prefetch_shared = false;
    close_dram_rows = false;
    cat_llc = false;
  }

(* One-step strengthenings of a configuration: each disabled mechanism
   enabled on its own.  Enabling a flush can raise the worst-case
   switch cost, so "more protection" only means "no more leakage" if
   the pad keeps up: [pad_for] supplies the analytic pad requirement
   for a candidate (callers pass [Tp_analysis.Lint.pad_bound] — this
   module cannot, being below the analysis layer), and every candidate
   is re-padded to cover both its own requirement and the original
   pad.  This is the lattice walked by the certifier's monotonicity
   property test. *)
let strengthen ?(pad_for = fun _ -> 0) c =
  let repad d =
    { d with pad_cycles = max d.pad_cycles (max c.pad_cycles (pad_for d)) }
  in
  let flips =
    [
      (c.colour_user, fun d -> { d with colour_user = true });
      (c.clone_kernel, fun d -> { d with clone_kernel = true });
      (c.flush_l1, fun d -> { d with flush_l1 = true });
      (c.flush_tlb, fun d -> { d with flush_tlb = true });
      (c.flush_bp, fun d -> { d with flush_bp = true });
      (c.flush_l2, fun d -> { d with flush_l2 = true });
      (c.flush_llc, fun d -> { d with flush_llc = true });
      (c.disable_prefetcher, fun d -> { d with disable_prefetcher = true });
      (c.partition_irqs, fun d -> { d with partition_irqs = true });
      (c.prefetch_shared, fun d -> { d with prefetch_shared = true });
      (c.close_dram_rows, fun d -> { d with close_dram_rows = true });
      (c.cat_llc, fun d -> { d with cat_llc = true });
    ]
  in
  let padded =
    if c.pad_cycles < pad_for c then
      [ { c with pad_cycles = pad_for c } ]
    else []
  in
  padded
  @ List.filter_map
      (fun (already, flip) -> if already then None else Some (repad (flip c)))
      flips

let pp ppf c =
  let flag name b = if b then Some name else None in
  let flags =
    List.filter_map Fun.id
      [
        flag "colour" c.colour_user;
        flag "clone" c.clone_kernel;
        flag "flush-L1" c.flush_l1;
        flag "flush-TLB" c.flush_tlb;
        flag "flush-BP" c.flush_bp;
        flag "flush-L2" c.flush_l2;
        flag "flush-LLC" c.flush_llc;
        flag "no-prefetcher" c.disable_prefetcher;
        flag "irq-partition" c.partition_irqs;
        flag "prefetch-shared" c.prefetch_shared;
        flag "close-dram-rows" c.close_dram_rows;
        flag "cat-llc" c.cat_llc;
        (if c.pad_cycles > 0 then Some (Printf.sprintf "pad=%d" c.pad_cycles)
         else None);
      ]
  in
  Format.fprintf ppf "{%s}" (String.concat " " flags)
