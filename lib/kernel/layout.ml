let kernel_base_vaddr = 0x4000_0000

(* The residual shared static data block lives well above any kernel
   image in the window; System maps it here and Tp_analysis.Kcert
   lifts the switch path's accesses against the same base. *)
let shared_vaddr = kernel_base_vaddr + 0x0800_0000

type image_layout = {
  text_off : int;
  text_size : int;
  stack_off : int;
  stack_size : int;
  data_off : int;
  data_size : int;
  flushbuf_off : int;
  flushbuf_size : int;
  image_bytes : int;
}

let page = Tp_hw.Defs.page_size
let round_page n = (n + page - 1) / page * page

let image_layout p =
  let open Tp_hw.Platform in
  let text_size = round_page p.kernel_text in
  let stack_size = round_page p.kernel_stack in
  let data_size = round_page p.kernel_replicated in
  let flushbuf_size =
    if p.has_l1_flush_instr then 0 else round_page (p.l1d.Tp_hw.Cache.size + p.l1i.Tp_hw.Cache.size)
  in
  let text_off = 0 in
  let stack_off = text_off + text_size in
  let data_off = stack_off + stack_size in
  let flushbuf_off = data_off + data_size in
  {
    text_off;
    text_size;
    stack_off;
    stack_size;
    data_off;
    data_size;
    flushbuf_off;
    flushbuf_size;
    image_bytes = flushbuf_off + flushbuf_size;
  }

let image_frames p = (image_layout p).image_bytes / page

type shared_region =
  | Sched_queues
  | Sched_bitmap
  | Cur_decision
  | Irq_tables
  | Cur_irq
  | Asid_table
  | Ioport_table
  | Cur_pointers
  | Big_lock
  | Ipi_barrier

(* Offsets packed in declaration order, 64-byte aligned so regions do
   not share cache lines (the audit of §4.1 checks exactly that kind of
   co-residency). Sizes follow the paper's per-core x64 numbers. *)
let region_layout =
  let align64 n = (n + 63) / 64 * 64 in
  let add (off, acc) (r, size) =
    let off = align64 off in
    (off + size, (r, (off, size)) :: acc)
  in
  let _, l =
    List.fold_left add (0, [])
      [
        (Sched_queues, 4096);
        (Sched_bitmap, 32);
        (Cur_decision, 8);
        (Irq_tables, 2252);
        (Cur_irq, 8);
        (Asid_table, 1126);
        (Ioport_table, 2048);
        (Cur_pointers, 40);
        (Big_lock, 8);
        (Ipi_barrier, 8);
      ]
  in
  l

let shared_region_off r = fst (List.assoc r region_layout)
let shared_region_size r = snd (List.assoc r region_layout)

let shared_bytes =
  List.fold_left (fun acc (_, (off, size)) -> Stdlib.max acc (off + size)) 0
    region_layout

let shared_frames = round_page shared_bytes / page

let all_shared_regions =
  [
    Sched_queues;
    Sched_bitmap;
    Cur_decision;
    Irq_tables;
    Cur_irq;
    Asid_table;
    Ioport_table;
    Cur_pointers;
    Big_lock;
    Ipi_barrier;
  ]

type text_range = { t_off : int; t_len : int }

(* Handlers on distinct pages => distinct colours (mod #colours), and
   at distinct in-page offsets so that handlers whose pages share a
   colour (and therefore alias in the physically-indexed caches) still
   have disjoint set footprints — as a linker's continuous code layout
   gives naturally.  All ranges fit within the smallest modelled
   kernel text (96 KiB = 0x18000 on the Sabre). *)
let entry_stub = { t_off = 0x0000; t_len = 0x400 }
let handler_signal = { t_off = 0x4000; t_len = 0x800 }
let handler_set_priority = { t_off = 0x8800; t_len = 0x800 }
let handler_poll = { t_off = 0xC800; t_len = 0x400 }
let handler_yield = { t_off = 0x10400; t_len = 0x400 }
let handler_ipc = { t_off = 0x12400; t_len = 0x800 }
let handler_tick = { t_off = 0x14C00; t_len = 0x600 }
let handler_irq = { t_off = 0x16200; t_len = 0x400 }
let handler_clone = { t_off = 0x17000; t_len = 0x800 }
let handler_destroy = { t_off = 0x13400; t_len = 0x600 }

(* Distinct memory the Domain_switch path touches outside the flush and
   prefetch steps, as (component, bytes) pairs.  The linter's analytic
   pad bound sweeps each component cold; keeping the list here means a
   layout or switch-path change shows up in the same diff. *)
let switch_footprint p =
  let lay = image_layout p in
  let line = p.Tp_hw.Platform.line in
  [
    ("tick-handler-text", handler_tick.t_len);
    ("big-lock", shared_region_size Big_lock);
    ("cur-irq", shared_region_size Cur_irq);
    ("sched-queue-slots", 32 (* 16 B read + 16 B write *));
    ("sched-bitmap", shared_region_size Sched_bitmap);
    ("cur-decision", shared_region_size Cur_decision);
    ("cur-pointers", shared_region_size Cur_pointers);
    ("irq-mask-unmask-reprogram", 256 + 256 + 64);
    ("stack-copy", 2 * min 1024 lay.stack_size);
    ("dest-tcb", 4 * line);
  ]

(* Distinct memory the Clone.clone path touches, same convention as
   switch_footprint.  The copy loop reads every byte of the template's
   text, stack and replicated-data regions out of the coloured pool and
   writes them into the new image's frames. *)
let clone_footprint p =
  let lay = image_layout p in
  let copied = lay.text_size + lay.stack_size + lay.data_size in
  [
    ("clone-handler-text", handler_clone.t_len);
    ("asid-table", shared_region_size Asid_table);
    ("image-copy-read", copied);
    ("image-copy-write", copied);
  ]

(* Distinct memory the Clone.destroy path touches: the destroy handler,
   IRQ disassociation over the IRQ tables, suspension of bound threads
   through the scheduler structures, the IPI barrier used for the
   remote TLB shootdown, the ASID release and the final registry
   bookkeeping. *)
let destroy_footprint (_ : Tp_hw.Platform.t) =
  [
    ("destroy-handler-text", handler_destroy.t_len);
    ("irq-tables", shared_region_size Irq_tables);
    ("sched-queues", shared_region_size Sched_queues);
    ("sched-bitmap", shared_region_size Sched_bitmap);
    ("ipi-barrier", shared_region_size Ipi_barrier);
    ("asid-table", shared_region_size Asid_table);
    ("cur-pointers", shared_region_size Cur_pointers);
  ]

let lines ~line ~base_vaddr ~base_paddr ~off ~len =
  assert (len > 0);
  let first = (off / line) * line in
  let last = (off + len - 1) / line * line in
  let rec go o acc =
    if o > last then List.rev acc
    else go (o + line) ((base_vaddr + o, base_paddr + o) :: acc)
  in
  go first []
