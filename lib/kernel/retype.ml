let the_untyped cap =
  Capability.ensure_valid cap;
  match cap.Types.target with
  | Types.Obj_untyped u -> u
  | _ -> raise (Types.Kernel_error Types.Wrong_object_type)

let () =
  List.iter Tp_fault.Fault.register
    [ "retype.take_frames"; "retype.register"; "retype.split" ]

let colour_set_of ~n_colours frames =
  List.fold_left
    (fun s f -> Colour.add s (Colour.colour_of_frame ~n_colours f))
    Colour.empty frames

let untyped_of_frames ~n_colours frames =
  let u =
    {
      Types.u_id = Types.fresh_id ();
      u_free = frames;
      u_retyped = [];
      u_colours = colour_set_of ~n_colours frames;
    }
  in
  Capability.mk_root (Types.Obj_untyped u)

let mk_child_untyped parent_cap frames colours =
  let u = the_untyped parent_cap in
  let child =
    {
      Types.u_id = Types.fresh_id ();
      u_free = frames;
      u_retyped = [];
      u_colours = colours;
    }
  in
  u.Types.u_retyped <- Types.Obj_untyped child :: u.Types.u_retyped;
  (* The child capability points at the carved-out object but sits
     under the parent in the CDT, so revoking the parent reclaims it. *)
  let child_cap =
    {
      Types.cap_id = Types.fresh_id ();
      target = Types.Obj_untyped child;
      rights = parent_cap.Types.rights;
      clone_right = false;
      parent = Some parent_cap;
      children = [];
      valid = true;
    }
  in
  parent_cap.Types.children <- child_cap :: parent_cap.Types.children;
  child_cap

let split_colours parent_cap colours =
  let u = the_untyped parent_cap in
  let n_colours =
    (* Recover the colour count from the parent's colour set: colours
       are dense from 0, so the max colour bound works for our pools. *)
    match List.rev (Colour.to_list u.Types.u_colours) with
    | [] -> raise (Types.Kernel_error Types.Insufficient_colours)
    | c :: _ -> c + 1
  in
  let mine, rest =
    List.partition
      (fun f -> Colour.mem colours (Colour.colour_of_frame ~n_colours f))
      u.Types.u_free
  in
  List.iter
    (fun c ->
      if
        not
          (List.exists
             (fun f -> Colour.colour_of_frame ~n_colours f = c)
             mine)
      then raise (Types.Kernel_error Types.Insufficient_colours))
    (Colour.to_list colours);
  Tp_fault.Fault.hit "retype.split";
  u.Types.u_free <- rest;
  mk_child_untyped parent_cap mine colours

let split_frames parent_cap ~frames =
  let u = the_untyped parent_cap in
  if List.length u.Types.u_free < frames then
    raise (Types.Kernel_error Types.Insufficient_untyped);
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | f :: rest -> take (n - 1) (f :: acc) rest
  in
  let mine, rest = take frames [] u.Types.u_free in
  Tp_fault.Fault.hit "retype.split";
  u.Types.u_free <- rest;
  mk_child_untyped parent_cap mine u.Types.u_colours

(* Transactional frame grab: the frames leave the untyped's free list
   immediately, but if the enclosing operation raises before it
   commits, the rollback returns them (in order, at the head — the
   exact inverse of the take). *)
let take_frames_txn txn cap n =
  let u = the_untyped cap in
  Tp_fault.Fault.hit "retype.take_frames";
  if List.length u.Types.u_free < n then
    raise (Types.Kernel_error Types.Insufficient_untyped);
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else begin
      match rest with
      | [] -> assert false
      | f :: rest -> take (n - 1) (f :: acc) rest
    end
  in
  let mine, rest = take n [] u.Types.u_free in
  u.Types.u_free <- rest;
  Txn.defer txn (fun () -> u.Types.u_free <- mine @ u.Types.u_free);
  mine

let take_frames cap n = Txn.run (fun txn -> take_frames_txn txn cap n)

let take_frames_where cap ~pred n =
  let u = the_untyped cap in
  Tp_fault.Fault.hit "retype.take_frames";
  let matching, rest = List.partition pred u.Types.u_free in
  if List.length matching < n then
    raise (Types.Kernel_error Types.Insufficient_untyped);
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else begin
      match rest with
      | [] -> assert false
      | f :: rest -> take (k - 1) (f :: acc) rest
    end
  in
  let mine, leftover = take n [] matching in
  u.Types.u_free <- leftover @ rest;
  mine

let register cap obj =
  let u = the_untyped cap in
  Tp_fault.Fault.hit "retype.register";
  u.Types.u_retyped <- obj :: u.Types.u_retyped;
  let child =
    {
      Types.cap_id = Types.fresh_id ();
      target = obj;
      rights = Types.full_rights;
      clone_right = false;
      parent = Some cap;
      children = [];
      valid = true;
    }
  in
  cap.Types.children <- child :: cap.Types.children;
  child

let retype_tcb cap ~core ~prio =
  Txn.run @@ fun txn ->
  let frames = take_frames_txn txn cap 1 in
  let tcb =
    {
      Types.t_id = Types.fresh_id ();
      t_prio = prio;
      t_state = Types.Ts_inactive;
      t_vspace = None;
      t_kernel = None;
      t_core = core;
      t_sc = None;
      t_domain = 0;
      t_frames = frames;
      t_is_idle = false;
    }
  in
  register cap (Types.Obj_tcb tcb)

let retype_frame cap =
  Txn.run @@ fun txn ->
  match take_frames_txn txn cap 1 with
  | [ f ] ->
      register cap
        (Types.Obj_frame { Types.f_id = Types.fresh_id (); f_frame = f; f_mapping = None })
  | _ -> assert false

let retype_endpoint cap =
  Txn.run @@ fun txn ->
  let frames = take_frames_txn txn cap 1 in
  register cap
    (Types.Obj_endpoint
       { Types.ep_id = Types.fresh_id (); ep_send_q = []; ep_recv_q = []; ep_frames = frames })

let retype_notification cap =
  Txn.run @@ fun txn ->
  let frames = take_frames_txn txn cap 1 in
  register cap
    (Types.Obj_notification
       { Types.nf_id = Types.fresh_id (); nf_word = 0; nf_waiters = []; nf_frames = frames })

let retype_vspace cap ~asid =
  Txn.run @@ fun txn ->
  (* One frame for the top-level page table; leaf page tables are
     allocated on demand at map time (also from the owning pool). *)
  let root_pt =
    match take_frames_txn txn cap 1 with [ f ] -> f | _ -> assert false
  in
  register cap
    (Types.Obj_vspace
       {
         Types.vs_id = Types.fresh_id ();
         vs_asid = asid;
         vs_pages = Hashtbl.create 64;
         vs_root_pt = root_pt;
         vs_leaf_pts = Hashtbl.create 16;
         vs_heap_next = 0x1000_0000 / Tp_hw.Defs.page_size;
       })

let retype_sched_context cap ~budget ~period =
  assert (budget > 0 && budget <= period);
  Txn.run @@ fun txn ->
  let frames = take_frames_txn txn cap 1 in
  register cap
    (Types.Obj_sched_context
       {
         Types.sc_id = Types.fresh_id ();
         sc_budget = budget;
         sc_period = period;
         sc_remaining = budget;
         sc_replenish_at = 0;
         sc_frames = frames;
       })

let retype_kernel_memory cap ~platform =
  let n = Layout.image_frames platform in
  Txn.run @@ fun txn ->
  let frames = take_frames_txn txn cap n in
  register cap
    (Types.Obj_kernel_memory
       { Types.km_id = Types.fresh_id (); km_frames = frames; km_image = None })

let untyped_free_frames cap = List.length (the_untyped cap).Types.u_free
