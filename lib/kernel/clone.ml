(* Domain-local so parallel workers' clones never race; each task
   queries the cost of its own last clone. *)
let last_clone_cost : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Clone/destroy performance counters (observability only).  Per
   domain, like the switch-path set: Tp_par.Pool sums them at join. *)
type stats = {
  st : Tp_obs.Counter.set;
  st_clones : Tp_obs.Counter.t;
  st_clone_cycles : Tp_obs.Counter.t;
  st_destroys : Tp_obs.Counter.t;
  st_destroy_ipis : Tp_obs.Counter.t;
}

let stats_key : stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let st = Tp_obs.Counter.make_set "kernel.clone" in
      let stats =
        {
          st;
          st_clones = Tp_obs.Counter.counter st "clones";
          st_clone_cycles = Tp_obs.Counter.counter st "clone_cycles";
          st_destroys = Tp_obs.Counter.counter st "destroys";
          st_destroy_ipis = Tp_obs.Counter.counter st "destroy_ipis";
        }
      in
      Tp_obs.Counter.register st;
      stats)

let stats () = Domain.DLS.get stats_key
let counters () = (stats ()).st

let master_cap sys =
  Capability.mk_root ~clone_right:true
    (Types.Obj_kernel_image (System.initial_kernel sys))

let the_image cap =
  Capability.ensure_valid cap;
  match cap.Types.target with
  | Types.Obj_kernel_image ki -> ki
  | _ -> raise (Types.Kernel_error Types.Wrong_object_type)

let the_kmem cap =
  Capability.ensure_valid cap;
  match cap.Types.target with
  | Types.Obj_kernel_memory km -> km
  | _ -> raise (Types.Kernel_error Types.Wrong_object_type)

(* Copy [len] bytes at image offset [off] from one image's frames to
   another's, as simulated memory traffic through the kernel's physical
   window (vaddr = paddr, global mapping where the layout allows). *)
let copy_region sys ~core ~src_pa_of ~dst_pa_of ~off ~len =
  let m = System.machine sys in
  let p = System.platform sys in
  let line = p.Tp_hw.Platform.line in
  let asid = System.current_asid sys ~core in
  let global = System.kernel_mappings_global sys in
  let n_lines = (len + line - 1) / line in
  for i = 0 to n_lines - 1 do
    let o = off + (i * line) in
    let src = src_pa_of o and dst = dst_pa_of o in
    ignore
      (Tp_hw.Machine.access m ~core ~asid ~global ~vaddr:src ~paddr:src
         ~kind:Tp_hw.Defs.Read ());
    ignore
      (Tp_hw.Machine.access m ~core ~asid ~global ~vaddr:dst ~paddr:dst
         ~kind:Tp_hw.Defs.Write ())
  done

let () =
  List.iter Tp_fault.Fault.register
    [
      "clone.validate";
      "clone.copy";
      "clone.idle";
      "clone.commit";
      "destroy.irq";
      "destroy.suspend";
      "destroy.ipi";
      "destroy.asid";
      "destroy.commit";
    ]

let clone sys ~core ~src ~kmem =
  let src_ki = the_image src in
  if not src.Types.clone_right then raise (Types.Kernel_error Types.No_clone_right);
  if src_ki.Types.ki_state <> Types.Ki_active then
    raise (Types.Kernel_error Types.Zombie_object);
  let km = the_kmem kmem in
  if km.Types.km_image <> None then raise (Types.Kernel_error Types.Wrong_object_type);
  let p = System.platform sys in
  let lay = Layout.image_layout p in
  let needed = Layout.image_frames p in
  if List.length km.Types.km_frames < needed then
    raise (Types.Kernel_error Types.Insufficient_untyped);
  Tp_fault.Fault.hit "clone.validate";
  let start = System.now sys ~core in
  (* Everything from the ASID allocation on is transactional: a raise
     anywhere below (a real error or an injected fault) releases the
     ASID and unwinds every published side effect, so a failed clone
     leaves no residual kernel, CDT edge or Kernel_Memory binding. *)
  Txn.run @@ fun txn ->
  (* ASID allocation scans the shared first-level ASID table — the
     lifted clone trace (Tp_analysis.Kcert) models this same read. *)
  ignore (System.touch_shared sys ~core Layout.Asid_table ~kind:Tp_hw.Defs.Read ());
  let asid = System.alloc_asid sys in
  Txn.defer txn (fun () -> System.free_asid sys asid);
  (* The image occupies the Kernel_Memory frames in offset order.  The
     frames come from the caller's (coloured) pool, so a cloned kernel
     is exactly as coloured as the domain that created it. *)
  let frame_arr = Array.of_list km.Types.km_frames in
  let ki =
    {
      Types.ki_id = Types.fresh_id ();
      ki_state = Types.Ki_active;
      ki_asid = asid;
      ki_is_initial = false;
      ki_frames = frame_arr;
      ki_idle = None;
      ki_running_on = Array.make (Tp_hw.Machine.n_cores (System.machine sys)) false;
      ki_irqs = [];
      ki_pad_cycles = (System.cfg sys).Config.pad_cycles;
    }
  in
  (* A half-built image must never look active to a concurrent
     observer walking the registry. *)
  Txn.defer txn (fun () -> ki.Types.ki_state <- Types.Ki_destroyed);
  (* Kernel_Clone copies code, read-only data and stack; the replicated
     globals are initialised from the source's values (a copy too). *)
  let copy ~off ~len =
    Tp_fault.Fault.hit "clone.copy";
    copy_region sys ~core
      ~src_pa_of:(fun o -> System.image_pa src_ki ~off:o)
      ~dst_pa_of:(fun o -> System.image_pa ki ~off:o)
      ~off ~len
  in
  copy ~off:lay.Layout.text_off ~len:lay.Layout.text_size;
  copy ~off:lay.Layout.stack_off ~len:lay.Layout.stack_size;
  copy ~off:lay.Layout.data_off ~len:lay.Layout.data_size;
  (* Clone handler's own text execution. *)
  ignore
    (System.touch_image sys ~core src_ki ~region:System.Text
       ~off:Layout.handler_clone.Layout.t_off ~len:Layout.handler_clone.Layout.t_len
       ~kind:Tp_hw.Defs.Fetch);
  Tp_fault.Fault.hit "clone.idle";
  (* New idle thread and kernel address space root. *)
  ki.Types.ki_idle <-
    Some
      {
        Types.t_id = Types.fresh_id ();
        t_prio = 0;
        t_state = Types.Ts_ready;
        t_vspace = None;
        t_kernel = Some ki;
        t_core = core;
      t_sc = None;
        t_domain = -1;
        t_frames = [];
        t_is_idle = true;
      };
  Tp_fault.Fault.hit "clone.commit";
  km.Types.km_image <- Some ki;
  Txn.defer txn (fun () -> km.Types.km_image <- None);
  System.register_kernel sys ki;
  Txn.defer txn (fun () -> System.unregister_kernel sys ki);
  let cost = System.now sys ~core - start in
  Domain.DLS.get last_clone_cost := cost;
  Klog.clone ki ~cost_cycles:cost;
  let s = stats () in
  Tp_obs.Counter.incr s.st_clones;
  Tp_obs.Counter.add s.st_clone_cycles cost;
  if Tp_obs.Trace.enabled () then
    Tp_obs.Trace.span ~core ~cat:"kernel" ~name:"kernel_clone" ~ts:start
      ~dur:cost
      ~args:[ ("ki", Tp_obs.Trace.Int ki.Types.ki_id) ]
      ();
  (* CDT: the new image hangs off the source image capability. *)
  let cap =
    {
      Types.cap_id = Types.fresh_id ();
      target = Types.Obj_kernel_image ki;
      rights = Types.full_rights;
      clone_right = src.Types.clone_right;
      parent = Some src;
      children = [];
      valid = true;
    }
  in
  src.Types.children <- cap :: src.Types.children;
  cap

(* Send + remote acknowledge, cf. TLB shoot-down; from the shared
   lifecycle cost table so the analytic destroy envelope cannot drift. *)
let ipi_cost = Tp_hw.Bounds.ipi_cost

(* Steps 2..5 of destruction, shared between the normal path and the
   roll-forward recovery path.  Every step is idempotent, so a destroy
   interrupted anywhere can simply be completed: destruction rolls
   forward (the zombie finishes dying), it never rolls back — the
   capability is already gone and §4.4 requires the teardown to reach
   a quiescent state. *)
let teardown sys ~core ki ~charge =
  let m = System.machine sys in
  (* 2. Release IRQ associations first: no interrupt may be delivered
     to (or partitioned for) a dying kernel, and the IRQ tables must
     never point at a non-active image. *)
  Tp_fault.Fault.hit "destroy.irq";
  List.iter (fun irq -> Irq.clear_int (System.irq sys) ~irq) ki.Types.ki_irqs;
  ki.Types.ki_irqs <- [];
  (* 3. Suspend all threads bound to the zombie. *)
  Tp_fault.Fault.hit "destroy.suspend";
  List.iter
    (fun tcb ->
      match tcb.Types.t_kernel with
      | Some k when k.Types.ki_id = ki.Types.ki_id ->
          tcb.Types.t_state <- Types.Ts_suspended;
          Sched.remove (System.sched sys) ~core:tcb.Types.t_core tcb
      | Some _ | None -> ())
    (System.all_tcbs sys);
  (* 4. system_stall + TLB_invalidate IPIs to cores running the zombie;
     they fall back to the initial kernel's idle thread. *)
  Tp_fault.Fault.hit "destroy.ipi";
  Array.iteri
    (fun c running ->
      if running then begin
        Tp_obs.Counter.incr (stats ()).st_destroy_ipis;
        if charge then begin
          ignore
            (System.touch_shared sys ~core Layout.Ipi_barrier ~kind:Tp_hw.Defs.Write ());
          Tp_hw.Machine.add_cycles m ~core ipi_cost;
          Tp_hw.Machine.add_cycles m ~core:c ipi_cost
        end;
        ignore (Tp_hw.Machine.flush_tlbs m ~core:c);
        let pc = System.per_core sys c in
        pc.System.cur_kernel <- System.initial_kernel sys;
        pc.System.cur_thread <- (System.initial_kernel sys).Types.ki_idle;
        ki.Types.ki_running_on.(c) <- false
      end)
    ki.Types.ki_running_on;
  (* 5. Release the ASID and complete the cleanup.  [ki_asid] is set
     to -1 as the "already released" marker, making the step (and the
     whole teardown) safely re-runnable. *)
  Tp_fault.Fault.hit "destroy.asid";
  if ki.Types.ki_asid > 0 then begin
    (* Releasing the ASID clears the shared first-level table slot —
       the lifted destroy trace (Tp_analysis.Kcert) models this same
       write. *)
    if charge then
      ignore
        (System.touch_shared sys ~core Layout.Asid_table ~kind:Tp_hw.Defs.Write ());
    let a = ki.Types.ki_asid in
    ki.Types.ki_asid <- -1;
    System.free_asid sys a
  end;
  Tp_fault.Fault.hit "destroy.commit";
  ki.Types.ki_state <- Types.Ki_destroyed;
  Klog.destroy ki;
  System.unregister_kernel sys ki

let destroy sys ~core cap =
  let ki = the_image cap in
  if ki.Types.ki_is_initial then
    raise (Types.Kernel_error Types.Invalid_capability);
  if ki.Types.ki_state = Types.Ki_destroyed then
    raise (Types.Kernel_error Types.Zombie_object);
  let m = System.machine sys in
  let start = System.now sys ~core in
  let destroyed_ki = ki.Types.ki_id in
  (* Destroy handler's own text execution (on the kernel performing the
     destruction, not the dying image). *)
  ignore
    (System.touch_image sys ~core
       (System.per_core sys core).System.cur_kernel ~region:System.Text
       ~off:Layout.handler_destroy.Layout.t_off
       ~len:Layout.handler_destroy.Layout.t_len ~kind:Tp_hw.Defs.Fetch);
  (* 1. Invalidate the capability: the kernel becomes a zombie. *)
  Capability.invalidate cap;
  ki.Types.ki_state <- Types.Ki_zombie;
  (try teardown sys ~core ki ~charge:true
   with e ->
     (* Crash consistency by roll-forward: complete the remaining
        teardown steps (uncharged — the failing path's timing is no
        longer meaningful), then propagate the original failure. *)
     (try teardown sys ~core ki ~charge:false
      with _ -> () (* injected one-shot faults cannot re-fire *));
     Klog.fault_recovered ~where:"Clone.destroy" ~exn_:e;
     raise e);
  (* Fixed bookkeeping cost of the destruction path itself. *)
  ignore
    (System.touch_shared sys ~core Layout.Cur_pointers ~kind:Tp_hw.Defs.Write ());
  Tp_hw.Machine.add_cycles m ~core Tp_hw.Bounds.destroy_bookkeeping_cost;
  Tp_obs.Counter.incr (stats ()).st_destroys;
  if Tp_obs.Trace.enabled () then
    Tp_obs.Trace.span ~core ~cat:"kernel" ~name:"kernel_destroy" ~ts:start
      ~dur:(System.now sys ~core - start)
      ~args:[ ("ki", Tp_obs.Trace.Int destroyed_ki) ]
      ()

let set_int sys ~image ~irq =
  let ki = the_image image in
  if ki.Types.ki_state <> Types.Ki_active then
    raise (Types.Kernel_error Types.Zombie_object);
  Irq.set_int (System.irq sys) ~irq ki;
  Klog.set_int ki ~irq;
  if not (List.mem irq ki.Types.ki_irqs) then
    ki.Types.ki_irqs <- irq :: ki.Types.ki_irqs

let set_pad _sys ~image ~cycles =
  let ki = the_image image in
  ki.Types.ki_pad_cycles <- cycles

let clone_cost_cycles _sys = !(Domain.DLS.get last_clone_cost)
