type body = Uctx.t -> unit

(* Bodies are user-level code, not kernel state, so they live beside
   the TCBs rather than inside them.  The map is domain-local: a
   Tp_par.Pool task must create (boot + spawn) every simulator it
   drives, so bodies registered by one worker are never looked up from
   another, and no lock is needed on this per-slice path. *)
let bodies_key : (int, body) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let bodies () = Domain.DLS.get bodies_key

let set_body tcb body = Hashtbl.replace (bodies ()) tcb.Types.t_id body

let make_runnable sys tcb =
  tcb.Types.t_state <- Types.Ts_ready;
  Sched.enqueue (System.sched sys) ~core:tcb.Types.t_core tcb

let bind_sched_context tcb sc = tcb.Types.t_sc <- Some sc

let default_slice_us = 10_000.0 (* 10 ms *)

(* MCS budget accounting (scheduling contexts, Lyons et al. 2018):
   a depleted thread stays off the ready queue until its replenishment
   time; the driver re-admits it at slice boundaries. *)
let replenish_ready sys ~core =
  let now = System.now sys ~core in
  List.iter
    (fun tcb ->
      match tcb.Types.t_sc with
      | Some sc
        when tcb.Types.t_core = core
             && tcb.Types.t_state = Types.Ts_ready
             && sc.Types.sc_remaining <= 0
             && sc.Types.sc_replenish_at <= now
             && not (Sched.is_queued (System.sched sys) ~core tcb) ->
          sc.Types.sc_remaining <- sc.Types.sc_budget;
          Sched.enqueue (System.sched sys) ~core tcb
      | Some _ | None -> ())
    (System.all_tcbs sys)

(* Effective slice for a thread: its scheduling context may grant less
   than the full tick. *)
let effective_slice tcb ~slice_cycles =
  match tcb.Types.t_sc with
  | Some sc -> Stdlib.max 1 (Stdlib.min slice_cycles sc.Types.sc_remaining)
  | None -> slice_cycles

(* Charge the thread's scheduling context for its runtime; returns
   whether the thread may be requeued now. *)
let charge_budget tcb ~ran ~now =
  match tcb.Types.t_sc with
  | None -> true
  | Some sc ->
      sc.Types.sc_remaining <- sc.Types.sc_remaining - ran;
      if sc.Types.sc_remaining <= 0 then begin
        sc.Types.sc_replenish_at <- now - ran + sc.Types.sc_period;
        false
      end
      else true

let pick_next sys ~core =
  let sched = System.sched sys in
  match Sched.dequeue_highest sched ~core with
  | Some tcb -> tcb
  | None -> begin
      (* No ready user thread: the current kernel's idle thread. *)
      let pc = System.per_core sys core in
      match pc.System.cur_kernel.Types.ki_idle with
      | Some idle -> idle
      | None -> begin
          match (System.initial_kernel sys).Types.ki_idle with
          | Some idle -> idle
          | None -> assert false
        end
    end

let one_slice sys ~core ~slice_cycles =
  replenish_ready sys ~core;
  let pc = System.per_core sys core in
  let next = pick_next sys ~core in
  ignore (Domain_switch.switch sys ~core ~to_:next);
  let run_start = System.now sys ~core in
  let slice_end = run_start + effective_slice next ~slice_cycles in
  pc.System.slice_end <- slice_end;
  let ctx = Uctx.make sys ~core next ~slice_end in
  (try
     (match Hashtbl.find_opt (bodies ()) next.Types.t_id with
     | Some body -> body ctx
     | None -> ());
     (* Early return: idle out the remainder of the slice. *)
     Uctx.idle_rest ctx
   with Uctx.Preempted -> ());
  (* Preemption tick arrives; charge the budget and requeue the thread
     for its next turn unless its scheduling context is depleted. *)
  let now = System.now sys ~core in
  let may_requeue = charge_budget next ~ran:(now - run_start) ~now in
  if (not next.Types.t_is_idle) && next.Types.t_state = Types.Ts_running then begin
    next.Types.t_state <- Types.Ts_ready;
    if may_requeue then Sched.enqueue (System.sched sys) ~core next
  end

let resolve_slice sys slice_cycles =
  match slice_cycles with
  | Some s -> s
  | None -> Tp_hw.Platform.us_to_cycles (System.platform sys) default_slice_us

let run sys ~core ?slice_cycles ~until () =
  let slice_cycles = resolve_slice sys slice_cycles in
  while System.now sys ~core < until do
    one_slice sys ~core ~slice_cycles
  done

let run_slices sys ~core ?slice_cycles ~slices () =
  let slice_cycles = resolve_slice sys slice_cycles in
  for _ = 1 to slices do
    one_slice sys ~core ~slice_cycles
  done

let run_concurrent sys ~cores ?slice_cycles ~rounds () =
  let slice_cycles = resolve_slice sys slice_cycles in
  for _ = 1 to rounds do
    List.iter (fun core -> one_slice sys ~core ~slice_cycles) cores
  done

(* Run one slice of a specific thread (or the current kernel's idle
   thread when [thread] is [None]) on a core. *)
let slice_of_thread sys ~core ~slice_cycles thread =
  let pc = System.per_core sys core in
  let next =
    match thread with
    | Some tcb -> tcb
    | None -> begin
        match pc.System.cur_kernel.Types.ki_idle with
        | Some idle -> idle
        | None -> Option.get (System.initial_kernel sys).Types.ki_idle
      end
  in
  ignore (Domain_switch.switch sys ~core ~to_:next);
  let slice_end = System.now sys ~core + slice_cycles in
  pc.System.slice_end <- slice_end;
  let ctx = Uctx.make sys ~core next ~slice_end in
  (try
     (match Hashtbl.find_opt (bodies ()) next.Types.t_id with
     | Some body -> body ctx
     | None -> ());
     Uctx.idle_rest ctx
   with Uctx.Preempted -> ());
  if (not next.Types.t_is_idle) && next.Types.t_state = Types.Ts_running then begin
    next.Types.t_state <- Types.Ts_ready;
    Sched.enqueue (System.sched sys) ~core next
  end

let run_coscheduled sys ~cores ?slice_cycles ~rounds () =
  let slice_cycles = resolve_slice sys slice_cycles in
  let sched = System.sched sys in
  let rotation = ref [] in
  for _ = 1 to rounds do
    (* Refresh the domain rotation from whatever is currently ready. *)
    (if !rotation = [] then
       let doms =
         List.sort_uniq compare
           (List.concat_map (fun core -> Sched.domains_present sched ~core) cores)
       in
       rotation := doms);
    match !rotation with
    | [] ->
        (* Nothing ready anywhere: idle a slice on every core. *)
        List.iter
          (fun core -> slice_of_thread sys ~core ~slice_cycles None)
          cores
    | dom :: rest ->
        rotation := rest;
        List.iter
          (fun core ->
            let th = Sched.dequeue_domain sched ~core ~domain:dom in
            slice_of_thread sys ~core ~slice_cycles th)
          cores
  done
