(** The preemption-tick / domain-switch path (§4.3).

    The steps, in the paper's order (bold = kernel-switch only):

    + acquire the kernel lock
    + process the timer tick normally
    + {b mask interrupts}
    + {b switch the kernel stack} (after copying it)
    + switch thread context (implicitly switching the kernel image)
    + release the kernel lock
    + {b unmask interrupts of the new kernel}
    + {b flush on-core microarchitectural state}
    + {b pre-fetch shared kernel data}
    + {b poll the cycle counter for the configured latency (padding)}
    + reprogram the timer interrupt
    + restore the user stack pointer and return

    A "kernel switch" happens when the destination thread's
    [Kernel_Image] differs from the current one; in the (uncloned)
    full-flush configuration the flush steps run on any {e domain}
    crossing instead.  Padding is taken from the {e outgoing} kernel's
    configured pad. *)

type cost = {
  total : int;  (** cycles from tick arrival to user return *)
  flush : int;  (** cycles spent in flush operations *)
  pad_wait : int;  (** cycles spent polling for the pad target *)
  kernel_switched : bool;
}

val fixed_overhead_cycles : int
(** Cycles the switch path always spends outside memory traffic (lock
    acquire/release, timer reprogramming, user return) — a component
    of the linter's analytic worst-case switch bound. *)

val dram_close_cost : int
(** Fixed cost charged for the hypothetical all-banks DRAM precharge
    ([close_dram_rows]). *)

val counters : unit -> Tp_obs.Counter.set
(** The switch-path performance-counter set (["kernel.switch"]:
    switches, kernel_switches, protected, flush_cycles,
    pad_wait_cycles, pad_overruns).  Observability only — the switch
    logic never reads it.  Every switch also feeds
    {!Tp_obs.Padprof.record} and, when tracing, emits a
    ["domain_switch"] span. *)

val switch : System.t -> core:int -> to_:Types.tcb -> cost
(** Perform the tick: switches [per_core] state to [to_] (and its
    kernel), running whatever protection steps the configuration and
    the domain crossing require. *)

val l1_flush_cost : System.t -> core:int -> int
(** Perform just the platform's L1 flush operation (hardware flush on
    Arm, the "manual" load/jump flush on x86) and return its cost —
    the Table 2 measurement primitive.  Uses the current kernel's
    flush buffers. *)

val full_flush_cost : System.t -> core:int -> int
(** Perform the maximal architected flush (whole hierarchy + TLB + BP)
    and return its cost (Table 2, "full flush" row). *)
