(** The leakage certifier ([tpsim certify]).

    From the linter's pure {!Lint.view} of a booted system, derive a
    {e sound upper bound} in bits on what one domain can transfer to
    another through each microarchitectural channel, specialised by
    the configuration: scrubbed or spatially partitioned channels
    certify to 0 bits, open channels to their structural capacity (or
    to the {!Absint} program footprint when a guest program is given).
    A second, independent engine does small-scope model checking on a
    {!Tp_hw.Shrink} machine — exhaustive two-domain schedules, checked
    for observational determinism across victim secrets — and the two
    cross-validate ({!crosscheck}).

    The certificate covers exactly five channels (L1-D, L1-I, TLB,
    branch predictor, physically-indexed outer caches) plus the
    pad-slack timing pseudo-channel; {!exclusions} names what it does
    {e not} cover (prefetcher stream state, DRAM rows, interconnect
    contention, interrupt timing). *)

(** {1 Rule identifiers} *)

val rule_l1d_residue : string
val rule_l1i_residue : string
val rule_tlb_residue : string
val rule_btb_residue : string
val rule_llc_residue : string

val rule_pad_timing : string
(** ["CERT-PAD-TIMING"]: effective pad below the analytic worst-case
    switch cost — residual timing bits. *)

val rule_noninterference : string
(** ["CERT-NONINTERFERENCE"]: the exhaustive check found a concrete
    distinguishing schedule. *)

val rule_xcheck : string
(** ["CERT-XCHECK-EXHAUSTIVE"]: a 0-bit certificate contradicted by an
    exhaustive counterexample — the certifier itself is unsound for
    this configuration. *)

(** {1 Certificates} *)

type channel = L1d | L1i | Tlb | Bp | Llc

val channel_name : channel -> string
val channel_rule : channel -> string

type bound = {
  b_channel : channel;
  b_raw : int;  (** bits reachable with no protection at all *)
  b_bits : int;  (** certified bound under this configuration *)
  b_scrubbed : bool;
  b_note : string;
}

type cert = {
  c_subject : string;
  c_platform : string;
  c_config : Tp_kernel.Config.t;
  c_n_domains : int;
  c_bounds : bound list;
  c_timing_bits : int;
  c_pad_bound : int;
  c_pad_effective : int;
  c_program : string option;
  c_exclusions : string list;
}

val state_bits : cert -> int
val total_bits : cert -> int

val ceil_log2 : int -> int
(** Bits needed to index [n] distinguishable outcomes:
    [ceil_log2 n = ⌈log₂ n⌉], with [ceil_log2 n = 0] for [n <= 1].
    Shared by the pad-slack bound here and the kernel-path certifier
    ({!Kcert}). *)

val exclusions : string list

val certify_view :
  ?subject:string ->
  ?program_summary:Absint.summary ->
  ?program_name:string ->
  Lint.view ->
  cert
(** Certify a configuration from its view.  With [program_summary],
    per-channel raw capacities are tightened to the program's abstract
    footprint.  Pure: no machine traffic. *)

val certify_static : ?subject:string -> Tp_kernel.Boot.booted -> cert
(** {!certify_view} of {!Lint.view_of_booted} — safe to call from
    inside a measurement (the attack harness records one per run). *)

val certify_fixture : ?subject:string -> Lint.view -> Ctcheck.fixture -> cert
(** Program-level certificate: {!Absint.analyse} the fixture's program
    and certify its footprint under the view's configuration. *)

val report : cert -> Diag.report
(** Findings for every non-zero channel bound ([CERT-*-RESIDUE]) and
    for residual timing bits ([CERT-PAD-TIMING]); clean iff the
    certificate is 0 bits overall. *)

val pp : Format.formatter -> cert -> unit
val cert_to_json : cert -> string
val certs_to_json : cert list -> string

(** {1 Small-scope exhaustive noninterference check} *)

val small_victim : Ct_ir.program
(** The square-and-multiply-shaped victim the check runs: every secret
    bit gates an L1-filling sweep, extra TLB pressure, and extra
    branch activity. *)

type counterexample = {
  cx_schedule : string;  (** e.g. ["VAVA"]: victim/attacker turns *)
  cx_secret_a : int;
  cx_secret_b : int;
  cx_turn : int;  (** attacker-turn ordinal within the schedule *)
  cx_index : int;  (** observation index; 0 is the turn timestamp *)
  cx_obs_a : int;
  cx_obs_b : int;
}

type exhaustive_result = {
  ex_platform : string;  (** the shrunken platform's name *)
  ex_domains : int;  (** 2, or 3 with the public neighbour *)
  ex_horizon : int;
  ex_schedules : int;
  ex_secrets : int list;
  ex_counterexample : counterexample option;  (** [None] = passed *)
}

(** {2 Kernel lifecycle paths}

    Which lifted kernel path a kernel certificate (and its exhaustive
    cross-check) covers.  The 'D' turn of a 3-domain schedule is the
    kernel acting on the neighbour's behalf: a plain domain switch, a
    clone of its kernel image ({!Tp_hw.Shrink.clone_op}), or the
    teardown of one ({!Tp_hw.Shrink.destroy_op}). *)

type kernel_path = Switch | Clone | Destroy

val kernel_path_slug : kernel_path -> string
(** ["switch"] / ["clone"] / ["destroy"] — the artifact-name and JSON
    spelling. *)

val all_kernel_paths : kernel_path list
(** [[Switch; Clone; Destroy]], the full certification matrix. *)

val exhaustive : Tp_hw.Platform.t -> Tp_kernel.Config.t -> exhaustive_result
(** Enumerate every two-domain schedule of the horizon on the
    {!Tp_hw.Shrink.tiny} machine; run the victim under each secret;
    require every attacker observation (timestamps, probe latencies,
    branch latencies) to be identical across secrets.  The domain
    switch applies the configuration's flushes ({!Tp_hw.Shrink.apply})
    and pads each turn to [pad_cycles].  DRAM rows are always
    precharged — the row-buffer channel is outside the certified scope
    ({!exclusions}). *)

val exhaustive3 : Tp_hw.Platform.t -> Tp_kernel.Config.t -> exhaustive_result
(** {!exhaustive} over {e three}-domain schedules: victim, attacker,
    and a deterministic public neighbour that makes no observations but
    whose secret-perturbed footprint can relay state to a later
    attacker turn (the transitive V→D→A channel).  The neighbour runs
    on the attacker's page parity — the 2-colour shrink cannot give
    three domains disjoint colours, exactly as a real 2-colour
    allocation folds extra domains onto existing colours.  This is the
    confirmation required for kernel-path certificates. *)

val exhaustive3_path :
  kernel_path -> Tp_hw.Platform.t -> Tp_kernel.Config.t -> exhaustive_result
(** {!exhaustive3} with the neighbour's 'D' turn replaced by the given
    lifecycle operation ([Switch] is exactly {!exhaustive3}): the
    cross-check for clone- and destroy-path kernel certificates. *)

val exhaustive_for :
  ?path:kernel_path ->
  domains:int -> Tp_hw.Platform.t -> Tp_kernel.Config.t -> exhaustive_result
(** Generalisation behind {!exhaustive}/{!exhaustive3}
    ([2 <= domains <= 3]; [path] defaults to [Switch]). *)

val exhaustive_findings : exhaustive_result -> Diag.finding list
(** [CERT-NONINTERFERENCE] with the concrete distinguishing schedule,
    or [] when the check passed. *)

val crosscheck : cert -> exhaustive_result -> Diag.finding list
(** [CERT-XCHECK-EXHAUSTIVE] when a 0-bit certificate coexists with a
    counterexample. *)

val exhaustive_to_json : exhaustive_result -> string
(** Canonical JSON for an exhaustive result, embedded in certificate
    artifacts and the [certify --json] output. *)
