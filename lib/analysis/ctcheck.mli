(** Constant-time checker: static secret-taint dataflow over the
    {!Ct_ir} IR, cross-checked dynamically on the machine model.

    The static pass propagates a two-point taint lattice
    ([Public < Secret]) through registers, arrays and the program
    counter and flags the two classic constant-time violations:

    - ["CT-BRANCH-SECRET"]: a branch condition depends on a secret
      (directly, or via a secret-tainted program counter);
    - ["CT-ADDR-SECRET"]: a load/store address depends on a secret.

    The dynamic cross-check runs the program twice on a fresh
    {!Tp_hw.Machine} with different values for the secret parameters
    and diffs the address/branch traces: a program whose footprint
    differs under two secrets demonstrably leaks through the
    microarchitectural channels this repo measures, and a clean static
    verdict should imply identical traces.

    {!fixtures} contains the §5.3.3 square-and-multiply victim, its
    constant-time rewrite, and a table-lookup pair, each with two
    secret assignments and the expected verdict. *)

val rule_branch_secret : string
val rule_addr_secret : string

val rule_crosscheck : string
(** ["CT-CROSSCHECK-DISAGREE"]: static and dynamic verdicts differ. *)

val rule_expectation : string
(** ["CT-EXPECTATION"]: verdict contradicts a fixture's ground truth. *)

(** {1 Static pass} *)

val static_findings : Ct_ir.program -> Diag.finding list
(** Taint-dataflow findings, deduplicated per (rule, site).  Loops are
    iterated to a fixpoint (the lattice is finite and the transfer
    monotone). *)

val static_ct : Ct_ir.program -> bool
(** [static_findings] is empty. *)

(** {1 Fixtures and verdicts} *)

type fixture = {
  fx_program : Ct_ir.program;
  fx_public : (Ct_ir.reg * int) list;  (** shared public inputs *)
  fx_secret_a : (Ct_ir.reg * int) list;  (** first secret assignment *)
  fx_secret_b : (Ct_ir.reg * int) list;  (** second secret assignment *)
  fx_expect_ct : bool;  (** ground truth *)
}

val fixtures : fixture list
(** [sqmul] (the §5.3.3 square-and-multiply victim), [sqmul-ct]
    (always-multiply + arithmetic select), [sbox-lookup]
    (secret-indexed table), [sbox-ct] (full-table scan + arithmetic
    select). *)

val fixture : string -> fixture option
(** Look up a fixture by program name. *)

type verdict = {
  v_name : string;
  v_static : Diag.finding list;
  v_static_ct : bool;
  v_trace_equal : bool;  (** dynamic: traces identical under both secrets *)
  v_divergence : (int * string) option;
  v_events : int;  (** events per trace (first run) *)
  v_agrees : bool;  (** static verdict = dynamic verdict *)
  v_expected : bool option;  (** ground truth if known *)
  v_pass : bool;  (** agrees, and matches ground truth when known *)
}

val check :
  Tp_hw.Platform.t -> ?expect:bool -> Ct_ir.program ->
  public:(Ct_ir.reg * int) list ->
  secret_a:(Ct_ir.reg * int) list ->
  secret_b:(Ct_ir.reg * int) list ->
  verdict
(** Static pass + two executions on a fresh machine + trace diff.
    @raise Invalid_argument if the two secret assignments do not cover
    exactly the program's [Secret] parameters. *)

val check_fixture : Tp_hw.Platform.t -> fixture -> verdict

val report : Tp_hw.Platform.t -> verdict -> Diag.report
(** Render a verdict as a diagnostic report: the static findings, an
    error if static and dynamic verdicts disagree or contradict the
    ground truth, and an info line with the dynamic evidence. *)
