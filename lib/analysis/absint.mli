(** Abstract interpretation of {!Ct_ir} programs over abstract
    microarchitectural state — the program-level engine behind
    [tpsim certify].

    The value domain is an interval with a secret-taint flag; the
    machine domains mirror {!Tp_hw} set-wise (CacheAudit-style): per
    set, the tags possibly resident, the tags whose residency may
    depend on the secret, and the tags definitely resident in every
    execution.  A set's leakage is the number of possibly-resident
    secret-dependent tags not covered by the must set, capped by the
    associativity; a structure's leakage is the sum over its sets.
    The result is a {e sound upper bound} on the residency information
    the program can deposit in each structure, in bits, for the
    {e unprotected} machine — configuration-dependent scrubbing is
    applied on top by {!Certify}. *)

type summary = {
  sm_l1d : int;  (** L1-D residency bits *)
  sm_l1i : int;  (** L1-I residency bits *)
  sm_tlb : int;  (** TLB bits (I + D + unified L2, summed) *)
  sm_bp : int;  (** branch-predictor bits (2 per secret site) *)
  sm_llc : int;  (** physically-indexed outer levels (L2 + LLC) *)
  sm_secret_sites : int list;
      (** branch sites reached under secret control or with a
          secret-dependent direction *)
}

val zero_summary : summary

val analyse :
  ?arrays_at:(string * int) list ->
  ?code_at:int ->
  Tp_hw.Platform.t ->
  Ct_ir.program ->
  public:(Ct_ir.reg * int) list ->
  summary
(** Analyse [p] on the given platform geometry.  [public] supplies
    concrete values for public parameters (unlisted public parameters
    are unknown-but-public); [Secret] parameters are unknown and
    tainted.  [arrays_at]/[code_at] pin the data/code layout exactly as
    {!Ct_ir.execute} does, so the abstract footprint and a dynamic run
    see the same addresses.

    Loops with interval-decided public bounds are unrolled concretely
    (bounded by a global fuel); all other control flow runs a
    join/widen fixpoint, so the analysis terminates on every program,
    including ones whose dynamic execution would not. *)

(** {1 Kernel-trace back-end}

    The engine behind {!Kcert}: the lifted switch/clone/destroy access
    traces are driven through the same abstract structures and the same
    touch/join rules as the Ct_ir analysis, so the must-coverage
    soundness argument lives in one place.  A fixed access pins its
    granules in every execution; a variable access (allocation- or
    schedule-dependent address) contributes may-residency only — it
    neither earns coverage nor destroys a must fact. *)

type kaccess = {
  ka_vaddr : int;
  ka_bytes : int;
  ka_fetch : bool;  (** instruction side (L1-I/ITLB) vs data side *)
  ka_fixed : bool;  (** same address in every execution of the path *)
}

type kcoverage = {
  kc_l1d : int;
  kc_l1i : int;
  kc_dtlb : int;
  kc_itlb : int;
  kc_l2tlb : int;
  kc_l2 : int;  (** 0 when the platform has no private L2 *)
  kc_llc : int;
}

val cover_trace : Tp_hw.Platform.t -> kaccess list -> kcoverage
(** Set-wise must-coverage of a lifted kernel trace: per structure,
    [sum over sets of min(|must granules|, ways)] — k distinct
    deterministic granules in a w-way set pin [min(k, w)] ways. *)

val btb_coverage : Tp_hw.Btb.geometry -> int list -> int
(** Must-coverage earned by the kernel's deterministic taken jumps:
    each fixed site leaves its (site, target) entry MRU in the set
    {!Tp_hw.Btb.set_of_addr} places it in, so k distinct sites in a
    w-way set pin [min(k, w)] ways. *)

val pht_coverage : Tp_hw.Bhb.geometry -> (int * bool * int) list -> int
(** Must-coverage earned by a deterministic conditional-branch trace
    (run-length encoded as [(site, taken, repeat)] triples), via an
    interval abstraction of the 2-bit counters under the gshare hash
    {!Tp_hw.Bhb.index_of}.  Starting from unknown counters and an
    unknown global history, an entry counts as covered when the trace
    forces its final prediction regardless of prior state.  Never
    exceeds [pht_entries] (QCheck-tested). *)
