(** Abstract interpretation of {!Ct_ir} programs over abstract
    microarchitectural state — the program-level engine behind
    [tpsim certify].

    The value domain is an interval with a secret-taint flag; the
    machine domains mirror {!Tp_hw} set-wise (CacheAudit-style): per
    set, the tags possibly resident, the tags whose residency may
    depend on the secret, and the tags definitely resident in every
    execution.  A set's leakage is the number of possibly-resident
    secret-dependent tags not covered by the must set, capped by the
    associativity; a structure's leakage is the sum over its sets.
    The result is a {e sound upper bound} on the residency information
    the program can deposit in each structure, in bits, for the
    {e unprotected} machine — configuration-dependent scrubbing is
    applied on top by {!Certify}. *)

type summary = {
  sm_l1d : int;  (** L1-D residency bits *)
  sm_l1i : int;  (** L1-I residency bits *)
  sm_tlb : int;  (** TLB bits (I + D + unified L2, summed) *)
  sm_bp : int;  (** branch-predictor bits (2 per secret site) *)
  sm_llc : int;  (** physically-indexed outer levels (L2 + LLC) *)
  sm_secret_sites : int list;
      (** branch sites reached under secret control or with a
          secret-dependent direction *)
}

val zero_summary : summary

val analyse :
  ?arrays_at:(string * int) list ->
  ?code_at:int ->
  Tp_hw.Platform.t ->
  Ct_ir.program ->
  public:(Ct_ir.reg * int) list ->
  summary
(** Analyse [p] on the given platform geometry.  [public] supplies
    concrete values for public parameters (unlisted public parameters
    are unknown-but-public); [Secret] parameters are unknown and
    tainted.  [arrays_at]/[code_at] pin the data/code layout exactly as
    {!Ct_ir.execute} does, so the abstract footprint and a dynamic run
    see the same addresses.

    Loops with interval-decided public bounds are unrolled concretely
    (bounded by a global fuel); all other control flow runs a
    join/widen fixpoint, so the analysis terminates on every program,
    including ones whose dynamic execution would not. *)
