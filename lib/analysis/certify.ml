(* The leakage certifier behind `tpsim certify`.

   Two cooperating halves:

   - {b certify_view}: from the same pure {!Lint.view} the partition
     linter uses, derive a sound per-channel upper bound (in bits) on
     what one domain can transfer to another through each
     microarchitectural channel, specialised by the configuration:
     a channel scrubbed on every domain switch (flush), or spatially
     partitioned (colouring + kernel clone, CAT), certifies to 0 bits;
     an open channel certifies to its structural capacity — or, when a
     concrete guest program is supplied, to the {!Absint} footprint
     bound, whichever is smaller.

   - {b exhaustive}: small-scope model checking on a {!Tp_hw.Shrink}
     machine: enumerate every two-domain schedule of a short horizon,
     run a leaky victim under each of several secrets, and require
     every attacker observation (absolute timestamps and probe/branch
     latencies) to be bit-identical across secrets — observational
     determinism.  A failure yields a concrete distinguishing schedule.

   The two cross-validate: a certificate of 0 bits must imply the
   exhaustive check passes ({!crosscheck} emits
   [CERT-XCHECK-EXHAUSTIVE] when it does not), and measured MI on any
   harness fixture must stay below the certified bound (asserted in
   the test suite).

   What the certificate does {e not} cover is stated, not implied:
   {!exclusions} lists the residual channels outside the five certified
   ones — prefetcher stream state (the §5.3.2 residual this repo
   reproduces), DRAM row buffers, interconnect contention, and
   interrupt arrival timing. *)

module C = Tp_kernel.Config
module P = Tp_hw.Platform

(* ------------------------------------------------------------------ *)
(* Rule identifiers                                                    *)

let rule_l1d_residue = "CERT-L1D-RESIDUE"
let rule_l1i_residue = "CERT-L1I-RESIDUE"
let rule_tlb_residue = "CERT-TLB-RESIDUE"
let rule_btb_residue = "CERT-BTB-RESIDUE"
let rule_llc_residue = "CERT-LLC-RESIDUE"
let rule_pad_timing = "CERT-PAD-TIMING"
let rule_noninterference = "CERT-NONINTERFERENCE"
let rule_xcheck = "CERT-XCHECK-EXHAUSTIVE"

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

type channel = L1d | L1i | Tlb | Bp | Llc

let channel_name = function
  | L1d -> "L1-D"
  | L1i -> "L1-I"
  | Tlb -> "TLB"
  | Bp -> "branch-predictor"
  | Llc -> "LLC"

let channel_rule = function
  | L1d -> rule_l1d_residue
  | L1i -> rule_l1i_residue
  | Tlb -> rule_tlb_residue
  | Bp -> rule_btb_residue
  | Llc -> rule_llc_residue

type bound = {
  b_channel : channel;
  b_raw : int;  (** bits reachable with no protection at all *)
  b_bits : int;  (** certified bound under this configuration *)
  b_scrubbed : bool;
  b_note : string;  (** why the bound is what it is *)
}

type cert = {
  c_subject : string;
  c_platform : string;
  c_config : C.t;
  c_n_domains : int;
  c_bounds : bound list;
  c_timing_bits : int;
      (** pad-slack pseudo-channel: 0 when the effective pad covers the
          analytic worst-case switch cost *)
  c_pad_bound : int;
  c_pad_effective : int;
  c_program : string option;  (** program-level bound, if any *)
  c_exclusions : string list;
}

let state_bits c = List.fold_left (fun a b -> a + b.b_bits) 0 c.c_bounds
let total_bits c = state_bits c + c.c_timing_bits

let exclusions =
  [
    "prefetcher stream state: no architected flush exists (the \
     \xc2\xa75.3.2 residual channel this repo reproduces); certified \
     only when the prefetcher is absent or disabled";
    "DRAM row-buffer state: the bank hash defeats page colouring and \
     no architected precharge-all exists (\xc2\xa72.2 taxonomy)";
    "interconnect/bus contention: a concurrent-execution channel, \
     closed by gang scheduling, not by switch-time scrubbing \
     (\xc2\xa76.1)";
    "interrupt arrival timing: bounded by IRQ partitioning policy, \
     not by this certificate (\xc2\xa75.3.5)";
  ]

let ceil_log2 n =
  if n <= 1 then 0
  else
    let rec go k acc = if acc >= n then k else go (k + 1) (2 * acc) in
    go 0 1

let cache_lines (g : Tp_hw.Cache.geometry) = Tp_hw.Cache.sets g * g.ways

(* Structural facts from the view: is the claimed spatial partition
   actually in force?  (Same facts the linter checks; recomputed here
   so a certificate never depends on finding ordering.) *)

let rec pairwise f = function
  | [] | [ _ ] -> true
  | x :: tl -> List.for_all (f x) tl && pairwise f tl

let colour_partition_ok (v : Lint.view) =
  v.v_config.colour_user
  && pairwise
       (fun a b -> Tp_kernel.Colour.disjoint a.Lint.dv_colours b.Lint.dv_colours)
       v.v_domains

let clone_ok (v : Lint.view) =
  v.v_config.clone_kernel
  && List.for_all
       (fun d ->
         d.Lint.dv_kernel <> v.v_initial_kernel
         && List.for_all (fun (_, k) -> k = d.Lint.dv_kernel) d.dv_thread_kernels)
       v.v_domains
  && pairwise (fun a b -> a.Lint.dv_kernel <> b.Lint.dv_kernel) v.v_domains

let cat_ok (v : Lint.view) =
  v.v_config.cat_llc
  && List.for_all (fun d -> d.Lint.dv_cat_mask <> None) v.v_domains
  && pairwise
       (fun a b ->
         match (a.Lint.dv_cat_mask, b.Lint.dv_cat_mask) with
         | Some m1, Some m2 -> m1 land m2 = 0
         | _ -> false)
       v.v_domains

(* Effective pad: the configured pad floor and every domain kernel's
   own pad attribute — the minimum is what a switch actually pads to
   (mirrors the linter's pad-sufficiency check). *)
let effective_pad (v : Lint.view) =
  let kv_pads =
    List.filter_map
      (fun d ->
        List.find_opt (fun k -> k.Lint.kv_id = d.Lint.dv_kernel) v.v_kernels)
      v.v_domains
    |> List.map (fun k -> k.Lint.kv_pad)
  in
  List.fold_left min v.v_pad kv_pads

let certify_view ?subject ?program_summary ?program_name (v : Lint.view) =
  let p = v.v_platform and cfg = v.v_config in
  let n_domains = List.length v.v_domains in
  let partitioned = colour_partition_ok v && clone_ok v in
  let sm = program_summary in
  let cap_l1d = cache_lines p.l1d
  and cap_l1i = cache_lines p.l1i
  and cap_tlb = p.itlb.entries + p.dtlb.entries + p.l2tlb.entries
  and cap_bp = p.btb.entries + p.bhb.pht_entries
  and cap_l2 = match p.l2 with Some g -> cache_lines g | None -> 0
  and cap_llc = cache_lines p.llc in
  (* Program-level footprints tighten the structural capacities. *)
  let raw_of cap f =
    match sm with Some s -> min cap (f s) | None -> cap
  in
  let raw_l1d = raw_of cap_l1d (fun s -> s.Absint.sm_l1d)
  and raw_l1i = raw_of cap_l1i (fun s -> s.Absint.sm_l1i)
  and raw_tlb = raw_of cap_tlb (fun s -> s.Absint.sm_tlb)
  and raw_bp = raw_of cap_bp (fun s -> s.Absint.sm_bp)
  and raw_outer = raw_of (cap_l2 + cap_llc) (fun s -> s.Absint.sm_llc) in
  (* The outer-cache channel splits: colouring + kernel clone partition
     both physically-indexed levels; CAT partitions the LLC ways only
     and leaves a private L2 untouched (§2.3). *)
  let l2_raw = min raw_outer cap_l2 in
  let llc_raw = raw_outer - l2_raw in
  let l2_closed = cfg.flush_llc || cfg.flush_l2 || partitioned in
  let llc_closed = cfg.flush_llc || partitioned || cat_ok v in
  let single = n_domains < 2 in
  let mk_bound ch raw closed note =
    let closed = closed || single in
    {
      b_channel = ch;
      b_raw = raw;
      b_bits = (if closed then 0 else raw);
      b_scrubbed = closed;
      b_note = (if single then "fewer than two domains: no receiver" else note);
    }
  in
  let flush_note flag = Printf.sprintf "scrubbed on every switch (%s)" flag in
  let open_note what = Printf.sprintf "open: %s survive the switch" what in
  let bounds =
    [
      mk_bound L1d raw_l1d
        (cfg.flush_l1 || cfg.flush_llc)
        (if cfg.flush_l1 || cfg.flush_llc then flush_note "flush_l1"
         else open_note "data lines");
      mk_bound L1i raw_l1i
        (cfg.flush_l1 || cfg.flush_llc)
        (if cfg.flush_l1 || cfg.flush_llc then flush_note "flush_l1"
         else open_note "instruction lines");
      mk_bound Tlb raw_tlb cfg.flush_tlb
        (if cfg.flush_tlb then flush_note "flush_tlb"
         else open_note "translations");
      mk_bound Bp raw_bp cfg.flush_bp
        (if cfg.flush_bp then flush_note "flush_bp"
         else open_note "BTB entries and PHT counters");
      (let closed = l2_closed && llc_closed in
       let bits =
         (if l2_closed || single then 0 else l2_raw)
         + if llc_closed || single then 0 else llc_raw
       in
       let note =
         if single then "fewer than two domains: no receiver"
         else if cfg.flush_llc then flush_note "flush_llc"
         else if partitioned then
           "partitioned by page colour (coloured userland + cloned kernel)"
         else if cat_ok v && not l2_closed then
           "CAT masks partition the LLC ways but leave the private L2 open"
         else if closed then "flushed/partitioned at every level"
         else open_note "physically-indexed lines"
       in
       {
         b_channel = Llc;
         b_raw = l2_raw + llc_raw;
         b_bits = bits;
         b_scrubbed = (bits = 0);
         b_note = note;
       });
    ]
  in
  let pad_bound = Lint.pad_bound p cfg in
  let pad_eff = effective_pad v in
  let timing_bits =
    if (not single) && pad_eff < pad_bound then
      ceil_log2 (pad_bound - pad_eff + 1)
    else 0
  in
  {
    c_subject =
      (match subject with
      | Some s -> s
      | None -> Printf.sprintf "certify %s" p.name);
    c_platform = p.name;
    c_config = cfg;
    c_n_domains = n_domains;
    c_bounds = bounds;
    c_timing_bits = timing_bits;
    c_pad_bound = pad_bound;
    c_pad_effective = pad_eff;
    c_program = program_name;
    c_exclusions = exclusions;
  }

let certify_static ?subject b =
  certify_view ?subject (Lint.view_of_booted b)

let certify_fixture ?subject (v : Lint.view) (f : Ctcheck.fixture) =
  let s =
    Absint.analyse v.v_platform f.fx_program ~public:f.fx_public
  in
  let subject =
    match subject with
    | Some s -> s
    | None ->
        Printf.sprintf "certify %s %s" v.v_platform.name f.fx_program.p_name
  in
  certify_view ~subject ~program_summary:s
    ~program_name:f.fx_program.p_name v

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let report (c : cert) =
  let findings =
    List.filter_map
      (fun b ->
        if b.b_bits = 0 then None
        else
          Some
            (Diag.error ~rule:(channel_rule b.b_channel)
               ~context:
                 [
                   ("bits", string_of_int b.b_bits);
                   ("raw_bits", string_of_int b.b_raw);
                   ("note", b.b_note);
                 ]
               (Printf.sprintf
                  "%s channel not closed by this configuration: certified \
                   bound %d bits (%s)"
                  (channel_name b.b_channel) b.b_bits b.b_note)))
      c.c_bounds
  in
  let findings =
    if c.c_timing_bits = 0 then findings
    else
      findings
      @ [
          Diag.error ~rule:rule_pad_timing
            ~context:
              [
                ("bits", string_of_int c.c_timing_bits);
                ("pad_effective", string_of_int c.c_pad_effective);
                ("pad_bound", string_of_int c.c_pad_bound);
              ]
            (Printf.sprintf
               "switch latency underpadded: effective pad %d < worst-case %d \
                \xe2\x87\x92 up to %d timing bits per switch"
               c.c_pad_effective c.c_pad_bound c.c_timing_bits);
        ]
  in
  { Diag.subject = c.c_subject; findings }

let pp ppf (c : cert) =
  Format.fprintf ppf "%s: certified leakage bound %d bits (%s)@." c.c_subject
    (total_bits c)
    (if total_bits c = 0 then "tight: noninterference" else "residue");
  (match c.c_program with
  | Some p -> Format.fprintf ppf "  program: %s (footprint-tightened)@." p
  | None -> Format.fprintf ppf "  program: none (structural capacities)@.");
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-16s %5d bits (raw %5d)  %s@."
        (channel_name b.b_channel) b.b_bits b.b_raw b.b_note)
    c.c_bounds;
  Format.fprintf ppf "  %-16s %5d bits (pad %d vs bound %d)@." "timing"
    c.c_timing_bits c.c_pad_effective c.c_pad_bound;
  Format.fprintf ppf "  not covered:@.";
  List.iter (fun e -> Format.fprintf ppf "    - %s@." e) c.c_exclusions

let channel_json (b : bound) =
  Printf.sprintf
    "{\"channel\":\"%s\",\"bits\":%d,\"raw_bits\":%d,\"scrubbed\":%b,\"note\":\"%s\"}"
    (Diag.json_escape (channel_name b.b_channel))
    b.b_bits b.b_raw b.b_scrubbed (Diag.json_escape b.b_note)

let cert_to_json (c : cert) =
  Printf.sprintf
    "{\"subject\":\"%s\",\"platform\":\"%s\",\"domains\":%d,\"certified_bits\":%d,\"state_bits\":%d,\"timing_bits\":%d,\"pad_effective\":%d,\"pad_bound\":%d,%s\"channels\":[%s],\"exclusions\":[%s]}"
    (Diag.json_escape c.c_subject)
    (Diag.json_escape c.c_platform)
    c.c_n_domains (total_bits c) (state_bits c) c.c_timing_bits
    c.c_pad_effective c.c_pad_bound
    (match c.c_program with
    | Some p -> Printf.sprintf "\"program\":\"%s\"," (Diag.json_escape p)
    | None -> "")
    (String.concat "," (List.map channel_json c.c_bounds))
    (String.concat ","
       (List.map (fun e -> "\"" ^ Diag.json_escape e ^ "\"") c.c_exclusions))

let certs_to_json cs =
  Printf.sprintf "[%s]" (String.concat ",\n" (List.map cert_to_json cs))

(* ------------------------------------------------------------------ *)
(* Small-scope exhaustive noninterference check                        *)

(* The victim: a square-and-multiply-shaped loop over the secret's
   bits.  Every iteration touches two lines of [a]; a set bit
   additionally sweeps all of [b] (filling the tiny L1-D), touches the
   [c] and [d] pages (TLB pressure: 4 data pages vs a 4-entry DTLB)
   and runs a second loop (extra branch sites, I-fetches, PHT
   updates). *)
let small_victim : Ct_ir.program =
  {
    p_name = "cert-victim";
    p_arrays = [ ("a", 64); ("b", 64); ("c", 8); ("d", 8) ];
    p_params = [ (0, "key", Secret); (1, "nbits", Public) ];
    p_body =
      [
        Set (2, Int 0);
        While
          ( Bin (Lt, Reg 2, Reg 1),
            [
              Load (3, "a", Int 0);
              Load (3, "a", Int 8);
              Set (4, Bin (And, Bin (Shr, Reg 0, Reg 2), Int 1));
              If
                ( Reg 4,
                  [
                    Set (5, Int 0);
                    While
                      ( Bin (Lt, Reg 5, Int 64),
                        [
                          Load (6, "b", Reg 5);
                          Set (5, Bin (Add, Reg 5, Int 8));
                        ] );
                    Load (6, "c", Int 0);
                    Load (6, "d", Int 0);
                  ],
                  [] );
              Set (2, Bin (Add, Reg 2, Int 1));
            ] );
      ];
  }

type counterexample = {
  cx_schedule : string;
  cx_secret_a : int;
  cx_secret_b : int;
  cx_turn : int;  (** attacker-turn ordinal within the schedule *)
  cx_index : int;  (** observation index within that turn *)
  cx_obs_a : int;
  cx_obs_b : int;
}

type exhaustive_result = {
  ex_platform : string;
  ex_domains : int;
  ex_horizon : int;
  ex_schedules : int;
  ex_secrets : int list;
  ex_counterexample : counterexample option;
}

let horizon = 4
let secrets = [ 0; 5; 10; 15 ]

(* One attacker turn: the absolute timestamp, a prime+probe pass over
   two even pages (its colour under the 2-colour shrink), and four
   conditional branches.  Latencies expose L1-D/TLB/L2/LLC residency;
   branch latencies expose PHT state; the timestamp exposes padding
   failures. *)
let attacker_turn m ~core tiny =
  let obs = ref [ Tp_hw.Machine.cycles m ~core ] in
  for pg = 0 to 1 do
    let base = 0x3000_0000 + (pg * 2 * Tp_hw.Defs.page_size) in
    let lines = Tp_hw.Defs.page_size / tiny.P.line in
    for i = 0 to lines - 1 do
      let a = base + (i * tiny.P.line) in
      obs :=
        Tp_hw.Machine.access m ~core ~asid:1 ~vaddr:a ~paddr:a
          ~kind:Tp_hw.Defs.Read ()
        :: !obs
    done
  done;
  for i = 0 to 3 do
    let a = 0x4000_0000 + (i * 64) in
    obs :=
      Tp_hw.Machine.cond_branch m ~core ~asid:1 ~vaddr:a ~paddr:a
        ~taken:(i land 1 = 0)
      :: !obs
  done;
  List.rev !obs

(* One turn of the deterministic public neighbour (domain D of the
   3-domain check): a fixed sweep of one even page and two always-taken
   branches, independent of every secret.  D makes no observations —
   it exists so that secret-dependent state left by the victim can
   perturb D's timing, and D's perturbed footprint in turn shift a
   {e later} attacker turn: the transitive V→D→A channel a two-domain
   enumeration cannot exhibit.  Even-page parity is deliberate: the
   2-colour shrink cannot give three domains disjoint colours, so D
   shares the attacker's colour (a coloured victim stays isolated on
   the odd pages, exactly as a real 2-colour allocation would fold the
   extra domain onto an existing colour). *)
let neighbour_turn m ~core tiny =
  let base = 0x5000_0000 in
  let lines = Tp_hw.Defs.page_size / tiny.P.line in
  for i = 0 to lines - 1 do
    let a = base + (i * tiny.P.line) in
    ignore
      (Tp_hw.Machine.access m ~core ~asid:2 ~vaddr:a ~paddr:a
         ~kind:Tp_hw.Defs.Read ())
  done;
  for i = 0 to 1 do
    let a = base + (2 * Tp_hw.Defs.page_size) + (i * 64) in
    ignore (Tp_hw.Machine.cond_branch m ~core ~asid:2 ~vaddr:a ~paddr:a ~taken:true)
  done

(* Which lifted kernel path a certificate (and its exhaustive
   cross-check) covers.  The 'D' turn of the 3-domain schedule model is
   the kernel operating on the neighbour's behalf: a plain switch, a
   clone of its image, or the teardown of one — each with its own
   deterministic footprint. *)
type kernel_path = Switch | Clone | Destroy

let kernel_path_slug = function
  | Switch -> "switch"
  | Clone -> "clone"
  | Destroy -> "destroy"

let all_kernel_paths = [ Switch; Clone; Destroy ]

(* The neighbour's turn under each lifecycle path.  Clone performs the
   coloured-pool page copy ({!Tp_hw.Shrink.clone_op}) plus the clone
   handler's two always-taken loop branches; Destroy performs the
   IPI-barrier write + shootdown ({!Tp_hw.Shrink.destroy_op}).  All
   addresses stay on the neighbour's (even) parity, like
   {!neighbour_turn}. *)
let lifecycle_turn m ~core tiny = function
  | Switch -> neighbour_turn m ~core tiny
  | Clone ->
      let page = Tp_hw.Defs.page_size in
      let base = 0x5000_0000 in
      ignore (Tp_hw.Shrink.clone_op m ~core ~asid:2 ~src:base ~dst:(base + (2 * page)));
      for i = 0 to 1 do
        let a = base + (4 * page) + (i * 64) in
        ignore (Tp_hw.Machine.cond_branch m ~core ~asid:2 ~vaddr:a ~paddr:a ~taken:true)
      done
  | Destroy ->
      ignore
        (Tp_hw.Shrink.destroy_op m ~core ~asid:2
           ~barrier:(0x5000_0000 + (6 * Tp_hw.Defs.page_size)))

let scrub_of_config (cfg : C.t) =
  {
    Tp_hw.Shrink.sc_flush_l1 = cfg.flush_l1;
    sc_flush_l2 = cfg.flush_l2;
    sc_flush_llc = cfg.flush_llc;
    sc_flush_tlb = cfg.flush_tlb;
    sc_flush_bp = cfg.flush_bp;
    (* Row-buffer state is outside the small scope (see
       {!exclusions}): always precharged, so the check exercises the
       five certified channels, not the known-uncloseable one. *)
    sc_close_dram = true;
  }

(* Victim placement: with colouring, the victim owns the odd pages of
   the 2-colour shrink (data, and its branch-site code page); without,
   it allocates from the same (even) pool the attacker probes. *)
let victim_layout (cfg : C.t) =
  let parity = if cfg.colour_user then Tp_hw.Defs.page_size else 0 in
  let page k = 0x1000_0000 + (2 * k * Tp_hw.Defs.page_size) + parity in
  ( [ ("a", page 0); ("b", page 1); ("c", page 2); ("d", page 3) ],
    0x2000_0000 + parity )

let run_schedule ?(path = Switch) tiny (cfg : C.t) sched secret =
  let m = Tp_hw.Machine.create tiny in
  let core = 0 in
  let scrub = scrub_of_config cfg in
  let arrays_at, code_at = victim_layout cfg in
  let obs = ref [] in
  String.iter
    (fun turn ->
      let t0 = Tp_hw.Machine.cycles m ~core in
      (match turn with
      | 'V' ->
          ignore
            (Ct_ir.execute ~arrays_at ~code_at m ~core small_victim
               ~inputs:[ (0, secret); (1, horizon) ])
      | 'D' -> lifecycle_turn m ~core tiny path
      | _ -> obs := attacker_turn m ~core tiny :: !obs);
      ignore (Tp_hw.Shrink.apply m ~core scrub);
      (* Pad the whole turn (work + scrub) to the configured slice
         boundary; an overrun stays visible, which is exactly the
         pad-failure channel. *)
      let now = Tp_hw.Machine.cycles m ~core in
      if now < t0 + cfg.pad_cycles then
        Tp_hw.Machine.add_cycles m ~core (t0 + cfg.pad_cycles - now))
    sched;
  List.rev !obs

let diff_observations a b =
  let rec turn i ta tb =
    match (ta, tb) with
    | [], [] -> None
    | oa :: ta', ob :: tb' -> (
        match obs i 0 oa ob with
        | Some d -> Some d
        | None -> turn (i + 1) ta' tb')
    | _ -> Some (i, -1, List.length ta, List.length tb)
  and obs i j oa ob =
    match (oa, ob) with
    | [], [] -> None
    | x :: oa', y :: ob' ->
        if x = y then obs i (j + 1) oa' ob' else Some (i, j, x, y)
    | _ -> Some (i, j, List.length oa, List.length ob)
  in
  turn 0 a b

let exhaustive_for ?(path = Switch) ~domains (p : P.t) (cfg : C.t) =
  let tiny = Tp_hw.Shrink.tiny p in
  let schedules = Tp_hw.Shrink.schedules ~domains ~horizon in
  let cx = ref None in
  List.iter
    (fun sched ->
      if !cx = None then
        match secrets with
        | [] -> ()
        | s0 :: rest ->
            let base = run_schedule ~path tiny cfg sched s0 in
            List.iter
              (fun s ->
                if !cx = None then
                  match
                    diff_observations base (run_schedule ~path tiny cfg sched s)
                  with
                  | None -> ()
                  | Some (turn, idx, va, vb) ->
                      cx :=
                        Some
                          {
                            cx_schedule = sched;
                            cx_secret_a = s0;
                            cx_secret_b = s;
                            cx_turn = turn;
                            cx_index = idx;
                            cx_obs_a = va;
                            cx_obs_b = vb;
                          })
              rest)
    schedules;
  {
    ex_platform = tiny.name;
    ex_domains = domains;
    ex_horizon = horizon;
    ex_schedules = List.length schedules;
    ex_secrets = secrets;
    ex_counterexample = !cx;
  }

let exhaustive p cfg = exhaustive_for ~domains:2 p cfg

let exhaustive3 p cfg = exhaustive_for ~domains:3 p cfg

let exhaustive3_path path p cfg = exhaustive_for ~path ~domains:3 p cfg

let exhaustive_findings (r : exhaustive_result) =
  match r.ex_counterexample with
  | None -> []
  | Some cx ->
      [
        Diag.error ~rule:rule_noninterference
          ~context:
            [
              ("schedule", cx.cx_schedule);
              ("secret_a", string_of_int cx.cx_secret_a);
              ("secret_b", string_of_int cx.cx_secret_b);
              ("attacker_turn", string_of_int cx.cx_turn);
              ("observation", string_of_int cx.cx_index);
              ("value_a", string_of_int cx.cx_obs_a);
              ("value_b", string_of_int cx.cx_obs_b);
            ]
          (Printf.sprintf
             "distinguishing schedule %s: secrets %d/%d give attacker \
              observation %d vs %d (turn %d, index %d%s)"
             cx.cx_schedule cx.cx_secret_a cx.cx_secret_b cx.cx_obs_a
             cx.cx_obs_b cx.cx_turn cx.cx_index
             (if cx.cx_index = 0 then "; index 0 is the turn timestamp"
              else ""));
      ]

let exhaustive_to_json (r : exhaustive_result) =
  Printf.sprintf
    "{\"platform\":\"%s\",\"domains\":%d,\"horizon\":%d,\"schedules\":%d,\"secrets\":[%s],\"passed\":%b%s}"
    (Diag.json_escape r.ex_platform)
    r.ex_domains r.ex_horizon r.ex_schedules
    (String.concat "," (List.map string_of_int r.ex_secrets))
    (r.ex_counterexample = None)
    (match r.ex_counterexample with
    | None -> ""
    | Some cx ->
        Printf.sprintf
          ",\"counterexample\":{\"schedule\":\"%s\",\"secret_a\":%d,\"secret_b\":%d,\"turn\":%d,\"index\":%d,\"obs_a\":%d,\"obs_b\":%d}"
          (Diag.json_escape cx.cx_schedule)
          cx.cx_secret_a cx.cx_secret_b cx.cx_turn cx.cx_index cx.cx_obs_a
          cx.cx_obs_b)

let crosscheck (c : cert) (r : exhaustive_result) =
  let certified_zero = total_bits c = 0 in
  let passed = r.ex_counterexample = None in
  if certified_zero && not passed then
    [
      Diag.error ~rule:rule_xcheck
        (Printf.sprintf
           "certificate claims 0 bits but the small-scope check found a \
            distinguishing schedule (%s) on %s"
           (match r.ex_counterexample with
           | Some cx -> cx.cx_schedule
           | None -> "?")
           r.ex_platform);
    ]
  else []
