(** Structured diagnostics shared by the analysis passes.

    Every finding carries a stable rule identifier (["TP-..."] for the
    partition linter, ["CT-..."] for the constant-time checker), a
    severity, a human-readable message and optional key/value context.
    Reports render either as text for the terminal or as JSON for CI
    (hand-rolled, same style as {!Tp_obs.Trace} — no JSON library in
    the dependency cone). *)

type severity = Error | Warning | Info

type finding = {
  rule : string;  (** stable rule id, e.g. ["TP-PAD-INSUFFICIENT"] *)
  severity : severity;
  message : string;
  context : (string * string) list;  (** extra key/values, JSON only *)
}

type report = {
  subject : string;  (** what was analysed, e.g. ["lint haswell protected"] *)
  findings : finding list;
}

val error : ?context:(string * string) list -> rule:string -> string -> finding
val warning : ?context:(string * string) list -> rule:string -> string -> finding
val info : ?context:(string * string) list -> rule:string -> string -> finding

val clean : report -> bool
(** No findings of any severity. *)

val count : severity -> report -> int
val rules : report -> string list
(** Distinct rule ids present, sorted. *)

val severity_name : severity -> string
val summary : report -> string
(** ["clean"] or e.g. ["2 errors, 1 warning"]. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

val json_escape : string -> string
val report_to_json : report -> string
(** One JSON object: [{"subject": ..., "clean": ..., "findings": [...]}]. *)

val reports_to_json : report list -> string
(** A JSON array of reports (one element per platform/config pair). *)

val severity_sarif_level : severity -> string
(** SARIF result level: ["error"], ["warning"] or ["note"]. *)

val reports_to_sarif : ?tool_name:string -> report list -> string
(** SARIF 2.1.0 (the shape GitHub code scanning ingests): one run
    whose driver carries the distinct rule ids, one result per
    finding.  Findings are configuration-level, so every result points
    at a synthetic location (README.md, line 1) — SARIF consumers
    require one — with the real subject preserved in the message and
    the [properties] bag. *)
