(* Abstract interpretation of Ct_ir guest programs over abstract
   microarchitectural state (the static half of `tpsim certify`).

   The value domain is an interval with a secret-taint flag.  The
   microarchitectural domains mirror Tp_hw set-wise, CacheAudit-style:
   for every set of every structure (L1-D, L1-I, the three TLBs, and
   the physically-indexed outer cache levels) we track three sets of
   granule tags —

   - [may]:  tags possibly resident after some execution,
   - [sx]:   tags whose residency may depend on the secret (inserted
             under secret-tainted control, or at a secret-tainted
             index),
   - [must]: tags definitely resident in every execution (inserted at a
             concrete index under definite, secret-independent
             control).

   The per-set leakage is [min (|sx \ must| , ways)] bits: a line that
   is resident regardless of the secret encodes nothing, and an
   attacker probing a [ways]-way set observes at most [ways] residency
   slots.  Branch-predictor occupancy is tracked as the set of branch
   sites whose reachability or direction is secret-dependent; each
   contributes the site's BTB line and its 2-bit PHT counter.

   [may] and [sx] only ever grow and joins are unions, so they live in
   global accumulators; [must] (joins intersect) and the register file
   are the branch-sensitive part of the state that gets copied and
   joined around [If]/[While].  Loops with a concrete public bound are
   unrolled concretely under a global fuel; everything else runs a
   join/widen fixpoint. *)

module Iset = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Value domain: intervals with secret taint                           *)

type aval = { lo : int; hi : int; sec : bool }

(* Saturation bound: anything at or beyond [big] means "unbounded on
   that side".  Small enough that interval arithmetic cannot overflow
   native ints. *)
let big = 1 lsl 48

let sat v = if v < -big then -big else if v > big then big else v

let mk ?(sec = false) lo hi =
  let lo = sat lo and hi = sat hi in
  (* A singleton that was not produced by saturation is a constant:
     its value cannot depend on the secret whatever fed into it. *)
  let sec = if lo = hi && abs lo < big then false else sec in
  { lo; hi; sec }

let top ~sec = { lo = -big; hi = big; sec }
let const n = mk n n
let is_bounded v = v.lo > -big && v.hi < big

let join_val a b =
  { lo = min a.lo b.lo; hi = max a.hi b.hi; sec = a.sec || b.sec }

(* Truth of [v <> 0]: [Some b] when decided by the interval. *)
let truth v =
  if v.lo = 0 && v.hi = 0 then Some false
  else if v.lo > 0 || v.hi < 0 then Some true
  else None

let next_pow2_mask n =
  let rec go m = if m >= n then m else go ((2 * m) + 1) in
  go 1

let binop op a b =
  let sec = a.sec || b.sec in
  let unbounded = top ~sec in
  match (op : Ct_ir.binop) with
  | Add -> mk ~sec (a.lo + b.lo) (a.hi + b.hi)
  | Sub -> mk ~sec (a.lo - b.hi) (a.hi - b.lo)
  | Mul ->
      if is_bounded a && is_bounded b
         && max (abs a.lo) (abs a.hi) < (1 lsl 24)
         && max (abs b.lo) (abs b.hi) < (1 lsl 24)
      then
        let c = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
        mk ~sec (List.fold_left min max_int c) (List.fold_left max min_int c)
      else unbounded
  | Div ->
      if b.lo = b.hi && b.lo <> 0 && is_bounded a then
        let c = [ a.lo / b.lo; a.hi / b.lo ] in
        mk ~sec (min (List.nth c 0) (List.nth c 1))
          (max (List.nth c 0) (List.nth c 1))
      else unbounded
  | Mod ->
      if b.lo > 0 && is_bounded b then
        if a.lo >= 0 then mk ~sec 0 (b.hi - 1)
        else mk ~sec (-(b.hi - 1)) (b.hi - 1)
      else unbounded
  | And ->
      if a.lo >= 0 && b.lo >= 0 then mk ~sec 0 (min a.hi b.hi) else unbounded
  | Or | Xor ->
      if a.lo >= 0 && b.lo >= 0 && is_bounded a && is_bounded b then
        mk ~sec 0 (next_pow2_mask (max a.hi b.hi))
      else unbounded
  | Shl ->
      if b.lo = b.hi && b.lo >= 0 && b.lo < 40
         && is_bounded a
         && max (abs a.lo) (abs a.hi) < (1 lsl 24)
      then mk ~sec (a.lo lsl b.lo) (a.hi lsl b.lo)
      else unbounded
  | Shr ->
      if b.lo = b.hi && b.lo >= 0 then mk ~sec (a.lo asr b.lo) (a.hi asr b.lo)
      else if b.lo >= 0 && a.lo >= 0 then
        (* asr is antitone in the shift for non-negative values *)
        mk ~sec (a.lo asr min b.hi 62) (a.hi asr b.lo)
      else unbounded
  | Lt ->
      if a.hi < b.lo then const 1
      else if a.lo >= b.hi then const 0
      else mk ~sec 0 1
  | Eq ->
      if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then const 1
      else if a.hi < b.lo || b.hi < a.lo then const 0
      else mk ~sec 0 1

(* ------------------------------------------------------------------ *)
(* Abstract microarchitectural structures                              *)

type slot = { mutable may : Iset.t; mutable sx : Iset.t }

type astruct = {
  st_name : string;
  st_ways : int;
  st_sets : int;
  st_shift : int;  (* log2 of the granule: line bits or page bits *)
  st_slots : slot array;
}

let make_struct st_name ~sets ~ways ~shift =
  {
    st_name;
    st_ways = ways;
    st_sets = sets;
    st_shift = shift;
    st_slots =
      Array.init sets (fun _ -> { may = Iset.empty; sx = Iset.empty });
  }

(* Execution context: is the current program point reached in every
   execution ([definite]), and is reaching it secret-dependent? *)
type ctx = { c_definite : bool; c_secret : bool }

type env = {
  structs : astruct array;
  data : int list;  (* struct indices touched by data accesses *)
  code : int list;  (* struct indices touched by instruction fetches *)
  arrays : (string * (int * int)) list;  (* name -> (base, len) *)
  code_at : int;
  mutable bp_sites : Iset.t;  (* secret-dependent branch sites *)
  mutable fuel : int;
}

(* Branch-sensitive part of the state. *)
type state = {
  regs : aval array;
  must : Iset.t array array;  (* must.(struct).(set) *)
}

let copy_state st =
  { regs = Array.copy st.regs; must = Array.map Array.copy st.must }

let join_state a b =
  {
    regs = Array.map2 join_val a.regs b.regs;
    must = Array.map2 (Array.map2 Iset.inter) a.must b.must;
  }

let blit_state dst src =
  Array.blit src.regs 0 dst.regs 0 (Array.length dst.regs);
  Array.iteri
    (fun i row -> Array.blit row 0 dst.must.(i) 0 (Array.length row))
    src.must

let equal_state a b =
  a.regs = b.regs && Array.for_all2 (Array.for_all2 Iset.equal) a.must b.must

(* Record an address-range touch on one structure.  [secidx] marks a
   secret-dependent choice of granule; a range the interval analysis
   pinned to a single granule is deterministic whatever the taint
   flag said. *)
let touch env st si ~ctx ~secidx alo ahi =
  let a = env.structs.(si) in
  let gl = alo asr a.st_shift and gh = ahi asr a.st_shift in
  let secidx = secidx && gl <> gh in
  for g = gl to gh do
    let set = g land (a.st_sets - 1) in
    let slot = a.st_slots.(set) in
    slot.may <- Iset.add g slot.may;
    if ctx.c_secret || secidx then slot.sx <- Iset.add g slot.sx;
    if ctx.c_definite && (not secidx) && gl = gh then
      st.must.(si).(set) <- Iset.add g st.must.(si).(set)
  done

let touch_many env st sis ~ctx ~secidx alo ahi =
  List.iter (fun si -> touch env st si ~ctx ~secidx alo ahi) sis

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let rec eval env st ctx (e : Ct_ir.expr) =
  match e with
  | Int n -> const n
  | Reg r -> st.regs.(r)
  | Bin (op, a, b) -> binop op (eval env st ctx a) (eval env st ctx b)

(* A branch at [site]: fetch of the branch instruction plus a
   direction-predictor update.  The site enters the BP channel when it
   is reached under secret control, or its direction is secret and not
   decided by the intervals. *)
let branch_event env st ctx site ~undecided_secret =
  let a = env.code_at + (site * 64) in
  touch_many env st env.code ~ctx ~secidx:false a a;
  if ctx.c_secret || undecided_secret then
    env.bp_sites <- Iset.add site env.bp_sites

let data_access env st ctx name idx =
  let base, len =
    match List.assoc_opt name env.arrays with
    | Some bl -> bl
    | None -> assert false (* validate already ran *)
  in
  let ilo = max idx.lo 0 and ihi = min idx.hi (len - 1) in
  if ilo <= ihi then
    touch_many env st env.data ~ctx ~secidx:idx.sec
      (base + (ilo * Ct_ir.word))
      (base + (ihi * Ct_ir.word))

let widen_changed cur prev =
  Array.iteri
    (fun i v ->
      if v <> prev.regs.(i) then
        cur.regs.(i) <- top ~sec:(v.sec || prev.regs.(i).sec))
    cur.regs

let max_fix_iters = 64

let rec exec env st ctx (s : Ct_ir.astmt) =
  env.fuel <- env.fuel - 1;
  match s with
  | ASet (r, e) -> st.regs.(r) <- eval env st ctx e
  | ALoad (r, name, i) ->
      data_access env st ctx name (eval env st ctx i);
      (* Array contents are not modelled; the dynamic semantics returns
         0 for every load. *)
      st.regs.(r) <- const 0
  | AStore (name, i, v) ->
      ignore (eval env st ctx v);
      data_access env st ctx name (eval env st ctx i)
  | AIf (site, c, t, e) -> (
      let cv = eval env st ctx c in
      match truth cv with
      | Some b ->
          branch_event env st ctx site ~undecided_secret:false;
          List.iter (exec env st ctx) (if b then t else e)
      | None ->
          branch_event env st ctx site ~undecided_secret:cv.sec;
          let ctx' =
            { c_definite = false; c_secret = ctx.c_secret || cv.sec }
          in
          let st2 = copy_state st in
          List.iter (exec env st ctx') t;
          List.iter (exec env st2 ctx') e;
          blit_state st (join_state st st2))
  | AWhile (site, c, body) ->
      let rec concrete () =
        env.fuel <- env.fuel - 1;
        let cv = eval env st ctx c in
        match truth cv with
        | Some false -> branch_event env st ctx site ~undecided_secret:false
        | Some true when env.fuel > 0 ->
            branch_event env st ctx site ~undecided_secret:false;
            List.iter (exec env st ctx) body;
            concrete ()
        | d ->
            let undec = d = None && cv.sec in
            abstract { c_definite = false; c_secret = ctx.c_secret || undec }
      and abstract ctx' =
        (* Join/widen fixpoint.  Touches are a function of (regs, ctx),
           so stability of regs+must implies the accumulators have
           stopped growing too. *)
        let iters = ref 0 and stable = ref false in
        while not !stable do
          incr iters;
          let prev = copy_state st in
          let cv = eval env st ctx' c in
          branch_event env st ctx' site
            ~undecided_secret:(truth cv = None && cv.sec);
          (match truth cv with
          | Some false -> ()
          | _ -> List.iter (exec env st ctx') body);
          blit_state st (join_state prev st);
          if equal_state st prev then stable := true
          else if !iters >= max_fix_iters then begin
            (* Backstop: top every register, drop all must facts, take
               one final pass to record the resulting footprint. *)
            Array.iteri
              (fun i v -> st.regs.(i) <- top ~sec:v.sec)
              st.regs;
            Array.iter
              (fun row ->
                Array.iteri (fun j _ -> row.(j) <- Iset.empty) row)
              st.must;
            let cv = eval env st ctx' c in
            branch_event env st ctx' site
              ~undecided_secret:(truth cv = None && cv.sec);
            List.iter (exec env st ctx') body;
            stable := true
          end
          else if !iters >= 3 then widen_changed st prev
        done
      in
      concrete ()

(* ------------------------------------------------------------------ *)
(* Entry point and summary                                             *)

type summary = {
  sm_l1d : int;
  sm_l1i : int;
  sm_tlb : int;
  sm_bp : int;
  sm_llc : int;
  sm_secret_sites : int list;
}

let zero_summary =
  {
    sm_l1d = 0;
    sm_l1i = 0;
    sm_tlb = 0;
    sm_bp = 0;
    sm_llc = 0;
    sm_secret_sites = [];
  }

let struct_bits a must_rows =
  let bits = ref 0 in
  Array.iteri
    (fun set slot ->
      let leak = Iset.cardinal (Iset.diff slot.sx must_rows.(set)) in
      bits := !bits + min leak a.st_ways)
    a.st_slots;
  !bits

let fuel_budget = 200_000

(* The abstract machine structures for a platform, shared between the
   Ct_ir analysis below and the kernel-trace back-end ({!cover_trace}):
   one constructor, so the two entry points cannot disagree about
   geometry or granularity. *)
let machine_structs (plat : Tp_hw.Platform.t) =
  let line_shift = Tp_hw.Defs.log2 plat.line in
  let page_shift = Tp_hw.Defs.page_bits in
  let cache_struct name (g : Tp_hw.Cache.geometry) =
    make_struct name ~sets:(Tp_hw.Cache.sets g) ~ways:g.ways ~shift:line_shift
  in
  let tlb_struct name (g : Tp_hw.Tlb.geometry) =
    make_struct name ~sets:(g.entries / g.ways) ~ways:g.ways ~shift:page_shift
  in
  [
    ("l1d", cache_struct "l1d" plat.l1d);
    ("l1i", cache_struct "l1i" plat.l1i);
    ("dtlb", tlb_struct "dtlb" plat.dtlb);
    ("itlb", tlb_struct "itlb" plat.itlb);
    ("l2tlb", tlb_struct "l2tlb" plat.l2tlb);
  ]
  @ (match plat.l2 with
    | Some g -> [ ("l2", cache_struct "l2" g) ]
    | None -> [])
  @ [ ("llc", cache_struct "llc" plat.llc) ]

let struct_index named name =
  let rec go i = function
    | [] -> assert false
    | (n, _) :: _ when n = name -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 named

let analyse ?arrays_at ?(code_at = Ct_ir.code_base) (plat : Tp_hw.Platform.t)
    (p : Ct_ir.program) ~public =
  Ct_ir.validate p;
  let named = machine_structs plat in
  let structs = Array.of_list (List.map snd named) in
  let index = struct_index named in
  let outer =
    (match plat.l2 with Some _ -> [ index "l2" ] | None -> [])
    @ [ index "llc" ]
  in
  let env =
    {
      structs;
      data = [ index "l1d"; index "dtlb"; index "l2tlb" ] @ outer;
      code = [ index "l1i"; index "itlb"; index "l2tlb" ] @ outer;
      arrays =
        List.map
          (fun (n, b, l) -> (n, (b, l)))
          (Ct_ir.array_layout ?arrays_at p);
      code_at;
      bp_sites = Iset.empty;
      fuel = fuel_budget;
    }
  in
  let st =
    {
      regs = Array.make (max 1 (Ct_ir.n_regs p)) (const 0);
      must = Array.map (fun a -> Array.make a.st_sets Iset.empty) structs;
    }
  in
  List.iter
    (fun (r, _, taint) ->
      st.regs.(r) <-
        (match (taint : Ct_ir.taint) with
        | Secret -> top ~sec:true
        | Public -> (
            match List.assoc_opt r public with
            | Some v -> const v
            | None -> top ~sec:false)))
    p.p_params;
  let ctx = { c_definite = true; c_secret = false } in
  List.iter (exec env st ctx) (Ct_ir.annotate p.p_body);
  let bits name = struct_bits env.structs.(index name) st.must.(index name) in
  {
    sm_l1d = bits "l1d";
    sm_l1i = bits "l1i";
    sm_tlb = bits "dtlb" + bits "itlb" + bits "l2tlb";
    sm_bp = 2 * Iset.cardinal env.bp_sites;
    sm_llc =
      (match plat.l2 with Some _ -> bits "l2" | None -> 0) + bits "llc";
    sm_secret_sites = Iset.elements env.bp_sites;
  }

(* ------------------------------------------------------------------ *)
(* Kernel-trace back-end (the engine behind Tp_analysis.Kcert)         *)

(* The kernel certifier lifts Domain_switch / Clone paths into flat
   access traces.  Driving them through the same [touch] and the same
   [machine_structs] as the Ct_ir analysis gives the must-coverage a
   single soundness argument: a fixed access pins its granule in every
   execution (a must fact); a variable access ([ka_fixed = false], an
   allocation- or schedule-dependent address) contributes may-residency
   only — it can neither earn coverage nor destroy a must fact, the
   standard under-approximation (joins intersect must). *)

type kaccess = {
  ka_vaddr : int;
  ka_bytes : int;
  ka_fetch : bool;  (* instruction side *)
  ka_fixed : bool;  (* same address in every execution of the path *)
}

type kcoverage = {
  kc_l1d : int;
  kc_l1i : int;
  kc_dtlb : int;
  kc_itlb : int;
  kc_l2tlb : int;
  kc_l2 : int;  (* 0 when the platform has no private L2 *)
  kc_llc : int;
}

let cover_trace (plat : Tp_hw.Platform.t) (accs : kaccess list) =
  let named = machine_structs plat in
  let structs = Array.of_list (List.map snd named) in
  let index = struct_index named in
  let outer =
    (match plat.l2 with Some _ -> [ index "l2" ] | None -> [])
    @ [ index "llc" ]
  in
  let data = [ index "l1d"; index "dtlb"; index "l2tlb" ] @ outer in
  let code = [ index "l1i"; index "itlb"; index "l2tlb" ] @ outer in
  let env =
    { structs; data; code; arrays = []; code_at = 0; bp_sites = Iset.empty;
      fuel = 0 }
  in
  let st =
    {
      regs = [||];
      must = Array.map (fun a -> Array.make a.st_sets Iset.empty) structs;
    }
  in
  let definite = { c_definite = true; c_secret = false } in
  let variable = { c_definite = false; c_secret = false } in
  List.iter
    (fun ka ->
      let sis = if ka.ka_fetch then code else data in
      let ahi = ka.ka_vaddr + ka.ka_bytes - 1 in
      if ka.ka_fixed then
        (* Granule by granule: [touch] only records a must fact when the
           range pins a single granule, and every granule of a fixed
           multi-byte access is pinned. *)
        List.iter
          (fun si ->
            let a = env.structs.(si) in
            let gl = ka.ka_vaddr asr a.st_shift
            and gh = ahi asr a.st_shift in
            for g = gl to gh do
              let b = g lsl a.st_shift in
              touch env st si ~ctx:definite ~secidx:false b b
            done)
          sis
      else touch_many env st sis ~ctx:variable ~secidx:false ka.ka_vaddr ahi)
    accs;
  let cover name =
    let i = index name in
    let ways = structs.(i).st_ways in
    Array.fold_left
      (fun acc row -> acc + min (Iset.cardinal row) ways)
      0 st.must.(i)
  in
  {
    kc_l1d = cover "l1d";
    kc_l1i = cover "l1i";
    kc_dtlb = cover "dtlb";
    kc_itlb = cover "itlb";
    kc_l2tlb = cover "l2tlb";
    kc_l2 = (match plat.l2 with Some _ -> cover "l2" | None -> 0);
    kc_llc = cover "llc";
  }

(* BTB must-coverage of the kernel's own deterministic jumps: executing
   a taken jump at a fixed site leaves that (site, target) pair MRU in
   its set whatever the prior state — so k distinct fixed sites in a
   w-way set pin min(k, w) ways, the same set-wise counting as the
   caches, through the model's own index hash. *)
let btb_coverage (g : Tp_hw.Btb.geometry) sites =
  let n_sets = Tp_hw.Btb.geometry_sets g in
  let per_set = Array.make n_sets Iset.empty in
  List.iter
    (fun s ->
      let set = Tp_hw.Btb.set_of_addr g s in
      per_set.(set) <- Iset.add s per_set.(set))
    sites;
  Array.fold_left
    (fun acc ss -> acc + min (Iset.cardinal ss) g.Tp_hw.Btb.ways)
    0 per_set

(* PHT must-coverage of a deterministic conditional-branch trace, via
   an interval abstraction of the 2-bit counters.  Initially every
   counter and the global history register are unknown (victim-trained):
   each entry starts at [0,3].  While fewer than [history_bits]
   outcomes have been shifted in, the gshare index is unknown and each
   update widens every entry to the hull of updated/not-updated (a
   no-op on [0,3]).  Once the history is determined by the trace
   itself, updates land on computed indices and move both interval ends
   with the saturating +/-1.  An entry is covered when its final
   interval decides the prediction — entirely at or above the taken
   threshold, or entirely below — because the attacker observes
   predictions, not raw counter values.  The trace is run-length
   encoded as (site, taken, repeat) triples so multi-thousand-iteration
   copy loops stay cheap to carry around. *)
let pht_coverage (g : Tp_hw.Bhb.geometry) trace =
  let n = g.Tp_hw.Bhb.pht_entries in
  let lo = Array.make n 0 and hi = Array.make n 3 in
  let history = ref 0 and seen = ref 0 in
  let step site taken =
    if !seen >= g.Tp_hw.Bhb.history_bits then begin
      let i = Tp_hw.Bhb.index_of g ~history:!history site in
      if taken then begin
        lo.(i) <- min 3 (lo.(i) + 1);
        hi.(i) <- min 3 (hi.(i) + 1)
      end
      else begin
        lo.(i) <- max 0 (lo.(i) - 1);
        hi.(i) <- max 0 (hi.(i) - 1)
      end
    end
    else
      for i = 0 to n - 1 do
        if taken then hi.(i) <- min 3 (hi.(i) + 1)
        else lo.(i) <- max 0 (lo.(i) - 1)
      done;
    history :=
      ((!history lsl 1) lor (if taken then 1 else 0))
      land ((1 lsl g.Tp_hw.Bhb.history_bits) - 1);
    incr seen
  in
  List.iter (fun (site, taken, count) -> for _ = 1 to count do step site taken done) trace;
  let covered = ref 0 in
  for i = 0 to n - 1 do
    if lo.(i) >= Tp_hw.Bhb.taken_threshold || hi.(i) < Tp_hw.Bhb.taken_threshold
    then incr covered
  done;
  !covered
