open Ct_ir

let rule_branch_secret = "CT-BRANCH-SECRET"
let rule_addr_secret = "CT-ADDR-SECRET"
let rule_crosscheck = "CT-CROSSCHECK-DISAGREE"
let rule_expectation = "CT-EXPECTATION"

(* ------------------------------------------------------------------ *)
(* Static taint dataflow                                               *)

let is_secret = function Secret -> true | Public -> false
let join a b = if is_secret a || is_secret b then Secret else Public

let static_findings p =
  validate p;
  let regs = Array.make (max 1 (n_regs p)) Public in
  List.iter (fun (r, _, t) -> regs.(r) <- t) p.p_params;
  let arrs = Hashtbl.create 8 in
  List.iter (fun (name, _) -> Hashtbl.replace arrs name Public) p.p_arrays;
  (* Weak (monotone) updates only: a taint never decreases, so loop
     fixpoints terminate and If branches need no explicit join.  [gen]
     counts state changes; a loop iterates until an iteration leaves it
     untouched (a flag would be clobbered by nested loops). *)
  let gen = ref 0 in
  let set_reg r t =
    let t' = join regs.(r) t in
    if t' <> regs.(r) then begin
      regs.(r) <- t';
      incr gen
    end
  in
  let set_arr a t =
    let cur = Hashtbl.find arrs a in
    let t' = join cur t in
    if t' <> cur then begin
      Hashtbl.replace arrs a t';
      incr gen
    end
  in
  let found = Hashtbl.create 8 in
  let order = ref [] in
  let add ~rule ~key msg =
    if not (Hashtbl.mem found (rule, key)) then begin
      Hashtbl.replace found (rule, key) ();
      order := Diag.error ~rule msg :: !order;
      incr gen
    end
  in
  let rec expr_taint = function
    | Int _ -> Public
    | Reg r -> regs.(r)
    | Bin (_, a, b) -> join (expr_taint a) (expr_taint b)
  in
  let flag_branch site c pc =
    let ct = expr_taint c in
    if is_secret (join ct pc) then
      add ~rule:rule_branch_secret ~key:(string_of_int site)
        (Format.asprintf
           "branch site %d: condition %a %s — execution path depends on the \
            secret"
           site pp_expr c
           (if is_secret ct then "is secret-tainted"
            else "executes under secret-dependent control flow"))
  in
  let flag_addr kind a i =
    if is_secret (expr_taint i) then
      add ~rule:rule_addr_secret
        ~key:(Format.asprintf "%s %s[%a]" kind a pp_expr i)
        (Format.asprintf
           "%s of %s at secret-dependent index %a — the access footprint \
            encodes the secret"
           kind a pp_expr i)
  in
  let rec go pc s =
    match s with
    | ASet (r, e) -> set_reg r (join pc (expr_taint e))
    | ALoad (r, a, i) ->
        flag_addr "load" a i;
        set_reg r (join pc (join (expr_taint i) (Hashtbl.find arrs a)))
    | AStore (a, i, v) ->
        flag_addr "store" a i;
        set_arr a (join pc (join (expr_taint i) (expr_taint v)))
    | AIf (site, c, t, e) ->
        flag_branch site c pc;
        let pc' = join pc (expr_taint c) in
        List.iter (go pc') t;
        List.iter (go pc') e
    | AWhile (site, c, body) ->
        let rec fix () =
          let g0 = !gen in
          flag_branch site c pc;
          let pc' = join pc (expr_taint c) in
          List.iter (go pc') body;
          if !gen <> g0 then fix ()
        in
        fix ()
  in
  List.iter (go Public) (annotate p.p_body);
  List.rev !order

let static_ct p = static_findings p = []

(* ------------------------------------------------------------------ *)
(* Dynamic cross-check                                                 *)

type verdict = {
  v_name : string;
  v_static : Diag.finding list;
  v_static_ct : bool;
  v_trace_equal : bool;
  v_divergence : (int * string) option;
  v_events : int;
  v_agrees : bool;
  v_expected : bool option;
  v_pass : bool;
}

let check plat ?expect p ~public ~secret_a ~secret_b =
  let secret_params =
    List.filter_map (fun (r, _, t) -> if is_secret t then Some r else None) p.p_params
  in
  let dom l = List.sort_uniq compare (List.map fst l) in
  if dom secret_a <> List.sort_uniq compare secret_params
     || dom secret_b <> List.sort_uniq compare secret_params
  then
    invalid_arg
      (Printf.sprintf
         "Ctcheck.check: %s: secret assignments must cover exactly the secret \
          parameters"
         p.p_name);
  let findings = static_findings p in
  let m = Tp_hw.Machine.create plat in
  let ra = execute m ~core:0 p ~inputs:(public @ secret_a) in
  let rb = execute m ~core:0 p ~inputs:(public @ secret_b) in
  let divergence = diff_traces ra.x_trace rb.x_trace in
  let trace_equal = divergence = None in
  let static_ct = findings = [] in
  {
    v_name = p.p_name;
    v_static = findings;
    v_static_ct = static_ct;
    v_trace_equal = trace_equal;
    v_divergence = divergence;
    v_events = List.length ra.x_trace;
    v_agrees = static_ct = trace_equal;
    v_expected = expect;
    v_pass =
      static_ct = trace_equal
      && (match expect with None -> true | Some e -> e = static_ct);
  }

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)

(* The §5.3.3 victim: square-and-multiply modular exponentiation whose
   multiply step (code and loads) only runs for 1-bits of the secret
   exponent — the cache-footprint leak the LLC attack recovers. *)
let sqmul =
  {
    p_name = "sqmul";
    p_arrays = [ ("sq", 64); ("mul", 64) ];
    p_params =
      [ (0, "base", Public); (1, "exp", Secret); (2, "modulus", Public);
        (3, "nbits", Public) ];
    p_body =
      [
        Set (4, Int 1);
        Set (5, Reg 3);
        While
          ( Bin (Lt, Int 0, Reg 5),
            [
              Set (5, Bin (Sub, Reg 5, Int 1));
              (* square: footprint in the "sq" table *)
              Set (6, Int 0);
              While
                ( Bin (Lt, Reg 6, Int 8),
                  [ Load (7, "sq", Reg 6); Set (6, Bin (Add, Reg 6, Int 1)) ] );
              Set (4, Bin (Mod, Bin (Mul, Reg 4, Reg 4), Reg 2));
              (* multiply only when the current exponent bit is set *)
              Set (8, Bin (And, Bin (Shr, Reg 1, Reg 5), Int 1));
              If
                ( Reg 8,
                  [
                    Set (9, Int 0);
                    While
                      ( Bin (Lt, Reg 9, Int 8),
                        [
                          Load (10, "mul", Reg 9);
                          Set (9, Bin (Add, Reg 9, Int 1));
                        ] );
                    Set (4, Bin (Mod, Bin (Mul, Reg 4, Reg 0), Reg 2));
                  ],
                  [] );
            ] );
      ];
  }

(* Constant-time rewrite: always touch the multiply table and always
   compute the product, then select the result arithmetically. *)
let sqmul_ct =
  {
    p_name = "sqmul-ct";
    p_arrays = [ ("sq", 64); ("mul", 64) ];
    p_params =
      [ (0, "base", Public); (1, "exp", Secret); (2, "modulus", Public);
        (3, "nbits", Public) ];
    p_body =
      [
        Set (4, Int 1);
        Set (5, Reg 3);
        While
          ( Bin (Lt, Int 0, Reg 5),
            [
              Set (5, Bin (Sub, Reg 5, Int 1));
              Set (6, Int 0);
              While
                ( Bin (Lt, Reg 6, Int 8),
                  [ Load (7, "sq", Reg 6); Set (6, Bin (Add, Reg 6, Int 1)) ] );
              Set (4, Bin (Mod, Bin (Mul, Reg 4, Reg 4), Reg 2));
              Set (8, Bin (And, Bin (Shr, Reg 1, Reg 5), Int 1));
              (* always touch the multiply table *)
              Set (9, Int 0);
              While
                ( Bin (Lt, Reg 9, Int 8),
                  [ Load (10, "mul", Reg 9); Set (9, Bin (Add, Reg 9, Int 1)) ]
                );
              (* always multiply, select with mask = -bit *)
              Set (11, Bin (Mod, Bin (Mul, Reg 4, Reg 0), Reg 2));
              Set (12, Bin (Sub, Int 0, Reg 8));
              Set
                ( 4,
                  Bin
                    ( Or,
                      Bin (And, Reg 11, Reg 12),
                      Bin (And, Reg 4, Bin (Xor, Reg 12, Int (-1))) ) );
            ] );
      ];
  }

(* Classic secret-indexed table lookup (an S-box). *)
let sbox_lookup =
  {
    p_name = "sbox-lookup";
    p_arrays = [ ("tab", 256) ];
    p_params = [ (0, "key", Secret) ];
    p_body = [ Set (1, Bin (And, Reg 0, Int 255)); Load (2, "tab", Reg 1) ];
  }

(* CT rewrite: scan the whole table, select arithmetically. *)
let sbox_ct =
  {
    p_name = "sbox-ct";
    p_arrays = [ ("tab", 256) ];
    p_params = [ (0, "key", Secret) ];
    p_body =
      [
        Set (1, Bin (And, Reg 0, Int 255));
        Set (2, Int 0);
        Set (3, Int 0);
        While
          ( Bin (Lt, Reg 3, Int 256),
            [
              Load (4, "tab", Reg 3);
              Set (5, Bin (Sub, Int 0, Bin (Eq, Reg 3, Reg 1)));
              Set
                ( 2,
                  Bin
                    ( Or,
                      Bin (And, Reg 4, Reg 5),
                      Bin (And, Reg 2, Bin (Xor, Reg 5, Int (-1))) ) );
              Set (3, Bin (Add, Reg 3, Int 1));
            ] );
      ];
  }

type fixture = {
  fx_program : Ct_ir.program;
  fx_public : (Ct_ir.reg * int) list;
  fx_secret_a : (Ct_ir.reg * int) list;
  fx_secret_b : (Ct_ir.reg * int) list;
  fx_expect_ct : bool;
}

let sqmul_public = [ (0, 7); (2, 2047); (3, 10) ]
let sqmul_secrets = ([ (1, 0b1010101010) ], [ (1, 0b1111111111) ])

let fixtures =
  [
    {
      fx_program = sqmul;
      fx_public = sqmul_public;
      fx_secret_a = fst sqmul_secrets;
      fx_secret_b = snd sqmul_secrets;
      fx_expect_ct = false;
    };
    {
      fx_program = sqmul_ct;
      fx_public = sqmul_public;
      fx_secret_a = fst sqmul_secrets;
      fx_secret_b = snd sqmul_secrets;
      fx_expect_ct = true;
    };
    {
      fx_program = sbox_lookup;
      fx_public = [];
      fx_secret_a = [ (0, 13) ];
      fx_secret_b = [ (0, 200) ];
      fx_expect_ct = false;
    };
    {
      fx_program = sbox_ct;
      fx_public = [];
      fx_secret_a = [ (0, 13) ];
      fx_secret_b = [ (0, 200) ];
      fx_expect_ct = true;
    };
  ]

let fixture name =
  List.find_opt (fun f -> f.fx_program.p_name = name) fixtures

let check_fixture plat f =
  check plat ~expect:f.fx_expect_ct f.fx_program ~public:f.fx_public
    ~secret_a:f.fx_secret_a ~secret_b:f.fx_secret_b

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let report plat v =
  let subject =
    Printf.sprintf "ctcheck %s %s" plat.Tp_hw.Platform.name v.v_name
  in
  let dynamic =
    match v.v_divergence with
    | Some (i, what) ->
        [
          Diag.info ~rule:"CT-DYNAMIC-DIVERGENCE"
            (Printf.sprintf
               "traces under the two secrets diverge at event %d (%s): the \
                footprint leaks"
               i what);
        ]
    | None -> []
  in
  let crosscheck =
    if v.v_static_ct = v.v_trace_equal then []
    else
      [
        Diag.error ~rule:rule_crosscheck
          (Printf.sprintf
             "static verdict (%s) contradicts the dynamic trace diff (%s)"
             (if v.v_static_ct then "constant-time" else "leaky")
             (if v.v_trace_equal then "traces identical" else "traces diverge"));
      ]
  in
  let expectation =
    match v.v_expected with
    | Some e when e <> v.v_static_ct ->
        [
          Diag.error ~rule:rule_expectation
            (Printf.sprintf "expected %s but the static pass says %s"
               (if e then "constant-time" else "leaky")
               (if v.v_static_ct then "constant-time" else "leaky"));
        ]
    | _ -> []
  in
  { Diag.subject; findings = v.v_static @ dynamic @ crosscheck @ expectation }
