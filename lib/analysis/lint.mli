(** Static partition linter (the "prove, don't measure" pass).

    Checks that a booted system actually establishes the paper's
    protection properties its configuration claims, without running an
    attack: colour-set disjointness across domains, CAT way-mask
    disjointness, clone coverage (every domain a private, correctly
    coloured kernel image), IRQ-partition completeness (no IRQ
    deliverable to two kernels), and pad sufficiency against an
    analytic worst-case switch cost derived from {!Tp_hw.Bounds}.

    The linter operates on a pure {!view} extracted from the booted
    system, so (a) linting never perturbs the machine — the attack
    harness records a verdict for every run without disturbing
    determinism — and (b) tests can mutate a view to seed
    misconfigurations that the real capability system refuses to
    construct.  {!run} adds two checks that go beyond the view: the
    §4.1 shared-data audit (switch traces must not depend on what the
    outgoing domain did) and a cross-check of the analytic bound
    against the observed {!Tp_obs.Padprof} profile. *)

(** {1 Rule identifiers} *)

val rule_colour_overlap : string
(** ["TP-COLOUR-OVERLAP"]: two domains' colour sets intersect. *)

val rule_colour_off : string
(** ["TP-COLOUR-OFF"]: no spatial LLC partitioning (neither colouring
    nor CAT) — concurrent cross-core cache channels stay open
    regardless of switch-time flushing. *)

val rule_cat_overlap : string
(** ["TP-CAT-OVERLAP"]: CAT way masks intersect. *)

val rule_clone_missing : string
(** ["TP-CLONE-MISSING"]: cloning is configured but a domain runs on
    the initial kernel, shares an image with another domain, or has a
    thread bound to a foreign kernel. *)

val rule_clone_colour : string
(** ["TP-CLONE-COLOUR"]: a domain's private kernel image is not built
    from the domain's own colours (or is missing frames). *)

val rule_kernel_shared : string
(** ["TP-KERNEL-SHARED"]: domains share one kernel image and on-core
    flushing is not configured — the Figure 3 kernel-text channel. *)

val rule_irq_shared : string
(** ["TP-IRQ-SHARED"]: an IRQ is deliverable to more than one kernel
    (or routed to an inactive kernel / the preemption timer). *)

val rule_irq_off : string
(** ["TP-IRQ-OFF"]: IRQ partitioning is disabled with multiple
    domains — the §5.3.5 interrupt channel. *)

val rule_pad_insufficient : string
(** ["TP-PAD-INSUFFICIENT"]: the effective switch pad is below the
    analytic worst-case switch cost. *)

val rule_pad_profile : string
(** ["TP-PAD-PROFILE"]: the {!Tp_obs.Padprof} profile recorded an
    unpadded switch cost above the analytic bound — the bound (or the
    cost model) no longer covers observed behaviour. *)

val rule_audit_nondet : string
(** ["TP-AUDIT-NONDET"]: the shared-data access trace of a domain
    switch depends on what the outgoing domain did (§4.1 audit). *)

val rule_kcert_unsound : string
(** ["TP-KCERT-UNSOUND"]: the kernel-path certificate ({!Kcert})
    claims more bits than the {!Tp_hw.Bounds} analytic worst case
    admits — an unsoundness canary for the certifier itself, checked
    per (platform, config) by [tpsim lint]. *)

(** {1 The analytic pad bound} *)

val pad_bound : Tp_hw.Platform.t -> Tp_kernel.Config.t -> int
(** Worst-case protected-switch cost for this configuration: fixed
    overheads + cold sweep of the switch-path footprint
    ({!Tp_kernel.Layout.switch_footprint}) + configured flush bounds +
    shared-data prefetch sweep, all from {!Tp_hw.Bounds}. *)

val pad_bound_breakdown : Tp_hw.Platform.t -> Tp_kernel.Config.t -> (string * int) list
(** The bound's components, for diagnostics ([(component, cycles)]). *)

(** {2 Lifecycle bounds}

    Analytic worst-case costs of the other two kernel lifecycle paths,
    feeding the clone/destroy kernel certificates
    ({!Tp_analysis.Kcert}): a duration bound turns into the timing
    entropy [ceil_log2 (bound + 1)] when the path's cost can vary. *)

val clone_bound : Tp_hw.Platform.t -> Tp_kernel.Config.t -> int
(** Worst-case [Clone.clone] cost: cold sweeps of
    {!Tp_kernel.Layout.clone_footprint} (the image copy loop's read and
    write sides dominate), coloured-pool aware. *)

val clone_bound_breakdown :
  Tp_hw.Platform.t -> Tp_kernel.Config.t -> (string * int) list

val destroy_bound : Tp_hw.Platform.t -> Tp_kernel.Config.t -> int
(** Worst-case [Clone.destroy] cost: cold sweeps of
    {!Tp_kernel.Layout.destroy_footprint} plus the fixed per-core IPI
    stalls, TLB shootdowns and registry bookkeeping from
    {!Tp_hw.Bounds}. *)

val destroy_bound_breakdown :
  Tp_hw.Platform.t -> Tp_kernel.Config.t -> (string * int) list

(** {1 Views} *)

type kernel_view = {
  kv_id : int;
  kv_initial : bool;
  kv_active : bool;
  kv_frames : int list;
  kv_pad : int;
}

type domain_view = {
  dv_id : int;
  dv_colours : Tp_kernel.Colour.set;
  dv_kernel : int;  (** kernel image id *)
  dv_cat_mask : int option;
  dv_thread_kernels : (int * int) list;  (** (tcb id, kernel image id) *)
}

type view = {
  v_platform : Tp_hw.Platform.t;
  v_config : Tp_kernel.Config.t;
  v_n_colours : int;
  v_initial_kernel : int;  (** id of the boot image *)
  v_kernels : kernel_view list;
  v_domains : domain_view list;
  v_irq_routes : (int * int) list;  (** (irq, kernel image id) *)
  v_pad : int;  (** configured [pad_cycles] *)
}

val view_of_booted : Tp_kernel.Boot.booted -> view
(** Extract the linter's view of a booted system (pure: no machine
    traffic, no counter updates). *)

(** {1 Passes} *)

val lint_view : view -> Diag.finding list
(** The pure pass over a view — the core of the linter. *)

val check_static : ?subject:string -> Tp_kernel.Boot.booted -> Diag.report
(** [lint_view] of [view_of_booted]: safe to call from inside a
    measurement (used by the attack harness). *)

val run : ?subject:string -> ?dynamic:bool -> Tp_kernel.Boot.booted -> Diag.report
(** The full linter: the static pass, the {!Tp_obs.Padprof}
    cross-check, and (with [dynamic], the default) the shared-data
    audit determinism check, which spawns probe threads and performs
    real domain switches — only use it on a system booted for
    analysis, not mid-experiment. *)
