(* Kernel lifecycle certifier: `tpsim certify --kernel`.

   {!Certify} proves leakage bounds for guest [Ct_ir] programs; this
   module proves them for the kernel's own lifecycle paths — the
   mechanisms the paper contributes, and until now the only part of
   the system that was measured rather than certified.  Three paths
   are certified per (platform, configuration): the paper-ordered
   12-step domain switch ([Tp_kernel.Domain_switch.switch]), the
   kernel-image clone ([Tp_kernel.Clone.clone]) and its teardown
   ([Tp_kernel.Clone.destroy]).

   The approach lifts each path into an analysable access trace
   ({!lift}): the exact shared-region / image accesses the
   implementation performs, at the exact virtual addresses
   [Tp_kernel.Layout] assigns them, plus the path's deterministic
   branch behaviour (run-length-encoded conditional branches and fixed
   taken jumps).  Abstract interpretation is then set-wise
   must-coverage via the unified {!Absint} kernel-trace back-end — the
   same touch/join rules as the program-level analysis, so the
   soundness argument lives in one place: a path's {e deterministic}
   accesses ([a_must]) pin ways to public content — touching [k]
   distinct lines of a [w]-way set leaves at most [w - min k w] ways
   whose state can still depend on the outgoing domain's secrets.  The
   certified residue of a channel is its structural capacity minus
   that coverage, or 0 when the configuration closes the channel
   outright (flush or spatial partition).

   Soundness notes, per channel:

   - accesses whose address varies across executions (the destination
     thread's priority slot, TCBs and image frames at user-chosen
     physical frames) are marked [a_must = false] and contribute {e no}
     coverage — under-approximating coverage over-approximates residue;
   - virtual-indexed structures (both L1s, the TLBs) take coverage
     from virtual addresses, which the layout fixes; physically-indexed
     outer caches get {e zero} coverage because image physical
     placement is allocation-dependent;
   - the branch predictor takes coverage through the model's own index
     hashes ({!Tp_hw.Btb.set_of_addr} for the BTB,
     {!Tp_hw.Bhb.index_of} for the gshare PHT): deterministic kernel
     branches at layout-fixed sites pin BTB ways set-wise, and pin PHT
     counters whose final prediction the trace forces regardless of
     prior (victim-trained) state;
   - the x86 manual L1 flush appears in the trace as its real
     flush-buffer sweep (one read per L1-D line, one fetch per L1-I
     line), so its full-coverage effect is {e derived}, not asserted;
   - aliasing between kernel images (all mapped at the same virtual
     base) dedups to single virtual lines, which matches the
     virtually-indexed structures the coverage feeds.

   The clone and destroy paths additionally carry a duration bound
   ([k_op_bound], from {!Lint.clone_bound}/{!Lint.destroy_bound}):
   unlike the padded switch, their latency is visible to the caller,
   so when the configuration leaves stateful channels open the
   operation's cost varies with incoming microarchitectural state and
   contributes [ceil_log2 (bound + 1)] timing bits; with every
   stateful channel scrubbed or partitioned the cost is deterministic
   and contributes none.

   Cross-validation is {!Certify.exhaustive3_path}: observational
   determinism across secrets under all three-domain schedules of the
   shrunken machine, with the neighbour's turn performing this
   certificate's lifecycle operation.  A 0-bit kernel certificate
   contradicted by a 3-domain counterexample is a certifier bug and
   fails CI ([CERT-K-XCHECK-EXHAUSTIVE]); a certificate exceeding the
   [Tp_hw.Bounds]-derived analytic envelope trips the linter's
   unsoundness canary ([TP-KCERT-UNSOUND]).

   Certificates serialise to deterministic, content-digested JSON
   artifacts ({!to_json} / {!digest}); CI regenerates all 63 (3
   platforms x 7 configs x 3 paths) and byte-diffs against the
   checked-in goldens under [certs/kernel/]. *)

module C = Tp_kernel.Config
module P = Tp_hw.Platform
module L = Tp_kernel.Layout

let schema = "tpsim-kcert/2"

(* ------------------------------------------------------------------ *)
(* Rule identifiers                                                    *)

let rule_l1d_residue = "CERT-K-L1D-RESIDUE"
let rule_l1i_residue = "CERT-K-L1I-RESIDUE"
let rule_tlb_residue = "CERT-K-TLB-RESIDUE"
let rule_btb_residue = "CERT-K-BTB-RESIDUE"
let rule_llc_residue = "CERT-K-LLC-RESIDUE"
let rule_pad_timing = "CERT-K-PAD-TIMING"
let rule_xcheck = "CERT-K-XCHECK-EXHAUSTIVE"

let channel_rule = function
  | Certify.L1d -> rule_l1d_residue
  | Certify.L1i -> rule_l1i_residue
  | Certify.Tlb -> rule_tlb_residue
  | Certify.Bp -> rule_btb_residue
  | Certify.Llc -> rule_llc_residue

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)

type path = Certify.kernel_path = Switch | Clone | Destroy

let path_slug = Certify.kernel_path_slug
let all_paths = Certify.all_kernel_paths

(* ------------------------------------------------------------------ *)
(* The lifted traces                                                   *)

type access = {
  a_what : string;
  a_vaddr : int;
  a_bytes : int;
  a_kind : Tp_hw.Defs.access_kind;
  a_must : bool;
      (** address identical on every execution: counts toward coverage *)
}

type step = {
  s_index : int;
  s_name : string;
  s_accesses : access list;
  s_flushes : string list;
  s_branches : (int * bool * int) list;
      (** deterministic conditional branches, RLE [(site, taken, repeat)] *)
  s_jumps : int list;  (** fixed taken-jump sites (BTB) *)
}

let acc ?(must = true) what vaddr bytes kind =
  { a_what = what; a_vaddr = vaddr; a_bytes = bytes; a_kind = kind; a_must = must }

let step i name ?(flushes = []) ?(branches = []) ?(jumps = []) accesses =
  {
    s_index = i;
    s_name = name;
    s_accesses = accesses;
    s_flushes = flushes;
    s_branches = branches;
    s_jumps = jumps;
  }

(* Fixed jump sites every handler shares: the entry stub's dispatch
   jump into the handler, and the handler's return jump back to the
   stub.  Both are layout-fixed kernel-text addresses, so they earn
   BTB coverage through the model's own set hash. *)
let dispatch_site = L.kernel_base_vaddr + L.entry_stub.L.t_off + 0x10

let return_site (h : L.text_range) =
  L.kernel_base_vaddr + h.L.t_off + h.L.t_len - 8

(* The 12 paper-ordered steps of [Domain_switch.switch], lifted for a
   domain-crossing switch under [cfg].  For a domain crossing,
   [protect = kernel_switched || not clone_kernel] is true in every
   configuration (with cloned kernels the crossing switches kernels;
   without, the fallback triggers), so the protection steps 3/7 are
   unconditional here; the stack copy (step 4) runs exactly when
   kernels are cloned. *)
let lift_switch (p : P.t) (cfg : C.t) =
  let shared r = L.shared_vaddr + L.shared_region_off r in
  let ssize = L.shared_region_size in
  let base = L.kernel_base_vaddr in
  let lay = L.image_layout p in
  let r = Tp_hw.Defs.Read and w = Tp_hw.Defs.Write and f = Tp_hw.Defs.Fetch in
  let manual_l1 =
    cfg.flush_l1 && (not cfg.flush_llc) && not p.P.has_l1_flush_instr
  in
  let flush_names =
    (if cfg.flush_llc then [ "l1-hw"; "l2-private"; "llc" ]
     else if cfg.flush_l1 then
       (if manual_l1 then [ "l1-manual" ] else [ "l1-hw" ])
       @ (if cfg.flush_l2 then [ "l2-private" ] else [])
     else [])
    @ (if cfg.flush_tlb then [ "tlb" ] else [])
    @ (if cfg.flush_bp then [ "bp" ] else [])
    @ if cfg.close_dram_rows then [ "dram-close" ] else []
  in
  (* The manual flush's buffer sweep is real memory traffic at fixed
     per-image virtual addresses: one load per L1-D line, one fetched
     jump per L1-I line ([Domain_switch.manual_l1_flush]). *)
  let manual_accesses =
    if not manual_l1 then []
    else
      [
        acc "flushbuf-d-sweep" (base + lay.L.flushbuf_off) p.P.l1d.Tp_hw.Cache.size r;
        acc "flushbuf-i-sweep"
          (base + lay.L.flushbuf_off + p.P.l1d.Tp_hw.Cache.size)
          p.P.l1i.Tp_hw.Cache.size f;
      ]
  in
  (* The tick handler's two scheduler scan loops: 32 iterations each
     over the priority bitmap words, back edge taken then one
     fall-through exit.  Long enough that the gshare history settles
     to all-ones mid-run on every modelled platform, after which the
     repeated updates land on one computed PHT index per site and pin
     its prediction. *)
  let tick_loop_a = base + L.handler_tick.L.t_off + 0x40 in
  let tick_loop_b = base + L.handler_tick.L.t_off + 0x80 in
  let tick_branches =
    [
      (tick_loop_a, true, 32);
      (tick_loop_a, false, 1);
      (tick_loop_b, true, 32);
      (tick_loop_b, false, 1);
    ]
  in
  let live_stack = min 1024 lay.L.stack_size in
  [
    step 1 "acquire-kernel-lock"
      ~jumps:[ dispatch_site ]
      [ acc "big-lock" (shared L.Big_lock) 8 w ];
    step 2 "process-tick" ~branches:tick_branches
      [
        acc "tick-handler-text"
          (base + L.handler_tick.L.t_off)
          L.handler_tick.L.t_len f;
        acc "cur-irq" (shared L.Cur_irq) 8 w;
        (* Destination priority chooses the slot: address varies. *)
        acc ~must:false "sched-queue-slot" (shared L.Sched_queues) 16 r;
        acc "sched-bitmap" (shared L.Sched_bitmap) (ssize L.Sched_bitmap) r;
        acc "cur-decision" (shared L.Cur_decision) 8 w;
      ];
    step 3 "mask-irqs" [ acc "irq-tables" (shared L.Irq_tables) 256 w ];
    step 4 "stack-copy"
      (if cfg.clone_kernel then
         (* Both images map their stacks at the same virtual offset —
            the virtual lines alias, exactly as in the L1. *)
         [
           acc "from-stack" (base + lay.L.stack_off) live_stack r;
           acc "to-stack" (base + lay.L.stack_off) live_stack w;
         ]
       else []);
    step 5 "thread-context"
      [
        acc ~must:false "sched-queue-slot" (shared L.Sched_queues) 16 w;
        (* The destination TCB lives at a user-allocated physical
           frame: no fixed address, no coverage. *)
        acc ~must:false "dest-tcb" 0 (4 * p.P.line) r;
        acc "cur-pointers" (shared L.Cur_pointers) (ssize L.Cur_pointers) w;
      ];
    step 6 "release-kernel-lock" [ acc "big-lock" (shared L.Big_lock) 8 w ];
    step 7 "unmask-irqs" [ acc "irq-tables" (shared L.Irq_tables) 256 w ];
    step 8 "flush" ~flushes:flush_names manual_accesses;
    step 9 "prefetch-shared"
      (if cfg.prefetch_shared then
         List.map
           (fun reg ->
             acc
               (Printf.sprintf "shared-%d" (L.shared_region_off reg))
               (shared reg) (ssize reg) r)
           L.all_shared_regions
       else []);
    step 10 "pad" [];
    step 11 "timer-reprogram" [ acc "irq-tables" (shared L.Irq_tables) 64 w ];
    step 12 "return" ~jumps:[ return_site L.handler_tick ] [];
  ]

(* [Clone.clone], lifted: capability validation, the ASID-table scan,
   the coloured-pool image copy (text + stack + replicated data; the
   frames come from the caller's pool, so source and destination
   physical-window addresses are allocation-dependent — no coverage),
   the clone handler's own text, idle-thread initialisation and the
   CDT commit.  The copy loop's back edge is a fixed handler-text
   site taken once per copied line. *)
let lift_clone (p : P.t) (_cfg : C.t) =
  let shared r = L.shared_vaddr + L.shared_region_off r in
  let ssize = L.shared_region_size in
  let base = L.kernel_base_vaddr in
  let lay = L.image_layout p in
  let r = Tp_hw.Defs.Read and w = Tp_hw.Defs.Write and f = Tp_hw.Defs.Fetch in
  let copied = lay.L.text_size + lay.L.stack_size + lay.L.data_size in
  let copy_loop = base + L.handler_clone.L.t_off + 0x40 in
  [
    step 1 "validate-caps"
      ~jumps:[ dispatch_site ]
      [ acc ~must:false "src-and-kmem-caps" 0 (2 * p.P.line) r ];
    step 2 "alloc-asid"
      [ acc "asid-table" (shared L.Asid_table) (ssize L.Asid_table) r ];
    step 3 "image-copy"
      ~branches:[ (copy_loop, true, copied / p.P.line); (copy_loop, false, 1) ]
      [
        (* Frames are user-allocated: the physical-window addresses of
           both sides vary per clone — may-residency only. *)
        acc ~must:false "image-copy-read" 0 copied r;
        acc ~must:false "image-copy-write" 0 copied w;
      ];
    step 4 "clone-handler-text"
      [
        acc "clone-handler-text"
          (base + L.handler_clone.L.t_off)
          L.handler_clone.L.t_len f;
      ];
    step 5 "init-idle" [ acc ~must:false "idle-tcb" 0 (4 * p.P.line) w ];
    step 6 "commit-cdt"
      ~jumps:[ return_site L.handler_clone ]
      [ acc ~must:false "cdt-slot" 0 p.P.line w ];
  ]

(* [Clone.destroy], lifted: capability validation, the destroy
   handler's own text, IRQ disassociation and thread suspension (slot
   choice depends on the dying domain — no coverage), the per-core
   IPI-shootdown scan loop, and the ASID release + registry commit
   (fixed shared-region writes, matching the execution's
   [touch_shared] calls). *)
let lift_destroy (p : P.t) (_cfg : C.t) =
  let shared r = L.shared_vaddr + L.shared_region_off r in
  let ssize = L.shared_region_size in
  let base = L.kernel_base_vaddr in
  let r = Tp_hw.Defs.Read and w = Tp_hw.Defs.Write and f = Tp_hw.Defs.Fetch in
  let scan_loop = base + L.handler_destroy.L.t_off + 0x40 in
  [
    step 1 "validate-zombie"
      ~jumps:[ dispatch_site ]
      [ acc ~must:false "image-cap" 0 p.P.line r ];
    step 2 "destroy-handler-text"
      [
        acc "destroy-handler-text"
          (base + L.handler_destroy.L.t_off)
          L.handler_destroy.L.t_len f;
      ];
    step 3 "detach-irqs"
      [ acc ~must:false "irq-tables" (shared L.Irq_tables) 256 w ];
    step 4 "suspend-threads"
      [ acc ~must:false "sched-queue-slot" (shared L.Sched_queues) 16 w ];
    step 5 "ipi-shootdown" ~flushes:[ "tlb-shootdown" ]
      ~branches:[ (scan_loop, true, p.P.cores); (scan_loop, false, 1) ]
      [ acc ~must:false "ipi-barrier" (shared L.Ipi_barrier) 8 w ];
    step 6 "release-asid-commit"
      ~jumps:[ return_site L.handler_destroy ]
      [
        acc "asid-table" (shared L.Asid_table) (ssize L.Asid_table) w;
        acc "cur-pointers" (shared L.Cur_pointers) (ssize L.Cur_pointers) w;
      ];
  ]

let lift ?(path = Switch) (p : P.t) (cfg : C.t) =
  match path with
  | Switch -> lift_switch p cfg
  | Clone -> lift_clone p cfg
  | Destroy -> lift_destroy p cfg

(* ------------------------------------------------------------------ *)
(* Set-wise must-coverage — reference implementation                   *)

(* The original (pre-lifecycle) switch-path coverage pass, kept as an
   independent reference implementation: the differential test checks
   that the unified {!Absint.cover_trace} back-end reproduces these
   sums bit-for-bit on every lifted trace.  New code should use the
   Absint back-end. *)

let distinct_per_bucket pairs =
  (* [(bucket, id)] pairs -> bucket -> distinct-id count, as a sorted
     association list (determinism of the fold does not matter for the
     sums below, but sorted output keeps debugging sane). *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (b, id) ->
      let ids = Option.value (Hashtbl.find_opt tbl b) ~default:[] in
      if not (List.mem id ids) then Hashtbl.replace tbl b (id :: ids))
    pairs;
  Hashtbl.fold (fun b ids l -> (b, List.length ids) :: l) tbl []
  |> List.sort compare

let covered_cache (g : Tp_hw.Cache.geometry) accs =
  let sets = Tp_hw.Cache.sets g in
  let pairs =
    List.concat_map
      (fun a ->
        let first = a.a_vaddr / g.line
        and last = (a.a_vaddr + a.a_bytes - 1) / g.line in
        List.init (last - first + 1) (fun i ->
            let l = first + i in
            (l mod sets, l)))
      accs
  in
  List.fold_left
    (fun t (_, k) -> t + min k g.ways)
    0
    (distinct_per_bucket pairs)

let covered_tlb (t : Tp_hw.Tlb.geometry) pages =
  let sets = max 1 (t.entries / t.ways) in
  let pairs = List.map (fun vpn -> (vpn mod sets, vpn)) pages in
  List.fold_left
    (fun tot (_, k) -> tot + min k t.ways)
    0
    (distinct_per_bucket pairs)

let pages_of accs =
  List.concat_map
    (fun a ->
      let first = a.a_vaddr / Tp_hw.Defs.page_size
      and last = (a.a_vaddr + a.a_bytes - 1) / Tp_hw.Defs.page_size in
      List.init (last - first + 1) (fun i -> first + i))
    accs

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)

type bound = {
  kb_channel : Certify.channel;
  kb_raw : int;  (** structural capacity: bits with no protection *)
  kb_covered : int;  (** ways pinned to public content by the trace *)
  kb_bits : int;  (** certified per-execution bound *)
  kb_scrubbed : bool;
  kb_note : string;
}

type cert = {
  k_platform : string;
  k_config_name : string;
  k_config : C.t;
  k_path : path;
  k_steps : step list;
  k_bounds : bound list;
  k_timing_bits : int;
  k_pad_bound : int;
  k_pad_effective : int;
  k_op_bound : int;
      (** analytic duration bound of the lifecycle operation; 0 for
          the (padded) switch path *)
  k_exhaustive : Certify.exhaustive_result option;
  k_exclusions : string list;
}

let state_bits c = List.fold_left (fun a b -> a + b.kb_bits) 0 c.k_bounds
let total_bits c = state_bits c + c.k_timing_bits

let cache_lines (g : Tp_hw.Cache.geometry) = Tp_hw.Cache.sets g * g.ways

let op_bound_of path (p : P.t) (cfg : C.t) =
  match path with
  | Switch -> 0
  | Clone -> Lint.clone_bound p cfg
  | Destroy -> Lint.destroy_bound p cfg

let certify ?exhaustive ?(path = Switch) (p : P.t) ~config_name (cfg : C.t) =
  let steps = lift ~path p cfg in
  let accs = List.concat_map (fun s -> s.s_accesses) steps in
  (* Unified back-end: the same abstract structures and touch/join
     rules as the program-level analysis.  Fixed accesses earn must
     facts granule by granule; variable accesses are may-residency
     only. *)
  let cov =
    Absint.cover_trace p
      (List.map
         (fun a ->
           {
             Absint.ka_vaddr = a.a_vaddr;
             ka_bytes = a.a_bytes;
             ka_fetch = a.a_kind = Tp_hw.Defs.Fetch;
             ka_fixed = a.a_must;
           })
         accs)
  in
  let branches = List.concat_map (fun s -> s.s_branches) steps in
  let jumps = List.concat_map (fun s -> s.s_jumps) steps in
  let bp_covered =
    Absint.btb_coverage p.P.btb jumps + Absint.pht_coverage p.P.bhb branches
  in
  (* Config-level partition claim; whether the booted allocation
     honours it is the linter's job (the TP-COLOUR and TP-CLONE
     rules), and the 3-domain exhaustive check exercises the coloured
     placement. *)
  let partitioned = cfg.colour_user && cfg.clone_kernel in
  let l1_closed = cfg.flush_l1 || cfg.flush_llc in
  let l2_closed =
    cfg.flush_llc || (cfg.flush_l1 && cfg.flush_l2) || partitioned
  in
  let llc_closed = cfg.flush_llc || partitioned || cfg.cat_llc in
  let cap_l2 = match p.P.l2 with Some g -> cache_lines g | None -> 0 in
  let mk ch raw covered closed note =
    let covered = min covered raw in
    {
      kb_channel = ch;
      kb_raw = raw;
      kb_covered = covered;
      kb_bits = (if closed then 0 else raw - covered);
      kb_scrubbed = closed;
      kb_note = note;
    }
  in
  let flush_note flag = Printf.sprintf "scrubbed on every switch (%s)" flag in
  let cover_note what =
    Printf.sprintf
      "open: residue after the path's deterministic %s coverage" what
  in
  let bounds =
    [
      mk Certify.L1d (cache_lines p.P.l1d) cov.Absint.kc_l1d l1_closed
        (if l1_closed then flush_note "flush_l1" else cover_note "data-line");
      mk Certify.L1i (cache_lines p.P.l1i) cov.Absint.kc_l1i l1_closed
        (if l1_closed then flush_note "flush_l1"
         else cover_note "instruction-line");
      mk Certify.Tlb
        (p.P.itlb.entries + p.P.dtlb.entries + p.P.l2tlb.entries)
        (cov.Absint.kc_dtlb + cov.Absint.kc_itlb + cov.Absint.kc_l2tlb)
        cfg.flush_tlb
        (if cfg.flush_tlb then flush_note "flush_tlb"
         else cover_note "translation");
      mk Certify.Bp
        (p.P.btb.entries + p.P.bhb.pht_entries)
        bp_covered cfg.flush_bp
        (if cfg.flush_bp then flush_note "flush_bp"
         else
           "open: residue after BTB/PHT coverage of the path's \
            deterministic branches through the modelled index hashes");
      (let raw = cap_l2 + cache_lines p.P.llc in
       let bits =
         (if l2_closed then 0 else cap_l2)
         + if llc_closed then 0 else cache_lines p.P.llc
       in
       let note =
         if cfg.flush_llc then flush_note "flush_llc"
         else if partitioned then
           "partitioned by page colour (coloured userland + cloned kernel)"
         else if llc_closed && not l2_closed then
           "CAT masks partition the LLC ways but leave the private L2 open"
         else if bits = 0 then "flushed/partitioned at every level"
         else
           "open: physically-indexed, image placement is \
            allocation-dependent — zero coverage"
       in
       {
         kb_channel = Certify.Llc;
         kb_raw = raw;
         kb_covered = 0;
         kb_bits = bits;
         kb_scrubbed = (bits = 0);
         kb_note = note;
       });
    ]
  in
  let pad_bound = Lint.pad_bound p cfg in
  let pad_slack =
    if cfg.pad_cycles < pad_bound then
      Certify.ceil_log2 (pad_bound - cfg.pad_cycles + 1)
    else 0
  in
  let op_bound = op_bound_of path p cfg in
  (* The clone/destroy duration is visible to the caller (it is not
     padded away like the switch).  From a fully scrubbed/partitioned
     machine state the cost is deterministic — every sweep runs cold —
     so it encodes nothing; otherwise it varies with the incoming
     cache/TLB/BP state the configuration left open. *)
  let op_deterministic =
    l1_closed && l2_closed && llc_closed && cfg.flush_tlb && cfg.flush_bp
  in
  let op_entropy =
    if path = Switch || op_deterministic then 0
    else Certify.ceil_log2 (op_bound + 1)
  in
  {
    k_platform = p.P.name;
    k_config_name = config_name;
    k_config = cfg;
    k_path = path;
    k_steps = steps;
    k_bounds = bounds;
    k_timing_bits = pad_slack + op_entropy;
    k_pad_bound = pad_bound;
    k_pad_effective = cfg.pad_cycles;
    k_op_bound = op_bound;
    k_exhaustive = exhaustive;
    k_exclusions = Certify.exclusions;
  }

(* ------------------------------------------------------------------ *)
(* Soundness canary                                                    *)

let timing_capacity ~path (p : P.t) (cfg : C.t) =
  Certify.ceil_log2 (Lint.pad_bound p cfg + 1)
  + (match path with
    | Switch -> 0
    | Clone | Destroy -> Certify.ceil_log2 (op_bound_of path p cfg + 1))

let analytic_worst_bits ?(path = Switch) (p : P.t) (cfg : C.t) =
  let cap_l2 = match p.P.l2 with Some g -> cache_lines g | None -> 0 in
  cache_lines p.P.l1d + cache_lines p.P.l1i
  + (p.P.itlb.entries + p.P.dtlb.entries + p.P.l2tlb.entries)
  + (p.P.btb.entries + p.P.bhb.pht_entries)
  + cap_l2 + cache_lines p.P.llc
  + timing_capacity ~path p cfg

let check_sound (p : P.t) (c : cert) =
  let bad =
    List.filter_map
      (fun b ->
        if b.kb_bits > b.kb_raw then
          Some
            (Printf.sprintf "%s: certified %d bits > structural capacity %d"
               (Certify.channel_name b.kb_channel)
               b.kb_bits b.kb_raw)
        else None)
      c.k_bounds
  in
  let tcap = timing_capacity ~path:c.k_path p c.k_config in
  let bad =
    if c.k_timing_bits > tcap then
      Printf.sprintf "timing: certified %d bits > pad+operation capacity %d"
        c.k_timing_bits tcap
      :: bad
    else bad
  in
  let worst = analytic_worst_bits ~path:c.k_path p c.k_config in
  let bad =
    if total_bits c > worst then
      Printf.sprintf
        "total: certified %d bits > Bounds-derived analytic worst case %d"
        (total_bits c) worst
      :: bad
    else bad
  in
  List.map
    (fun msg ->
      Diag.error ~rule:Lint.rule_kcert_unsound
        ~context:
          [
            ("platform", c.k_platform);
            ("config", c.k_config_name);
            ("path", path_slug c.k_path);
          ]
        (Printf.sprintf
           "kernel certificate for %s/%s/%s exceeds its analytic envelope — \
            the certifier is unsound: %s"
           c.k_platform c.k_config_name (path_slug c.k_path) msg))
    bad

let lint_crosscheck (p : P.t) ~config_name (cfg : C.t) =
  List.concat_map
    (fun path -> check_sound p (certify ~path p ~config_name cfg))
    all_paths

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let subject c =
  Printf.sprintf "certify-kernel %s %s %s" c.k_platform c.k_config_name
    (path_slug c.k_path)

let report (c : cert) =
  let findings =
    List.filter_map
      (fun b ->
        if b.kb_bits = 0 then None
        else
          Some
            (Diag.error ~rule:(channel_rule b.kb_channel)
               ~context:
                 [
                   ("path", path_slug c.k_path);
                   ("bits", string_of_int b.kb_bits);
                   ("raw_bits", string_of_int b.kb_raw);
                   ("covered", string_of_int b.kb_covered);
                   ("note", b.kb_note);
                 ]
               (Printf.sprintf
                  "%s channel not closed across the kernel %s path: certified \
                   bound %d bits (%s)"
                  (Certify.channel_name b.kb_channel)
                  (path_slug c.k_path) b.kb_bits b.kb_note)))
      c.k_bounds
  in
  let findings =
    if c.k_timing_bits = 0 then findings
    else
      findings
      @ [
          Diag.error ~rule:rule_pad_timing
            ~context:
              [
                ("path", path_slug c.k_path);
                ("bits", string_of_int c.k_timing_bits);
                ("pad_effective", string_of_int c.k_pad_effective);
                ("pad_bound", string_of_int c.k_pad_bound);
                ("op_bound", string_of_int c.k_op_bound);
              ]
            (Printf.sprintf
               "kernel %s path timing not closed: pad %d vs bound %d, \
                operation bound %d \xe2\x87\x92 up to %d timing bits per \
                execution"
               (path_slug c.k_path) c.k_pad_effective c.k_pad_bound
               c.k_op_bound c.k_timing_bits);
        ]
  in
  let findings =
    match c.k_exhaustive with
    | Some r when total_bits c = 0 && r.Certify.ex_counterexample <> None ->
        findings
        @ [
            Diag.error ~rule:rule_xcheck
              (Printf.sprintf
                 "kernel %s-path certificate claims 0 bits but the %d-domain \
                  small-scope check found a distinguishing schedule (%s) on %s"
                 (path_slug c.k_path) r.Certify.ex_domains
                 (match r.Certify.ex_counterexample with
                 | Some cx -> cx.Certify.cx_schedule
                 | None -> "?")
                 r.Certify.ex_platform);
          ]
    | _ -> findings
  in
  { Diag.subject = subject c; findings }

let pp ppf (c : cert) =
  Format.fprintf ppf
    "%s: certified per-execution leakage bound %d bits (%s)@." (subject c)
    (total_bits c)
    (if total_bits c = 0 then "tight: noninterference" else "residue");
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-16s %5d bits (raw %5d, covered %4d)  %s@."
        (Certify.channel_name b.kb_channel)
        b.kb_bits b.kb_raw b.kb_covered b.kb_note)
    c.k_bounds;
  Format.fprintf ppf "  %-16s %5d bits (pad %d vs bound %d, op bound %d)@."
    "timing" c.k_timing_bits c.k_pad_effective c.k_pad_bound c.k_op_bound;
  (match c.k_exhaustive with
  | None -> ()
  | Some r ->
      Format.fprintf ppf
        "  exhaustive: %d domains, %d schedules x %d secrets on %s: %s@."
        r.Certify.ex_domains r.Certify.ex_schedules
        (List.length r.Certify.ex_secrets)
        r.Certify.ex_platform
        (match r.Certify.ex_counterexample with
        | None -> "pass"
        | Some cx -> "COUNTEREXAMPLE " ^ cx.Certify.cx_schedule));
  Format.fprintf ppf "  steps: %d (lifted from the kernel %s path)@."
    (List.length c.k_steps) (path_slug c.k_path)

(* ------------------------------------------------------------------ *)
(* Deterministic artifact JSON + digest                                *)

let kind_name = function
  | Tp_hw.Defs.Read -> "R"
  | Tp_hw.Defs.Write -> "W"
  | Tp_hw.Defs.Fetch -> "F"

let access_json a =
  Printf.sprintf
    "{\"what\":\"%s\",\"vaddr\":\"0x%x\",\"bytes\":%d,\"kind\":\"%s\",\"must\":%b}"
    (Diag.json_escape a.a_what) a.a_vaddr a.a_bytes (kind_name a.a_kind)
    a.a_must

let step_json s =
  Printf.sprintf
    "{\"index\":%d,\"name\":\"%s\",\"flushes\":[%s],\"accesses\":[%s],\"branches\":[%s],\"jumps\":[%s]}"
    s.s_index
    (Diag.json_escape s.s_name)
    (String.concat ","
       (List.map (fun fl -> "\"" ^ Diag.json_escape fl ^ "\"") s.s_flushes))
    (String.concat "," (List.map access_json s.s_accesses))
    (String.concat ","
       (List.map
          (fun (site, taken, n) -> Printf.sprintf "[\"0x%x\",%b,%d]" site taken n)
          s.s_branches))
    (String.concat ","
       (List.map (fun site -> Printf.sprintf "\"0x%x\"" site) s.s_jumps))

let bound_json b =
  Printf.sprintf
    "{\"channel\":\"%s\",\"bits\":%d,\"raw_bits\":%d,\"covered\":%d,\"scrubbed\":%b,\"note\":\"%s\"}"
    (Diag.json_escape (Certify.channel_name b.kb_channel))
    b.kb_bits b.kb_raw b.kb_covered b.kb_scrubbed
    (Diag.json_escape b.kb_note)

let config_json (cfg : C.t) =
  Printf.sprintf
    "{\"colour_user\":%b,\"clone_kernel\":%b,\"flush_l1\":%b,\"flush_tlb\":%b,\"flush_bp\":%b,\"flush_l2\":%b,\"flush_llc\":%b,\"disable_prefetcher\":%b,\"pad_cycles\":%d,\"partition_irqs\":%b,\"prefetch_shared\":%b,\"close_dram_rows\":%b,\"cat_llc\":%b}"
    cfg.colour_user cfg.clone_kernel cfg.flush_l1 cfg.flush_tlb cfg.flush_bp
    cfg.flush_l2 cfg.flush_llc cfg.disable_prefetcher cfg.pad_cycles
    cfg.partition_irqs cfg.prefetch_shared cfg.close_dram_rows cfg.cat_llc

(* The digested core: everything except the exhaustive block, so that
   a consumer that cannot afford the model check (the campaign daemon
   records a digest per trial) still computes the identical digest. *)
let core_json (c : cert) =
  Printf.sprintf
    "{\"schema\":\"%s\",\"platform\":\"%s\",\"config_name\":\"%s\",\"path\":\"%s\",\"config\":%s,\"certified_bits\":%d,\"state_bits\":%d,\"timing_bits\":%d,\"pad_effective\":%d,\"pad_bound\":%d,\"op_bound\":%d,\"channels\":[%s],\"steps\":[%s],\"exclusions\":[%s]}"
    (Diag.json_escape schema)
    (Diag.json_escape c.k_platform)
    (Diag.json_escape c.k_config_name)
    (Diag.json_escape (path_slug c.k_path))
    (config_json c.k_config) (total_bits c) (state_bits c) c.k_timing_bits
    c.k_pad_effective c.k_pad_bound c.k_op_bound
    (String.concat "," (List.map bound_json c.k_bounds))
    (String.concat "," (List.map step_json c.k_steps))
    (String.concat ","
       (List.map (fun e -> "\"" ^ Diag.json_escape e ^ "\"") c.k_exclusions))

let digest c = Digest.to_hex (Digest.string (core_json c))

let to_json (c : cert) =
  let core = core_json c in
  let body = String.sub core 0 (String.length core - 1) in
  Printf.sprintf "%s,%s\"digest\":\"%s\"}" body
    (match c.k_exhaustive with
    | None -> ""
    | Some r ->
        Printf.sprintf "\"exhaustive\":%s," (Certify.exhaustive_to_json r))
    (digest c)

let artifact_name c =
  Printf.sprintf "%s-%s-%s.cert.json" c.k_platform c.k_config_name
    (path_slug c.k_path)
